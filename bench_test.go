// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6) at the seconds-scale ScaleTiny workloads, plus
// micro-benchmarks of the substrate data structures and ablations of the
// design choices DESIGN.md calls out.
//
// Experiment benchmarks attach the measured clustering quality as custom
// metrics (acc%, prec%, rec%), so `go test -bench` output records both the
// cost and the quality side of each reproduction. Absolute times are
// machine-dependent; the shapes (who wins, how curves grow) are the
// reproduction targets — see EXPERIMENTS.md.
package cluseq_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"cluseq"
	"cluseq/internal/core"
	"cluseq/internal/datagen"
	"cluseq/internal/distance"
	"cluseq/internal/eval"
	"cluseq/internal/experiments"
	"cluseq/internal/hmm"
	"cluseq/internal/pst"
	"cluseq/internal/qgram"
	"cluseq/internal/seq"
	"cluseq/internal/suffixtree"
)

// ---------------------------------------------------------------------
// One benchmark per paper table/figure.
// ---------------------------------------------------------------------

// BenchmarkTable2 runs the five-model comparison (CLUSEQ vs ED, EDBO,
// HMM, q-gram) on the simulated protein workload.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(experiments.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range res.Rows {
				b.ReportMetric(100*row.Accuracy, row.Model+"_acc%")
			}
		}
	}
}

// BenchmarkTable3 reproduces the per-family precision/recall table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(experiments.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			sumP, sumR := 0.0, 0.0
			for _, r := range res.Rows {
				sumP += r.Precision
				sumR += r.Recall
			}
			n := float64(len(res.Rows))
			b.ReportMetric(100*sumP/n, "prec%")
			b.ReportMetric(100*sumR/n, "rec%")
		}
	}
}

// BenchmarkTable4 reproduces the language clustering experiment.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(experiments.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Rows {
				b.ReportMetric(100*r.Recall, r.Language+"_rec%")
			}
		}
	}
}

// BenchmarkFigure4 sweeps the PST memory budget.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure4(experiments.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
			b.ReportMetric(100*first.Recall, "smallest_rec%")
			b.ReportMetric(100*last.Recall, "unlimited_rec%")
		}
	}
}

// BenchmarkFigure5 sweeps the seed sampling factor m/k.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure5(experiments.ScaleTiny, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 sweeps the initial cluster count.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(experiments.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Rows {
				b.ReportMetric(float64(r.FinalK), fmt.Sprintf("k%d_final", r.InitialK))
			}
		}
	}
}

// BenchmarkTable6 sweeps the initial similarity threshold.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable6(experiments.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Rows {
				b.ReportMetric(r.FinalT, fmt.Sprintf("t%.2f_final", r.InitialT))
			}
		}
	}
}

// BenchmarkOrderStudy compares the §6.3 processing orders.
func BenchmarkOrderStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOrderStudy(experiments.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range res.Rows {
				b.ReportMetric(100*r.Accuracy, r.Order+"_acc%")
			}
		}
	}
}

// BenchmarkOutlierStudy sweeps the §6.1 outlier fraction (1–20%).
func BenchmarkOutlierStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOutlierStudy(experiments.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
			b.ReportMetric(100*first.Accuracy, "acc1pct%")
			b.ReportMetric(100*last.Accuracy, "acc20pct%")
		}
	}
}

// BenchmarkFigure6 sweeps each §6.4 scalability axis as a sub-benchmark:
// clusters, sequences, length, alphabet.
func BenchmarkFigure6(b *testing.B) {
	for _, axis := range experiments.Figure6Axes {
		b.Run(axis, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFigure6(experiments.ScaleTiny, axis, 1)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					first := res.Rows[0]
					last := res.Rows[len(res.Rows)-1]
					growth := last.Elapsed.Seconds() / first.Elapsed.Seconds()
					scale := float64(last.X) / float64(first.X)
					b.ReportMetric(growth/scale, "growth_per_size")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------

func randomSymbols(n, alpha int, seed uint64) []seq.Symbol {
	rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
	out := make([]seq.Symbol, n)
	for i := range out {
		out[i] = seq.Symbol(rng.IntN(alpha))
	}
	return out
}

// BenchmarkPSTInsert measures probabilistic suffix tree construction.
func BenchmarkPSTInsert(b *testing.B) {
	syms := randomSymbols(1000, 20, 1)
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := pst.MustNew(pst.Config{AlphabetSize: 20, MaxDepth: 8, Significance: 30})
		tree.Insert(syms)
	}
}

// BenchmarkPSTSimilarity measures the §4.3 similarity DP, the inner loop
// of the whole clustering algorithm.
func BenchmarkPSTSimilarity(b *testing.B) {
	tree := pst.MustNew(pst.Config{AlphabetSize: 20, MaxDepth: 8, Significance: 10, PMin: 0.01})
	for i := 0; i < 20; i++ {
		tree.Insert(randomSymbols(1000, 20, uint64(i+1)))
	}
	probe := randomSymbols(1000, 20, 99)
	bg := make([]float64, 20)
	for i := range bg {
		bg[i] = 0.05
	}
	b.SetBytes(int64(len(probe)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Similarity(probe, bg)
	}
}

// BenchmarkPSTSimilarityFast measures the auxiliary-link scan of §4.3
// ("the computational complexity could be reduced to O(l)") against
// BenchmarkPSTSimilarity's plain O(l·L) walk.
func BenchmarkPSTSimilarityFast(b *testing.B) {
	tree := pst.MustNew(pst.Config{AlphabetSize: 20, MaxDepth: 8, Significance: 10, PMin: 0.01})
	for i := 0; i < 20; i++ {
		tree.Insert(randomSymbols(1000, 20, uint64(i+1)))
	}
	probe := randomSymbols(1000, 20, 99)
	bg := make([]float64, 20)
	for i := range bg {
		bg[i] = 0.05
	}
	b.SetBytes(int64(len(probe)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.SimilarityFast(probe, bg)
	}
}

// BenchmarkSuffixTreeBuild measures Ukkonen construction.
func BenchmarkSuffixTreeBuild(b *testing.B) {
	syms := randomSymbols(5000, 4, 2)
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := suffixtree.New()
		tr.Add(syms)
	}
}

// BenchmarkSuffixTreeCount measures occurrence counting.
func BenchmarkSuffixTreeCount(b *testing.B) {
	syms := randomSymbols(5000, 4, 2)
	tr := suffixtree.New()
	tr.Add(syms)
	pattern := syms[100:110]
	tr.Count(pattern) // finalize outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Count(pattern)
	}
}

// BenchmarkLevenshtein measures the ED baseline's inner kernel.
func BenchmarkLevenshtein(b *testing.B) {
	x := randomSymbols(300, 20, 3)
	y := randomSymbols(300, 20, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distance.Levenshtein(x, y)
	}
}

// BenchmarkBlockEdit measures the EDBO baseline's inner kernel.
func BenchmarkBlockEdit(b *testing.B) {
	x := randomSymbols(300, 20, 3)
	y := randomSymbols(300, 20, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distance.BlockEditDistance(x, y, distance.BlockConfig{})
	}
}

// BenchmarkHMMLogLikelihood measures the HMM baseline's scoring kernel
// (the cost footnote 3 of the paper complains about).
func BenchmarkHMMLogLikelihood(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	model := hmm.NewRandom(30, 20, rng) // the paper's 30 states
	obs := randomSymbols(300, 20, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.LogLikelihood(obs)
	}
}

// BenchmarkQGramCosine measures the q-gram baseline's scoring kernel.
func BenchmarkQGramCosine(b *testing.B) {
	x := qgram.NewProfile(randomSymbols(300, 20, 3), 3)
	y := qgram.NewProfile(randomSymbols(300, 20, 4), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qgram.Cosine(x, y)
	}
}

// ---------------------------------------------------------------------
// Ablations of the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

func clusterQuality(b *testing.B, db *seq.Database, cfg core.Config) float64 {
	b.Helper()
	res, err := core.Cluster(db, cfg)
	if err != nil {
		b.Fatal(err)
	}
	labels := make([]string, db.Len())
	for i, s := range db.Sequences {
		labels[i] = s.Label
	}
	rep, err := eval.Evaluate(res.PrimaryClustering(), labels)
	if err != nil {
		b.Fatal(err)
	}
	return rep.Accuracy
}

func ablationSyntheticDB(b *testing.B) *seq.Database {
	b.Helper()
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 200, AvgLength: 100, AlphabetSize: 20,
		NumClusters: 5, OutlierFrac: 0.05, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func ablationProteinDB(b *testing.B) *seq.Database {
	b.Helper()
	db, err := datagen.ProteinDB(datagen.ProteinConfig{
		Scale: 0.04, MinLength: 100, MaxLength: 300, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func ablationSyntheticConfig() core.Config {
	return core.Config{
		Significance: 20, MinDistinct: 3, SimilarityThreshold: 1.03,
		MaxDepth: 5, MaxIterations: 25, Seed: 1, FixedSignificance: true,
	}
}

func ablationProteinConfig() core.Config {
	return core.Config{
		InitialClusters: 10, Significance: 8, MinDistinct: 3,
		SimilarityThreshold: 1.5, MaxDepth: 6, MaxIterations: 30, Seed: 1,
	}
}

// BenchmarkAblationPruning compares the three §5.1 pruning strategies
// under a tight memory budget.
func BenchmarkAblationPruning(b *testing.B) {
	for _, v := range []struct {
		name     string
		strategy pst.PruneStrategy
	}{
		{"auto", pst.PruneAuto},
		{"min-count", pst.PruneMinCount},
		{"longest-label", pst.PruneLongestLabel},
		{"expected-vector", pst.PruneExpectedVector},
	} {
		b.Run(v.name, func(b *testing.B) {
			db := ablationSyntheticDB(b)
			acc := 0.0
			for i := 0; i < b.N; i++ {
				cfg := ablationSyntheticConfig()
				cfg.MaxPSTBytes = 48 << 10
				cfg.Prune = v.strategy
				acc = clusterQuality(b, db, cfg)
			}
			b.ReportMetric(100*acc, "acc%")
		})
	}
}

// BenchmarkAblationSignificance compares the paper's fixed significance
// threshold against the adaptive scaling, on both workload archetypes.
func BenchmarkAblationSignificance(b *testing.B) {
	cases := []struct {
		name  string
		db    func(*testing.B) *seq.Database
		cfg   func() core.Config
		fixed bool
	}{
		{"synthetic/fixed", ablationSyntheticDB, ablationSyntheticConfig, true},
		{"synthetic/adaptive", ablationSyntheticDB, ablationSyntheticConfig, false},
		{"protein/fixed", ablationProteinDB, ablationProteinConfig, true},
		{"protein/adaptive", ablationProteinDB, ablationProteinConfig, false},
	}
	for _, v := range cases {
		b.Run(v.name, func(b *testing.B) {
			db := v.db(b)
			acc := 0.0
			for i := 0; i < b.N; i++ {
				cfg := v.cfg()
				cfg.FixedSignificance = v.fixed
				acc = clusterQuality(b, db, cfg)
			}
			b.ReportMetric(100*acc, "acc%")
		})
	}
}

// BenchmarkAblationValley compares the threshold-valley estimators.
func BenchmarkAblationValley(b *testing.B) {
	for _, v := range []struct {
		name string
		est  core.ValleyEstimator
	}{
		{"auto", core.ValleyAuto},
		{"otsu", core.ValleyOtsu},
		{"regression", core.ValleyRegression},
	} {
		b.Run(v.name, func(b *testing.B) {
			db := ablationSyntheticDB(b)
			acc := 0.0
			for i := 0; i < b.N; i++ {
				cfg := ablationSyntheticConfig()
				cfg.SimilarityThreshold = 3 // stress the from-above path
				cfg.Valley = v.est
				acc = clusterQuality(b, db, cfg)
			}
			b.ReportMetric(100*acc, "acc%")
		})
	}
}

// BenchmarkAblationUpdate compares the paper's best-segment tree update
// against whole-sequence insertion.
func BenchmarkAblationUpdate(b *testing.B) {
	for _, whole := range []bool{false, true} {
		name := "best-segment"
		if whole {
			name = "whole-sequence"
		}
		b.Run(name, func(b *testing.B) {
			db := ablationProteinDB(b)
			acc := 0.0
			for i := 0; i < b.N; i++ {
				cfg := ablationProteinConfig()
				cfg.InsertWhole = whole
				acc = clusterQuality(b, db, cfg)
			}
			b.ReportMetric(100*acc, "acc%")
		})
	}
}

// BenchmarkAblationRefine measures the post-convergence refinement
// extension.
func BenchmarkAblationRefine(b *testing.B) {
	for _, passes := range []int{0, 2} {
		b.Run(fmt.Sprintf("passes=%d", passes), func(b *testing.B) {
			db := ablationProteinDB(b)
			acc := 0.0
			for i := 0; i < b.N; i++ {
				cfg := ablationProteinConfig()
				cfg.RefinePasses = passes
				acc = clusterQuality(b, db, cfg)
			}
			b.ReportMetric(100*acc, "acc%")
		})
	}
}

// BenchmarkAblationConsolidation compares the paper's dismiss-covered
// consolidation against the merge extension.
func BenchmarkAblationConsolidation(b *testing.B) {
	cases := []struct {
		name string
		db   func(*testing.B) *seq.Database
		cfg  func() core.Config
	}{
		{"protein", ablationProteinDB, ablationProteinConfig},
		{"synthetic", ablationSyntheticDB, ablationSyntheticConfig},
	}
	for _, v := range cases {
		for _, merge := range []bool{false, true} {
			name := v.name + "/dismiss"
			if merge {
				name = v.name + "/merge"
			}
			b.Run(name, func(b *testing.B) {
				db := v.db(b)
				acc := 0.0
				for i := 0; i < b.N; i++ {
					cfg := v.cfg()
					cfg.MergeConsolidation = merge
					acc = clusterQuality(b, db, cfg)
				}
				b.ReportMetric(100*acc, "acc%")
			})
		}
	}
}

// BenchmarkAblationWorkers measures the parallel reclustering extension
// (the paper's implementation is serial).
func BenchmarkAblationWorkers(b *testing.B) {
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			db := ablationSyntheticDB(b)
			for i := 0; i < b.N; i++ {
				cfg := ablationSyntheticConfig()
				cfg.InitialClusters = 5
				cfg.Workers = workers
				clusterQuality(b, db, cfg)
			}
		})
	}
}

// BenchmarkRecluster measures the two-phase reclustering engine — the
// hot loop of the whole algorithm — crossing the version-stamped
// similarity cache (on/off) with worker counts (1/4). The cached runs
// skip every (sequence, cluster) pair whose tree did not change since
// the previous iteration; hit/miss totals from the iteration trace are
// attached as metrics so the cache's coverage is visible alongside its
// speedup. cmd/experiments -bench-recluster writes the same grid as
// JSON for the repo's perf trajectory.
func BenchmarkRecluster(b *testing.B) {
	db := ablationSyntheticDB(b)
	for _, workers := range []int{1, 4} {
		for _, cacheOff := range []bool{false, true} {
			cache := "on"
			if cacheOff {
				cache = "off"
			}
			b.Run(fmt.Sprintf("cache=%s/workers=%d", cache, workers), func(b *testing.B) {
				hits, misses := 0, 0
				for i := 0; i < b.N; i++ {
					cfg := ablationSyntheticConfig()
					cfg.InitialClusters = 5
					cfg.Workers = workers
					cfg.CacheOff = cacheOff
					res, err := core.Cluster(db, cfg)
					if err != nil {
						b.Fatal(err)
					}
					hits, misses = 0, 0
					for _, tr := range res.Trace {
						hits += tr.CacheHits
						misses += tr.CacheMisses
					}
				}
				b.ReportMetric(float64(hits), "hits")
				b.ReportMetric(float64(misses), "misses")
			})
		}
	}
}

// BenchmarkClusterEndToEnd measures the public API on a mid-size workload,
// the headline number for downstream users.
func BenchmarkClusterEndToEnd(b *testing.B) {
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 500, AvgLength: 150, AlphabetSize: 30,
		NumClusters: 8, OutlierFrac: 0.05, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(db.TotalSymbols()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cluseq.Cluster(db, cluseq.Options{
			Significance: 20, MinDistinct: 4, SimilarityThreshold: 1.05,
			MaxDepth: 5, Seed: 3, FixedSignificance: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
