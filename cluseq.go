// Package cluseq is a Go implementation of CLUSEQ (Yang & Wang, ICDE
// 2003): clustering of categorical symbol sequences by their sequential
// statistical features. Each cluster is summarized by a probabilistic
// suffix tree (PST) holding the conditional probability distribution of
// the next symbol given a preceding segment; a sequence's similarity to a
// cluster is the maximal likelihood ratio of any of its segments against
// a memoryless background, and the algorithm adjusts both the number of
// clusters and the similarity threshold automatically.
//
// # Quick start
//
//	db := cluseq.NewDatabase(cluseq.MustAlphabet("acgt"))
//	db.AddString("s1", "", "acgtacgtacgt")
//	db.AddString("s2", "", "ttttgggg")
//	// … add more sequences …
//	res, err := cluseq.Cluster(db, cluseq.Options{})
//	if err != nil { … }
//	for _, c := range res.Clusters {
//		fmt.Println(c.ID, c.Members)
//	}
//
// The subpackages under internal/ implement the building blocks (PST,
// suffix tree, baselines, evaluation, workload generators); this package
// is the supported public surface.
package cluseq

import (
	"io"

	"cluseq/internal/core"
	"cluseq/internal/eval"
	"cluseq/internal/obs"
	"cluseq/internal/pst"
	"cluseq/internal/registry"
	"cluseq/internal/seq"
	"cluseq/internal/server"
	"cluseq/internal/stream"
)

// Core data types, re-exported from internal/seq.
type (
	// Alphabet maps runes to dense integer symbols.
	Alphabet = seq.Alphabet
	// Symbol is one encoded sequence element.
	Symbol = seq.Symbol
	// Sequence is an ordered list of symbols with an ID and an optional
	// ground-truth label.
	Sequence = seq.Sequence
	// Database is a set of sequences over one alphabet.
	Database = seq.Database
)

// Clustering types, re-exported from internal/core.
type (
	// Options parameterizes Cluster. The zero value uses the paper's
	// defaults (k=1, c=30, t=1.1, automatic threshold adjustment on).
	Options = core.Config
	// Result is a clustering outcome: clusters, outliers, and a
	// per-iteration trace.
	Result = core.Result
	// ClusterInfo describes one discovered cluster.
	ClusterInfo = core.ClusterInfo
	// IterationTrace records one outer-loop iteration: cluster churn,
	// membership moves, threshold adjustment, and the similarity cache's
	// hit/miss counters.
	IterationTrace = core.IterationTrace
	// OrderStrategy selects the sequence examination order (§6.3).
	OrderStrategy = core.OrderStrategy
)

// Sequence processing orders (paper §6.3).
const (
	OrderFixed        = core.OrderFixed
	OrderRandom       = core.OrderRandom
	OrderClusterBased = core.OrderClusterBased
)

// PST types, re-exported for users who want direct access to the paper's
// data structure (e.g. to model a known family and score sequences).
type (
	// PST is a probabilistic suffix tree.
	PST = pst.Tree
	// PSTConfig parameterizes a PST.
	PSTConfig = pst.Config
	// Similarity is a SIM evaluation result (log domain plus the
	// best-scoring segment).
	Similarity = pst.Similarity
)

// PST pruning strategies (paper §5.1).
const (
	PruneAuto           = pst.PruneAuto
	PruneMinCount       = pst.PruneMinCount
	PruneLongestLabel   = pst.PruneLongestLabel
	PruneExpectedVector = pst.PruneExpectedVector
)

// Evaluation types, re-exported from internal/eval.
type (
	// Report holds clustering quality versus ground-truth labels.
	Report = eval.Report
	// Clustering is the label-free clustering representation.
	Clustering = eval.Clustering
)

// NewAlphabet builds an alphabet from the distinct runes of s.
func NewAlphabet(s string) (*Alphabet, error) { return seq.NewAlphabet(s) }

// MustAlphabet is NewAlphabet that panics on error.
func MustAlphabet(s string) *Alphabet { return seq.MustAlphabet(s) }

// NewDatabase returns an empty database over the alphabet.
func NewDatabase(a *Alphabet) *Database { return seq.NewDatabase(a) }

// ReadDatabase parses a database from the FASTA-like text format
// (see WriteDatabase for the format produced).
func ReadDatabase(r io.Reader) (*Database, error) { return seq.Read(r) }

// WriteDatabase serializes a database, including its alphabet directive,
// so that a round trip preserves symbol numbering.
func WriteDatabase(w io.Writer, db *Database) error { return seq.Write(w, db) }

// Cluster runs the CLUSEQ algorithm over the database.
func Cluster(db *Database, opts Options) (*Result, error) { return core.Cluster(db, opts) }

// NewPST builds an empty probabilistic suffix tree; Insert sequences or
// segments into it and use Similarity to score candidates against it.
func NewPST(cfg PSTConfig) (*PST, error) { return pst.New(cfg) }

// LoadPST reads a probabilistic suffix tree previously written with
// PST.Save.
func LoadPST(r io.Reader) (*PST, error) { return pst.Load(r) }

// Classifier assigns new sequences to the clusters of a finished run,
// applying exactly the membership rule the clustering converged to. Build
// one with NewClassifier (from a run with Options.KeepTrees) or
// LoadClassifier (from a saved model bundle); persist with
// Classifier.Save.
type Classifier = core.Classifier

// Assignment is one classification outcome.
type Assignment = core.Assignment

// NewClassifier builds a classifier from a clustering result; the run
// must have set Options.KeepTrees.
func NewClassifier(db *Database, res *Result, opts Options) (*Classifier, error) {
	return core.NewClassifier(db, res, opts)
}

// LoadClassifier reads a model bundle previously written with
// Classifier.Save or Classifier.SaveBundle.
func LoadClassifier(r io.Reader) (*Classifier, error) { return core.LoadClassifier(r) }

// BundleOptions parameterizes Classifier.SaveBundle (format v3, the
// mmap-able arena layout — see DESIGN.md §14).
type BundleOptions = core.BundleOptions

// ModelInfo summarizes a classifier's parameters and per-cluster trees
// (see Classifier.Info).
type ModelInfo = core.ModelInfo

// Serving types, re-exported from internal/registry and internal/server
// for the cluseqd daemon and for users embedding the serving layer.
type (
	// ModelRegistry holds named classifier models loaded from a bundle
	// directory and hot-reloads them without disturbing in-flight
	// readers.
	ModelRegistry = registry.Registry
	// Model is one loaded classifier bundle.
	Model = registry.Model
	// ReloadReport describes the outcome of one registry reload pass.
	ReloadReport = registry.Report
	// Server routes the cluseqd HTTP API over a model registry.
	Server = server.Server
	// ServerConfig parameterizes NewServer.
	ServerConfig = server.Config
	// ClassifyRequest is the body of POST /v1/classify.
	ClassifyRequest = server.ClassifyRequest
	// ClassifyResponse answers POST /v1/classify.
	ClassifyResponse = server.ClassifyResponse
	// ClassifyResult is one sequence's outcome within a ClassifyResponse.
	ClassifyResult = server.ClassifyResult
	// IngestRequest is the body of POST /v1/ingest.
	IngestRequest = server.IngestRequest
	// IngestResponse answers POST /v1/ingest.
	IngestResponse = server.IngestResponse
)

// Streaming types, re-exported from internal/stream for the cluseqd
// daemon and for users embedding incremental clustering directly (see
// DESIGN.md §13 for the lifecycle and snapshot-publication contract).
type (
	// StreamOptions parameterizes NewStreamEngine. Only Alphabet is
	// required; every other zero field picks a sensible default.
	StreamOptions = stream.Config
	// StreamEngine clusters an unbounded sequence stream incrementally,
	// publishing immutable classifier snapshots at each consolidation.
	StreamEngine = stream.Engine
	// IngestVerdict is the per-sequence outcome of an ingest.
	IngestVerdict = stream.Verdict
	// IngestStatus classifies one ingest outcome.
	IngestStatus = stream.Status
	// StreamStats is the engine's counter and size snapshot
	// (GET /v1/ingest/stats).
	StreamStats = stream.Stats
)

// Ingest outcomes.
const (
	IngestAccepted   = stream.StatusAccepted
	IngestNewCluster = stream.StatusNewCluster
	IngestRejected   = stream.StatusRejected
)

// NewStreamEngine constructs an incremental clustering engine. Wire its
// Publish option to ModelRegistry.Publish to surface each consolidated
// snapshot on the serving API, and pass the engine to
// ServerConfig.Stream to enable POST /v1/ingest. Close it when done.
func NewStreamEngine(cfg StreamOptions) (*StreamEngine, error) { return stream.New(cfg) }

// ModelBundleExt is the filename extension the registry requires of a
// model bundle.
const ModelBundleExt = registry.Ext

// Observability types, re-exported from internal/obs (see DESIGN.md
// §10 for the metric catalogue and span taxonomy).
type (
	// Metrics is a registry of named counters, gauges, and timing
	// histograms. Attach one to Options.Obs to meter a clustering run,
	// or to ServerConfig.Obs to share one exposition across the daemon.
	Metrics = obs.Registry
	// Tracer writes phase spans as JSON Lines to an io.Writer. Attach to
	// Options.Tracer to record one span per outer-loop phase per
	// iteration.
	Tracer = obs.Tracer
	// Flight is the request-trace flight recorder: an always-on ring of
	// retained traces plus a top-K slowest index, with tail-based
	// sampling. Attach to ServerConfig.Flight (see obs.Flight).
	Flight = obs.Flight
	// FlightConfig parameterizes NewFlight.
	FlightConfig = obs.FlightConfig
	// TraceFilter selects traces out of a flight dump.
	TraceFilter = obs.TraceFilter
	// SLO declares one route's latency/error objective for the
	// cluseqd_slo_* burn-rate gauges (see ServerConfig.SLOs).
	SLO = server.SLO
)

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTracer returns a tracer emitting JSONL records to w; the caller
// owns w and should check Tracer.Err once tracing is done.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// NewFlight returns a flight recorder; zero-value config fields pick
// production-safe defaults.
func NewFlight(cfg FlightConfig) *Flight { return obs.NewFlight(cfg) }

// ParseSLO parses one -slo flag value (see server.ParseSLO for the
// key=value grammar).
func ParseSLO(spec string) (SLO, error) { return server.ParseSLO(spec) }

// OpenModelRegistry scans dir and loads every model bundle in it,
// serving v3 bundles zero-copy from memory maps of the files. The
// report lists what loaded and what failed; the call errors only when
// the directory itself is unreadable.
func OpenModelRegistry(dir string) (*ModelRegistry, ReloadReport, error) {
	return registry.Open(dir)
}

// RegistryOptions configures OpenModelRegistryWith; the zero value
// disables mmap and loads every bundle by copying.
type RegistryOptions = registry.Options

// OpenModelRegistryWith is OpenModelRegistry with explicit options.
func OpenModelRegistryWith(dir string, opts RegistryOptions) (*ModelRegistry, ReloadReport, error) {
	return registry.OpenWith(dir, opts)
}

// NewServer returns the serving daemon's HTTP layer over a registry.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Evaluate scores a clustering result against ground-truth labels
// (labels[i] belongs to database sequence i; empty labels mark outliers,
// excluded from the quality measures). Quality is measured on the primary
// (disjoint) membership view — each sequence counted in its best cluster —
// the way the paper's precision/recall tables treat assignment; use
// EvaluateOverlapping to score the full overlapping membership instead.
func Evaluate(res *Result, labels []string) (Report, error) {
	return eval.Evaluate(res.PrimaryClustering(), labels)
}

// EvaluateOverlapping scores the full (possibly overlapping) cluster
// membership against ground-truth labels.
func EvaluateOverlapping(res *Result, labels []string) (Report, error) {
	return eval.Evaluate(res.Clustering(), labels)
}

// Labels extracts the ground-truth label vector of a database, aligned
// with its sequence indices, for Evaluate.
func Labels(db *Database) []string {
	out := make([]string, db.Len())
	for i, s := range db.Sequences {
		out[i] = s.Label
	}
	return out
}
