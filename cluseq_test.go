package cluseq_test

import (
	"strings"
	"testing"

	"cluseq"
	"cluseq/internal/datagen"
)

// TestPublicAPIEndToEnd drives the whole public surface the way the
// README's quick start does: build a database, cluster it, evaluate it,
// round-trip it through the text format.
func TestPublicAPIEndToEnd(t *testing.T) {
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 150,
		AvgLength:    100,
		AlphabetSize: 10,
		NumClusters:  3,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}

	res, err := cluseq.Cluster(db, cluseq.Options{
		Significance:        12,
		MinDistinct:         5,
		SimilarityThreshold: 1.05,
		MaxDepth:            5,
		Seed:                3,
		// Synthetic clusters are globally distinct sources; the paper's
		// fixed significance threshold suits them best.
		FixedSignificance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() < 2 || res.NumClusters() > 5 {
		t.Fatalf("found %d clusters, planted 3", res.NumClusters())
	}

	rep, err := cluseq.Evaluate(res, cluseq.Labels(db))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < 0.7 {
		t.Fatalf("accuracy = %v", rep.Accuracy)
	}

	var buf strings.Builder
	if err := cluseq.WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := cluseq.ReadDatabase(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip lost sequences: %d vs %d", back.Len(), db.Len())
	}
}

func TestPublicPSTAPI(t *testing.T) {
	a := cluseq.MustAlphabet("ab")
	tree, err := cluseq.NewPST(cluseq.PSTConfig{AlphabetSize: 2, Significance: 1, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	syms, err := a.Encode("abababab")
	if err != nil {
		t.Fatal(err)
	}
	tree.Insert(syms)
	sim := tree.Similarity(syms, []float64{0.5, 0.5})
	if !sim.Exceeds(1) {
		t.Fatalf("self-similarity %v should exceed 1", sim.Sim())
	}
}

func TestPublicAlphabetErrors(t *testing.T) {
	if _, err := cluseq.NewAlphabet(""); err == nil {
		t.Fatal("empty alphabet should fail")
	}
	a, err := cluseq.NewAlphabet("abc")
	if err != nil || a.Size() != 3 {
		t.Fatalf("NewAlphabet: %v, size %d", err, a.Size())
	}
}

func TestPublicEvaluateOverlapping(t *testing.T) {
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 100, AvgLength: 80, AlphabetSize: 10, NumClusters: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluseq.Cluster(db, cluseq.Options{
		Significance: 10, MinDistinct: 4, SimilarityThreshold: 1.05,
		MaxDepth: 5, Seed: 2, FixedSignificance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prim, err := cluseq.Evaluate(res, cluseq.Labels(db))
	if err != nil {
		t.Fatal(err)
	}
	ovl, err := cluseq.EvaluateOverlapping(res, cluseq.Labels(db))
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping accuracy can only be at least the primary accuracy.
	if ovl.Accuracy < prim.Accuracy-1e-12 {
		t.Fatalf("overlapping accuracy %v below primary %v", ovl.Accuracy, prim.Accuracy)
	}
}

func TestPublicClassifierLifecycle(t *testing.T) {
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 120, AvgLength: 90, AlphabetSize: 10, NumClusters: 3, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := cluseq.Options{
		Significance: 12, MinDistinct: 4, SimilarityThreshold: 1.05,
		MaxDepth: 5, Seed: 4, FixedSignificance: true, KeepTrees: true,
	}
	res, err := cluseq.Cluster(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := cluseq.NewClassifier(db, res, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := cluseq.LoadClassifier(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// A known member must classify into a cluster that contains it.
	target := res.Clusters[0].Members[0]
	a := loaded.Classify(db.Sequences[target].Symbols)
	if a.Cluster == -1 {
		t.Fatalf("known member classified as outlier: %+v", a)
	}
}

func TestPublicDatabaseBuilding(t *testing.T) {
	db := cluseq.NewDatabase(cluseq.MustAlphabet("xyz"))
	if err := db.AddString("s1", "lab", "xyzzy"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddString("s2", "", "zzz"); err != nil {
		t.Fatal(err)
	}
	labels := cluseq.Labels(db)
	if len(labels) != 2 || labels[0] != "lab" || labels[1] != "" {
		t.Fatalf("Labels = %v", labels)
	}
}
