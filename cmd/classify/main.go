// Command classify assigns sequences to the clusters of a previously
// trained CLUSEQ model (see cmd/cluseq's -model flag).
//
// Usage:
//
//	classify -model model.cluseq [input-file]
//
// The input is the FASTA-like text format (standard input when no file is
// given). One line per sequence is printed: the sequence ID, its assigned
// cluster (or "outlier"), the per-symbol similarity, and any additional
// cluster memberships.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cluseq"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "", "model bundle written by cluseq -model (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *modelPath == "" || fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: classify -model FILE [input-file]")
		return 2
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintln(stderr, "classify:", err)
		return 1
	}
	clf, err := cluseq.LoadClassifier(mf)
	mf.Close()
	if err != nil {
		fmt.Fprintln(stderr, "classify:", err)
		return 1
	}

	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "classify:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	db, err := cluseq.ReadDatabase(in)
	if err != nil {
		fmt.Fprintln(stderr, "classify:", err)
		return 1
	}

	outliers := 0
	for _, s := range db.Sequences {
		a := clf.Classify(s.Symbols)
		switch {
		case a.Cluster == -1:
			outliers++
			fmt.Fprintf(stdout, "%s\toutlier\tsim=%.4f\n", s.ID, a.Similarity)
		case len(a.Memberships) > 1:
			fmt.Fprintf(stdout, "%s\tcluster %d\tsim=%.4f\talso %v\n", s.ID, a.Cluster, a.Similarity, a.Memberships)
		default:
			fmt.Fprintf(stdout, "%s\tcluster %d\tsim=%.4f\n", s.ID, a.Cluster, a.Similarity)
		}
	}
	fmt.Fprintf(stderr, "classify: %d sequences against %d clusters, %d outliers\n",
		db.Len(), clf.NumClusters(), outliers)
	return 0
}
