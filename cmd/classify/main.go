// Command classify assigns sequences to the clusters of a previously
// trained CLUSEQ model (see cmd/cluseq's -model flag).
//
// Usage:
//
//	classify -model model.cluseq [-workers N] [input-file]
//
// The input is the FASTA-like text format (standard input when no file is
// given). One line per sequence is printed: the sequence ID, its assigned
// cluster (or "outlier"), the per-symbol similarity, and any additional
// cluster memberships. Classification parallelizes across -workers; the
// output order always matches the input order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"cluseq"
	"cluseq/internal/pool"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "", "model bundle written by cluseq -model (required)")
	workers := fs.Int("workers", 0, "classification workers (0 = all CPUs, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *modelPath == "" || fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: classify -model FILE [input-file]")
		return 2
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintln(stderr, "classify:", err)
		return 1
	}
	clf, err := cluseq.LoadClassifier(mf)
	mf.Close()
	if err != nil {
		fmt.Fprintln(stderr, "classify:", err)
		return 1
	}

	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "classify:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	db, err := cluseq.ReadDatabase(in)
	if err != nil {
		fmt.Fprintln(stderr, "classify:", err)
		return 1
	}

	// Classify in parallel into an index-aligned slice, then print in
	// input order: the output is identical for any worker count.
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	assignments := make([]cluseq.Assignment, db.Len())
	pool.New(w-1).Run(db.Len(), func(i int) {
		assignments[i] = clf.Classify(db.Sequences[i].Symbols)
	})

	outliers := 0
	for i, s := range db.Sequences {
		a := assignments[i]
		switch {
		case a.Cluster == -1:
			outliers++
			fmt.Fprintf(stdout, "%s\toutlier\tsim=%.4f\n", s.ID, a.Similarity)
		case len(a.Memberships) > 1:
			fmt.Fprintf(stdout, "%s\tcluster %d\tsim=%.4f\talso %v\n", s.ID, a.Cluster, a.Similarity, a.Memberships)
		default:
			fmt.Fprintf(stdout, "%s\tcluster %d\tsim=%.4f\n", s.ID, a.Cluster, a.Similarity)
		}
	}
	fmt.Fprintf(stderr, "classify: %d sequences against %d clusters, %d outliers\n",
		db.Len(), clf.NumClusters(), outliers)
	return 0
}
