package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cluseq"
	"cluseq/internal/datagen"
)

// trainModel clusters a small workload and saves its classifier bundle,
// returning the model path and the training database.
func trainModel(t *testing.T) (string, *cluseq.Database) {
	t.Helper()
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 120, AvgLength: 90, AlphabetSize: 10,
		NumClusters: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := cluseq.Options{
		Significance: 12, MinDistinct: 4, SimilarityThreshold: 1.05,
		MaxDepth: 5, Seed: 8, FixedSignificance: true, KeepTrees: true,
	}
	res, err := cluseq.Cluster(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := cluseq.NewClassifier(db, res, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.cluseq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, db
}

func TestClassifyEndToEnd(t *testing.T) {
	model, db := trainModel(t)
	var input strings.Builder
	if err := cluseq.WriteDatabase(&input, db.Subset([]int{0, 1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := run([]string{"-model", model}, strings.NewReader(input.String()), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d output lines, want 5:\n%s", len(lines), out.String())
	}
	clustered := 0
	for _, l := range lines {
		if strings.Contains(l, "cluster ") {
			clustered++
		}
	}
	if clustered < 3 {
		t.Fatalf("only %d/5 training members classified into clusters:\n%s", clustered, out.String())
	}
}

// TestClassifyWorkersDeterministic verifies that the -workers flag
// changes only the parallelism, never the output: serial and
// maximally-parallel runs must print byte-identical lines in input order.
func TestClassifyWorkersDeterministic(t *testing.T) {
	model, db := trainModel(t)
	var input strings.Builder
	if err := cluseq.WriteDatabase(&input, db); err != nil {
		t.Fatal(err)
	}
	outputs := make([]string, 2)
	for i, w := range []string{"1", "8"} {
		var out, errOut strings.Builder
		code := run([]string{"-model", model, "-workers", w},
			strings.NewReader(input.String()), &out, &errOut)
		if code != 0 {
			t.Fatalf("workers=%s: exit %d: %s", w, code, errOut.String())
		}
		outputs[i] = out.String()
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("output differs between -workers 1 and -workers 8:\n--- serial ---\n%s--- parallel ---\n%s",
			outputs[0], outputs[1])
	}
	if got := strings.Count(outputs[0], "\n"); got != db.Len() {
		t.Fatalf("got %d output lines, want %d", got, db.Len())
	}
}

func TestClassifyErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("missing -model: exit %d, want 2", code)
	}
	if code := run([]string{"-model", "/nonexistent"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("missing model file: exit %d, want 1", code)
	}
	// Garbage model file.
	bad := filepath.Join(t.TempDir(), "bad.model")
	if err := os.WriteFile(bad, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-model", bad}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("corrupt model: exit %d, want 1", code)
	}
}
