package main

import "os"

// Thin indirection over the filesystem so tests share the same paths the
// command uses.

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func openFile(path string) (*os.File, error) { return os.Open(path) }
