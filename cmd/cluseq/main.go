// Command cluseq clusters a sequence database with the CLUSEQ algorithm.
//
// Usage:
//
//	cluseq [flags] [input-file]
//
// The input is the repository's FASTA-like text format (see package
// cluseq's ReadDatabase); with no file argument it reads standard input.
// Each discovered cluster is printed with its member sequence IDs. When
// the input carries ground-truth labels, a quality report (per-family
// precision/recall and overall accuracy) is appended. With -model FILE
// the trained cluster models are saved for cmd/classify.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"cluseq"
	"cluseq/internal/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cluseq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k           = fs.Int("k", 1, "initial number of clusters")
		c           = fs.Int("c", 30, "significance threshold (occurrences before a context is trusted)")
		t0          = fs.Float64("t", 1.5, "initial similarity threshold (per-symbol normalized)")
		fixedT      = fs.Bool("fixed-t", false, "disable automatic threshold adjustment")
		fixedC      = fs.Bool("fixed-c", false, "disable adaptive significance scaling (paper's exact behaviour)")
		depth       = fs.Int("depth", 10, "maximum PST context depth (short-memory bound L)")
		maxBytes    = fs.Int("pst-bytes", 0, "per-cluster PST memory cap in bytes (0 = unlimited)")
		seed        = fs.Uint64("seed", 1, "random seed")
		workers     = fs.Int("workers", 0, "similarity-scoring parallelism (0 = all CPUs, 1 = serial; results are identical either way)")
		cacheOff    = fs.Bool("cache-off", false, "disable the cross-iteration similarity cache (re-score every pair each pass)")
		snapshotOff = fs.Bool("snapshot-off", false, "disable compiled scoring snapshots (score by walking the live trees)")
		verbose     = fs.Bool("v", false, "log per-iteration progress to stderr")
		idsOnly     = fs.Bool("ids", false, "print only cluster member IDs, one cluster per line")
		model       = fs.String("model", "", "write the trained cluster models to this file (for cmd/classify)")
		bundleFmt   = fs.String("bundle-format", "v3", "model bundle format: v3 (mmap-able arena layout) or v2 (tree serialization)")
		cpuProfile  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile  = fs.String("memprofile", "", "write a pprof heap profile (post-GC) to this file on exit")
		traceOut    = fs.String("trace-out", "", "write phase spans and a final metrics snapshot as JSON Lines to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *bundleFmt != "v2" && *bundleFmt != "v3" {
		fmt.Fprintln(stderr, "cluseq: -bundle-format must be v2 or v3")
		return 2
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(stderr, "cluseq:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "cluseq:", err)
		}
	}()

	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: cluseq [flags] [input-file]")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "cluseq:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	db, err := cluseq.ReadDatabase(in)
	if err != nil {
		fmt.Fprintln(stderr, "cluseq:", err)
		return 1
	}

	opts := cluseq.Options{
		InitialClusters:     *k,
		Significance:        *c,
		SimilarityThreshold: *t0,
		FixedThreshold:      *fixedT,
		FixedSignificance:   *fixedC,
		MaxDepth:            *depth,
		MaxPSTBytes:         *maxBytes,
		Seed:                *seed,
		Workers:             *workers,
		CacheOff:            *cacheOff,
		SnapshotOff:         *snapshotOff,
		KeepTrees:           *model != "",
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	var (
		tracer    *cluseq.Tracer
		traceFile *os.File
	)
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "cluseq:", err)
			return 1
		}
		tracer = cluseq.NewTracer(traceFile)
		opts.Tracer = tracer
		opts.Obs = cluseq.NewMetrics()
	}
	res, err := cluseq.Cluster(db, opts)
	if err != nil {
		fmt.Fprintln(stderr, "cluseq:", err)
		return 1
	}
	if tracer != nil {
		tracer.EmitMetrics(opts.Obs)
		if err := tracer.Err(); err != nil {
			fmt.Fprintln(stderr, "cluseq: writing trace:", err)
			return 1
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(stderr, "cluseq: writing trace:", err)
			return 1
		}
	}

	if *model != "" {
		if err := saveModel(db, res, opts, *model, *bundleFmt); err != nil {
			fmt.Fprintln(stderr, "cluseq:", err)
			return 1
		}
		fmt.Fprintf(stderr, "cluseq: wrote %d cluster models to %s\n", res.NumClusters(), *model)
	}

	if *idsOnly {
		printIDs(stdout, db, res)
		return 0
	}
	fmt.Fprintf(stdout, "%d clusters, %d outliers, %d iterations, final t = %.4g\n\n",
		res.NumClusters(), len(res.Unclustered), res.Iterations, res.FinalThreshold)
	for i, cl := range res.Clusters {
		fmt.Fprintf(stdout, "cluster %d (%d members, PST: %d nodes / %d significant):\n",
			i+1, len(cl.Members), cl.TreeStats.Nodes, cl.TreeStats.SignificantNodes)
		for _, m := range cl.Members {
			fmt.Fprintf(stdout, "  %s\n", db.Sequences[m].ID)
		}
	}
	if len(res.Unclustered) > 0 {
		fmt.Fprintf(stdout, "unclustered:\n")
		for _, m := range res.Unclustered {
			fmt.Fprintf(stdout, "  %s\n", db.Sequences[m].ID)
		}
	}

	if labels := cluseq.Labels(db); hasLabels(labels) {
		rep, err := cluseq.Evaluate(res, labels)
		if err != nil {
			fmt.Fprintln(stderr, "cluseq:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nground truth found: accuracy %.1f%% (macro precision %.1f%%, recall %.1f%%)\n",
			100*rep.Accuracy, 100*rep.MacroPrecision, 100*rep.MacroRecall)
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "family\tsize\tprecision\trecall")
		for _, pr := range rep.PerLabel {
			fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%.1f%%\n", pr.Label, pr.TrueSize, 100*pr.Precision, 100*pr.Recall)
		}
		tw.Flush()
	}
	return 0
}

// saveModel writes the bundle atomically (temp file + rename): a serving
// daemon may be memory-mapping the previous version of this file, and an
// in-place rewrite would mutate pages under its readers.
func saveModel(db *cluseq.Database, res *cluseq.Result, opts cluseq.Options, path, format string) error {
	clf, err := cluseq.NewClassifier(db, res, opts)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	if format == "v2" {
		err = clf.Save(f)
	} else {
		err = clf.SaveBundle(f, cluseq.BundleOptions{})
	}
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

func printIDs(w io.Writer, db *cluseq.Database, res *cluseq.Result) {
	for _, cl := range res.Clusters {
		for i, m := range cl.Members {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, db.Sequences[m].ID)
		}
		fmt.Fprintln(w)
	}
}

func hasLabels(labels []string) bool {
	for _, l := range labels {
		if l != "" {
			return true
		}
	}
	return false
}
