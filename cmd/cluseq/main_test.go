package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cluseq"
	"cluseq/internal/datagen"
)

// writeTestDB renders a small labeled workload to a temp file and returns
// its path.
func writeTestDB(t *testing.T) string {
	t.Helper()
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 120, AvgLength: 90, AlphabetSize: 10,
		NumClusters: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := cluseq.WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.txt")
	if err := writeFile(path, buf.String()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTestDB(t)
	var out, errOut strings.Builder
	code := run([]string{"-c", "12", "-t", "1.05", "-depth", "5", "-fixed-c", path},
		strings.NewReader(""), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"clusters", "ground truth found", "accuracy"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunStdinAndIDs(t *testing.T) {
	db := cluseq.NewDatabase(cluseq.MustAlphabet("ab"))
	for i := 0; i < 12; i++ {
		raw := strings.Repeat("ab", 20)
		if i%2 == 1 {
			raw = strings.Repeat("aabb", 10)
		}
		if err := db.AddString(strings.Repeat("x", i+1), "", raw); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := cluseq.WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := run([]string{"-c", "3", "-t", "1.2", "-ids"}, strings.NewReader(buf.String()), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Fatal("-ids produced no output")
	}
}

func TestRunModelRoundTrip(t *testing.T) {
	path := writeTestDB(t)
	model := filepath.Join(t.TempDir(), "m.cluseq")
	var out, errOut strings.Builder
	code := run([]string{"-c", "12", "-t", "1.05", "-depth", "5", "-fixed-c", "-model", model, "-ids", path},
		strings.NewReader(""), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	f, err := openFile(model)
	if err != nil {
		t.Fatalf("model not written: %v", err)
	}
	defer f.Close()
	clf, err := cluseq.LoadClassifier(f)
	if err != nil {
		t.Fatalf("model unreadable: %v", err)
	}
	if clf.NumClusters() < 2 {
		t.Fatalf("model has %d clusters", clf.NumClusters())
	}
}

// TestRunTraceOut pins the -trace-out contract: every line of the
// output file is a JSON record, spans cover the clustering phases, and
// the file ends with one metrics snapshot.
func TestRunTraceOut(t *testing.T) {
	path := writeTestDB(t)
	traceFile := filepath.Join(t.TempDir(), "trace.jsonl")
	var out, errOut strings.Builder
	code := run([]string{"-c", "12", "-t", "1.05", "-depth", "5", "-fixed-c", "-trace-out", traceFile, path},
		strings.NewReader(""), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	spans := map[string]int{}
	metricsRecords := 0
	for i, line := range lines {
		var rec struct {
			Type    string         `json:"type"`
			Name    string         `json:"name"`
			Metrics map[string]any `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		switch rec.Type {
		case "span":
			spans[rec.Name]++
		case "metrics":
			metricsRecords++
			if rec.Metrics["cluseq_engine_iterations_total"] == nil {
				t.Fatalf("metrics snapshot missing the iteration counter: %s", line)
			}
		default:
			t.Fatalf("unexpected record type %q on line %d", rec.Type, i+1)
		}
	}
	for _, phase := range []string{"generate", "score", "apply", "consolidate", "threshold"} {
		if spans[phase] == 0 {
			t.Errorf("no %q spans in trace", phase)
		}
	}
	if metricsRecords != 1 {
		t.Errorf("metrics records = %d, want exactly 1 (final snapshot)", metricsRecords)
	}
	if lines[len(lines)-1] == "" || !strings.Contains(lines[len(lines)-1], `"type":"metrics"`) {
		t.Errorf("trace must end with the metrics snapshot, got: %s", lines[len(lines)-1])
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"a", "b"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("two args: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/file"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"-badflag"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	// Invalid config surfaces as exit 1.
	if code := run([]string{"-k", "-5"}, strings.NewReader("> s\nab\n"), &out, &errOut); code != 1 {
		t.Fatalf("bad config: exit %d, want 1", code)
	}
}
