package main

import (
	"path/filepath"
	"strings"
	"testing"

	"cluseq"
	"cluseq/internal/datagen"
)

// writeTestDB renders a small labeled workload to a temp file and returns
// its path.
func writeTestDB(t *testing.T) string {
	t.Helper()
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 120, AvgLength: 90, AlphabetSize: 10,
		NumClusters: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := cluseq.WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.txt")
	if err := writeFile(path, buf.String()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTestDB(t)
	var out, errOut strings.Builder
	code := run([]string{"-c", "12", "-t", "1.05", "-depth", "5", "-fixed-c", path},
		strings.NewReader(""), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"clusters", "ground truth found", "accuracy"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunStdinAndIDs(t *testing.T) {
	db := cluseq.NewDatabase(cluseq.MustAlphabet("ab"))
	for i := 0; i < 12; i++ {
		raw := strings.Repeat("ab", 20)
		if i%2 == 1 {
			raw = strings.Repeat("aabb", 10)
		}
		if err := db.AddString(strings.Repeat("x", i+1), "", raw); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := cluseq.WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := run([]string{"-c", "3", "-t", "1.2", "-ids"}, strings.NewReader(buf.String()), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Fatal("-ids produced no output")
	}
}

func TestRunModelRoundTrip(t *testing.T) {
	path := writeTestDB(t)
	model := filepath.Join(t.TempDir(), "m.cluseq")
	var out, errOut strings.Builder
	code := run([]string{"-c", "12", "-t", "1.05", "-depth", "5", "-fixed-c", "-model", model, "-ids", path},
		strings.NewReader(""), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	f, err := openFile(model)
	if err != nil {
		t.Fatalf("model not written: %v", err)
	}
	defer f.Close()
	clf, err := cluseq.LoadClassifier(f)
	if err != nil {
		t.Fatalf("model unreadable: %v", err)
	}
	if clf.NumClusters() < 2 {
		t.Fatalf("model has %d clusters", clf.NumClusters())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"a", "b"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("two args: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/file"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"-badflag"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	// Invalid config surfaces as exit 1.
	if code := run([]string{"-k", "-5"}, strings.NewReader("> s\nab\n"), &out, &errOut); code != 1 {
		t.Fatalf("bad config: exit %d, want 1", code)
	}
}
