// Command cluseqd is the CLUSEQ serving daemon: it loads trained model
// bundles (written by cluseq -model) from a directory and classifies
// sequences against them over HTTP, with atomic hot reload of retrained
// bundles and graceful drain on shutdown.
//
// Format-v3 bundles are served zero-copy from memory maps of the model
// files (disable with -mmap=false); v1/v2 bundles load by copying.
// Either way a reload is one atomic snapshot swap and the old mapping
// is released only after its last in-flight reader finishes. Bundle
// files must therefore be replaced atomically (temp file + rename),
// which cluseq -model and -stream-persist both do.
//
// With -stream the daemon additionally runs an incremental clustering
// engine: POST /v1/ingest feeds it sequences, and every consolidation
// publishes a frozen snapshot into the registry under -stream-model, so
// /v1/classify serves the evolving stream model next to the file-loaded
// bundles. With -stream-persist DIR each published snapshot is also
// written (asynchronously, atomically) to DIR, and a restarted daemon
// resumes the stream model — clusters, threshold, version counter —
// from the last persisted snapshot.
//
// Usage:
//
//	cluseqd -models DIR [-addr :8080] [-timeout 30s] [-max-batch 1024]
//	        [-workers N] [-drain 10s] [-pprof] [-mmap=false] [-v]
//	        [-stream -stream-alphabet SYMS [-stream-model NAME]
//	         [-stream-threshold T] [-stream-consolidate N]
//	         [-stream-flush D] [-stream-persist DIR]] [-trace-out FILE]
//	        [-trace-ring N] [-trace-topk K] [-trace-sample R]
//	        [-trace-slow D] [-trace-seed S] [-slo SPEC]...
//
// Endpoints (see internal/server for the full contract):
//
//	POST /v1/classify       {"model":"name","sequence":"acgt"} or
//	                        {"model":"name","sequences":["acgt",...]}
//	GET  /v1/models         loaded models with parameters and tree sizes
//	POST /v1/models/reload  rescan the model directory
//	POST /v1/ingest         {"sequence":"acgt"} or {"sequences":[...]},
//	                        only with -stream
//	GET  /v1/ingest/stats   streaming engine counters, only with -stream
//	GET  /healthz, /readyz  liveness and readiness
//	GET  /metrics           request/error/latency/outlier counters (JSON);
//	                        ?format=prom for Prometheus text exposition
//	GET  /debug/traces      flight recorder dump: recent and slowest
//	                        retained request traces (?route=, ?min_ms=)
//	GET  /debug/pprof/      Go runtime profiles, only with -pprof
//
// Every /v1/ request carries a W3C trace context: an inbound traceparent
// header is adopted (and its sampled flag forces retention), the trace ID
// is echoed in the X-Trace-ID response header, and retained traces land
// in the always-on in-memory flight recorder behind GET /debug/traces.
// Slow (>= -trace-slow) and error traces are always retained; the rest
// are head-sampled at -trace-sample by a deterministic seeded sampler.
// With -trace-out every retained trace is appended as JSONL spans, and
// SIGUSR1 dumps the whole flight recorder to the same sink. Repeatable
// -slo flags (route=classify,latency=250ms,target=0.99,
// max_error_rate=0.01) export cluseqd_slo_* burn-rate gauges computed
// from the route latency histograms at scrape time.
//
// On SIGINT or SIGTERM the daemon stops accepting connections and gives
// in-flight requests up to -drain to complete before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cluseq"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stderr, sig, nil))
}

// sloFlag collects repeated -slo flags, parsing each spec as it arrives
// so a malformed objective fails flag parsing (exit 2) with the offending
// spec in the error, not later at server construction.
type sloFlag struct {
	specs []string
	slos  []cluseq.SLO
}

func (f *sloFlag) String() string { return strings.Join(f.specs, "; ") }

func (f *sloFlag) Set(spec string) error {
	slo, err := cluseq.ParseSLO(spec)
	if err != nil {
		return err
	}
	f.specs = append(f.specs, spec)
	f.slos = append(f.slos, slo)
	return nil
}

// run is main minus process concerns: signals arrive on sig, and the
// bound listen address is announced on ready (when non-nil) so tests can
// drive a daemon on port 0.
func run(args []string, stderr io.Writer, sig <-chan os.Signal, ready chan<- string) int {
	fs := flag.NewFlagSet("cluseqd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		models    = fs.String("models", "", "directory of *"+cluseq.ModelBundleExt+" model bundles (required)")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-request timeout (0 = none)")
		maxBatch  = fs.Int("max-batch", 1024, "maximum sequences per classify request")
		workers   = fs.Int("workers", 0, "classification parallelism shared across requests (0 = all CPUs)")
		drain     = fs.Duration("drain", 10*time.Second, "shutdown drain deadline for in-flight requests")
		verbose   = fs.Bool("v", false, "log per-request refusals and reloads")
		withPprof = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (opt-in: profiling endpoints leak internals)")
		useMmap   = fs.Bool("mmap", true, "serve v3 model bundles zero-copy from memory-mapped files (bundle rewrites must be atomic: temp file + rename)")
		slow      = fs.Duration("slow-classify", 0, "inject an artificial delay into every classify request (load-harness testing aid; never set in production)")

		streamOn    = fs.Bool("stream", false, "enable the incremental clustering engine and POST /v1/ingest")
		streamAlpha = fs.String("stream-alphabet", "", "alphabet runes for the streaming engine (required with -stream)")
		streamModel = fs.String("stream-model", "stream", "registry name the streaming engine publishes its snapshots under")
		streamThr   = fs.Float64("stream-threshold", 0, "initial similarity threshold t for the streaming engine (0 = default)")
		streamEvery = fs.Int("stream-consolidate", 0, "streaming consolidation cadence in ingests (0 = default)")
		streamFlush = fs.Duration("stream-flush", 0, "also consolidate an idle stream on this wall-clock interval (0 = off)")
		streamDir   = fs.String("stream-persist", "", "persist each published stream snapshot into this directory and resume from it on restart (keep it outside -models; the published name owns the registry slot)")
		traceOut    = fs.String("trace-out", "", "append JSONL spans to this file: streaming consolidation phases plus every retained request trace (and flight-recorder dumps on SIGUSR1)")

		traceRing   = fs.Int("trace-ring", 256, "flight recorder ring size: retained request traces kept for GET /debug/traces")
		traceTopK   = fs.Int("trace-topk", 16, "flight recorder slowest-request index size (survives ring churn)")
		traceSample = fs.Float64("trace-sample", 0.01, "head-sampling rate for fast, successful request traces in [0,1]; slow and error traces are always retained")
		traceSlow   = fs.Duration("trace-slow", 250*time.Millisecond, "duration at or above which a request trace is always retained")
		traceSeed   = fs.Uint64("trace-seed", 0, "seed for the deterministic trace sampler (0 = default; identical seeds keep identical trace IDs)")
	)
	var sloSpecs sloFlag
	fs.Var(&sloSpecs, "slo", "declare a route SLO exported as cluseqd_slo_* burn-rate gauges, e.g. route=classify,latency=250ms,target=0.99,max_error_rate=0.01 (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *models == "" || fs.NArg() > 0 {
		fmt.Fprintln(stderr, "usage: cluseqd -models DIR [flags]")
		return 2
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, format+"\n", args...)
	}
	reg, rep, err := cluseq.OpenModelRegistryWith(*models, cluseq.RegistryOptions{Mmap: *useMmap})
	if err != nil {
		fmt.Fprintln(stderr, "cluseqd:", err)
		return 1
	}
	for name, msg := range rep.Failed {
		logf("cluseqd: model %s failed to load: %s", name, msg)
	}
	logf("cluseqd: %d models loaded from %s", reg.Len(), *models)

	// One metrics registry spans the server, the model registry, and the
	// streaming engine, so GET /metrics is a single exposition.
	met := cluseq.NewMetrics()
	var tracer *cluseq.Tracer
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "cluseqd:", err)
			return 1
		}
		defer f.Close()
		tracer = cluseq.NewTracer(f)
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(stderr, "cluseqd: trace:", err)
			}
		}()
	}

	var eng *cluseq.StreamEngine
	if *streamOn {
		if *streamAlpha == "" {
			fmt.Fprintln(stderr, "cluseqd: -stream requires -stream-alphabet")
			return 2
		}
		alpha, err := cluseq.NewAlphabet(*streamAlpha)
		if err != nil {
			fmt.Fprintln(stderr, "cluseqd:", err)
			return 1
		}
		name := *streamModel
		// Durability: resume from the last persisted snapshot (serving it
		// immediately, before the first consolidation), and persist every
		// published snapshot asynchronously so a slow disk never stalls an
		// ingest. A corrupt or mismatched persisted bundle logs and starts
		// the stream fresh rather than keeping the daemon down.
		var (
			resume  *cluseq.Classifier
			persist *persister
		)
		if *streamDir != "" {
			if err := os.MkdirAll(*streamDir, 0o755); err != nil {
				fmt.Fprintln(stderr, "cluseqd:", err)
				return 1
			}
			path := filepath.Join(*streamDir, name+cluseq.ModelBundleExt)
			if f, err := os.Open(path); err == nil {
				clf, lerr := cluseq.LoadClassifier(f)
				f.Close()
				if lerr != nil {
					logf("cluseqd: persisted stream model %s unusable (%v), starting fresh", path, lerr)
				} else {
					resume = clf
					if perr := reg.Publish(name, clf, clf.PublishedVersion()); perr != nil {
						fmt.Fprintln(stderr, "cluseqd:", perr)
						return 1
					}
					logf("cluseqd: resumed stream model %q v%d from %s", name, clf.PublishedVersion(), path)
				}
			} else if !os.IsNotExist(err) {
				fmt.Fprintln(stderr, "cluseqd:", err)
				return 1
			}
			persist = newPersister(path, logf)
			defer persist.stop()
		}
		eng, err = cluseq.NewStreamEngine(cluseq.StreamOptions{
			Alphabet:            alpha,
			SimilarityThreshold: *streamThr,
			ConsolidateEvery:    *streamEvery,
			FlushInterval:       *streamFlush,
			Workers:             *workers,
			Resume:              resume,
			// Each consolidation's frozen snapshot goes straight into the
			// serving registry: one atomic swap, readers never blocked. The
			// persister gets the same snapshot through its non-blocking
			// mailbox.
			Publish: func(clf *cluseq.Classifier, version uint64) {
				if err := reg.Publish(name, clf, version); err != nil {
					logf("cluseqd: publishing stream model %s v%d: %v", name, version, err)
				}
				if persist != nil {
					persist.offer(clf, version)
				}
			},
			Obs:    met,
			Tracer: tracer,
			Logf:   logf,
		})
		if err != nil {
			fmt.Fprintln(stderr, "cluseqd:", err)
			return 1
		}
		defer eng.Close()
		logf("cluseqd: streaming ingest enabled, publishing model %q", name)
	}

	// The flight recorder is always on: retained request traces are
	// readable at GET /debug/traces, dumped to -trace-out on SIGUSR1,
	// and (when -trace-out is set) every retained trace is appended as
	// JSONL at finish time.
	flight := cluseq.NewFlight(cluseq.FlightConfig{
		RingSize:      *traceRing,
		TopK:          *traceTopK,
		SampleRate:    *traceSample,
		SlowThreshold: *traceSlow,
		Seed:          *traceSeed,
		Tracer:        tracer,
		Obs:           met,
	})

	scfg := cluseq.ServerConfig{
		Registry:      reg,
		MaxBatch:      *maxBatch,
		Workers:       *workers,
		Timeout:       *timeout,
		ClassifyDelay: *slow,
		Obs:           met,
		Stream:        eng,
		Flight:        flight,
		SLOs:          sloSpecs.slos,
	}
	if *slow > 0 {
		logf("cluseqd: WARNING: -slow-classify %v injects artificial latency (testing aid)", *slow)
	}
	if *verbose {
		scfg.Logf = logf
	}
	srv, err := cluseq.NewServer(scfg)
	if err != nil {
		fmt.Fprintln(stderr, "cluseqd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "cluseqd:", err)
		return 1
	}
	handler := srv.Handler()
	if *withPprof {
		// Mount the pprof handlers on an explicit mux rather than serving
		// http.DefaultServeMux, so nothing else registered there leaks.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logf("cluseqd: pprof enabled under /debug/pprof/")
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	logf("cluseqd: listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// SIGUSR1 dumps the flight recorder to the -trace-out sink without
	// disturbing serving — the incident-triage path when /debug/traces
	// is unreachable (e.g. the port is drowning in traffic).
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)

serve:
	for {
		select {
		case err := <-serveErr:
			fmt.Fprintln(stderr, "cluseqd:", err)
			return 1
		case <-usr1:
			if tracer == nil {
				logf("cluseqd: SIGUSR1 received but no -trace-out sink is configured")
				continue
			}
			n := flight.WriteJSONL(tracer, cluseq.TraceFilter{})
			logf("cluseqd: SIGUSR1: dumped %d flight-recorder traces to -trace-out", n)
		case s := <-sig:
			logf("cluseqd: %v received, draining for up to %v", s, *drain)
			break serve
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = httpSrv.Shutdown(ctx)
	if eng != nil {
		// Flush the partial consolidation window so the final snapshot —
		// including the stream's tail — is published and persisted before
		// the deferred engine close and persister stop run.
		eng.ConsolidateNow()
	}
	if err != nil {
		// Drain deadline expired with requests still in flight.
		httpSrv.Close()
		fmt.Fprintln(stderr, "cluseqd: forced shutdown:", err)
		return 1
	}
	logf("cluseqd: drained cleanly")
	return 0
}
