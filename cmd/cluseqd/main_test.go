package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cluseq"
	"cluseq/internal/datagen"
)

// trainBundle runs the full CLUSEQ pipeline on a synthetic workload and
// writes the resulting classifier bundle — the same artifact
// `cluseq -model` produces — to path. Some seeds converge to an empty
// clustering (nothing to serve), so it walks derived seeds until one
// yields clusters.
func trainBundle(t *testing.T, path string, seed uint64) {
	t.Helper()
	var clf *cluseq.Classifier
	for attempt := uint64(0); attempt < 8; attempt++ {
		s := seed + 1000*attempt
		db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
			NumSequences: 120,
			AvgLength:    90,
			AlphabetSize: 10,
			NumClusters:  3,
			Seed:         s,
		})
		if err != nil {
			t.Fatalf("SyntheticDB: %v", err)
		}
		opts := cluseq.Options{KeepTrees: true, Seed: s}
		res, err := cluseq.Cluster(db, opts)
		if err != nil {
			t.Fatalf("Cluster: %v", err)
		}
		if len(res.Clusters) == 0 {
			continue
		}
		clf, err = cluseq.NewClassifier(db, res, opts)
		if err != nil {
			t.Fatalf("NewClassifier: %v", err)
		}
		break
	}
	if clf == nil {
		t.Fatalf("no seed derived from %d produced a non-empty clustering", seed)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatalf("Rename: %v", err)
	}
}

// startDaemon launches run() on an ephemeral port and returns the base
// URL, the signal channel that stops it, and a channel carrying its exit
// code.
func startDaemon(t *testing.T, extraArgs ...string) (base string, sig chan os.Signal, done chan int, logs *bytes.Buffer) {
	t.Helper()
	sig = make(chan os.Signal, 1)
	done = make(chan int, 1)
	ready := make(chan string, 1)
	logs = &bytes.Buffer{}
	var mu sync.Mutex
	w := lockedWriter{mu: &mu, buf: logs}
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- run(args, w, sig, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, sig, done, logs
	case code := <-done:
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("daemon exited early with code %d: %s", code, logs.String())
		return "", nil, nil, nil
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not become ready")
		return "", nil, nil, nil
	}
}

type lockedWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

// TestDaemonEndToEnd exercises the full serving path: train a model,
// start the daemon on its directory, classify a batch over HTTP,
// hot-reload a retrained bundle without a single failed request, and
// scrape non-zero throughput/latency metrics.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "synth"+cluseq.ModelBundleExt)
	trainBundle(t, bundle, 7)

	base, sig, done, logs := startDaemon(t, "-models", dir, "-drain", "5s", "-v")

	// Readiness and the model listing.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	}

	// Pull the model's alphabet from the listing so the test sequences
	// are valid regardless of which runes the generator picked.
	resp, err = http.Get(base + "/v1/models")
	if err != nil {
		t.Fatalf("GET /v1/models: %v", err)
	}
	var listing struct {
		Models []struct {
			Name string `json:"name"`
			Info struct {
				Alphabet string `json:"alphabet"`
			} `json:"info"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("models decode: %v", err)
	}
	resp.Body.Close()
	if len(listing.Models) != 1 || listing.Models[0].Name != "synth" {
		t.Fatalf("models listing = %+v, want one model synth", listing.Models)
	}
	alpha := []rune(listing.Models[0].Info.Alphabet)
	if len(alpha) < 3 {
		t.Fatalf("alphabet %q too small", listing.Models[0].Info.Alphabet)
	}
	tri := string([]rune{alpha[0], alpha[1], alpha[2]})
	probe := strings.Repeat(tri, 4)

	resp, body := postJSON(t, base+"/v1/classify", map[string]any{
		"model": "synth",
		"sequences": []string{
			probe,
			strings.Repeat(string(alpha[2]), 12),
			strings.Repeat(string(alpha[0])+string(alpha[1]), 6),
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify = %d: %s", resp.StatusCode, body)
	}
	var cr cluseq.ClassifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("classify response: %v", err)
	}
	if len(cr.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(cr.Results))
	}
	for i, r := range cr.Results {
		if r.Error != "" {
			t.Fatalf("result %d errored: %s", i, r.Error)
		}
	}

	// Hot reload under fire: classify continuously while a retrained
	// bundle replaces the file on disk and /v1/models/reload swaps it in.
	// No request may fail at any point.
	stop := make(chan struct{})
	classifyErr := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				raw, _ := json.Marshal(map[string]any{"model": "synth", "sequence": probe})
				resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(raw))
				if err != nil {
					classifyErr <- err
					return
				}
				var out bytes.Buffer
				out.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					classifyErr <- fmt.Errorf("classify during reload = %d: %s", resp.StatusCode, out.String())
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		trainBundle(t, bundle, uint64(100+i))
		// Bump the mtime so the registry's size+mtime fingerprint always
		// registers the rewrite, even on coarse filesystem clocks.
		future := time.Now().Add(time.Duration(i+1) * time.Second)
		if err := os.Chtimes(bundle, future, future); err != nil {
			t.Fatalf("Chtimes: %v", err)
		}
		resp, body := postJSON(t, base+"/v1/models/reload", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload = %d: %s", resp.StatusCode, body)
		}
		var rep cluseq.ReloadReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("reload report: %v", err)
		}
		if len(rep.Failed) != 0 {
			t.Fatalf("reload %d failed models: %v", i, rep.Failed)
		}
		if len(rep.Loaded) != 1 || rep.Loaded[0] != "synth" {
			t.Fatalf("reload %d loaded %v, want [synth]", i, rep.Loaded)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-classifyErr:
		t.Fatalf("request failed during hot reload: %v", err)
	default:
	}

	// Metrics must show real traffic: requests, sequences, latency.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var metrics struct {
		Requests       map[string]int64 `json:"requests"`
		SequencesTotal int64            `json:"sequences_total"`
		Latency        struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
		} `json:"latency_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	resp.Body.Close()
	if metrics.Requests["classify"] < 4 {
		t.Errorf("classify requests = %d, want ≥ 4", metrics.Requests["classify"])
	}
	if metrics.Requests["reload"] != 5 {
		t.Errorf("reload requests = %d, want 5", metrics.Requests["reload"])
	}
	if metrics.SequencesTotal < 7 {
		t.Errorf("sequences_total = %d, want ≥ 7", metrics.SequencesTotal)
	}
	if metrics.Latency.Count < 4 {
		t.Errorf("latency count = %d, want ≥ 4", metrics.Latency.Count)
	}

	// Graceful shutdown: SIGINT drains and run returns 0.
	sig <- os.Interrupt
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit code %d: %s", code, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonPprofAndProm covers the two opt-in observability surfaces:
// /debug/pprof/ exists only under -pprof, and /metrics?format=prom
// serves a well-formed Prometheus exposition either way.
func TestDaemonPprofAndProm(t *testing.T) {
	dir := t.TempDir()
	trainBundle(t, filepath.Join(dir, "synth"+cluseq.ModelBundleExt), 7)

	base, sig, done, _ := startDaemon(t, "-models", dir, "-pprof")
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ with -pprof = %d, want 200", resp.StatusCode)
	}

	// One request through the middleware so the per-route counters have a
	// series to export (pprof paths bypass the request middleware).
	if resp, err = http.Get(base + "/readyz"); err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("GET /metrics?format=prom: %v", err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prom metrics = %d: %s", resp.StatusCode, body.String())
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom Content-Type = %q", ct)
	}
	out := body.String()
	for _, want := range []string{
		"# TYPE cluseqd_requests_total counter",
		"cluseq_registry_models 1",
		"cluseqd_model_clusters{model=\"synth\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	sig <- os.Interrupt
	if code := <-done; code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}

	// Without -pprof the profiling surface must not exist.
	base, sig, done, _ = startDaemon(t, "-models", dir)
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("/debug/pprof/ reachable without -pprof")
	}
	sig <- os.Interrupt
	if code := <-done; code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}
}

func TestDaemonUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if code := run(nil, &buf, nil, nil); code != 2 {
		t.Fatalf("run with no -models = %d, want 2", code)
	}
	if !strings.Contains(buf.String(), "usage:") {
		t.Fatalf("missing usage line: %s", buf.String())
	}
	buf.Reset()
	if code := run([]string{"-models", filepath.Join(t.TempDir(), "nope")}, &buf, nil, nil); code != 1 {
		t.Fatalf("run with missing dir = %d, want 1", code)
	}
}

// TestDaemonStreamingEndToEnd exercises the ISSUE's acceptance path:
// start a daemon with an empty model directory and -stream, feed it a
// labeled synthetic stream over POST /v1/ingest, watch clusters form and
// consolidate, classify against the continuously republished "stream"
// model mid-ingest with zero non-200s, and verify the stream gauges and
// consolidation spans landed in /metrics and -trace-out.
func TestDaemonStreamingEndToEnd(t *testing.T) {
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 400,
		AvgLength:    80,
		AlphabetSize: 12,
		NumClusters:  4,
		OutlierFrac:  0.02,
		Seed:         11,
	})
	if err != nil {
		t.Fatalf("SyntheticDB: %v", err)
	}

	dir := t.TempDir() // empty: the stream model is the only one served
	traceFile := filepath.Join(t.TempDir(), "spans.jsonl")
	base, sig, done, logs := startDaemon(t,
		"-models", dir,
		"-stream", "-stream-alphabet", db.Alphabet.String(),
		"-stream-threshold", "1.05", "-stream-consolidate", "64",
		"-trace-out", traceFile, "-v")

	// No models yet: not ready, and classify against "stream" is a 404.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before any publish = %d, want 503", resp.StatusCode)
	}

	// Feed the stream in batches, classifying mid-ingest as soon as the
	// first consolidation published a snapshot. Every request on both
	// endpoints must be a 200.
	published := false
	classifies := 0
	const batchSize = 40
	for off := 0; off < db.Len(); off += batchSize {
		end := off + batchSize
		if end > db.Len() {
			end = db.Len()
		}
		batch := make([]string, 0, end-off)
		for _, s := range db.Sequences[off:end] {
			batch = append(batch, db.Alphabet.Decode(s.Symbols))
		}
		resp, body := postJSON(t, base+"/v1/ingest", cluseq.IngestRequest{Sequences: batch})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest at offset %d = %d: %s", off, resp.StatusCode, body)
		}
		var ir cluseq.IngestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatalf("ingest response: %v", err)
		}
		if len(ir.Results) != len(batch) {
			t.Fatalf("ingest results = %d, want %d", len(ir.Results), len(batch))
		}

		resp, err = http.Get(base + "/v1/ingest/stats")
		if err != nil {
			t.Fatalf("GET /v1/ingest/stats: %v", err)
		}
		var st cluseq.StreamStats
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			t.Fatalf("ingest stats = %d, decode %v", resp.StatusCode, decErr)
		}
		if st.PublishedVersion > 0 {
			published = true
		}
		if published {
			probe := db.Alphabet.Decode(db.Sequences[0].Symbols)
			resp, body := postJSON(t, base+"/v1/classify", map[string]any{"model": "stream", "sequence": probe})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mid-ingest classify = %d: %s", resp.StatusCode, body)
			}
			var cr cluseq.ClassifyResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				t.Fatalf("classify response: %v", err)
			}
			if len(cr.Results) != 1 || cr.Results[0].Error != "" {
				t.Fatalf("mid-ingest classify result: %s", body)
			}
			classifies++
		}
	}
	if !published {
		t.Fatal("no snapshot was published during the stream")
	}
	if classifies == 0 {
		t.Fatal("no mid-ingest classification happened")
	}

	// Final state: clusters formed, consolidations ran, the stream model
	// is listed and the daemon is ready.
	resp, err = http.Get(base + "/v1/ingest/stats")
	if err != nil {
		t.Fatalf("GET /v1/ingest/stats: %v", err)
	}
	var st cluseq.StreamStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
	if st.Clusters < 2 {
		t.Errorf("clusters = %d, want ≥ 2 (4 planted)", st.Clusters)
	}
	if st.Consolidations == 0 || st.PublishedVersion == 0 {
		t.Errorf("consolidations = %d, version = %d, want both > 0", st.Consolidations, st.PublishedVersion)
	}
	if resp, err = http.Get(base + "/readyz"); err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after publish = %d, want 200", resp.StatusCode)
	}

	// The shared exposition must carry the stream gauges with live values.
	resp, err = http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("GET /metrics?format=prom: %v", err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"cluseq_stream_clusters",
		"cluseq_stream_consolidations_total",
		"cluseq_stream_published_version",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prom exposition missing %s", want)
		}
	}
	if strings.Contains(prom.String(), "cluseq_stream_clusters 0\n") {
		t.Error("cluseq_stream_clusters still 0 after the stream")
	}

	sig <- os.Interrupt
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exit code %d: %s", code, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// -trace-out captured the consolidation phases as spans.
	spans, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("reading trace file: %v", err)
	}
	for _, want := range []string{"stream_merge", "stream_threshold", "stream_publish"} {
		if !strings.Contains(string(spans), `"name":"`+want+`"`) {
			t.Errorf("trace file missing span %s", want)
		}
	}
}

// TestDaemonStreamPersistResume pins stream durability end to end: a
// daemon with -stream-persist writes its published snapshots to disk,
// and a restarted daemon serves the stream model immediately and keeps
// ingesting with version continuity.
func TestDaemonStreamPersistResume(t *testing.T) {
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 200,
		AvgLength:    80,
		AlphabetSize: 12,
		NumClusters:  3,
		Seed:         23,
	})
	if err != nil {
		t.Fatalf("SyntheticDB: %v", err)
	}
	modelsDir, persistDir := t.TempDir(), t.TempDir()
	streamArgs := []string{
		"-models", modelsDir,
		"-stream", "-stream-alphabet", db.Alphabet.String(),
		"-stream-threshold", "1.05", "-stream-consolidate", "32",
		"-stream-persist", persistDir, "-v",
	}
	ingest := func(base string, from, to int) {
		t.Helper()
		batch := make([]string, 0, to-from)
		for _, s := range db.Sequences[from:to] {
			batch = append(batch, db.Alphabet.Decode(s.Symbols))
		}
		resp, body := postJSON(t, base+"/v1/ingest", cluseq.IngestRequest{Sequences: batch})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest = %d: %s", resp.StatusCode, body)
		}
	}
	stats := func(base string) cluseq.StreamStats {
		t.Helper()
		resp, err := http.Get(base + "/v1/ingest/stats")
		if err != nil {
			t.Fatalf("GET /v1/ingest/stats: %v", err)
		}
		defer resp.Body.Close()
		var st cluseq.StreamStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("stats decode: %v", err)
		}
		return st
	}
	stop := func(sig chan os.Signal, done chan int, logs *bytes.Buffer) {
		t.Helper()
		sig <- os.Interrupt
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("daemon exit code %d: %s", code, logs.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}

	// First life: ingest past a few consolidations, then drain.
	base, sig, done, logs := startDaemon(t, streamArgs...)
	ingest(base, 0, 150)
	st1 := stats(base)
	if st1.PublishedVersion == 0 || st1.Clusters == 0 {
		t.Fatalf("first life never published: %+v", st1)
	}
	stop(sig, done, logs)

	// The shutdown flush must have persisted a v3 bundle covering every
	// ingest, including the tail past the last cadence consolidation.
	path := filepath.Join(persistDir, "stream"+cluseq.ModelBundleExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("persisted bundle: %v", err)
	}
	persisted, err := cluseq.LoadClassifier(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("persisted bundle unreadable: %v", err)
	}
	if persisted.PublishedVersion() <= st1.PublishedVersion {
		t.Fatalf("persisted version %d, want > %d (shutdown flush)", persisted.PublishedVersion(), st1.PublishedVersion)
	}

	// Second life: the stream model must be served before any ingest,
	// at the persisted version, and ingest must continue from there.
	base, sig, done, logs = startDaemon(t, streamArgs...)
	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz right after resume = %v, %v (want 200)", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	probe := db.Alphabet.Decode(db.Sequences[0].Symbols)
	resp, body := postJSON(t, base+"/v1/classify", map[string]any{"model": "stream", "sequence": probe})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify on resumed model = %d: %s", resp.StatusCode, body)
	}
	st2 := stats(base)
	if st2.PublishedVersion != persisted.PublishedVersion() || st2.Clusters != persisted.NumClusters() {
		t.Fatalf("resumed stats %+v, want version %d clusters %d", st2, persisted.PublishedVersion(), persisted.NumClusters())
	}
	ingest(base, 150, 200)
	stop(sig, done, logs)
	if st3 := persistedVersion(t, path); st3 <= persisted.PublishedVersion() {
		t.Fatalf("second life persisted version %d, want > %d", st3, persisted.PublishedVersion())
	}
	if !strings.Contains(logs.String(), "resumed stream model") {
		t.Fatalf("logs missing resume line: %s", logs.String())
	}
}

func persistedVersion(t *testing.T, path string) uint64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := cluseq.LoadClassifier(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return clf.PublishedVersion()
}
