package main

import (
	"os"
	"path/filepath"

	"cluseq"
)

// persister durably saves published stream snapshots without ever
// blocking the publisher: the engine's Publish callback runs under the
// engine mutex, so offer only swaps the snapshot into a one-slot
// mailbox (latest wins — intermediate versions a slow disk can't keep
// up with are skipped, the newest is never lost) and a single
// background goroutine does the file I/O. Writes are atomic (temp file
// + rename) so a crash mid-write leaves the previous bundle intact and
// a serving registry can mmap the file safely.
type persister struct {
	ch   chan persistReq
	done chan struct{}
	path string
	logf func(format string, args ...any)
}

type persistReq struct {
	clf     *cluseq.Classifier
	version uint64
}

func newPersister(path string, logf func(format string, args ...any)) *persister {
	p := &persister{
		ch:   make(chan persistReq, 1),
		done: make(chan struct{}),
		path: path,
		logf: logf,
	}
	go p.loop()
	return p
}

// offer hands a snapshot to the persister, replacing any not-yet-written
// predecessor. Never blocks; must not be called after stop.
func (p *persister) offer(clf *cluseq.Classifier, version uint64) {
	for {
		select {
		case p.ch <- persistReq{clf, version}:
			return
		default:
			// Mailbox full: evict the stale snapshot and retry.
			select {
			case <-p.ch:
			default:
			}
		}
	}
}

// stop drains the mailbox — the final snapshot is written before return —
// and ends the writer goroutine.
func (p *persister) stop() {
	close(p.ch)
	<-p.done
}

func (p *persister) loop() {
	defer close(p.done)
	for req := range p.ch {
		p.write(req)
	}
}

func (p *persister) write(req persistReq) {
	tmp, err := os.CreateTemp(filepath.Dir(p.path), filepath.Base(p.path)+".tmp")
	if err != nil {
		p.logf("cluseqd: persisting stream model v%d: %v", req.version, err)
		return
	}
	err = req.clf.SaveBundle(tmp, cluseq.BundleOptions{WithTrees: true, PublishedVersion: req.version})
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), p.path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		p.logf("cluseqd: persisting stream model v%d: %v", req.version, err)
		return
	}
	p.logf("cluseqd: persisted stream model v%d to %s", req.version, p.path)
}
