// Command datagen emits the synthetic workloads used throughout the
// repository (and by the paper's evaluation) in the FASTA-like text
// format, so they can be inspected, archived, or fed to cmd/cluseq.
//
// Usage:
//
//	datagen -kind synthetic|protein|language|trace [flags] > data.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"cluseq/internal/datagen"
	"cluseq/internal/seq"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind = fs.String("kind", "synthetic", "workload: synthetic|protein|language|trace")
		out  = fs.String("o", "", "output file (default stdout)")
		seed = fs.Uint64("seed", 1, "random seed")

		// synthetic knobs
		n        = fs.Int("n", 1000, "synthetic: number of sequences")
		avgLen   = fs.Int("len", 200, "synthetic: average sequence length")
		alpha    = fs.Int("alphabet", 100, "synthetic: alphabet size")
		clusters = fs.Int("clusters", 10, "synthetic: number of planted clusters")
		outliers = fs.Float64("outliers", 0.05, "synthetic: outlier fraction")

		// protein knobs
		scale = fs.Float64("scale", 0.1, "protein: family size multiplier (1.0 = the paper's 8000 sequences)")

		// language knobs
		sentences = fs.Int("sentences", 600, "language: sentences per language")
		noise     = fs.Int("noise", 100, "language: noise sentences")

		// trace knobs
		traces    = fs.Int("traces", 80, "trace: processes per profile")
		anomalies = fs.Int("anomalies", 10, "trace: intrusion-like traces")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var (
		db  *seq.Database
		err error
	)
	switch *kind {
	case "synthetic":
		db, err = datagen.SyntheticDB(datagen.SyntheticConfig{
			NumSequences: *n,
			AvgLength:    *avgLen,
			AlphabetSize: *alpha,
			NumClusters:  *clusters,
			OutlierFrac:  *outliers,
			Seed:         *seed,
		})
	case "protein":
		db, err = datagen.ProteinDB(datagen.ProteinConfig{Scale: *scale, Seed: *seed})
	case "language":
		db, err = datagen.LanguageDB(datagen.LanguageConfig{
			SentencesPerLanguage: *sentences,
			NoiseSentences:       *noise,
			Seed:                 *seed,
		})
	case "trace":
		db, err = datagen.TraceDB(datagen.TraceConfig{
			TracesPerProfile: *traces,
			Anomalies:        *anomalies,
			Seed:             *seed,
		})
	default:
		err = fmt.Errorf("unknown kind %q (synthetic|protein|language|trace)", *kind)
	}
	if err != nil {
		fmt.Fprintln(stderr, "datagen:", err)
		return 1
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "datagen:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := seq.Write(bw, db); err != nil {
		fmt.Fprintln(stderr, "datagen:", err)
		return 1
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(stderr, "datagen:", err)
		return 1
	}
	fmt.Fprintf(stderr, "datagen: wrote %d sequences (%d labels, alphabet %d)\n",
		db.Len(), len(db.Labels()), db.Alphabet.Size())
	return 0
}
