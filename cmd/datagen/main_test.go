package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cluseq"
)

func TestDatagenAllKinds(t *testing.T) {
	for _, kind := range []string{"synthetic", "protein", "language", "trace"} {
		args := []string{"-kind", kind, "-seed", "3"}
		switch kind {
		case "synthetic":
			args = append(args, "-n", "30", "-len", "40", "-alphabet", "8", "-clusters", "3")
		case "protein":
			args = append(args, "-scale", "0.01")
		case "language":
			args = append(args, "-sentences", "5", "-noise", "2")
		case "trace":
			args = append(args, "-traces", "4", "-anomalies", "2")
		}
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("%s: exit %d: %s", kind, code, errOut.String())
		}
		db, err := cluseq.ReadDatabase(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("%s: output not parseable: %v", kind, err)
		}
		if db.Len() == 0 {
			t.Fatalf("%s: empty database", kind)
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestDatagenToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var out, errOut strings.Builder
	code := run([]string{"-kind", "language", "-sentences", "4", "-noise", "1", "-o", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluseq.ReadDatabase(strings.NewReader(string(data))); err != nil {
		t.Fatalf("file not parseable: %v", err)
	}
}

func TestDatagenErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-kind", "nonsense"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown kind: exit %d, want 1", code)
	}
	if code := run([]string{"-badflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"-kind", "synthetic", "-alphabet", "1"}, &out, &errOut); code != 1 {
		t.Fatalf("invalid config: exit %d, want 1", code)
	}
}
