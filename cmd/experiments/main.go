// Command experiments regenerates every table and figure of the paper's
// evaluation section (§6) at a chosen workload scale.
//
// Usage:
//
//	experiments [-scale tiny|small|paper] [-seed N] [-run LIST] [-v]
//
// -run selects a comma-separated subset of: table2, table3, table4,
// figure4, figure5, table5, table6, order, outliers, recluster,
// figure6a, figure6b, figure6c, figure6d (default: all).
//
// -bench-recluster FILE is a standalone mode: it runs only the
// reclustering benchmark (similarity cache on/off × worker counts) and
// writes the result as JSON to FILE (conventionally
// BENCH_recluster.json), seeding the repository's perf trajectory.
//
// The paper scale replays the exact workload sizes of the paper
// (100,000 × 1000 synthetic, 8000 proteins) and can take hours; the
// default small scale preserves every reported shape in minutes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cluseq/internal/experiments"
)

// result is what every experiment runner yields: printable and CSV-able.
type result interface {
	fmt.Stringer
	experiments.Tabular
}

// runner names one experiment and its execution closure.
type runner struct {
	name string
	run  func() (result, error)
}

// buildRunners assembles the experiment registry in paper order. Figure
// 6's panels map to the paper's lettering: (a) clusters, (b) sequences,
// (c) average length, (d) alphabet size.
func buildRunners(sc experiments.Scale, seed uint64) []runner {
	runners := []runner{
		{"table2", func() (result, error) { return experiments.RunTable2(sc, seed) }},
		{"table3", func() (result, error) { return experiments.RunTable3(sc, seed) }},
		{"table4", func() (result, error) { return experiments.RunTable4(sc, seed) }},
		{"figure4", func() (result, error) { return experiments.RunFigure4(sc, seed) }},
		{"figure5", func() (result, error) { return experiments.RunFigure5(sc, seed) }},
		{"table5", func() (result, error) { return experiments.RunTable5(sc, seed) }},
		{"table6", func() (result, error) { return experiments.RunTable6(sc, seed) }},
		{"order", func() (result, error) { return experiments.RunOrderStudy(sc, seed) }},
		{"outliers", func() (result, error) { return experiments.RunOutlierStudy(sc, seed) }},
		{"recluster", func() (result, error) { return experiments.RunReclusterBench(sc, seed) }},
	}
	for i, axis := range experiments.Figure6Axes {
		axis := axis
		runners = append(runners, runner{
			"figure6" + string(rune('a'+i)),
			func() (result, error) { return experiments.RunFigure6(sc, axis, seed) },
		})
	}
	return runners
}

// experimentNames lists the registry's names in order.
func experimentNames() []string {
	rs := buildRunners(experiments.ScaleTiny, 1)
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.name
	}
	return names
}

// runReclusterBench executes the reclustering benchmark grid (similarity
// cache on/off × worker counts), prints the table, and serializes the
// result as indented JSON — the machine-readable perf baseline
// successive revisions diff against.
func runReclusterBench(sc experiments.Scale, seed uint64, path string) error {
	start := time.Now()
	res, err := experiments.RunReclusterBench(sc, seed)
	if err != nil {
		return err
	}
	fmt.Printf("== recluster (took %.1fs) ==\n%s\n", time.Since(start).Seconds(), res)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	scaleFlag := flag.String("scale", "small", "workload scale: tiny|small|paper")
	seed := flag.Uint64("seed", 1, "random seed for workload generation and clustering")
	runFlag := flag.String("run", "all", "comma-separated experiments to run, or 'all'")
	csvDir := flag.String("csv", "", "also write each result as CSV into this directory")
	benchRecluster := flag.String("bench-recluster", "", "run only the reclustering benchmark and write it as JSON to this file (e.g. BENCH_recluster.json)")
	flag.Parse()

	if *benchRecluster != "" {
		sc, err := experiments.ParseScale(*scaleFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := runReclusterBench(sc, *seed, *benchRecluster); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	sc, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	runners := buildRunners(sc, *seed)

	selected := map[string]bool{}
	all := *runFlag == "all"
	for _, name := range strings.Split(*runFlag, ",") {
		selected[strings.TrimSpace(name)] = true
	}

	known := map[string]bool{}
	for _, r := range runners {
		known[r.name] = true
	}
	if !all {
		for name := range selected {
			if name != "" && !known[name] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				os.Exit(2)
			}
		}
	}

	failed := false
	for _, r := range runners {
		if !all && !selected[r.name] {
			continue
		}
		start := time.Now()
		res, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			failed = true
			continue
		}
		fmt.Printf("== %s (took %.1fs) ==\n%s\n", r.name, time.Since(start).Seconds(), res)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, r.name+".csv")
			f, err := os.Create(path)
			if err == nil {
				err = experiments.WriteCSV(f, res)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing CSV: %v\n", r.name, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
