// Command experiments regenerates every table and figure of the paper's
// evaluation section (§6) at a chosen workload scale.
//
// Usage:
//
//	experiments [-scale tiny|small|paper] [-seed N] [-run LIST] [-v]
//	            [-cpuprofile FILE] [-memprofile FILE] [-trace-out FILE]
//
// -run selects a comma-separated subset of: table2, table3, table4,
// figure4, figure5, table5, table6, order, outliers, recluster,
// similarity, figure6a, figure6b, figure6c, figure6d (default: all).
//
// -bench-recluster FILE is a standalone mode: it runs only the
// reclustering benchmark (similarity cache on/off × scoring snapshots
// on/off × worker counts) and writes the result as JSON to FILE
// (conventionally BENCH_recluster.json), seeding the repository's perf
// trajectory. -bench-similarity FILE does the same for the similarity
// scan benchmark (tree scan vs compiled snapshot, conventionally
// BENCH_similarity.json).
//
// -cpuprofile/-memprofile write standard pprof profiles covering the
// selected runs; see EXPERIMENTS.md for the profiling workflow.
//
// -trace-out FILE records one JSONL span per clustering phase per
// iteration across every selected run, plus a final metrics snapshot;
// see EXPERIMENTS.md for how to read the file.
//
// The paper scale replays the exact workload sizes of the paper
// (100,000 × 1000 synthetic, 8000 proteins) and can take hours; the
// default small scale preserves every reported shape in minutes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cluseq"
	"cluseq/internal/experiments"
	"cluseq/internal/prof"
)

// result is what every experiment runner yields: printable and CSV-able.
type result interface {
	fmt.Stringer
	experiments.Tabular
}

// runner names one experiment and its execution closure.
type runner struct {
	name string
	run  func() (result, error)
}

// buildRunners assembles the experiment registry in paper order. Figure
// 6's panels map to the paper's lettering: (a) clusters, (b) sequences,
// (c) average length, (d) alphabet size.
func buildRunners(sc experiments.Scale, seed uint64) []runner {
	runners := []runner{
		{"table2", func() (result, error) { return experiments.RunTable2(sc, seed) }},
		{"table3", func() (result, error) { return experiments.RunTable3(sc, seed) }},
		{"table4", func() (result, error) { return experiments.RunTable4(sc, seed) }},
		{"figure4", func() (result, error) { return experiments.RunFigure4(sc, seed) }},
		{"figure5", func() (result, error) { return experiments.RunFigure5(sc, seed) }},
		{"table5", func() (result, error) { return experiments.RunTable5(sc, seed) }},
		{"table6", func() (result, error) { return experiments.RunTable6(sc, seed) }},
		{"order", func() (result, error) { return experiments.RunOrderStudy(sc, seed) }},
		{"outliers", func() (result, error) { return experiments.RunOutlierStudy(sc, seed) }},
		{"recluster", func() (result, error) { return experiments.RunReclusterBench(sc, seed) }},
		{"similarity", func() (result, error) { return experiments.RunSimilarityBench(sc, seed) }},
	}
	for i, axis := range experiments.Figure6Axes {
		axis := axis
		runners = append(runners, runner{
			"figure6" + string(rune('a'+i)),
			func() (result, error) { return experiments.RunFigure6(sc, axis, seed) },
		})
	}
	return runners
}

// experimentNames lists the registry's names in order.
func experimentNames() []string {
	rs := buildRunners(experiments.ScaleTiny, 1)
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.name
	}
	return names
}

// runBenchJSON executes one benchmark runner, prints the table, and
// serializes the result as indented JSON — the machine-readable perf
// baseline successive revisions diff against.
func runBenchJSON(name string, run func() (result, error), path string) error {
	start := time.Now()
	res, err := run()
	if err != nil {
		return err
	}
	fmt.Printf("== %s (took %.1fs) ==\n%s\n", name, time.Since(start).Seconds(), res)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	os.Exit(run())
}

// run holds the whole program so deferred cleanups (profile flushing)
// execute before the exit code is raised; main's os.Exit would skip
// them.
func run() int {
	scaleFlag := flag.String("scale", "small", "workload scale: tiny|small|paper")
	seed := flag.Uint64("seed", 1, "random seed for workload generation and clustering")
	runFlag := flag.String("run", "all", "comma-separated experiments to run, or 'all'")
	csvDir := flag.String("csv", "", "also write each result as CSV into this directory")
	benchRecluster := flag.String("bench-recluster", "", "run only the reclustering benchmark and write it as JSON to this file (e.g. BENCH_recluster.json)")
	benchSimilarity := flag.String("bench-similarity", "", "run only the similarity scan benchmark and write it as JSON to this file (e.g. BENCH_similarity.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile covering the selected runs to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file on exit")
	traceOut := flag.String("trace-out", "", "write phase spans of every clustering run plus a final metrics snapshot as JSON Lines to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var (
		obsReg *cluseq.Metrics
		tracer *cluseq.Tracer
	)
	if *traceOut != "" {
		traceFile, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		obsReg = cluseq.NewMetrics()
		tracer = cluseq.NewTracer(traceFile)
		experiments.Instrument(obsReg, tracer)
		defer func() {
			tracer.EmitMetrics(obsReg)
			err := tracer.Err()
			if cerr := traceFile.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "writing trace:", err)
			}
		}()
	}
	code := 0
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
	}()
	code = runSelected(*scaleFlag, *seed, *runFlag, *csvDir, *benchRecluster, *benchSimilarity)
	return code
}

func runSelected(scaleFlag string, seed uint64, runFlag, csvDir, benchRecluster, benchSimilarity string) int {
	sc, err := experiments.ParseScale(scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if benchRecluster != "" || benchSimilarity != "" {
		if benchRecluster != "" {
			if err := runBenchJSON("recluster", func() (result, error) {
				return experiments.RunReclusterBench(sc, seed)
			}, benchRecluster); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		if benchSimilarity != "" {
			if err := runBenchJSON("similarity", func() (result, error) {
				return experiments.RunSimilarityBench(sc, seed)
			}, benchSimilarity); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return 0
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	runners := buildRunners(sc, seed)

	selected := map[string]bool{}
	all := runFlag == "all"
	for _, name := range strings.Split(runFlag, ",") {
		selected[strings.TrimSpace(name)] = true
	}

	known := map[string]bool{}
	for _, r := range runners {
		known[r.name] = true
	}
	if !all {
		for name := range selected {
			if name != "" && !known[name] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				return 2
			}
		}
	}

	failed := false
	for _, r := range runners {
		if !all && !selected[r.name] {
			continue
		}
		start := time.Now()
		res, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			failed = true
			continue
		}
		fmt.Printf("== %s (took %.1fs) ==\n%s\n", r.name, time.Since(start).Seconds(), res)
		if csvDir != "" {
			path := filepath.Join(csvDir, r.name+".csv")
			f, err := os.Create(path)
			if err == nil {
				err = experiments.WriteCSV(f, res)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing CSV: %v\n", r.name, err)
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}
