package main

import (
	"testing"
)

// The experiments command's logic lives in internal/experiments (tested
// there); main.go only wires flags. This file checks the name registry so
// a renamed experiment cannot silently fall out of -run.
func TestExperimentNameRegistry(t *testing.T) {
	want := []string{
		"table2", "table3", "table4", "figure4", "figure5",
		"table5", "table6", "order", "outliers", "recluster",
		"similarity", "figure6a", "figure6b", "figure6c", "figure6d",
	}
	got := experimentNames()
	if len(got) != len(want) {
		t.Fatalf("registry has %d names, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
