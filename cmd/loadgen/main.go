// Command loadgen replays a committed load scenario against a running
// cluseqd and emits a JSON result with throughput, latency quantiles,
// error rates, and per-route breakdowns. With -baseline it compares the
// run against a committed result and exits non-zero on regression — the
// core of the CI loadperf gate (see benchmarks/README.md).
//
// Usage:
//
//	loadgen -target URL -scenario FILE [-out FILE] [-baseline FILE]
//	        [-workers N] [-validate] [-wait-ready DUR] [-v]
//	        [-trace-slowest K]
//	        [-min-throughput-ratio R] [-max-p50-ratio R] [-max-p99-ratio R]
//	        [-p50-floor-ms MS] [-p99-floor-ms MS] [-max-error-rate R]
//
// The generator is open loop: arrivals follow the scenario's seeded
// Poisson schedule no matter how the target responds, so a slowdown
// shows up as latency and queueing, never as a quietly reduced offered
// rate. The same (scenario, seed) pair always offers the identical
// request sequence, which is what makes committed baselines comparable.
//
// Exit codes:
//
//	0  run completed; no baseline given, or verdict pass/improve
//	1  run or I/O error
//	2  usage error
//	3  verdict regress (a tolerance check failed against the baseline)
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"cluseq/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus process concerns, so tests can drive the CLI
// in-process against httptest servers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target    = fs.String("target", "", "base URL of the cluseqd under test, e.g. http://127.0.0.1:8080 (required)")
		scenario  = fs.String("scenario", "", "scenario JSON file (required; see benchmarks/scenarios/)")
		out       = fs.String("out", "", "write the run's result JSON here")
		baseline  = fs.String("baseline", "", "committed baseline result to compare against")
		workers   = fs.Int("workers", 0, "override the scenario's max_inflight worker count")
		validate  = fs.Bool("validate", false, "decode classify responses and check result counts match batch sizes")
		waitReady = fs.Duration("wait-ready", 0, "poll the target's /readyz for up to this long before starting")
		verbose   = fs.Bool("v", false, "log progress to stderr")
		traceK    = fs.Int("trace-slowest", 8, "send deterministic traceparent headers and record the K slowest responses' trace IDs in the result (0 = off)")

		minThroughput = fs.Float64("min-throughput-ratio", 0, "fail below baseline×ratio (0 = default 0.7)")
		maxP50        = fs.Float64("max-p50-ratio", 0, "fail above max(baseline×ratio, p50 floor) (0 = default 6)")
		maxP99        = fs.Float64("max-p99-ratio", 0, "fail above max(baseline×ratio, p99 floor) (0 = default 4)")
		p50Floor      = fs.Float64("p50-floor-ms", 0, "noise floor for the p50 gate (0 = default 15)")
		p99Floor      = fs.Float64("p99-floor-ms", 0, "noise floor for the p99 gate (0 = default 25)")
		maxErrRate    = fs.Float64("max-error-rate", 0, "absolute error-rate bound (0 = default 0.01)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *target == "" || *scenario == "" || fs.NArg() > 0 {
		fmt.Fprintln(stderr, "usage: loadgen -target URL -scenario FILE [flags]")
		return 2
	}

	sc, err := loadgen.ReadScenario(*scenario)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 1
	}

	if *waitReady > 0 {
		if err := waitForReady(*target, *waitReady); err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 1
		}
	}

	r := &loadgen.Runner{
		BaseURL:      *target,
		Workers:      *workers,
		Validate:     *validate,
		ScrapeTarget: true,
		TraceSlowest: *traceK,
	}
	if *verbose {
		r.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	startedAt := time.Now().UTC().Format(time.RFC3339)
	res, err := r.Run(sc)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 1
	}
	res.StartedAt = startedAt

	fmt.Fprintf(stdout, "scenario %s: %d requests, %.1f rps, p50 %.2fms p99 %.2fms, error rate %.4f, %d late\n",
		res.Scenario, res.RequestsSent, res.ThroughputRPS,
		res.Overall.P50Ms, res.Overall.P99Ms, res.ErrorRate, res.LateDispatches)

	if *out != "" {
		if err := loadgen.WriteResult(*out, res); err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 1
		}
	}

	if *baseline == "" {
		return 0
	}
	base, err := loadgen.ReadResult(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 1
	}
	cmp := loadgen.Compare(base, res, loadgen.Tolerance{
		MinThroughputRatio: *minThroughput,
		MaxP50Ratio:        *maxP50,
		MaxP99Ratio:        *maxP99,
		P50FloorMs:         *p50Floor,
		P99FloorMs:         *p99Floor,
		MaxErrorRate:       *maxErrRate,
	})
	fmt.Fprint(stdout, cmp)
	if cmp.Verdict == loadgen.VerdictRegress {
		return 3
	}
	return 0
}

// waitForReady polls GET /readyz until it answers 200 or the deadline
// passes, so CI can start the daemon and the generator back to back.
func waitForReady(target string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(target + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("target %s not ready after %v", target, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
