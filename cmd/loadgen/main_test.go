package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cluseq/internal/loadgen"
)

// stubTarget answers the three routes the generator drives plus the
// readiness probe, well-formed enough for -validate.
func stubTarget() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Sequence  string   `json:"sequence"`
			Sequences []string `json:"sequences"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		n := len(req.Sequences)
		if req.Sequence != "" {
			n = 1
		}
		results := make([]map[string]any, n)
		for i := range results {
			results[i] = map[string]any{"cluster": 0}
		}
		json.NewEncoder(w).Encode(map[string]any{"results": results})
	})
	mux.HandleFunc("POST /v1/models/reload", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"requests":{"classify":1}}`))
	})
	return mux
}

// writeScenario drops a small valid scenario file into dir.
func writeScenario(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "scenario.json")
	spec := `{
  "name": "cli-test",
  "seed": 11,
  "model": "m",
  "alphabet": "abcd",
  "seq_len": 8,
  "seq_pool": 16,
  "rate_per_sec": 300,
  "duration_sec": 1,
  "batch_fraction": 0.2,
  "batch_sizes": [{"size": 4, "weight": 1}],
  "reload_period_sec": 0.5
}
`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-target", "http://x"},
		{"-scenario", "s.json"},
		{"-target", "http://x", "-scenario", "s.json", "stray-arg"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%q) = %d, want 2\n%s", args, code, errb.String())
		}
	}
}

func TestRunWritesResultAndComparesBaseline(t *testing.T) {
	ts := httptest.NewServer(stubTarget())
	defer ts.Close()
	dir := t.TempDir()
	scenario := writeScenario(t, dir)
	outPath := filepath.Join(dir, "result.json")

	var out, errb bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-scenario", scenario, "-out", outPath,
		"-validate", "-wait-ready", "5s", "-v",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("run = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "scenario cli-test:") {
		t.Fatalf("summary line missing: %s", out.String())
	}

	res, err := loadgen.ReadResult(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "cli-test" || res.RequestsSent == 0 || res.StartedAt == "" {
		t.Fatalf("written result incomplete: %+v", res)
	}
	if errorTotal := res.ErrorRate; errorTotal != 0 {
		t.Fatalf("stub run should be error-free, got rate %v", errorTotal)
	}

	// Self-comparison passes: the same run is its own baseline.
	out.Reset()
	code = run([]string{
		"-target", ts.URL, "-scenario", scenario, "-baseline", outPath,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("self-baseline run = %d\n%s\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "verdict: pass") && !strings.Contains(out.String(), "verdict: improve") {
		t.Fatalf("expected pass/improve verdict:\n%s", out.String())
	}

	// An impossible baseline forces a regression and exit code 3.
	res.ThroughputRPS *= 100
	res.Overall.P50Ms = 0.001
	res.Overall.P99Ms = 0.001
	impossible := filepath.Join(dir, "impossible.json")
	if err := loadgen.WriteResult(impossible, res); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code = run([]string{
		"-target", ts.URL, "-scenario", scenario, "-baseline", impossible,
	}, &out, &errb)
	if code != 3 {
		t.Fatalf("impossible baseline run = %d, want 3\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "verdict: regress") {
		t.Fatalf("expected regress verdict:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	scenario := writeScenario(t, dir)

	var out, errb bytes.Buffer
	// Missing scenario file.
	if code := run([]string{"-target", "http://127.0.0.1:1", "-scenario", filepath.Join(dir, "nope.json")}, &out, &errb); code != 1 {
		t.Fatalf("missing scenario = %d, want 1", code)
	}
	// Unreachable target with -wait-ready fails fast.
	if code := run([]string{"-target", "http://127.0.0.1:1", "-scenario", scenario, "-wait-ready", "200ms"}, &out, &errb); code != 1 {
		t.Fatalf("unreachable target = %d, want 1", code)
	}
	// Missing baseline file after a good run.
	ts := httptest.NewServer(stubTarget())
	defer ts.Close()
	if code := run([]string{"-target", ts.URL, "-scenario", scenario, "-baseline", filepath.Join(dir, "nope.json")}, &out, &errb); code != 1 {
		t.Fatalf("missing baseline = %d, want 1", code)
	}
}
