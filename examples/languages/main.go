// Languages: reproduce the flavor of the paper's Table 4 — cluster
// sentences written in three languages (spaces removed, romanized to one
// shared alphabet) purely by their letter statistics, then use the
// per-cluster probabilistic suffix trees directly to classify new
// sentences.
//
// Run with:
//
//	go run ./examples/languages
package main

import (
	"fmt"
	"log"

	"cluseq"
	"cluseq/internal/datagen"
)

func main() {
	db, err := datagen.LanguageDB(datagen.LanguageConfig{
		SentencesPerLanguage: 150,
		NoiseSentences:       20,
		Seed:                 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering %d sentences (three languages + noise)…\n", db.Len())

	res, err := cluseq.Cluster(db, cluseq.Options{
		Significance:        10,
		MinDistinct:         4,
		SimilarityThreshold: 2.5,
		MaxDepth:            4,
		Seed:                11,
		KeepTrees:           true, // keep cluster models for classification
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := cluseq.Evaluate(res, cluseq.Labels(db))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d clusters; per-language quality:\n", res.NumClusters())
	for _, pr := range rep.PerLabel {
		fmt.Printf("  %-9s precision %.0f%%  recall %.0f%%\n",
			pr.Label, 100*pr.Precision, 100*pr.Recall)
	}

	// Identify each cluster's dominant language by majority label…
	names := make([]string, res.NumClusters())
	for i, c := range res.Clusters {
		counts := map[string]int{}
		for _, m := range c.Members {
			counts[db.Sequences[m].Label]++
		}
		best, bestN := "?", 0
		for l, n := range counts {
			if l != "" && n > bestN {
				best, bestN = l, n
			}
		}
		names[i] = best
	}

	// …then classify novel sentences directly against the cluster models
	// the run kept (Options.KeepTrees).
	background := db.SymbolFrequencies()
	trees := make([]*cluseq.PST, res.NumClusters())
	for i, c := range res.Clusters {
		trees[i] = c.Tree
	}

	probes := []string{
		"thegovernmentsaidthatthenewpolicywouldtakeeffect",
		"watashiwanihongogasukoshiwakarimasu",
		"womenxianzaijiuyaoquxuexiaoshangke",
	}
	fmt.Println("\nclassifying novel sentences:")
	for _, probe := range probes {
		syms, err := db.Alphabet.Encode(probe)
		if err != nil {
			log.Fatal(err)
		}
		best, bestScore := -1, 0.0
		for i, tree := range trees {
			sim := tree.Similarity(syms, background)
			score := sim.LogSim / float64(len(syms)) // per-symbol normalized
			if best == -1 || score > bestScore {
				best, bestScore = i, score
			}
		}
		fmt.Printf("  %q → %s (per-symbol similarity %.2f)\n",
			probe[:24]+"…", names[best], bestScore)
	}
}
