// Proteins: reproduce the flavor of the paper's §6.1 experiment — cluster
// a database of protein-family sequences by sequential features alone and
// measure per-family precision/recall against the ground truth.
//
// The workload is the repository's simulated SWISS-PROT stand-in (the
// original 8000-protein subset is not redistributable); a downstream user
// would load real sequences via cluseq.ReadDatabase instead.
//
// Run with:
//
//	go run ./examples/proteins
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cluseq"
	"cluseq/internal/datagen"
)

func main() {
	// A 1/10-scale protein database: 30 families, ~800 sequences over the
	// 20-letter amino-acid alphabet, family identity carried by conserved
	// motifs plus a mild composition bias.
	db, err := datagen.ProteinDB(datagen.ProteinConfig{Scale: 0.1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering %d proteins from %d families…\n", db.Len(), len(db.Labels()))

	res, err := cluseq.Cluster(db, cluseq.Options{
		// Like the paper, start with a deliberately wrong cluster count
		// and let the algorithm adapt.
		InitialClusters:     10,
		Significance:        12,
		MinDistinct:         4,
		SimilarityThreshold: 1.5,
		MaxDepth:            6,
		Seed:                7,
	})
	if err != nil {
		log.Fatal(err)
	}

	rep, err := cluseq.Evaluate(res, cluseq.Labels(db))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged to %d clusters in %d iterations (final t = %.3f)\n",
		res.NumClusters(), res.Iterations, res.FinalThreshold)
	fmt.Printf("accuracy %.1f%%, macro precision %.1f%%, macro recall %.1f%%\n\n",
		100*rep.Accuracy, 100*rep.MacroPrecision, 100*rep.MacroRecall)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "family\tsize\tprecision\trecall")
	for _, pr := range rep.PerLabel {
		fmt.Fprintf(tw, "%s\t%d\t%.0f%%\t%.0f%%\n",
			pr.Label, pr.TrueSize, 100*pr.Precision, 100*pr.Recall)
	}
	tw.Flush()
}
