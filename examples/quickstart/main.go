// Quickstart: build a small sequence database by hand, cluster it with
// CLUSEQ, and print the discovered clusters.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cluseq"
)

func main() {
	// Two behavioural "species" of toy DNA reads plus one junk read:
	// the first group alternates ac/gt doublets, the second runs long
	// homopolymers. CLUSEQ sees only the raw symbol sequences.
	db := cluseq.NewDatabase(cluseq.MustAlphabet("acgt"))
	reads := []struct{ id, raw string }{
		{"alt1", "acgtacgtacgtacgtacgtacgtacgtacgt"},
		{"alt2", "acgtacgtacgtacgaacgtacgtacgtacgt"},
		{"alt3", "cgtacgtacgtacgtacgtacgtacgtacgta"},
		{"alt4", "acgtacgtccgtacgtacgtacgtacgtacgc"},
		{"alt5", "gtacgtacgtacgtacgtacgtacgtacgtac"},
		{"runs1", "aaaaaaccccccggggggttttttaaaaaacc"},
		{"runs2", "ccccccggggggttttttaaaaaaccccccgg"},
		{"runs3", "ggggggttttttaaaaaaccccccggggggtt"},
		{"runs4", "ttttttaaaaaaccccccggggggttttttaa"},
		{"runs5", "aaaaaaaccccccgggggggttttttaaaaac"},
		{"junk1", "atcgtagctagcatgcatgcgatcgtagcatg"},
	}
	for _, r := range reads {
		if err := db.AddString(r.id, "", r.raw); err != nil {
			log.Fatal(err)
		}
	}

	res, err := cluseq.Cluster(db, cluseq.Options{
		// Tiny data: trust contexts after 2 occurrences, keep clusters
		// with at least 2 distinctive members, and examine up to 4
		// symbols of history.
		Significance:        2,
		MinDistinct:         2,
		MaxDepth:            4,
		SimilarityThreshold: 1.5,
		Seed:                1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d clusters (final similarity threshold %.3f)\n",
		res.NumClusters(), res.FinalThreshold)
	for i, c := range res.Clusters {
		fmt.Printf("cluster %d:", i+1)
		for _, m := range c.Members {
			fmt.Printf(" %s", db.Sequences[m].ID)
		}
		fmt.Println()
	}
	fmt.Print("outliers:")
	for _, m := range res.Unclustered {
		fmt.Printf(" %s", db.Sequences[m].ID)
	}
	fmt.Println()
}
