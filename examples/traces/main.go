// Traces: cluster system-call traces by process behaviour and flag
// intrusion-like processes as outliers — the "system traces" application
// from the paper's introduction, framed as host-based anomaly detection.
//
// Run with:
//
//	go run ./examples/traces
package main

import (
	"fmt"
	"log"

	"cluseq"
	"cluseq/internal/datagen"
)

func main() {
	db, err := datagen.TraceDB(datagen.TraceConfig{
		TracesPerProfile: 70,
		Anomalies:        12,
		Seed:             21,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering %d process traces (%d syscalls in the inventory)…\n",
		db.Len(), db.Alphabet.Size())

	res, err := cluseq.Cluster(db, cluseq.Options{
		Significance:        10,
		MinDistinct:         5,
		SimilarityThreshold: 2,
		MaxDepth:            5,
		Seed:                21,
		// Process kinds differ in their whole call mix, not just in rare
		// local patterns — the fixed significance threshold suits that.
		FixedSignificance: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	rep, err := cluseq.Evaluate(res, cluseq.Labels(db))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d behaviour clusters (accuracy vs process kinds: %.0f%%)\n\n",
		res.NumClusters(), 100*rep.Accuracy)
	for i, c := range res.Clusters {
		counts := map[string]int{}
		for _, m := range c.Members {
			l := db.Sequences[m].Label
			if l == "" {
				l = "(anomaly)"
			}
			counts[l]++
		}
		ex := db.Sequences[c.Members[0]]
		window := ex.Symbols
		if len(window) > 12 {
			window = window[:12]
		}
		fmt.Printf("cluster %d (%d traces): %v\n  e.g. %s: %s …\n",
			i+1, len(c.Members), counts, ex.ID, datagen.DecodeTrace(window))
	}

	// Two kinds of suspicious findings: traces matching no behaviour at
	// all (outliers), and clusters of behaviour no known process kind
	// exhibits (novel groups — e.g. several intrusions sharing an exploit
	// signature).
	flagged := map[int]bool{}
	for _, m := range res.Unclustered {
		flagged[m] = true
	}
	for i, c := range res.Clusters {
		labeled := 0
		for _, m := range c.Members {
			if db.Sequences[m].Label != "" {
				labeled++
			}
		}
		if labeled*2 < len(c.Members) { // majority-unknown cluster
			fmt.Printf("cluster %d matches no known process kind → flagged as novel behaviour\n", i+1)
			for _, m := range c.Members {
				flagged[m] = true
			}
		}
	}
	truePositives, falsePositives, anomalies := 0, 0, 0
	for i, s := range db.Sequences {
		if s.Label == "" {
			anomalies++
			if flagged[i] {
				truePositives++
			}
		} else if flagged[i] {
			falsePositives++
		}
	}
	fmt.Printf("\nflagged %d traces; %d/%d planted intrusions caught, %d false positives\n",
		len(flagged), truePositives, anomalies, falsePositives)
}
