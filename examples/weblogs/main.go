// Weblogs: cluster web-access sessions by navigation behaviour — one of
// the motivating applications in the paper's introduction ("web usage
// data"). Each session is the sequence of page categories a visitor hit;
// CLUSEQ groups sessions whose *navigation patterns* match, without any
// feature engineering, and flags bot-like traffic as outliers.
//
// This example is fully self-contained (it synthesizes its own sessions
// with the standard library) and uses only the public API.
//
// Run with:
//
//	go run ./examples/weblogs
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"cluseq"
)

// Page categories, one symbol each:
//
//	H home  L product listing  P product page  C cart  K checkout
//	S search  A article  F faq  U account
const pages = "HLPCKSAFU"

// profile is a first-order navigation model: for each page, where the
// visitor tends to go next.
type profile struct {
	name  string
	next  map[byte]string // page → weighted string of following pages
	start string
}

var profiles = []profile{
	{
		// Shoppers funnel home → listing → product → cart → checkout.
		name:  "shopper",
		start: "H",
		next: map[byte]string{
			'H': "LLLLS", 'L': "PPPPL", 'P': "CCPLL", 'C': "KKPC", 'K': "HU",
			'S': "LLP", 'A': "H", 'F': "C", 'U': "H",
		},
	},
	{
		// Researchers bounce between search, articles, and FAQs.
		name:  "researcher",
		start: "S",
		next: map[byte]string{
			'H': "SSA", 'S': "AAAS", 'A': "AASSF", 'F': "AS", 'P': "A",
			'L': "S", 'C': "H", 'K': "H", 'U': "H",
		},
	},
	{
		// Window shoppers browse listings and products, never buying.
		name:  "browser",
		start: "L",
		next: map[byte]string{
			'H': "LL", 'L': "PLPL", 'P': "LPLP", 'C': "L", 'K': "H",
			'S': "L", 'A': "L", 'F': "L", 'U': "H",
		},
	},
}

func sampleSession(p profile, length int, rng *rand.Rand) string {
	out := make([]byte, 0, length)
	cur := p.start[rng.IntN(len(p.start))]
	for len(out) < length {
		out = append(out, cur)
		choices := p.next[cur]
		cur = choices[rng.IntN(len(choices))]
	}
	return string(out)
}

func main() {
	rng := rand.New(rand.NewPCG(42, 43))
	db := cluseq.NewDatabase(cluseq.MustAlphabet(pages))

	id := 0
	add := func(label, session string) {
		if err := db.AddString(fmt.Sprintf("s%04d", id), label, session); err != nil {
			log.Fatal(err)
		}
		id++
	}
	for _, p := range profiles {
		for i := 0; i < 60; i++ {
			add(p.name, sampleSession(p, 30+rng.IntN(50), rng))
		}
	}
	// Bot traffic: uniformly random page hits.
	for i := 0; i < 12; i++ {
		n := 30 + rng.IntN(50)
		b := make([]byte, n)
		for j := range b {
			b[j] = pages[rng.IntN(len(pages))]
		}
		add("", string(b))
	}

	res, err := cluseq.Cluster(db, cluseq.Options{
		Significance:        10,
		MinDistinct:         5,
		SimilarityThreshold: 1.5,
		MaxDepth:            4,
		Seed:                42,
		FixedSignificance:   true, // navigation profiles differ globally
	})
	if err != nil {
		log.Fatal(err)
	}

	rep, err := cluseq.Evaluate(res, cluseq.Labels(db))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d sessions into %d behaviour groups (accuracy %.0f%%)\n\n",
		db.Len(), res.NumClusters(), 100*rep.Accuracy)

	for i, c := range res.Clusters {
		counts := map[string]int{}
		for _, m := range c.Members {
			l := db.Sequences[m].Label
			if l == "" {
				l = "(bot)"
			}
			counts[l]++
		}
		fmt.Printf("group %d (%d sessions): %v\n", i+1, len(c.Members), counts)
		// Show one representative session.
		ex := db.Sequences[c.Members[0]]
		fmt.Printf("  e.g. %s: %s\n", ex.ID, db.Alphabet.Decode(ex.Symbols))
	}
	bots := 0
	for _, m := range res.Unclustered {
		if db.Sequences[m].Label == "" {
			bots++
		}
	}
	fmt.Printf("\n%d sessions left unclustered, %d of them bot traffic\n",
		len(res.Unclustered), bots)
}
