module cluseq

go 1.22
