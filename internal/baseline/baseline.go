// Package baseline implements the clustering algorithms behind the four
// models CLUSEQ is compared against in Table 2 of the paper: the edit
// distance (ED), the edit distance with block operations (EDBO), the
// hidden Markov model (HMM), and the q-gram approach. The paper does not
// fix the clustering procedure for the distance-based baselines, so this
// package provides the standard choices — k-medoids and agglomerative
// average linkage over a pairwise distance matrix, a likelihood-based HMM
// mixture, and spherical k-means over q-gram profiles.
package baseline

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"cluseq/internal/hmm"
	"cluseq/internal/qgram"
	"cluseq/internal/seq"
)

// DistanceMatrix evaluates the symmetric pairwise distance d(i, j) for all
// 0 ≤ i < j < n in parallel and returns the full n×n matrix. workers ≤ 0
// uses GOMAXPROCS.
func DistanceMatrix(n int, d func(i, j int) float64, workers int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				for j := i + 1; j < n; j++ {
					v := d(i, j)
					m[i][j] = v
					m[j][i] = v
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	return m
}

// KMedoids clusters n objects given their pairwise distances using Voronoi
// iteration: medoids seeded greedily (farthest-first), points assigned to
// the nearest medoid, and each medoid re-chosen as its cluster's minimizer
// of total intra-cluster distance, until stable or maxIter. Returns the
// assignment vector.
func KMedoids(dist [][]float64, k, maxIter int, rng *rand.Rand) ([]int, error) {
	n := len(dist)
	if k < 1 || k > n {
		return nil, fmt.Errorf("baseline: k=%d outside [1, %d]", k, n)
	}
	medoids := farthestFirst(dist, k, rng)
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		// Assignment step.
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c, m := range medoids {
				if dist[i][m] < bestD {
					bestD = dist[i][m]
					best = c
				}
			}
			if assign[i] != best || iter == 0 {
				assign[i] = best
				changed = true
			}
		}
		// Update step: new medoid minimizes total distance to members.
		for c := range medoids {
			var members []int
			for i, a := range assign {
				if a == c {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				// Re-seed an empty cluster with the point farthest from
				// its current medoid.
				far, farD := medoids[c], -1.0
				for i := 0; i < n; i++ {
					if d := dist[i][medoids[assign[i]]]; d > farD {
						farD = d
						far = i
					}
				}
				medoids[c] = far
				continue
			}
			best, bestSum := medoids[c], math.Inf(1)
			for _, cand := range members {
				sum := 0.0
				for _, other := range members {
					sum += dist[cand][other]
				}
				if sum < bestSum {
					bestSum = sum
					best = cand
				}
			}
			if medoids[c] != best {
				medoids[c] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return assign, nil
}

// farthestFirst seeds k medoids: a random first point, then repeatedly the
// point maximizing distance to its nearest chosen medoid.
func farthestFirst(dist [][]float64, k int, rng *rand.Rand) []int {
	n := len(dist)
	medoids := []int{rng.IntN(n)}
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = dist[i][medoids[0]]
	}
	for len(medoids) < k {
		far, farD := 0, -1.0
		for i := 0; i < n; i++ {
			if minD[i] > farD {
				farD = minD[i]
				far = i
			}
		}
		medoids = append(medoids, far)
		for i := 0; i < n; i++ {
			if d := dist[i][far]; d < minD[i] {
				minD[i] = d
			}
		}
	}
	return medoids
}

// Agglomerative performs average-linkage hierarchical clustering over a
// distance matrix, merging until k clusters remain. O(n³) — intended for
// the moderate n of the Table 2 comparison.
func Agglomerative(dist [][]float64, k int) ([]int, error) {
	n := len(dist)
	if k < 1 || k > n {
		return nil, fmt.Errorf("baseline: k=%d outside [1, %d]", k, n)
	}
	// Working copy of average-linkage distances plus cluster sizes.
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	size := make([]int, n)
	active := make([]bool, n)
	parent := make([]int, n)
	for i := range size {
		size[i] = 1
		active[i] = true
		parent[i] = i
	}
	remaining := n
	for remaining > k {
		// Find the closest active pair.
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if active[j] && d[i][j] < bd {
					bd = d[i][j]
					bi, bj = i, j
				}
			}
		}
		// Merge j into i with Lance-Williams average linkage.
		for x := 0; x < n; x++ {
			if x == bi || x == bj || !active[x] {
				continue
			}
			d[bi][x] = (float64(size[bi])*d[bi][x] + float64(size[bj])*d[bj][x]) /
				float64(size[bi]+size[bj])
			d[x][bi] = d[bi][x]
		}
		size[bi] += size[bj]
		active[bj] = false
		parent[bj] = bi
		remaining--
	}
	// Resolve each point to its active representative, then compact ids.
	find := func(x int) int {
		for parent[x] != x {
			x = parent[x]
		}
		return x
	}
	compact := map[int]int{}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		id, ok := compact[r]
		if !ok {
			id = len(compact)
			compact[r] = id
		}
		assign[i] = id
	}
	return assign, nil
}

// HMMClusters clusters the database with a mixture of k discrete HMMs:
// random initial partition, then alternating Baum-Welch re-estimation of
// each cluster's model and max-normalized-likelihood reassignment (the
// standard HMM clustering the paper's Table 2 evaluates, with the number
// of states per model as a parameter).
func HMMClusters(db *seq.Database, k, states, rounds, bwIters int, rng *rand.Rand) ([]int, error) {
	n := db.Len()
	if k < 1 || k > n {
		return nil, fmt.Errorf("baseline: k=%d outside [1, %d]", k, n)
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.IntN(k)
	}
	models := make([]*hmm.HMM, k)
	for c := range models {
		models[c] = hmm.NewRandom(states, db.Alphabet.Size(), rng)
	}
	for round := 0; round < rounds; round++ {
		// M-step: retrain each model on its members.
		for c := 0; c < k; c++ {
			var train [][]seq.Symbol
			for i, a := range assign {
				if a == c {
					train = append(train, db.Sequences[i].Symbols)
				}
			}
			if len(train) == 0 {
				models[c] = hmm.NewRandom(states, db.Alphabet.Size(), rng)
				continue
			}
			models[c].BaumWelch(train, bwIters, 1e-3)
		}
		// E-step: reassign by per-symbol log-likelihood, so sequence
		// length does not bias the choice.
		changed := false
		for i := 0; i < n; i++ {
			obs := db.Sequences[i].Symbols
			if len(obs) == 0 {
				continue
			}
			best, bestLL := assign[i], math.Inf(-1)
			for c := 0; c < k; c++ {
				ll := models[c].LogLikelihood(obs) / float64(len(obs))
				if ll > bestLL {
					bestLL = ll
					best = c
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		if !changed && round > 0 {
			break
		}
	}
	return assign, nil
}

// QGramKMeans clusters the database with spherical k-means over q-gram
// profiles: centroids are summed member profiles and sequences join the
// centroid of maximal cosine similarity.
func QGramKMeans(db *seq.Database, k, q, maxIter int, rng *rand.Rand) ([]int, error) {
	n := db.Len()
	if k < 1 || k > n {
		return nil, fmt.Errorf("baseline: k=%d outside [1, %d]", k, n)
	}
	profiles := make([]*qgram.Profile, n)
	for i, s := range db.Sequences {
		profiles[i] = qgram.NewProfile(s.Symbols, q)
	}
	// Seed centroids from k distinct random sequences.
	perm := rng.Perm(n)
	centroids := make([]*qgram.Profile, k)
	for c := 0; c < k; c++ {
		centroids[c] = qgram.Empty(q)
		centroids[c].Add(profiles[perm[c]])
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestSim := 0, -1.0
			for c := 0; c < k; c++ {
				if sim := qgram.Cosine(profiles[i], centroids[c]); sim > bestSim {
					bestSim = sim
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		for c := 0; c < k; c++ {
			centroids[c] = qgram.Empty(q)
			members := 0
			for i, a := range assign {
				if a == c {
					centroids[c].Add(profiles[i])
					members++
				}
			}
			if members == 0 {
				centroids[c].Add(profiles[rng.IntN(n)])
			}
		}
	}
	return assign, nil
}
