package baseline

import (
	"math/rand/v2"
	"strings"
	"testing"

	"cluseq/internal/distance"
	"cluseq/internal/eval"
	"cluseq/internal/seq"
)

// twoBlobs returns a distance matrix for two well-separated groups of
// points on a line: indices [0,m) near 0, [m,2m) near 100.
func twoBlobs(m int) [][]float64 {
	n := 2 * m
	pos := make([]float64, n)
	for i := 0; i < m; i++ {
		pos[i] = float64(i)         // 0..m-1
		pos[m+i] = 100 + float64(i) // 100..
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			v := pos[i] - pos[j]
			if v < 0 {
				v = -v
			}
			d[i][j] = v
		}
	}
	return d
}

func sameSide(assign []int, m int) bool {
	for i := 1; i < m; i++ {
		if assign[i] != assign[0] {
			return false
		}
	}
	for i := m + 1; i < 2*m; i++ {
		if assign[i] != assign[m] {
			return false
		}
	}
	return assign[0] != assign[m]
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	d := twoBlobs(8)
	assign, err := KMedoids(d, 2, 20, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if !sameSide(assign, 8) {
		t.Fatalf("k-medoids failed to separate blobs: %v", assign)
	}
}

func TestKMedoidsErrors(t *testing.T) {
	d := twoBlobs(2)
	if _, err := KMedoids(d, 0, 5, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KMedoids(d, 5, 5, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("k>n should fail")
	}
}

func TestKMedoidsKEqualsN(t *testing.T) {
	d := twoBlobs(3)
	assign, err := KMedoids(d, 6, 10, rand.New(rand.NewPCG(3, 3)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range assign {
		seen[a] = true
	}
	if len(seen) != 6 {
		t.Fatalf("k=n should give singletons, got %v", assign)
	}
}

func TestAgglomerativeSeparatesBlobs(t *testing.T) {
	d := twoBlobs(8)
	assign, err := Agglomerative(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSide(assign, 8) {
		t.Fatalf("agglomerative failed to separate blobs: %v", assign)
	}
}

func TestAgglomerativeKExtremes(t *testing.T) {
	d := twoBlobs(3)
	assign, err := Agglomerative(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range assign {
		if a != 0 {
			t.Fatalf("k=1 should merge all: %v", assign)
		}
	}
	assign, err = Agglomerative(d, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range assign {
		seen[a] = true
	}
	if len(seen) != 6 {
		t.Fatalf("k=n should give singletons: %v", assign)
	}
	if _, err := Agglomerative(d, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestDistanceMatrixParallelMatchesSerial(t *testing.T) {
	f := func(i, j int) float64 { return float64((i+1)*(j+1)%17) + float64(i+j) }
	m1 := DistanceMatrix(25, f, 1)
	m8 := DistanceMatrix(25, f, 8)
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m8[i][j] {
				t.Fatalf("parallel mismatch at (%d,%d)", i, j)
			}
			if m1[i][j] != m1[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
		if m1[i][i] != 0 {
			t.Fatalf("diagonal not zero at %d", i)
		}
	}
}

// langDB builds a small two-family database with very different sequential
// structure: family A alternates ab, family B repeats ccd-like blocks.
func langDB(t *testing.T, perFamily, length int, rng *rand.Rand) *seq.Database {
	t.Helper()
	a := seq.MustAlphabet("abcd")
	db := seq.NewDatabase(a)
	for i := 0; i < perFamily; i++ {
		var sb strings.Builder
		for sb.Len() < length {
			if rng.Float64() < 0.9 {
				sb.WriteString("ab")
			} else {
				sb.WriteString("ad")
			}
		}
		if err := db.AddString("", "A", sb.String()[:length]); err != nil {
			t.Fatal(err)
		}
		sb.Reset()
		for sb.Len() < length {
			if rng.Float64() < 0.9 {
				sb.WriteString("ccd")
			} else {
				sb.WriteString("cd")
			}
		}
		if err := db.AddString("", "B", sb.String()[:length]); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range db.Sequences {
		s.ID = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	return db
}

func labelsOf(db *seq.Database) []string {
	out := make([]string, db.Len())
	for i, s := range db.Sequences {
		out[i] = s.Label
	}
	return out
}

func TestEditDistanceClusteringOnStructuredData(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	db := langDB(t, 10, 40, rng)
	d := DistanceMatrix(db.Len(), func(i, j int) float64 {
		return distance.NormalizedLevenshtein(db.Sequences[i].Symbols, db.Sequences[j].Symbols)
	}, 0)
	assign, err := KMedoids(d, 2, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eval.Evaluate(eval.FromAssignments(assign), labelsOf(db))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < 0.9 {
		t.Fatalf("ED clustering accuracy = %v on trivially separable data", rep.Accuracy)
	}
}

func TestHMMClustersOnStructuredData(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	db := langDB(t, 8, 60, rng)
	assign, err := HMMClusters(db, 2, 3, 6, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eval.Evaluate(eval.FromAssignments(assign), labelsOf(db))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < 0.85 {
		t.Fatalf("HMM clustering accuracy = %v on trivially separable data", rep.Accuracy)
	}
}

func TestHMMClustersErrors(t *testing.T) {
	db := seq.NewDatabase(seq.MustAlphabet("ab"))
	db.AddString("s", "", "ab")
	if _, err := HMMClusters(db, 2, 2, 2, 2, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("k>n should fail")
	}
}

func TestQGramKMeansOnStructuredData(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	db := langDB(t, 10, 60, rng)
	assign, err := QGramKMeans(db, 2, 3, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eval.Evaluate(eval.FromAssignments(assign), labelsOf(db))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < 0.9 {
		t.Fatalf("q-gram clustering accuracy = %v on trivially separable data", rep.Accuracy)
	}
}

func TestQGramKMeansErrors(t *testing.T) {
	db := seq.NewDatabase(seq.MustAlphabet("ab"))
	db.AddString("s", "", "ab")
	if _, err := QGramKMeans(db, 0, 2, 5, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("k=0 should fail")
	}
}
