package core

// Bundle format v3: a sectioned, checksummed container whose snapshot
// payloads are the pst arena layout verbatim, so loading is mmap +
// pointer arithmetic instead of parse + rebuild (DESIGN.md §14).
//
//	magic "CLUSEQCLFv3\n" (12 bytes)
//	fixed header (64 bytes total, little-endian):
//	  [12:16) flags (bit 0: raw similarity)
//	  [16:20) cluster count
//	  [20:24) section count
//	  [24:32) section table offset (currently always 64)
//	  [32:40) file length
//	  [40:48) publisher snapshot version (0 for batch-trained bundles)
//	  [48:56) log similarity threshold (float64 bits)
//	  [56:60) reserved, zero
//	  [60:64) CRC-32C of bytes [0:60)
//	section table: sectionCount entries of 32 bytes each —
//	  kind u32, index u32, offset u64, length u64,
//	  CRC-32C of the section bytes u32, reserved u32
//	sections: each starting on a 64-byte-aligned offset, in table
//	  order, non-overlapping and monotonically increasing.
//
// Section kinds:
//
//	1 alphabet    UTF-8 training alphabet (length 0: none — v1 heritage)
//	2 background  n float64, the scoring background distribution
//	3 modelinfo   per-cluster tree stats (24 bytes each: nodes u32,
//	              significant u32, depth u32, configured max depth u32,
//	              total symbols u64) so Info works without trees
//	4 snapshot    one pst snapshot arena; index = cluster
//	5 tree        one serialized pst.Tree (PSTv1); index = cluster —
//	              present for every shrinkage (delegate) cluster, and
//	              for all clusters when saved WithTrees
//
// Every load-path validation failure names the section (or header
// field) at fault and happens before any allocation proportional to a
// declared size. v1/v2 bundles remain loadable through LoadClassifier's
// conversion path; Save keeps writing v2 so older readers interoperate,
// and SaveBundle writes v3.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

var classifierMagicV3 = []byte("CLUSEQCLFv3\n")

const (
	bundleHeaderLen = 64
	bundleEntryLen  = 32
	bundleAlign     = 64

	bundleFlagRaw = 1 << 0

	bundleSecAlphabet   = 1
	bundleSecBackground = 2
	bundleSecModelInfo  = 3
	bundleSecSnapshot   = 4
	bundleSecTree       = 5

	bundleInfoEntryLen = 24
	maxBundleClusters  = 1 << 20 // same cap as the v2 loader
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IsBundleV3 reports whether data begins with the v3 bundle magic —
// the cheap sniff the registry uses to route between the zero-copy
// loader and the v1/v2 conversion path.
func IsBundleV3(data []byte) bool { return bytes.HasPrefix(data, classifierMagicV3) }

// BundleOptions configures SaveBundle.
type BundleOptions struct {
	// WithTrees embeds every cluster's serialized tree alongside its
	// snapshot arena. Costs size; required when the bundle must rebuild
	// live trees (the streaming engine's restart-resume path). Trees of
	// shrinkage (delegate) clusters are always embedded regardless,
	// since their arenas carry no scan tables.
	WithTrees bool
	// PublishedVersion stamps the publisher's monotonically increasing
	// snapshot version into the header, so a resumed stream engine
	// continues the version sequence instead of restarting it.
	PublishedVersion uint64
}

// SaveBundle writes the classifier in bundle format v3. The output is
// deterministic for a given classifier and options. The classifier
// must carry a compiled snapshot per cluster (every constructor and
// loader establishes this); WithTrees additionally requires live trees
// (a v3 bundle loaded without trees cannot re-save WithTrees).
func (c *Classifier) SaveBundle(w io.Writer, opts BundleOptions) error {
	n := c.NumClusters()
	if len(c.snaps) != n {
		return fmt.Errorf("core: classifier has %d snapshots for %d clusters; cannot save v3", len(c.snaps), n)
	}
	type section struct {
		kind, index uint32
		data        []byte
	}
	var alphaBytes []byte
	if c.alphabet != nil {
		alphaBytes = []byte(c.alphabet.String())
	}
	bg := make([]byte, 8*len(c.background))
	for i, v := range c.background {
		binary.LittleEndian.PutUint64(bg[8*i:], math.Float64bits(v))
	}
	secs := []section{
		{bundleSecAlphabet, 0, alphaBytes},
		{bundleSecBackground, 0, bg},
		{bundleSecModelInfo, 0, c.encodeModelInfo()},
	}
	var tmp bytes.Buffer
	for i := 0; i < n; i++ {
		snap := c.snaps[i]
		secs = append(secs, section{bundleSecSnapshot, uint32(i), snap.Arena()})
		if opts.WithTrees || snap.Delegates() {
			if i >= len(c.trees) || c.trees[i] == nil {
				return fmt.Errorf("core: cluster %d needs its tree in the bundle but the classifier carries none", i)
			}
			tmp.Reset()
			if err := c.trees[i].Save(&tmp); err != nil {
				return fmt.Errorf("core: serializing cluster %d tree: %w", i, err)
			}
			secs = append(secs, section{bundleSecTree, uint32(i), append([]byte(nil), tmp.Bytes()...)})
		}
	}

	tableLen := int64(len(secs)) * bundleEntryLen
	table := make([]byte, tableLen)
	off := alignUpI64(bundleHeaderLen+tableLen, bundleAlign)
	for i, s := range secs {
		e := table[i*bundleEntryLen:]
		le := binary.LittleEndian
		le.PutUint32(e[0:4], s.kind)
		le.PutUint32(e[4:8], s.index)
		le.PutUint64(e[8:16], uint64(off))
		le.PutUint64(e[16:24], uint64(len(s.data)))
		le.PutUint32(e[24:28], crc32.Checksum(s.data, castagnoli))
		off = alignUpI64(off+int64(len(s.data)), bundleAlign)
	}
	// fileLen ends at the last section's true end, not its alignment.
	last := secs[len(secs)-1]
	lastOff := binary.LittleEndian.Uint64(table[(len(secs)-1)*bundleEntryLen+8:])
	fileLen := lastOff + uint64(len(last.data))

	hdr := make([]byte, bundleHeaderLen)
	copy(hdr, classifierMagicV3)
	le := binary.LittleEndian
	var flags uint32
	if c.raw {
		flags |= bundleFlagRaw
	}
	le.PutUint32(hdr[12:16], flags)
	le.PutUint32(hdr[16:20], uint32(n))
	le.PutUint32(hdr[20:24], uint32(len(secs)))
	le.PutUint64(hdr[24:32], bundleHeaderLen)
	le.PutUint64(hdr[32:40], fileLen)
	le.PutUint64(hdr[40:48], opts.PublishedVersion)
	le.PutUint64(hdr[48:56], math.Float64bits(c.logT))
	le.PutUint32(hdr[60:64], crc32.Checksum(hdr[:60], castagnoli))

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.Write(table); err != nil {
		return err
	}
	written := int64(bundleHeaderLen) + tableLen
	var pad [bundleAlign]byte
	for i, s := range secs {
		secOff := int64(binary.LittleEndian.Uint64(table[i*bundleEntryLen+8:]))
		if _, err := bw.Write(pad[:secOff-written]); err != nil {
			return err
		}
		if _, err := bw.Write(s.data); err != nil {
			return err
		}
		written = secOff + int64(len(s.data))
	}
	return bw.Flush()
}

func (c *Classifier) encodeModelInfo() []byte {
	n := c.NumClusters()
	out := make([]byte, n*bundleInfoEntryLen)
	le := binary.LittleEndian
	for i := 0; i < n; i++ {
		e := out[i*bundleInfoEntryLen:]
		var ti TreeInfo
		var cfgDepth int
		switch {
		case i < len(c.trees) && c.trees[i] != nil:
			st := c.trees[i].Stats()
			ti = TreeInfo{Nodes: st.Nodes, SignificantNodes: st.SignificantNodes, Depth: st.MaxDepth, TotalSymbols: st.TotalSymbols}
			cfgDepth = c.trees[i].Config().MaxDepth
		case i < len(c.treeInfos):
			// Re-saving a treeless bundle: forward the stored stats.
			ti = c.treeInfos[i]
			cfgDepth = c.maxDepth
		}
		le.PutUint32(e[0:4], uint32(ti.Nodes))
		le.PutUint32(e[4:8], uint32(ti.SignificantNodes))
		le.PutUint32(e[8:12], uint32(ti.Depth))
		le.PutUint32(e[12:16], uint32(cfgDepth))
		le.PutUint64(e[16:24], uint64(ti.TotalSymbols))
	}
	return out
}

func alignUpI64(v, a int64) int64 { return (v + a - 1) &^ (a - 1) }

// bundleSection is one parsed and bounds-checked table entry.
type bundleSection struct {
	kind, index uint32
	off, length uint64
	crc         uint32
}

func (s bundleSection) name() string {
	switch s.kind {
	case bundleSecAlphabet:
		return "alphabet"
	case bundleSecBackground:
		return "background"
	case bundleSecModelInfo:
		return "modelinfo"
	case bundleSecSnapshot:
		return fmt.Sprintf("snapshot[%d]", s.index)
	case bundleSecTree:
		return fmt.Sprintf("tree[%d]", s.index)
	}
	return fmt.Sprintf("kind %d", s.kind)
}

// LoadClassifierBytes parses a v3 bundle held in memory — typically an
// mmap'd model file. On little-endian hosts the returned classifier's
// scan tables are zero-copy views into data, which therefore must stay
// valid and immutable for the classifier's lifetime; owner, if
// non-nil, is retained by the classifier and its snapshots to
// guarantee exactly that (pass the mmapfile.Mapping backing data, and
// the pages survive until the garbage collector proves the last
// reader gone).
//
// Corrupt input fails with the offending header field or section
// named, before any allocation proportional to a declared size, and
// every section is checksummed.
func LoadClassifierBytes(data []byte, owner any) (*Classifier, error) {
	if !IsBundleV3(data) {
		return nil, fmt.Errorf("core: not a v3 bundle (magic %q)", data[:min(len(data), 12)])
	}
	if len(data) < bundleHeaderLen {
		return nil, fmt.Errorf("core: v3 header: %d bytes, need %d", len(data), bundleHeaderLen)
	}
	le := binary.LittleEndian
	if got := crc32.Checksum(data[:60], castagnoli); got != le.Uint32(data[60:64]) {
		return nil, fmt.Errorf("core: v3 header checksum %#x does not match stored %#x", got, le.Uint32(data[60:64]))
	}
	flags := le.Uint32(data[12:16])
	nClusters := int64(le.Uint32(data[16:20]))
	secCount := int64(le.Uint32(data[20:24]))
	tableOff := int64(le.Uint64(data[24:32]))
	fileLen := le.Uint64(data[32:40])
	published := le.Uint64(data[40:48])
	logT := math.Float64frombits(le.Uint64(data[48:56]))
	if fileLen != uint64(len(data)) {
		return nil, fmt.Errorf("core: v3 header: declared length %d, have %d bytes", fileLen, len(data))
	}
	if nClusters < 1 || nClusters > maxBundleClusters {
		return nil, fmt.Errorf("core: v3 header: cluster count %d outside [1, %d]", nClusters, maxBundleClusters)
	}
	if secCount < 3 || secCount > 3+2*nClusters {
		return nil, fmt.Errorf("core: v3 header: section count %d outside [3, %d]", secCount, 3+2*nClusters)
	}
	if tableOff != bundleHeaderLen {
		return nil, fmt.Errorf("core: v3 header: section table at %d, expected %d", tableOff, bundleHeaderLen)
	}
	tableEnd := tableOff + secCount*bundleEntryLen
	if tableEnd > int64(len(data)) {
		return nil, fmt.Errorf("core: v3 section table (%d entries) exceeds the file", secCount)
	}

	secs := make([]bundleSection, secCount)
	prevEnd := uint64(tableEnd)
	for i := range secs {
		e := data[tableOff+int64(i)*bundleEntryLen:]
		s := bundleSection{
			kind:   le.Uint32(e[0:4]),
			index:  le.Uint32(e[4:8]),
			off:    le.Uint64(e[8:16]),
			length: le.Uint64(e[16:24]),
			crc:    le.Uint32(e[24:28]),
		}
		if s.off%bundleAlign != 0 {
			return nil, fmt.Errorf("core: v3 section %s: offset %d not %d-aligned", s.name(), s.off, bundleAlign)
		}
		if s.off < prevEnd || s.length > fileLen || s.off > fileLen-s.length {
			return nil, fmt.Errorf("core: v3 section %s: range [%d, %d+%d) overlaps or exceeds the file", s.name(), s.off, s.off, s.length)
		}
		prevEnd = s.off + s.length
		secs[i] = s
	}
	for _, s := range secs {
		body := data[s.off : s.off+s.length]
		if got := crc32.Checksum(body, castagnoli); got != s.crc {
			return nil, fmt.Errorf("core: v3 section %s: checksum %#x does not match table %#x", s.name(), got, s.crc)
		}
	}

	c := &Classifier{
		logT:      logT,
		raw:       flags&bundleFlagRaw != 0,
		published: published,
		backing:   owner,
	}
	body := func(s bundleSection) []byte { return data[s.off : s.off+s.length] }
	snapSecs := make([]*bundleSection, nClusters)
	treeSecs := make([]*bundleSection, nClusters)
	seen := map[uint32]bool{}
	for i := range secs {
		s := &secs[i]
		switch s.kind {
		case bundleSecSnapshot, bundleSecTree:
			if int64(s.index) >= nClusters {
				return nil, fmt.Errorf("core: v3 section %s: index beyond %d clusters", s.name(), nClusters)
			}
			slot := snapSecs
			if s.kind == bundleSecTree {
				slot = treeSecs
			}
			if slot[s.index] != nil {
				return nil, fmt.Errorf("core: v3 section %s: duplicate", s.name())
			}
			slot[s.index] = s
		case bundleSecAlphabet, bundleSecBackground, bundleSecModelInfo:
			if seen[s.kind] {
				return nil, fmt.Errorf("core: v3 section %s: duplicate", s.name())
			}
			seen[s.kind] = true
			switch s.kind {
			case bundleSecAlphabet:
				if s.length > maxAlphabetBytes {
					return nil, fmt.Errorf("core: v3 section alphabet: %d bytes (max %d)", s.length, maxAlphabetBytes)
				}
				if s.length > 0 {
					a, err := seq.NewAlphabet(string(body(*s)))
					if err != nil {
						return nil, fmt.Errorf("core: v3 section alphabet: %w", err)
					}
					if a.String() != string(body(*s)) {
						return nil, fmt.Errorf("core: v3 section alphabet: %q has duplicate or non-canonical runes", body(*s))
					}
					c.alphabet = a
				}
			case bundleSecBackground:
				if s.length == 0 || s.length%8 != 0 || s.length/8 > seqMaxAlphabet {
					return nil, fmt.Errorf("core: v3 section background: %d bytes is not 1..%d float64 entries", s.length, seqMaxAlphabet)
				}
				bg := make([]float64, s.length/8)
				for i := range bg {
					bg[i] = math.Float64frombits(le.Uint64(body(*s)[8*i:]))
					// Zero is legitimate: a stream-published background has
					// zero mass on symbols the stream never produced.
					if !(bg[i] >= 0) || bg[i] > 1 {
						return nil, fmt.Errorf("core: v3 section background: corrupt entry %d: %v", i, bg[i])
					}
				}
				c.background = bg
			case bundleSecModelInfo:
				if int64(s.length) != nClusters*bundleInfoEntryLen {
					return nil, fmt.Errorf("core: v3 section modelinfo: %d bytes for %d clusters (want %d)", s.length, nClusters, nClusters*bundleInfoEntryLen)
				}
				c.treeInfos = make([]TreeInfo, nClusters)
				for i := range c.treeInfos {
					e := body(*s)[i*bundleInfoEntryLen:]
					c.treeInfos[i] = TreeInfo{
						Nodes:            int(le.Uint32(e[0:4])),
						SignificantNodes: int(le.Uint32(e[4:8])),
						Depth:            int(le.Uint32(e[8:12])),
						TotalSymbols:     int64(le.Uint64(e[16:24])),
					}
					if d := int(le.Uint32(e[12:16])); d > c.maxDepth {
						c.maxDepth = d
					}
				}
			}
		default:
			return nil, fmt.Errorf("core: v3 section %s: unknown kind", s.name())
		}
	}
	if c.background == nil {
		return nil, fmt.Errorf("core: v3 bundle is missing its background section")
	}
	if c.alphabet != nil && c.alphabet.Size() != len(c.background) {
		return nil, fmt.Errorf("core: v3 alphabet has %d runes but background has %d entries", c.alphabet.Size(), len(c.background))
	}

	// Clusters: a snapshot arena per cluster, reconstructed zero-copy.
	// Delegate arenas (shrinkage) and WithTrees bundles carry serialized
	// trees; load them, and recompile delegate snapshots from the tree.
	c.snaps = make([]*pst.Snapshot, nClusters)
	var trees []*pst.Tree
	treeCount := int64(0)
	loadTree := func(i int64) (*pst.Tree, error) {
		s := treeSecs[i]
		if s == nil {
			return nil, nil
		}
		tree, err := pst.Load(bytes.NewReader(body(*s)))
		if err != nil {
			return nil, fmt.Errorf("core: v3 section %s: %w", s.name(), err)
		}
		if tree.Config().AlphabetSize != len(c.background) {
			return nil, fmt.Errorf("core: v3 section %s: alphabet %d != background %d", s.name(), tree.Config().AlphabetSize, len(c.background))
		}
		return tree, nil
	}
	for i := int64(0); i < nClusters; i++ {
		s := snapSecs[i]
		if s == nil {
			return nil, fmt.Errorf("core: v3 bundle is missing section snapshot[%d]", i)
		}
		tree, err := loadTree(i)
		if err != nil {
			return nil, err
		}
		if tree != nil {
			if trees == nil {
				trees = make([]*pst.Tree, nClusters)
			}
			trees[i] = tree
			treeCount++
		}
		snap, err := pst.SnapshotFromArena(body(*s), owner)
		switch {
		case err == nil:
			c.snaps[i] = snap
		case err == pst.ErrArenaDelegates:
			if tree == nil {
				return nil, fmt.Errorf("core: v3 section snapshot[%d] delegates to its tree, but the bundle has no section tree[%d]", i, i)
			}
			c.snaps[i] = tree.CompileSnapshot(c.background)
		default:
			return nil, fmt.Errorf("core: v3 section snapshot[%d]: %w", i, err)
		}
	}
	// Only adopt the tree slice when it is complete: Classify and the
	// stream-resume path treat c.trees as index-aligned with clusters.
	if treeCount == nClusters {
		c.trees = trees
	}
	return c, nil
}

// PublishedVersion returns the publisher's snapshot version stamped
// into the bundle (zero for batch-trained bundles and classifiers not
// loaded from a v3 bundle).
func (c *Classifier) PublishedVersion() uint64 { return c.published }

// Trees returns the classifier's cluster trees in cluster order, or
// nil when the bundle was loaded without embedded trees (see
// BundleOptions.WithTrees). Callers must not mutate the trees.
func (c *Classifier) Trees() []*pst.Tree { return c.trees }

// Background returns the scoring background distribution. Callers must
// not mutate it.
func (c *Classifier) Background() []float64 { return c.background }
