package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// trainedClassifier builds a real classifier from a planted-cluster
// run, for bundle round-trip tests.
func trainedClassifier(t *testing.T, shrinkage float64) (*Classifier, [][]seq.Symbol) {
	t.Helper()
	db := testDB(t, 150, 3, 0, 103)
	cfg := testConfig()
	cfg.KeepTrees = true
	cfg.Shrinkage = shrinkage
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand(9)
	probes := make([][]seq.Symbol, 40)
	for i := range probes {
		probes[i] = randomNoise(rng, 5+rng.IntN(150), 12)
	}
	return clf, probes
}

func requireSameVerdicts(t *testing.T, want, got *Classifier, probes [][]seq.Symbol, label string) {
	t.Helper()
	for _, p := range probes {
		a, b := want.Classify(p), got.Classify(p)
		if a.Cluster != b.Cluster || a.Similarity != b.Similarity || len(a.Memberships) != len(b.Memberships) {
			t.Fatalf("%s: verdict diverged: %+v != %+v", label, b, a)
		}
		for i := range a.Memberships {
			if a.Memberships[i] != b.Memberships[i] {
				t.Fatalf("%s: membership diverged: %v != %v", label, b.Memberships, a.Memberships)
			}
		}
	}
}

func saveV3(t *testing.T, clf *Classifier, opts BundleOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := clf.SaveBundle(&buf, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBundleV3RoundTrip: a treeless v3 bundle must classify exactly as
// the classifier it was saved from — through both the bytes loader and
// the io.Reader conversion path — and report the same model info.
func TestBundleV3RoundTrip(t *testing.T) {
	clf, probes := trainedClassifier(t, 0)
	data := saveV3(t, clf, BundleOptions{PublishedVersion: 42})
	if !IsBundleV3(data) {
		t.Fatal("saved bundle must carry the v3 magic")
	}

	fromBytes, err := LoadClassifierBytes(append([]byte(nil), data...), nil)
	if err != nil {
		t.Fatal(err)
	}
	fromReader, err := LoadClassifier(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*Classifier{"bytes": fromBytes, "reader": fromReader} {
		requireSameVerdicts(t, clf, got, probes, name)
		if got.Trees() != nil {
			t.Fatalf("%s: treeless bundle must load without trees", name)
		}
		if got.PublishedVersion() != 42 {
			t.Fatalf("%s: published version %d, want 42", name, got.PublishedVersion())
		}
		if got.NumClusters() != clf.NumClusters() {
			t.Fatalf("%s: %d clusters, want %d", name, got.NumClusters(), clf.NumClusters())
		}
		wantInfo, gotInfo := clf.Info(), got.Info()
		if gotInfo.Clusters != wantInfo.Clusters || gotInfo.TotalNodes != wantInfo.TotalNodes ||
			gotInfo.MaxDepth != wantInfo.MaxDepth || gotInfo.Alphabet != wantInfo.Alphabet ||
			gotInfo.Threshold != wantInfo.Threshold {
			t.Fatalf("%s: info diverged: %+v != %+v", name, gotInfo, wantInfo)
		}
		for i, ti := range wantInfo.Trees {
			if gotInfo.Trees[i] != ti {
				t.Fatalf("%s: tree %d info %+v != %+v", name, i, gotInfo.Trees[i], ti)
			}
		}
		// String classification must survive, alphabet included.
		if _, err := got.ClassifyString(gotInfo.Alphabet); err != nil {
			t.Fatalf("%s: ClassifyString: %v", name, err)
		}
	}
}

// TestBundleV3WithTrees: embedding trees must reconstruct them for the
// resume path without perturbing classification.
func TestBundleV3WithTrees(t *testing.T) {
	clf, probes := trainedClassifier(t, 0)
	data := saveV3(t, clf, BundleOptions{WithTrees: true, PublishedVersion: 7})
	got, err := LoadClassifierBytes(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trees()) != clf.NumClusters() {
		t.Fatalf("loaded %d trees, want %d", len(got.Trees()), clf.NumClusters())
	}
	for i, tree := range got.Trees() {
		if tree == nil {
			t.Fatalf("tree %d missing", i)
		}
	}
	requireSameVerdicts(t, clf, got, probes, "with-trees")
	// And a resaved bundle must be byte-identical (determinism).
	if !bytes.Equal(saveV3(t, got, BundleOptions{WithTrees: true, PublishedVersion: 7}), data) {
		t.Fatal("resaving a with-trees bundle must be deterministic")
	}
}

// TestBundleV3ShrinkageEmbedsTrees: delegate clusters cannot scan from
// arenas, so their trees ride along even without WithTrees and the
// loader recompiles from them.
func TestBundleV3ShrinkageEmbedsTrees(t *testing.T) {
	clf, probes := trainedClassifier(t, 6)
	data := saveV3(t, clf, BundleOptions{})
	got, err := LoadClassifierBytes(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameVerdicts(t, clf, got, probes, "shrinkage")
}

// TestBundleV3SaveDeterministic pins byte-identical output, which the
// registry's fingerprint reload depends on.
func TestBundleV3SaveDeterministic(t *testing.T) {
	clf, _ := trainedClassifier(t, 0)
	a := saveV3(t, clf, BundleOptions{PublishedVersion: 3})
	b := saveV3(t, clf, BundleOptions{PublishedVersion: 3})
	if !bytes.Equal(a, b) {
		t.Fatal("SaveBundle must be deterministic")
	}
}

// TestBundleV3VersusV2 is the differential gate: the same classifier
// saved as v2 and as v3 must classify identically after loading.
func TestBundleV3VersusV2(t *testing.T) {
	clf, probes := trainedClassifier(t, 0)
	var v2 bytes.Buffer
	if err := clf.Save(&v2); err != nil {
		t.Fatal(err)
	}
	fromV2, err := LoadClassifier(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromV3, err := LoadClassifierBytes(saveV3(t, clf, BundleOptions{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameVerdicts(t, fromV2, fromV3, probes, "v2-vs-v3")
}

// TestBundleV3CorruptRejected mangles headers and sections: every
// mutation must be rejected with the culprit named, never a panic or a
// silent wrong model.
func TestBundleV3CorruptRejected(t *testing.T) {
	clf, _ := trainedClassifier(t, 0)
	good := saveV3(t, clf, BundleOptions{})
	le := binary.LittleEndian
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	resealHeader := func(b []byte) []byte {
		le.PutUint32(b[60:64], crc32.Checksum(b[:60], castagnoli))
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string // substring the error must contain, "" = any error
	}{
		{"empty", nil, ""},
		{"magic only", good[:12], "header"},
		{"v2 magic into bytes loader", []byte("CLUSEQCLFv2\nrest"), "not a v3 bundle"},
		{"truncated", good[:len(good)/2], "length"},
		{"header bit flip", mutate(func(b []byte) []byte { b[17] ^= 1; return b }), "checksum"},
		{"zero clusters", mutate(func(b []byte) []byte { le.PutUint32(b[16:20], 0); return resealHeader(b) }), "cluster count"},
		{"absurd section count", mutate(func(b []byte) []byte { le.PutUint32(b[20:24], 1<<24); return resealHeader(b) }), "section count"},
		{"section crc flip", mutate(func(b []byte) []byte { b[len(b)-1] ^= 0x80; return b }), "checksum"},
		{"misaligned section", mutate(func(b []byte) []byte {
			off := le.Uint64(b[bundleHeaderLen+8:])
			le.PutUint64(b[bundleHeaderLen+8:], off+8)
			return b
		}), "aligned"},
		{"section beyond file", mutate(func(b []byte) []byte {
			le.PutUint64(b[bundleHeaderLen+16:], 1<<40)
			return b
		}), "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadClassifierBytes(tc.data, nil)
			if err == nil {
				t.Fatal("corrupt bundle must be rejected")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the culprit (%q)", err, tc.want)
			}
			t.Logf("rejected: %v", err)
		})
	}
	if _, err := LoadClassifierBytes(append([]byte(nil), good...), nil); err != nil {
		t.Fatalf("pristine bundle must load: %v", err)
	}
}

// TestBundleV3ArenaCorruptionNamesSection: damage inside a snapshot
// arena (with the bundle-level CRC patched to match) must still be
// caught by the arena's own validation, named by section.
func TestBundleV3ArenaCorruptionNamesSection(t *testing.T) {
	clf, _ := trainedClassifier(t, 0)
	good := saveV3(t, clf, BundleOptions{})
	b := append([]byte(nil), good...)
	le := binary.LittleEndian
	// Find the first snapshot section in the table and zero its magic.
	secCount := int(le.Uint32(b[20:24]))
	for i := 0; i < secCount; i++ {
		e := b[bundleHeaderLen+i*bundleEntryLen:]
		if le.Uint32(e[0:4]) != bundleSecSnapshot {
			continue
		}
		off, length := le.Uint64(e[8:16]), le.Uint64(e[16:24])
		copy(b[off:off+4], "XXXX")
		le.PutUint32(e[24:28], crc32.Checksum(b[off:off+length], castagnoli))
		break
	}
	_, err := LoadClassifierBytes(b, nil)
	if err == nil || !strings.Contains(err.Error(), "snapshot[") {
		t.Fatalf("want a snapshot-section error, got %v", err)
	}
}

// FuzzBundleV3 mirrors FuzzClassifierBundle for format v3: forward
// (save→load→identical verdicts and deterministic resave) and backward
// (mutated bundles never panic and never load as something else).
func FuzzBundleV3(f *testing.F) {
	f.Add([]byte("abcabcabcabc"), []byte("dddddddd"), uint8(4), uint16(0), byte(0))
	f.Add([]byte{0, 1, 2, 3, 0xFF, 3, 2, 1, 0}, []byte{1, 1, 2, 2}, uint8(6), uint16(77), byte(0x10))
	f.Add([]byte{7, 7, 7}, []byte{}, uint8(2), uint16(2000), byte(0xFF))
	f.Fuzz(func(t *testing.T, streamA, streamB []byte, alphaByte uint8, mutPos uint16, mutXor byte) {
		n := int(alphaByte)%12 + 2
		alphabet := seq.MustAlphabet("abcdefghijklmn"[:n])
		cfg := pst.Config{AlphabetSize: n, MaxDepth: 4, Significance: 2, PMin: 0.1 / float64(n)}
		insert := func(tree *pst.Tree, stream []byte) {
			seg := make([]seq.Symbol, 0, len(stream))
			for _, b := range stream {
				if b == 0xFF {
					tree.Insert(seg)
					seg = seg[:0]
					continue
				}
				seg = append(seg, seq.Symbol(int(b)%n))
			}
			tree.Insert(seg)
		}
		treeA, treeB := pst.MustNew(cfg), pst.MustNew(cfg)
		insert(treeA, streamA)
		insert(treeB, streamB)
		bg := make([]float64, n)
		for i := range bg {
			bg[i] = 1 / float64(n)
		}
		clf, err := NewClassifierFromParts([]*pst.Tree{treeA, treeB}, alphabet, bg, 1.1, false)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := clf.SaveBundle(&buf, BundleOptions{WithTrees: len(streamA)%2 == 0}); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()

		loaded, err := LoadClassifierBytes(append([]byte(nil), data...), nil)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		probe := make([]seq.Symbol, 0, len(streamB))
		for _, b := range streamB {
			if b != 0xFF {
				probe = append(probe, seq.Symbol(int(b)%n))
			}
		}
		a, b := clf.Classify(probe), loaded.Classify(probe)
		if a.Cluster != b.Cluster || a.Similarity != b.Similarity {
			t.Fatalf("verdict diverged after round trip: %+v != %+v", b, a)
		}

		// Backward: a mutated bundle must never panic the loader.
		mut := append([]byte(nil), data...)
		mut[int(mutPos)%len(mut)] ^= mutXor
		if mutated, err := LoadClassifierBytes(mut, nil); err == nil && mutated != nil {
			_ = mutated.Classify(probe) // a surviving mutation must still be a usable model
		}
	})
}
