package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// Classifier assigns new sequences to the clusters of a finished run. It
// wraps the kept cluster trees, the background distribution, and the
// final similarity threshold, so the membership rule applied to new data
// is exactly the one the clustering converged to.
//
// A Classifier is immutable after construction: Classify and every
// accessor may be called from any number of goroutines concurrently
// (the cluster trees are only read, which pst.Tree permits — see the
// concurrency note on pst.Tree). The serving daemon relies on this to
// share one Classifier across all in-flight requests.
type Classifier struct {
	// trees holds the live cluster trees — nil for classifiers loaded
	// from a v3 bundle without embedded trees, which serve entirely from
	// the snapshot arenas below.
	trees []*pst.Tree
	// snaps holds one compiled scoring snapshot per cluster (see
	// pst.Snapshot). Classifier trees never mutate, so the snapshots
	// compiled at construction stay valid for the classifier's lifetime
	// and Classify scans flat arrays with no locks and no math.Log. For
	// v3-loaded classifiers the snapshots are standalone views into the
	// bundle bytes (zero-copy when those bytes are mmap'd).
	snaps      []*pst.Snapshot
	background []float64
	logT       float64
	raw        bool
	// alphabet is the training database's rune↔symbol mapping, carried so
	// that raw strings can be classified without the original database.
	// Nil for bundles saved before format v2; such classifiers accept
	// only pre-encoded symbol slices.
	alphabet *seq.Alphabet
	// published is the publisher snapshot version a v3 bundle was saved
	// at; zero otherwise.
	published uint64
	// treeInfos and maxDepth carry the per-cluster stats of a treeless
	// v3 bundle, so Info answers without the trees.
	treeInfos []TreeInfo
	maxDepth  int
	// backing pins whatever owns the bytes the snapshots view — the
	// mmap'd file region — for the classifier's lifetime, so the
	// mapping is unmapped only after the last reader drops.
	backing any
}

// NewClassifier builds a classifier from a clustering result. The result
// must come from a run with Config.KeepTrees set, and db must be the
// database that was clustered (its symbol frequencies are the similarity
// background and its alphabet encodes future inputs).
func NewClassifier(db *seq.Database, res *Result, cfg Config) (*Classifier, error) {
	if db == nil || res == nil {
		return nil, fmt.Errorf("core: NewClassifier needs a database and a result")
	}
	if len(res.Clusters) == 0 {
		return nil, fmt.Errorf("core: result has no clusters")
	}
	c := &Classifier{
		background: db.SymbolFrequencies(),
		logT:       math.Log(res.FinalThreshold),
		raw:        cfg.RawSimilarity,
		alphabet:   db.Alphabet,
	}
	for _, cl := range res.Clusters {
		if cl.Tree == nil {
			return nil, fmt.Errorf("core: cluster %d carries no tree; run Cluster with Config.KeepTrees", cl.ID)
		}
		c.trees = append(c.trees, cl.Tree)
	}
	start := time.Now()
	c.compileSnapshots()
	if cfg.Obs != nil {
		cfg.Obs.Counter("cluseq_classifier_snapshot_compiles_total").Add(int64(len(c.trees)))
		cfg.Obs.Histogram("cluseq_classifier_snapshot_compile_seconds", 0, 1, 200).ObserveSince(start)
	}
	return c, nil
}

// NewClassifierFromParts assembles a classifier directly from cluster
// trees, without a Result. The streaming engine (internal/stream) uses
// it at snapshot-publication time: the trees must be private, immutable
// copies (see pst.Tree.Clone) sharing one alphabet size, background is
// the symbol distribution the similarities were scored against, and
// threshold is the similarity threshold in effect (not log-domain). The
// background slice is copied; the trees are not, so the caller must not
// mutate them afterwards.
func NewClassifierFromParts(trees []*pst.Tree, alphabet *seq.Alphabet, background []float64, threshold float64, raw bool) (*Classifier, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: classifier needs at least one cluster tree")
	}
	if alphabet == nil {
		return nil, fmt.Errorf("core: classifier needs an alphabet")
	}
	if len(background) != alphabet.Size() {
		return nil, fmt.Errorf("core: background has %d entries, alphabet %d symbols", len(background), alphabet.Size())
	}
	if !(threshold > 0) || math.IsInf(threshold, 1) {
		return nil, fmt.Errorf("core: threshold %v outside (0, +inf)", threshold)
	}
	for i, tree := range trees {
		if tree == nil {
			return nil, fmt.Errorf("core: cluster tree %d is nil", i)
		}
		if got := tree.Config().AlphabetSize; got != alphabet.Size() {
			return nil, fmt.Errorf("core: cluster tree %d built over %d symbols, alphabet has %d", i, got, alphabet.Size())
		}
	}
	c := &Classifier{
		trees:      trees,
		background: append([]float64(nil), background...),
		logT:       math.Log(threshold),
		raw:        raw,
		alphabet:   alphabet,
	}
	c.compileSnapshots()
	return c, nil
}

// compileSnapshots freezes every tree into its scoring snapshot; called
// once per constructor, before the classifier is published to callers.
func (c *Classifier) compileSnapshots() {
	c.snaps = make([]*pst.Snapshot, len(c.trees))
	for i, tree := range c.trees {
		c.snaps[i] = tree.CompileSnapshot(c.background)
	}
}

// Assignment is one classification outcome.
type Assignment struct {
	// Cluster is the index (into Result.Clusters) of the best cluster, or
	// −1 when the sequence clears no cluster's threshold (an outlier).
	Cluster int
	// Similarity is the per-symbol normalized similarity to that cluster
	// (or to the best-scoring cluster when Cluster is −1).
	Similarity float64
	// Memberships lists every cluster whose threshold the sequence
	// clears, mirroring CLUSEQ's possibly-overlapping membership.
	Memberships []int
}

// Classify scores one sequence against every cluster.
func (c *Classifier) Classify(symbols []seq.Symbol) Assignment {
	out := Assignment{Cluster: -1}
	if len(symbols) == 0 {
		out.Similarity = 0
		return out
	}
	bestIdx, bestNorm := -1, math.Inf(-1)
	for i, n := 0, c.NumClusters(); i < n; i++ {
		var snap *pst.Snapshot
		if i < len(c.snaps) {
			snap = c.snaps[i]
		}
		var sim pst.Similarity
		if snap != nil && (len(c.trees) == 0 || snap.Standalone() || snap.Valid(c.trees[i])) {
			// Standalone snapshots (loaded from a v3 bundle) have no tree
			// to go stale against; compiled ones must still match theirs.
			sim = snap.Similarity(symbols)
		} else {
			// No compiled snapshot (classifier assembled without the
			// constructors); the tree scan is bit-identical, just slower.
			sim = c.trees[i].SimilarityFast(symbols, c.background)
		}
		norm := sim.LogSim
		if !c.raw {
			norm /= float64(len(symbols))
		}
		if norm >= c.logT {
			out.Memberships = append(out.Memberships, i)
		}
		if norm > bestNorm {
			bestNorm = norm
			bestIdx = i
		}
	}
	if bestIdx >= 0 && bestNorm >= c.logT {
		out.Cluster = bestIdx
	}
	out.Similarity = math.Exp(bestNorm)
	return out
}

// ClassifyString encodes raw under the classifier's alphabet and
// classifies it. It fails when the bundle carries no alphabet (format v1)
// or when raw contains a rune outside the training alphabet.
func (c *Classifier) ClassifyString(raw string) (Assignment, error) {
	if c.alphabet == nil {
		return Assignment{}, fmt.Errorf("core: classifier bundle carries no alphabet (saved by an older version); classify pre-encoded symbols instead")
	}
	syms, err := c.alphabet.Encode(raw)
	if err != nil {
		return Assignment{}, err
	}
	return c.Classify(syms), nil
}

// NumClusters returns the number of clusters the classifier scores
// against.
func (c *Classifier) NumClusters() int { return max(len(c.trees), len(c.snaps)) }

// Alphabet returns the training alphabet, or nil for bundles saved
// before format v2.
func (c *Classifier) Alphabet() *seq.Alphabet { return c.alphabet }

// Threshold returns the per-symbol normalized similarity threshold the
// clustering converged to (Result.FinalThreshold).
func (c *Classifier) Threshold() float64 { return math.Exp(c.logT) }

// RawSimilarity reports whether the threshold is compared against raw
// (un-normalized) similarities.
func (c *Classifier) RawSimilarity() bool { return c.raw }

// ModelInfo is a read-only summary of a classifier's parameters, shaped
// for the serving daemon's model listing.
type ModelInfo struct {
	Clusters      int     `json:"clusters"`
	AlphabetSize  int     `json:"alphabet_size"`
	Alphabet      string  `json:"alphabet,omitempty"`
	Threshold     float64 `json:"threshold"`
	RawSimilarity bool    `json:"raw_similarity,omitempty"`
	MaxDepth      int     `json:"max_depth"`
	TotalNodes    int     `json:"total_nodes"`
	// Trees summarizes each cluster's suffix tree in cluster order.
	Trees []TreeInfo `json:"trees,omitempty"`
}

// TreeInfo summarizes one cluster tree.
type TreeInfo struct {
	Nodes            int   `json:"nodes"`
	SignificantNodes int   `json:"significant_nodes"`
	Depth            int   `json:"depth"`
	TotalSymbols     int64 `json:"total_symbols"`
}

// Info summarizes the classifier's parameters and per-cluster trees. It
// walks every tree, so the cost is proportional to total model size;
// for treeless (v3-loaded) classifiers it answers from the bundle's
// stored per-cluster stats instead.
func (c *Classifier) Info() ModelInfo {
	info := ModelInfo{
		Clusters:      c.NumClusters(),
		AlphabetSize:  len(c.background),
		Threshold:     c.Threshold(),
		RawSimilarity: c.raw,
	}
	if c.alphabet != nil {
		info.Alphabet = c.alphabet.String()
	}
	if len(c.trees) == 0 && len(c.treeInfos) > 0 {
		info.MaxDepth = c.maxDepth
		info.Trees = append([]TreeInfo(nil), c.treeInfos...)
		for _, ti := range c.treeInfos {
			info.TotalNodes += ti.Nodes
		}
		return info
	}
	for _, tree := range c.trees {
		st := tree.Stats()
		info.TotalNodes += st.Nodes
		if d := tree.Config().MaxDepth; d > info.MaxDepth {
			info.MaxDepth = d
		}
		info.Trees = append(info.Trees, TreeInfo{
			Nodes:            st.Nodes,
			SignificantNodes: st.SignificantNodes,
			Depth:            st.MaxDepth,
			TotalSymbols:     st.TotalSymbols,
		})
	}
	return info
}

// Bundle format magics. v2 adds the training alphabet between the header
// and the background distribution; v1 bundles still load (with a nil
// alphabet). Save always writes v2.
var (
	classifierMagicV1 = []byte("CLUSEQCLFv1\n")
	classifierMagic   = []byte("CLUSEQCLFv2\n")
)

// maxAlphabetBytes bounds the alphabet section: MaxAlphabetSize runes of
// at most 4 UTF-8 bytes each.
const maxAlphabetBytes = 4 * seqMaxAlphabet

// Save writes the classifier — every cluster tree, the training
// alphabet, the background distribution, and the similarity threshold —
// as one binary stream, so a clustering can be trained once and reused
// for classification without the original database. The output is
// deterministic: saving the same classifier twice yields identical bytes.
func (c *Classifier) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(classifierMagic); err != nil {
		return err
	}
	hdr := []any{
		int64(len(c.trees)), int64(len(c.background)), c.logT, boolByte(c.raw),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var alphaBytes []byte
	if c.alphabet != nil {
		alphaBytes = []byte(c.alphabet.String())
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(alphaBytes))); err != nil {
		return err
	}
	if _, err := bw.Write(alphaBytes); err != nil {
		return err
	}
	for _, v := range c.background {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// Trees are length-prefixed: pst.Load buffers its reader, so each
	// tree must arrive as an exactly-bounded segment.
	var tmp bytes.Buffer
	for _, tree := range c.trees {
		tmp.Reset()
		if err := tree.Save(&tmp); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, int64(tmp.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(tmp.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// LoadClassifier reads a bundle previously written by Save or
// SaveBundle: format v3 (routed through LoadClassifierBytes on an
// in-memory copy — callers that want zero-copy should mmap and call
// LoadClassifierBytes directly), v2, and the older v1 (no alphabet
// section) are all accepted. Corrupt or truncated bundles fail with an
// error naming the offending section; no error causes an allocation
// proportional to a corrupt size field.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(classifierMagic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("core: reading classifier magic: %w", err)
	}
	var hasAlphabet bool
	switch {
	case bytes.Equal(got, classifierMagicV3):
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading v3 bundle: %w", err)
		}
		return LoadClassifierBytes(append(got, rest...), nil)
	case bytes.Equal(got, classifierMagic):
		hasAlphabet = true
	case bytes.Equal(got, classifierMagicV1):
		hasAlphabet = false
	default:
		return nil, fmt.Errorf("core: bad classifier magic %q", got)
	}
	var (
		nTrees, nBg int64
		logT        float64
		raw         byte
	)
	hdrFields := []struct {
		name string
		v    any
	}{{"tree count", &nTrees}, {"alphabet size", &nBg}, {"threshold", &logT}, {"raw flag", &raw}}
	for _, f := range hdrFields {
		if err := binary.Read(br, binary.LittleEndian, f.v); err != nil {
			return nil, fmt.Errorf("core: reading classifier header field %s: %w", f.name, err)
		}
	}
	if nTrees < 1 || nTrees > 1<<20 || nBg < 1 || nBg > seqMaxAlphabet {
		return nil, fmt.Errorf("core: corrupt classifier header (%d trees, %d symbols)", nTrees, nBg)
	}
	c := &Classifier{logT: logT, raw: raw != 0}
	if hasAlphabet {
		var alphaLen int64
		if err := binary.Read(br, binary.LittleEndian, &alphaLen); err != nil {
			return nil, fmt.Errorf("core: reading alphabet length: %w", err)
		}
		if alphaLen < 0 || alphaLen > maxAlphabetBytes {
			return nil, fmt.Errorf("core: corrupt alphabet length %d (max %d bytes)", alphaLen, maxAlphabetBytes)
		}
		if alphaLen > 0 {
			buf := make([]byte, alphaLen)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("core: reading alphabet: %w", err)
			}
			a, err := seq.NewAlphabet(string(buf))
			if err != nil {
				return nil, fmt.Errorf("core: corrupt alphabet section: %w", err)
			}
			// NewAlphabet deduplicates; a corrupt section with repeated
			// runes would silently shift every symbol, so reject it.
			if a.String() != string(buf) {
				return nil, fmt.Errorf("core: corrupt alphabet section: %q has duplicate or non-canonical runes", buf)
			}
			if int64(a.Size()) != nBg {
				return nil, fmt.Errorf("core: alphabet has %d runes but background declares %d symbols", a.Size(), nBg)
			}
			c.alphabet = a
		}
	}
	c.background = make([]float64, nBg)
	for i := range c.background {
		if err := binary.Read(br, binary.LittleEndian, &c.background[i]); err != nil {
			return nil, fmt.Errorf("core: reading background entry %d: %w", i, err)
		}
		// Zero is legitimate: a stream-published background has zero mass
		// on symbols the stream never produced.
		if !(c.background[i] >= 0) || c.background[i] > 1 {
			return nil, fmt.Errorf("core: corrupt background entry %d: %v", i, c.background[i])
		}
	}
	for i := int64(0); i < nTrees; i++ {
		var size int64
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return nil, fmt.Errorf("core: reading tree %d size: %w", i, err)
		}
		if size <= 0 || size > 1<<34 {
			return nil, fmt.Errorf("core: corrupt tree %d size %d", i, size)
		}
		// Bound the tree's read window instead of materializing a blob:
		// a corrupt size field then costs nothing, and a truncated stream
		// fails inside pst.Load with the section named.
		lr := &io.LimitedReader{R: br, N: size}
		tree, err := pst.Load(lr)
		if err != nil {
			return nil, fmt.Errorf("core: loading tree %d: %w", i, err)
		}
		// pst.Load buffers its reader, so advance past whatever of the
		// declared window its buffering left unread.
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("core: skipping tree %d padding: %w", i, err)
		}
		if tree.Config().AlphabetSize != int(nBg) {
			return nil, fmt.Errorf("core: tree %d alphabet %d != background %d", i, tree.Config().AlphabetSize, nBg)
		}
		c.trees = append(c.trees, tree)
	}
	c.compileSnapshots()
	return c, nil
}

const seqMaxAlphabet = seq.MaxAlphabetSize
