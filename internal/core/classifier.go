package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// Classifier assigns new sequences to the clusters of a finished run. It
// wraps the kept cluster trees, the background distribution, and the
// final similarity threshold, so the membership rule applied to new data
// is exactly the one the clustering converged to.
type Classifier struct {
	trees      []*pst.Tree
	background []float64
	logT       float64
	raw        bool
}

// NewClassifier builds a classifier from a clustering result. The result
// must come from a run with Config.KeepTrees set, and db must be the
// database that was clustered (its symbol frequencies are the similarity
// background).
func NewClassifier(db *seq.Database, res *Result, cfg Config) (*Classifier, error) {
	if db == nil || res == nil {
		return nil, fmt.Errorf("core: NewClassifier needs a database and a result")
	}
	if len(res.Clusters) == 0 {
		return nil, fmt.Errorf("core: result has no clusters")
	}
	c := &Classifier{
		background: db.SymbolFrequencies(),
		logT:       math.Log(res.FinalThreshold),
		raw:        cfg.RawSimilarity,
	}
	for _, cl := range res.Clusters {
		if cl.Tree == nil {
			return nil, fmt.Errorf("core: cluster %d carries no tree; run Cluster with Config.KeepTrees", cl.ID)
		}
		c.trees = append(c.trees, cl.Tree)
	}
	return c, nil
}

// Assignment is one classification outcome.
type Assignment struct {
	// Cluster is the index (into Result.Clusters) of the best cluster, or
	// −1 when the sequence clears no cluster's threshold (an outlier).
	Cluster int
	// Similarity is the per-symbol normalized similarity to that cluster
	// (or to the best-scoring cluster when Cluster is −1).
	Similarity float64
	// Memberships lists every cluster whose threshold the sequence
	// clears, mirroring CLUSEQ's possibly-overlapping membership.
	Memberships []int
}

// Classify scores one sequence against every cluster.
func (c *Classifier) Classify(symbols []seq.Symbol) Assignment {
	out := Assignment{Cluster: -1}
	if len(symbols) == 0 {
		out.Similarity = 0
		return out
	}
	bestIdx, bestNorm := -1, math.Inf(-1)
	for i, tree := range c.trees {
		sim := tree.SimilarityFast(symbols, c.background)
		norm := sim.LogSim
		if !c.raw {
			norm /= float64(len(symbols))
		}
		if norm >= c.logT {
			out.Memberships = append(out.Memberships, i)
		}
		if norm > bestNorm {
			bestNorm = norm
			bestIdx = i
		}
	}
	if bestIdx >= 0 && bestNorm >= c.logT {
		out.Cluster = bestIdx
	}
	out.Similarity = math.Exp(bestNorm)
	return out
}

// NumClusters returns the number of clusters the classifier scores
// against.
func (c *Classifier) NumClusters() int { return len(c.trees) }

// classifierMagic heads the single-file model bundle format.
var classifierMagic = []byte("CLUSEQCLFv1\n")

// Save writes the classifier — every cluster tree, the background
// distribution, and the similarity threshold — as one binary stream, so a
// clustering can be trained once and reused for classification without
// the original database.
func (c *Classifier) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(classifierMagic); err != nil {
		return err
	}
	hdr := []any{
		int64(len(c.trees)), int64(len(c.background)), c.logT, boolByte(c.raw),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range c.background {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// Trees are length-prefixed: pst.Load buffers its reader, so each
	// tree must arrive as an exactly-bounded segment.
	var tmp bytes.Buffer
	for _, tree := range c.trees {
		tmp.Reset()
		if err := tree.Save(&tmp); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, int64(tmp.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(tmp.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// LoadClassifier reads a bundle previously written by Save.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(classifierMagic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("core: reading classifier magic: %w", err)
	}
	if string(got) != string(classifierMagic) {
		return nil, fmt.Errorf("core: bad classifier magic %q", got)
	}
	var (
		nTrees, nBg int64
		logT        float64
		raw         byte
	)
	for _, v := range []any{&nTrees, &nBg, &logT, &raw} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: reading classifier header: %w", err)
		}
	}
	if nTrees < 1 || nTrees > 1<<20 || nBg < 1 || nBg > seqMaxAlphabet {
		return nil, fmt.Errorf("core: corrupt classifier header (%d trees, %d symbols)", nTrees, nBg)
	}
	c := &Classifier{logT: logT, raw: raw != 0}
	c.background = make([]float64, nBg)
	for i := range c.background {
		if err := binary.Read(br, binary.LittleEndian, &c.background[i]); err != nil {
			return nil, err
		}
		if !(c.background[i] > 0) {
			return nil, fmt.Errorf("core: corrupt background entry %d: %v", i, c.background[i])
		}
	}
	for i := int64(0); i < nTrees; i++ {
		var size int64
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return nil, fmt.Errorf("core: reading tree %d size: %w", i, err)
		}
		if size <= 0 || size > 1<<34 {
			return nil, fmt.Errorf("core: corrupt tree %d size %d", i, size)
		}
		blob := make([]byte, size)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, fmt.Errorf("core: reading tree %d: %w", i, err)
		}
		tree, err := pst.Load(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("core: loading tree %d: %w", i, err)
		}
		if tree.Config().AlphabetSize != int(nBg) {
			return nil, fmt.Errorf("core: tree %d alphabet %d != background %d", i, tree.Config().AlphabetSize, nBg)
		}
		c.trees = append(c.trees, tree)
	}
	return c, nil
}

const seqMaxAlphabet = seq.MaxAlphabetSize
