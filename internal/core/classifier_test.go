package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"cluseq/internal/datagen"
	"cluseq/internal/seq"
)

func TestClassifierAssignsNewSequences(t *testing.T) {
	db := testDB(t, 200, 3, 0, 91)
	cfg := testConfig()
	cfg.KeepTrees = true
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() < 2 {
		t.Skipf("only %d clusters formed", res.NumClusters())
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clf.NumClusters() != res.NumClusters() {
		t.Fatalf("classifier has %d clusters, result %d", clf.NumClusters(), res.NumClusters())
	}

	// Label each cluster by its majority planted source, then classify
	// FRESH sequences from each source and check they land in a cluster
	// of the matching majority.
	majority := make([]string, res.NumClusters())
	for i, c := range res.Clusters {
		counts := map[string]int{}
		for _, m := range c.Members {
			counts[db.Sequences[m].Label]++
		}
		best, bestN := "", 0
		for l, n := range counts {
			if n > bestN {
				best, bestN = l, n
			}
		}
		majority[i] = best
	}

	rng := newTestRand(123)
	correct, total := 0, 0
	for srcID := 0; srcID < 3; srcID++ {
		src := datagen.NewClusterSource(srcID, 91, 12, 3)
		want := []string{"cluster00", "cluster01", "cluster02"}[srcID]
		for trial := 0; trial < 10; trial++ {
			probe := src.Generate(120, rng)
			a := clf.Classify(probe)
			total++
			if a.Cluster >= 0 && majority[a.Cluster] == want {
				correct++
			}
		}
	}
	if float64(correct)/float64(total) < 0.7 {
		t.Fatalf("classifier got %d/%d fresh sequences right", correct, total)
	}
}

func TestClassifierRejectsOutliers(t *testing.T) {
	db := testDB(t, 150, 3, 0, 97)
	cfg := testConfig()
	cfg.KeepTrees = true
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand(5)
	rejected := 0
	const probes = 20
	for i := 0; i < probes; i++ {
		noise := randomNoise(rng, 120, 12)
		if a := clf.Classify(noise); a.Cluster == -1 {
			rejected++
			if len(a.Memberships) != 0 {
				t.Fatal("outlier with -1 cluster must have empty memberships")
			}
		}
	}
	if rejected < probes*6/10 {
		t.Fatalf("only %d/%d random probes rejected", rejected, probes)
	}
}

func TestClassifierEmptyAndErrors(t *testing.T) {
	db := testDB(t, 80, 2, 0, 101)
	cfg := testConfig()
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without KeepTrees the classifier must refuse.
	if _, err := NewClassifier(db, res, cfg); err == nil {
		t.Fatal("NewClassifier should fail without kept trees")
	}
	if _, err := NewClassifier(nil, res, cfg); err == nil {
		t.Fatal("NewClassifier should fail on nil database")
	}
	if _, err := NewClassifier(db, &Result{}, cfg); err == nil {
		t.Fatal("NewClassifier should fail on empty result")
	}

	cfg.KeepTrees = true
	res, err = Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := clf.Classify(nil)
	if a.Cluster != -1 || len(a.Memberships) != 0 {
		t.Fatalf("empty sequence should be an outlier: %+v", a)
	}
}

func TestClassifierSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t, 150, 3, 0, 103)
	cfg := testConfig()
	cfg.KeepTrees = true
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadClassifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadClassifier: %v", err)
	}
	if loaded.NumClusters() != clf.NumClusters() {
		t.Fatalf("clusters = %d, want %d", loaded.NumClusters(), clf.NumClusters())
	}
	// Every sequence must classify identically.
	for _, s := range db.Sequences[:40] {
		a := clf.Classify(s.Symbols)
		b := loaded.Classify(s.Symbols)
		if a.Cluster != b.Cluster || math.Abs(a.Similarity-b.Similarity) > 1e-9 {
			t.Fatalf("classification differs after round trip: %+v vs %+v", a, b)
		}
		if len(a.Memberships) != len(b.Memberships) {
			t.Fatalf("memberships differ: %v vs %v", a.Memberships, b.Memberships)
		}
	}
}

func TestLoadClassifierRejectsCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOTACLASSIFIER bundle with enough bytes"),
		"truncated v1": append([]byte("CLUSEQCLFv1\n"), 1, 2, 3),
		"truncated v2": append([]byte("CLUSEQCLFv2\n"), 1, 2, 3),
	}
	for name, in := range cases {
		if _, err := LoadClassifier(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: LoadClassifier should fail", name)
		}
	}
}

// savedTestClassifier trains a tiny classifier and returns it with its
// serialized bundle.
func savedTestClassifier(t *testing.T) (*Classifier, []byte) {
	t.Helper()
	db := testDB(t, 120, 2, 0, 107)
	cfg := testConfig()
	cfg.KeepTrees = true
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return clf, buf.Bytes()
}

func TestClassifierAlphabetRoundTrip(t *testing.T) {
	clf, data := savedTestClassifier(t)
	if clf.Alphabet() == nil {
		t.Fatal("NewClassifier should capture the training alphabet")
	}
	loaded, err := LoadClassifier(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Alphabet() == nil || loaded.Alphabet().String() != clf.Alphabet().String() {
		t.Fatalf("alphabet lost in round trip: %v", loaded.Alphabet())
	}
	// ClassifyString must agree with Classify on the encoded symbols.
	raw := clf.Alphabet().Decode(randomNoise(newTestRand(7), 60, clf.Alphabet().Size()))
	a, err := loaded.ClassifyString(raw)
	if err != nil {
		t.Fatal(err)
	}
	syms, err := loaded.Alphabet().Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if b := loaded.Classify(syms); a.Cluster != b.Cluster || a.Similarity != b.Similarity {
		t.Fatalf("ClassifyString %+v != Classify %+v", a, b)
	}
	// Unknown runes must error, not panic.
	if _, err := loaded.ClassifyString("\x00\x01 definitely not in alphabet ☃"); err == nil {
		t.Fatal("ClassifyString should reject runes outside the alphabet")
	}
}

// asV1Bundle rewrites a v2 bundle as the v1 format (no alphabet section).
func asV1Bundle(t *testing.T, v2 []byte) []byte {
	t.Helper()
	const magicLen, hdrLen = 12, 8 + 8 + 8 + 1
	alphaLen := int64(binary.LittleEndian.Uint64(v2[magicLen+hdrLen:]))
	out := append([]byte(nil), classifierMagicV1...)
	out = append(out, v2[magicLen:magicLen+hdrLen]...)
	out = append(out, v2[magicLen+hdrLen+8+int(alphaLen):]...)
	return out
}

func TestLoadClassifierAcceptsV1(t *testing.T) {
	clf, data := savedTestClassifier(t)
	loaded, err := LoadClassifier(bytes.NewReader(asV1Bundle(t, data)))
	if err != nil {
		t.Fatalf("LoadClassifier on v1 bundle: %v", err)
	}
	if loaded.Alphabet() != nil {
		t.Fatal("v1 bundle should load with a nil alphabet")
	}
	if _, err := loaded.ClassifyString("anything"); err == nil {
		t.Fatal("ClassifyString should refuse on an alphabet-less classifier")
	}
	// Symbol-level classification must be unaffected.
	probe := randomNoise(newTestRand(3), 50, loaded.Info().AlphabetSize)
	a, b := clf.Classify(probe), loaded.Classify(probe)
	if a.Cluster != b.Cluster || math.Abs(a.Similarity-b.Similarity) > 1e-12 {
		t.Fatalf("v1 classification differs: %+v vs %+v", a, b)
	}
}

func TestClassifierInfo(t *testing.T) {
	clf, data := savedTestClassifier(t)
	info := clf.Info()
	if info.Clusters != clf.NumClusters() || len(info.Trees) != clf.NumClusters() {
		t.Fatalf("Info clusters %d/%d, want %d", info.Clusters, len(info.Trees), clf.NumClusters())
	}
	if info.AlphabetSize != clf.Alphabet().Size() || info.Alphabet != clf.Alphabet().String() {
		t.Fatalf("Info alphabet %q (%d) disagrees with %q", info.Alphabet, info.AlphabetSize, clf.Alphabet().String())
	}
	if info.Threshold <= 0 {
		t.Fatalf("Info threshold %v", info.Threshold)
	}
	if info.TotalNodes < info.Clusters {
		t.Fatalf("TotalNodes %d below cluster count", info.TotalNodes)
	}
	for i, tr := range info.Trees {
		if tr.Nodes < 1 {
			t.Fatalf("tree %d reports %d nodes", i, tr.Nodes)
		}
	}
	loaded, err := LoadClassifier(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Info(); got.TotalNodes != info.TotalNodes || got.Threshold != info.Threshold {
		t.Fatalf("Info differs after round trip: %+v vs %+v", got, info)
	}
}

func TestLoadClassifierFailsFastOnCorruptSizes(t *testing.T) {
	_, data := savedTestClassifier(t)
	const magicLen, hdrLen = 12, 25
	patch := func(off int, v uint64) []byte {
		out := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(out[off:], v)
		return out
	}
	alphaOff := magicLen + hdrLen
	cases := map[string][]byte{
		"giant tree count":      patch(magicLen, 1<<40),
		"giant alphabet count":  patch(magicLen+8, 1<<40),
		"giant alphabet length": patch(alphaOff, 1<<50),
		// Tree size fields live past the background; clobbering the
		// alphabet length to a small wrong value must also fail cleanly.
		"wrong alphabet length": patch(alphaOff, 3),
	}
	for name, in := range cases {
		if _, err := LoadClassifier(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: LoadClassifier should fail", name)
		}
	}
	// A truncated background must name the section.
	alphaLen := int(binary.LittleEndian.Uint64(data[alphaOff:]))
	cut := alphaOff + 8 + alphaLen + 11 // mid-way through background floats
	if _, err := LoadClassifier(bytes.NewReader(data[:cut])); err == nil {
		t.Error("truncated background should fail")
	} else if !strings.Contains(err.Error(), "background") {
		t.Errorf("error should name the background section, got: %v", err)
	}
}

func TestClassifierSaveDeterministic(t *testing.T) {
	clf, data := savedTestClassifier(t)
	var again bytes.Buffer
	if err := clf.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again.Bytes()) {
		t.Fatal("Save output is not byte-deterministic")
	}
	loaded, err := LoadClassifier(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var resaved bytes.Buffer
	if err := loaded.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, resaved.Bytes()) {
		t.Fatal("Save after Load is not byte-identical")
	}
}

func randomNoise(rng *rand.Rand, n, alpha int) []seq.Symbol {
	out := make([]seq.Symbol, n)
	for i := range out {
		out[i] = seq.Symbol(rng.IntN(alpha))
	}
	return out
}
