package core

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"cluseq/internal/datagen"
	"cluseq/internal/seq"
)

func TestClassifierAssignsNewSequences(t *testing.T) {
	db := testDB(t, 200, 3, 0, 91)
	cfg := testConfig()
	cfg.KeepTrees = true
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() < 2 {
		t.Skipf("only %d clusters formed", res.NumClusters())
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clf.NumClusters() != res.NumClusters() {
		t.Fatalf("classifier has %d clusters, result %d", clf.NumClusters(), res.NumClusters())
	}

	// Label each cluster by its majority planted source, then classify
	// FRESH sequences from each source and check they land in a cluster
	// of the matching majority.
	majority := make([]string, res.NumClusters())
	for i, c := range res.Clusters {
		counts := map[string]int{}
		for _, m := range c.Members {
			counts[db.Sequences[m].Label]++
		}
		best, bestN := "", 0
		for l, n := range counts {
			if n > bestN {
				best, bestN = l, n
			}
		}
		majority[i] = best
	}

	rng := newTestRand(123)
	correct, total := 0, 0
	for srcID := 0; srcID < 3; srcID++ {
		src := datagen.NewClusterSource(srcID, 91, 12, 3)
		want := []string{"cluster00", "cluster01", "cluster02"}[srcID]
		for trial := 0; trial < 10; trial++ {
			probe := src.Generate(120, rng)
			a := clf.Classify(probe)
			total++
			if a.Cluster >= 0 && majority[a.Cluster] == want {
				correct++
			}
		}
	}
	if float64(correct)/float64(total) < 0.7 {
		t.Fatalf("classifier got %d/%d fresh sequences right", correct, total)
	}
}

func TestClassifierRejectsOutliers(t *testing.T) {
	db := testDB(t, 150, 3, 0, 97)
	cfg := testConfig()
	cfg.KeepTrees = true
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand(5)
	rejected := 0
	const probes = 20
	for i := 0; i < probes; i++ {
		noise := randomNoise(rng, 120, 12)
		if a := clf.Classify(noise); a.Cluster == -1 {
			rejected++
			if len(a.Memberships) != 0 {
				t.Fatal("outlier with -1 cluster must have empty memberships")
			}
		}
	}
	if rejected < probes*6/10 {
		t.Fatalf("only %d/%d random probes rejected", rejected, probes)
	}
}

func TestClassifierEmptyAndErrors(t *testing.T) {
	db := testDB(t, 80, 2, 0, 101)
	cfg := testConfig()
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without KeepTrees the classifier must refuse.
	if _, err := NewClassifier(db, res, cfg); err == nil {
		t.Fatal("NewClassifier should fail without kept trees")
	}
	if _, err := NewClassifier(nil, res, cfg); err == nil {
		t.Fatal("NewClassifier should fail on nil database")
	}
	if _, err := NewClassifier(db, &Result{}, cfg); err == nil {
		t.Fatal("NewClassifier should fail on empty result")
	}

	cfg.KeepTrees = true
	res, err = Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := clf.Classify(nil)
	if a.Cluster != -1 || len(a.Memberships) != 0 {
		t.Fatalf("empty sequence should be an outlier: %+v", a)
	}
}

func TestClassifierSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t, 150, 3, 0, 103)
	cfg := testConfig()
	cfg.KeepTrees = true
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := NewClassifier(db, res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadClassifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadClassifier: %v", err)
	}
	if loaded.NumClusters() != clf.NumClusters() {
		t.Fatalf("clusters = %d, want %d", loaded.NumClusters(), clf.NumClusters())
	}
	// Every sequence must classify identically.
	for _, s := range db.Sequences[:40] {
		a := clf.Classify(s.Symbols)
		b := loaded.Classify(s.Symbols)
		if a.Cluster != b.Cluster || math.Abs(a.Similarity-b.Similarity) > 1e-9 {
			t.Fatalf("classification differs after round trip: %+v vs %+v", a, b)
		}
		if len(a.Memberships) != len(b.Memberships) {
			t.Fatalf("memberships differ: %v vs %v", a.Memberships, b.Memberships)
		}
	}
}

func TestLoadClassifierRejectsCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTACLASSIFIER bundle with enough bytes"),
		"truncated": append([]byte("CLUSEQCLFv1\n"), 1, 2, 3),
	}
	for name, in := range cases {
		if _, err := LoadClassifier(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: LoadClassifier should fail", name)
		}
	}
}

func randomNoise(rng *rand.Rand, n, alpha int) []seq.Symbol {
	out := make([]seq.Symbol, n)
	for i := range out {
		out[i] = seq.Symbol(rng.IntN(alpha))
	}
	return out
}
