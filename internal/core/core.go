// Package core implements the CLUSEQ clustering algorithm of paper §4: an
// iterative process that grows a collection of possibly overlapping
// sequence clusters, each summarized by a probabilistic suffix tree, and
// that adapts both the number of clusters (via successive new-cluster
// generation and cluster consolidation) and the similarity threshold t
// (via the histogram-valley heuristic) automatically.
package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"cluseq/internal/eval"
	"cluseq/internal/obs"
	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// OrderStrategy selects the order in which sequences are examined during
// each reclustering pass (studied in paper §6.3).
type OrderStrategy int

const (
	// OrderFixed processes sequences by database position every
	// iteration — the paper's default (it avoids random disk I/O on 2003
	// hardware and loses nothing measurable in quality).
	OrderFixed OrderStrategy = iota
	// OrderRandom draws a fresh permutation each iteration.
	OrderRandom
	// OrderClusterBased examines all sequences of one (previous-iteration)
	// cluster before moving to the next — shown by the paper to trap the
	// algorithm in local optima; provided for the §6.3 experiment.
	OrderClusterBased
)

// Config parameterizes a clustering run. The zero value picks the paper's
// defaults.
type Config struct {
	// InitialClusters is k, the number of clusters seeded in the first
	// iteration. Default 1 (the paper's default; §6.3 shows the final
	// count is insensitive to it).
	InitialClusters int
	// Significance is c, the occurrence count a context needs before its
	// probability entries are trusted, also reused as the consolidation
	// minimum (§4.5 "say, < c"). Default pst.DefaultSignificance (30).
	Significance int
	// SimilarityThreshold is the initial t (≥ 1 recommended). Default 1.5.
	// Starting above the data's separating level is safe — the §4.6
	// adjustment descends to it — while starting far below lets the first
	// clusters absorb everything and entrench as blobs before t rises.
	//
	// The engine compares thresholds against the per-symbol normalized
	// similarity SIM^(1/l): raw Equation-1 similarities are products of up
	// to l per-symbol ratios and grow exponentially with sequence length,
	// which makes a single t incomparable across lengths. The paper's own
	// reported thresholds (initial 1.0005–3, final 1.52 and 2.0 on
	// 1000-symbol sequences) are only consistent with this normalization.
	// Set RawSimilarity to compare un-normalized similarities instead.
	SimilarityThreshold float64
	// RawSimilarity disables per-symbol normalization of the similarity
	// threshold comparison (kept for the ablation benchmarks).
	RawSimilarity bool
	// FixedThreshold, when true, disables the §4.6 automatic adjustment
	// of t; the initial threshold is used throughout.
	FixedThreshold bool
	// MaxDepth is the PST short-memory bound L. Default pst.DefaultMaxDepth.
	MaxDepth int
	// MaxPSTBytes caps each cluster tree's memory (§5.1); 0 = unlimited.
	MaxPSTBytes int
	// Prune selects the PST eviction strategy.
	Prune pst.PruneStrategy
	// PMin enables adjusted probability estimation (§5.2). Zero selects
	// the adaptive default 0.25/|Σ|, which keeps sparsely-estimated deep
	// contexts from vetoing whole segments with near-zero probabilities.
	// Set negative to disable smoothing entirely.
	PMin float64
	// SampleFactor sets the seed-sampling pool to SampleFactor·k_n
	// unclustered sequences (§4.1; the paper uses and recommends 5).
	SampleFactor int
	// MinDistinct overrides the consolidation threshold; 0 = Significance.
	MinDistinct int
	// Shrinkage, when positive, switches probability estimation to the
	// PST's shrinkage estimator (see pst.Config.Shrinkage): estimates
	// blend each context node with its parent using κ pseudo-
	// observations. Zero (the default) uses the significance-threshold
	// estimator.
	Shrinkage float64
	// MergeConsolidation changes §4.5 consolidation from dismissing a
	// covered cluster to merging it into the overlapping cluster that
	// covers most of its members — the covered cluster's tree statistics
	// and members are absorbed instead of discarded. An extension,
	// ablated in BenchmarkAblationConsolidation.
	MergeConsolidation bool
	// RefinePasses runs this many batch refinement passes after the main
	// loop converges: each pass rebuilds every cluster's tree from
	// scratch over its current members' full sequences and then
	// recomputes membership at the final threshold. The paper's purely
	// incremental trees never forget segments absorbed from early
	// (possibly wrong) members; refinement removes that hysteresis and
	// measurably purifies clusters. Zero disables (the paper's exact
	// behaviour); RefinePasses is an extension this repository ablates in
	// BenchmarkAblationRefine.
	RefinePasses int
	// InsertWhole inserts a joining sequence's entire symbol string into
	// the cluster tree instead of only its best-scoring segment (§4.4).
	// The paper's segment-only update keeps trees small and focused on
	// the shared signal, but an ablation (BenchmarkAblationUpdate) shows
	// whole-sequence updates estimate cluster CPDs better when sequences
	// are short relative to the significance threshold.
	InsertWhole bool
	// FixedSignificance pins the significance threshold to Significance
	// even for freshly seeded single-sequence trees — the paper's exact
	// behaviour. By default the threshold scales with tree size
	// (effective c = 1 for a lone seed, growing to Significance), which
	// is what lets a new cluster attract sequences sharing only *local*
	// segments (conserved motifs) with its seed. Data whose clusters
	// differ globally/compositionally (like the paper's synthetic
	// PST-sampled workload) does better with the fixed threshold; data
	// whose signal is local (protein-like) requires the adaptive one.
	FixedSignificance bool
	// MaxIterations bounds the outer loop as a safety net. Default 60.
	MaxIterations int
	// Order is the §6.3 processing-order strategy.
	Order OrderStrategy
	// HistogramBuckets is the granularity of the §4.6 threshold histogram.
	// Default 100.
	HistogramBuckets int
	// Valley selects the estimator used to locate the similarity
	// histogram's valley during threshold adjustment.
	Valley ValleyEstimator
	// Seed drives all randomized choices (sampling, ordering). Default 1.
	Seed uint64
	// Workers bounds the parallelism of similarity evaluation; 0 uses
	// GOMAXPROCS, 1 forces the paper's serial behaviour. Reclustering
	// fans sequences out across a persistent worker pool in a read-only
	// scoring phase, then applies joins and tree updates serially in the
	// §6.3 examination order, so results are bit-identical across
	// worker counts (and to the serial algorithm).
	Workers int
	// CacheOff disables the cross-iteration similarity cache: every
	// (sequence, cluster) pair is re-scored on every reclustering pass.
	// The cache is exact — entries are stamped with the cluster tree's
	// version (see pst.Tree.Version) and any tree mutation invalidates
	// them — so this switch exists for benchmarking the cache's effect,
	// not for correctness.
	CacheOff bool
	// SnapshotOff disables the compiled scoring snapshots (see
	// pst.Snapshot): every similarity is evaluated by walking the live
	// tree instead of the flat compiled arrays. Snapshots are exact —
	// compiled per tree version and bit-identical to the tree scans by
	// contract — so, like CacheOff, this switch exists for benchmarking
	// the optimization's effect, not for correctness.
	SnapshotOff bool
	// KeepTrees attaches each final cluster's probabilistic suffix tree
	// to its ClusterInfo, so callers can classify new sequences against
	// the discovered clusters (tree.Similarity) or persist the models
	// (tree.Save) without re-clustering.
	KeepTrees bool
	// Logf, when non-nil, receives one progress line per iteration.
	Logf func(format string, args ...any)
	// Obs, when non-nil, receives the run's metrics: per-phase timing
	// histograms, cache hit/miss and snapshot-compile counters, PST
	// size/prune gauges and counters, and worker-pool dispatch stats.
	// See DESIGN.md §10 for the metric catalogue. Nil disables metrics
	// at negligible residual cost (nil-handle no-ops).
	Obs *obs.Registry
	// Tracer, when non-nil, receives one span per §4 phase per
	// iteration (generate, score, apply, consolidate, threshold, and
	// refine passes) as JSONL for offline analysis.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() (Config, error) {
	if c.InitialClusters == 0 {
		c.InitialClusters = 1
	}
	if c.InitialClusters < 1 {
		return c, fmt.Errorf("core: InitialClusters must be positive, got %d", c.InitialClusters)
	}
	if c.Significance == 0 {
		c.Significance = pst.DefaultSignificance
	}
	if c.Significance < 1 {
		return c, fmt.Errorf("core: Significance must be positive, got %d", c.Significance)
	}
	if c.SimilarityThreshold == 0 {
		c.SimilarityThreshold = 1.5
	}
	if c.SimilarityThreshold <= 0 {
		return c, fmt.Errorf("core: SimilarityThreshold must be positive, got %v", c.SimilarityThreshold)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = pst.DefaultMaxDepth
	}
	// PMin's adaptive default needs the alphabet size; Cluster resolves it.
	if c.PMin < 0 {
		c.PMin = 0
	}
	// Shrinkage is opt-in (zero = use the significance-threshold
	// estimator); negative normalizes to zero.
	if c.Shrinkage < 0 {
		c.Shrinkage = 0
	}
	if c.SampleFactor == 0 {
		c.SampleFactor = 5
	}
	if c.SampleFactor < 1 {
		return c, fmt.Errorf("core: SampleFactor must be positive, got %d", c.SampleFactor)
	}
	if c.MinDistinct == 0 {
		c.MinDistinct = c.Significance
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 60
	}
	if c.MaxIterations < 1 {
		return c, fmt.Errorf("core: MaxIterations must be positive, got %d", c.MaxIterations)
	}
	if c.HistogramBuckets == 0 {
		c.HistogramBuckets = 100
	}
	if c.HistogramBuckets < 3 {
		return c, fmt.Errorf("core: HistogramBuckets must be at least 3, got %d", c.HistogramBuckets)
	}
	return c, nil
}

// ValleyEstimator selects how the §4.6 threshold valley is located in the
// similarity histogram.
type ValleyEstimator int

const (
	// ValleyAuto (the default) uses the Otsu between-class split — robust
	// when the background mode has a soft tail — but, when the clustering
	// is starved (an iteration with no membership changes while a large
	// fraction of sequences remains unclustered, the signature of a
	// threshold stuck above the reach of fresh seed clusters), takes the
	// smaller of Otsu and the paper's regression-turn valley. The
	// regression valley hugs the right edge of the background mode, which
	// is exactly the growth-friendly bias that unsticks the run and
	// leaves cleanup to consolidation.
	ValleyAuto ValleyEstimator = iota
	// ValleyOtsu uses only the Otsu between-class split.
	ValleyOtsu
	// ValleyRegression uses only the paper's regression-slope turn
	// detector.
	ValleyRegression
)

// ClusterInfo describes one final cluster.
type ClusterInfo struct {
	// ID is a stable identifier assigned at creation, unique within the
	// run (not contiguous: consolidated clusters retire their IDs).
	ID int
	// Members holds database indices of the cluster's sequences.
	Members []int
	// SeedIndex is the database index of the sequence that founded the
	// cluster.
	SeedIndex int
	// TreeStats snapshots the cluster's probabilistic suffix tree.
	TreeStats pst.Stats
	// Tree is the cluster's probabilistic suffix tree, populated only
	// when Config.KeepTrees is set. Score candidate sequences with
	// Tree.Similarity against Database.SymbolFrequencies.
	Tree *pst.Tree
}

// IterationTrace records one outer-loop iteration for diagnostics and the
// sensitivity experiments.
type IterationTrace struct {
	NewClusters     int
	Consolidated    int
	Clusters        int // clusters alive at iteration end
	MembershipMoves int // sequences whose membership set changed
	Threshold       float64
	ValleyEstimate  float64 // t̂ of §4.6 (0 when no valley was found)
	Unclustered     int
	// CacheHits counts (sequence, cluster) pairs whose similarity was
	// reused from an earlier iteration because the cluster's tree had
	// not changed; CacheMisses counts the SimilarityFast evaluations the
	// pass actually performed (scoring phase plus apply-phase re-scores
	// after intra-pass tree inserts). Hits + misses can fall short of
	// sequences × clusters: empty sequences are skipped.
	CacheHits   int
	CacheMisses int
	// SnapshotCompiles counts the pst.Snapshot compilations performed
	// during the iteration — how often a cluster tree's mutation forced
	// the engine to refresh its compiled scoring snapshot.
	SnapshotCompiles int
}

// Result is the outcome of a clustering run.
type Result struct {
	// Clusters holds the final clusters; membership may overlap.
	Clusters []*ClusterInfo
	// Unclustered lists database indices of outliers (below-threshold
	// similarity to every cluster).
	Unclustered []int
	// Iterations is the number of outer iterations executed.
	Iterations int
	// FinalThreshold is t after automatic adjustment.
	FinalThreshold float64
	// Trace holds one entry per iteration.
	Trace []IterationTrace
	// Primary holds, for each sequence, the index (into Clusters) of its
	// best cluster — the member cluster of maximal similarity — or −1
	// when unclustered. Cluster membership itself may overlap
	// (Definition 2.1); Primary is the disjoint view used when reporting
	// precision/recall the way the paper's tables do.
	Primary []int
	n       int
}

// Clustering converts the result into the eval package's representation.
func (r *Result) Clustering() eval.Clustering {
	c := eval.Clustering{N: r.n, Members: make([][]int, len(r.Clusters))}
	for i, cl := range r.Clusters {
		c.Members[i] = append([]int(nil), cl.Members...)
	}
	return c
}

// NumClusters returns the number of final clusters.
func (r *Result) NumClusters() int { return len(r.Clusters) }

// PrimaryClustering returns the disjoint clustering induced by each
// sequence's best cluster.
func (r *Result) PrimaryClustering() eval.Clustering {
	c := eval.Clustering{N: r.n, Members: make([][]int, len(r.Clusters))}
	for i, p := range r.Primary {
		if p >= 0 {
			c.Members[p] = append(c.Members[p], i)
		}
	}
	return c
}

// Cluster runs CLUSEQ over the database and returns the discovered
// clusters. The database must be non-empty and valid.
func Cluster(db *seq.Database, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	if cfg.PMin == 0 {
		cfg.PMin = 0.25 / float64(db.Alphabet.Size())
	}
	e := &engine{
		db:  db,
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x636c7573)),
		thr: ThresholdAdjuster{
			LogT:    math.Log(cfg.SimilarityThreshold),
			Buckets: cfg.HistogramBuckets,
			Valley:  cfg.Valley,
			Sticky:  true,
		},
	}
	e.background = db.SymbolFrequencies()
	return e.run()
}

// Threshold clamp bounds. Similarities are raw products of per-symbol
// likelihood ratios, so legitimate in-cluster values reach e^60 and beyond
// for long sequences; the clamp exists only to keep t finite, not to bound
// its useful range.
const (
	minThreshold = 1e-300
	maxThreshold = 1e300
)

func clampThreshold(t float64) float64 {
	if t < minThreshold {
		return minThreshold
	}
	if t > maxThreshold {
		return maxThreshold
	}
	return t
}
