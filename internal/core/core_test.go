package core

import (
	"math"
	"testing"

	"cluseq/internal/datagen"
	"cluseq/internal/eval"
	"cluseq/internal/seq"
)

// testDB builds a small synthetic database with well-separated planted
// clusters, scaled so the whole suite stays fast.
func testDB(t *testing.T, n, clusters int, outlierFrac float64, seed uint64) *seq.Database {
	t.Helper()
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: n,
		AvgLength:    120,
		AlphabetSize: 12,
		NumClusters:  clusters,
		Order:        3,
		OutlierFrac:  outlierFrac,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// testConfig scales the paper's parameters down to the test databases.
func testConfig() Config {
	return Config{
		InitialClusters:     1,
		Significance:        15,
		MinDistinct:         5,
		SimilarityThreshold: 1.05,
		MaxDepth:            5,
		MaxIterations:       30,
		Seed:                7,
		// The test workloads are synthetic globally-distinct sources,
		// which suit the paper's fixed significance threshold (see the
		// FixedSignificance docs).
		FixedSignificance: true,
	}
}

func labelsOf(db *seq.Database) []string {
	out := make([]string, db.Len())
	for i, s := range db.Sequences {
		out[i] = s.Label
	}
	return out
}

func evaluate(t *testing.T, db *seq.Database, res *Result) eval.Report {
	t.Helper()
	rep, err := eval.Evaluate(res.Clustering(), labelsOf(db))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestClusterRecoversPlantedClusters(t *testing.T) {
	db := testDB(t, 240, 4, 0, 11)
	res, err := Cluster(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := evaluate(t, db, res)
	if res.NumClusters() < 3 || res.NumClusters() > 6 {
		t.Fatalf("found %d clusters, planted 4 (trace: %+v)", res.NumClusters(), res.Trace)
	}
	if rep.Accuracy < 0.8 {
		t.Fatalf("accuracy = %v, want ≥ 0.8 (report %+v)", rep.Accuracy, rep)
	}
	if res.Iterations >= testConfig().MaxIterations {
		t.Fatalf("did not converge within %d iterations", res.Iterations)
	}
}

func TestClusterInitialKInsensitive(t *testing.T) {
	// Table 5's property: the final cluster count is driven by the data,
	// not the initial k.
	db := testDB(t, 240, 4, 0, 13)
	counts := map[int]int{}
	for _, k := range []int{1, 4, 10} {
		cfg := testConfig()
		cfg.InitialClusters = k
		res, err := Cluster(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts[k] = res.NumClusters()
		rep := evaluate(t, db, res)
		if rep.Accuracy < 0.7 {
			t.Fatalf("k=%d: accuracy = %v", k, rep.Accuracy)
		}
	}
	for k, c := range counts {
		if c < 3 || c > 7 {
			t.Fatalf("k=%d converged to %d clusters (all: %v)", k, c, counts)
		}
	}
}

func TestClusterThresholdAdjusts(t *testing.T) {
	// Table 6's property: very different initial t converge to workable
	// thresholds and comparable quality.
	db := testDB(t, 240, 4, 0, 17)
	for _, t0 := range []float64{1.05, 1.5, 3} {
		cfg := testConfig()
		cfg.SimilarityThreshold = t0
		res, err := Cluster(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep := evaluate(t, db, res)
		if rep.Accuracy < 0.7 {
			t.Fatalf("t0=%v: accuracy = %v (final t %v)", t0, rep.Accuracy, res.FinalThreshold)
		}
		if res.FinalThreshold <= 0 {
			t.Fatalf("t0=%v: final threshold %v", t0, res.FinalThreshold)
		}
	}
}

func TestClusterFixedThreshold(t *testing.T) {
	db := testDB(t, 120, 2, 0, 19)
	cfg := testConfig()
	cfg.FixedThreshold = true
	cfg.SimilarityThreshold = 1.7
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalThreshold != 1.7 {
		t.Fatalf("fixed threshold moved: %v", res.FinalThreshold)
	}
	for _, tr := range res.Trace {
		if tr.Threshold != 1.7 {
			t.Fatalf("threshold changed mid-run: %+v", tr)
		}
	}
}

func TestClusterOutliersStayOut(t *testing.T) {
	db := testDB(t, 240, 3, 0.15, 23)
	cfg := testConfig()
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := evaluate(t, db, res)
	if rep.Accuracy < 0.7 {
		t.Fatalf("accuracy with outliers = %v", rep.Accuracy)
	}
	// Most planted outliers (empty label) must remain unclustered.
	outlierTotal, outlierOut := 0, 0
	inCluster := make(map[int]bool)
	for _, c := range res.Clusters {
		for _, m := range c.Members {
			inCluster[m] = true
		}
	}
	for i, s := range db.Sequences {
		if s.Label == "" {
			outlierTotal++
			if !inCluster[i] {
				outlierOut++
			}
		}
	}
	if outlierTotal == 0 {
		t.Fatal("test setup: no outliers planted")
	}
	if frac := float64(outlierOut) / float64(outlierTotal); frac < 0.6 {
		t.Fatalf("only %.0f%% of outliers stayed unclustered", 100*frac)
	}
}

func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	db := testDB(t, 120, 3, 0.05, 29)
	cfg := testConfig()
	cfg.Workers = 1
	r1, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	r8, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NumClusters() != r8.NumClusters() || r1.Iterations != r8.Iterations {
		t.Fatalf("parallelism changed the outcome: %d/%d clusters, %d/%d iterations",
			r1.NumClusters(), r8.NumClusters(), r1.Iterations, r8.Iterations)
	}
	c1, c8 := r1.Clustering(), r8.Clustering()
	a1, a8 := c1.Assignments(), c8.Assignments()
	for i := range a1 {
		if a1[i] != a8[i] {
			t.Fatalf("assignment differs at %d: %d vs %d", i, a1[i], a8[i])
		}
	}
}

func TestClusterOrderStrategiesRun(t *testing.T) {
	db := testDB(t, 120, 3, 0, 31)
	for _, order := range []OrderStrategy{OrderFixed, OrderRandom, OrderClusterBased} {
		cfg := testConfig()
		cfg.Order = order
		res, err := Cluster(db, cfg)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if err := res.Clustering().Validate(); err != nil {
			t.Fatalf("order %d: invalid clustering: %v", order, err)
		}
	}
}

func TestClusterMemoryCappedPSTs(t *testing.T) {
	db := testDB(t, 160, 3, 0, 37)
	cfg := testConfig()
	cfg.MaxPSTBytes = 64 * 1024
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if c.TreeStats.EstimatedBytes > cfg.MaxPSTBytes {
			t.Fatalf("cluster %d tree %d bytes exceeds cap %d",
				c.ID, c.TreeStats.EstimatedBytes, cfg.MaxPSTBytes)
		}
	}
	rep := evaluate(t, db, res)
	if rep.Accuracy < 0.6 {
		t.Fatalf("capped-PST accuracy = %v", rep.Accuracy)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	db := testDB(t, 20, 2, 0, 41)
	bad := []Config{
		{InitialClusters: -1},
		{Significance: -2},
		{SimilarityThreshold: -1},
		{SampleFactor: -1},
		{MaxIterations: -1},
		{HistogramBuckets: 2},
	}
	for i, cfg := range bad {
		if _, err := Cluster(db, cfg); err == nil {
			t.Errorf("case %d (%+v): want error", i, cfg)
		}
	}
	if _, err := Cluster(nil, Config{}); err == nil {
		t.Error("nil database should fail")
	}
	if _, err := Cluster(seq.NewDatabase(seq.MustAlphabet("ab")), Config{}); err == nil {
		t.Error("empty database should fail")
	}
}

func TestClusterInvalidDatabase(t *testing.T) {
	db := seq.NewDatabase(seq.MustAlphabet("ab"))
	db.Add(&seq.Sequence{ID: "bad", Symbols: []seq.Symbol{9}})
	if _, err := Cluster(db, Config{}); err == nil {
		t.Error("out-of-range symbols should fail")
	}
}

func TestClusterHandlesEmptySequences(t *testing.T) {
	db := testDB(t, 60, 2, 0, 43)
	db.Add(&seq.Sequence{ID: "empty"})
	res, err := Cluster(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The empty sequence can never reach any threshold; it must be
	// reported unclustered.
	emptyIdx := db.Len() - 1
	for _, c := range res.Clusters {
		for _, m := range c.Members {
			if m == emptyIdx {
				t.Fatal("empty sequence joined a cluster")
			}
		}
	}
}

func TestClusterSingleSequence(t *testing.T) {
	db := seq.NewDatabase(seq.MustAlphabet("ab"))
	if err := db.AddString("only", "x", "abababab"); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.MinDistinct = 1
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() > 1 {
		t.Fatalf("one sequence made %d clusters", res.NumClusters())
	}
}

func TestClusterTraceConsistency(t *testing.T) {
	db := testDB(t, 120, 3, 0.05, 47)
	res, err := Cluster(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Iterations {
		t.Fatalf("trace has %d entries for %d iterations", len(res.Trace), res.Iterations)
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Clusters != res.NumClusters() {
		t.Fatalf("final trace says %d clusters, result has %d", last.Clusters, res.NumClusters())
	}
	if last.Unclustered != len(res.Unclustered) {
		t.Fatalf("final trace says %d unclustered, result has %d", last.Unclustered, len(res.Unclustered))
	}
	if math.Abs(last.Threshold-res.FinalThreshold) > 1e-12 {
		t.Fatalf("final trace threshold %v != result %v", last.Threshold, res.FinalThreshold)
	}
}

func TestClusterOverlappingMembershipAllowed(t *testing.T) {
	// Two planted clusters plus sequences explicitly drawn half from each
	// source: the model must allow a sequence to sit in both clusters.
	db := testDB(t, 160, 2, 0, 53)
	src0 := datagen.NewClusterSource(0, 53, 12, 3)
	src1 := datagen.NewClusterSource(1, 53, 12, 3)
	// Hybrids: first half from src0, second from src1.
	rng := newTestRand(99)
	for i := 0; i < 10; i++ {
		a := src0.Generate(60, rng)
		b := src1.Generate(60, rng)
		db.Add(&seq.Sequence{ID: "hyb" + string(rune('0'+i)), Symbols: append(a, b...)})
	}
	res, err := Cluster(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Clustering().Validate(); err != nil {
		t.Fatal(err)
	}
	// At least verify the run completes and hybrids join something: each
	// hybrid half matches one source strongly.
	joined := 0
	inCluster := map[int]int{}
	for _, c := range res.Clusters {
		for _, m := range c.Members {
			inCluster[m]++
		}
	}
	for i := db.Len() - 10; i < db.Len(); i++ {
		if inCluster[i] > 0 {
			joined++
		}
	}
	if joined < 5 {
		t.Fatalf("only %d/10 hybrid sequences joined any cluster", joined)
	}
}
