package core

import (
	"reflect"
	"testing"

	"cluseq/internal/datagen"
	"cluseq/internal/seq"
)

// The two-phase reclustering design promises bit-identical results at
// any worker count: the parallel scoring phase is read-only over the
// cluster trees and writes disjoint cache slots, and the serial apply
// phase examines sequences in the exact §6.3 order, re-scoring any pair
// whose tree changed mid-pass. These tests pin that promise (and the
// similarity cache's exactness) on the synthetic generator's datasets;
// CI runs them under -race, where the scoring phase's read-only
// contract is also checked mechanically.

func determinismDB(t *testing.T, seed uint64) *seq.Database {
	t.Helper()
	db, err := datagen.SyntheticDB(datagen.SyntheticConfig{
		NumSequences: 150, AvgLength: 80, AlphabetSize: 15,
		NumClusters: 4, OutlierFrac: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// determinismConfigs returns configurations covering the engine's main
// code paths: the plain run, and one exercising refinement passes,
// merge consolidation, and random examination order on top.
func determinismConfigs() map[string]Config {
	base := Config{
		InitialClusters: 4, Significance: 15, MinDistinct: 3,
		SimilarityThreshold: 1.03, MaxDepth: 4, MaxIterations: 20,
		Seed: 7, FixedSignificance: true,
	}
	extended := base
	extended.RefinePasses = 2
	extended.MergeConsolidation = true
	extended.Order = OrderRandom
	return map[string]Config{"base": base, "refine+merge+random": extended}
}

func TestClusterWorkersDeterminism(t *testing.T) {
	db := determinismDB(t, 11)
	for name, cfg := range determinismConfigs() {
		t.Run(name, func(t *testing.T) {
			serial := cfg
			serial.Workers = 1
			parallel := cfg
			parallel.Workers = 8

			a, err := Cluster(db, serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Cluster(db, parallel)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Clusters) == 0 {
				t.Fatal("no clusters found; the determinism check would be vacuous")
			}
			// Full structural equality: memberships, primary assignment,
			// thresholds, and the complete iteration trace — including
			// the cache hit/miss counters, which are themselves
			// deterministic (hits depend only on tree versions, never on
			// worker scheduling).
			if !reflect.DeepEqual(a, b) {
				t.Errorf("Workers=1 and Workers=8 disagree:\nserial:   %+v\nparallel: %+v", summary(a), summary(b))
			}
		})
	}
}

func TestClusterCacheCorrectness(t *testing.T) {
	for _, dbSeed := range []uint64{11, 29} {
		db := determinismDB(t, dbSeed)
		for name, cfg := range determinismConfigs() {
			t.Run(name, func(t *testing.T) {
				cached := cfg
				off := cfg
				off.CacheOff = true

				a, err := Cluster(db, cached)
				if err != nil {
					t.Fatal(err)
				}
				b, err := Cluster(db, off)
				if err != nil {
					t.Fatal(err)
				}
				hits, offHits := 0, 0
				for i := range a.Trace {
					hits += a.Trace[i].CacheHits
					offHits += b.Trace[i].CacheHits
				}
				if a.Iterations > 2 && hits == 0 {
					t.Error("multi-iteration cached run recorded no cache hits")
				}
				if offHits != 0 {
					t.Errorf("CacheOff run recorded %d cache hits, want 0", offHits)
				}
				// The cache may only change how similarities are obtained,
				// never their values: everything but the hit/miss counters
				// must match.
				stripCacheCounters(a)
				stripCacheCounters(b)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("cache on and CacheOff disagree:\ncached: %+v\noff:    %+v", summary(a), summary(b))
				}
			})
		}
	}
}

// TestClusterSnapshotCorrectness pins the pst.Snapshot contract at the
// engine level: scoring through compiled snapshots must yield results
// structurally identical to scoring through the live trees — across
// serial and parallel runs, since snapshot compilation changes where
// the scoring work happens (flat arrays vs pointer walks) but never its
// values.
func TestClusterSnapshotCorrectness(t *testing.T) {
	db := determinismDB(t, 11)
	for name, cfg := range determinismConfigs() {
		t.Run(name, func(t *testing.T) {
			var results []*Result
			for _, workers := range []int{1, 8} {
				for _, snapshotOff := range []bool{false, true} {
					c := cfg
					c.Workers = workers
					c.SnapshotOff = snapshotOff
					r, err := Cluster(db, c)
					if err != nil {
						t.Fatal(err)
					}
					results = append(results, r)
				}
			}
			if len(results[0].Clusters) == 0 {
				t.Fatal("no clusters found; the snapshot check would be vacuous")
			}
			// SnapshotCompiles records how scoring was executed (zero when
			// snapshots are off), not what it computed; exclude it like the
			// cache counters in the cache test.
			for _, r := range results {
				stripSnapshotCounters(r)
			}
			for i, r := range results[1:] {
				if !reflect.DeepEqual(results[0], r) {
					t.Errorf("snapshot/worker variant %d disagrees with baseline:\nbase:    %+v\nvariant: %+v",
						i+1, summary(results[0]), summary(r))
				}
			}
		})
	}
}

func stripCacheCounters(r *Result) {
	for i := range r.Trace {
		r.Trace[i].CacheHits = 0
		r.Trace[i].CacheMisses = 0
	}
}

func stripSnapshotCounters(r *Result) {
	for i := range r.Trace {
		r.Trace[i].SnapshotCompiles = 0
	}
}

// summary renders the discriminating parts of a result compactly, so a
// determinism failure prints something a human can diff.
func summary(r *Result) map[string]any {
	members := make([][]int, len(r.Clusters))
	for i, c := range r.Clusters {
		members[i] = c.Members
	}
	return map[string]any{
		"iterations": r.Iterations,
		"threshold":  r.FinalThreshold,
		"members":    members,
		"primary":    r.Primary,
		"trace":      r.Trace,
	}
}
