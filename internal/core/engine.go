package core

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"cluseq/internal/obs"
	"cluseq/internal/pool"
	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// cluster is one live cluster during the run.
type cluster struct {
	id      int
	seedIdx int
	tree    *pst.Tree
	// members is the set of database indices currently in the cluster,
	// rebuilt by every reclustering pass.
	members map[int]bool
	// cache holds, per database index, the last similarity computed
	// against this cluster's tree, stamped with the tree version it was
	// computed at (see simCacheEntry). Allocated on first scoring.
	cache []simCacheEntry
	// snap is the compiled scoring snapshot of tree (see pst.Snapshot),
	// refreshed by ensureSnapshot whenever the tree version moves. It is
	// compiled serially before each parallel fan-out and read-only
	// inside, so workers scan flat arrays with no locks. Nil when
	// Config.SnapshotOff.
	snap *pst.Snapshot
	// obsPruned/obsPruneEvents are the portions of the tree's cumulative
	// prune counters already folded into the run metrics (see
	// engine.harvestTree). Reset when the tree is rebuilt.
	obsPruned      int64
	obsPruneEvents int64
}

// simCacheEntry is one slot of a cluster's similarity cache. The entry
// is valid exactly while version equals the cluster tree's current
// pst.Tree.Version: tree versions start at 1 and strictly increase on
// every mutation, so the zero-valued entry never matches and any insert
// or prune invalidates the whole cluster's column implicitly, with no
// eviction bookkeeping.
type simCacheEntry struct {
	version uint64
	sim     pst.Similarity
}

// engine carries the mutable state of one clustering run.
type engine struct {
	db         *seq.Database
	cfg        Config
	rng        *rand.Rand
	background []float64

	clusters []*cluster
	// thr holds the §4.6 threshold state (see ThresholdAdjuster); the
	// batch engine runs it Sticky so a converged threshold stays put.
	thr    ThresholdAdjuster
	tMoved bool // t changed during the current iteration

	// pool serves every parallel phase of the run; nil when Workers=1.
	pool *pool.Pool
	// cacheHits counts (sequence, cluster) pairs whose similarity was
	// still valid from an earlier pass; cacheMisses counts actual
	// similarity evaluations. Reset per reclustering pass, atomic
	// because the scoring phase updates them from pool workers.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// growth-factor bookkeeping (§4.1).
	prevNew        int
	prevEliminated int

	nextID int

	// met holds the run's metric handles (zero value = all no-ops); iter
	// is the current outer-loop iteration for span attribution;
	// iterCompiles counts snapshot compilations within the current
	// iteration for IterationTrace and the log line.
	met          engineMetrics
	iter         int
	iterCompiles int
}

func (e *engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

func (e *engine) newTree() *pst.Tree {
	return pst.MustNew(pst.Config{
		AlphabetSize:         e.db.Alphabet.Size(),
		MaxDepth:             e.cfg.MaxDepth,
		Significance:         e.cfg.Significance,
		MaxBytes:             e.cfg.MaxPSTBytes,
		Prune:                e.cfg.Prune,
		PMin:                 e.cfg.PMin,
		Shrinkage:            e.cfg.Shrinkage,
		AdaptiveSignificance: e.cfg.Shrinkage <= 0 && !e.cfg.FixedSignificance,
	})
}

// membershipOf returns, per sequence, the sorted IDs of clusters holding
// it; used to detect convergence.
//
//cluseq:deterministic
func (e *engine) membershipOf() [][]int {
	out := make([][]int, e.db.Len())
	for _, c := range e.clusters {
		for i := range c.members {
			out[i] = append(out[i], c.id)
		}
	}
	for i := range out {
		sort.Ints(out[i])
	}
	return out
}

func sameMembership(a, b [][]int) bool {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

//cluseq:deterministic
func (e *engine) unclusteredIndices() []int {
	covered := make([]bool, e.db.Len())
	for _, c := range e.clusters {
		for i := range c.members {
			covered[i] = true
		}
	}
	var out []int
	for i, cov := range covered {
		if !cov {
			out = append(out, i)
		}
	}
	return out
}

// run executes the outer loop of Figure 2.
func (e *engine) run() (*Result, error) {
	e.met = newEngineMetrics(e.cfg.Obs, e.cfg.Prune)
	if w := e.workers(); w > 1 {
		e.pool = pool.New(w - 1)
		e.pool.Instrument(e.cfg.Obs, "cluseq_pool")
	}
	res := &Result{n: e.db.Len()}
	prevMembership := e.membershipOf()
	for iter := 0; iter < e.cfg.MaxIterations; iter++ {
		e.iter = iter
		e.iterCompiles = 0
		trace := IterationTrace{}

		// 1. New cluster generation (§4.1).
		start := time.Now()
		sp := e.cfg.Tracer.Span("generate", obs.Int("iter", iter+1))
		kn := e.newClusterBudget(iter)
		created := e.generateClusters(kn)
		sp.End(obs.Int("budget", kn), obs.Int("created", created))
		e.met.observePhase(e.met.phaseGenerate, start)
		trace.NewClusters = created
		e.prevNew = created

		// 2. Sequence reclustering (§4.2-4.4), collecting every
		// sequence-cluster log-similarity for the §4.6 histogram.
		// recluster emits its own score/apply spans.
		logSims := e.recluster()
		trace.CacheHits = int(e.cacheHits.Load())
		trace.CacheMisses = int(e.cacheMisses.Load())

		// 3. Cluster consolidation (§4.5).
		start = time.Now()
		sp = e.cfg.Tracer.Span("consolidate", obs.Int("iter", iter+1))
		eliminated := e.consolidate()
		sp.End(obs.Int("eliminated", eliminated))
		e.met.observePhase(e.met.phaseConsolidate, start)
		trace.Consolidated = eliminated
		e.prevEliminated = eliminated

		membership := e.membershipOf()
		moves := 0
		for i := range membership {
			if len(membership[i]) != len(prevMembership[i]) {
				moves++
				continue
			}
			for j := range membership[i] {
				if membership[i][j] != prevMembership[i][j] {
					moves++
					break
				}
			}
		}
		trace.MembershipMoves = moves

		// 4. Optional adjustment of t (§4.6). The adjuster sees whether
		// the iteration was starved (no moves, much unclustered) so the
		// auto valley estimator can unstick a threshold that settled
		// above the reach of fresh seed clusters.
		e.tMoved = false
		if !e.cfg.FixedThreshold {
			start = time.Now()
			sp = e.cfg.Tracer.Span("threshold", obs.Int("iter", iter+1))
			unclustered := len(e.unclusteredIndices())
			starved := moves == 0 && unclustered > e.db.Len()/3
			trace.ValleyEstimate = e.adjustThreshold(logSims, starved)
			sp.End(obs.Float("t", e.thr.Threshold()), obs.Bool("moved", e.tMoved))
			e.met.observePhase(e.met.phaseThreshold, start)
		}
		trace.Clusters = len(e.clusters)
		trace.Threshold = e.thr.Threshold()
		trace.Unclustered = len(e.unclusteredIndices())
		trace.SnapshotCompiles = e.iterCompiles
		e.observeIteration(&trace)
		res.Trace = append(res.Trace, trace)
		res.Iterations = iter + 1
		hitRate := 0.0
		if tot := trace.CacheHits + trace.CacheMisses; tot > 0 {
			hitRate = 100 * float64(trace.CacheHits) / float64(tot)
		}
		e.logf("iter %d: +%d new, -%d consolidated, %d clusters, %d moves, t=%.4g, %d unclustered, cache %.1f%% hit, %d snapshot compiles",
			iter+1, trace.NewClusters, trace.Consolidated, trace.Clusters,
			moves, trace.Threshold, trace.Unclustered, hitRate, trace.SnapshotCompiles)

		// Termination (§4): same number of clusters, no membership change,
		// and the similarity threshold has settled (a still-descending t
		// can otherwise strand the run before any cluster can form).
		if moves == 0 && created == eliminated && !e.tMoved && iter > 0 {
			break
		}
		prevMembership = membership
	}

	if e.cfg.RefinePasses > 0 {
		start := time.Now()
		sp := e.cfg.Tracer.Span("refine", obs.Int("passes", e.cfg.RefinePasses))
		e.refine()
		sp.End(obs.Int("clusters", len(e.clusters)))
		e.met.observePhase(e.met.phaseRefine, start)
		for _, c := range e.clusters {
			e.harvestTree(c)
		}
	}

	res.FinalThreshold = e.thr.Threshold()
	res.Unclustered = e.unclusteredIndices()
	// Stable output order: by cluster size descending, then ID.
	sort.Slice(e.clusters, func(i, j int) bool {
		if len(e.clusters[i].members) != len(e.clusters[j].members) {
			return len(e.clusters[i].members) > len(e.clusters[j].members)
		}
		return e.clusters[i].id < e.clusters[j].id
	})
	for _, c := range e.clusters {
		info := &ClusterInfo{
			ID:        c.id,
			SeedIndex: c.seedIdx,
			TreeStats: c.tree.Stats(),
		}
		if e.cfg.KeepTrees {
			info.Tree = c.tree
		}
		for i := range c.members {
			info.Members = append(info.Members, i)
		}
		sort.Ints(info.Members)
		res.Clusters = append(res.Clusters, info)
	}
	res.Primary = e.primaryAssignment()
	return res, nil
}

// refine runs the post-convergence batch refinement passes (see
// Config.RefinePasses): rebuild every tree from its current members' full
// sequences, recompute membership at the settled threshold, consolidate.
//
//cluseq:deterministic
func (e *engine) refine() {
	for pass := 0; pass < e.cfg.RefinePasses; pass++ {
		for _, c := range e.clusters {
			tree := e.newTree()
			// Re-insert each member's best-scoring segment under the old
			// tree (not the whole sequence: the §4.4 segment updates are
			// what keep cluster trees focused on the shared signal rather
			// than the background).
			members := make([]int, 0, len(c.members))
			for m := range c.members {
				members = append(members, m)
			}
			sort.Ints(members)
			segs := make([][2]int, len(members))
			e.ensureSnapshot(c)
			e.forEachWorker(len(members), func(i int) {
				s := e.db.Sequences[members[i]]
				sim := e.clusterSim(c, s.Symbols)
				segs[i] = [2]int{sim.Start, sim.End}
			})
			for i, m := range members {
				tree.Insert(e.db.Sequences[m].Symbols[segs[i][0]:segs[i][1]])
			}
			// The rebuilt tree's prune counters restart from zero: bank
			// the old tree's tallies, then reset the harvest watermarks.
			e.harvestTree(c)
			c.obsPruned, c.obsPruneEvents = 0, 0
			c.tree = tree
			// Version stamps identify states of one tree only; swapping
			// in a rebuilt tree (whose counter restarts) could collide
			// with stale stamps, so the cache — and the old tree's
			// snapshot — must go with the old tree.
			c.cache = nil
			c.snap = nil
		}
		// Pure reassignment: no incremental insertion, so membership
		// reflects exactly the rebuilt statistics. The rebuilt trees
		// carry fresh versions, so the scoring phase recomputes every
		// pair; membership application never mutates a tree, so the
		// cached entries stay valid throughout the serial loop.
		e.scoreClusters()
		for si, s := range e.db.Sequences {
			if len(s.Symbols) == 0 {
				continue
			}
			for _, c := range e.clusters {
				sim := e.cachedSim(c, si, s.Symbols, false)
				if e.normalizedLogSim(sim, len(s.Symbols)) >= e.thr.LogT {
					c.members[si] = true
				} else {
					delete(c.members, si)
				}
			}
		}
		e.consolidate()
	}
}

// primaryAssignment scores every sequence against the clusters it belongs
// to and returns the index of its best cluster (−1 when unclustered).
//
//cluseq:deterministic
func (e *engine) primaryAssignment() []int {
	out := make([]int, e.db.Len())
	for i := range out {
		out[i] = -1
	}
	memberOf := make([][]int, e.db.Len())
	for ci, c := range e.clusters {
		for m := range c.members {
			memberOf[m] = append(memberOf[m], ci)
		}
	}
	e.ensureSnapshots()
	e.forEachWorker(e.db.Len(), func(si int) {
		clusters := memberOf[si]
		if len(clusters) == 0 {
			return
		}
		if len(clusters) == 1 {
			out[si] = clusters[0]
			return
		}
		s := e.db.Sequences[si]
		best, bestSim := clusters[0], math.Inf(-1)
		for _, ci := range clusters {
			sim := e.normalizedLogSim(e.clusterSim(e.clusters[ci], s.Symbols), len(s.Symbols))
			if sim > bestSim {
				bestSim = sim
				best = ci
			}
		}
		out[si] = best
	})
	return out
}

// newClusterBudget computes k_n per §4.1: the initial k on the first
// iteration, then k'·f with growth factor f = max(k'_n − k'_c, 0)/k'_n.
//
// The paper prints f = max{k'_n − k'_c, 0}/k'_c, but also states
// 0 ≤ f ≤ 1 and that f ≈ 1 when consolidation eliminates little — both of
// which hold only with k'_n as the denominator (the surviving fraction of
// the previous iteration's new clusters); we read the printed k'_c as a
// typo.
//
//cluseq:deterministic
func (e *engine) newClusterBudget(iter int) int {
	if iter == 0 {
		return e.cfg.InitialClusters
	}
	if e.prevNew <= 0 {
		// Nothing was generated last iteration (no unclustered seeds were
		// available, or the pace had dropped to zero). The paper's formula
		// is silent here; keep minimal seeding pressure so sequences that
		// later fall out of clusters (e.g. after t rises) can still found
		// new ones. A one-cluster probe that gets consolidated away does
		// not block termination, since created == eliminated.
		return 1
	}
	f := float64(max(e.prevNew-e.prevEliminated, 0)) / float64(e.prevNew)
	budget := int(float64(len(e.clusters))*f + 0.5)
	if budget == 0 {
		budget = 1
	}
	return budget
}

// generateClusters seeds up to kn new clusters from the unclustered
// sequences (§4.1): sample m = SampleFactor·kn candidates, build one PST
// per candidate, then greedily pick the candidate with the least maximal
// similarity to every existing cluster and already-picked seed.
//
//cluseq:deterministic
func (e *engine) generateClusters(kn int) int {
	if kn <= 0 {
		return 0
	}
	unclustered := e.unclusteredIndices()
	if len(unclustered) == 0 {
		return 0
	}
	if kn > len(unclustered) {
		kn = len(unclustered)
	}
	m := e.cfg.SampleFactor * kn
	if m > len(unclustered) {
		m = len(unclustered)
	}
	// Draw the sample.
	perm := e.rng.Perm(len(unclustered))
	sample := make([]int, m)
	for i := 0; i < m; i++ {
		sample[i] = unclustered[perm[i]]
	}

	// Highest similarity of each candidate to any cluster in T (existing
	// clusters now, updated incrementally as seeds are added).
	maxSim := make([]float64, m)
	for i := range maxSim {
		maxSim[i] = math.Inf(-1)
	}
	e.ensureSnapshots()
	e.forEachWorker(m, func(i int) {
		syms := e.db.Sequences[sample[i]].Symbols
		for _, c := range e.clusters {
			s := e.normalizedLogSim(e.clusterSim(c, syms), len(syms))
			if s > maxSim[i] {
				maxSim[i] = s
			}
		}
	})

	picked := make([]bool, m)
	created := 0
	for step := 0; step < kn; step++ {
		best, bestSim := -1, math.Inf(1)
		for i := 0; i < m; i++ {
			if !picked[i] && maxSim[i] < bestSim {
				bestSim = maxSim[i]
				best = i
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		idx := sample[best]
		c := &cluster{
			id:      e.nextID,
			seedIdx: idx,
			tree:    e.newTree(),
			members: map[int]bool{idx: true},
		}
		e.nextID++
		c.tree.Insert(e.db.Sequences[idx].Symbols)
		e.clusters = append(e.clusters, c)
		created++
		// Update remaining candidates against the new seed cluster. The
		// fresh seed tree is scored against every remaining candidate, so
		// it is worth compiling too.
		e.ensureSnapshot(c)
		for i := 0; i < m; i++ {
			if picked[i] {
				continue
			}
			syms := e.db.Sequences[sample[i]].Symbols
			s := e.normalizedLogSim(e.clusterSim(c, syms), len(syms))
			if s > maxSim[i] {
				maxSim[i] = s
			}
		}
	}
	return created
}

// ensureSnapshot (re)compiles c's scoring snapshot when the tree has
// moved past the one it holds. Must be called from the serial sections
// only — compilation mutates c.snap, and concurrent Similarity calls
// against a half-built snapshot would race.
//
//cluseq:deterministic
func (e *engine) ensureSnapshot(c *cluster) {
	if e.cfg.SnapshotOff {
		c.snap = nil
		return
	}
	if !c.snap.Valid(c.tree) {
		start := time.Now() //cluseq:allow determinism: timestamp feeds the compile-seconds histogram only, never the clustering state
		c.snap = c.tree.CompileSnapshot(e.background)
		e.iterCompiles++
		e.met.snapCompiles.Inc()
		e.met.snapCompileSeconds.ObserveSince(start)
	}
}

// ensureSnapshots refreshes every live cluster's snapshot; call before
// any parallel scoring fan-out.
//
//cluseq:deterministic
func (e *engine) ensureSnapshots() {
	for _, c := range e.clusters {
		e.ensureSnapshot(c)
	}
}

// clusterSim scores syms against cluster c: through the compiled
// snapshot when it is current, else through the tree's own scan (the
// mid-apply path, where a join just bumped the version — recompiling
// per mutation would cost more than the pointer walk it saves). Both
// produce bit-identical results by the snapshot contract.
//
//cluseq:deterministic
func (e *engine) clusterSim(c *cluster, syms []seq.Symbol) pst.Similarity {
	if c.snap.Valid(c.tree) {
		return c.snap.Similarity(syms)
	}
	return c.tree.SimilarityFast(syms, e.background)
}

// normalizedLogSim converts a similarity to the per-symbol log scale the
// thresholds live on (see Config.SimilarityThreshold).
//
//cluseq:deterministic
func (e *engine) normalizedLogSim(sim pst.Similarity, seqLen int) float64 {
	if e.cfg.RawSimilarity || seqLen == 0 {
		return sim.LogSim
	}
	return sim.LogSim / float64(seqLen)
}

// scoreClusters is the parallel scoring phase: it fans sequences out
// across the worker pool (sequence-major — each worker owns a sequence
// and walks every cluster, amortizing the fork/join over the whole
// database instead of paying it per sequence) and ensures every live
// cluster's similarity cache holds an entry stamped with the cluster
// tree's current version. Trees are strictly read-only here (see the
// pst.Tree concurrency contract) and each worker writes only its own
// sequence's cache slots, so the phase is race-free and its results are
// independent of worker count and scheduling.
//
// Pairs whose cluster tree is unchanged since an earlier pass keep
// their cached value untouched — the cross-iteration cache hit that
// makes late, nearly-converged iterations almost free. CacheOff
// forfeits that by clearing every cache up front.
//
//cluseq:deterministic
func (e *engine) scoreClusters() {
	if len(e.clusters) == 0 {
		return
	}
	for _, c := range e.clusters {
		if c.cache == nil || e.cfg.CacheOff {
			c.cache = make([]simCacheEntry, e.db.Len())
		}
	}
	e.ensureSnapshots()
	e.forEachWorker(e.db.Len(), func(si int) {
		s := e.db.Sequences[si]
		if len(s.Symbols) == 0 {
			return
		}
		for _, c := range e.clusters {
			e.cachedSim(c, si, s.Symbols, true)
		}
	})
}

// cachedSim returns the similarity of sequence si to cluster c, reusing
// the cache entry when it matches the tree's current version and
// re-scoring (and restamping) it otherwise. countHit attributes a valid
// entry to the hit counter — set by the scoring phase, where a hit means
// a pair carried over from a previous iteration; the serial apply phase
// passes false, since there a valid entry is normally just the scoring
// phase's own work being read back.
//
//cluseq:deterministic
func (e *engine) cachedSim(c *cluster, si int, syms []seq.Symbol, countHit bool) pst.Similarity {
	ent := &c.cache[si]
	if v := c.tree.Version(); ent.version != v {
		ent.sim = e.clusterSim(c, syms)
		ent.version = v
		e.cacheMisses.Add(1)
	} else if countHit {
		e.cacheHits.Add(1)
	}
	return ent.sim
}

// recluster runs one §4.2 pass in two phases: the parallel scoring
// phase above, then a serial apply phase that examines sequences in the
// exact §6.3 order, joining clusters and inserting best segments. A
// join mutates the cluster's tree and bumps its version, so the apply
// phase's cachedSim transparently re-scores later sequences against
// that cluster — the results are bit-identical to a fully serial pass
// at any worker count. Returns all (normalized) log-similarities for
// the threshold histogram.
//
//cluseq:deterministic
func (e *engine) recluster() []float64 {
	e.cacheHits.Store(0)
	e.cacheMisses.Store(0)
	start := time.Now() //cluseq:allow determinism: timestamp feeds the score-phase span and histogram only, never the clustering state
	sp := e.cfg.Tracer.Span("score", obs.Int("iter", e.iter+1), obs.Int("clusters", len(e.clusters)))
	e.scoreClusters()
	sp.End(obs.Int64("cache_hits", e.cacheHits.Load()), obs.Int64("cache_misses", e.cacheMisses.Load()))
	e.met.observePhase(e.met.phaseScore, start)

	start = time.Now() //cluseq:allow determinism: timestamp feeds the apply-phase span and histogram only, never the clustering state
	sp = e.cfg.Tracer.Span("apply", obs.Int("iter", e.iter+1))
	order := e.sequenceOrder()
	logSims := make([]float64, 0, len(order)*max(len(e.clusters), 1))
	for _, si := range order {
		s := e.db.Sequences[si]
		if len(s.Symbols) == 0 {
			continue
		}
		for _, c := range e.clusters {
			sim := e.cachedSim(c, si, s.Symbols, false)
			norm := e.normalizedLogSim(sim, len(s.Symbols))
			// The seed's similarity to its own tree is a memorization
			// artifact (the whole sequence was inserted), far above any
			// genuine member's score; keep it out of the threshold
			// histogram.
			if !math.IsInf(norm, -1) && si != c.seedIdx {
				logSims = append(logSims, norm)
			}
			if norm >= e.thr.LogT {
				// §4.2/§4.4: when a sequence joins a cluster, the segment
				// producing the maximum similarity updates the tree — on
				// the join transition only; re-inserting a continuing
				// member every iteration would let the tree memorize its
				// members, inflate their similarities without bound, and
				// drag the §4.6 threshold up until it locks everyone
				// else out.
				if !c.members[si] {
					c.members[si] = true
					if e.cfg.InsertWhole {
						c.tree.Insert(s.Symbols)
					} else {
						c.tree.Insert(s.Symbols[sim.Start:sim.End])
					}
				}
			} else {
				delete(c.members, si)
			}
		}
	}
	sp.End(obs.Int("similarities", len(logSims)))
	e.met.observePhase(e.met.phaseApply, start)
	return logSims
}

// sequenceOrder yields the §6.3 examination order.
//
//cluseq:deterministic
func (e *engine) sequenceOrder() []int {
	n := e.db.Len()
	switch e.cfg.Order {
	case OrderRandom:
		return e.rng.Perm(n)
	case OrderClusterBased:
		out := make([]int, 0, n)
		seen := make([]bool, n)
		for _, c := range e.clusters {
			var members []int
			for i := range c.members {
				if !seen[i] {
					members = append(members, i)
					seen[i] = true
				}
			}
			sort.Ints(members)
			out = append(out, members...)
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				out = append(out, i)
			}
		}
		return out
	default: // OrderFixed
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
}

// consolidate dismisses clusters covered by larger ones (§4.5): scanning
// in ascending size order, a cluster is dropped when fewer than
// MinDistinct of its members are outside every other surviving cluster of
// larger (or equal, later-scanned) size.
//
//cluseq:deterministic
func (e *engine) consolidate() int {
	if len(e.clusters) < 2 {
		return 0
	}
	idx := make([]int, len(e.clusters))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := e.clusters[idx[a]], e.clusters[idx[b]]
		if len(ca.members) != len(cb.members) {
			return len(ca.members) < len(cb.members)
		}
		return ca.id > cb.id // among equals, newer clusters go first
	})
	dismissed := make([]bool, len(e.clusters))
	eliminated := 0
	for pos, ci := range idx {
		c := e.clusters[ci]
		distinct := 0
		for m := range c.members { //cluseq:allow determinism: pure counting with a threshold early-exit; the tally is independent of visit order
			coveredElsewhere := false
			// Only clusters later in the scan order (larger, or equal-size
			// older) count as cover, matching the paper's "other (larger)
			// clusters".
			for _, cj := range idx[pos+1:] {
				if !dismissed[cj] && e.clusters[cj].members[m] {
					coveredElsewhere = true
					break
				}
			}
			if !coveredElsewhere {
				distinct++
				if distinct >= e.cfg.MinDistinct {
					break
				}
			}
		}
		if distinct < e.cfg.MinDistinct {
			dismissed[ci] = true
			eliminated++
			if e.cfg.MergeConsolidation {
				e.mergeInto(c, idx[pos+1:], dismissed)
			}
		}
	}
	if eliminated == 0 {
		return 0
	}
	kept := e.clusters[:0]
	for i, c := range e.clusters {
		if !dismissed[i] {
			kept = append(kept, c)
		} else {
			// The tree is about to be dropped; bank its prune counters
			// before they become unreachable.
			e.harvestTree(c)
		}
	}
	e.clusters = kept
	return eliminated
}

// mergeInto absorbs the dismissed cluster c into the surviving later-scan
// cluster sharing the most members (tree statistics and membership both),
// implementing the merge-consolidation extension.
//
//cluseq:deterministic
func (e *engine) mergeInto(c *cluster, later []int, dismissed []bool) {
	var target *cluster
	bestOverlap := -1
	for _, cj := range later {
		if dismissed[cj] {
			continue
		}
		cand := e.clusters[cj]
		overlap := 0
		for m := range c.members {
			if cand.members[m] {
				overlap++
			}
		}
		if overlap > bestOverlap {
			bestOverlap = overlap
			target = cand
		}
	}
	if target == nil || bestOverlap == 0 {
		return // nothing meaningfully overlaps; plain dismissal
	}
	if err := target.tree.Merge(c.tree); err != nil {
		// Trees within one run always share configuration; a mismatch
		// would be a programming error worth surfacing loudly.
		panic(err)
	}
	for m := range c.members {
		target.members[m] = true
	}
}

// workers resolves the configured parallelism: Config.Workers, or
// GOMAXPROCS when it is zero.
func (e *engine) workers() int {
	if e.cfg.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.cfg.Workers
}

// forEachWorker runs fn(i) for i in [0, n), on the run's shared worker
// pool when one exists and n is large enough to pay for the dispatch,
// serially otherwise.
//
//cluseq:fanout
func (e *engine) forEachWorker(n int, fn func(i int)) {
	if e.pool == nil || n < 4 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	e.pool.Run(n, fn)
}
