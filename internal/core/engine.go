package core

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// cluster is one live cluster during the run.
type cluster struct {
	id      int
	seedIdx int
	tree    *pst.Tree
	// members is the set of database indices currently in the cluster,
	// rebuilt by every reclustering pass.
	members map[int]bool
}

// engine carries the mutable state of one clustering run.
type engine struct {
	db         *seq.Database
	cfg        Config
	rng        *rand.Rand
	background []float64

	clusters []*cluster
	logT     float64
	tStable  bool // §4.6: t and t̂ within 1%, stop adjusting
	tMoved   bool // t changed during the current iteration

	// growth-factor bookkeeping (§4.1).
	prevNew        int
	prevEliminated int

	nextID int
}

func (e *engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

func (e *engine) newTree() *pst.Tree {
	return pst.MustNew(pst.Config{
		AlphabetSize:         e.db.Alphabet.Size(),
		MaxDepth:             e.cfg.MaxDepth,
		Significance:         e.cfg.Significance,
		MaxBytes:             e.cfg.MaxPSTBytes,
		Prune:                e.cfg.Prune,
		PMin:                 e.cfg.PMin,
		Shrinkage:            e.cfg.Shrinkage,
		AdaptiveSignificance: e.cfg.Shrinkage <= 0 && !e.cfg.FixedSignificance,
	})
}

// membershipOf returns, per sequence, the sorted IDs of clusters holding
// it; used to detect convergence.
func (e *engine) membershipOf() [][]int {
	out := make([][]int, e.db.Len())
	for _, c := range e.clusters {
		for i := range c.members {
			out[i] = append(out[i], c.id)
		}
	}
	for i := range out {
		sort.Ints(out[i])
	}
	return out
}

func sameMembership(a, b [][]int) bool {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func (e *engine) unclusteredIndices() []int {
	covered := make([]bool, e.db.Len())
	for _, c := range e.clusters {
		for i := range c.members {
			covered[i] = true
		}
	}
	var out []int
	for i, cov := range covered {
		if !cov {
			out = append(out, i)
		}
	}
	return out
}

// run executes the outer loop of Figure 2.
func (e *engine) run() (*Result, error) {
	res := &Result{n: e.db.Len()}
	prevMembership := e.membershipOf()
	for iter := 0; iter < e.cfg.MaxIterations; iter++ {
		trace := IterationTrace{}

		// 1. New cluster generation (§4.1).
		kn := e.newClusterBudget(iter)
		created := e.generateClusters(kn)
		trace.NewClusters = created
		e.prevNew = created

		// 2. Sequence reclustering (§4.2-4.4), collecting every
		// sequence-cluster log-similarity for the §4.6 histogram.
		logSims := e.recluster()

		// 3. Cluster consolidation (§4.5).
		eliminated := e.consolidate()
		trace.Consolidated = eliminated
		e.prevEliminated = eliminated

		membership := e.membershipOf()
		moves := 0
		for i := range membership {
			if len(membership[i]) != len(prevMembership[i]) {
				moves++
				continue
			}
			for j := range membership[i] {
				if membership[i][j] != prevMembership[i][j] {
					moves++
					break
				}
			}
		}
		trace.MembershipMoves = moves

		// 4. Optional adjustment of t (§4.6). The adjuster sees whether
		// the iteration was starved (no moves, much unclustered) so the
		// auto valley estimator can unstick a threshold that settled
		// above the reach of fresh seed clusters.
		e.tMoved = false
		if !e.cfg.FixedThreshold {
			unclustered := len(e.unclusteredIndices())
			starved := moves == 0 && unclustered > e.db.Len()/3
			trace.ValleyEstimate = e.adjustThreshold(logSims, starved)
		}
		trace.Clusters = len(e.clusters)
		trace.Threshold = math.Exp(e.logT)
		trace.Unclustered = len(e.unclusteredIndices())
		res.Trace = append(res.Trace, trace)
		res.Iterations = iter + 1
		e.logf("iter %d: +%d new, -%d consolidated, %d clusters, %d moves, t=%.4g, %d unclustered",
			iter+1, trace.NewClusters, trace.Consolidated, trace.Clusters,
			moves, trace.Threshold, trace.Unclustered)

		// Termination (§4): same number of clusters, no membership change,
		// and the similarity threshold has settled (a still-descending t
		// can otherwise strand the run before any cluster can form).
		if moves == 0 && created == eliminated && !e.tMoved && iter > 0 {
			break
		}
		prevMembership = membership
	}

	e.refine()

	res.FinalThreshold = math.Exp(e.logT)
	res.Unclustered = e.unclusteredIndices()
	// Stable output order: by cluster size descending, then ID.
	sort.Slice(e.clusters, func(i, j int) bool {
		if len(e.clusters[i].members) != len(e.clusters[j].members) {
			return len(e.clusters[i].members) > len(e.clusters[j].members)
		}
		return e.clusters[i].id < e.clusters[j].id
	})
	for _, c := range e.clusters {
		info := &ClusterInfo{
			ID:        c.id,
			SeedIndex: c.seedIdx,
			TreeStats: c.tree.Stats(),
		}
		if e.cfg.KeepTrees {
			info.Tree = c.tree
		}
		for i := range c.members {
			info.Members = append(info.Members, i)
		}
		sort.Ints(info.Members)
		res.Clusters = append(res.Clusters, info)
	}
	res.Primary = e.primaryAssignment()
	return res, nil
}

// refine runs the post-convergence batch refinement passes (see
// Config.RefinePasses): rebuild every tree from its current members' full
// sequences, recompute membership at the settled threshold, consolidate.
func (e *engine) refine() {
	for pass := 0; pass < e.cfg.RefinePasses; pass++ {
		for _, c := range e.clusters {
			tree := e.newTree()
			// Re-insert each member's best-scoring segment under the old
			// tree (not the whole sequence: the §4.4 segment updates are
			// what keep cluster trees focused on the shared signal rather
			// than the background).
			members := make([]int, 0, len(c.members))
			for m := range c.members {
				members = append(members, m)
			}
			sort.Ints(members)
			segs := make([][2]int, len(members))
			e.forEachWorker(len(members), func(i int) {
				s := e.db.Sequences[members[i]]
				sim := c.tree.SimilarityFast(s.Symbols, e.background)
				segs[i] = [2]int{sim.Start, sim.End}
			})
			for i, m := range members {
				tree.Insert(e.db.Sequences[m].Symbols[segs[i][0]:segs[i][1]])
			}
			c.tree = tree
		}
		// Pure reassignment: no incremental insertion, so membership
		// reflects exactly the rebuilt statistics.
		sims := make([]pst.Similarity, len(e.clusters))
		for si, s := range e.db.Sequences {
			if len(s.Symbols) == 0 {
				continue
			}
			e.forEachWorker(len(e.clusters), func(ci int) {
				sims[ci] = e.clusters[ci].tree.SimilarityFast(s.Symbols, e.background)
			})
			for ci, c := range e.clusters {
				if e.normalizedLogSim(sims[ci], len(s.Symbols)) >= e.logT {
					c.members[si] = true
				} else {
					delete(c.members, si)
				}
			}
		}
		e.consolidate()
	}
}

// primaryAssignment scores every sequence against the clusters it belongs
// to and returns the index of its best cluster (−1 when unclustered).
func (e *engine) primaryAssignment() []int {
	out := make([]int, e.db.Len())
	for i := range out {
		out[i] = -1
	}
	memberOf := make([][]int, e.db.Len())
	for ci, c := range e.clusters {
		for m := range c.members {
			memberOf[m] = append(memberOf[m], ci)
		}
	}
	e.forEachWorker(e.db.Len(), func(si int) {
		clusters := memberOf[si]
		if len(clusters) == 0 {
			return
		}
		if len(clusters) == 1 {
			out[si] = clusters[0]
			return
		}
		s := e.db.Sequences[si]
		best, bestSim := clusters[0], math.Inf(-1)
		for _, ci := range clusters {
			sim := e.normalizedLogSim(e.clusters[ci].tree.SimilarityFast(s.Symbols, e.background), len(s.Symbols))
			if sim > bestSim {
				bestSim = sim
				best = ci
			}
		}
		out[si] = best
	})
	return out
}

// newClusterBudget computes k_n per §4.1: the initial k on the first
// iteration, then k'·f with growth factor f = max(k'_n − k'_c, 0)/k'_n.
//
// The paper prints f = max{k'_n − k'_c, 0}/k'_c, but also states
// 0 ≤ f ≤ 1 and that f ≈ 1 when consolidation eliminates little — both of
// which hold only with k'_n as the denominator (the surviving fraction of
// the previous iteration's new clusters); we read the printed k'_c as a
// typo.
func (e *engine) newClusterBudget(iter int) int {
	if iter == 0 {
		return e.cfg.InitialClusters
	}
	if e.prevNew <= 0 {
		// Nothing was generated last iteration (no unclustered seeds were
		// available, or the pace had dropped to zero). The paper's formula
		// is silent here; keep minimal seeding pressure so sequences that
		// later fall out of clusters (e.g. after t rises) can still found
		// new ones. A one-cluster probe that gets consolidated away does
		// not block termination, since created == eliminated.
		return 1
	}
	f := float64(maxInt(e.prevNew-e.prevEliminated, 0)) / float64(e.prevNew)
	budget := int(float64(len(e.clusters))*f + 0.5)
	if budget == 0 {
		budget = 1
	}
	return budget
}

// generateClusters seeds up to kn new clusters from the unclustered
// sequences (§4.1): sample m = SampleFactor·kn candidates, build one PST
// per candidate, then greedily pick the candidate with the least maximal
// similarity to every existing cluster and already-picked seed.
func (e *engine) generateClusters(kn int) int {
	if kn <= 0 {
		return 0
	}
	unclustered := e.unclusteredIndices()
	if len(unclustered) == 0 {
		return 0
	}
	if kn > len(unclustered) {
		kn = len(unclustered)
	}
	m := e.cfg.SampleFactor * kn
	if m > len(unclustered) {
		m = len(unclustered)
	}
	// Draw the sample.
	perm := e.rng.Perm(len(unclustered))
	sample := make([]int, m)
	for i := 0; i < m; i++ {
		sample[i] = unclustered[perm[i]]
	}

	// Highest similarity of each candidate to any cluster in T (existing
	// clusters now, updated incrementally as seeds are added).
	maxSim := make([]float64, m)
	for i := range maxSim {
		maxSim[i] = math.Inf(-1)
	}
	e.forEachWorker(m, func(i int) {
		syms := e.db.Sequences[sample[i]].Symbols
		for _, c := range e.clusters {
			s := e.normalizedLogSim(c.tree.SimilarityFast(syms, e.background), len(syms))
			if s > maxSim[i] {
				maxSim[i] = s
			}
		}
	})

	picked := make([]bool, m)
	created := 0
	for step := 0; step < kn; step++ {
		best, bestSim := -1, math.Inf(1)
		for i := 0; i < m; i++ {
			if !picked[i] && maxSim[i] < bestSim {
				bestSim = maxSim[i]
				best = i
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		idx := sample[best]
		c := &cluster{
			id:      e.nextID,
			seedIdx: idx,
			tree:    e.newTree(),
			members: map[int]bool{idx: true},
		}
		e.nextID++
		c.tree.Insert(e.db.Sequences[idx].Symbols)
		e.clusters = append(e.clusters, c)
		created++
		// Update remaining candidates against the new seed cluster.
		for i := 0; i < m; i++ {
			if picked[i] {
				continue
			}
			syms := e.db.Sequences[sample[i]].Symbols
			s := e.normalizedLogSim(c.tree.SimilarityFast(syms, e.background), len(syms))
			if s > maxSim[i] {
				maxSim[i] = s
			}
		}
	}
	return created
}

// normalizedLogSim converts a similarity to the per-symbol log scale the
// thresholds live on (see Config.SimilarityThreshold).
func (e *engine) normalizedLogSim(sim pst.Similarity, seqLen int) float64 {
	if e.cfg.RawSimilarity || seqLen == 0 {
		return sim.LogSim
	}
	return sim.LogSim / float64(seqLen)
}

// recluster runs one §4.2 pass: every sequence is scored against every
// cluster; it joins those with similarity ≥ t, and each joined cluster's
// tree absorbs the best-scoring segment. Returns all (normalized)
// log-similarities for the threshold histogram.
func (e *engine) recluster() []float64 {
	order := e.sequenceOrder()
	logSims := make([]float64, 0, len(order)*maxInt(len(e.clusters), 1))
	sims := make([]pst.Similarity, len(e.clusters))
	for _, si := range order {
		s := e.db.Sequences[si]
		if len(s.Symbols) == 0 {
			continue
		}
		e.forEachWorker(len(e.clusters), func(ci int) {
			sims[ci] = e.clusters[ci].tree.SimilarityFast(s.Symbols, e.background)
		})
		for ci, c := range e.clusters {
			sim := sims[ci]
			norm := e.normalizedLogSim(sim, len(s.Symbols))
			// The seed's similarity to its own tree is a memorization
			// artifact (the whole sequence was inserted), far above any
			// genuine member's score; keep it out of the threshold
			// histogram.
			if !math.IsInf(norm, -1) && si != c.seedIdx {
				logSims = append(logSims, norm)
			}
			if norm >= e.logT {
				// §4.2/§4.4: when a sequence joins a cluster, the segment
				// producing the maximum similarity updates the tree — on
				// the join transition only; re-inserting a continuing
				// member every iteration would let the tree memorize its
				// members, inflate their similarities without bound, and
				// drag the §4.6 threshold up until it locks everyone
				// else out.
				if !c.members[si] {
					c.members[si] = true
					if e.cfg.InsertWhole {
						c.tree.Insert(s.Symbols)
					} else {
						c.tree.Insert(s.Symbols[sim.Start:sim.End])
					}
				}
			} else {
				delete(c.members, si)
			}
		}
	}
	return logSims
}

// sequenceOrder yields the §6.3 examination order.
func (e *engine) sequenceOrder() []int {
	n := e.db.Len()
	switch e.cfg.Order {
	case OrderRandom:
		return e.rng.Perm(n)
	case OrderClusterBased:
		out := make([]int, 0, n)
		seen := make([]bool, n)
		for _, c := range e.clusters {
			var members []int
			for i := range c.members {
				if !seen[i] {
					members = append(members, i)
					seen[i] = true
				}
			}
			sort.Ints(members)
			out = append(out, members...)
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				out = append(out, i)
			}
		}
		return out
	default: // OrderFixed
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
}

// consolidate dismisses clusters covered by larger ones (§4.5): scanning
// in ascending size order, a cluster is dropped when fewer than
// MinDistinct of its members are outside every other surviving cluster of
// larger (or equal, later-scanned) size.
func (e *engine) consolidate() int {
	if len(e.clusters) < 2 {
		return 0
	}
	idx := make([]int, len(e.clusters))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := e.clusters[idx[a]], e.clusters[idx[b]]
		if len(ca.members) != len(cb.members) {
			return len(ca.members) < len(cb.members)
		}
		return ca.id > cb.id // among equals, newer clusters go first
	})
	dismissed := make([]bool, len(e.clusters))
	eliminated := 0
	for pos, ci := range idx {
		c := e.clusters[ci]
		distinct := 0
		for m := range c.members {
			coveredElsewhere := false
			// Only clusters later in the scan order (larger, or equal-size
			// older) count as cover, matching the paper's "other (larger)
			// clusters".
			for _, cj := range idx[pos+1:] {
				if !dismissed[cj] && e.clusters[cj].members[m] {
					coveredElsewhere = true
					break
				}
			}
			if !coveredElsewhere {
				distinct++
				if distinct >= e.cfg.MinDistinct {
					break
				}
			}
		}
		if distinct < e.cfg.MinDistinct {
			dismissed[ci] = true
			eliminated++
			if e.cfg.MergeConsolidation {
				e.mergeInto(c, idx[pos+1:], dismissed)
			}
		}
	}
	if eliminated == 0 {
		return 0
	}
	kept := e.clusters[:0]
	for i, c := range e.clusters {
		if !dismissed[i] {
			kept = append(kept, c)
		}
	}
	e.clusters = kept
	return eliminated
}

// mergeInto absorbs the dismissed cluster c into the surviving later-scan
// cluster sharing the most members (tree statistics and membership both),
// implementing the merge-consolidation extension.
func (e *engine) mergeInto(c *cluster, later []int, dismissed []bool) {
	var target *cluster
	bestOverlap := -1
	for _, cj := range later {
		if dismissed[cj] {
			continue
		}
		cand := e.clusters[cj]
		overlap := 0
		for m := range c.members {
			if cand.members[m] {
				overlap++
			}
		}
		if overlap > bestOverlap {
			bestOverlap = overlap
			target = cand
		}
	}
	if target == nil || bestOverlap == 0 {
		return // nothing meaningfully overlaps; plain dismissal
	}
	if err := target.tree.Merge(c.tree); err != nil {
		// Trees within one run always share configuration; a mismatch
		// would be a programming error worth surfacing loudly.
		panic(err)
	}
	for m := range c.members {
		target.members[m] = true
	}
}

// forEachWorker runs fn(i) for i in [0, n), in parallel when the
// configuration allows and n is large enough to pay for it.
func (e *engine) forEachWorker(n int, fn func(i int)) {
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
