package core

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func newTestRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xabcdef))
}

func TestNewClusterBudgetGrowth(t *testing.T) {
	e := &engine{cfg: Config{InitialClusters: 3}}
	if got := e.newClusterBudget(0); got != 3 {
		t.Fatalf("first iteration budget = %d, want k = 3", got)
	}
	// Previous iteration: 4 new, none eliminated → f = 1, budget = k'.
	e.prevNew, e.prevEliminated = 4, 0
	e.clusters = make([]*cluster, 6)
	if got := e.newClusterBudget(1); got != 6 {
		t.Fatalf("f=1 budget = %d, want 6 (exponential pace)", got)
	}
	// Half the new clusters eliminated → f = 0.5.
	e.prevNew, e.prevEliminated = 4, 2
	if got := e.newClusterBudget(2); got != 3 {
		t.Fatalf("f=0.5 budget = %d, want 3", got)
	}
	// All eliminated → f = 0: drop to the minimal probe of one.
	e.prevNew, e.prevEliminated = 4, 4
	if got := e.newClusterBudget(3); got != 1 {
		t.Fatalf("f=0 budget = %d, want 1 (probe)", got)
	}
	// More eliminated than generated still clamps f at 0.
	e.prevNew, e.prevEliminated = 2, 5
	if got := e.newClusterBudget(4); got != 1 {
		t.Fatalf("over-elimination budget = %d, want 1 (probe)", got)
	}
	// No clusters generated previously → probe again so sequences that
	// fall out of clusters can still seed new ones.
	e.prevNew = 0
	if got := e.newClusterBudget(5); got != 1 {
		t.Fatalf("prevNew=0 budget = %d, want 1 (probe)", got)
	}
}

func TestConsolidateDismissesCoveredCluster(t *testing.T) {
	mk := func(id int, members ...int) *cluster {
		c := &cluster{id: id, members: map[int]bool{}}
		for _, m := range members {
			c.members[m] = true
		}
		return c
	}
	e := &engine{cfg: Config{MinDistinct: 2}}
	big := mk(0, 1, 2, 3, 4, 5)
	covered := mk(1, 1, 2, 3) // fully inside big
	distinct := mk(2, 7, 8, 9)
	e.clusters = []*cluster{big, covered, distinct}
	eliminated := e.consolidate()
	if eliminated != 1 {
		t.Fatalf("eliminated = %d, want 1", eliminated)
	}
	ids := []int{}
	for _, c := range e.clusters {
		ids = append(ids, c.id)
	}
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("surviving clusters = %v, want [0 2]", ids)
	}
}

func TestConsolidateKeepsPartialOverlap(t *testing.T) {
	mk := func(id int, members ...int) *cluster {
		c := &cluster{id: id, members: map[int]bool{}}
		for _, m := range members {
			c.members[m] = true
		}
		return c
	}
	e := &engine{cfg: Config{MinDistinct: 2}}
	// The small cluster has 2 members of its own → survives.
	e.clusters = []*cluster{
		mk(0, 1, 2, 3, 4),
		mk(1, 1, 2, 10, 11),
	}
	if got := e.consolidate(); got != 0 {
		t.Fatalf("eliminated = %d, want 0", got)
	}
}

func TestConsolidateDuplicateClusters(t *testing.T) {
	mk := func(id int, members ...int) *cluster {
		c := &cluster{id: id, members: map[int]bool{}}
		for _, m := range members {
			c.members[m] = true
		}
		return c
	}
	// Two identical clusters: exactly one must survive.
	e := &engine{cfg: Config{MinDistinct: 1}}
	e.clusters = []*cluster{mk(0, 1, 2, 3), mk(1, 1, 2, 3)}
	if got := e.consolidate(); got != 1 {
		t.Fatalf("eliminated = %d, want 1", got)
	}
	if len(e.clusters) != 1 {
		t.Fatalf("%d clusters survive, want 1", len(e.clusters))
	}
}

func TestConsolidateSingleClusterNoOp(t *testing.T) {
	e := &engine{cfg: Config{MinDistinct: 100}}
	e.clusters = []*cluster{{id: 0, members: map[int]bool{1: true}}}
	if got := e.consolidate(); got != 0 {
		t.Fatalf("single cluster eliminated = %d, want 0", got)
	}
}

func TestAdjustThresholdMovesTowardValley(t *testing.T) {
	e := &engine{
		cfg: Config{HistogramBuckets: 20},
		thr: ThresholdAdjuster{LogT: math.Log(3.0), Buckets: 20, Sticky: true},
	}
	// Bimodal log-similarities: background mass near log-sim −2, member
	// mass near +6, valley between them.
	var sims []float64
	for i := 0; i < 500; i++ {
		sims = append(sims, -2+0.3*float64(i%7))
	}
	for i := 0; i < 200; i++ {
		sims = append(sims, 6+0.2*float64(i%5))
	}
	tBefore := e.thr.Threshold()
	tHat := e.adjustThreshold(sims, false)
	if tHat == 0 {
		t.Fatal("no valley found in clearly bimodal data")
	}
	tAfter := e.thr.Threshold()
	if math.Abs(tAfter-(tBefore+tHat)/2) > 1e-9 && !e.thr.stable {
		t.Fatalf("t moved to %v, want midpoint of %v and %v", tAfter, tBefore, tHat)
	}
}

func TestAdjustThresholdStabilizes(t *testing.T) {
	e := &engine{
		cfg: Config{HistogramBuckets: 10},
		thr: ThresholdAdjuster{Buckets: 10, Sticky: true},
	}
	// Valley will land somewhere; drive t there and verify the 1% rule
	// eventually freezes it.
	var sims []float64
	for i := 0; i < 300; i++ {
		sims = append(sims, -3+0.01*float64(i%10))
	}
	for i := 0; i < 300; i++ {
		sims = append(sims, 5+0.01*float64(i%10))
	}
	e.thr.LogT = 0
	for i := 0; i < 50 && !e.thr.stable; i++ {
		e.adjustThreshold(sims, false)
	}
	if !e.thr.stable {
		t.Fatalf("threshold never stabilized; t = %v", e.thr.Threshold())
	}
}

func TestAdjustThresholdTooFewSamples(t *testing.T) {
	e := &engine{
		cfg: Config{HistogramBuckets: 100},
		thr: ThresholdAdjuster{LogT: 1, Buckets: 100, Sticky: true},
	}
	if got := e.adjustThreshold([]float64{1, 2, 3}, false); got != 0 {
		t.Fatalf("valley from 3 samples = %v, want 0 (skip)", got)
	}
	if e.thr.LogT != 1 {
		t.Fatal("threshold must not move without a valley")
	}
}

func TestClampThreshold(t *testing.T) {
	if got := clampThreshold(0); got != minThreshold {
		t.Fatalf("clamp low = %v", got)
	}
	if got := clampThreshold(math.Inf(1)); got != maxThreshold {
		t.Fatalf("clamp high = %v", got)
	}
	if got := clampThreshold(2.5); got != 2.5 {
		t.Fatalf("clamp identity = %v", got)
	}
}

func TestForEachWorkerCoversAll(t *testing.T) {
	e := &engine{cfg: Config{Workers: 4}}
	n := 1000
	hits := make([]int32, n)
	e.forEachWorker(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// Serial path.
	e.cfg.Workers = 1
	e.forEachWorker(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 2 {
			t.Fatalf("serial: index %d visited %d times", i, h)
		}
	}
	// Zero-length never calls fn.
	e.forEachWorker(0, func(i int) { t.Fatal("called on empty range") })
}

func TestSequenceOrderStrategies(t *testing.T) {
	db := testDB(t, 30, 2, 0, 61)
	e := &engine{db: db, cfg: Config{Order: OrderFixed}, rng: newTestRand(1)}
	fixed := e.sequenceOrder()
	for i, v := range fixed {
		if v != i {
			t.Fatalf("fixed order not identity at %d: %d", i, v)
		}
	}
	e.cfg.Order = OrderRandom
	r1 := e.sequenceOrder()
	sorted := append([]int(nil), r1...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("random order is not a permutation: %v", r1)
		}
	}
	// Cluster-based order: members of cluster 0 first.
	e.cfg.Order = OrderClusterBased
	e.clusters = []*cluster{
		{id: 0, members: map[int]bool{5: true, 6: true}},
		{id: 1, members: map[int]bool{2: true}},
	}
	cb := e.sequenceOrder()
	if len(cb) != db.Len() {
		t.Fatalf("cluster-based order has %d entries, want %d", len(cb), db.Len())
	}
	if !((cb[0] == 5 && cb[1] == 6) || (cb[0] == 6 && cb[1] == 5)) || cb[2] != 2 {
		t.Fatalf("cluster-based order = %v, want cluster members first", cb[:4])
	}
	seen := map[int]bool{}
	for _, v := range cb {
		if seen[v] {
			t.Fatalf("duplicate index %d in cluster-based order", v)
		}
		seen[v] = true
	}
}

func TestSameMembership(t *testing.T) {
	a := [][]int{{1, 2}, {}, {3}}
	b := [][]int{{1, 2}, {}, {3}}
	if !sameMembership(a, b) {
		t.Fatal("identical memberships reported different")
	}
	b[2] = []int{4}
	if sameMembership(a, b) {
		t.Fatal("different memberships reported same")
	}
	b[2] = []int{3, 4}
	if sameMembership(a, b) {
		t.Fatal("different lengths reported same")
	}
}
