package core

import (
	"math"
	"testing"

	"cluseq/internal/datagen"
	"cluseq/internal/seq"
)

func proteinTestDB(t *testing.T) *seq.Database {
	t.Helper()
	db, err := datagen.ProteinDB(datagen.ProteinConfig{
		Scale: 0.03, MinLength: 100, MaxLength: 250, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func proteinTestConfig() Config {
	return Config{
		InitialClusters: 10, Significance: 8, MinDistinct: 3,
		SimilarityThreshold: 1.5, MaxDepth: 6, MaxIterations: 25, Seed: 1,
	}
}

// TestAdaptiveSignificanceBootstrap verifies the motivation for the
// adaptive default: on motif-type data (local signal over a shared
// background), single-seed clusters can only attract members when the
// effective significance scales down, so the adaptive run must beat the
// paper's fixed-c run decisively.
func TestAdaptiveSignificanceBootstrap(t *testing.T) {
	db := proteinTestDB(t)
	adaptive, err := Cluster(db, proteinTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	fixedCfg := proteinTestConfig()
	fixedCfg.FixedSignificance = true
	fixed, err := Cluster(db, fixedCfg)
	if err != nil {
		t.Fatal(err)
	}
	aRep := evaluate(t, db, adaptive)
	fRep := evaluate(t, db, fixed)
	if aRep.Accuracy <= fRep.Accuracy {
		t.Fatalf("adaptive (%.2f) should beat fixed significance (%.2f) on motif data",
			aRep.Accuracy, fRep.Accuracy)
	}
	if aRep.Accuracy < 0.6 {
		t.Fatalf("adaptive accuracy %.2f too low on motif data", aRep.Accuracy)
	}
}

func TestKeepTrees(t *testing.T) {
	db := testDB(t, 100, 2, 0, 71)
	cfg := testConfig()
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if c.Tree != nil {
			t.Fatal("trees must not be kept unless requested")
		}
	}
	cfg.KeepTrees = true
	res, err = Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() == 0 {
		t.Skip("no clusters formed")
	}
	bg := db.SymbolFrequencies()
	for _, c := range res.Clusters {
		if c.Tree == nil {
			t.Fatal("KeepTrees did not attach the tree")
		}
		if c.Tree.NumNodes() != c.TreeStats.Nodes {
			t.Fatalf("tree/stats mismatch: %d vs %d", c.Tree.NumNodes(), c.TreeStats.Nodes)
		}
		// A member must score at least the final threshold against its
		// own kept tree.
		m := db.Sequences[c.Members[0]]
		sim := c.Tree.Similarity(m.Symbols, bg)
		norm := sim.LogSim / float64(len(m.Symbols))
		if norm < math.Log(res.FinalThreshold)-1e-9 {
			t.Fatalf("member scores %.4f below final threshold %.4f against kept tree",
				math.Exp(norm), res.FinalThreshold)
		}
	}
}

func TestPrimaryAssignmentConsistent(t *testing.T) {
	db := testDB(t, 150, 3, 0.05, 73)
	res, err := Cluster(db, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Primary) != db.Len() {
		t.Fatalf("Primary has %d entries for %d sequences", len(res.Primary), db.Len())
	}
	memberSet := make([]map[int]bool, len(res.Clusters))
	for ci, c := range res.Clusters {
		memberSet[ci] = map[int]bool{}
		for _, m := range c.Members {
			memberSet[ci][m] = true
		}
	}
	for si, p := range res.Primary {
		if p == -1 {
			// Must not be a member of any cluster.
			for ci := range memberSet {
				if memberSet[ci][si] {
					t.Fatalf("sequence %d is a member of cluster %d but Primary = -1", si, ci)
				}
			}
			continue
		}
		if !memberSet[p][si] {
			t.Fatalf("sequence %d: Primary cluster %d does not contain it", si, p)
		}
	}
	// PrimaryClustering must partition exactly the clustered sequences.
	pc := res.PrimaryClustering()
	if err := pc.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, members := range pc.Members {
		for _, m := range members {
			if seen[m] {
				t.Fatalf("sequence %d appears in two primary clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen)+len(res.Unclustered) != db.Len() {
		t.Fatalf("primary (%d) + unclustered (%d) != N (%d)", len(seen), len(res.Unclustered), db.Len())
	}
}

func TestRefinePassesRun(t *testing.T) {
	db := proteinTestDB(t)
	cfg := proteinTestConfig()
	cfg.RefinePasses = 2
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Clustering().Validate(); err != nil {
		t.Fatal(err)
	}
	rep := evaluate(t, db, res)
	if rep.Accuracy < 0.5 {
		t.Fatalf("refined accuracy %.2f collapsed", rep.Accuracy)
	}
}

func TestInsertWholeRuns(t *testing.T) {
	db := testDB(t, 100, 2, 0, 79)
	cfg := testConfig()
	cfg.InsertWhole = true
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Clustering().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValleyEstimatorOptions(t *testing.T) {
	db := testDB(t, 120, 3, 0, 83)
	for _, est := range []ValleyEstimator{ValleyAuto, ValleyOtsu, ValleyRegression} {
		cfg := testConfig()
		cfg.Valley = est
		res, err := Cluster(db, cfg)
		if err != nil {
			t.Fatalf("estimator %d: %v", est, err)
		}
		if err := res.Clustering().Validate(); err != nil {
			t.Fatalf("estimator %d: %v", est, err)
		}
	}
}

// TestValleyAutoUnsticksFromAbove is the regression test for the starved
// equilibrium: with t0 far above the data's separating level, ValleyAuto
// must still recover the planted clusters.
func TestValleyAutoUnsticksFromAbove(t *testing.T) {
	db := testDB(t, 240, 4, 0, 17)
	cfg := testConfig()
	cfg.SimilarityThreshold = 3
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := evaluate(t, db, res)
	if rep.Accuracy < 0.7 {
		t.Fatalf("from-above accuracy %.2f (threshold stuck at %.3f?)", rep.Accuracy, res.FinalThreshold)
	}
	unclustered := len(res.Unclustered)
	if unclustered > db.Len()/3 {
		t.Fatalf("%d/%d sequences stranded unclustered", unclustered, db.Len())
	}
}

func TestMergeConsolidation(t *testing.T) {
	db := testDB(t, 200, 3, 0.05, 107)
	cfg := testConfig()
	cfg.MergeConsolidation = true
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Clustering().Validate(); err != nil {
		t.Fatal(err)
	}
	rep := evaluate(t, db, res)
	if rep.Accuracy < 0.7 {
		t.Fatalf("merge-consolidation accuracy %.2f", rep.Accuracy)
	}
	if res.NumClusters() < 2 || res.NumClusters() > 6 {
		t.Fatalf("merge-consolidation found %d clusters, planted 3", res.NumClusters())
	}
}

func TestMergeIntoUnitBehaviour(t *testing.T) {
	// Direct unit test: a dismissed cluster must be absorbed by the
	// overlapping survivor — members unioned and tree counts summed.
	db := testDB(t, 30, 2, 0, 109)
	e := &engine{db: db, cfg: Config{MinDistinct: 3, MergeConsolidation: true, Significance: 5, MaxDepth: 4}}
	e.background = db.SymbolFrequencies()
	mk := func(id int, members ...int) *cluster {
		c := &cluster{id: id, members: map[int]bool{}, tree: e.newTree()}
		for _, m := range members {
			c.members[m] = true
			c.tree.Insert(db.Sequences[m].Symbols)
		}
		return c
	}
	big := mk(0, 1, 2, 3, 4, 5)
	covered := mk(1, 1, 2, 3)
	e.clusters = []*cluster{big, covered}
	bigSymbols := big.tree.TotalSymbols()
	coveredSymbols := covered.tree.TotalSymbols()

	if got := e.consolidate(); got != 1 {
		t.Fatalf("eliminated = %d, want 1", got)
	}
	if len(e.clusters) != 1 || e.clusters[0].id != 0 {
		t.Fatalf("survivor wrong: %+v", e.clusters)
	}
	if got := e.clusters[0].tree.TotalSymbols(); got != bigSymbols+coveredSymbols {
		t.Fatalf("tree not merged: %d symbols, want %d", got, bigSymbols+coveredSymbols)
	}
	for _, m := range []int{1, 2, 3, 4, 5} {
		if !e.clusters[0].members[m] {
			t.Fatalf("member %d lost in merge", m)
		}
	}
}

func TestShrinkageEstimatorRuns(t *testing.T) {
	db := testDB(t, 100, 2, 0, 89)
	cfg := testConfig()
	cfg.Shrinkage = 8
	cfg.FixedSignificance = false
	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Clustering().Validate(); err != nil {
		t.Fatal(err)
	}
}
