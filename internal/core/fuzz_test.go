package core

import (
	"bytes"
	"math"
	"testing"

	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// FuzzClassifierBundle exercises the model-bundle serialization both
// ways:
//
//   - forward: a classifier assembled from arbitrary insert streams must
//     survive Save→Load→Save with byte-identical output (the property
//     the registry's fingerprint-based hot reload relies on), and the
//     loaded copy must classify identically;
//   - backward: Load on an arbitrarily mutated bundle must return an
//     error or a valid classifier — never panic, and never allocate
//     proportionally to a corrupt size field.
func FuzzClassifierBundle(f *testing.F) {
	f.Add([]byte("abcabcabcabc"), []byte("dddddddd"), uint8(4), uint16(0), byte(0))
	f.Add([]byte{0, 1, 2, 3, 0xFF, 3, 2, 1, 0}, []byte{1, 1, 2, 2}, uint8(6), uint16(77), byte(0x10))
	f.Add([]byte{7, 7, 7}, []byte{}, uint8(2), uint16(2000), byte(0xFF))

	f.Fuzz(func(t *testing.T, streamA, streamB []byte, alphaByte uint8, mutPos uint16, mutXor byte) {
		n := int(alphaByte)%12 + 2
		alphabet := seq.MustAlphabet("abcdefghijklmn"[:n])
		cfg := pst.Config{AlphabetSize: n, MaxDepth: 4, Significance: 2, PMin: 0.1 / float64(n)}

		insert := func(tree *pst.Tree, stream []byte) {
			seg := make([]seq.Symbol, 0, len(stream))
			for _, b := range stream {
				if b == 0xFF { // segment delimiter, as in FuzzPSTInsertPredict
					tree.Insert(seg)
					seg = seg[:0]
					continue
				}
				seg = append(seg, seq.Symbol(int(b)%n))
			}
			tree.Insert(seg)
		}
		treeA, treeB := pst.MustNew(cfg), pst.MustNew(cfg)
		insert(treeA, streamA)
		insert(treeB, streamB)

		bg := make([]float64, n)
		for i := range bg {
			bg[i] = 1 / float64(n)
		}
		clf := &Classifier{
			trees:      []*pst.Tree{treeA, treeB},
			background: bg,
			logT:       math.Log(1.1),
			alphabet:   alphabet,
		}

		var b1 bytes.Buffer
		if err := clf.Save(&b1); err != nil {
			t.Fatalf("Save: %v", err)
		}
		loaded, err := LoadClassifier(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("Load of a freshly saved bundle: %v", err)
		}
		var b2 bytes.Buffer
		if err := loaded.Save(&b2); err != nil {
			t.Fatalf("Save after Load: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("Save→Load→Save not byte-identical (%d vs %d bytes)", b1.Len(), b2.Len())
		}
		probe := make([]seq.Symbol, 0, len(streamA))
		for _, b := range streamA {
			probe = append(probe, seq.Symbol(int(b)%n))
		}
		a, b := clf.Classify(probe), loaded.Classify(probe)
		if a.Cluster != b.Cluster || a.Similarity != b.Similarity {
			t.Fatalf("round-tripped classifier disagrees: %+v vs %+v", a, b)
		}

		// Mutate one byte (and also truncate) — Load must never panic.
		data := b1.Bytes()
		if len(data) > 0 {
			pos := int(mutPos) % len(data)
			mutated := append([]byte(nil), data...)
			mutated[pos] ^= mutXor
			_, _ = LoadClassifier(bytes.NewReader(mutated))
			_, _ = LoadClassifier(bytes.NewReader(mutated[:pos]))
		}
	})
}
