package core

import (
	"time"

	"cluseq/internal/obs"
	"cluseq/internal/pst"
)

// engineMetrics holds the engine's pre-registered observability
// handles. The zero value (all nil handles, from a nil registry) is
// fully functional as a no-op: every obs handle method is
// nil-receiver-safe, so the engine instruments unconditionally and
// pays one predictable branch per update when observability is off.
// Metric names are catalogued in DESIGN.md §10.
type engineMetrics struct {
	iterations *obs.Counter

	// One timing histogram per §4 outer-loop phase, in seconds.
	phaseGenerate    *obs.Histogram
	phaseScore       *obs.Histogram
	phaseApply       *obs.Histogram
	phaseConsolidate *obs.Histogram
	phaseThreshold   *obs.Histogram
	phaseRefine      *obs.Histogram

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	snapCompiles       *obs.Counter
	snapCompileSeconds *obs.Histogram

	clusters    *obs.Gauge
	unclustered *obs.Gauge
	threshold   *obs.Gauge

	pstNodes    *obs.Gauge
	pstBytes    *obs.Gauge
	pruneEvents *obs.Counter
	prunedNodes *obs.Counter
}

// phaseSeconds is the domain of the per-phase timing histograms:
// [0, 60s) at 0.1s resolution. Longer phases clamp into the last
// bucket (quantiles then saturate at the domain edge, the same
// contract as the serving latency histogram).
func phaseSeconds(reg *obs.Registry, phase string) *obs.Histogram {
	return reg.Histogram("cluseq_engine_phase_seconds", 0, 60, 600, "phase", phase)
}

// newEngineMetrics registers the engine's metric series. The prune
// counters carry the run's configured §5.1 strategy as a label so
// dashboards can tell which eviction policy fired.
func newEngineMetrics(reg *obs.Registry, prune pst.PruneStrategy) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	strategy := prune.String()
	return engineMetrics{
		iterations: reg.Counter("cluseq_engine_iterations_total"),

		phaseGenerate:    phaseSeconds(reg, "generate"),
		phaseScore:       phaseSeconds(reg, "score"),
		phaseApply:       phaseSeconds(reg, "apply"),
		phaseConsolidate: phaseSeconds(reg, "consolidate"),
		phaseThreshold:   phaseSeconds(reg, "threshold"),
		phaseRefine:      phaseSeconds(reg, "refine"),

		cacheHits:   reg.Counter("cluseq_engine_cache_hits_total"),
		cacheMisses: reg.Counter("cluseq_engine_cache_misses_total"),

		snapCompiles:       reg.Counter("cluseq_engine_snapshot_compiles_total"),
		snapCompileSeconds: reg.Histogram("cluseq_engine_snapshot_compile_seconds", 0, 1, 200),

		clusters:    reg.Gauge("cluseq_engine_clusters"),
		unclustered: reg.Gauge("cluseq_engine_unclustered"),
		threshold:   reg.Gauge("cluseq_engine_threshold"),

		pstNodes:    reg.Gauge("cluseq_pst_nodes"),
		pstBytes:    reg.Gauge("cluseq_pst_bytes"),
		pruneEvents: reg.Counter("cluseq_pst_prune_events_total", "strategy", strategy),
		prunedNodes: reg.Counter("cluseq_pst_pruned_nodes_total", "strategy", strategy),
	}
}

// enabled reports whether any metrics registry is attached (handles
// are registered all-or-nothing).
func (m *engineMetrics) enabled() bool { return m.iterations != nil }

// observePhase records one phase duration; a tiny wrapper so call
// sites read as one line.
//
//cluseq:hotpath
func (m *engineMetrics) observePhase(h *obs.Histogram, start time.Time) {
	h.ObserveSince(start)
}

// harvestTree folds a cluster tree's cumulative prune counters into
// the run counters, tracking the last harvested value per cluster so
// each eviction is counted exactly once. Called at iteration end for
// live clusters and just before a cluster's tree is dropped
// (consolidation dismissal, refine rebuild).
func (e *engine) harvestTree(c *cluster) {
	if !e.met.enabled() {
		return
	}
	if d := c.tree.PrunedNodes() - c.obsPruned; d > 0 {
		e.met.prunedNodes.Add(d)
		c.obsPruned += d
	}
	if d := c.tree.PruneEvents() - c.obsPruneEvents; d > 0 {
		e.met.pruneEvents.Add(d)
		c.obsPruneEvents += d
	}
}

// observeIteration publishes the end-of-iteration state: gauges for
// cluster/PST size and threshold, counters for cache traffic, and the
// per-tree prune harvest.
func (e *engine) observeIteration(trace *IterationTrace) {
	if !e.met.enabled() {
		return
	}
	e.met.iterations.Inc()
	nodes, bytes := 0, 0
	for _, c := range e.clusters {
		nodes += c.tree.NumNodes()
		bytes += c.tree.EstimatedBytes()
		e.harvestTree(c)
	}
	e.met.pstNodes.Set(float64(nodes))
	e.met.pstBytes.Set(float64(bytes))
	e.met.clusters.Set(float64(trace.Clusters))
	e.met.unclustered.Set(float64(trace.Unclustered))
	e.met.threshold.Set(trace.Threshold)
	e.met.cacheHits.Add(int64(trace.CacheHits))
	e.met.cacheMisses.Add(int64(trace.CacheMisses))
}
