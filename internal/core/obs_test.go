package core

import (
	"encoding/json"
	"strings"
	"testing"

	"cluseq/internal/obs"
)

// traceSpan is the subset of a tracer span record these tests decode.
type traceSpan struct {
	Type  string         `json:"type"`
	Name  string         `json:"name"`
	DurUS int64          `json:"dur_us"`
	Attrs map[string]any `json:"attrs"`
}

// TestClusterEmitsPhaseSpans runs a full clustering with a tracer
// attached and checks the span taxonomy: one generate, score, apply,
// consolidate, and threshold span per iteration (each tagged with its
// 1-based iter attribute), plus exactly one refine span when refinement
// is configured.
func TestClusterEmitsPhaseSpans(t *testing.T) {
	db := determinismDB(t, 11)
	cfg := determinismConfigs()["refine+merge+random"]
	var sb strings.Builder
	cfg.Tracer = obs.NewTracer(&sb)
	cfg.Obs = obs.NewRegistry()

	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Err(); err != nil {
		t.Fatal(err)
	}

	perIter := map[string]map[int]int{} // phase -> iter -> count
	refines := 0
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		var sp traceSpan
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("trace line is not valid JSON: %v\n%s", err, line)
		}
		if sp.Type != "span" {
			t.Fatalf("unexpected record type %q: %s", sp.Type, line)
		}
		if sp.DurUS < 0 {
			t.Fatalf("negative span duration: %s", line)
		}
		switch sp.Name {
		case "generate", "score", "apply", "consolidate", "threshold":
			iter, ok := sp.Attrs["iter"].(float64)
			if !ok || iter < 1 || int(iter) > res.Iterations {
				t.Fatalf("%s span with bad iter attr: %s", sp.Name, line)
			}
			if perIter[sp.Name] == nil {
				perIter[sp.Name] = map[int]int{}
			}
			perIter[sp.Name][int(iter)]++
		case "refine":
			refines++
		default:
			t.Fatalf("unknown span name %q: %s", sp.Name, line)
		}
	}
	for _, phase := range []string{"generate", "score", "apply", "consolidate", "threshold"} {
		for iter := 1; iter <= res.Iterations; iter++ {
			if got := perIter[phase][iter]; got != 1 {
				t.Errorf("phase %s iteration %d: %d spans, want 1", phase, iter, got)
			}
		}
	}
	if refines != 1 {
		t.Errorf("refine spans = %d, want 1 (RefinePasses=%d)", refines, cfg.RefinePasses)
	}

	// The obs registry saw the same run: iteration counter matches, and
	// snapshot-compile activity recorded in the trace is mirrored there.
	if got := cfg.Obs.Counter("cluseq_engine_iterations_total").Value(); got != int64(res.Iterations) {
		t.Errorf("iterations counter = %d, want %d", got, res.Iterations)
	}
	compiles := 0
	for _, tr := range res.Trace {
		compiles += tr.SnapshotCompiles
	}
	if compiles == 0 {
		t.Error("no snapshot compiles recorded in the iteration trace")
	}
	if got := cfg.Obs.Counter("cluseq_engine_snapshot_compiles_total").Value(); got < int64(compiles) {
		t.Errorf("snapshot compile counter = %d, want >= %d (trace total)", got, compiles)
	}
}

// TestClusterObsMatchesResult pins the metrics-only path (no tracer):
// gauges land on the final state and phase histograms fill for every
// phase that ran.
func TestClusterObsMatchesResult(t *testing.T) {
	db := determinismDB(t, 29)
	cfg := determinismConfigs()["base"]
	reg := obs.NewRegistry()
	cfg.Obs = reg

	res, err := Cluster(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("cluseq_engine_clusters").Value(); got != float64(len(res.Clusters)) {
		t.Errorf("clusters gauge = %v, want %d", got, len(res.Clusters))
	}
	if got := reg.Gauge("cluseq_engine_unclustered").Value(); got != float64(len(res.Unclustered)) {
		t.Errorf("unclustered gauge = %v, want %d", got, len(res.Unclustered))
	}
	for _, phase := range []string{"generate", "score", "apply", "consolidate", "threshold"} {
		h := reg.Histogram("cluseq_engine_phase_seconds", 0, 60, 600, "phase", phase)
		if got := h.Count(); got != int64(res.Iterations) {
			t.Errorf("phase %s histogram count = %d, want %d", phase, got, res.Iterations)
		}
	}
	if got := reg.Gauge("cluseq_pst_nodes").Value(); got <= 0 {
		t.Errorf("pst_nodes gauge = %v, want > 0", got)
	}
}
