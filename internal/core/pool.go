package core

import (
	"sync"
	"sync/atomic"
)

// workerPool is a fixed set of long-lived goroutines serving every
// parallel phase of one engine run — the sequence-major scoring pass,
// seed-candidate scoring, refinement rebuilds, and primary assignment
// all dispatch onto the same pool, so a run pays goroutine startup once
// instead of a fork/join per phase (previously per sequence).
//
// Work is handed out as index batches: run(n, fn) invokes fn(i) for
// every i in [0, n) with dynamic (work-stealing) index assignment, which
// keeps workers busy when per-index cost is skewed (long sequences,
// large trees). The calling goroutine participates as a worker, so a
// pool of size w-1 yields w-way parallelism with no idle coordinator.
//
// Batches must not be issued concurrently or nested: the engine's outer
// loop is serial and each parallel phase runs to completion before the
// next starts, which is also what makes the pool's lack of per-batch
// identity safe.
type workerPool struct {
	size  int
	batch chan *poolBatch
}

type poolBatch struct {
	n    int
	fn   func(i int)
	next atomic.Int64
	wg   sync.WaitGroup
}

// work drains indices from the batch until none remain.
func (b *poolBatch) work() {
	defer b.wg.Done()
	for {
		i := int(b.next.Add(1)) - 1
		if i >= b.n {
			return
		}
		b.fn(i)
	}
}

// newWorkerPool starts size worker goroutines. They idle on a channel
// until run hands them a batch, and exit when close is called.
func newWorkerPool(size int) *workerPool {
	p := &workerPool{size: size, batch: make(chan *poolBatch)}
	for w := 0; w < size; w++ {
		go func() {
			for b := range p.batch {
				b.work()
			}
		}()
	}
	return p
}

// run executes fn(0) … fn(n−1) across the pool plus the calling
// goroutine and returns when every index is done.
func (p *workerPool) run(n int, fn func(i int)) {
	b := &poolBatch{n: n, fn: fn}
	b.wg.Add(p.size + 1)
	for w := 0; w < p.size; w++ {
		p.batch <- b
	}
	b.work()
	b.wg.Wait()
}

// close terminates the pool's goroutines. The pool must be idle.
func (p *workerPool) close() { close(p.batch) }
