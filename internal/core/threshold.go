package core

import (
	"math"
	"sort"

	"cluseq/internal/histogram"
)

// adjustThreshold implements §4.6: build a histogram of all
// sequence-cluster similarities observed this iteration, locate the valley
// t̂ (the sharpest turn of the curve, by maximal left/right regression
// slope difference), and move t halfway toward it. Returns the valley
// estimate (1.0 ≡ log 0 means "none found").
//
// Engineering note: the paper histograms raw similarities. Raw
// similarities span hundreds of orders of magnitude (they are products of
// l per-symbol ratios), so a fixed-granularity linear histogram would
// collapse all background mass into one bucket; we histogram
// log-similarities over a clamped range instead, which preserves the
// valley the heuristic is after and keeps the bucket count meaningful.
//
//cluseq:deterministic
func (e *engine) adjustThreshold(logSims []float64, starved bool) float64 {
	if e.tStable && !starved {
		return 0 // §4.6: t and t̂ converged; only starvation reopens it
	}
	if len(logSims) < 2*e.cfg.HistogramBuckets {
		return 0 // too few observations for a meaningful valley
	}
	// Trim the extreme 2% on both sides: a handful of memorization
	// artifacts (e.g. early members whose inserted segments dominate a
	// still-small tree) would otherwise stretch the histogram domain and
	// drag the split far beyond the genuine member mode.
	sorted := append([]float64(nil), logSims...)
	sort.Float64s(sorted)
	lo := sorted[len(sorted)/50]
	hi := sorted[len(sorted)-1-len(sorted)/50]
	if !(lo < hi) {
		return 0
	}
	h, err := histogram.New(lo, hi, e.cfg.HistogramBuckets)
	if err != nil {
		return 0
	}
	for _, v := range logSims {
		h.Add(v)
	}
	// Two estimators of the background/member boundary: the paper's
	// regression-turn valley hugs the right edge of the background mode
	// (optimistic — lets clusters grow, consolidation cleans up), while
	// Otsu's split is robust when the background mode has a soft tail.
	// The default takes the smaller of the two, inheriting the paper's
	// growth-friendly bias with Otsu as a sanity bound.
	var valleyLog float64
	var ok bool
	switch e.cfg.Valley {
	case ValleyOtsu:
		valleyLog, ok = h.OtsuThreshold()
	case ValleyRegression:
		valleyLog, ok = h.Valley()
	default: // ValleyAuto
		valleyLog, ok = h.OtsuThreshold()
		if starved {
			if reg, okR := h.Valley(); okR && (!ok || reg < valleyLog) {
				valleyLog, ok = reg, true
				e.tStable = false
			}
		}
	}
	if !ok {
		return 0
	}
	tHat := clampThreshold(math.Exp(valleyLog))
	t := math.Exp(e.logT)
	// §4.6: approach t̂ at a conservative pace; stop when within 1%.
	if math.Abs(t-tHat) < 0.01*tHat {
		e.tStable = true
		return tHat
	}
	e.logT = math.Log(clampThreshold((t + tHat) / 2))
	e.tMoved = true
	return tHat
}
