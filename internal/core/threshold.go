package core

import (
	"math"
	"sort"

	"cluseq/internal/histogram"
)

// ThresholdAdjuster implements the §4.6 automatic similarity-threshold
// adjustment as a self-contained piece of state, so both the batch
// engine and the streaming ingest engine (internal/stream) apply the
// exact same rule: build a histogram of observed sequence-cluster
// log-similarities, locate the valley t̂ between the background mode and
// the member mode, and move t halfway toward it per pass.
//
// Engineering note: the paper histograms raw similarities. Raw
// similarities span hundreds of orders of magnitude (they are products
// of l per-symbol ratios), so a fixed-granularity linear histogram would
// collapse all background mass into one bucket; we histogram
// log-similarities over a clamped range instead, which preserves the
// valley the heuristic is after and keeps the bucket count meaningful.
type ThresholdAdjuster struct {
	// LogT is the current threshold in the log domain (ln t). Callers
	// compare normalized log-similarities directly against it.
	LogT float64
	// Buckets is the histogram granularity (Config.HistogramBuckets);
	// zero selects the default 100.
	Buckets int
	// Valley selects the valley estimator.
	Valley ValleyEstimator
	// Sticky reproduces the batch engine's convergence behaviour: once t
	// and t̂ agree within 1%, adjustment stops until a starved pass
	// reopens it. The streaming engine leaves this false so the
	// threshold keeps tracking the similarity distribution as the stream
	// drifts — the per-consolidation threshold delta is the drift signal
	// the obs layer reports.
	Sticky bool
	// stable records §4.6 convergence (t and t̂ within 1%) under Sticky.
	stable bool
}

// Threshold returns the current threshold in the similarity domain.
func (a *ThresholdAdjuster) Threshold() float64 { return math.Exp(a.LogT) }

// Adjust runs one §4.6 pass over the log-similarities observed since the
// previous pass. starved marks a pass in which clustering made no
// progress while much of the data remains unclustered — the signature of
// a threshold stuck above the reach of fresh seed clusters — which
// biases the auto estimator toward the paper's growth-friendly
// regression valley and reopens a converged (Sticky) adjuster. It
// returns the valley estimate t̂ (0 when no valley was found) and
// whether LogT moved.
//
//cluseq:deterministic
func (a *ThresholdAdjuster) Adjust(logSims []float64, starved bool) (valley float64, moved bool) {
	if a.stable && !starved {
		return 0, false // §4.6: t and t̂ converged; only starvation reopens it
	}
	buckets := a.Buckets
	if buckets <= 0 {
		buckets = 100
	}
	if len(logSims) < 2*buckets {
		return 0, false // too few observations for a meaningful valley
	}
	// Trim the extreme 2% on both sides: a handful of memorization
	// artifacts (e.g. early members whose inserted segments dominate a
	// still-small tree) would otherwise stretch the histogram domain and
	// drag the split far beyond the genuine member mode.
	sorted := append([]float64(nil), logSims...)
	sort.Float64s(sorted)
	lo := sorted[len(sorted)/50]
	hi := sorted[len(sorted)-1-len(sorted)/50]
	if !(lo < hi) {
		return 0, false
	}
	h, err := histogram.New(lo, hi, buckets)
	if err != nil {
		return 0, false
	}
	for _, v := range logSims {
		h.Add(v)
	}
	// Two estimators of the background/member boundary: the paper's
	// regression-turn valley hugs the right edge of the background mode
	// (optimistic — lets clusters grow, consolidation cleans up), while
	// Otsu's split is robust when the background mode has a soft tail.
	// The default takes the smaller of the two, inheriting the paper's
	// growth-friendly bias with Otsu as a sanity bound.
	var valleyLog float64
	var ok bool
	switch a.Valley {
	case ValleyOtsu:
		valleyLog, ok = h.OtsuThreshold()
	case ValleyRegression:
		valleyLog, ok = h.Valley()
	default: // ValleyAuto
		valleyLog, ok = h.OtsuThreshold()
		if starved {
			if reg, okR := h.Valley(); okR && (!ok || reg < valleyLog) {
				valleyLog, ok = reg, true
				a.stable = false
			}
		}
	}
	if !ok {
		return 0, false
	}
	tHat := clampThreshold(math.Exp(valleyLog))
	t := math.Exp(a.LogT)
	// §4.6: approach t̂ at a conservative pace; stop when within 1%.
	if math.Abs(t-tHat) < 0.01*tHat {
		if a.Sticky {
			a.stable = true
		}
		return tHat, false
	}
	a.LogT = math.Log(clampThreshold((t + tHat) / 2))
	return tHat, true
}

// adjustThreshold runs the engine's §4.6 pass and records whether the
// threshold moved (the outer loop's termination looks at it).
//
//cluseq:deterministic
func (e *engine) adjustThreshold(logSims []float64, starved bool) float64 {
	valley, moved := e.thr.Adjust(logSims, starved)
	if moved {
		e.tMoved = true
	}
	return valley
}
