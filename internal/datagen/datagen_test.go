package datagen

import (
	"math/rand/v2"
	"strings"
	"testing"

	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

func TestSyntheticDBShape(t *testing.T) {
	cfg := SyntheticConfig{
		NumSequences: 200, AvgLength: 50, AlphabetSize: 20,
		NumClusters: 4, OutlierFrac: 0.1, Seed: 7,
	}
	db, err := SyntheticDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 200 {
		t.Fatalf("Len = %d, want 200", db.Len())
	}
	if db.Alphabet.Size() != 20 {
		t.Fatalf("alphabet = %d, want 20", db.Alphabet.Size())
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := db.LabelCounts()
	if len(counts) != 4 {
		t.Fatalf("labels = %v, want 4 clusters", counts)
	}
	labeled := 0
	for _, c := range counts {
		labeled += c
		if c < 40 || c > 50 {
			t.Fatalf("unbalanced cluster sizes: %v", counts)
		}
	}
	if got := db.Len() - labeled; got != 20 {
		t.Fatalf("outliers = %d, want 20 (10%%)", got)
	}
	avg := db.AverageLength()
	if avg < 35 || avg > 65 {
		t.Fatalf("average length = %v, want ≈ 50", avg)
	}
}

func TestSyntheticDBDeterministic(t *testing.T) {
	cfg := SyntheticConfig{NumSequences: 50, AvgLength: 30, AlphabetSize: 10, NumClusters: 3, Seed: 5}
	db1, err := SyntheticDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := SyntheticDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range db1.Sequences {
		a, b := db1.Sequences[i], db2.Sequences[i]
		if a.ID != b.ID || a.Label != b.Label || len(a.Symbols) != len(b.Symbols) {
			t.Fatalf("sequence %d differs between runs", i)
		}
		for j := range a.Symbols {
			if a.Symbols[j] != b.Symbols[j] {
				t.Fatalf("sequence %d symbol %d differs", i, j)
			}
		}
	}
}

func TestSyntheticDBValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{AlphabetSize: 1},
		{OutlierFrac: 1.5},
		{OutlierFrac: -0.1},
		{NumSequences: 5, NumClusters: 10},
		{AlphabetSize: 60000},
	}
	for i, cfg := range bad {
		if _, err := SyntheticDB(cfg); err == nil {
			t.Errorf("case %d (%+v): want error", i, cfg)
		}
	}
}

// TestClusterSourcesAreDistinguishable is the property the whole synthetic
// evaluation rests on: a PST trained on one cluster's sequences must score
// fresh sequences from the same cluster far above sequences from a
// different cluster or memoryless noise.
func TestClusterSourcesAreDistinguishable(t *testing.T) {
	const alpha, order = 12, 3
	rng := rand.New(rand.NewPCG(21, 22))
	srcA := NewClusterSource(0, 99, alpha, order)
	srcB := NewClusterSource(1, 99, alpha, order)

	tree := pst.MustNew(pst.Config{AlphabetSize: alpha, MaxDepth: 5, Significance: 5, PMin: 0.001})
	for i := 0; i < 30; i++ {
		tree.Insert(srcA.Generate(300, rng))
	}
	background := make([]float64, alpha)
	for i := range background {
		background[i] = 1 / float64(alpha)
	}

	same := tree.Similarity(srcA.Generate(200, rng), background).LogSim
	other := tree.Similarity(srcB.Generate(200, rng), background).LogSim
	noise := make([]seq.Symbol, 200)
	for i := range noise {
		noise[i] = seq.Symbol(rng.IntN(alpha))
	}
	random := tree.Similarity(noise, background).LogSim

	if same <= other {
		t.Fatalf("same-cluster similarity %v not above cross-cluster %v", same, other)
	}
	if same <= random {
		t.Fatalf("same-cluster similarity %v not above random %v", same, random)
	}
	if same < 10 {
		t.Fatalf("same-cluster log-similarity %v too weak for clustering", same)
	}
}

func TestProteinDBPaperShape(t *testing.T) {
	db, err := ProteinDB(ProteinConfig{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000 (paper's subset size)", db.Len())
	}
	counts := db.LabelCounts()
	if len(counts) != 30 {
		t.Fatalf("families = %d, want 30", len(counts))
	}
	for name, c := range counts {
		if c < 140 || c > 900 {
			t.Fatalf("family %s size %d outside the paper's 140–900 range", name, c)
		}
	}
	// The ten named Table 3 families with their exact sizes.
	for _, probe := range []struct {
		name string
		size int
	}{{"ig", 884}, {"pkinase", 725}, {"rrm", 141}} {
		if counts[probe.name] != probe.size {
			t.Fatalf("family %s size = %d, want %d", probe.name, counts[probe.name], probe.size)
		}
	}
	if db.Alphabet.String() != AminoAcids {
		t.Fatalf("alphabet = %q", db.Alphabet.String())
	}
	for _, s := range db.Sequences[:100] {
		if len(s.Symbols) < 100 || len(s.Symbols) > 400 {
			t.Fatalf("sequence %s length %d outside [100,400]", s.ID, len(s.Symbols))
		}
	}
}

func TestProteinDBScaled(t *testing.T) {
	db, err := ProteinDB(ProteinConfig{Scale: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() < 350 || db.Len() > 450 {
		t.Fatalf("scaled Len = %d, want ≈ 400", db.Len())
	}
	if len(db.LabelCounts()) != 30 {
		t.Fatal("scaling must preserve all 30 families")
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProteinDBValidation(t *testing.T) {
	if _, err := ProteinDB(ProteinConfig{MinLength: 5}); err == nil {
		t.Error("tiny MinLength should fail")
	}
	if _, err := ProteinDB(ProteinConfig{MinLength: 200, MaxLength: 100}); err == nil {
		t.Error("Max < Min should fail")
	}
}

func TestProteinFamiliesShareMotifs(t *testing.T) {
	// Two members of one family must share at least one exact motif-length
	// segment (conservation), which unrelated families almost surely
	// don't at motif length 8 over a 20-symbol alphabet.
	db, err := ProteinDB(ProteinConfig{Scale: 0.02, Seed: 9, MutationRate: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	byFam := map[string][]*seq.Sequence{}
	for _, s := range db.Sequences {
		byFam[s.Label] = append(byFam[s.Label], s)
	}
	fam := byFam["ig"]
	if len(fam) < 2 {
		t.Skip("scaled family too small")
	}
	a, b := fam[0], fam[1]
	grams := map[string]bool{}
	for i := 0; i+8 <= len(a.Symbols); i++ {
		grams[db.Alphabet.Decode(a.Symbols[i:i+8])] = true
	}
	shared := 0
	for i := 0; i+8 <= len(b.Symbols); i++ {
		if grams[db.Alphabet.Decode(b.Symbols[i:i+8])] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("family members share no conserved 8-mer; motif planting broken")
	}
}

func TestPaperFamilyHelpers(t *testing.T) {
	names := PaperFamilyNames()
	if len(names) != 30 || names[0] != "ig" {
		t.Fatalf("PaperFamilyNames = %v", names[:3])
	}
	if got := PaperFamilySize("globin"); got != 681 {
		t.Fatalf("PaperFamilySize(globin) = %d, want 681", got)
	}
	if got := PaperFamilySize("nonexistent"); got != 0 {
		t.Fatalf("PaperFamilySize(nonexistent) = %d, want 0", got)
	}
}

func TestLanguageDBShape(t *testing.T) {
	db, err := LanguageDB(LanguageConfig{SentencesPerLanguage: 50, NoiseSentences: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 160 {
		t.Fatalf("Len = %d, want 160", db.Len())
	}
	counts := db.LabelCounts()
	for _, lang := range LanguageNames {
		if counts[lang] != 50 {
			t.Fatalf("%s count = %d, want 50", lang, counts[lang])
		}
	}
	unlabeled := 0
	for _, s := range db.Sequences {
		if s.Label == "" {
			unlabeled++
		}
		if len(s.Symbols) < 40 || len(s.Symbols) > 120 {
			t.Fatalf("sentence length %d outside [40,120]", len(s.Symbols))
		}
	}
	if unlabeled != 10 {
		t.Fatalf("noise = %d, want 10", unlabeled)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLanguageStatisticsDiffer(t *testing.T) {
	// The paper's named markers: "th" is frequent in English; Japanese
	// alternates vowels and consonants far more strictly than English.
	db, err := LanguageDB(LanguageConfig{SentencesPerLanguage: 100, NoiseSentences: 0, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	thRate := map[string]float64{}
	altRate := map[string]float64{}
	chars := map[string]float64{}
	isVowel := func(r rune) bool { return strings.ContainsRune("aeiou", r) }
	for _, s := range db.Sequences {
		text := db.Alphabet.Decode(s.Symbols)
		for i := 0; i+1 < len(text); i++ {
			if text[i] == 't' && text[i+1] == 'h' {
				thRate[s.Label]++
			}
			if isVowel(rune(text[i])) != isVowel(rune(text[i+1])) {
				altRate[s.Label]++
			}
		}
		chars[s.Label] += float64(len(text))
	}
	for l := range thRate {
		thRate[l] /= chars[l]
	}
	for l := range altRate {
		altRate[l] /= chars[l]
	}
	if thRate["english"] <= 2*thRate["japanese"] {
		t.Fatalf("English th-rate %v not ≫ Japanese %v", thRate["english"], thRate["japanese"])
	}
	if altRate["japanese"] <= altRate["english"] {
		t.Fatalf("Japanese CV alternation %v not above English %v", altRate["japanese"], altRate["english"])
	}
}

func TestTraceDBShape(t *testing.T) {
	db, err := TraceDB(TraceConfig{TracesPerProfile: 20, Anomalies: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4*20+5 {
		t.Fatalf("Len = %d, want 85", db.Len())
	}
	if db.Alphabet.Size() != len(Syscalls) {
		t.Fatalf("alphabet = %d, want %d syscalls", db.Alphabet.Size(), len(Syscalls))
	}
	counts := db.LabelCounts()
	for _, p := range TraceProfileNames() {
		if counts[p] != 20 {
			t.Fatalf("profile %s count = %d, want 20", p, counts[p])
		}
	}
	unlabeled := 0
	for _, s := range db.Sequences {
		if s.Label == "" {
			unlabeled++
		}
		if len(s.Symbols) < 60 || len(s.Symbols) > 200 {
			t.Fatalf("trace length %d outside [60,200]", len(s.Symbols))
		}
	}
	if unlabeled != 5 {
		t.Fatalf("anomalies = %d, want 5", unlabeled)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDBValidation(t *testing.T) {
	if _, err := TraceDB(TraceConfig{MinCalls: 5}); err == nil {
		t.Error("tiny MinCalls should fail")
	}
	if _, err := TraceDB(TraceConfig{MinCalls: 100, MaxCalls: 50}); err == nil {
		t.Error("Max < Min should fail")
	}
}

func TestTraceProfilesFollowTheirChunks(t *testing.T) {
	// A fileserver trace must be dominated by file syscalls, a webserver
	// trace by socket syscalls.
	db, err := TraceDB(TraceConfig{TracesPerProfile: 10, Anomalies: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rate := func(s *seq.Sequence, names ...string) float64 {
		set := map[string]bool{}
		for _, n := range names {
			set[n] = true
		}
		hits := 0
		for _, sym := range s.Symbols {
			if set[SyscallName(sym)] {
				hits++
			}
		}
		return float64(hits) / float64(len(s.Symbols))
	}
	for _, s := range db.Sequences {
		switch s.Label {
		case "fileserver":
			if rate(s, "open", "read", "write", "close", "stat", "mmap") < 0.8 {
				t.Fatalf("fileserver trace not file-dominated: %s", DecodeTrace(s.Symbols[:20]))
			}
		case "webserver":
			if rate(s, "accept", "recv", "send", "close", "poll", "select", "futex") < 0.8 {
				t.Fatalf("webserver trace not socket-dominated: %s", DecodeTrace(s.Symbols[:20]))
			}
		}
	}
}

func TestSyscallNameAndDecode(t *testing.T) {
	if SyscallName(0) != "open" {
		t.Fatalf("SyscallName(0) = %s", SyscallName(0))
	}
	if got := SyscallName(seq.Symbol(5000)); got != "sys5000" {
		t.Fatalf("out-of-range syscall = %s", got)
	}
	if got := DecodeTrace([]seq.Symbol{0, 1, 3}); got != "open read close" {
		t.Fatalf("DecodeTrace = %q", got)
	}
}

func TestLanguageDBValidation(t *testing.T) {
	if _, err := LanguageDB(LanguageConfig{MinLetters: 2, MaxLetters: 1}); err == nil {
		t.Error("invalid lengths should fail")
	}
}
