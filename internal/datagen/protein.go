package datagen

import (
	"fmt"
	"math/rand/v2"

	"cluseq/internal/seq"
)

// AminoAcids is the standard 20-letter amino-acid alphabet.
const AminoAcids = "ACDEFGHIKLMNPQRSTVWY"

// aminoAcidFreqs are the SWISS-PROT background residue frequencies (in
// percent), aligned with AminoAcids. Protein backgrounds are close to
// memoryless draws from this composition — which is exactly why the
// paper's likelihood-ratio similarity (conditional probability vs
// memoryless background) isolates family-specific *sequential* structure.
var aminoAcidFreqs = []float64{
	8.25, 1.37, 5.45, 6.75, 3.86, 7.07, 2.27, 5.96, 5.84, 9.66,
	2.42, 4.06, 4.70, 3.93, 5.53, 6.56, 5.34, 6.87, 1.08, 2.92,
}

// paperFamilies reproduces the ten family names and sizes the paper's
// Table 3 reports from its 8000-protein SWISS-PROT subset; the remaining
// twenty families (unnamed in the paper) are filled in with sizes in the
// stated 140–900 range so the totals match.
var paperFamilies = []struct {
	Name string
	Size int
}{
	{"ig", 884}, {"pkinase", 725}, {"globin", 681}, {"7tm_1", 515},
	{"homeobox", 383}, {"efhand", 320}, {"RuBisCO_large", 311},
	{"gluts", 144}, {"actin", 142}, {"rrm", 141},
	// 20 filler families summing to 8000 − 4246 = 3754.
	{"fam11", 257}, {"fam12", 268}, {"fam13", 255}, {"fam14", 243},
	{"fam15", 231}, {"fam16", 220}, {"fam17", 209}, {"fam18", 198},
	{"fam19", 188}, {"fam20", 179}, {"fam21", 171}, {"fam22", 164},
	{"fam23", 158}, {"fam24", 153}, {"fam25", 149}, {"fam26", 146},
	{"fam27", 143}, {"fam28", 141}, {"fam29", 141}, {"fam30", 140},
}

// ProteinConfig parameterizes the simulated protein database.
type ProteinConfig struct {
	// Scale multiplies every family size; 1.0 yields the paper's 8000
	// sequences across 30 families. Default 1.0.
	Scale float64
	// MinLength/MaxLength bound the simulated protein lengths.
	// Defaults 100 and 400.
	MinLength, MaxLength int
	// MotifsPerFamily is how many conserved signature motifs (domains)
	// each family carries — the "conserved protein regions" of the
	// paper's introduction. Default 2.
	MotifsPerFamily int
	// MotifLength is each motif's length. Default 24: domain-scale
	// conserved regions, long enough to anchor a family against the
	// i.i.d. background. Default 24.
	MotifLength int
	// MutationRate is the per-position probability that a motif symbol is
	// substituted when planted into a member. Default 0.18 — conserved
	// regions in real families are similar, not identical, which is what
	// separates probabilistic matching (CLUSEQ) from exact block matching
	// (EDBO) in Table 2.
	MutationRate float64
	// FamilyBias is the probability that a non-motif residue is emitted
	// by the family-specific source instead of the shared background.
	// It controls how much *global* compositional signal families carry:
	// near zero, only local motifs separate families (global-alignment
	// methods fail, as the paper reports for ED); near one, families are
	// globally distinct sources. Default 0.3 — a noticeable composition
	// signature, as real protein families have, while leaving global
	// alignment largely uninformative.
	FamilyBias float64
	Seed       uint64 // default 2
}

func (c ProteinConfig) withDefaults() ProteinConfig {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.MinLength == 0 {
		c.MinLength = 100
	}
	if c.MaxLength == 0 {
		c.MaxLength = 400
	}
	if c.MotifsPerFamily == 0 {
		c.MotifsPerFamily = 2
	}
	if c.MotifLength == 0 {
		c.MotifLength = 24
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.18
	}
	if c.FamilyBias == 0 {
		c.FamilyBias = 0.3
	}
	if c.Seed == 0 {
		c.Seed = 2
	}
	return c
}

// ProteinDB simulates the paper's §6.1 protein workload: 30 families over
// a *shared* background residue source, where family identity lives in
// (a) a handful of conserved motifs planted at loosely conserved
// positions and (b) a mild family-specific compositional bias
// (FamilyBias). This reproduces the structure the paper's Table 2 turns
// on: the signal is *local and sequential*, so global-alignment edit
// distance fails while methods sensitive to local segments (CLUSEQ, EDBO)
// succeed, and composition-only methods (q-gram) land in between.
func ProteinDB(cfg ProteinConfig) (*seq.Database, error) {
	cfg = cfg.withDefaults()
	if cfg.Scale < 0 || cfg.MinLength < 10 || cfg.MaxLength < cfg.MinLength {
		return nil, fmt.Errorf("datagen: invalid protein config %+v", cfg)
	}
	if cfg.FamilyBias < 0 || cfg.FamilyBias > 1 {
		return nil, fmt.Errorf("datagen: FamilyBias %v outside [0,1]", cfg.FamilyBias)
	}
	alphabet := seq.MustAlphabet(AminoAcids)
	db := seq.NewDatabase(alphabet)
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xA5A5A5A5))
	n := alphabet.Size()

	// The background is memoryless: i.i.d. draws from the SWISS-PROT
	// residue composition, shared by every family, so neither global
	// alignment nor composition separates families — only the motifs and
	// the mild FamilyBias carry family identity.
	cumFreq := make([]float64, n)
	total := 0.0
	for i, f := range aminoAcidFreqs {
		total += f
		cumFreq[i] = total
	}
	drawBackground := func(rng *rand.Rand) seq.Symbol {
		u := rng.Float64() * total
		for i, c := range cumFreq {
			if u < c {
				return seq.Symbol(i)
			}
		}
		return seq.Symbol(n - 1)
	}

	id := 0
	for famIdx, fam := range paperFamilies {
		size := int(float64(fam.Size)*cfg.Scale + 0.5)
		if size < 1 {
			size = 1
		}
		famSrc := NewClusterSource(famIdx, cfg.Seed^0x70726f74, n, 2)
		// Family-wide conserved motifs.
		motifs := make([][]seq.Symbol, cfg.MotifsPerFamily)
		for m := range motifs {
			motifs[m] = make([]seq.Symbol, cfg.MotifLength)
			for i := range motifs[m] {
				motifs[m][i] = seq.Symbol(rng.IntN(n))
			}
		}
		for s := 0; s < size; s++ {
			length := cfg.MinLength + rng.IntN(cfg.MaxLength-cfg.MinLength+1)
			// Background residues with a mild family bias.
			syms := make([]seq.Symbol, 0, length)
			for len(syms) < length {
				if rng.Float64() < cfg.FamilyBias {
					syms = append(syms, famSrc.Next(syms, rng))
				} else {
					syms = append(syms, drawBackground(rng))
				}
			}
			// Plant each motif at an independent random position (real
			// domains shuffle freely between homologs — this is exactly
			// the local-vs-global distinction Table 2 exercises: global
			// alignment cannot line the domains up, local methods can),
			// with point mutations.
			order := rng.Perm(cfg.MotifsPerFamily)
			for m, motif := range motifs {
				span := length / cfg.MotifsPerFamily
				pos := order[m] * span // domains shuffle order between homologs
				if room := span - len(motif); room > 0 {
					pos += rng.IntN(room)
				}
				if pos+len(motif) > length {
					pos = length - len(motif)
				}
				for i, sym := range motif {
					if rng.Float64() < cfg.MutationRate {
						sym = seq.Symbol(rng.IntN(n))
					}
					syms[pos+i] = sym
				}
			}
			db.Add(&seq.Sequence{
				ID:      fmt.Sprintf("prot%05d", id),
				Label:   fam.Name,
				Symbols: syms,
			})
			id++
		}
	}
	rng.Shuffle(db.Len(), func(i, j int) {
		db.Sequences[i], db.Sequences[j] = db.Sequences[j], db.Sequences[i]
	})
	return db, nil
}

// PaperFamilyNames returns the 30 family names in Table 3 order (the ten
// the paper names first).
func PaperFamilyNames() []string {
	out := make([]string, len(paperFamilies))
	for i, f := range paperFamilies {
		out[i] = f.Name
	}
	return out
}

// PaperFamilySize returns the unscaled size of the named family, or 0.
func PaperFamilySize(name string) int {
	for _, f := range paperFamilies {
		if f.Name == name {
			return f.Size
		}
	}
	return 0
}
