// Package datagen generates the three kinds of workloads the paper
// evaluates on, none of which ship with it:
//
//   - SyntheticDB replaces the paper's synthetic generator (§6.2-6.4):
//     every cluster is a distinct random short-memory source ("sequences
//     in a cluster are all generated according to the same probabilistic
//     suffix tree"), plus memoryless outliers.
//   - ProteinDB replaces the SWISS-PROT subset of §6.1: 30 families with
//     the paper's size distribution over the 20-letter amino-acid
//     alphabet, each family a distinct order-2 source with conserved
//     motifs.
//   - LanguageDB replaces the CNN/Sina/Yahoo-Japan sentence corpora:
//     letter-statistics generators for English, pinyin-romanized Chinese
//     and romaji Japanese, spaces removed, plus noise sentences imitating
//     other languages.
//
// All generators are fully deterministic given their seed.
package datagen

import (
	"fmt"
	"math/rand/v2"

	"cluseq/internal/seq"
)

// SyntheticConfig parameterizes SyntheticDB. The zero value is completed
// with the paper's §6.2 defaults scaled down to laptop size.
type SyntheticConfig struct {
	NumSequences int     // default 1000   (paper: 100,000)
	AvgLength    int     // default 200    (paper: 1000)
	AlphabetSize int     // default 100
	NumClusters  int     // default 10     (paper: 50 or 100)
	Order        int     // context length of the planted sources, default 3
	OutlierFrac  float64 // fraction of memoryless outlier sequences, default 0.05
	Seed         uint64  // default 1
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.NumSequences == 0 {
		c.NumSequences = 1000
	}
	if c.AvgLength == 0 {
		c.AvgLength = 200
	}
	if c.AlphabetSize == 0 {
		c.AlphabetSize = 100
	}
	if c.NumClusters == 0 {
		c.NumClusters = 10
	}
	if c.Order == 0 {
		c.Order = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ClusterSource is one planted short-memory sequence source. Its
// conditional distribution over the next symbol given the last Order
// symbols is a deterministic function of the context, so the source
// behaves exactly like a (lazily materialized) probabilistic suffix tree
// of depth Order without storing |Σ|^Order rows.
type ClusterSource struct {
	id       int
	seed     uint64
	alphabet int
	order    int
}

// NewClusterSource returns the planted source for cluster id under the
// given generation seed.
func NewClusterSource(id int, seed uint64, alphabetSize, order int) *ClusterSource {
	return &ClusterSource{id: id, seed: seed, alphabet: alphabetSize, order: order}
}

// nextDist returns the (peaked) conditional distribution for a context via
// seeded hashing: three preferred symbols carry 85% of the mass, the rest
// spreads uniformly. Distinct clusters use distinct seeds, so their
// conditional distributions disagree almost everywhere — the property the
// paper's similarity measure detects.
func (cs *ClusterSource) nextDist(ctx []seq.Symbol) (preferred [3]seq.Symbol, weights [3]float64) {
	h := cs.seed ^ (uint64(cs.id)+1)*0x9e3779b97f4a7c15
	for _, s := range ctx {
		h ^= uint64(s) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	r := rand.New(rand.NewPCG(h, h^0xdeadbeefcafef00d))
	for i := range preferred {
		preferred[i] = seq.Symbol(r.IntN(cs.alphabet))
	}
	weights = [3]float64{0.60, 0.25, 0.10}
	return preferred, weights
}

// Next samples the next symbol given the context suffix. The source is a
// mixture over context orders 0…Order: with fixed mixture weights it
// consults the cluster's order-0 (unigram), order-1, … preferences, each a
// peaked distribution derived from the corresponding context suffix. The
// mixture makes lower-order marginals carry cluster identity too — the
// hierarchical structure real short-memory sources (text, proteins) have,
// and what lets a probabilistic suffix tree bootstrap from shallow
// contexts before deep ones turn significant.
func (cs *ClusterSource) Next(ctx []seq.Symbol, rng *rand.Rand) seq.Symbol {
	if len(ctx) > cs.order {
		ctx = ctx[len(ctx)-cs.order:]
	}
	// Pick the context order for this emission: geometric-ish decay over
	// 0..Order, truncated by the available context.
	d := 0
	for u := rng.Float64(); d < cs.order; d++ {
		if u < 0.35 {
			break
		}
		u = (u - 0.35) / 0.65
	}
	if d > len(ctx) {
		d = len(ctx)
	}
	preferred, weights := cs.nextDist(ctx[len(ctx)-d:])
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return preferred[i]
		}
	}
	return seq.Symbol(rng.IntN(cs.alphabet))
}

// Generate samples one sequence of the given length from the source.
func (cs *ClusterSource) Generate(length int, rng *rand.Rand) []seq.Symbol {
	out := make([]seq.Symbol, 0, length)
	for len(out) < length {
		out = append(out, cs.Next(out, rng))
	}
	return out
}

// SyntheticDB generates a labeled synthetic database per the paper's §6.2
// setup. Cluster labels are "cluster00", "cluster01", …; outliers carry an
// empty label.
func SyntheticDB(cfg SyntheticConfig) (*seq.Database, error) {
	cfg = cfg.withDefaults()
	if cfg.AlphabetSize < 2 || cfg.AlphabetSize > seq.MaxAlphabetSize {
		return nil, fmt.Errorf("datagen: alphabet size %d out of range", cfg.AlphabetSize)
	}
	if cfg.OutlierFrac < 0 || cfg.OutlierFrac >= 1 {
		return nil, fmt.Errorf("datagen: outlier fraction %v out of [0,1)", cfg.OutlierFrac)
	}
	if cfg.NumClusters < 1 || cfg.NumSequences < cfg.NumClusters {
		return nil, fmt.Errorf("datagen: need at least one sequence per cluster (%d clusters, %d sequences)", cfg.NumClusters, cfg.NumSequences)
	}
	alphabet, err := syntheticAlphabet(cfg.AlphabetSize)
	if err != nil {
		return nil, err
	}
	db := seq.NewDatabase(alphabet)
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5bf03635))

	sources := make([]*ClusterSource, cfg.NumClusters)
	for i := range sources {
		sources[i] = NewClusterSource(i, cfg.Seed, cfg.AlphabetSize, cfg.Order)
	}
	outliers := int(float64(cfg.NumSequences) * cfg.OutlierFrac)
	clustered := cfg.NumSequences - outliers

	for i := 0; i < clustered; i++ {
		c := i % cfg.NumClusters // round-robin keeps cluster sizes balanced
		length := sampleLength(cfg.AvgLength, rng)
		db.Add(&seq.Sequence{
			ID:      fmt.Sprintf("syn%06d", i),
			Label:   fmt.Sprintf("cluster%02d", c),
			Symbols: sources[c].Generate(length, rng),
		})
	}
	for i := 0; i < outliers; i++ {
		length := sampleLength(cfg.AvgLength, rng)
		syms := make([]seq.Symbol, length)
		for j := range syms {
			syms[j] = seq.Symbol(rng.IntN(cfg.AlphabetSize))
		}
		db.Add(&seq.Sequence{ID: fmt.Sprintf("out%06d", i), Symbols: syms})
	}
	// Interleave outliers into the body deterministically rather than
	// leaving them grouped at the tail.
	rng.Shuffle(db.Len(), func(i, j int) {
		db.Sequences[i], db.Sequences[j] = db.Sequences[j], db.Sequences[i]
	})
	return db, nil
}

// sampleLength draws a length around avg (uniform in [avg/2, 3·avg/2],
// minimum 4) so that the database exhibits the varied lengths the paper's
// model claims to handle seamlessly.
func sampleLength(avg int, rng *rand.Rand) int {
	lo := avg / 2
	if lo < 4 {
		lo = 4
	}
	return lo + rng.IntN(avg+1)
}

// syntheticAlphabet builds an n-symbol alphabet from a fixed printable
// repertoire, extending into higher code points when n is large.
func syntheticAlphabet(n int) (*seq.Alphabet, error) {
	// Stay well below the UTF-16 surrogate range so every rune survives a
	// string round trip distinctly.
	if n > 10000 {
		return nil, fmt.Errorf("datagen: synthetic alphabet limited to 10000 symbols, got %d", n)
	}
	runes := make([]rune, 0, n)
	for r := rune(33); len(runes) < n; r++ { // '!' onward; code points stay distinct
		// '#' and '>' are line-structural in the text format (comment and
		// header markers); a wrapped data line starting with either would
		// not survive a Write/Read round trip.
		if r == '#' || r == '>' {
			continue
		}
		runes = append(runes, r)
	}
	return seq.NewAlphabet(string(runes))
}
