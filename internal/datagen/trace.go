package datagen

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"cluseq/internal/seq"
)

// System-call trace workload — the paper's introduction names "system
// traces" among the sequence data CLUSEQ targets. Each trace is the
// syscall sequence of one process; processes of the same kind share
// characteristic short-memory call patterns (loops like open→read→read→
// close), and anomalous processes (simulated intrusions) follow none of
// the normal profiles.

// Syscalls is the simulated syscall inventory; symbol i of the trace
// alphabet denotes Syscalls[i].
var Syscalls = []string{
	"open", "read", "write", "close", "stat", "mmap", "brk", "ioctl",
	"socket", "connect", "accept", "send", "recv", "bind", "listen",
	"fork", "execve", "wait", "exit", "kill", "chmod", "chown", "unlink",
	"mkdir", "getpid", "time", "select", "poll", "futex", "nanosleep",
}

// traceAlphabet maps each syscall to one rune.
func traceAlphabet() *seq.Alphabet {
	runes := make([]rune, len(Syscalls))
	for i := range runes {
		runes[i] = rune('A' + i)
	}
	return seq.MustAlphabet(string(runes))
}

// SyscallName decodes one trace symbol to its syscall name.
func SyscallName(s seq.Symbol) string {
	if int(s) < len(Syscalls) {
		return Syscalls[s]
	}
	return fmt.Sprintf("sys%d", s)
}

// DecodeTrace renders a trace as space-separated syscall names.
func DecodeTrace(symbols []seq.Symbol) string {
	parts := make([]string, len(symbols))
	for i, s := range symbols {
		parts[i] = SyscallName(s)
	}
	return strings.Join(parts, " ")
}

// traceProfiles defines the normal process kinds. Each profile is a set
// of weighted call-pattern chunks; a trace interleaves chunks drawn from
// its profile.
var traceProfiles = []struct {
	Name   string
	Chunks []string // space-separated syscall chunks, sampled uniformly
}{
	{
		Name: "fileserver",
		Chunks: []string{
			"open read read read close",
			"open read write close",
			"stat open read close",
			"open mmap read close",
			"stat stat open read read close",
		},
	},
	{
		Name: "webserver",
		Chunks: []string{
			"accept recv send send close",
			"accept recv recv send close",
			"poll accept recv send close",
			"accept recv send futex send close",
			"select accept recv send close",
		},
	},
	{
		Name: "cron",
		Chunks: []string{
			"nanosleep time stat nanosleep",
			"nanosleep nanosleep time stat",
			"time nanosleep time fork execve wait exit",
			"nanosleep time time stat nanosleep",
		},
	},
	{
		Name: "shell",
		Chunks: []string{
			"read write read write ioctl",
			"read ioctl write read write",
			"read write fork execve wait write ioctl",
			"read write read ioctl read write",
		},
	},
}

// TraceProfileNames returns the normal profile names (the ground-truth
// labels of TraceDB).
func TraceProfileNames() []string {
	out := make([]string, len(traceProfiles))
	for i, p := range traceProfiles {
		out[i] = p.Name
	}
	return out
}

// TraceConfig parameterizes TraceDB.
type TraceConfig struct {
	// TracesPerProfile is how many processes of each normal kind are
	// generated. Default 80.
	TracesPerProfile int
	// MinCalls/MaxCalls bound trace lengths. Defaults 60 and 200.
	MinCalls, MaxCalls int
	// Anomalies is how many intrusion-like traces to add (unlabeled;
	// their call mix follows no normal profile). Default 10.
	Anomalies int
	Seed      uint64 // default 4
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.TracesPerProfile == 0 {
		c.TracesPerProfile = 80
	}
	if c.MinCalls == 0 {
		c.MinCalls = 60
	}
	if c.MaxCalls == 0 {
		c.MaxCalls = 200
	}
	if c.Anomalies == 0 {
		c.Anomalies = 10
	}
	if c.Seed == 0 {
		c.Seed = 4
	}
	return c
}

// TraceDB generates the simulated system-call trace database. Normal
// traces carry their profile name as the label; anomalies are unlabeled.
func TraceDB(cfg TraceConfig) (*seq.Database, error) {
	cfg = cfg.withDefaults()
	if cfg.MinCalls < 10 || cfg.MaxCalls < cfg.MinCalls {
		return nil, fmt.Errorf("datagen: invalid trace config %+v", cfg)
	}
	alphabet := traceAlphabet()
	db := seq.NewDatabase(alphabet)
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x74726163))

	call := func(name string) seq.Symbol {
		for i, s := range Syscalls {
			if s == name {
				return seq.Symbol(i)
			}
		}
		panic("datagen: unknown syscall " + name)
	}

	id := 0
	for _, p := range traceProfiles {
		// Pre-encode the profile's chunks.
		chunks := make([][]seq.Symbol, len(p.Chunks))
		for i, c := range p.Chunks {
			for _, name := range strings.Fields(c) {
				chunks[i] = append(chunks[i], call(name))
			}
		}
		for n := 0; n < cfg.TracesPerProfile; n++ {
			length := cfg.MinCalls + rng.IntN(cfg.MaxCalls-cfg.MinCalls+1)
			trace := make([]seq.Symbol, 0, length+8)
			for len(trace) < length {
				chunk := chunks[rng.IntN(len(chunks))]
				trace = append(trace, chunk...)
				// Occasional bookkeeping calls between chunks.
				if rng.Float64() < 0.2 {
					trace = append(trace, call("getpid"))
				}
			}
			db.Add(&seq.Sequence{
				ID:      fmt.Sprintf("proc%05d", id),
				Label:   p.Name,
				Symbols: trace[:length],
			})
			id++
		}
	}
	// Anomalies: each intruder follows its own idiosyncratic call mix (a
	// distinct random source per anomaly, plus a suspicious burst), so
	// the anomalies match no normal profile and no two of them match each
	// other — true outliers, not an undiscovered cluster.
	for n := 0; n < cfg.Anomalies; n++ {
		src := NewClusterSource(1000+n, cfg.Seed^0x616e6f6d, alphabet.Size(), 1)
		burst := []seq.Symbol{
			call("execve"), call("chmod"),
			seq.Symbol(rng.IntN(alphabet.Size())),
			call("unlink"),
		}
		length := cfg.MinCalls + rng.IntN(cfg.MaxCalls-cfg.MinCalls+1)
		trace := make([]seq.Symbol, 0, length+8)
		for len(trace) < length {
			if rng.Float64() < 0.1 {
				trace = append(trace, burst...)
			} else {
				trace = append(trace, src.Next(trace, rng))
			}
		}
		db.Add(&seq.Sequence{ID: fmt.Sprintf("anom%03d", n), Symbols: trace[:length]})
	}
	rng.Shuffle(db.Len(), func(i, j int) {
		db.Sequences[i], db.Sequences[j] = db.Sequences[j], db.Sequences[i]
	})
	return db, nil
}
