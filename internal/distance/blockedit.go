package distance

import (
	"cluseq/internal/seq"
)

// BlockConfig parameterizes the greedy block edit distance approximation.
type BlockConfig struct {
	// MinBlock is the smallest common segment treated as a movable block;
	// shorter matches are left to character edits. Default 3.
	MinBlock int
	// BlockCost is the constant cost of matching one block regardless of
	// its length (a block move/copy in the [19, 21] edit models). Default 1.
	BlockCost float64
	// CharCost is the cost of one leftover character insertion/deletion.
	// Default 1.
	CharCost float64
}

func (c BlockConfig) withDefaults() BlockConfig {
	if c.MinBlock <= 0 {
		c.MinBlock = 3
	}
	if c.BlockCost <= 0 {
		c.BlockCost = 1
	}
	if c.CharCost <= 0 {
		c.CharCost = 1
	}
	return c
}

// BlockEditDistance approximates the edit distance with block operations
// between a and b: repeatedly extract the longest common segment of
// unmatched symbols (greedy string tiling), charging BlockCost per block,
// then charge CharCost for every symbol left unmatched on either side.
// Exact block edit distance is NP-hard [21]; this greedy approximation is
// symmetric and zero iff one sequence tiles the other completely, which is
// all the Table 2 comparison needs.
func BlockEditDistance(a, b []seq.Symbol, cfg BlockConfig) float64 {
	cfg = cfg.withDefaults()
	// Greedy tie-breaking depends on scan order; canonicalize the argument
	// order so the distance is symmetric by construction.
	if lessSymbols(b, a) {
		a, b = b, a
	}
	usedA := make([]bool, len(a))
	usedB := make([]bool, len(b))
	blocks := 0
	for {
		ai, bi, l := longestCommonUnused(a, b, usedA, usedB)
		if l < cfg.MinBlock {
			break
		}
		for i := 0; i < l; i++ {
			usedA[ai+i] = true
			usedB[bi+i] = true
		}
		blocks++
	}
	leftover := 0
	for _, u := range usedA {
		if !u {
			leftover++
		}
	}
	for _, u := range usedB {
		if !u {
			leftover++
		}
	}
	return float64(blocks)*cfg.BlockCost + float64(leftover)*cfg.CharCost
}

// lessSymbols orders symbol slices by length then lexicographically.
func lessSymbols(a, b []seq.Symbol) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// longestCommonUnused finds the longest segment common to a and b in which
// every position is still unmatched on both sides, via the classic
// longest-common-substring dynamic program restricted to unused cells.
func longestCommonUnused(a, b []seq.Symbol, usedA, usedB []bool) (ai, bi, length int) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		if usedA[i-1] {
			for j := range cur {
				cur[j] = 0
			}
			prev, cur = cur, prev
			continue
		}
		cur[0] = 0
		for j := 1; j <= len(b); j++ {
			if usedB[j-1] || a[i-1] != b[j-1] {
				cur[j] = 0
				continue
			}
			cur[j] = prev[j-1] + 1
			if cur[j] > length {
				length = cur[j]
				ai = i - cur[j]
				bi = j - cur[j]
			}
		}
		prev, cur = cur, prev
	}
	return ai, bi, length
}

// NormalizedBlockEditDistance scales BlockEditDistance into [0, 1] by the
// worst case (every symbol leftover on both sides).
func NormalizedBlockEditDistance(a, b []seq.Symbol, cfg BlockConfig) float64 {
	cfg = cfg.withDefaults()
	worst := float64(len(a)+len(b)) * cfg.CharCost
	if worst == 0 {
		return 0
	}
	return BlockEditDistance(a, b, cfg) / worst
}
