package distance

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cluseq/internal/seq"
)

func enc(t *testing.T, a *seq.Alphabet, s string) []seq.Symbol {
	t.Helper()
	syms, err := a.Encode(s)
	if err != nil {
		t.Fatalf("encode %q: %v", s, err)
	}
	return syms
}

var alpha = seq.MustAlphabet("abcdefg")

func TestLevenshteinClassicCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "acb", 2},
		{"gambol", "gumbo", 2},
		{"aaaabbb", "bbbaaaa", 6}, // the paper's footnote 1 example
		{"aaaabbb", "abcdefg", 6}, // …equal to this unrelated pair under ED
	}
	a7 := seq.MustAlphabet("abcdefgumol")
	for _, c := range cases {
		got := Levenshtein(enc(t, a7, c.a), enc(t, a7, c.b))
		if got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func randSyms(rng *rand.Rand, n, k int) []seq.Symbol {
	out := make([]seq.Symbol, n)
	for i := range out {
		out[i] = seq.Symbol(rng.IntN(k))
	}
	return out
}

func TestLevenshteinSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		a := randSyms(rng, rng.IntN(30), 3)
		b := randSyms(rng, rng.IntN(30), 3)
		if Levenshtein(a, b) != Levenshtein(b, a) {
			t.Fatalf("asymmetric: %v vs %v", a, b)
		}
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 2))
	for trial := 0; trial < 50; trial++ {
		a := randSyms(rng, rng.IntN(20), 3)
		b := randSyms(rng, rng.IntN(20), 3)
		c := randSyms(rng, rng.IntN(20), 3)
		ab, bc, ac := Levenshtein(a, b), Levenshtein(b, c), Levenshtein(a, c)
		if ac > ab+bc {
			t.Fatalf("triangle violated: d(a,c)=%d > d(a,b)+d(b,c)=%d", ac, ab+bc)
		}
	}
}

func TestLevenshteinBounds(t *testing.T) {
	// |len(a)−len(b)| ≤ d ≤ max(len(a), len(b)).
	f := func(ra, rb []byte) bool {
		a := make([]seq.Symbol, len(ra)%40)
		for i := range a {
			a[i] = seq.Symbol(ra[i] % 4)
		}
		b := make([]seq.Symbol, len(rb)%40)
		for i := range b {
			b[i] = seq.Symbol(rb[i] % 4)
		}
		d := Levenshtein(a, b)
		lo := abs(len(a) - len(b))
		hi := maxInt(len(a), len(b))
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinBandedExactWithinBand(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 60; trial++ {
		a := randSyms(rng, 20+rng.IntN(20), 4)
		// b = a with up to 3 random edits → distance ≤ 3 ≤ band 5.
		b := append([]seq.Symbol(nil), a...)
		for e := 0; e < rng.IntN(4); e++ {
			i := rng.IntN(len(b))
			switch rng.IntN(3) {
			case 0:
				b[i] = seq.Symbol(rng.IntN(4))
			case 1:
				b = append(b[:i], b[i+1:]...)
			default:
				b = append(b[:i], append([]seq.Symbol{seq.Symbol(rng.IntN(4))}, b[i:]...)...)
			}
		}
		exact := Levenshtein(a, b)
		banded := LevenshteinBanded(a, b, 5)
		if exact <= 5 && banded != exact {
			t.Fatalf("banded = %d, exact = %d (within band)", banded, exact)
		}
		if banded < exact {
			t.Fatalf("banded = %d underestimates exact %d", banded, exact)
		}
	}
}

func TestLevenshteinBandedFarLengths(t *testing.T) {
	a := randSyms(rand.New(rand.NewPCG(1, 1)), 30, 2)
	b := a[:5]
	if got := LevenshteinBanded(a, b, 3); got != 30 {
		t.Fatalf("out-of-band bound = %d, want max length 30", got)
	}
}

func TestNormalizedLevenshtein(t *testing.T) {
	a := enc(t, alpha, "abc")
	b := enc(t, alpha, "abd")
	if got := NormalizedLevenshtein(a, b); got != 1.0/3 {
		t.Fatalf("normalized = %v, want 1/3", got)
	}
	if got := NormalizedLevenshtein(nil, nil); got != 0 {
		t.Fatalf("empty normalized = %v, want 0", got)
	}
	if got := NormalizedLevenshtein(a, nil); got != 1 {
		t.Fatalf("vs-empty normalized = %v, want 1", got)
	}
}

func TestBlockEditDistanceRecognizesBlockSwap(t *testing.T) {
	// The paper's motivating example: aaaabbb vs bbbaaaa share the blocks
	// aaaa and bbb, so EDBO must see them as far closer than ED does, and
	// closer than the unrelated abcdefg.
	a := enc(t, alpha, "aaaabbb")
	b := enc(t, alpha, "bbbaaaa")
	c := enc(t, alpha, "abcdefg")
	dAB := BlockEditDistance(a, b, BlockConfig{})
	dAC := BlockEditDistance(a, c, BlockConfig{})
	if dAB >= dAC {
		t.Fatalf("EDBO(aaaabbb, bbbaaaa) = %v must be < EDBO(aaaabbb, abcdefg) = %v", dAB, dAC)
	}
	if dAB != 2 { // two blocks, nothing leftover
		t.Fatalf("EDBO(aaaabbb, bbbaaaa) = %v, want 2", dAB)
	}
	// ED sees both pairs at distance 6 — the contrast EDBO fixes.
	if Levenshtein(a, b) != Levenshtein(a, c) {
		t.Fatal("precondition: ED should tie the two pairs")
	}
}

func TestBlockEditDistanceIdentical(t *testing.T) {
	a := enc(t, alpha, "abcabcabc")
	if got := BlockEditDistance(a, a, BlockConfig{}); got != 1 {
		t.Fatalf("identical sequences = one block, got %v", got)
	}
}

func TestBlockEditDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 7))
	for trial := 0; trial < 40; trial++ {
		a := randSyms(rng, rng.IntN(40), 3)
		b := randSyms(rng, rng.IntN(40), 3)
		d1 := BlockEditDistance(a, b, BlockConfig{})
		d2 := BlockEditDistance(b, a, BlockConfig{})
		if d1 != d2 {
			t.Fatalf("asymmetric block edit: %v vs %v", d1, d2)
		}
	}
}

func TestBlockEditDistanceDisjoint(t *testing.T) {
	a := enc(t, alpha, "aaaa")
	b := enc(t, alpha, "bbbb")
	// No common block: all 8 symbols leftover.
	if got := BlockEditDistance(a, b, BlockConfig{}); got != 8 {
		t.Fatalf("disjoint EDBO = %v, want 8", got)
	}
}

func TestBlockEditDistanceMinBlock(t *testing.T) {
	a := enc(t, alpha, "abab")
	b := enc(t, alpha, "baba")
	// With MinBlock 4, the length-3 common segments don't count.
	if got := BlockEditDistance(a, b, BlockConfig{MinBlock: 4}); got != 8 {
		t.Fatalf("EDBO MinBlock=4 = %v, want 8", got)
	}
	// With MinBlock 3, "aba" (or "bab") matches once.
	if got := BlockEditDistance(a, b, BlockConfig{MinBlock: 3}); got != 1+2 {
		t.Fatalf("EDBO MinBlock=3 = %v, want 3", got)
	}
}

func TestBlockEditCostsRespected(t *testing.T) {
	a := enc(t, alpha, "abcabc")
	b := enc(t, alpha, "abcddd")
	// One block "abc", leftover abc on side a? No: greedy finds "abc"
	// once (len 3); second "abc" in a has no partner; leftover = 3 (a) +
	// 3 (ddd in b) = 6.
	got := BlockEditDistance(a, b, BlockConfig{BlockCost: 5, CharCost: 2})
	if got != 5+6*2 {
		t.Fatalf("cost = %v, want 17", got)
	}
}

func TestNormalizedBlockEditDistance(t *testing.T) {
	a := enc(t, alpha, "aaaa")
	b := enc(t, alpha, "bbbb")
	if got := NormalizedBlockEditDistance(a, b, BlockConfig{}); got != 1 {
		t.Fatalf("disjoint normalized = %v, want 1", got)
	}
	if got := NormalizedBlockEditDistance(nil, nil, BlockConfig{}); got != 0 {
		t.Fatalf("empty normalized = %v, want 0", got)
	}
	f := func(ra, rb []byte) bool {
		a := make([]seq.Symbol, len(ra)%30)
		for i := range a {
			a[i] = seq.Symbol(ra[i] % 3)
		}
		b := make([]seq.Symbol, len(rb)%30)
		for i := range b {
			b[i] = seq.Symbol(rb[i] % 3)
		}
		d := NormalizedBlockEditDistance(a, b, BlockConfig{})
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
