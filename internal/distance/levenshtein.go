// Package distance implements the sequence distance functions CLUSEQ is
// compared against in the paper's evaluation (§6.1, Table 2): the classic
// edit distance (ED) and an edit distance with block operations (EDBO).
//
// The paper's introduction motivates CLUSEQ with the weakness of the edit
// distance — aaaabbb and bbbaaaa are as far apart as aaaabbb and abcdefg
// under ED even though the former pair shares two large blocks; the block
// variant repairs this but exact computation is NP-hard [21], so EDBO here
// is the customary greedy block-tiling approximation.
package distance

import (
	"cluseq/internal/seq"
)

// Levenshtein returns the classic unit-cost edit distance between a and b,
// using the two-row dynamic program (O(len(a)·len(b)) time, O(min) space).
func Levenshtein(a, b []seq.Symbol) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// b is the shorter sequence now; rows have len(b)+1 entries.
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute / match
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// LevenshteinBanded returns the edit distance restricted to a diagonal band
// of half-width k — an upper bound on the true distance that is exact
// whenever the true distance is at most k. It runs in O(k·max(len)) time,
// which is what makes the ED baseline tolerable on long sequences.
func LevenshteinBanded(a, b []seq.Symbol, k int) int {
	n, m := len(a), len(b)
	if abs(n-m) > k {
		// The band cannot reach the corner; the distance is at least the
		// length difference, report the cheapest completion bound.
		return maxInt(n, m)
	}
	const inf = int(^uint(0) >> 1 / 2)
	width := 2*k + 1
	prev := make([]int, width)
	cur := make([]int, width)
	// prev[d] holds row i−1, column j = i−1 + (d−k).
	for d := range prev {
		j := 0 + d - k
		if j >= 0 && j <= m && j <= k {
			prev[d] = j
		} else {
			prev[d] = inf
		}
	}
	for i := 1; i <= n; i++ {
		for d := 0; d < width; d++ {
			j := i + d - k
			if j < 0 || j > m {
				cur[d] = inf
				continue
			}
			if j == 0 {
				cur[d] = i
				continue
			}
			best := inf
			// substitute/match: prev row, same diagonal index.
			if prev[d] < inf {
				cost := 1
				if a[i-1] == b[j-1] {
					cost = 0
				}
				best = prev[d] + cost
			}
			// delete from a: prev row, j unchanged → diagonal d+1.
			if d+1 < width && prev[d+1] < inf && prev[d+1]+1 < best {
				best = prev[d+1] + 1
			}
			// insert into a: same row, j−1 → diagonal d−1.
			if d-1 >= 0 && cur[d-1] < inf && cur[d-1]+1 < best {
				best = cur[d-1] + 1
			}
			cur[d] = best
		}
		prev, cur = cur, prev
	}
	d := m - n + k
	if d < 0 || d >= width || prev[d] >= inf {
		return maxInt(n, m)
	}
	return prev[d]
}

// NormalizedLevenshtein returns Levenshtein(a, b) scaled into [0, 1] by the
// longer length, with two empty sequences at distance 0.
func NormalizedLevenshtein(a, b []seq.Symbol) float64 {
	n := maxInt(len(a), len(b))
	if n == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(n)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
