package eval

import (
	"fmt"
	"sort"
)

// Clustering is a set of possibly overlapping clusters over N sequences,
// identified by their database indices. Sequences in no cluster are
// outliers/unclustered.
type Clustering struct {
	N       int
	Members [][]int
}

// FromAssignments builds a (hard, non-overlapping) Clustering from an
// assignment vector in which entry i is sequence i's cluster, or −1 for
// unclustered.
func FromAssignments(assign []int) Clustering {
	k := 0
	for _, a := range assign {
		if a >= k {
			k = a + 1
		}
	}
	c := Clustering{N: len(assign), Members: make([][]int, k)}
	for i, a := range assign {
		if a >= 0 {
			c.Members[a] = append(c.Members[a], i)
		}
	}
	return c
}

// Assignments converts the clustering to a hard assignment vector, breaking
// overlapping membership toward the smallest cluster index and marking
// unclustered sequences −1.
func (c Clustering) Assignments() []int {
	out := make([]int, c.N)
	for i := range out {
		out[i] = -1
	}
	for k, members := range c.Members {
		for _, i := range members {
			if out[i] == -1 {
				out[i] = k
			}
		}
	}
	return out
}

// Validate checks all member indices are in range.
func (c Clustering) Validate() error {
	for k, members := range c.Members {
		for _, i := range members {
			if i < 0 || i >= c.N {
				return fmt.Errorf("eval: cluster %d has out-of-range member %d (N=%d)", k, i, c.N)
			}
		}
	}
	return nil
}

// PR is the paper's per-family precision/recall (§6.1): F is the set of
// sequences actually in the family, F' the set assigned to the family's
// cluster; precision = |F∩F'|/|F'|, recall = |F∩F'|/|F|.
type PR struct {
	Label     string
	TrueSize  int // |F|
	Assigned  int // |F'|
	Overlap   int // |F∩F'|
	Precision float64
	Recall    float64
}

// Report is the full quality summary for one clustering against
// ground-truth labels.
type Report struct {
	// Accuracy is the Table 2 "percentage of correctly labeled" measure: a
	// labeled sequence is correct when it is a member of the cluster
	// matched (one-to-one, maximal total overlap) to its true family.
	Accuracy float64
	// PerLabel holds one PR per ground-truth family, sorted by label.
	PerLabel []PR
	// MacroPrecision/MacroRecall average the per-family values.
	MacroPrecision float64
	MacroRecall    float64
	// ClusterLabel maps each cluster to its matched family ("" when the
	// cluster matched no family).
	ClusterLabel []string
	// NumClusters counts non-empty clusters; Unclustered counts labeled
	// sequences belonging to no cluster.
	NumClusters int
	Unclustered int
}

// Evaluate matches clusters to ground-truth families and computes the
// report. labels[i] is sequence i's family; sequences with an empty label
// (planted outliers) are excluded from all quality measures, matching the
// paper's synthetic experiments where outliers are not part of any family.
func Evaluate(c Clustering, labels []string) (Report, error) {
	if len(labels) != c.N {
		return Report{}, fmt.Errorf("eval: %d labels for %d sequences", len(labels), c.N)
	}
	if err := c.Validate(); err != nil {
		return Report{}, err
	}

	// Distinct labels, sorted for deterministic output.
	labelIdx := make(map[string]int)
	var labelNames []string
	for _, l := range labels {
		if l == "" {
			continue
		}
		if _, ok := labelIdx[l]; !ok {
			labelIdx[l] = 0
			labelNames = append(labelNames, l)
		}
	}
	sort.Strings(labelNames)
	for i, l := range labelNames {
		labelIdx[l] = i
	}
	nLabels := len(labelNames)
	trueSize := make([]int, nLabels)
	for _, l := range labels {
		if l != "" {
			trueSize[labelIdx[l]]++
		}
	}

	// Overlap matrix: clusters × labels, counting labeled members only.
	overlap := make([][]float64, len(c.Members))
	clusterLabeled := make([]int, len(c.Members))
	for k, members := range c.Members {
		overlap[k] = make([]float64, nLabels)
		for _, i := range members {
			if l := labels[i]; l != "" {
				overlap[k][labelIdx[l]]++
				clusterLabeled[k]++
			}
		}
	}

	rep := Report{ClusterLabel: make([]string, len(c.Members))}
	for _, members := range c.Members {
		if len(members) > 0 {
			rep.NumClusters++
		}
	}

	covered := make([]bool, c.N)
	for _, members := range c.Members {
		for _, i := range members {
			covered[i] = true
		}
	}
	labeledTotal := 0
	for i, l := range labels {
		if l == "" {
			continue
		}
		labeledTotal++
		if !covered[i] {
			rep.Unclustered++
		}
	}

	if nLabels == 0 || len(c.Members) == 0 {
		return rep, nil
	}

	clusterOfLabel := make([]int, nLabels)
	for i := range clusterOfLabel {
		clusterOfLabel[i] = -1
	}
	match, err := MaxAssignment(overlap)
	if err != nil {
		return Report{}, err
	}
	for k, lab := range match {
		if lab >= 0 && overlap[k][lab] > 0 {
			clusterOfLabel[lab] = k
			rep.ClusterLabel[k] = labelNames[lab]
		}
	}

	correct := 0
	for li, name := range labelNames {
		pr := PR{Label: name, TrueSize: trueSize[li]}
		if k := clusterOfLabel[li]; k >= 0 {
			pr.Assigned = clusterLabeled[k]
			pr.Overlap = int(overlap[k][li])
			if pr.Assigned > 0 {
				pr.Precision = float64(pr.Overlap) / float64(pr.Assigned)
			}
			if pr.TrueSize > 0 {
				pr.Recall = float64(pr.Overlap) / float64(pr.TrueSize)
			}
			correct += pr.Overlap
		}
		rep.PerLabel = append(rep.PerLabel, pr)
		rep.MacroPrecision += pr.Precision
		rep.MacroRecall += pr.Recall
	}
	rep.MacroPrecision /= float64(nLabels)
	rep.MacroRecall /= float64(nLabels)
	if labeledTotal > 0 {
		rep.Accuracy = float64(correct) / float64(labeledTotal)
	}
	return rep, nil
}

// F1 returns the harmonic mean of a PR's precision and recall.
func (pr PR) F1() float64 {
	if pr.Precision+pr.Recall == 0 {
		return 0
	}
	return 2 * pr.Precision * pr.Recall / (pr.Precision + pr.Recall)
}

// Purity returns the weighted majority-label fraction of the clustering:
// each cluster contributes its dominant label's share of its labeled
// members, weighted by cluster size. Unlabeled sequences are ignored;
// sequences in several clusters count once per cluster. 1.0 means every
// cluster is single-family.
func Purity(c Clustering, labels []string) (float64, error) {
	if len(labels) != c.N {
		return 0, fmt.Errorf("eval: %d labels for %d sequences", len(labels), c.N)
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	majority, total := 0, 0
	for _, members := range c.Members {
		counts := map[string]int{}
		for _, m := range members {
			if l := labels[m]; l != "" {
				counts[l]++
				total++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		majority += best
	}
	if total == 0 {
		return 0, nil
	}
	return float64(majority) / float64(total), nil
}

// AdjustedRandIndex compares two hard assignment vectors (−1 entries are
// treated as distinct singletons) with the chance-corrected Rand index:
// 1 for identical partitions, ≈0 for independent ones.
func AdjustedRandIndex(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: ARI length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 1, nil
	}
	norm := func(v []int) []int {
		out := make([]int, len(v))
		next := 0
		remap := make(map[int]int)
		for i, x := range v {
			if x < 0 {
				out[i] = next // unique singleton
				next++
				continue
			}
			if id, ok := remap[x]; ok {
				out[i] = id
			} else {
				remap[x] = next
				out[i] = next
				next++
			}
		}
		return out
	}
	na, nb := norm(a), norm(b)
	ka, kb := maxOf(na)+1, maxOf(nb)+1
	cont := make([][]int, ka)
	for i := range cont {
		cont[i] = make([]int, kb)
	}
	rowSum := make([]int, ka)
	colSum := make([]int, kb)
	for i := 0; i < n; i++ {
		cont[na[i]][nb[i]]++
		rowSum[na[i]]++
		colSum[nb[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	sumIJ, sumA, sumB := 0.0, 0.0, 0.0
	for i := range cont {
		sumA += choose2(rowSum[i])
		for j := range cont[i] {
			sumIJ += choose2(cont[i][j])
		}
	}
	for j := range colSum {
		sumB += choose2(colSum[j])
	}
	expected := sumA * sumB / choose2(n)
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial (all singletons or one block)
	}
	return (sumIJ - expected) / (maxIdx - expected), nil
}

func maxOf(v []int) int {
	m := -1
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// ConfusionMatrix tabulates, for hard assignments, how many sequences of
// each true label landed in each cluster. Row order follows sorted labels;
// column k is cluster k; the final column counts unclustered sequences.
func ConfusionMatrix(c Clustering, labels []string) (rows []string, matrix [][]int, err error) {
	if len(labels) != c.N {
		return nil, nil, fmt.Errorf("eval: %d labels for %d sequences", len(labels), c.N)
	}
	assign := c.Assignments()
	set := map[string]bool{}
	for _, l := range labels {
		if l != "" {
			set[l] = true
		}
	}
	for l := range set {
		rows = append(rows, l)
	}
	sort.Strings(rows)
	idx := make(map[string]int, len(rows))
	for i, l := range rows {
		idx[l] = i
	}
	k := len(c.Members)
	matrix = make([][]int, len(rows))
	for i := range matrix {
		matrix[i] = make([]int, k+1)
	}
	for i, l := range labels {
		if l == "" {
			continue
		}
		col := assign[i]
		if col < 0 {
			col = k
		}
		matrix[idx[l]][col]++
	}
	return rows, matrix, nil
}
