package eval

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestHungarianSmall(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: row0→col1 (1), row1→col0 (2), row2→col2 (2) = 5.
	total := 0.0
	seen := map[int]bool{}
	for i, j := range assign {
		total += cost[i][j]
		if seen[j] {
			t.Fatalf("column %d assigned twice: %v", j, assign)
		}
		seen[j] = true
	}
	if total != 5 {
		t.Fatalf("total cost = %v (assign %v), want 5", total, assign)
	}
}

func TestHungarianRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 1, 10, 10},
		{10, 10, 1, 10},
	}
	assign, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 || assign[1] != 2 {
		t.Fatalf("assign = %v, want [1 2]", assign)
	}
}

func TestHungarianErrors(t *testing.T) {
	if _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := Hungarian([][]float64{{1}, {2}}); err == nil {
		t.Error("rows > cols should fail")
	}
	if _, err := Hungarian([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN cost should fail")
	}
	if got, err := Hungarian(nil); err != nil || got != nil {
		t.Error("empty matrix should return nil, nil")
	}
}

// TestHungarianMatchesBruteForce compares against exhaustive search on
// random square matrices up to 6×6.
func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	var bruteBest float64
	var permute func(cost [][]float64, used []bool, row int, acc float64)
	permute = func(cost [][]float64, used []bool, row int, acc float64) {
		if acc >= bruteBest {
			return
		}
		if row == len(cost) {
			bruteBest = acc
			return
		}
		for j := range used {
			if !used[j] {
				used[j] = true
				permute(cost, used, row+1, acc+cost[row][j])
				used[j] = false
			}
		}
	}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.IntN(50))
			}
		}
		bruteBest = math.Inf(1)
		permute(cost, make([]bool, n), 0, 0)
		assign, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for i, j := range assign {
			total += cost[i][j]
		}
		if math.Abs(total-bruteBest) > 1e-9 {
			t.Fatalf("trial %d: Hungarian total %v, brute force %v (cost %v)", trial, total, bruteBest, cost)
		}
	}
}

func TestMaxAssignmentTallMatrix(t *testing.T) {
	// More rows (clusters) than columns (labels): extra rows unassigned.
	w := [][]float64{
		{5, 0},
		{0, 7},
		{1, 1},
	}
	assign, err := MaxAssignment(w)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 0 || assign[1] != 1 || assign[2] != -1 {
		t.Fatalf("assign = %v, want [0 1 -1]", assign)
	}
}

func TestFromAssignmentsRoundTrip(t *testing.T) {
	assign := []int{0, 1, 0, -1, 2}
	c := FromAssignments(assign)
	if c.N != 5 || len(c.Members) != 3 {
		t.Fatalf("clustering = %+v", c)
	}
	got := c.Assignments()
	for i := range assign {
		if got[i] != assign[i] {
			t.Fatalf("Assignments = %v, want %v", got, assign)
		}
	}
}

func TestValidate(t *testing.T) {
	c := Clustering{N: 2, Members: [][]int{{0, 5}}}
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range member should fail validation")
	}
}

func TestEvaluatePerfectClustering(t *testing.T) {
	labels := []string{"x", "x", "y", "y", "y"}
	c := FromAssignments([]int{0, 0, 1, 1, 1})
	rep, err := Evaluate(c, labels)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy != 1 {
		t.Fatalf("Accuracy = %v, want 1", rep.Accuracy)
	}
	if rep.MacroPrecision != 1 || rep.MacroRecall != 1 {
		t.Fatalf("macro P/R = %v/%v, want 1/1", rep.MacroPrecision, rep.MacroRecall)
	}
	if rep.NumClusters != 2 || rep.Unclustered != 0 {
		t.Fatalf("report = %+v", rep)
	}
	for _, pr := range rep.PerLabel {
		if pr.Precision != 1 || pr.Recall != 1 {
			t.Fatalf("per-label %+v", pr)
		}
	}
}

func TestEvaluatePermutationInvariant(t *testing.T) {
	// Renumbering clusters must not change any quality measure.
	labels := []string{"x", "x", "y", "y", "y", "z"}
	c1 := FromAssignments([]int{0, 0, 1, 1, 1, 2})
	c2 := FromAssignments([]int{2, 2, 0, 0, 0, 1})
	r1, err := Evaluate(c1, labels)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(c2, labels)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Accuracy != r2.Accuracy || r1.MacroPrecision != r2.MacroPrecision {
		t.Fatalf("not permutation invariant: %+v vs %+v", r1, r2)
	}
	if r1.Accuracy != 1 {
		t.Fatalf("Accuracy = %v, want 1", r1.Accuracy)
	}
}

func TestEvaluateImperfect(t *testing.T) {
	// Family x: sequences 0,1,2; family y: 3,4,5. Cluster 0 = {0,1,3},
	// cluster 1 = {4,5}; sequence 2 unclustered.
	labels := []string{"x", "x", "x", "y", "y", "y"}
	c := Clustering{N: 6, Members: [][]int{{0, 1, 3}, {4, 5}}}
	rep, err := Evaluate(c, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Matching: cluster0→x (overlap 2), cluster1→y (overlap 2);
	// accuracy = 4/6.
	if math.Abs(rep.Accuracy-4.0/6) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 2/3", rep.Accuracy)
	}
	if rep.Unclustered != 1 {
		t.Fatalf("Unclustered = %d, want 1", rep.Unclustered)
	}
	var x, y PR
	for _, pr := range rep.PerLabel {
		switch pr.Label {
		case "x":
			x = pr
		case "y":
			y = pr
		}
	}
	if math.Abs(x.Precision-2.0/3) > 1e-12 || math.Abs(x.Recall-2.0/3) > 1e-12 {
		t.Fatalf("x P/R = %v/%v, want 2/3 each", x.Precision, x.Recall)
	}
	if y.Precision != 1 || math.Abs(y.Recall-2.0/3) > 1e-12 {
		t.Fatalf("y P/R = %v/%v, want 1 and 2/3", y.Precision, y.Recall)
	}
}

func TestEvaluateOutliersExcluded(t *testing.T) {
	// Unlabeled sequences (planted outliers) must not hurt accuracy even
	// when clustered.
	labels := []string{"x", "x", "", ""}
	c := Clustering{N: 4, Members: [][]int{{0, 1, 2, 3}}}
	rep, err := Evaluate(c, labels)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy != 1 {
		t.Fatalf("Accuracy = %v, want 1 (outliers excluded)", rep.Accuracy)
	}
	pr := rep.PerLabel[0]
	if pr.Precision != 1 || pr.Assigned != 2 {
		t.Fatalf("precision should count labeled members only: %+v", pr)
	}
}

func TestEvaluateOverlappingClusters(t *testing.T) {
	// A sequence may belong to several clusters (CLUSEQ's model); it is
	// correct when it appears in its family's matched cluster.
	labels := []string{"x", "x", "y", "y"}
	c := Clustering{N: 4, Members: [][]int{{0, 1, 2}, {2, 3}}}
	rep, err := Evaluate(c, labels)
	if err != nil {
		t.Fatal(err)
	}
	// cluster0→x, cluster1→y: all four correct despite the overlap on 2.
	if rep.Accuracy != 1 {
		t.Fatalf("Accuracy = %v, want 1", rep.Accuracy)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(Clustering{N: 2}, []string{"x"}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Evaluate(Clustering{N: 1, Members: [][]int{{3}}}, []string{"x"}); err == nil {
		t.Error("invalid clustering should fail")
	}
}

func TestEvaluateNoLabelsNoClusters(t *testing.T) {
	rep, err := Evaluate(Clustering{N: 2}, []string{"", ""})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy != 0 || rep.NumClusters != 0 {
		t.Fatalf("degenerate report = %+v", rep)
	}
}

func TestF1(t *testing.T) {
	pr := PR{Precision: 0.5, Recall: 1}
	if got := pr.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("F1 = %v, want 2/3", got)
	}
	if got := (PR{}).F1(); got != 0 {
		t.Fatalf("zero F1 = %v", got)
	}
	perfect := PR{Precision: 1, Recall: 1}
	if got := perfect.F1(); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
}

func TestPurity(t *testing.T) {
	labels := []string{"x", "x", "y", "y", ""}
	// Cluster 0 pure x, cluster 1 mixed (1x of... members 2,3 both y plus
	// outlier 4 (ignored).
	c := Clustering{N: 5, Members: [][]int{{0, 1}, {2, 3, 4}}}
	got, err := Purity(c, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("Purity = %v, want 1 (outliers ignored)", got)
	}
	// Mixed cluster: {x, x, y} majority 2/3; total weighted: (2+2)/(2+3)?
	// cluster0 {0,1} majority 2; cluster1 {1? no: members {1,2,3}: labels
	// x,y,y majority 2. purity = (2+2)/(2+3) = 0.8.
	c = Clustering{N: 5, Members: [][]int{{0, 1}, {1, 2, 3}}}
	got, err = Purity(c, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Purity = %v, want 0.8", got)
	}
	if _, err := Purity(Clustering{N: 1}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := Purity(Clustering{N: 1, Members: [][]int{{5}}}, []string{"a"}); err == nil {
		t.Fatal("invalid clustering should fail")
	}
	got, err = Purity(Clustering{N: 1}, []string{""})
	if err != nil || got != 0 {
		t.Fatalf("degenerate purity = %v, %v", got, err)
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if got, _ := AdjustedRandIndex(a, a); got != 1 {
		t.Fatalf("ARI(self) = %v, want 1", got)
	}
	b := []int{5, 5, 9, 9} // same partition, renumbered
	if got, _ := AdjustedRandIndex(a, b); got != 1 {
		t.Fatalf("ARI(renumbered) = %v, want 1", got)
	}
	// Complete disagreement on 4 points in 2v2 blocks.
	c := []int{0, 1, 0, 1}
	got, _ := AdjustedRandIndex(a, c)
	if got >= 0.5 {
		t.Fatalf("ARI(crossed) = %v, want low", got)
	}
	if _, err := AdjustedRandIndex([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if got, _ := AdjustedRandIndex(nil, nil); got != 1 {
		t.Fatalf("ARI(empty) = %v, want 1", got)
	}
}

func TestAdjustedRandIndexUnclustered(t *testing.T) {
	// −1 entries are singletons: two identical vectors with −1s still
	// agree perfectly.
	a := []int{0, 0, -1, 1, -1}
	if got, _ := AdjustedRandIndex(a, a); got != 1 {
		t.Fatalf("ARI with -1 = %v, want 1", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	labels := []string{"x", "x", "y", ""}
	c := Clustering{N: 4, Members: [][]int{{0}, {1, 2}}}
	rows, m, err := ConfusionMatrix(c, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0] != "x" || rows[1] != "y" {
		t.Fatalf("rows = %v", rows)
	}
	// x: one in cluster 0, one in cluster 1, none unclustered.
	if m[0][0] != 1 || m[0][1] != 1 || m[0][2] != 0 {
		t.Fatalf("x row = %v", m[0])
	}
	// y: one in cluster 1.
	if m[1][0] != 0 || m[1][1] != 1 || m[1][2] != 0 {
		t.Fatalf("y row = %v", m[1])
	}
	if _, _, err := ConfusionMatrix(Clustering{N: 1}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}
