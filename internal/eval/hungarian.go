// Package eval provides the clustering-quality measures the paper reports:
// per-family precision and recall (§6.1), the percentage of correctly
// labeled sequences (Table 2), plus the adjusted Rand index as a
// label-free cross-check. Clusters are matched one-to-one to ground-truth
// families with the Hungarian algorithm so that "correctly labeled" is
// well defined even when cluster numbering is arbitrary.
package eval

import (
	"fmt"
	"math"
)

// Hungarian solves the assignment problem: given an n×m cost matrix with
// n ≤ m, it returns, for each row, the column assigned to it so that the
// total cost is minimal. It runs in O(n²·m) time (the potentials-based
// algorithm).
func Hungarian(cost [][]float64) ([]int, error) {
	n := len(cost)
	if n == 0 {
		return nil, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, fmt.Errorf("eval: Hungarian needs cols ≥ rows, got %d×%d", n, m)
	}
	for i := range cost {
		if len(cost[i]) != m {
			return nil, fmt.Errorf("eval: ragged cost matrix at row %d", i)
		}
		for j := range cost[i] {
			if math.IsNaN(cost[i][j]) {
				return nil, fmt.Errorf("eval: NaN cost at (%d,%d)", i, j)
			}
		}
	}

	const inf = math.MaxFloat64
	// 1-indexed potentials; p[j] is the row assigned to column j.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign, nil
}

// MaxAssignment maximizes total weight instead of minimizing cost, padding
// a wide-or-tall weight matrix to the shape Hungarian requires. It returns
// rowToCol with −1 for unassigned rows (possible when rows > cols).
func MaxAssignment(weight [][]float64) ([]int, error) {
	n := len(weight)
	if n == 0 {
		return nil, nil
	}
	m := len(weight[0])
	max := 0.0
	for i := range weight {
		if len(weight[i]) != m {
			return nil, fmt.Errorf("eval: ragged weight matrix at row %d", i)
		}
		for _, w := range weight[i] {
			if w > max {
				max = w
			}
		}
	}
	// Pad to square so every row/col can be left unmatched at zero weight.
	dim := n
	if m > dim {
		dim = m
	}
	cost := make([][]float64, dim)
	for i := range cost {
		cost[i] = make([]float64, dim)
		for j := range cost[i] {
			if i < n && j < m {
				cost[i][j] = max - weight[i][j]
			} else {
				cost[i][j] = max // dummy: equivalent to weight 0
			}
		}
	}
	assign, err := Hungarian(cost)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		if assign[i] < m {
			out[i] = assign[i]
		} else {
			out[i] = -1
		}
	}
	return out, nil
}
