package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"cluseq/internal/baseline"
	"cluseq/internal/datagen"
	"cluseq/internal/distance"
	"cluseq/internal/eval"
	"cluseq/internal/seq"
)

// Table2 reproduces the paper's model comparison on the protein workload:
// percentage of correctly labeled sequences and response time for CLUSEQ,
// edit distance (ED), edit distance with block operations (EDBO), hidden
// Markov models (HMM), and the q-gram approach.
type Table2 struct {
	Scale Scale
	Rows  []Table2Row
}

// Table2Row is one model's outcome.
type Table2Row struct {
	Model    string
	Accuracy float64
	Elapsed  time.Duration
}

// Row returns the named model's row, or false.
func (t *Table2) Row(model string) (Table2Row, bool) {
	for _, r := range t.Rows {
		if r.Model == model {
			return r, true
		}
	}
	return Table2Row{}, false
}

func (t *Table2) String() string { return render(t) }

// RunTable2 executes the five models on the simulated protein database.
func RunTable2(sc Scale, seed uint64) (*Table2, error) {
	db, err := datagen.ProteinDB(proteinConfig(sc, seed))
	if err != nil {
		return nil, err
	}
	labels := labelsOf(db)
	families := len(db.Labels())
	out := &Table2{Scale: sc}
	rng := rand.New(rand.NewPCG(seed, seed^0x7ab1e2))

	// CLUSEQ — intentionally started, like the paper, with the wrong
	// number of clusters (k=10, not 30) and a non-optimal initial t.
	cfg := proteinCluseqConfig(sc, seed)
	_, rep, elapsed, err := runCLUSEQ(db, cfg)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, Table2Row{"CLUSEQ", rep.Accuracy, elapsed})

	timeAssign := func(model string, f func() ([]int, error)) error {
		start := time.Now()
		assign, err := f()
		took := time.Since(start)
		if err != nil {
			return fmt.Errorf("%s: %w", model, err)
		}
		r, err := eval.Evaluate(eval.FromAssignments(assign), labels)
		if err != nil {
			return fmt.Errorf("%s: %w", model, err)
		}
		out.Rows = append(out.Rows, Table2Row{model, r.Accuracy, took})
		return nil
	}

	symbolsAt := func(i int) []seq.Symbol { return db.Sequences[i].Symbols }

	// ED: k-medoids over normalized Levenshtein.
	if err := timeAssign("ED", func() ([]int, error) {
		d := baseline.DistanceMatrix(db.Len(), func(i, j int) float64 {
			return distance.NormalizedLevenshtein(symbolsAt(i), symbolsAt(j))
		}, 0)
		return baseline.KMedoids(d, families, 25, rng)
	}); err != nil {
		return nil, err
	}

	// EDBO: k-medoids over the greedy block edit distance.
	if err := timeAssign("EDBO", func() ([]int, error) {
		d := baseline.DistanceMatrix(db.Len(), func(i, j int) float64 {
			return distance.NormalizedBlockEditDistance(symbolsAt(i), symbolsAt(j), distance.BlockConfig{MinBlock: 4})
		}, 0)
		return baseline.KMedoids(d, families, 25, rng)
	}); err != nil {
		return nil, err
	}

	// HMM: likelihood mixture. The paper uses 30 states; smaller scales
	// use fewer to keep Baum-Welch affordable.
	states := 30
	rounds, bwIters := 5, 8
	switch sc {
	case ScaleTiny:
		states, rounds, bwIters = 10, 5, 6
	case ScaleSmall:
		states, rounds, bwIters = 14, 5, 7
	}
	if err := timeAssign("HMM", func() ([]int, error) {
		return baseline.HMMClusters(db, families, states, rounds, bwIters, rng)
	}); err != nil {
		return nil, err
	}

	// q-gram: spherical k-means over q=3 profiles (the paper's q).
	if err := timeAssign("q-gram", func() ([]int, error) {
		return baseline.QGramKMeans(db, families, 3, 40, rng)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Table3 reproduces the per-family precision/recall table for the ten
// families the paper names.
type Table3 struct {
	Scale Scale
	Rows  []Table3Row
}

// Table3Row is one family's outcome.
type Table3Row struct {
	Family    string
	Size      int
	Precision float64
	Recall    float64
}

func (t *Table3) String() string { return render(t) }

// RunTable3 clusters the protein workload with CLUSEQ and reports the ten
// named Table 3 families.
func RunTable3(sc Scale, seed uint64) (*Table3, error) {
	db, err := datagen.ProteinDB(proteinConfig(sc, seed))
	if err != nil {
		return nil, err
	}
	cfg := proteinCluseqConfig(sc, seed)
	_, rep, _, err := runCLUSEQ(db, cfg)
	if err != nil {
		return nil, err
	}
	counts := db.LabelCounts()
	named := datagen.PaperFamilyNames()[:10]
	out := &Table3{Scale: sc}
	for _, fam := range named {
		for _, pr := range rep.PerLabel {
			if pr.Label == fam {
				out.Rows = append(out.Rows, Table3Row{
					Family: fam, Size: counts[fam],
					Precision: pr.Precision, Recall: pr.Recall,
				})
			}
		}
	}
	return out, nil
}

// Table4 reproduces the language clustering experiment.
type Table4 struct {
	Scale Scale
	Rows  []Table4Row
}

// Table4Row is one language's outcome.
type Table4Row struct {
	Language  string
	Precision float64
	Recall    float64
}

// Row returns the named language's row, or false.
func (t *Table4) Row(lang string) (Table4Row, bool) {
	for _, r := range t.Rows {
		if r.Language == lang {
			return r, true
		}
	}
	return Table4Row{}, false
}

func (t *Table4) String() string { return render(t) }

// RunTable4 clusters the simulated multilingual sentences with CLUSEQ.
func RunTable4(sc Scale, seed uint64) (*Table4, error) {
	db, err := datagen.LanguageDB(languageConfig(sc, seed))
	if err != nil {
		return nil, err
	}
	cfg := languageCluseqConfig(sc, seed)
	_, rep, _, err := runCLUSEQ(db, cfg)
	if err != nil {
		return nil, err
	}
	out := &Table4{Scale: sc}
	for _, lang := range datagen.LanguageNames {
		for _, pr := range rep.PerLabel {
			if pr.Label == lang {
				out.Rows = append(out.Rows, Table4Row{lang, pr.Precision, pr.Recall})
			}
		}
	}
	return out, nil
}
