package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// Tabular is implemented by every experiment result: a title, a header
// row, and data rows — the same content String renders, in
// machine-readable form for plotting.
type Tabular interface {
	Table() (title string, header []string, rows [][]string)
}

// WriteCSV writes the result's table as CSV (header first, no title row).
func WriteCSV(w io.Writer, t Tabular) error {
	_, header, rows := t.Table()
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// render is the shared String implementation over Table.
func render(t Tabular) string {
	title, header, rows := t.Table()
	return renderTable(title, header, rows)
}

// Table implementations for every result type. Numbers are emitted with
// the same formatting the text tables use.

// Table returns the Table 2 contents.
func (t *Table2) Table() (string, []string, [][]string) {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{r.Model, pct(r.Accuracy), secs(r.Elapsed)}
	}
	return fmt.Sprintf("Table 2: model comparison (scale=%s)", t.Scale),
		[]string{"model", "correctly_labeled", "response_time"}, rows
}

// Table returns the Table 3 contents.
func (t *Table3) Table() (string, []string, [][]string) {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{r.Family, itoa(r.Size), pct(r.Precision), pct(r.Recall)}
	}
	return fmt.Sprintf("Table 3: per-family precision/recall (scale=%s)", t.Scale),
		[]string{"family", "size", "precision", "recall"}, rows
}

// Table returns the Table 4 contents.
func (t *Table4) Table() (string, []string, [][]string) {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{r.Language, pct(r.Precision), pct(r.Recall)}
	}
	return fmt.Sprintf("Table 4: language clustering (scale=%s)", t.Scale),
		[]string{"language", "precision", "recall"}, rows
}

// Table returns the Figure 4 contents.
func (f *Figure4) Table() (string, []string, [][]string) {
	rows := make([][]string, len(f.Rows))
	for i, r := range f.Rows {
		budget := "unlimited"
		if r.MaxPSTBytes > 0 {
			budget = bytesMB(r.MaxPSTBytes)
		}
		rows[i] = []string{budget, pct(r.Precision), pct(r.Recall), secs(r.Elapsed)}
	}
	return fmt.Sprintf("Figure 4: effect of PST memory budget (scale=%s)", f.Scale),
		[]string{"pst_budget", "precision", "recall", "response_time"}, rows
}

// Table returns the Figure 5 contents.
func (f *Figure5) Table() (string, []string, [][]string) {
	rows := make([][]string, len(f.Rows))
	for i, r := range f.Rows {
		rows[i] = []string{itoa(r.SampleFactor), pct(r.Precision), pct(r.Recall), secs(r.Elapsed)}
	}
	return fmt.Sprintf("Figure 5: effect of sample factor m/k (scale=%s)", f.Scale),
		[]string{"m_over_k", "precision", "recall", "response_time"}, rows
}

// Table returns the Table 5 contents.
func (t *Table5) Table() (string, []string, [][]string) {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{itoa(r.InitialK), itoa(r.FinalK), secs(r.Elapsed), pct(r.Precision), pct(r.Recall)}
	}
	return fmt.Sprintf("Table 5: effect of initial cluster count (scale=%s, true k=%d)", t.Scale, t.TrueClusters),
		[]string{"init_k", "final_k", "time", "precision", "recall"}, rows
}

// Table returns the Table 6 contents.
func (t *Table6) Table() (string, []string, [][]string) {
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{f2(r.InitialT), f2(r.FinalT), secs(r.Elapsed), pct(r.Precision), pct(r.Recall)}
	}
	return fmt.Sprintf("Table 6: effect of initial similarity threshold (scale=%s)", t.Scale),
		[]string{"init_t", "final_t", "time", "precision", "recall"}, rows
}

// Table returns the order study contents.
func (o *OrderStudy) Table() (string, []string, [][]string) {
	rows := make([][]string, len(o.Rows))
	for i, r := range o.Rows {
		rows[i] = []string{r.Order, pct(r.Accuracy), secs(r.Elapsed)}
	}
	return fmt.Sprintf("Order study (§6.3): sequence examination order (scale=%s)", o.Scale),
		[]string{"order", "accuracy", "response_time"}, rows
}

// Table returns the Figure 6 contents for one axis.
func (f *Figure6) Table() (string, []string, [][]string) {
	rows := make([][]string, len(f.Rows))
	for i, r := range f.Rows {
		rows[i] = []string{itoa(r.X), secs(r.Elapsed), pct(r.Accuracy)}
	}
	return fmt.Sprintf("Figure 6 (%s axis): scalability (scale=%s)", f.Axis, f.Scale),
		[]string{f.Axis, "response_time", "accuracy"}, rows
}

// Table returns the reclustering benchmark contents.
func (r *ReclusterBench) Table() (string, []string, [][]string) {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cache := "on"
		if row.CacheOff {
			cache = "off"
		}
		snapshot := "on"
		if row.SnapshotOff {
			snapshot = "off"
		}
		rows[i] = []string{itoa(row.Workers), cache, snapshot, itoa(row.Iterations),
			itoa(row.CacheHits), itoa(row.CacheMisses), pct(row.Accuracy), secs(row.Elapsed)}
	}
	return fmt.Sprintf("Recluster benchmark: similarity cache × snapshots × workers (scale=%s)", r.Scale),
		[]string{"workers", "cache", "snapshot", "iterations", "cache_hits", "cache_misses", "accuracy", "time"}, rows
}

// Table returns the similarity benchmark contents.
func (s *SimilarityBench) Table() (string, []string, [][]string) {
	rows := make([][]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = []string{itoa(r.AlphabetSize), itoa(r.SeqLen), itoa(r.TreeNodes),
			micros(r.TreePerScan), micros(r.SnapshotPerScan), f2(r.Speedup),
			f2(r.AllocsPerScan), itoa(r.SnapshotBytes)}
	}
	return fmt.Sprintf("Similarity benchmark: tree scan vs compiled snapshot (scale=%s)", s.Scale),
		[]string{"alphabet", "seq_len", "tree_nodes", "tree_us_per_scan", "snapshot_us_per_scan", "speedup",
			"allocs_per_scan", "snapshot_bytes"}, rows
}
