package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestWriteCSV(t *testing.T) {
	res := &Table2{
		Scale: ScaleTiny,
		Rows: []Table2Row{
			{Model: "CLUSEQ", Accuracy: 0.825, Elapsed: 1500 * time.Millisecond},
			{Model: "ED", Accuracy: 0.23, Elapsed: 4 * time.Second},
		},
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "model,correctly_labeled,response_time" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "CLUSEQ,82.5%,1.50s" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestStringMatchesTable(t *testing.T) {
	// String() must render exactly the Table() contents for every type —
	// spot check one; all route through render().
	res := &Figure6{
		Scale: ScaleTiny,
		Axis:  "sequences",
		Rows:  []Figure6Row{{X: 100, Elapsed: time.Second, Accuracy: 0.9}},
	}
	s := res.String()
	for _, want := range []string{"sequences", "100", "1.00s", "90.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}
