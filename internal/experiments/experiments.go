// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6), shared by cmd/experiments and the repository's
// benchmarks. Each runner builds its workload with internal/datagen,
// executes CLUSEQ (and, for Table 2, the four baselines), and returns a
// result struct that renders a paper-style table.
//
// Workloads come in three scales: the paper's exact parameters
// (ScalePaper: 100,000 sequences × 1000 symbols — hours of compute), a
// laptop scale preserving every shape (ScaleSmall, the cmd/experiments
// default), and a seconds-scale for `go test -bench` (ScaleTiny). The
// comparison targets are shapes, not absolute numbers: who wins, by what
// rough factor, and how curves grow.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"cluseq/internal/core"
	"cluseq/internal/datagen"
	"cluseq/internal/eval"
	"cluseq/internal/obs"
	"cluseq/internal/seq"
)

// Scale selects workload sizes.
type Scale int

const (
	// ScaleTiny completes each experiment in seconds (benchmarks).
	ScaleTiny Scale = iota
	// ScaleSmall completes the full suite in minutes (default).
	ScaleSmall
	// ScalePaper uses the paper's exact workload parameters.
	ScalePaper
)

// ParseScale converts a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "paper", "full":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (tiny|small|paper)", s)
}

// MarshalJSON renders the scale by name, for the JSON perf records
// written by cmd/experiments.
func (s Scale) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// proteinConfig returns the simulated SWISS-PROT workload per scale.
func proteinConfig(s Scale, seed uint64) datagen.ProteinConfig {
	switch s {
	case ScaleTiny:
		return datagen.ProteinConfig{Scale: 0.06, MinLength: 100, MaxLength: 350, Seed: seed}
	case ScaleSmall:
		return datagen.ProteinConfig{Scale: 0.12, MinLength: 100, MaxLength: 400, Seed: seed}
	default:
		return datagen.ProteinConfig{Scale: 1, Seed: seed} // paper: 8000 × 100–400
	}
}

// syntheticConfig returns the §6.2-6.4 synthetic workload per scale.
func syntheticConfig(s Scale, seed uint64) datagen.SyntheticConfig {
	switch s {
	case ScaleTiny:
		return datagen.SyntheticConfig{
			NumSequences: 200, AvgLength: 100, AlphabetSize: 20,
			NumClusters: 5, OutlierFrac: 0.05, Seed: seed,
		}
	case ScaleSmall:
		return datagen.SyntheticConfig{
			NumSequences: 1000, AvgLength: 200, AlphabetSize: 50,
			NumClusters: 10, OutlierFrac: 0.05, Seed: seed,
		}
	default: // paper §6.2: 100,000 × 1000, 100 symbols, 50 clusters
		return datagen.SyntheticConfig{
			NumSequences: 100000, AvgLength: 1000, AlphabetSize: 100,
			NumClusters: 50, OutlierFrac: 0.05, Seed: seed,
		}
	}
}

// languageConfig returns the Table 4 workload per scale.
func languageConfig(s Scale, seed uint64) datagen.LanguageConfig {
	switch s {
	case ScaleTiny:
		return datagen.LanguageConfig{SentencesPerLanguage: 80, NoiseSentences: 15, Seed: seed}
	case ScaleSmall:
		return datagen.LanguageConfig{SentencesPerLanguage: 250, NoiseSentences: 40, Seed: seed}
	default: // paper: 600 per language + 100 noise
		return datagen.LanguageConfig{SentencesPerLanguage: 600, NoiseSentences: 100, Seed: seed}
	}
}

// cluseqConfig scales the algorithm parameters with the workload: the
// paper's c=30 significance presumes family statistics from hundreds of
// sequences; smaller workloads need proportionally smaller significance
// and consolidation minima.
//
// The synthetic workload's clusters are globally distinct sources, so it
// runs the paper's exact fixed-significance estimator; the protein and
// language workloads carry local (motif/letter-pattern) signal and use
// the adaptive significance default (see core.Config.FixedSignificance).
func cluseqConfig(s Scale, seed uint64) core.Config {
	switch s {
	case ScaleTiny:
		return core.Config{
			Significance: 20, MinDistinct: 3,
			SimilarityThreshold: 1.03, MaxDepth: 5,
			MaxIterations: 25, Seed: seed,
			FixedSignificance: true,
		}
	case ScaleSmall:
		return core.Config{
			Significance: 25, MinDistinct: 5,
			SimilarityThreshold: 1.5, MaxDepth: 6,
			MaxIterations: 40, Seed: seed,
			FixedSignificance: true,
		}
	default:
		return core.Config{
			Significance: 30, MinDistinct: 30, // the paper's c
			SimilarityThreshold: 1.5, MaxDepth: 8,
			MaxIterations: 60, Seed: seed,
			FixedSignificance: true,
		}
	}
}

// proteinCluseqConfig tunes CLUSEQ for the protein workload, whose family
// signal is local: conserved motifs plus a mild composition bias.
func proteinCluseqConfig(s Scale, seed uint64) core.Config {
	cfg := core.Config{
		InitialClusters:     10, // the paper's deliberately wrong initial k
		MinDistinct:         3,
		SimilarityThreshold: 1.5, MaxDepth: 6,
		MaxIterations: 30, Seed: seed,
	}
	switch s {
	case ScaleTiny:
		cfg.Significance = 8
	case ScaleSmall:
		cfg.Significance = 12
	default:
		cfg.Significance = 30
		cfg.MinDistinct = 30
		cfg.MaxIterations = 60
	}
	return cfg
}

// languageCluseqConfig tunes CLUSEQ for the Table 4 sentences: short
// sequences, local letter-pattern signal, and languages of fairly
// different intrinsic predictability — which favors starting the
// threshold high and letting §4.6 descend to the separating level.
func languageCluseqConfig(s Scale, seed uint64) core.Config {
	cfg := core.Config{
		InitialClusters: 1, MinDistinct: 3,
		SimilarityThreshold: 2.5, MaxDepth: 4,
		MaxIterations: 30, Seed: seed,
	}
	switch s {
	case ScaleTiny:
		cfg.Significance = 8
	case ScaleSmall:
		cfg.Significance = 12
	default:
		cfg.Significance = 30
		cfg.MinDistinct = 30
	}
	return cfg
}

// obsRegistry and obsTracer, when set via Instrument, are attached to
// every clustering run the experiments launch. Package-level because
// the experiment runners build their core.Config internally; this is
// the single choke point all of them pass through.
var (
	obsRegistry *obs.Registry
	obsTracer   *obs.Tracer
)

// Instrument attaches a metrics registry and span tracer (either may be
// nil) to every subsequent clustering run. Not safe to call while
// experiments are running.
func Instrument(reg *obs.Registry, tr *obs.Tracer) {
	obsRegistry, obsTracer = reg, tr
}

// runCLUSEQ executes the core algorithm and evaluates it against the
// database's ground-truth labels.
func runCLUSEQ(db *seq.Database, cfg core.Config) (*core.Result, eval.Report, time.Duration, error) {
	cfg.Obs = obsRegistry
	cfg.Tracer = obsTracer
	start := time.Now()
	res, err := core.Cluster(db, cfg)
	elapsed := time.Since(start)
	if err != nil {
		return nil, eval.Report{}, elapsed, err
	}
	// Quality is reported on the primary (disjoint) view, the way the
	// paper's precision/recall tables treat cluster assignment.
	rep, err := eval.Evaluate(res.PrimaryClustering(), labelsOf(db))
	if err != nil {
		return nil, eval.Report{}, elapsed, err
	}
	return res, rep, elapsed, nil
}

func labelsOf(db *seq.Database) []string {
	out := make([]string, db.Len())
	for i, s := range db.Sequences {
		out[i] = s.Label
	}
	return out
}

// renderTable renders rows with a header through a tabwriter.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, row := range rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	return b.String()
}

func pct(v float64) string        { return fmt.Sprintf("%.1f%%", 100*v) }
func secs(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }
func f2(v float64) string         { return fmt.Sprintf("%.2f", v) }
func itoa(v int) string           { return fmt.Sprintf("%d", v) }
func bytesMB(v int) string        { return fmt.Sprintf("%.2fMB", float64(v)/(1<<20)) }
func micros(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
}
