package experiments

import (
	"strings"
	"testing"
)

// The experiment runners are exercised at ScaleTiny: the assertions target
// the paper's qualitative shapes (who wins, what converges, what stays
// flat), not absolute numbers.

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{
		"tiny": ScaleTiny, "small": ScaleSmall, "paper": ScalePaper,
		"PAPER": ScalePaper, "full": ScalePaper,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale should reject unknown scales")
	}
	if ScaleTiny.String() != "tiny" || ScalePaper.String() != "paper" {
		t.Error("Scale.String broken")
	}
	if Scale(99).String() == "" {
		t.Error("unknown Scale must still render")
	}
}

func TestRunTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all five models; skipped with -short")
	}
	res, err := RunTable2(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5 models", len(res.Rows))
	}
	cluseq, ok := res.Row("CLUSEQ")
	if !ok {
		t.Fatal("no CLUSEQ row")
	}
	ed, ok := res.Row("ED")
	if !ok {
		t.Fatal("no ED row")
	}
	// The paper's headline: CLUSEQ beats the edit distance decisively.
	if cluseq.Accuracy <= ed.Accuracy {
		t.Fatalf("CLUSEQ (%.2f) must beat ED (%.2f)", cluseq.Accuracy, ed.Accuracy)
	}
	if cluseq.Accuracy < 0.5 {
		t.Fatalf("CLUSEQ accuracy %.2f too low on the protein workload", cluseq.Accuracy)
	}
	// EDBO must cost more time than CLUSEQ (the paper's 13754s vs 144s;
	// the factor shrinks at tiny scale but the direction must hold).
	edbo, _ := res.Row("EDBO")
	if edbo.Elapsed <= cluseq.Elapsed {
		t.Fatalf("EDBO (%v) should be slower than CLUSEQ (%v)", edbo.Elapsed, cluseq.Elapsed)
	}
	if !strings.Contains(res.String(), "CLUSEQ") {
		t.Fatal("String() must render the model column")
	}
}

func TestRunTable3Shape(t *testing.T) {
	res, err := RunTable3(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want the 10 named families", len(res.Rows))
	}
	if res.Rows[0].Family != "ig" {
		t.Fatalf("first family = %s, want ig (paper order)", res.Rows[0].Family)
	}
	// Sizes must be sorted descending like the paper's table.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Size > res.Rows[i-1].Size {
			t.Fatalf("family sizes out of order at %d: %+v", i, res.Rows)
		}
	}
	// The large families must cluster reasonably even at tiny scale.
	for _, r := range res.Rows[:3] {
		if r.Recall < 0.5 {
			t.Fatalf("family %s recall %.2f too low", r.Family, r.Recall)
		}
	}
	_ = res.String()
}

func TestRunTable4Shape(t *testing.T) {
	res, err := RunTable4(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 languages", len(res.Rows))
	}
	for _, lang := range []string{"english", "chinese", "japanese"} {
		row, ok := res.Row(lang)
		if !ok {
			t.Fatalf("missing language %s", lang)
		}
		if row.Precision < 0.6 || row.Recall < 0.6 {
			t.Fatalf("%s P/R = %.2f/%.2f, want ≥ 0.6 each", lang, row.Precision, row.Recall)
		}
	}
	_ = res.String()
}

func TestRunFigure4Shape(t *testing.T) {
	res, err := RunFigure4(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(figure4Budgets(ScaleTiny)) {
		t.Fatalf("got %d rows, want %d budgets", len(res.Rows), len(figure4Budgets(ScaleTiny)))
	}
	// §6.2's claim: accuracy saturates — even the smallest budget stays
	// within a modest distance of the unlimited run.
	unlimited := res.Rows[len(res.Rows)-1]
	for _, r := range res.Rows {
		if r.Recall < unlimited.Recall-0.15 {
			t.Fatalf("budget %d recall %.2f collapsed vs unlimited %.2f", r.MaxPSTBytes, r.Recall, unlimited.Recall)
		}
	}
	_ = res.String()
}

func TestRunFigure5Shape(t *testing.T) {
	res, err := RunFigure5(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// Quality at the recommended m/k=5 must not trail the best by much.
	best := 0.0
	var atFive float64
	for _, r := range res.Rows {
		if r.Recall > best {
			best = r.Recall
		}
		if r.SampleFactor == 5 {
			atFive = r.Recall
		}
	}
	if atFive < best-0.1 {
		t.Fatalf("recall at m/k=5 (%.2f) trails best (%.2f)", atFive, best)
	}
	_ = res.String()
}

func TestRunTable5Shape(t *testing.T) {
	res, err := RunTable5(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// The paper's claim: the final cluster count lands near the truth
	// regardless of the initial k.
	for _, r := range res.Rows {
		if r.FinalK < res.TrueClusters-2 || r.FinalK > res.TrueClusters+3 {
			t.Fatalf("init k=%d converged to %d clusters (true %d)", r.InitialK, r.FinalK, res.TrueClusters)
		}
	}
	_ = res.String()
}

func TestRunTable6Shape(t *testing.T) {
	res, err := RunTable6(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// The paper's claim: the final t converges to (nearly) the same value
	// from every starting point.
	lo, hi := res.Rows[0].FinalT, res.Rows[0].FinalT
	for _, r := range res.Rows {
		if r.FinalT < lo {
			lo = r.FinalT
		}
		if r.FinalT > hi {
			hi = r.FinalT
		}
	}
	if hi/lo > 1.2 {
		t.Fatalf("final thresholds too spread: [%v, %v]", lo, hi)
	}
	_ = res.String()
}

func TestRunOrderStudyShape(t *testing.T) {
	res, err := RunOrderStudy(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	fixed, ok := res.Row("fixed")
	if !ok || fixed.Accuracy < 0.5 {
		t.Fatalf("fixed order accuracy %.2f too low", fixed.Accuracy)
	}
	_ = res.String()
}

func TestRunOutlierStudyShape(t *testing.T) {
	res, err := RunOutlierStudy(ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 fractions", len(res.Rows))
	}
	// §6.1's claim: accuracy immune to the outlier fraction. Allow modest
	// variation at tiny scale.
	lo, hi := 1.0, 0.0
	for _, r := range res.Rows {
		if r.Accuracy < lo {
			lo = r.Accuracy
		}
		if r.Accuracy > hi {
			hi = r.Accuracy
		}
		if r.OutliersRejected < 0.5 {
			t.Fatalf("frac %.2f: only %.0f%% of outliers rejected", r.OutlierFrac, 100*r.OutliersRejected)
		}
	}
	if hi-lo > 0.25 {
		t.Fatalf("accuracy varies too much with outliers: [%.2f, %.2f]", lo, hi)
	}
	_ = res.String()
}

func TestRunFigure6Shapes(t *testing.T) {
	for _, axis := range Figure6Axes {
		res, err := RunFigure6(ScaleTiny, axis, 1)
		if err != nil {
			t.Fatalf("%s: %v", axis, err)
		}
		if len(res.Rows) < 3 {
			t.Fatalf("%s: only %d sweep points", axis, len(res.Rows))
		}
		_ = res.String()
	}
	if _, err := RunFigure6(ScaleTiny, "bogus", 1); err == nil {
		t.Fatal("unknown axis should fail")
	}
}

// TestFigure6SequencesRoughlyLinear asserts §6.4's headline shape: time
// grows with the number of sequences and does not blow up super-linearly.
func TestFigure6SequencesRoughlyLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	res, err := RunFigure6(ScaleTiny, "sequences", 1)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Elapsed <= first.Elapsed {
		t.Skipf("timing noise: %v for %d seqs vs %v for %d", first.Elapsed, first.X, last.Elapsed, last.X)
	}
	nRatio := float64(last.X) / float64(first.X)
	tRatio := last.Elapsed.Seconds() / first.Elapsed.Seconds()
	// Allow generous headroom over linear for constant factors and noise.
	if tRatio > nRatio*nRatio {
		t.Fatalf("time ratio %.1f vs size ratio %.1f: super-quadratic growth", tRatio, nRatio)
	}
}
