package experiments

import (
	"time"

	"cluseq/internal/datagen"
)

// ReclusterBench measures the two-phase reclustering engine on the
// synthetic workload: similarity cache on/off × compiled scoring
// snapshots on/off × worker counts, with the per-run cache hit/miss
// totals. It seeds the repo's performance trajectory — cmd/experiments
// serializes it to BENCH_recluster.json so successive PRs can diff the
// numbers.
type ReclusterBench struct {
	Scale Scale
	Rows  []ReclusterBenchRow
}

// ReclusterBenchRow is one configuration's outcome.
type ReclusterBenchRow struct {
	Workers     int
	CacheOff    bool
	SnapshotOff bool
	Iterations  int
	CacheHits   int
	CacheMisses int
	Accuracy    float64
	Elapsed     time.Duration
}

func (r *ReclusterBench) String() string { return render(r) }

// reclusterBenchWorkers lists the worker counts the benchmark crosses
// with the cache switch.
var reclusterBenchWorkers = []int{1, 4}

// RunReclusterBench runs the cache × snapshots × workers grid. Every
// cell clusters the same database with the same seed, so memberships
// and thresholds are identical across the grid (asserted by the
// determinism, cache-correctness, and snapshot-correctness tests); only
// time and cache traffic may differ.
func RunReclusterBench(sc Scale, seed uint64) (*ReclusterBench, error) {
	db, err := datagen.SyntheticDB(syntheticConfig(sc, seed))
	if err != nil {
		return nil, err
	}
	out := &ReclusterBench{Scale: sc}
	for _, workers := range reclusterBenchWorkers {
		for _, cacheOff := range []bool{false, true} {
			for _, snapshotOff := range []bool{false, true} {
				cfg := cluseqConfig(sc, seed)
				cfg.Workers = workers
				cfg.CacheOff = cacheOff
				cfg.SnapshotOff = snapshotOff
				res, rep, elapsed, err := runCLUSEQ(db, cfg)
				if err != nil {
					return nil, err
				}
				row := ReclusterBenchRow{
					Workers:     workers,
					CacheOff:    cacheOff,
					SnapshotOff: snapshotOff,
					Iterations:  res.Iterations,
					Accuracy:    rep.Accuracy,
					Elapsed:     elapsed,
				}
				for _, tr := range res.Trace {
					row.CacheHits += tr.CacheHits
					row.CacheMisses += tr.CacheMisses
				}
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}
