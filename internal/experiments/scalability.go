package experiments

import (
	"fmt"
	"time"

	"cluseq/internal/datagen"
)

// Figure6 reproduces §6.4: response time as a function of one workload
// axis (number of clusters, number of sequences, average length, alphabet
// size) with everything else held constant. The paper's shapes: linear in
// clusters and sequences, mildly super-linear in length, flat in alphabet
// size.
type Figure6 struct {
	Scale Scale
	Axis  string // "clusters" | "sequences" | "length" | "alphabet"
	Rows  []Figure6Row
}

// Figure6Row is one sweep point.
type Figure6Row struct {
	X        int
	Elapsed  time.Duration
	Accuracy float64
}

func (f *Figure6) String() string { return render(f) }

// figure6Sweep returns the per-axis sweep values.
func figure6Sweep(sc Scale, axis string) []int {
	paper := map[string][]int{
		"clusters":  {10, 20, 50, 100},
		"sequences": {10000, 20000, 50000, 100000, 200000},
		"length":    {100, 200, 500, 1000, 2000},
		"alphabet":  {20, 50, 100, 200, 400},
	}
	small := map[string][]int{
		"clusters":  {4, 8, 12, 20},
		"sequences": {250, 500, 1000, 2000},
		"length":    {50, 100, 200, 400},
		"alphabet":  {10, 20, 50, 100},
	}
	tiny := map[string][]int{
		"clusters":  {2, 4, 8},
		"sequences": {100, 200, 400},
		"length":    {50, 100, 200},
		"alphabet":  {10, 20, 50},
	}
	switch sc {
	case ScaleTiny:
		return tiny[axis]
	case ScaleSmall:
		return small[axis]
	default:
		return paper[axis]
	}
}

// RunFigure6 sweeps the named axis. Valid axes: clusters, sequences,
// length, alphabet.
func RunFigure6(sc Scale, axis string, seed uint64) (*Figure6, error) {
	sweep := figure6Sweep(sc, axis)
	if sweep == nil {
		return nil, fmt.Errorf("experiments: unknown Figure 6 axis %q", axis)
	}
	out := &Figure6{Scale: sc, Axis: axis}
	for _, x := range sweep {
		scfg := syntheticConfig(sc, seed)
		switch axis {
		case "clusters":
			scfg.NumClusters = x
		case "sequences":
			scfg.NumSequences = x
		case "length":
			scfg.AvgLength = x
		case "alphabet":
			scfg.AlphabetSize = x
		}
		db, err := datagen.SyntheticDB(scfg)
		if err != nil {
			return nil, err
		}
		cfg := cluseqConfig(sc, seed)
		_, rep, elapsed, err := runCLUSEQ(db, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure6Row{X: x, Elapsed: elapsed, Accuracy: rep.Accuracy})
	}
	return out, nil
}

// Figure6Axes lists the four §6.4 sweep axes in paper order.
var Figure6Axes = []string{"clusters", "sequences", "length", "alphabet"}
