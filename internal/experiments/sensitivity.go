package experiments

import (
	"fmt"
	"time"

	"cluseq/internal/core"
	"cluseq/internal/datagen"
)

// Figure4 reproduces §6.2: clustering quality and response time as a
// function of the per-cluster PST memory budget.
type Figure4 struct {
	Scale Scale
	Rows  []Figure4Row
}

// Figure4Row is one memory budget's outcome.
type Figure4Row struct {
	MaxPSTBytes int // 0 = unlimited
	Precision   float64
	Recall      float64
	Elapsed     time.Duration
}

func (f *Figure4) String() string { return render(f) }

// figure4Budgets lists the per-scale sweep. The paper sweeps to 5MB+ on
// trees fed by thousands of 1000-symbol sequences; smaller workloads
// saturate at proportionally smaller budgets.
func figure4Budgets(sc Scale) []int {
	switch sc {
	case ScaleTiny:
		return []int{16 << 10, 48 << 10, 128 << 10, 0}
	case ScaleSmall:
		return []int{32 << 10, 128 << 10, 512 << 10, 2 << 20, 0}
	default:
		return []int{1 << 20, 2 << 20, 5 << 20, 10 << 20, 0}
	}
}

// RunFigure4 sweeps the PST memory cap over the synthetic workload.
func RunFigure4(sc Scale, seed uint64) (*Figure4, error) {
	db, err := datagen.SyntheticDB(syntheticConfig(sc, seed))
	if err != nil {
		return nil, err
	}
	out := &Figure4{Scale: sc}
	for _, budget := range figure4Budgets(sc) {
		cfg := cluseqConfig(sc, seed)
		cfg.MaxPSTBytes = budget
		_, rep, elapsed, err := runCLUSEQ(db, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure4Row{budget, rep.MacroPrecision, rep.MacroRecall, elapsed})
	}
	return out, nil
}

// Figure5 reproduces §6.3's initial-sample-size study: quality and
// response time as a function of the seed sampling factor (m = factor·k).
type Figure5 struct {
	Scale Scale
	Rows  []Figure5Row
}

// Figure5Row is one sampling factor's outcome.
type Figure5Row struct {
	SampleFactor int
	Precision    float64
	Recall       float64
	Elapsed      time.Duration
}

func (f *Figure5) String() string { return render(f) }

// RunFigure5 sweeps the sampling factor (the paper tries m up to well
// beyond 5k and recommends 5).
func RunFigure5(sc Scale, seed uint64) (*Figure5, error) {
	db, err := datagen.SyntheticDB(syntheticConfig(sc, seed))
	if err != nil {
		return nil, err
	}
	out := &Figure5{Scale: sc}
	for _, factor := range []int{1, 2, 3, 5, 8} {
		cfg := cluseqConfig(sc, seed)
		cfg.SampleFactor = factor
		_, rep, elapsed, err := runCLUSEQ(db, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure5Row{factor, rep.MacroPrecision, rep.MacroRecall, elapsed})
	}
	return out, nil
}

// Table5 reproduces the initial-cluster-count sensitivity study: CLUSEQ
// must converge to the planted number of clusters regardless of k.
type Table5 struct {
	Scale        Scale
	TrueClusters int
	Rows         []Table5Row
}

// Table5Row is one initial k's outcome.
type Table5Row struct {
	InitialK  int
	FinalK    int
	Elapsed   time.Duration
	Precision float64
	Recall    float64
}

func (t *Table5) String() string { return render(t) }

// table5Ks returns the initial-k sweep per scale (the paper sweeps
// {1, 20, 100, 200} against 100 true clusters — from two orders of
// magnitude below to 2× above).
func table5Ks(sc Scale, trueK int) []int {
	switch sc {
	case ScalePaper:
		return []int{1, 20, 100, 200}
	default:
		return []int{1, trueK / 2, trueK, 2 * trueK}
	}
}

// RunTable5 sweeps the initial number of clusters.
func RunTable5(sc Scale, seed uint64) (*Table5, error) {
	scfg := syntheticConfig(sc, seed)
	scfg.OutlierFrac = 0.10 // the paper uses 10% here
	if sc == ScalePaper {
		scfg.NumClusters = 100
	}
	db, err := datagen.SyntheticDB(scfg)
	if err != nil {
		return nil, err
	}
	out := &Table5{Scale: sc, TrueClusters: scfg.NumClusters}
	for _, k := range table5Ks(sc, scfg.NumClusters) {
		cfg := cluseqConfig(sc, seed)
		cfg.InitialClusters = k
		res, rep, elapsed, err := runCLUSEQ(db, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table5Row{
			InitialK: k, FinalK: res.NumClusters(), Elapsed: elapsed,
			Precision: rep.MacroPrecision, Recall: rep.MacroRecall,
		})
	}
	return out, nil
}

// Table6 reproduces the initial-similarity-threshold sensitivity study:
// the final t must converge to the data's own separation level.
type Table6 struct {
	Scale Scale
	Rows  []Table6Row
}

// Table6Row is one initial threshold's outcome.
type Table6Row struct {
	InitialT  float64
	FinalT    float64
	Elapsed   time.Duration
	Precision float64
	Recall    float64
}

func (t *Table6) String() string { return render(t) }

// RunTable6 sweeps the initial threshold. The paper's sweep {1.05, 1.5,
// 2, 3} is kept; under per-symbol normalization the data's own threshold
// is lower, so the sweep exercises convergence from both sides.
func RunTable6(sc Scale, seed uint64) (*Table6, error) {
	scfg := syntheticConfig(sc, seed)
	scfg.OutlierFrac = 0.10
	db, err := datagen.SyntheticDB(scfg)
	if err != nil {
		return nil, err
	}
	out := &Table6{Scale: sc}
	for _, t0 := range []float64{1.05, 1.5, 2, 3} {
		cfg := cluseqConfig(sc, seed)
		cfg.SimilarityThreshold = t0
		cfg.InitialClusters = scfg.NumClusters
		res, rep, elapsed, err := runCLUSEQ(db, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table6Row{
			InitialT: t0, FinalT: res.FinalThreshold, Elapsed: elapsed,
			Precision: rep.MacroPrecision, Recall: rep.MacroRecall,
		})
	}
	return out, nil
}

// OutlierStudy reproduces the §6.1 robustness claim: "the percentage of
// outliers varies from 1% to 20%. We find that the accuracy of CLUSEQ is
// immune to the increase of outliers."
type OutlierStudy struct {
	Scale Scale
	Rows  []OutlierRow
}

// OutlierRow is one outlier-fraction's outcome.
type OutlierRow struct {
	OutlierFrac float64
	Accuracy    float64
	// OutliersRejected is the fraction of planted outliers left
	// unclustered.
	OutliersRejected float64
	Elapsed          time.Duration
}

func (o *OutlierStudy) String() string { return render(o) }

// Table returns the outlier study contents.
func (o *OutlierStudy) Table() (string, []string, [][]string) {
	rows := make([][]string, len(o.Rows))
	for i, r := range o.Rows {
		rows[i] = []string{pct(r.OutlierFrac), pct(r.Accuracy), pct(r.OutliersRejected), secs(r.Elapsed)}
	}
	return fmt.Sprintf("Outlier study (§6.1): robustness to outliers (scale=%s)", o.Scale),
		[]string{"outlier_frac", "accuracy", "outliers_rejected", "response_time"}, rows
}

// RunOutlierStudy sweeps the planted outlier fraction over the paper's
// 1–20% range.
func RunOutlierStudy(sc Scale, seed uint64) (*OutlierStudy, error) {
	out := &OutlierStudy{Scale: sc}
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.20} {
		scfg := syntheticConfig(sc, seed)
		scfg.OutlierFrac = frac
		db, err := datagen.SyntheticDB(scfg)
		if err != nil {
			return nil, err
		}
		cfg := cluseqConfig(sc, seed)
		res, rep, elapsed, err := runCLUSEQ(db, cfg)
		if err != nil {
			return nil, err
		}
		planted, rejected := 0, 0
		inCluster := map[int]bool{}
		for _, c := range res.Clusters {
			for _, m := range c.Members {
				inCluster[m] = true
			}
		}
		for i, s := range db.Sequences {
			if s.Label == "" {
				planted++
				if !inCluster[i] {
					rejected++
				}
			}
		}
		row := OutlierRow{OutlierFrac: frac, Accuracy: rep.Accuracy, Elapsed: elapsed}
		if planted > 0 {
			row.OutliersRejected = float64(rejected) / float64(planted)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// OrderStudy reproduces the §6.3 processing-order comparison.
type OrderStudy struct {
	Scale Scale
	Rows  []OrderRow
}

// OrderRow is one strategy's outcome.
type OrderRow struct {
	Order    string
	Accuracy float64
	Elapsed  time.Duration
}

// Row returns the named order's row, or false.
func (o *OrderStudy) Row(name string) (OrderRow, bool) {
	for _, r := range o.Rows {
		if r.Order == name {
			return r, true
		}
	}
	return OrderRow{}, false
}

func (o *OrderStudy) String() string { return render(o) }

// RunOrderStudy compares fixed, random, and cluster-based processing
// orders (the paper reports 82%, 83%, and 65%).
func RunOrderStudy(sc Scale, seed uint64) (*OrderStudy, error) {
	db, err := datagen.SyntheticDB(syntheticConfig(sc, seed))
	if err != nil {
		return nil, err
	}
	out := &OrderStudy{Scale: sc}
	for _, o := range []struct {
		name  string
		order core.OrderStrategy
	}{
		{"fixed", core.OrderFixed},
		{"random", core.OrderRandom},
		{"cluster-based", core.OrderClusterBased},
	} {
		cfg := cluseqConfig(sc, seed)
		cfg.Order = o.order
		_, rep, elapsed, err := runCLUSEQ(db, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, OrderRow{o.name, rep.Accuracy, elapsed})
	}
	return out, nil
}
