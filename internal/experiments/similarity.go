package experiments

import (
	"math/rand/v2"
	"runtime"
	"time"

	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// SimilarityBench measures the §4.3 similarity scan head-to-head: the
// pointer-walking Tree.SimilarityFast against the compiled
// pst.Snapshot, across alphabet sizes and probe lengths.
// cmd/experiments serializes it to BENCH_similarity.json so successive
// PRs can diff the hot loop's cost directly, without the clustering
// dynamics around it.
type SimilarityBench struct {
	Scale Scale
	Rows  []SimilarityBenchRow
}

// SimilarityBenchRow is one (alphabet, length) cell: per-scan wall time
// through each implementation, their ratio, and the snapshot path's
// memory behaviour — heap allocations per scan (the arena layout's
// target is 0) and the compiled arena's resident size.
type SimilarityBenchRow struct {
	AlphabetSize    int
	SeqLen          int
	TreeNodes       int
	TreePerScan     time.Duration
	SnapshotPerScan time.Duration
	Speedup         float64
	// AllocsPerScan counts heap allocations per snapshot scan (mallocs
	// observed across the timed loop divided by scans).
	AllocsPerScan float64
	// SnapshotBytes is the compiled snapshot's arena size — the resident
	// bytes the scan touches, and exactly the bytes a v3 bundle stores.
	SnapshotBytes int
}

func (s *SimilarityBench) String() string { return render(s) }

// similarityBenchGrid lists the (alphabet, probe length) cells.
var similarityBenchGrid = []struct{ alpha, seqLen int }{
	{10, 100},
	{10, 500},
	{50, 200},
	{50, 1000},
	{100, 500},
	{200, 500},
	{200, 1000},
}

// RunSimilarityBench times both scan implementations on identical
// trees and probes. Scale controls only the repetition count (how long
// each cell is timed), not the workload shape, so rows are comparable
// across scales.
func RunSimilarityBench(sc Scale, seed uint64) (*SimilarityBench, error) {
	reps := 20
	switch sc {
	case ScaleSmall:
		reps = 200
	case ScalePaper:
		reps = 2000
	}
	out := &SimilarityBench{Scale: sc}
	for _, cell := range similarityBenchGrid {
		rng := rand.New(rand.NewPCG(seed, uint64(cell.alpha*1000+cell.seqLen)))
		tree := pst.MustNew(pst.Config{
			AlphabetSize: cell.alpha,
			MaxDepth:     6,
			Significance: 10,
			PMin:         0.25 / float64(cell.alpha),
		})
		for i := 0; i < 40; i++ {
			tree.Insert(randomSymbols(rng, cell.seqLen, cell.alpha))
		}
		probes := make([][]seq.Symbol, 16)
		for i := range probes {
			probes[i] = randomSymbols(rng, cell.seqLen, cell.alpha)
		}
		bg := make([]float64, cell.alpha)
		for i := range bg {
			bg[i] = 1 / float64(cell.alpha)
		}
		snap := tree.CompileSnapshot(bg)

		// Warm both paths once (ln(background) memo, caches), then time.
		for _, p := range probes {
			if tree.SimilarityFast(p, bg) != snap.Similarity(p) {
				panic("experiments: snapshot disagrees with tree scan") // contract violation
			}
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			for _, p := range probes {
				tree.SimilarityFast(p, bg)
			}
		}
		treeTotal := time.Since(start)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start = time.Now()
		for r := 0; r < reps; r++ {
			for _, p := range probes {
				snap.Similarity(p)
			}
		}
		snapTotal := time.Since(start)
		runtime.ReadMemStats(&m1)

		scans := reps * len(probes)
		row := SimilarityBenchRow{
			AlphabetSize:    cell.alpha,
			SeqLen:          cell.seqLen,
			TreeNodes:       tree.NumNodes(),
			TreePerScan:     treeTotal / time.Duration(scans),
			SnapshotPerScan: snapTotal / time.Duration(scans),
			AllocsPerScan:   float64(m1.Mallocs-m0.Mallocs) / float64(scans),
			SnapshotBytes:   snap.ArenaBytes(),
		}
		if snapTotal > 0 {
			row.Speedup = float64(treeTotal) / float64(snapTotal)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// randomSymbols draws length symbols uniformly from [0, alpha).
func randomSymbols(rng *rand.Rand, length, alpha int) []seq.Symbol {
	out := make([]seq.Symbol, length)
	for i := range out {
		out[i] = seq.Symbol(rng.IntN(alpha))
	}
	return out
}
