package histogram

import (
	"math"
	"testing"
)

func TestFractionBelow(t *testing.T) {
	h, err := New(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.FractionBelow(5); ok {
		t.Error("empty histogram should report no weight")
	}
	// One sample per bucket center: CDF is linear over the domain.
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	// Weight is uniform within a bucket, so x=2.5 covers buckets 0,1
	// fully (2 samples) plus half of bucket 2 → 2.5/10.
	cases := []struct {
		x    float64
		want float64
	}{
		{-1, 0}, {0, 0}, {10, 1}, {11, 1},
		{5, 0.5},
		{2.5, 0.25},
	}
	for _, c := range cases {
		got, ok := h.FractionBelow(c.x)
		if !ok {
			t.Fatalf("FractionBelow(%v) reported no weight", c.x)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	// Dual to Quantile: FractionBelow(Quantile(q)) ≈ q.
	for _, q := range []float64{0.1, 0.33, 0.5, 0.9} {
		v, _ := h.Quantile(q)
		f, _ := h.FractionBelow(v)
		if math.Abs(f-q) > 0.05 {
			t.Errorf("FractionBelow(Quantile(%v)=%v) = %v", q, v, f)
		}
	}
}
