// Package histogram implements the similarity-distribution histogram and
// the valley-detection heuristic of paper §4.6, used by CLUSEQ to adjust
// the similarity threshold t automatically.
//
// The histogram collects the similarity of every sequence-cluster
// combination observed during one clustering iteration. The "valley" is the
// bucket at which the histogram curve makes its sharpest turn, measured as
// the largest absolute difference between the least-squares slopes of the
// left-hand and right-hand portions of the curve.
package histogram

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bucket histogram over a floating-point domain.
// Values outside [Lo, Hi) are clamped into the first or last bucket, so no
// observation is ever lost; the caller decides the domain.
type Histogram struct {
	lo, hi  float64
	buckets []float64
	n       int // total observations
}

// New returns a histogram with the given number of buckets over [lo, hi).
func New(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets < 3 {
		return nil, fmt.Errorf("histogram: need at least 3 buckets, got %d", buckets)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("histogram: invalid domain [%v, %v)", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]float64, buckets)}, nil
}

// Add records one observation.
//
//cluseq:hotpath
func (h *Histogram) Add(v float64) {
	h.buckets[h.bucketOf(v)]++
	h.n++
}

// AddWeighted records an observation with the given weight.
func (h *Histogram) AddWeighted(v, w float64) {
	h.buckets[h.bucketOf(v)] += w
	h.n++
}

//cluseq:hotpath
func (h *Histogram) bucketOf(v float64) int {
	if math.IsNaN(v) || v < h.lo {
		return 0
	}
	if v >= h.hi {
		return len(h.buckets) - 1
	}
	i := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	return i
}

// Count returns the total number of observations recorded.
func (h *Histogram) Count() int { return h.n }

// Clone returns an independent deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		lo:      h.lo,
		hi:      h.hi,
		buckets: append([]float64(nil), h.buckets...),
		n:       h.n,
	}
}

// Merge folds o's observations into h: bucket weights add elementwise
// and counts add. Because both histograms discretized their samples on
// the same grid, the merged histogram is exactly the histogram that
// would have resulted from feeding every sample of both into one — so
// per-worker latency histograms can be combined without re-observing,
// and Quantile on the merge equals Quantile on the combined stream (to
// bucket resolution). The domains must match exactly; merging
// histograms with different [lo, hi) or bucket counts is an error
// because their bucket grids do not align. o is left unchanged.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if h.lo != o.lo || h.hi != o.hi || len(h.buckets) != len(o.buckets) {
		return fmt.Errorf("histogram: cannot merge [%g,%g)/%d buckets into [%g,%g)/%d buckets",
			o.lo, o.hi, len(o.buckets), h.lo, h.hi, len(h.buckets))
	}
	for i, w := range o.buckets {
		h.buckets[i] += w
	}
	h.n += o.n
	return nil
}

// Buckets returns a copy of the bucket weights.
func (h *Histogram) Buckets() []float64 { return append([]float64(nil), h.buckets...) }

// Center returns the median value of bucket i's similarity range — the x_i
// of the paper's (x_i, y_i) representation.
func (h *Histogram) Center(i int) float64 {
	width := (h.hi - h.lo) / float64(len(h.buckets))
	return h.lo + (float64(i)+0.5)*width
}

// Valley locates the similarity value at which the histogram curve makes
// its sharpest turn: the bucket center x_i maximizing |b_l(i) − b_r(i)|
// where b_l is the regression slope over buckets [0, i] and b_r the slope
// over buckets [i, n−1] (paper §4.6). Interior buckets only are candidates
// (i in [1, n−2]), matching the paper's i = 2..n−1 in 1-based indexing.
//
// The boolean result is false when the histogram holds no observations, in
// which case the caller should leave its threshold unchanged.
func (h *Histogram) Valley() (float64, bool) {
	if h.n == 0 {
		return 0, false
	}
	n := len(h.buckets)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = h.Center(i)
	}
	// Prefix sums let each regression slope be computed in O(1), keeping
	// the whole valley search linear in the number of buckets as the paper
	// claims.
	ys := h.buckets
	px := make([]float64, n+1)  // Σ x_j, j < i
	py := make([]float64, n+1)  // Σ y_j
	pxy := make([]float64, n+1) // Σ x_j y_j
	pxx := make([]float64, n+1) // Σ x_j²
	for i := 0; i < n; i++ {
		px[i+1] = px[i] + xs[i]
		py[i+1] = py[i] + ys[i]
		pxy[i+1] = pxy[i] + xs[i]*ys[i]
		pxx[i+1] = pxx[i] + xs[i]*xs[i]
	}
	slope := func(lo, hi int) float64 { // over buckets [lo, hi)
		m := float64(hi - lo)
		if m < 2 {
			return 0
		}
		sx := px[hi] - px[lo]
		sy := py[hi] - py[lo]
		sxy := pxy[hi] - pxy[lo]
		sxx := pxx[hi] - pxx[lo]
		denom := sxx - sx*sx/m
		if denom == 0 {
			return 0
		}
		return (sxy - sx*sy/m) / denom
	}
	bestDiff := math.Inf(-1)
	bestX := xs[1]
	for i := 1; i < n-1; i++ {
		bl := slope(0, i+1)
		br := slope(i, n)
		if d := math.Abs(bl - br); d > bestDiff {
			bestDiff = d
			bestX = xs[i]
		}
	}
	return bestX, true
}

// OtsuThreshold returns the bucket-center value that best splits the
// histogram into two classes, by maximizing the between-class variance
// (Otsu's method). It estimates the same quantity as Valley — the boundary
// between the low-similarity background mode and the high-similarity
// member mode — but remains robust when the background mode has a long
// soft tail, where the regression-slope turn detector locks onto the edge
// of the dominant mode instead of the gap. CLUSEQ's threshold adjustment
// uses this estimator; Valley implements the paper's formulation.
//
// The boolean result is false when the histogram holds no observations.
func (h *Histogram) OtsuThreshold() (float64, bool) {
	if h.n == 0 {
		return 0, false
	}
	n := len(h.buckets)
	total := 0.0
	totalMean := 0.0
	for i, w := range h.buckets {
		total += w
		totalMean += w * h.Center(i)
	}
	if total == 0 {
		return 0, false
	}
	totalMean /= total

	bestVar := -1.0
	bestX := h.Center(0)
	w0, sum0 := 0.0, 0.0
	for i := 0; i < n-1; i++ {
		w0 += h.buckets[i]
		sum0 += h.buckets[i] * h.Center(i)
		w1 := total - w0
		if w0 == 0 || w1 == 0 {
			continue
		}
		mu0 := sum0 / w0
		mu1 := (totalMean*total - sum0) / w1
		between := w0 * w1 * (mu0 - mu1) * (mu0 - mu1)
		if between > bestVar {
			bestVar = between
			// The split sits between bucket i and i+1.
			bestX = (h.Center(i) + h.Center(i+1)) / 2
		}
	}
	if bestVar < 0 {
		// Degenerate: all mass sits in a single bucket, so every candidate
		// split leaves one side empty. Report that bucket's center.
		for i, w := range h.buckets {
			if w > 0 {
				return h.Center(i), true
			}
		}
		return 0, false
	}
	return bestX, true
}

// Quantile returns the value below which fraction q of the recorded
// weight falls, interpolating linearly inside the boundary bucket. q is
// clamped into [0, 1] (NaN clamps to 0). The boolean result is false
// when the histogram holds no weight. The estimate's resolution is one
// bucket width; the serving daemon and the obs registry use it for
// latency percentiles.
//
// Edge behavior, pinned by TestQuantileTable:
//
//   - q = 0 returns the left edge of the first non-empty bucket;
//   - q = 1 returns the right edge of the last non-empty bucket (even
//     when floating-point accumulation drift would otherwise overshoot
//     past every bucket);
//   - a single sample in bucket i interpolates across that bucket:
//     Quantile(q) = left edge + q·width.
func (h *Histogram) Quantile(q float64) (float64, bool) {
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := 0.0
	for _, w := range h.buckets {
		total += w
	}
	if total == 0 {
		return 0, false
	}
	target := q * total
	cum := 0.0
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, w := range h.buckets {
		if cum+w >= target && w > 0 {
			// Interpolate within bucket i.
			frac := (target - cum) / w
			return h.lo + (float64(i)+frac)*width, true
		}
		cum += w
	}
	// Floating-point drift: Σw recomputed incrementally fell short of
	// target (q ≈ 1 with many buckets). Report the exact upper edge of
	// the recorded distribution — the right edge of the last non-empty
	// bucket — rather than a bucket center.
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i] > 0 {
			return h.lo + float64(i+1)*width, true
		}
	}
	return 0, false
}

// FractionBelow returns the fraction of recorded weight at or below x,
// interpolating linearly inside the bucket containing x — the CDF read
// dual to Quantile, with the same one-bucket-width resolution. x at or
// left of the domain returns 0, at or right of it returns 1 (weight
// clamped into the edge buckets by Add counts as inside the domain).
// The boolean result is false when the histogram holds no weight. The
// SLO burn-rate gauges use it to turn a latency histogram into
// "fraction of requests within objective".
func (h *Histogram) FractionBelow(x float64) (float64, bool) {
	total := 0.0
	for _, w := range h.buckets {
		total += w
	}
	if total == 0 {
		return 0, false
	}
	switch {
	case math.IsNaN(x) || x <= h.lo:
		return 0, true
	case x >= h.hi:
		return 1, true
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	pos := (x - h.lo) / width
	i := int(pos)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	cum := 0.0
	for j := 0; j < i; j++ {
		cum += h.buckets[j]
	}
	cum += h.buckets[i] * (pos - float64(i))
	if cum > total {
		cum = total
	}
	return cum / total, true
}

// String renders a compact textual sketch of the histogram, useful in logs.
func (h *Histogram) String() string {
	const bars = "▁▂▃▄▅▆▇█"
	max := 0.0
	for _, b := range h.buckets {
		if b > max {
			max = b
		}
	}
	out := make([]rune, len(h.buckets))
	for i, b := range h.buckets {
		if max == 0 {
			out[i] = '▁'
			continue
		}
		level := int(b / max * float64(len([]rune(bars))-1))
		out[i] = []rune(bars)[level]
	}
	return fmt.Sprintf("[%g,%g) n=%d %s", h.lo, h.hi, h.n, string(out))
}
