package histogram

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cluseq/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 2); err == nil {
		t.Error("New should reject <3 buckets")
	}
	if _, err := New(1, 1, 10); err == nil {
		t.Error("New should reject lo == hi")
	}
	if _, err := New(2, 1, 10); err == nil {
		t.Error("New should reject lo > hi")
	}
	if _, err := New(0, 1, 3); err != nil {
		t.Errorf("New(0,1,3): %v", err)
	}
}

func TestAddAndBuckets(t *testing.T) {
	h, _ := New(0, 10, 10)
	for _, v := range []float64{0, 0.5, 9.99, 5} {
		h.Add(v)
	}
	b := h.Buckets()
	if b[0] != 2 || b[9] != 1 || b[5] != 1 {
		t.Fatalf("buckets = %v", b)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
}

func TestAddClampsOutOfRange(t *testing.T) {
	h, _ := New(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	h.Add(math.NaN())
	b := h.Buckets()
	if b[0] != 2 { // -5 and NaN clamp low
		t.Fatalf("low bucket = %v, want 2", b[0])
	}
	if b[3] != 1 {
		t.Fatalf("high bucket = %v, want 1", b[3])
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3 (no observation may be lost)", h.Count())
	}
}

func TestAddWeighted(t *testing.T) {
	h, _ := New(0, 1, 4)
	h.AddWeighted(0.1, 2.5)
	if got := h.Buckets()[0]; got != 2.5 {
		t.Fatalf("weighted bucket = %v, want 2.5", got)
	}
}

func TestCenter(t *testing.T) {
	h, _ := New(0, 10, 10)
	if got := h.Center(0); got != 0.5 {
		t.Fatalf("Center(0) = %v, want 0.5", got)
	}
	if got := h.Center(9); got != 9.5 {
		t.Fatalf("Center(9) = %v, want 9.5", got)
	}
}

// TestValleyVShape: a clean V shape (steep decline, then gentle rise) must
// put the valley at the turning point.
func TestQuantile(t *testing.T) {
	h, err := New(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Quantile(0.5); ok {
		t.Fatal("empty histogram should report no quantile")
	}
	for i := 0; i < 1000; i++ {
		h.Add(float64(i) / 10) // uniform over [0, 100)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.9, 90}, {0.99, 99}, {0.1, 10},
	} {
		got, ok := h.Quantile(tc.q)
		if !ok {
			t.Fatalf("Quantile(%v) reported empty", tc.q)
		}
		if math.Abs(got-tc.want) > 1.5 { // one bucket width of slack
			t.Fatalf("Quantile(%v) = %v, want ≈ %v", tc.q, got, tc.want)
		}
	}
	// Clamped arguments and a single-bucket mass.
	h2, _ := New(0, 10, 10)
	h2.Add(3.5)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got, ok := h2.Quantile(q)
		if !ok || got < 3 || got > 4 {
			t.Fatalf("Quantile(%v) = %v/%v, want inside bucket [3,4)", q, got, ok)
		}
	}
}

// TestQuantileTable pins the edge-case contract of Quantile: empty
// histogram, single sample, q=0/q=1 clamping (including NaN and
// out-of-range q), multi-bucket interpolation, and the fallthrough when
// trailing buckets are empty.
func TestQuantileTable(t *testing.T) {
	type obs struct{ v, w float64 }
	cases := []struct {
		name    string
		lo, hi  float64
		buckets int
		add     []obs
		q       float64
		want    float64
		ok      bool
	}{
		{"empty q=0.5", 0, 10, 10, nil, 0.5, 0, false},
		{"empty q=0", 0, 10, 10, nil, 0, 0, false},
		{"empty q=1", 0, 10, 10, nil, 1, 0, false},

		// A single sample lands in bucket [3,4): q interpolates across
		// that bucket, so q=0 pins the left edge, q=1 the right edge.
		{"single q=0", 0, 10, 10, []obs{{3.5, 1}}, 0, 3, true},
		{"single q=0.5", 0, 10, 10, []obs{{3.5, 1}}, 0.5, 3.5, true},
		{"single q=1", 0, 10, 10, []obs{{3.5, 1}}, 1, 4, true},

		// Clamping: out-of-range and NaN q behave as the nearer bound.
		{"clamp q<0", 0, 10, 10, []obs{{3.5, 1}}, -7, 3, true},
		{"clamp q>1", 0, 10, 10, []obs{{3.5, 1}}, 42, 4, true},
		{"clamp q=NaN", 0, 10, 10, []obs{{3.5, 1}}, math.NaN(), 3, true},

		// Two equal-weight buckets: the median sits at the boundary.
		{"two buckets q=0.5", 0, 10, 10, []obs{{1.5, 1}, {6.5, 1}}, 0.5, 2, true},
		{"two buckets q=0.75", 0, 10, 10, []obs{{1.5, 1}, {6.5, 1}}, 0.75, 6.5, true},
		{"two buckets q=1", 0, 10, 10, []obs{{1.5, 1}, {6.5, 1}}, 1, 7, true},

		// q=0 skips leading empty buckets to the first occupied one.
		{"leading empties q=0", 0, 10, 10, []obs{{8.5, 2}}, 0, 8, true},
		// q=1 never lands past the last occupied bucket, even with
		// trailing empties.
		{"trailing empties q=1", 0, 10, 10, []obs{{0.5, 3}}, 1, 1, true},

		// Out-of-domain samples clamp into the edge buckets and stay
		// countable.
		{"clamped sample q=1", 0, 10, 10, []obs{{99, 1}}, 1, 10, true},
		{"clamped sample q=0", 0, 10, 10, []obs{{-5, 1}}, 0, 0, true},

		// Weighted observations shift mass, not counts: half of the
		// total weight 10 falls 4/9 of the way into bucket [5,6).
		{"weighted q=0.5", 0, 10, 10, []obs{{0.5, 1}, {5.5, 9}}, 0.5, 5 + 4.0/9, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := New(tc.lo, tc.hi, tc.buckets)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range tc.add {
				h.AddWeighted(o.v, o.w)
			}
			got, ok := h.Quantile(tc.q)
			if ok != tc.ok {
				t.Fatalf("Quantile(%v) ok = %v, want %v", tc.q, ok, tc.ok)
			}
			if !ok {
				return
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestValleyVShape(t *testing.T) {
	h, _ := New(0, 30, 30)
	// Steep decline over buckets 0..9, flat low region 10..19, gentle rise
	// 20..29. The sharpest turn is at the end of the decline.
	for i := 0; i < 30; i++ {
		var y float64
		switch {
		case i < 10:
			y = float64(1000 - 100*i)
		case i < 20:
			y = 10
		default:
			y = float64(10 + 2*(i-20))
		}
		h.AddWeighted(h.Center(i), y)
	}
	v, ok := h.Valley()
	if !ok {
		t.Fatal("Valley not found")
	}
	// The valley must fall after the decline and within the flat region.
	if v < 8 || v > 20 {
		t.Fatalf("valley at %v, want within [8, 20]", v)
	}
}

// TestValleyMatchesPaperDefinition cross-checks the O(1)-per-point
// prefix-sum slopes against the straightforward stats.RegressionSlope
// implementation of the paper's formulas.
func TestValleyMatchesPaperDefinition(t *testing.T) {
	h, _ := New(0, 1, 24)
	// Irregular but deterministic content.
	for i := 0; i < 24; i++ {
		h.AddWeighted(h.Center(i), float64((i*7919)%97)+1)
	}
	n := 24
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = h.Center(i)
	}
	ys := h.Buckets()
	bestDiff := math.Inf(-1)
	bestX := 0.0
	for i := 1; i < n-1; i++ {
		bl := stats.RegressionSlope(xs[:i+1], ys[:i+1])
		br := stats.RegressionSlope(xs[i:], ys[i:])
		if d := math.Abs(bl - br); d > bestDiff {
			bestDiff = d
			bestX = xs[i]
		}
	}
	got, ok := h.Valley()
	if !ok {
		t.Fatal("Valley not found")
	}
	if math.Abs(got-bestX) > 1e-9 {
		t.Fatalf("Valley = %v, reference implementation says %v", got, bestX)
	}
}

func TestValleyEmpty(t *testing.T) {
	h, _ := New(0, 1, 5)
	if _, ok := h.Valley(); ok {
		t.Fatal("empty histogram must report no valley")
	}
}

func TestValleyWithinDomain(t *testing.T) {
	f := func(raw []float64) bool {
		h, _ := New(0, 1, 12)
		any := false
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(math.Mod(math.Abs(v), 1))
			any = true
		}
		v, ok := h.Valley()
		if !any {
			return !ok
		}
		return ok && v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOtsuThresholdBimodal(t *testing.T) {
	h, _ := New(0, 10, 50)
	// Heavy mode near 1, light mode near 8, gap between.
	for i := 0; i < 900; i++ {
		h.Add(0.5 + float64(i%10)*0.1)
	}
	for i := 0; i < 100; i++ {
		h.Add(7.5 + float64(i%10)*0.1)
	}
	split, ok := h.OtsuThreshold()
	if !ok {
		t.Fatal("no Otsu threshold on bimodal data")
	}
	// The heavy mode ends at 1.4 (bucket center 1.5) and the light mode
	// starts at 7.5; the split must clear the heavy mass, within one
	// bucket of slack.
	if split < 1.35 || split > 7.4 {
		t.Fatalf("Otsu split = %v, want within the gap [1.35, 7.4]", split)
	}
}

func TestOtsuThresholdSoftTail(t *testing.T) {
	// A dominant mode with a long soft tail plus a small distant mode:
	// the regression valley locks onto the main cliff; Otsu must stay
	// between the modes. This is the regime CLUSEQ's threshold adjustment
	// sees in practice.
	h, _ := New(0, 10, 100)
	for i := 0; i < 100; i++ {
		x := float64(i) * 0.05 // tail reaching 5
		h.AddWeighted(x, 1000*math.Exp(-x*2))
	}
	for i := 0; i < 10; i++ {
		h.AddWeighted(8+0.1*float64(i), 30)
	}
	split, ok := h.OtsuThreshold()
	if !ok {
		t.Fatal("no Otsu threshold")
	}
	if split < 2 || split > 8 {
		t.Fatalf("Otsu split = %v, want inside (2, 8)", split)
	}
}

func TestOtsuThresholdEmpty(t *testing.T) {
	h, _ := New(0, 1, 5)
	if _, ok := h.OtsuThreshold(); ok {
		t.Fatal("empty histogram must report no Otsu threshold")
	}
}

func TestOtsuThresholdSingleMode(t *testing.T) {
	h, _ := New(0, 1, 10)
	for i := 0; i < 100; i++ {
		h.Add(0.45)
	}
	split, ok := h.OtsuThreshold()
	if !ok {
		t.Fatal("single-mode histogram should still split")
	}
	if split < 0 || split > 1 {
		t.Fatalf("split %v outside domain", split)
	}
}

func TestOtsuWithinDomain(t *testing.T) {
	f := func(raw []float64) bool {
		h, _ := New(0, 1, 16)
		any := false
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(math.Mod(math.Abs(v), 1))
			any = true
		}
		split, ok := h.OtsuThreshold()
		if !any {
			return !ok
		}
		return ok && split >= 0 && split <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	h, _ := New(0, 1, 8)
	h.Add(0.99)
	s := h.String()
	if !strings.Contains(s, "n=1") {
		t.Fatalf("String = %q, want n=1 marker", s)
	}
	// Must not panic on the empty histogram either.
	h2, _ := New(0, 1, 8)
	_ = h2.String()
}
