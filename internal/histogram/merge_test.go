package histogram

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCloneIndependent(t *testing.T) {
	h, _ := New(0, 10, 10)
	h.Add(1)
	h.AddWeighted(5, 2.5)
	c := h.Clone()
	if !reflect.DeepEqual(h.Buckets(), c.Buckets()) || h.Count() != c.Count() {
		t.Fatalf("clone differs: %v/%d vs %v/%d", h.Buckets(), h.Count(), c.Buckets(), c.Count())
	}
	c.Add(9)
	if h.Count() != 2 {
		t.Fatalf("mutating the clone changed the original: count %d", h.Count())
	}
	if c.Count() != 3 {
		t.Fatalf("clone count = %d, want 3", c.Count())
	}
}

func TestMergeDomainMismatch(t *testing.T) {
	h, _ := New(0, 10, 10)
	for _, o := range []*Histogram{
		func() *Histogram { x, _ := New(0, 20, 10); return x }(), // hi differs
		func() *Histogram { x, _ := New(1, 10, 10); return x }(), // lo differs
		func() *Histogram { x, _ := New(0, 10, 20); return x }(), // buckets differ
	} {
		if err := h.Merge(o); err == nil {
			t.Fatalf("Merge should reject mismatched domain %s", o)
		}
	}
	if err := h.Merge(nil); err != nil {
		t.Fatalf("Merge(nil) should be a no-op, got %v", err)
	}
}

func TestMergeAddsWeightsAndCounts(t *testing.T) {
	a, _ := New(0, 10, 10)
	b, _ := New(0, 10, 10)
	a.Add(1)
	a.AddWeighted(3, 2)
	b.Add(3)
	b.Add(9.5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Buckets()
	if got[1] != 1 || got[3] != 3 || got[9] != 1 {
		t.Fatalf("merged buckets = %v", got)
	}
	if a.Count() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Count())
	}
	// b is unchanged.
	if b.Count() != 2 || b.Buckets()[3] != 1 {
		t.Fatalf("merge mutated its argument: %v/%d", b.Buckets(), b.Count())
	}
}

// TestMergeEqualsCombined is the property loadgen relies on: splitting a
// sample stream across k per-worker histograms and merging them yields
// exactly the histogram that observed the whole stream — identical
// buckets, count, and therefore identical quantiles at every q.
func TestMergeEqualsCombined(t *testing.T) {
	f := func(seed int64, raw []float64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		parts := make([]*Histogram, k)
		for i := range parts {
			parts[i], _ = New(0, 1, 20)
		}
		combined, _ := New(0, 1, 20)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(math.Abs(v), 1)
			parts[rng.Intn(k)].Add(v)
			combined.Add(v)
		}
		merged, _ := New(0, 1, 20)
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				return false
			}
		}
		if !reflect.DeepEqual(merged.Buckets(), combined.Buckets()) || merged.Count() != combined.Count() {
			return false
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			mv, mok := merged.Quantile(q)
			cv, cok := combined.Quantile(q)
			if mok != cok || mv != cv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
