// Package hmm implements discrete hidden Markov models — the HMM baseline
// of the paper's Table 2 comparison (the paper trains one 30-state HMM and
// clusters by likelihood; footnote 3 also names HMMs as the expensive
// alternative to the probabilistic suffix tree).
//
// The implementation uses per-step scaling (Rabiner's ĉ_t normalization)
// throughout, so likelihoods of sequences thousands of symbols long are
// computed without underflow, and supports multi-sequence Baum-Welch
// re-estimation with probability floors to keep parameters strictly
// positive.
package hmm

import (
	"fmt"
	"math"
	"math/rand/v2"

	"cluseq/internal/seq"
)

// floor keeps every probability strictly positive through re-estimation;
// without it a symbol unseen in training would zero out whole sequences.
const floor = 1e-6

// HMM is a discrete hidden Markov model with N states and M symbols.
type HMM struct {
	N  int         // number of hidden states
	M  int         // alphabet size
	Pi []float64   // initial state distribution, length N
	A  [][]float64 // transition probabilities, N×N
	B  [][]float64 // emission probabilities, N×M
}

// NewRandom returns an HMM with randomly perturbed near-uniform parameters.
// Random asymmetry is required: exactly uniform parameters are a saddle
// point of Baum-Welch from which re-estimation cannot escape.
func NewRandom(n, m int, rng *rand.Rand) *HMM {
	if n < 1 || m < 1 {
		panic(fmt.Sprintf("hmm: invalid dimensions N=%d M=%d", n, m))
	}
	h := &HMM{N: n, M: m}
	h.Pi = randDist(n, rng)
	h.A = make([][]float64, n)
	h.B = make([][]float64, n)
	for i := 0; i < n; i++ {
		h.A[i] = randDist(n, rng)
		h.B[i] = randDist(m, rng)
	}
	return h
}

func randDist(n int, rng *rand.Rand) []float64 {
	d := make([]float64, n)
	sum := 0.0
	for i := range d {
		d[i] = 1 + 0.2*rng.Float64()
		sum += d[i]
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

// Validate checks that all parameter rows are proper distributions.
func (h *HMM) Validate() error {
	check := func(name string, d []float64) error {
		sum := 0.0
		for _, v := range d {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("hmm: %s has invalid entry %v", name, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("hmm: %s sums to %v, want 1", name, sum)
		}
		return nil
	}
	if len(h.Pi) != h.N || len(h.A) != h.N || len(h.B) != h.N {
		return fmt.Errorf("hmm: dimension mismatch")
	}
	if err := check("Pi", h.Pi); err != nil {
		return err
	}
	for i := range h.A {
		if len(h.A[i]) != h.N || len(h.B[i]) != h.M {
			return fmt.Errorf("hmm: row %d dimension mismatch", i)
		}
		if err := check(fmt.Sprintf("A[%d]", i), h.A[i]); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("B[%d]", i), h.B[i]); err != nil {
			return err
		}
	}
	return nil
}

// forwardScaled fills alpha (T×N, scaled rows) and returns the scale
// factors c_t. The log-likelihood is −Σ log c_t.
func (h *HMM) forwardScaled(obs []seq.Symbol, alpha [][]float64) []float64 {
	T := len(obs)
	c := make([]float64, T)
	// t = 0
	sum := 0.0
	for i := 0; i < h.N; i++ {
		alpha[0][i] = h.Pi[i] * h.B[i][obs[0]]
		sum += alpha[0][i]
	}
	c[0] = scale(alpha[0], sum)
	for t := 1; t < T; t++ {
		sum = 0.0
		for j := 0; j < h.N; j++ {
			a := 0.0
			for i := 0; i < h.N; i++ {
				a += alpha[t-1][i] * h.A[i][j]
			}
			alpha[t][j] = a * h.B[j][obs[t]]
			sum += alpha[t][j]
		}
		c[t] = scale(alpha[t], sum)
	}
	return c
}

// scale normalizes row to sum 1 and returns the 1/sum factor used; a zero
// row (possible only with zero parameters) becomes uniform with a huge
// factor so likelihood collapses rather than NaNs.
func scale(row []float64, sum float64) float64 {
	if sum <= 0 {
		u := 1 / float64(len(row))
		for i := range row {
			row[i] = u
		}
		return 1e300
	}
	inv := 1 / sum
	for i := range row {
		row[i] *= inv
	}
	return inv
}

// LogLikelihood returns ln P(obs | h) via the scaled forward pass.
// The empty sequence has probability 1.
func (h *HMM) LogLikelihood(obs []seq.Symbol) float64 {
	if len(obs) == 0 {
		return 0
	}
	alpha := newMatrix(len(obs), h.N)
	c := h.forwardScaled(obs, alpha)
	ll := 0.0
	for _, ct := range c {
		ll -= math.Log(ct)
	}
	return ll
}

// Viterbi returns the most likely state path and its log-probability.
func (h *HMM) Viterbi(obs []seq.Symbol) ([]int, float64) {
	T := len(obs)
	if T == 0 {
		return nil, 0
	}
	delta := newMatrix(T, h.N)
	psi := make([][]int, T)
	for t := range psi {
		psi[t] = make([]int, h.N)
	}
	for i := 0; i < h.N; i++ {
		delta[0][i] = safeLog(h.Pi[i]) + safeLog(h.B[i][obs[0]])
	}
	for t := 1; t < T; t++ {
		for j := 0; j < h.N; j++ {
			best := math.Inf(-1)
			arg := 0
			for i := 0; i < h.N; i++ {
				if v := delta[t-1][i] + safeLog(h.A[i][j]); v > best {
					best = v
					arg = i
				}
			}
			delta[t][j] = best + safeLog(h.B[j][obs[t]])
			psi[t][j] = arg
		}
	}
	best := math.Inf(-1)
	arg := 0
	for i := 0; i < h.N; i++ {
		if delta[T-1][i] > best {
			best = delta[T-1][i]
			arg = i
		}
	}
	path := make([]int, T)
	path[T-1] = arg
	for t := T - 1; t > 0; t-- {
		path[t-1] = psi[t][path[t]]
	}
	return path, best
}

func safeLog(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}

func newMatrix(r, c int) [][]float64 {
	backing := make([]float64, r*c)
	m := make([][]float64, r)
	for i := range m {
		m[i] = backing[i*c : (i+1)*c]
	}
	return m
}

// TrainResult reports a Baum-Welch run.
type TrainResult struct {
	Iterations    int
	LogLikelihood float64 // total over the training set, final iteration
}

// BaumWelch re-estimates the model from the training sequences, iterating
// until the total log-likelihood improves by less than tol or maxIter is
// reached. Empty sequences are ignored.
func (h *HMM) BaumWelch(train [][]seq.Symbol, maxIter int, tol float64) TrainResult {
	prev := math.Inf(-1)
	res := TrainResult{}
	for iter := 0; iter < maxIter; iter++ {
		ll := h.baumWelchStep(train)
		res.Iterations = iter + 1
		res.LogLikelihood = ll
		if ll-prev < tol && iter > 0 {
			break
		}
		prev = ll
	}
	return res
}

// baumWelchStep performs one EM step over all sequences and returns the
// total log-likelihood of the training set under the model *before* the
// update.
func (h *HMM) baumWelchStep(train [][]seq.Symbol) float64 {
	piNum := make([]float64, h.N)
	aNum := newMatrix(h.N, h.N)
	aDen := make([]float64, h.N)
	bNum := newMatrix(h.N, h.M)
	bDen := make([]float64, h.N)
	total := 0.0
	used := 0

	for _, obs := range train {
		T := len(obs)
		if T == 0 {
			continue
		}
		used++
		alpha := newMatrix(T, h.N)
		c := h.forwardScaled(obs, alpha)
		for _, ct := range c {
			total -= math.Log(ct)
		}
		// Scaled backward pass with the same factors.
		beta := newMatrix(T, h.N)
		for i := 0; i < h.N; i++ {
			beta[T-1][i] = c[T-1]
		}
		for t := T - 2; t >= 0; t-- {
			for i := 0; i < h.N; i++ {
				s := 0.0
				for j := 0; j < h.N; j++ {
					s += h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
				}
				beta[t][i] = s * c[t]
			}
		}
		// Accumulate gamma and xi statistics. With this scaling,
		// gamma_t(i) = alpha_t(i)·beta_t(i)/c_t and
		// xi_t(i,j) = alpha_t(i)·A[i][j]·B[j][o_{t+1}]·beta_{t+1}(j).
		for t := 0; t < T; t++ {
			for i := 0; i < h.N; i++ {
				g := alpha[t][i] * beta[t][i] / c[t]
				if t == 0 {
					piNum[i] += g
				}
				bNum[i][obs[t]] += g
				bDen[i] += g
				if t < T-1 {
					aDen[i] += g
				}
			}
		}
		for t := 0; t < T-1; t++ {
			for i := 0; i < h.N; i++ {
				ai := alpha[t][i]
				if ai == 0 {
					continue
				}
				for j := 0; j < h.N; j++ {
					aNum[i][j] += ai * h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
				}
			}
		}
	}
	if used == 0 {
		return math.Inf(-1)
	}
	// Re-estimate with floors.
	for i := 0; i < h.N; i++ {
		h.Pi[i] = piNum[i]/float64(used) + floor
	}
	normalize(h.Pi)
	for i := 0; i < h.N; i++ {
		for j := 0; j < h.N; j++ {
			if aDen[i] > 0 {
				h.A[i][j] = aNum[i][j]/aDen[i] + floor
			} else {
				h.A[i][j] = 1 / float64(h.N)
			}
		}
		normalize(h.A[i])
		for k := 0; k < h.M; k++ {
			if bDen[i] > 0 {
				h.B[i][k] = bNum[i][k]/bDen[i] + floor
			} else {
				h.B[i][k] = 1 / float64(h.M)
			}
		}
		normalize(h.B[i])
	}
	return total
}

func normalize(d []float64) {
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum <= 0 {
		u := 1 / float64(len(d))
		for i := range d {
			d[i] = u
		}
		return
	}
	for i := range d {
		d[i] /= sum
	}
}

// Sample generates a sequence of the given length from the model — used by
// tests that verify Baum-Welch can recover a planted model, and available
// to synthetic workload generators.
func (h *HMM) Sample(length int, rng *rand.Rand) []seq.Symbol {
	out := make([]seq.Symbol, length)
	state := sampleDist(h.Pi, rng)
	for t := 0; t < length; t++ {
		out[t] = seq.Symbol(sampleDist(h.B[state], rng))
		state = sampleDist(h.A[state], rng)
	}
	return out
}

func sampleDist(d []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, p := range d {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(d) - 1
}
