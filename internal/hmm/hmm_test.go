package hmm

import (
	"math"
	"math/rand/v2"
	"testing"

	"cluseq/internal/seq"
)

// handHMM is a tiny two-state model with easy closed-form likelihoods.
func handHMM() *HMM {
	return &HMM{
		N:  2,
		M:  2,
		Pi: []float64{0.6, 0.4},
		A:  [][]float64{{0.7, 0.3}, {0.4, 0.6}},
		B:  [][]float64{{0.9, 0.1}, {0.2, 0.8}},
	}
}

func TestValidate(t *testing.T) {
	h := handHMM()
	if err := h.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	h.A[0][0] = 0.9 // row now sums to 1.2
	if err := h.Validate(); err == nil {
		t.Fatal("Validate should reject non-normalized row")
	}
	bad := &HMM{N: 2, M: 2, Pi: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate should reject dimension mismatch")
	}
}

func TestNewRandomIsValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	h := NewRandom(5, 7, rng)
	if err := h.Validate(); err != nil {
		t.Fatalf("NewRandom produced invalid model: %v", err)
	}
}

func TestNewRandomPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRandom(0, 3, rand.New(rand.NewPCG(1, 1)))
}

// TestLogLikelihoodMatchesBruteForce enumerates all state paths for short
// observations and compares against the scaled forward pass.
func TestLogLikelihoodMatchesBruteForce(t *testing.T) {
	h := handHMM()
	brute := func(obs []seq.Symbol) float64 {
		T := len(obs)
		total := 0.0
		paths := 1
		for i := 0; i < T; i++ {
			paths *= h.N
		}
		for p := 0; p < paths; p++ {
			states := make([]int, T)
			x := p
			for i := 0; i < T; i++ {
				states[i] = x % h.N
				x /= h.N
			}
			prob := h.Pi[states[0]] * h.B[states[0]][obs[0]]
			for i := 1; i < T; i++ {
				prob *= h.A[states[i-1]][states[i]] * h.B[states[i]][obs[i]]
			}
			total += prob
		}
		return math.Log(total)
	}
	cases := [][]seq.Symbol{
		{0}, {1}, {0, 1}, {1, 1, 0}, {0, 0, 1, 1, 0}, {1, 0, 1, 0, 1, 0},
	}
	for _, obs := range cases {
		got := h.LogLikelihood(obs)
		want := brute(obs)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("obs %v: LogLikelihood = %v, brute force = %v", obs, got, want)
		}
	}
}

func TestLogLikelihoodEmpty(t *testing.T) {
	if got := handHMM().LogLikelihood(nil); got != 0 {
		t.Fatalf("empty LogLikelihood = %v, want 0", got)
	}
}

func TestLogLikelihoodNoUnderflow(t *testing.T) {
	// A 10,000-symbol sequence has probability far below float64 range;
	// scaling must keep the log finite.
	h := handHMM()
	rng := rand.New(rand.NewPCG(3, 4))
	obs := h.Sample(10000, rng)
	ll := h.LogLikelihood(obs)
	if math.IsInf(ll, 0) || math.IsNaN(ll) {
		t.Fatalf("LogLikelihood = %v, want finite", ll)
	}
	if ll >= 0 {
		t.Fatalf("LogLikelihood = %v, want negative", ll)
	}
}

func TestViterbiConsistent(t *testing.T) {
	h := handHMM()
	obs := []seq.Symbol{0, 0, 1, 1, 1, 0}
	path, lp := h.Viterbi(obs)
	if len(path) != len(obs) {
		t.Fatalf("path length %d, want %d", len(path), len(obs))
	}
	// The Viterbi log-probability must equal the path's actual
	// log-probability and cannot exceed the total likelihood.
	actual := math.Log(h.Pi[path[0]]) + math.Log(h.B[path[0]][obs[0]])
	for i := 1; i < len(obs); i++ {
		actual += math.Log(h.A[path[i-1]][path[i]]) + math.Log(h.B[path[i]][obs[i]])
	}
	if math.Abs(lp-actual) > 1e-9 {
		t.Fatalf("Viterbi score %v != path score %v", lp, actual)
	}
	if lp > h.LogLikelihood(obs)+1e-9 {
		t.Fatalf("Viterbi score %v exceeds total likelihood %v", lp, h.LogLikelihood(obs))
	}
	// Emissions strongly identify states here: symbol 0 → state 0.
	for i, s := range obs {
		if int(s) != path[i] {
			t.Fatalf("path %v does not track emissions for obs %v", path, obs)
		}
	}
}

// TestViterbiMatchesBruteForce enumerates all state paths for short
// observations and checks Viterbi finds the maximum-probability one.
func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	for trial := 0; trial < 20; trial++ {
		h := NewRandom(2+rng.IntN(2), 2+rng.IntN(2), rng)
		T := 1 + rng.IntN(6)
		obs := make([]seq.Symbol, T)
		for i := range obs {
			obs[i] = seq.Symbol(rng.IntN(h.M))
		}
		paths := 1
		for i := 0; i < T; i++ {
			paths *= h.N
		}
		best := math.Inf(-1)
		for p := 0; p < paths; p++ {
			states := make([]int, T)
			x := p
			for i := 0; i < T; i++ {
				states[i] = x % h.N
				x /= h.N
			}
			lp := math.Log(h.Pi[states[0]]) + math.Log(h.B[states[0]][obs[0]])
			for i := 1; i < T; i++ {
				lp += math.Log(h.A[states[i-1]][states[i]]) + math.Log(h.B[states[i]][obs[i]])
			}
			if lp > best {
				best = lp
			}
		}
		_, got := h.Viterbi(obs)
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: Viterbi %v, brute force %v", trial, got, best)
		}
	}
}

func TestViterbiEmpty(t *testing.T) {
	path, lp := handHMM().Viterbi(nil)
	if path != nil || lp != 0 {
		t.Fatal("empty Viterbi should be nil path, 0 score")
	}
}

func TestBaumWelchImprovesLikelihood(t *testing.T) {
	// EM must never decrease the training likelihood.
	rng := rand.New(rand.NewPCG(9, 9))
	gen := handHMM()
	var train [][]seq.Symbol
	for i := 0; i < 20; i++ {
		train = append(train, gen.Sample(80, rng))
	}
	h := NewRandom(2, 2, rng)
	var lls []float64
	for iter := 0; iter < 15; iter++ {
		lls = append(lls, h.baumWelchStep(train))
	}
	for i := 1; i < len(lls); i++ {
		// Allow a microscopic tolerance for the probability floors, which
		// perturb the exact EM update.
		if lls[i] < lls[i-1]-1e-6 {
			t.Fatalf("likelihood decreased at iter %d: %v -> %v", i, lls[i-1], lls[i])
		}
	}
	if lls[len(lls)-1] <= lls[0] {
		t.Fatalf("likelihood did not improve: %v -> %v", lls[0], lls[len(lls)-1])
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("model invalid after training: %v", err)
	}
}

func TestBaumWelchRecoversPlantedStructure(t *testing.T) {
	// Train on data from a sharply-structured source and verify the
	// trained model assigns it far higher likelihood than a shuffled
	// control with the same symbol marginals.
	rng := rand.New(rand.NewPCG(42, 43))
	gen := &HMM{
		N:  2,
		M:  2,
		Pi: []float64{0.5, 0.5},
		A:  [][]float64{{0.05, 0.95}, {0.95, 0.05}}, // near-deterministic alternation
		B:  [][]float64{{0.95, 0.05}, {0.05, 0.95}},
	}
	var train [][]seq.Symbol
	for i := 0; i < 10; i++ {
		train = append(train, gen.Sample(200, rng))
	}
	// EM from a near-uniform start crosses a long plateau before the
	// structure emerges; train with tol=0 and keep the best of a few
	// random restarts, as any practical HMM harness does.
	var h *HMM
	bestLL := math.Inf(-1)
	for restart := 0; restart < 3; restart++ {
		cand := NewRandom(2, 2, rng)
		res := cand.BaumWelch(train, 200, 0)
		if res.LogLikelihood > bestLL {
			bestLL = res.LogLikelihood
			h = cand
		}
	}

	structured := gen.Sample(500, rng)
	shuffled := append([]seq.Symbol(nil), structured...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if h.LogLikelihood(structured) <= h.LogLikelihood(shuffled)+10 {
		t.Fatalf("trained model does not prefer structured data: %v vs %v",
			h.LogLikelihood(structured), h.LogLikelihood(shuffled))
	}
}

func TestBaumWelchConvergenceStops(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	gen := handHMM()
	train := [][]seq.Symbol{gen.Sample(100, rng), gen.Sample(100, rng)}
	h := NewRandom(2, 2, rng)
	res := h.BaumWelch(train, 200, 1e-3)
	if res.Iterations >= 200 {
		t.Fatalf("BaumWelch did not converge within 200 iterations")
	}
	if math.IsInf(res.LogLikelihood, 0) {
		t.Fatal("final log-likelihood not finite")
	}
}

func TestBaumWelchEmptyTraining(t *testing.T) {
	h := NewRandom(2, 2, rand.New(rand.NewPCG(1, 1)))
	res := h.BaumWelch(nil, 5, 1e-3)
	if !math.IsInf(res.LogLikelihood, -1) {
		t.Fatalf("training on nothing should report -Inf, got %v", res.LogLikelihood)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("model corrupted by empty training: %v", err)
	}
	// Empty sequences inside the set are skipped.
	res = h.BaumWelch([][]seq.Symbol{{}, {0, 1, 0}}, 3, 1e-3)
	if math.IsInf(res.LogLikelihood, -1) {
		t.Fatal("non-empty training sequence ignored")
	}
}

func TestSampleRespectsModel(t *testing.T) {
	// A model that always emits symbol 1 must sample only symbol 1.
	h := &HMM{
		N:  1,
		M:  2,
		Pi: []float64{1},
		A:  [][]float64{{1}},
		B:  [][]float64{{0, 1}},
	}
	out := h.Sample(50, rand.New(rand.NewPCG(2, 2)))
	for _, s := range out {
		if s != 1 {
			t.Fatalf("sampled %v from degenerate emitter", out)
		}
	}
}
