package loadgen

import (
	"fmt"
	"math"
	"strings"
)

// Tolerance parameterizes the regression comparator. Ratios bound how
// much worse a candidate may be than the baseline; floors keep tiny
// baselines from turning scheduler noise into failures (a 0.4 ms
// baseline p99 must not fail CI at 1.7 ms). A zero value for any field
// selects its default.
type Tolerance struct {
	// MinThroughputRatio fails when candidate throughput drops below
	// baseline × ratio. Default 0.7.
	MinThroughputRatio float64 `json:"min_throughput_ratio,omitempty"`
	// MaxP50Ratio and MaxP99Ratio fail when the candidate quantile
	// exceeds max(baseline × ratio, floor). Defaults 6 and 4.
	MaxP50Ratio float64 `json:"max_p50_ratio,omitempty"`
	MaxP99Ratio float64 `json:"max_p99_ratio,omitempty"`
	// P50FloorMs and P99FloorMs are the noise floors for the latency
	// gates. Defaults 15 ms and 25 ms.
	P50FloorMs float64 `json:"p50_floor_ms,omitempty"`
	P99FloorMs float64 `json:"p99_floor_ms,omitempty"`
	// MaxErrorRate is an absolute bound on the candidate's error rate,
	// checked regardless of the baseline's. Default 0.01.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
}

// withDefaults fills zero fields with the documented defaults.
func (t Tolerance) withDefaults() Tolerance {
	if t.MinThroughputRatio == 0 {
		t.MinThroughputRatio = 0.7
	}
	if t.MaxP50Ratio == 0 {
		t.MaxP50Ratio = 6
	}
	if t.MaxP99Ratio == 0 {
		t.MaxP99Ratio = 4
	}
	if t.P50FloorMs == 0 {
		t.P50FloorMs = 15
	}
	if t.P99FloorMs == 0 {
		t.P99FloorMs = 25
	}
	if t.MaxErrorRate == 0 {
		t.MaxErrorRate = 0.01
	}
	return t
}

// Verdict is the comparator's overall call.
type Verdict string

const (
	// VerdictPass: every check within tolerance.
	VerdictPass Verdict = "pass"
	// VerdictRegress: at least one check out of tolerance.
	VerdictRegress Verdict = "regress"
	// VerdictImprove: every check passes and the candidate beats the
	// baseline by a margin that would survive re-baselining (see
	// Compare); a hint to refresh the committed baseline.
	VerdictImprove Verdict = "improve"
	// VerdictMissingBaseline: nothing to compare against; the caller
	// decides whether that fails the build (CI) or just records the
	// first baseline (bootstrap).
	VerdictMissingBaseline Verdict = "missing-baseline"
)

// Check is one comparator criterion's outcome.
type Check struct {
	Name      string  `json:"name"`
	Baseline  float64 `json:"baseline"`
	Candidate float64 `json:"candidate"`
	// Limit is the effective gate after ratios and floors.
	Limit float64 `json:"limit"`
	Pass  bool    `json:"pass"`
}

// Comparison is the comparator's full report.
type Comparison struct {
	Verdict Verdict `json:"verdict"`
	Checks  []Check `json:"checks,omitempty"`
}

// String renders the report as the fixed-width table the CLI prints.
func (c Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verdict: %s\n", c.Verdict)
	for _, ch := range c.Checks {
		status := "PASS"
		if !ch.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-18s %s  baseline=%.3f candidate=%.3f limit=%.3f\n",
			ch.Name, status, ch.Baseline, ch.Candidate, ch.Limit)
	}
	return b.String()
}

// Compare gates a candidate run against a committed baseline:
//
//   - throughput must stay above baseline × MinThroughputRatio;
//   - overall p50/p99 must stay below max(baseline × ratio, floor);
//   - the candidate's error rate must stay below MaxErrorRate.
//
// A nil baseline yields VerdictMissingBaseline with no checks. When
// every check passes and the candidate's p99 is at or below half the
// baseline's (with the baseline above its noise floor, so the gain is
// real) or throughput improved ≥ 1.5×, the verdict is VerdictImprove —
// the cue to re-run the baseline procedure in benchmarks/README.md.
func Compare(baseline, candidate *Result, tol Tolerance) Comparison {
	if baseline == nil {
		return Comparison{Verdict: VerdictMissingBaseline}
	}
	tol = tol.withDefaults()
	checks := []Check{
		{
			Name:      "throughput_rps",
			Baseline:  baseline.ThroughputRPS,
			Candidate: candidate.ThroughputRPS,
			Limit:     baseline.ThroughputRPS * tol.MinThroughputRatio,
			Pass:      candidate.ThroughputRPS >= baseline.ThroughputRPS*tol.MinThroughputRatio,
		},
		latencyCheck("p50_ms", baseline.Overall.P50Ms, candidate.Overall.P50Ms, tol.MaxP50Ratio, tol.P50FloorMs),
		latencyCheck("p99_ms", baseline.Overall.P99Ms, candidate.Overall.P99Ms, tol.MaxP99Ratio, tol.P99FloorMs),
		{
			Name:      "error_rate",
			Baseline:  baseline.ErrorRate,
			Candidate: candidate.ErrorRate,
			Limit:     tol.MaxErrorRate,
			Pass:      candidate.ErrorRate <= tol.MaxErrorRate,
		},
	}
	verdict := VerdictPass
	for _, ch := range checks {
		if !ch.Pass {
			verdict = VerdictRegress
		}
	}
	if verdict == VerdictPass {
		fasterP99 := baseline.Overall.P99Ms > tol.P99FloorMs &&
			candidate.Overall.P99Ms <= baseline.Overall.P99Ms/2
		moreThroughput := candidate.ThroughputRPS >= baseline.ThroughputRPS*1.5
		if fasterP99 || moreThroughput {
			verdict = VerdictImprove
		}
	}
	return Comparison{Verdict: verdict, Checks: checks}
}

// latencyCheck builds one quantile gate: candidate ≤ max(baseline ×
// ratio, floor).
func latencyCheck(name string, base, cand, ratio, floorMs float64) Check {
	limit := math.Max(base*ratio, floorMs)
	return Check{
		Name:      name,
		Baseline:  base,
		Candidate: cand,
		Limit:     limit,
		Pass:      cand <= limit,
	}
}
