package loadgen

import (
	"strings"
	"testing"
)

// mkResult builds a result with the fields the comparator reads.
func mkResult(throughput, p50, p99, errRate float64) *Result {
	return &Result{
		ThroughputRPS: throughput,
		ErrorRate:     errRate,
		Overall:       RouteStats{P50Ms: p50, P99Ms: p99},
	}
}

func TestCompareTable(t *testing.T) {
	base := mkResult(150, 2, 8, 0)
	cases := []struct {
		name      string
		baseline  *Result
		candidate *Result
		tol       Tolerance
		want      Verdict
		failing   string // name of a check that must fail ("" = none)
	}{
		{
			name:      "identical run passes",
			baseline:  base,
			candidate: mkResult(150, 2, 8, 0),
			want:      VerdictPass,
		},
		{
			name:      "missing baseline",
			baseline:  nil,
			candidate: mkResult(150, 2, 8, 0),
			want:      VerdictMissingBaseline,
		},
		{
			name:      "throughput collapse regresses",
			baseline:  base,
			candidate: mkResult(90, 2, 8, 0), // < 150 × 0.7
			want:      VerdictRegress,
			failing:   "throughput_rps",
		},
		{
			name:      "p99 blowup regresses",
			baseline:  base,
			candidate: mkResult(150, 2, 80, 0), // > max(8 × 4, 25)
			want:      VerdictRegress,
			failing:   "p99_ms",
		},
		{
			name:      "error rate regresses",
			baseline:  base,
			candidate: mkResult(150, 2, 8, 0.05),
			want:      VerdictRegress,
			failing:   "error_rate",
		},
		{
			name:     "noise floor absorbs small-baseline jitter",
			baseline: base,
			// 4× the baseline p99 but still under the 25 ms floor: the
			// floor exists exactly so this does not fail CI.
			candidate: mkResult(150, 6, 24, 0),
			want:      VerdictPass,
		},
		{
			name:      "custom floor tightens the gate",
			baseline:  base,
			candidate: mkResult(150, 2, 24, 0),
			tol:       Tolerance{P99FloorMs: 10}, // gate = max(8 × 4, 10) = 32 → still passes
			want:      VerdictPass,
		},
		{
			name:      "big p99 win improves",
			baseline:  mkResult(150, 20, 80, 0),
			candidate: mkResult(150, 20, 30, 0),
			want:      VerdictImprove,
		},
		{
			name:      "throughput win improves",
			baseline:  base,
			candidate: mkResult(300, 2, 8, 0),
			want:      VerdictImprove,
		},
		{
			name:      "sub-floor p99 halving is not an improvement",
			baseline:  base, // p99 8 ms is below the 25 ms floor: noise, not a win
			candidate: mkResult(150, 2, 3, 0),
			want:      VerdictPass,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmp := Compare(tc.baseline, tc.candidate, tc.tol)
			if cmp.Verdict != tc.want {
				t.Fatalf("verdict = %s, want %s\n%s", cmp.Verdict, tc.want, cmp)
			}
			if tc.want == VerdictMissingBaseline {
				if len(cmp.Checks) != 0 {
					t.Fatalf("missing baseline should carry no checks: %+v", cmp.Checks)
				}
				return
			}
			if len(cmp.Checks) != 4 {
				t.Fatalf("got %d checks, want 4", len(cmp.Checks))
			}
			for _, ch := range cmp.Checks {
				switch {
				case ch.Name == tc.failing && ch.Pass:
					t.Errorf("check %s should fail\n%s", ch.Name, cmp)
				case ch.Name != tc.failing && !ch.Pass:
					t.Errorf("check %s should pass\n%s", ch.Name, cmp)
				}
			}
		})
	}
}

func TestComparisonString(t *testing.T) {
	cmp := Compare(mkResult(150, 2, 8, 0), mkResult(90, 2, 8, 0), Tolerance{})
	s := cmp.String()
	for _, want := range []string{"verdict: regress", "throughput_rps", "FAIL", "p99_ms", "PASS"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestToleranceDefaults(t *testing.T) {
	tol := Tolerance{}.withDefaults()
	if tol.MinThroughputRatio != 0.7 || tol.MaxP99Ratio != 4 || tol.P99FloorMs != 25 || tol.MaxErrorRate != 0.01 {
		t.Fatalf("defaults = %+v", tol)
	}
	// Explicit values survive.
	tol = Tolerance{MaxP99Ratio: 2, P99FloorMs: 1}.withDefaults()
	if tol.MaxP99Ratio != 2 || tol.P99FloorMs != 1 {
		t.Fatalf("explicit values overwritten: %+v", tol)
	}
}
