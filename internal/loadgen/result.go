package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"cluseq/internal/histogram"
	"cluseq/internal/obs"
)

// RouteStats summarizes one route's (or the overall) latency
// distribution and counts.
type RouteStats struct {
	// Requests counts responses received (any HTTP status); transport
	// errors never produce a latency sample and are excluded.
	Requests int64 `json:"requests"`
	// Errors counts responses outside 2xx plus validation failures.
	Errors int64 `json:"errors"`
	// Latency quantiles in milliseconds, at histogram resolution.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// ServerStats is the target's own view of the run, scraped from its
// GET /metrics after the last response: the per-route request counters
// and sequence totals from the daemon's obs registry.
type ServerStats struct {
	Requests       map[string]int64 `json:"requests,omitempty"`
	SequencesTotal int64            `json:"sequences_total,omitempty"`
}

// TraceRef names one request's server-side trace: enough to pull the
// full span breakdown from the target's GET /debug/traces (or grep the
// -trace-out JSONL) after the run.
type TraceRef struct {
	TraceID   string  `json:"trace_id"`
	Route     string  `json:"route"`
	Status    int     `json:"status"`
	LatencyMs float64 `json:"latency_ms"`
}

// HostInfo records where a result was measured; baselines are only
// comparable within similar host classes (see benchmarks/README.md).
type HostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Result is the JSON document one scenario run emits. It is
// deterministic in shape (struct field order, sorted maps) so committed
// baselines diff cleanly; only the measured values vary run to run.
type Result struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// StartedAt is stamped by the CLI (RFC 3339); the library leaves it
	// empty so library runs stay reproducible byte for byte.
	StartedAt string   `json:"started_at,omitempty"`
	Host      HostInfo `json:"host"`

	// RequestsSent is the full schedule length — every request the
	// open-loop process offered.
	RequestsSent int `json:"requests_sent"`
	// WallSeconds spans first dispatch to last response.
	WallSeconds float64 `json:"wall_seconds"`
	// ThroughputRPS is completed responses per wall-clock second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// ErrorRate is errored requests (transport, non-2xx, validation)
	// over RequestsSent.
	ErrorRate float64 `json:"error_rate"`
	// Errors breaks failures down by class: "net", "4xx", "5xx",
	// "bad_response".
	Errors map[string]int64 `json:"errors,omitempty"`

	// LateDispatches counts requests that left more than 1 ms after
	// their scheduled arrival (worker-pool saturation); MaxLateMs is
	// the worst lag. Sustained lateness means the generator — not the
	// server — was the bottleneck, and the scenario's MaxInflight or
	// the host is undersized for the offered rate.
	LateDispatches int64   `json:"late_dispatches"`
	MaxLateMs      float64 `json:"max_late_ms"`

	// Routes breaks the run down by traffic class: "single", "batch",
	// "reload", "ingest". Overall merges the route latency histograms.
	Routes  map[string]RouteStats `json:"routes"`
	Overall RouteStats            `json:"overall"`

	// Server is the target's own counters (nil when unscraped).
	Server *ServerStats `json:"server,omitempty"`

	// SlowestTraces names the K slowest responses' traces, slowest
	// first (see Runner.TraceSlowest; absent when tracing is off or the
	// target sends no X-Trace-ID header). Committed baselines omit it —
	// the measured set varies run to run even though the IDs themselves
	// are seed-deterministic.
	SlowestTraces []TraceRef `json:"slowest_traces,omitempty"`
}

// lateThresholdMs separates scheduling jitter from real dispatch lag.
const lateThresholdMs = 1.0

// reduce folds per-request samples into a Result. The samples are
// recorded into an obs registry first — counters and latency
// histograms per route, the same series shapes the daemon itself
// exports — and the result's route breakdown is then sourced from
// those series, so the generator's and the server's metrics pipelines
// stay structurally comparable.
// routeSeries bundles one route's obs handles; registered once per
// route so every record and readback shares the same handle.
type routeSeries struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

func reduce(sc *Scenario, schedule []Request, samples []sample, wall time.Duration, traceSlowest int) *Result {
	reg := obs.NewRegistry()
	series := make(map[string]routeSeries, 4)
	for _, kind := range []Kind{KindSingle, KindBatch, KindReload, KindIngest} {
		route := kind.Route()
		series[route] = routeSeries{
			requests: reg.Counter("loadgen_requests_total", "route", route),
			errors:   reg.Counter("loadgen_errors_total", "route", route),
			latency:  reg.Histogram("loadgen_latency_ms", 0, sc.HistMaxMs, sc.HistBuckets, "route", route),
		}
	}
	maxMs := map[string]float64{}
	res := &Result{
		Scenario: sc.Name,
		Seed:     sc.Seed,
		Host: HostInfo{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		RequestsSent: len(schedule),
		WallSeconds:  wall.Seconds(),
		Errors:       map[string]int64{},
		Routes:       map[string]RouteStats{},
	}

	for i, s := range samples {
		route := schedule[i].Kind.Route()
		rs := series[route]
		rs.requests.Inc()
		switch {
		case s.status == 0:
			res.Errors["net"]++
			rs.errors.Inc()
		case s.status >= 500:
			res.Errors["5xx"]++
			rs.errors.Inc()
		case s.status >= 400:
			res.Errors["4xx"]++
			rs.errors.Inc()
		case s.badResp:
			res.Errors["bad_response"]++
			rs.errors.Inc()
		}
		if s.status != 0 {
			rs.latency.Observe(s.latencyMs)
			if s.latencyMs > maxMs[route] {
				maxMs[route] = s.latencyMs
			}
		}
		if s.lateMs > lateThresholdMs {
			res.LateDispatches++
		}
		if s.lateMs > res.MaxLateMs {
			res.MaxLateMs = s.lateMs
		}
	}

	// Per-route stats from the registry's series; the overall
	// distribution is the exact merge of the route histograms.
	overall, _ := histogram.New(0, sc.HistMaxMs, sc.HistBuckets)
	var overallSum float64
	for _, kind := range []Kind{KindSingle, KindBatch, KindReload, KindIngest} {
		route := kind.Route()
		rs := series[route]
		requests := rs.requests.Value()
		if requests == 0 {
			continue
		}
		res.Routes[route] = routeStats(rs.latency, requests, rs.errors.Value(), maxMs[route])
		overall.Merge(rs.latency.Export()) // same domain by construction
		overallSum += rs.latency.Sum()
	}
	res.Overall = statsFromHistogram(overall, overallSum)
	for _, rs := range res.Routes {
		res.Overall.Errors += rs.Errors
		if rs.MaxMs > res.Overall.MaxMs {
			res.Overall.MaxMs = rs.MaxMs
		}
	}
	if res.WallSeconds > 0 {
		res.ThroughputRPS = float64(res.Overall.Requests) / res.WallSeconds
	}
	res.ErrorRate = float64(errorTotal(res)) / float64(res.RequestsSent)
	res.SlowestTraces = slowestTraces(schedule, samples, traceSlowest)
	return res
}

// slowestTraces picks the k slowest traced responses, slowest first,
// breaking latency ties by schedule index so the selection is
// deterministic for a fixed set of samples.
func slowestTraces(schedule []Request, samples []sample, k int) []TraceRef {
	if k <= 0 {
		return nil
	}
	idx := make([]int, 0, len(samples))
	for i, s := range samples {
		if s.traceID != "" {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := samples[idx[a]], samples[idx[b]]
		if sa.latencyMs != sb.latencyMs {
			return sa.latencyMs > sb.latencyMs
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	refs := make([]TraceRef, 0, len(idx))
	for _, i := range idx {
		refs = append(refs, TraceRef{
			TraceID:   samples[i].traceID,
			Route:     schedule[i].Kind.Route(),
			Status:    samples[i].status,
			LatencyMs: samples[i].latencyMs,
		})
	}
	return refs
}

// routeStats reads one route's obs series into the result shape.
func routeStats(h *obs.Histogram, requests, errors int64, maxMs float64) RouteStats {
	rs := statsFromHistogram(h.Export(), h.Sum())
	rs.Requests = requests
	rs.Errors = errors
	rs.MaxMs = maxMs
	return rs
}

// statsFromHistogram computes the quantile summary of one latency
// histogram. Requests defaults to the histogram's sample count.
func statsFromHistogram(h *histogram.Histogram, sum float64) RouteStats {
	rs := RouteStats{Requests: int64(h.Count())}
	if h.Count() == 0 {
		return rs
	}
	rs.MeanMs = sum / float64(h.Count())
	quantile := func(q float64) float64 {
		v, _ := h.Quantile(q)
		return v
	}
	rs.P50Ms = quantile(0.50)
	rs.P90Ms = quantile(0.90)
	rs.P99Ms = quantile(0.99)
	rs.P999Ms = quantile(0.999)
	return rs
}

// errorTotal sums the result's error classes.
func errorTotal(res *Result) int64 {
	var n int64
	for _, v := range res.Errors {
		n += v
	}
	return n
}

// WriteResult writes the result as indented JSON, the format committed
// under benchmarks/results/.
func WriteResult(path string, res *Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: encoding result: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadResult loads a result (typically a committed baseline).
func ReadResult(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return &res, nil
}
