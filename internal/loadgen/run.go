package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"cluseq/internal/pool"
)

// Runner executes scenarios against one target server.
type Runner struct {
	// BaseURL roots the target's API, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client, when non-nil, overrides the HTTP client. The default
	// enables enough idle connections to keep MaxInflight requests on
	// warm keep-alive sockets, so connection setup does not pollute the
	// latency distribution.
	Client *http.Client
	// Workers, when positive, overrides the scenario's MaxInflight.
	Workers int
	// Validate decodes every classify response and checks that the
	// result count matches the request's batch size (order-preservation
	// smoke check). Costs CPU on the generator; off by default.
	Validate bool
	// ScrapeTarget, when set, fetches the target's GET /metrics after
	// the run and embeds its request counters in the result, so
	// client-observed and server-observed counts can be cross-checked.
	ScrapeTarget bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// sample is one request's outcome, written by exactly one pool worker
// at its own schedule index.
type sample struct {
	status    int // HTTP status; 0 = transport error
	latencyMs float64
	lateMs    float64 // dispatch lag behind the scheduled arrival
	badResp   bool    // response decoded but failed validation
}

// classifyBody mirrors the server's ClassifyRequest JSON shape without
// importing internal/server (the runner must drive any HTTP target,
// including test stubs).
type classifyBody struct {
	Model     string   `json:"model"`
	Sequence  string   `json:"sequence,omitempty"`
	Sequences []string `json:"sequences,omitempty"`
}

// ingestBody mirrors the server's IngestRequest JSON shape, again
// without the internal/server import.
type ingestBody struct {
	Sequence  string   `json:"sequence,omitempty"`
	Sequences []string `json:"sequences,omitempty"`
}

// classifyReply is the subset of the server's response the optional
// validation pass reads; /v1/ingest answers the same index-aligned
// "results" array, so one shape validates both.
type classifyReply struct {
	Results []json.RawMessage `json:"results"`
}

// Run replays the scenario against the target and reduces the
// per-request samples into a Result. The schedule is executed open
// loop: each request fires at its precomputed arrival offset (or as
// soon after as a worker frees up — the lag is recorded, never
// absorbed into the offered schedule).
func (r *Runner) Run(sc *Scenario) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if r.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: Runner.BaseURL is required")
	}
	schedule := sc.Schedule()
	if len(schedule) == 0 {
		return nil, fmt.Errorf("loadgen: scenario %q schedules no requests (rate %v over %vs)",
			sc.Name, sc.RatePerSec, sc.DurationSec)
	}
	seqs := sc.Sequences()
	workers := sc.MaxInflight
	if r.Workers > 0 {
		workers = r.Workers
	}
	client := r.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        workers + 8,
				MaxIdleConnsPerHost: workers + 8,
			},
		}
	}
	r.logf("loadgen: scenario %s: %d requests over %.1fs (offered %.0f rps, %d workers)",
		sc.Name, len(schedule), sc.DurationSec, sc.RatePerSec, workers)

	samples := make([]sample, len(schedule))
	p := pool.New(workers - 1)
	start := time.Now()
	p.Run(len(schedule), func(i int) {
		req := schedule[i]
		if wait := req.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		late := time.Since(start) - req.At
		samples[i] = r.fire(client, sc, seqs, req)
		samples[i].lateMs = float64(late) / float64(time.Millisecond)
	})
	wall := time.Since(start)

	res := reduce(sc, schedule, samples, wall)
	if r.ScrapeTarget {
		res.Server = r.scrape()
	}
	r.logf("loadgen: scenario %s: %d/%d ok, %.0f rps achieved, p99 %.2fms",
		sc.Name, res.Overall.Requests-errorTotal(res), res.RequestsSent, res.ThroughputRPS, res.Overall.P99Ms)
	return res, nil
}

// fire sends one scheduled request and reports its outcome.
func (r *Runner) fire(client *http.Client, sc *Scenario, seqs []string, req Request) sample {
	var (
		url  string
		body []byte
	)
	switch req.Kind {
	case KindReload:
		url = r.BaseURL + "/v1/models/reload"
	case KindIngest:
		ib := ingestBody{}
		if req.Batch <= 1 {
			ib.Sequence = seqs[req.Seq%len(seqs)]
		} else {
			ib.Sequences = make([]string, req.Batch)
			for k := range ib.Sequences {
				ib.Sequences[k] = seqs[(req.Seq+k)%len(seqs)]
			}
		}
		var err error
		if body, err = json.Marshal(ib); err != nil {
			return sample{} // unreachable: the body is plain strings
		}
		url = r.BaseURL + "/v1/ingest"
	default:
		cb := classifyBody{Model: sc.Model}
		if req.Kind == KindSingle {
			cb.Sequence = seqs[req.Seq%len(seqs)]
		} else {
			cb.Sequences = make([]string, req.Batch)
			for k := range cb.Sequences {
				cb.Sequences[k] = seqs[(req.Seq+k)%len(seqs)]
			}
		}
		var err error
		if body, err = json.Marshal(cb); err != nil {
			return sample{} // unreachable: the body is plain strings
		}
		url = r.BaseURL + "/v1/classify"
	}

	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{status: 0, latencyMs: float64(time.Since(t0)) / float64(time.Millisecond)}
	}
	s := sample{status: resp.StatusCode}
	if r.Validate && req.Kind != KindReload && resp.StatusCode == http.StatusOK {
		// Both classify and ingest answer index-aligned results arrays.
		var reply classifyReply
		if decErr := json.NewDecoder(resp.Body).Decode(&reply); decErr != nil || len(reply.Results) != req.Batch {
			s.badResp = true
		}
	}
	// Latency covers the full exchange including body drain, matching
	// what a real client experiences.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.latencyMs = float64(time.Since(t0)) / float64(time.Millisecond)
	return s
}

// scrape fetches the target's JSON /metrics for the server-side view.
// Failures degrade to a nil section rather than failing the run: the
// target may be a stub without a metrics endpoint.
func (r *Runner) scrape() *ServerStats {
	resp, err := http.Get(r.BaseURL + "/metrics")
	if err != nil {
		r.logf("loadgen: scraping target metrics: %v", err)
		return nil
	}
	defer resp.Body.Close()
	var m struct {
		Requests       map[string]int64 `json:"requests"`
		SequencesTotal int64            `json:"sequences_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		r.logf("loadgen: decoding target metrics: %v", err)
		return nil
	}
	return &ServerStats{Requests: m.Requests, SequencesTotal: m.SequencesTotal}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}
