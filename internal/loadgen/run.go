package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"cluseq/internal/pool"
)

// Runner executes scenarios against one target server.
type Runner struct {
	// BaseURL roots the target's API, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client, when non-nil, overrides the HTTP client. The default
	// enables enough idle connections to keep MaxInflight requests on
	// warm keep-alive sockets, so connection setup does not pollute the
	// latency distribution.
	Client *http.Client
	// Workers, when positive, overrides the scenario's MaxInflight.
	Workers int
	// Validate decodes every classify response and checks that the
	// result count matches the request's batch size (order-preservation
	// smoke check). Costs CPU on the generator; off by default.
	Validate bool
	// ScrapeTarget, when set, fetches the target's GET /metrics after
	// the run and embeds its request counters in the result, so
	// client-observed and server-observed counts can be cross-checked.
	ScrapeTarget bool
	// TraceSlowest, when positive, sends a deterministic W3C traceparent
	// on every request (derived from the scenario seed and the schedule
	// index, so reruns offer identical trace IDs) and records the trace
	// IDs of the K slowest responses in the result — naming the exact
	// traces to pull from the target's GET /debug/traces afterwards. The
	// traceparent is sent unsampled: retention stays the target's own
	// tail policy, so a load run does not force-retain every request.
	TraceSlowest int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// sample is one request's outcome, written by exactly one pool worker
// at its own schedule index.
type sample struct {
	status    int // HTTP status; 0 = transport error
	latencyMs float64
	lateMs    float64 // dispatch lag behind the scheduled arrival
	badResp   bool    // response decoded but failed validation
	traceID   string  // the response's X-Trace-ID, when tracing is on
}

// classifyBody mirrors the server's ClassifyRequest JSON shape without
// importing internal/server (the runner must drive any HTTP target,
// including test stubs).
type classifyBody struct {
	Model     string   `json:"model"`
	Sequence  string   `json:"sequence,omitempty"`
	Sequences []string `json:"sequences,omitempty"`
}

// ingestBody mirrors the server's IngestRequest JSON shape, again
// without the internal/server import.
type ingestBody struct {
	Sequence  string   `json:"sequence,omitempty"`
	Sequences []string `json:"sequences,omitempty"`
}

// classifyReply is the subset of the server's response the optional
// validation pass reads; /v1/ingest answers the same index-aligned
// "results" array, so one shape validates both.
type classifyReply struct {
	Results []json.RawMessage `json:"results"`
}

// Run replays the scenario against the target and reduces the
// per-request samples into a Result. The schedule is executed open
// loop: each request fires at its precomputed arrival offset (or as
// soon after as a worker frees up — the lag is recorded, never
// absorbed into the offered schedule).
func (r *Runner) Run(sc *Scenario) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if r.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: Runner.BaseURL is required")
	}
	schedule := sc.Schedule()
	if len(schedule) == 0 {
		return nil, fmt.Errorf("loadgen: scenario %q schedules no requests (rate %v over %vs)",
			sc.Name, sc.RatePerSec, sc.DurationSec)
	}
	seqs := sc.Sequences()
	workers := sc.MaxInflight
	if r.Workers > 0 {
		workers = r.Workers
	}
	client := r.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        workers + 8,
				MaxIdleConnsPerHost: workers + 8,
			},
		}
	}
	r.logf("loadgen: scenario %s: %d requests over %.1fs (offered %.0f rps, %d workers)",
		sc.Name, len(schedule), sc.DurationSec, sc.RatePerSec, workers)

	samples := make([]sample, len(schedule))
	p := pool.New(workers - 1)
	start := time.Now()
	p.Run(len(schedule), func(i int) {
		req := schedule[i]
		if wait := req.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		late := time.Since(start) - req.At
		samples[i] = r.fire(client, sc, seqs, req, i)
		samples[i].lateMs = float64(late) / float64(time.Millisecond)
	})
	wall := time.Since(start)

	res := reduce(sc, schedule, samples, wall, r.TraceSlowest)
	if r.ScrapeTarget {
		res.Server = r.scrape()
	}
	r.logf("loadgen: scenario %s: %d/%d ok, %.0f rps achieved, p99 %.2fms",
		sc.Name, res.Overall.Requests-errorTotal(res), res.RequestsSent, res.ThroughputRPS, res.Overall.P99Ms)
	return res, nil
}

// fire sends one scheduled request and reports its outcome. idx is the
// request's schedule index, which keys its deterministic trace context.
func (r *Runner) fire(client *http.Client, sc *Scenario, seqs []string, req Request, idx int) sample {
	var (
		url  string
		body []byte
	)
	switch req.Kind {
	case KindReload:
		url = r.BaseURL + "/v1/models/reload"
	case KindIngest:
		ib := ingestBody{}
		if req.Batch <= 1 {
			ib.Sequence = seqs[req.Seq%len(seqs)]
		} else {
			ib.Sequences = make([]string, req.Batch)
			for k := range ib.Sequences {
				ib.Sequences[k] = seqs[(req.Seq+k)%len(seqs)]
			}
		}
		var err error
		if body, err = json.Marshal(ib); err != nil {
			return sample{} // unreachable: the body is plain strings
		}
		url = r.BaseURL + "/v1/ingest"
	default:
		cb := classifyBody{Model: sc.Model}
		if req.Kind == KindSingle {
			cb.Sequence = seqs[req.Seq%len(seqs)]
		} else {
			cb.Sequences = make([]string, req.Batch)
			for k := range cb.Sequences {
				cb.Sequences[k] = seqs[(req.Seq+k)%len(seqs)]
			}
		}
		var err error
		if body, err = json.Marshal(cb); err != nil {
			return sample{} // unreachable: the body is plain strings
		}
		url = r.BaseURL + "/v1/classify"
	}

	hreq, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return sample{} // unreachable: the URL is built above
	}
	hreq.Header.Set("Content-Type", "application/json")
	if r.TraceSlowest > 0 {
		hreq.Header.Set("traceparent", traceparentFor(sc.Seed, idx))
	}
	t0 := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		return sample{status: 0, latencyMs: float64(time.Since(t0)) / float64(time.Millisecond)}
	}
	s := sample{status: resp.StatusCode, traceID: resp.Header.Get("X-Trace-ID")}
	if r.Validate && req.Kind != KindReload && resp.StatusCode == http.StatusOK {
		// Both classify and ingest answer index-aligned results arrays.
		var reply classifyReply
		if decErr := json.NewDecoder(resp.Body).Decode(&reply); decErr != nil || len(reply.Results) != req.Batch {
			s.badResp = true
		}
	}
	// Latency covers the full exchange including body drain, matching
	// what a real client experiences.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.latencyMs = float64(time.Since(t0)) / float64(time.Millisecond)
	return s
}

// traceparentFor renders request idx's deterministic W3C traceparent:
// the trace ID is a splitmix64 expansion of (seed, idx), the parent span
// ID a third round, and the flags byte is 00 (unsampled — the target's
// tail policy decides retention). The same (seed, idx) always yields the
// same trace ID, so a rerun can be correlated against a prior run's
// /debug/traces dump.
func traceparentFor(seed int64, idx int) string {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(idx)
	a, b, c := splitmix64(&x), splitmix64(&x), splitmix64(&x)
	if a == 0 && b == 0 {
		b = 1 // an all-zero trace ID is invalid per the spec
	}
	if c == 0 {
		c = 1
	}
	return fmt.Sprintf("00-%016x%016x-%016x-00", a, b, c)
}

// splitmix64 advances *x and returns the next output of the SplitMix64
// sequence — the same mixer the daemon's trace sampler uses.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// scrape fetches the target's JSON /metrics for the server-side view.
// Failures degrade to a nil section rather than failing the run: the
// target may be a stub without a metrics endpoint.
func (r *Runner) scrape() *ServerStats {
	resp, err := http.Get(r.BaseURL + "/metrics")
	if err != nil {
		r.logf("loadgen: scraping target metrics: %v", err)
		return nil
	}
	defer resp.Body.Close()
	var m struct {
		Requests       map[string]int64 `json:"requests"`
		SequencesTotal int64            `json:"sequences_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		r.logf("loadgen: decoding target metrics: %v", err)
		return nil
	}
	return &ServerStats{Requests: m.Requests, SequencesTotal: m.SequencesTotal}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}
