package loadgen

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// stubServer mimics cluseqd's surface closely enough for the runner:
// /v1/classify answers index-aligned results, /v1/models/reload answers
// an empty report, /metrics serves the legacy JSON counters. It counts
// what it saw so the test can cross-check the runner's bookkeeping.
type stubServer struct {
	mu        sync.Mutex
	singles   int64
	batches   int64
	reloads   int64
	ingests   int64
	sequences int64
}

func (s *stubServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Model     string   `json:"model"`
			Sequence  string   `json:"sequence"`
			Sequences []string `json:"sequences"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := len(req.Sequences)
		s.mu.Lock()
		if req.Sequence != "" {
			s.singles++
			n = 1
		} else {
			s.batches++
		}
		s.sequences += int64(n)
		s.mu.Unlock()
		results := make([]map[string]any, n)
		for i := range results {
			results[i] = map[string]any{"cluster": 0, "similarity": 1.2}
		}
		json.NewEncoder(w).Encode(map[string]any{"model": req.Model, "results": results})
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Sequence  string   `json:"sequence"`
			Sequences []string `json:"sequences"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := len(req.Sequences)
		if req.Sequence != "" {
			n = 1
		}
		s.mu.Lock()
		s.ingests++
		s.mu.Unlock()
		results := make([]map[string]any, n)
		for i := range results {
			results[i] = map[string]any{"status": "accepted", "cluster": 0, "similarity": 1.2}
		}
		json.NewEncoder(w).Encode(map[string]any{"results": results, "accepted": n, "clusters": 1})
	})
	mux.HandleFunc("POST /v1/models/reload", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.reloads++
		s.mu.Unlock()
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"requests":        map[string]int64{"classify": s.singles + s.batches, "reload": s.reloads},
			"sequences_total": s.sequences,
		})
	})
	return mux
}

// e2eScenario is quick enough for -race CI but busy enough to exercise
// batches and reloads.
func e2eScenario() *Scenario {
	return &Scenario{
		Name:            "stub-e2e",
		Seed:            7,
		Model:           "m",
		Alphabet:        "abcd",
		SeqLen:          8,
		SeqPool:         16,
		RatePerSec:      400,
		DurationSec:     1,
		BatchFraction:   0.3,
		BatchSizes:      []BatchSize{{Size: 4, Weight: 1}, {Size: 16, Weight: 1}},
		ReloadPeriodSec: 0.25,
		MaxInflight:     16,
	}
}

// TestRunAgainstStub is the library-level end-to-end: replay a scenario
// against an httptest stub and assert the runner's histograms account
// for every request sent — client-side totals, per-route split, and the
// stub's own counts all agree.
func TestRunAgainstStub(t *testing.T) {
	stub := &stubServer{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	sc := e2eScenario()
	r := &Runner{BaseURL: ts.URL, Validate: true, ScrapeTarget: true, Logf: t.Logf}
	res, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	schedule := sc.Schedule()
	if res.RequestsSent != len(schedule) {
		t.Fatalf("RequestsSent = %d, want schedule length %d", res.RequestsSent, len(schedule))
	}
	// Histogram totals equal requests sent: every offered request got a
	// response (the stub can't fail) and produced a latency sample.
	if res.Overall.Requests != int64(len(schedule)) {
		t.Fatalf("overall histogram holds %d samples, want %d (one per request sent)",
			res.Overall.Requests, len(schedule))
	}
	var routeSum int64
	for _, rs := range res.Routes {
		routeSum += rs.Requests
	}
	if routeSum != int64(len(schedule)) {
		t.Fatalf("per-route requests sum to %d, want %d", routeSum, len(schedule))
	}
	if got := errorTotal(res); got != 0 {
		t.Fatalf("errors = %v, want none", res.Errors)
	}
	if res.ErrorRate != 0 {
		t.Fatalf("error rate = %v, want 0", res.ErrorRate)
	}

	// The client-side split must match what the stub observed.
	var wantSingles, wantBatches, wantReloads int64
	for _, req := range schedule {
		switch req.Kind {
		case KindSingle:
			wantSingles++
		case KindBatch:
			wantBatches++
		case KindReload:
			wantReloads++
		}
	}
	if stub.singles != wantSingles || stub.batches != wantBatches || stub.reloads != wantReloads {
		t.Fatalf("stub saw %d/%d/%d single/batch/reload, schedule says %d/%d/%d",
			stub.singles, stub.batches, stub.reloads, wantSingles, wantBatches, wantReloads)
	}
	if res.Routes["single"].Requests != wantSingles || res.Routes["batch"].Requests != wantBatches ||
		res.Routes["reload"].Requests != wantReloads {
		t.Fatalf("route stats %+v disagree with schedule %d/%d/%d",
			res.Routes, wantSingles, wantBatches, wantReloads)
	}

	// The scraped server section reflects the stub's metrics endpoint.
	if res.Server == nil {
		t.Fatal("ScrapeTarget should populate the server section")
	}
	if got := res.Server.Requests["classify"]; got != wantSingles+wantBatches {
		t.Fatalf("server-side classify count = %d, want %d", got, wantSingles+wantBatches)
	}

	// Sanity on derived values.
	if res.ThroughputRPS <= 0 || res.WallSeconds <= 0 {
		t.Fatalf("throughput %v over %vs", res.ThroughputRPS, res.WallSeconds)
	}
	if res.Overall.P99Ms < res.Overall.P50Ms {
		t.Fatalf("p99 %v < p50 %v", res.Overall.P99Ms, res.Overall.P50Ms)
	}
}

// TestRunRecordsServerErrors: a stub that 500s on classify must surface
// as 5xx error counts and a non-zero error rate, not a run failure.
func TestRunRecordsServerErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	sc := e2eScenario()
	sc.RatePerSec = 200
	sc.ReloadPeriodSec = 0
	r := &Runner{BaseURL: ts.URL}
	res, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors["5xx"] != int64(res.RequestsSent) {
		t.Fatalf("5xx = %d, want every request (%d)", res.Errors["5xx"], res.RequestsSent)
	}
	if res.ErrorRate != 1 {
		t.Fatalf("error rate = %v, want 1", res.ErrorRate)
	}
	if hits.Load() != int64(res.RequestsSent) {
		t.Fatalf("stub saw %d requests, runner sent %d", hits.Load(), res.RequestsSent)
	}
}

// TestRunValidationCatchesShortBatch: a stub that drops batch results
// must be flagged as bad_response when Validate is on.
func TestRunValidationCatchesShortBatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Always answer a single-result body, wrong for any batch.
		w.Write([]byte(`{"results":[{"cluster":0}]}`))
	}))
	defer ts.Close()

	sc := e2eScenario()
	sc.BatchFraction = 1
	sc.RatePerSec = 100
	sc.ReloadPeriodSec = 0
	r := &Runner{BaseURL: ts.URL, Validate: true}
	res, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors["bad_response"] != int64(res.RequestsSent) {
		t.Fatalf("bad_response = %d, want %d", res.Errors["bad_response"], res.RequestsSent)
	}
}

// TestRunnerRequiresTarget pins the constructor-free API's validation.
func TestRunnerRequiresTarget(t *testing.T) {
	sc := e2eScenario()
	if _, err := (&Runner{}).Run(sc); err == nil || !strings.Contains(err.Error(), "BaseURL") {
		t.Fatalf("missing BaseURL should fail, got %v", err)
	}
	bad := e2eScenario()
	bad.RatePerSec = 0
	if _, err := (&Runner{BaseURL: "http://x"}).Run(bad); err == nil {
		t.Fatal("invalid scenario should fail Run")
	}
}

// TestRunIngestMix replays a scenario with ingest traffic against the
// stub: the ingest route must appear in the result with zero errors,
// batch validation must hold on ingest responses too, and the stub's
// count must match the schedule's ingest share.
func TestRunIngestMix(t *testing.T) {
	stub := &stubServer{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	sc := e2eScenario()
	sc.Name = "stub-ingest"
	sc.IngestFraction = 0.4
	r := &Runner{BaseURL: ts.URL, Validate: true}
	res, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var wantIngest int64
	for _, req := range sc.Schedule() {
		if req.Kind == KindIngest {
			wantIngest++
		}
	}
	if wantIngest == 0 {
		t.Fatal("scenario scheduled no ingest requests")
	}
	ing, ok := res.Routes["ingest"]
	if !ok {
		t.Fatalf("no ingest route in result: %v", res.Routes)
	}
	if ing.Requests != wantIngest || ing.Errors != 0 {
		t.Fatalf("ingest route = %+v, want %d requests, 0 errors", ing, wantIngest)
	}
	stub.mu.Lock()
	got := stub.ingests
	stub.mu.Unlock()
	if got != wantIngest {
		t.Fatalf("stub saw %d ingests, schedule carried %d", got, wantIngest)
	}
	if res.ErrorRate != 0 {
		t.Fatalf("error rate %v, want 0 (errors: %v)", res.ErrorRate, res.Errors)
	}
}
