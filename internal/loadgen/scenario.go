// Package loadgen is the serving-side load harness: an open-loop
// (Poisson-arrival) generator that drives a cluseqd instance with mixed
// traffic — single classifications, batch classifications with a
// configurable batch-size distribution, streaming ingest (when the
// target runs with -stream), and periodic hot reloads under fire — and
// reduces the observations into a deterministic JSON result
// that a CI gate can compare against a committed baseline.
//
// The package splits into four pieces so each is testable without a
// live server:
//
//   - Scenario (this file): the replayable workload spec. Everything a
//     run does — arrival times, request kinds, batch sizes, payloads —
//     is a pure function of the spec, so a (scenario, seed) pair pins a
//     request schedule bit-for-bit.
//   - Schedule (schedule.go): the deterministic open-loop request
//     timetable derived from a Scenario.
//   - Runner (run.go): executes a schedule against a target over HTTP
//     on a bounded internal/pool worker pool, recording per-request
//     samples into index-partitioned state.
//   - Result / Compare (result.go, compare.go): the emitted JSON shape
//     and the tolerance-gated comparator CI uses for regression gates.
//
// Open loop means arrivals are scheduled by the generator's clock, not
// by response completion: a slow server does not slow the offered load,
// it grows the in-flight count (up to MaxInflight) and the measured
// latency — which is the failure mode a capacity test must expose.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// BatchSize is one entry of a scenario's batch-size distribution.
type BatchSize struct {
	// Size is the number of sequences in the batch.
	Size int `json:"size"`
	// Weight is the relative probability of this size among batch
	// requests; weights need not sum to 1.
	Weight float64 `json:"weight"`
}

// Scenario is a replayable load-test specification. The zero value is
// not runnable; load one from JSON with ReadScenario or fill the fields
// and call Validate.
type Scenario struct {
	// Name identifies the scenario in results and baselines.
	Name string `json:"name"`
	// Seed pins the arrival process, traffic mix, and payloads.
	Seed int64 `json:"seed"`
	// Model names the served model classify requests target.
	Model string `json:"model"`

	// Alphabet is the rune repertoire payload sequences draw from. It
	// must match the target model's alphabet for requests to classify
	// (out-of-alphabet runes produce per-item errors, not 5xx).
	Alphabet string `json:"alphabet"`
	// SeqLen is the length of every generated sequence.
	SeqLen int `json:"seq_len"`
	// SeqPool is the number of distinct sequences pre-generated and
	// cycled through; a small pool keeps payload generation off the
	// request path.
	SeqPool int `json:"seq_pool"`

	// RatePerSec is the offered load: classify arrivals follow a
	// Poisson process with this mean rate.
	RatePerSec float64 `json:"rate_per_sec"`
	// DurationSec bounds the arrival window; the run ends when every
	// scheduled request has completed.
	DurationSec float64 `json:"duration_sec"`
	// BatchFraction is the probability that a classify arrival is a
	// batch request (the rest are single-sequence).
	BatchFraction float64 `json:"batch_fraction"`
	// BatchSizes is the batch-size distribution; required when
	// BatchFraction > 0.
	BatchSizes []BatchSize `json:"batch_sizes,omitempty"`
	// IngestFraction is the probability that an arrival targets
	// POST /v1/ingest instead of /v1/classify (drawn after the batch
	// decision, so ingest requests follow the same batch-size mix). The
	// target must run with -stream, or every ingest answers 503 and the
	// error-rate gate fires.
	IngestFraction float64 `json:"ingest_fraction,omitempty"`
	// ReloadPeriodSec, when positive, fires POST /v1/models/reload
	// every period during the arrival window — hot reload under fire.
	ReloadPeriodSec float64 `json:"reload_period_sec,omitempty"`

	// MaxInflight bounds concurrent in-flight requests (the worker pool
	// size). When the pool saturates, dispatches run late and the run
	// records them; the offered schedule itself never stretches.
	// Default 64.
	MaxInflight int `json:"max_inflight,omitempty"`
	// HistMaxMs and HistBuckets shape the latency histograms: domain
	// [0, HistMaxMs) ms. Defaults 500 ms and 5000 buckets (0.1 ms
	// resolution); slower responses clamp into the last bucket.
	HistMaxMs   float64 `json:"hist_max_ms,omitempty"`
	HistBuckets int     `json:"hist_buckets,omitempty"`
}

// Validate checks the scenario and fills defaulted fields in place.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("loadgen: scenario needs a name")
	}
	if sc.Model == "" {
		return fmt.Errorf("loadgen: scenario %q needs a model", sc.Name)
	}
	if len(sc.Alphabet) == 0 {
		return fmt.Errorf("loadgen: scenario %q needs an alphabet", sc.Name)
	}
	if sc.SeqLen <= 0 {
		return fmt.Errorf("loadgen: scenario %q: seq_len must be positive, got %d", sc.Name, sc.SeqLen)
	}
	if sc.SeqPool <= 0 {
		return fmt.Errorf("loadgen: scenario %q: seq_pool must be positive, got %d", sc.Name, sc.SeqPool)
	}
	if !(sc.RatePerSec > 0) {
		return fmt.Errorf("loadgen: scenario %q: rate_per_sec must be positive, got %v", sc.Name, sc.RatePerSec)
	}
	if !(sc.DurationSec > 0) {
		return fmt.Errorf("loadgen: scenario %q: duration_sec must be positive, got %v", sc.Name, sc.DurationSec)
	}
	if sc.BatchFraction < 0 || sc.BatchFraction > 1 {
		return fmt.Errorf("loadgen: scenario %q: batch_fraction %v outside [0, 1]", sc.Name, sc.BatchFraction)
	}
	if sc.BatchFraction > 0 {
		total := 0.0
		for _, b := range sc.BatchSizes {
			if b.Size <= 0 || b.Weight < 0 {
				return fmt.Errorf("loadgen: scenario %q: bad batch size entry %+v", sc.Name, b)
			}
			total += b.Weight
		}
		if total <= 0 {
			return fmt.Errorf("loadgen: scenario %q: batch_fraction %v needs batch_sizes with positive weight", sc.Name, sc.BatchFraction)
		}
	}
	if sc.IngestFraction < 0 || sc.IngestFraction > 1 {
		return fmt.Errorf("loadgen: scenario %q: ingest_fraction %v outside [0, 1]", sc.Name, sc.IngestFraction)
	}
	if sc.ReloadPeriodSec < 0 {
		return fmt.Errorf("loadgen: scenario %q: reload_period_sec must be ≥ 0, got %v", sc.Name, sc.ReloadPeriodSec)
	}
	if sc.MaxInflight == 0 {
		sc.MaxInflight = 64
	}
	if sc.MaxInflight < 1 {
		return fmt.Errorf("loadgen: scenario %q: max_inflight must be positive, got %d", sc.Name, sc.MaxInflight)
	}
	if sc.HistMaxMs == 0 {
		sc.HistMaxMs = 500
	}
	if sc.HistMaxMs <= 0 {
		return fmt.Errorf("loadgen: scenario %q: hist_max_ms must be positive, got %v", sc.Name, sc.HistMaxMs)
	}
	if sc.HistBuckets == 0 {
		sc.HistBuckets = 5000
	}
	if sc.HistBuckets < 3 {
		return fmt.Errorf("loadgen: scenario %q: hist_buckets must be ≥ 3, got %d", sc.Name, sc.HistBuckets)
	}
	return nil
}

// ReadScenario loads and validates a scenario from a JSON file.
func ReadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return sc, nil
}

// ParseScenario decodes and validates a scenario from JSON bytes.
// Unknown fields are rejected so a typo in a pinned scenario fails
// loudly instead of silently running defaults.
func ParseScenario(data []byte) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}
