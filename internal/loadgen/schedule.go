package loadgen

import (
	"math/rand/v2"
	"sort"
	"strings"
	"time"
)

// Kind discriminates the request types a schedule can carry.
type Kind int

const (
	// KindSingle is a one-sequence POST /v1/classify.
	KindSingle Kind = iota
	// KindBatch is a multi-sequence POST /v1/classify.
	KindBatch
	// KindReload is a POST /v1/models/reload.
	KindReload
	// KindIngest is a POST /v1/ingest feeding the streaming engine; it
	// carries a payload like the classify kinds (Batch sequences).
	KindIngest
)

// Route returns the stable route label used in results and metrics.
func (k Kind) Route() string {
	switch k {
	case KindSingle:
		return "single"
	case KindBatch:
		return "batch"
	case KindIngest:
		return "ingest"
	default:
		return "reload"
	}
}

// Request is one scheduled request: fire at offset At from the run's
// start. For classify kinds, the payload is Batch sequences (1 for
// KindSingle) taken from the scenario's pool starting at index
// Seq mod pool size, wrapping around. Seq is drawn from a fixed range
// so the schedule is identical regardless of the pool's size.
type Request struct {
	At    time.Duration
	Kind  Kind
	Batch int
	Seq   int
}

// Stream salts keep the schedule's and the payload pool's random
// streams independent: changing pool parameters must not perturb
// arrival times, and vice versa.
const (
	scheduleSalt = 0x73636865_64756c65 // "schedule"
	poolSalt     = 0x6c6f6164_73657173 // "loadseqs"
)

// Schedule derives the scenario's full request timetable: Poisson
// classify arrivals over the duration window (exponential inter-arrival
// times at RatePerSec, each independently single or batch per
// BatchFraction) merged with reload ticks every ReloadPeriodSec. The
// result is sorted by arrival time and is a pure function of the
// scenario — same spec and seed, same schedule, bit for bit — which is
// what makes a committed baseline comparable across runs.
func (sc *Scenario) Schedule() []Request {
	seed := uint64(sc.Seed)
	return sc.schedule(rand.New(rand.NewPCG(seed, seed^scheduleSalt)))
}

//cluseq:deterministic
func (sc *Scenario) schedule(rng *rand.Rand) []Request {
	horizon := time.Duration(sc.DurationSec * float64(time.Second))
	var reqs []Request

	// Classify arrivals: exponential gaps with mean 1/rate.
	var t time.Duration
	for {
		gap := time.Duration(rng.ExpFloat64() / sc.RatePerSec * float64(time.Second))
		t += gap
		if t >= horizon {
			break
		}
		r := Request{At: t, Kind: KindSingle, Batch: 1, Seq: rng.IntN(1 << 30)}
		if sc.BatchFraction > 0 && rng.Float64() < sc.BatchFraction {
			r.Kind = KindBatch
			r.Batch = sc.drawBatchSize(rng)
		}
		// The ingest draw is guarded so a scenario without ingest traffic
		// consumes no extra random numbers — pinned pre-ingest schedules
		// stay bit-identical. An ingest arrival keeps the batch size it
		// drew above, so ingest mixes single and batch payloads too.
		if sc.IngestFraction > 0 && rng.Float64() < sc.IngestFraction {
			r.Kind = KindIngest
		}
		reqs = append(reqs, r)
	}

	// Reload ticks, phase-shifted off zero so the first reload lands
	// mid-traffic rather than on a cold server.
	if sc.ReloadPeriodSec > 0 {
		period := time.Duration(sc.ReloadPeriodSec * float64(time.Second))
		for at := period / 2; at < horizon; at += period {
			reqs = append(reqs, Request{At: at, Kind: KindReload})
		}
	}

	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At })
	return reqs
}

// drawBatchSize samples the batch-size distribution by cumulative
// weight. Validate guarantees a positive total weight.
//
//cluseq:deterministic
func (sc *Scenario) drawBatchSize(rng *rand.Rand) int {
	total := 0.0
	for _, b := range sc.BatchSizes {
		total += b.Weight
	}
	x := rng.Float64() * total
	for _, b := range sc.BatchSizes {
		x -= b.Weight
		if x < 0 {
			return b.Size
		}
	}
	return sc.BatchSizes[len(sc.BatchSizes)-1].Size
}

// Sequences generates the scenario's payload pool: SeqPool sequences of
// SeqLen runes drawn uniformly from Alphabet, deterministically from
// the scenario's seed on a stream independent of the schedule's.
func (sc *Scenario) Sequences() []string {
	seed := uint64(sc.Seed)
	return sc.sequences(rand.New(rand.NewPCG(seed, seed^poolSalt)))
}

//cluseq:deterministic
func (sc *Scenario) sequences(rng *rand.Rand) []string {
	runes := []rune(sc.Alphabet)
	out := make([]string, sc.SeqPool)
	var b strings.Builder
	for i := range out {
		b.Reset()
		b.Grow(sc.SeqLen)
		for j := 0; j < sc.SeqLen; j++ {
			b.WriteRune(runes[rng.IntN(len(runes))])
		}
		out[i] = b.String()
	}
	return out
}
