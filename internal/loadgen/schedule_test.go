package loadgen

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// testScenario returns a small valid scenario; tests tweak fields and
// re-Validate as needed.
func testScenario() *Scenario {
	return &Scenario{
		Name:            "t",
		Seed:            42,
		Model:           "m",
		Alphabet:        "abcd",
		SeqLen:          16,
		SeqPool:         32,
		RatePerSec:      500,
		DurationSec:     2,
		BatchFraction:   0.25,
		BatchSizes:      []BatchSize{{Size: 4, Weight: 1}, {Size: 16, Weight: 1}},
		ReloadPeriodSec: 0.5,
	}
}

func TestScenarioValidation(t *testing.T) {
	good := testScenario()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	if good.MaxInflight != 64 || good.HistMaxMs != 500 || good.HistBuckets != 5000 {
		t.Fatalf("defaults not applied: %+v", good)
	}

	bad := []func(*Scenario){
		func(s *Scenario) { s.Name = "" },
		func(s *Scenario) { s.Model = "" },
		func(s *Scenario) { s.Alphabet = "" },
		func(s *Scenario) { s.SeqLen = 0 },
		func(s *Scenario) { s.SeqPool = -1 },
		func(s *Scenario) { s.RatePerSec = 0 },
		func(s *Scenario) { s.DurationSec = -1 },
		func(s *Scenario) { s.BatchFraction = 1.5 },
		func(s *Scenario) { s.BatchSizes = nil }, // batch_fraction > 0 with no sizes
		func(s *Scenario) { s.BatchSizes = []BatchSize{{Size: -1, Weight: 1}} },
		func(s *Scenario) { s.IngestFraction = 1.5 },
		func(s *Scenario) { s.IngestFraction = -0.1 },
		func(s *Scenario) { s.ReloadPeriodSec = -1 },
		func(s *Scenario) { s.MaxInflight = -3 },
		func(s *Scenario) { s.HistBuckets = 2 },
	}
	for i, mutate := range bad {
		sc := testScenario()
		mutate(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation: %+v", i, sc)
		}
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := ParseScenario([]byte(`{"name":"x","typo_field":1}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
}

// TestScheduleDeterministic is the replayability contract: the same
// seed and spec yield the identical request schedule, and a different
// seed yields a different one.
func TestScheduleDeterministic(t *testing.T) {
	a := testScenario()
	b := testScenario()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	s1, s2 := a.Schedule(), b.Schedule()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed and spec must produce identical schedules")
	}
	b.Seed = 43
	if reflect.DeepEqual(s1, b.Schedule()) {
		t.Fatal("different seeds should produce different schedules")
	}
}

func TestScheduleShape(t *testing.T) {
	sc := testScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	reqs := sc.Schedule()
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At }) {
		t.Fatal("schedule must be sorted by arrival time")
	}
	var singles, batches, reloads int
	for _, r := range reqs {
		switch r.Kind {
		case KindSingle:
			singles++
			if r.Batch != 1 {
				t.Fatalf("single request with batch %d", r.Batch)
			}
		case KindBatch:
			batches++
			if r.Batch != 4 && r.Batch != 16 {
				t.Fatalf("batch size %d not in the distribution", r.Batch)
			}
		case KindReload:
			reloads++
		}
		if r.At < 0 || r.At.Seconds() >= sc.DurationSec {
			t.Fatalf("arrival %v outside [0, %vs)", r.At, sc.DurationSec)
		}
	}
	// Poisson(1000) over 2 s: stay within ±5 standard deviations.
	if n := singles + batches; n < 840 || n > 1160 {
		t.Fatalf("classify arrivals = %d, want ≈ 1000", n)
	}
	// 0.25 batch fraction ⇒ ≈ 250 batches.
	if batches < 150 || batches > 350 {
		t.Fatalf("batch arrivals = %d, want ≈ 250", batches)
	}
	// Reloads every 0.5 s starting at 0.25 s: 0.25, 0.75, 1.25, 1.75.
	if reloads != 4 {
		t.Fatalf("reloads = %d, want 4", reloads)
	}
}

func TestSequencesDeterministicAndInAlphabet(t *testing.T) {
	sc := testScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	p1, p2 := sc.Sequences(), sc.Sequences()
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("sequence pool must be deterministic")
	}
	if len(p1) != sc.SeqPool {
		t.Fatalf("pool size %d, want %d", len(p1), sc.SeqPool)
	}
	for _, s := range p1 {
		if len([]rune(s)) != sc.SeqLen {
			t.Fatalf("sequence length %d, want %d", len([]rune(s)), sc.SeqLen)
		}
		for _, r := range s {
			if !strings.ContainsRune(sc.Alphabet, r) {
				t.Fatalf("rune %q outside alphabet %q", r, sc.Alphabet)
			}
		}
	}
	// The pool seed is independent of the schedule seed's stream: the
	// schedule must not change when only pool parameters change.
	before := sc.Schedule()
	sc.SeqPool = 64
	if !reflect.DeepEqual(before, sc.Schedule()) {
		t.Fatal("pool size must not perturb the arrival schedule")
	}
}

// TestScheduleIngestMix checks the ingest draw: a zero fraction yields
// no ingest requests (and, by the guarded draw, consumes no random
// numbers — pre-ingest pinned schedules replay bit-identically), while
// a positive fraction converts roughly that share of arrivals, keeping
// the batch-size mix they drew.
func TestScheduleIngestMix(t *testing.T) {
	sc := testScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range sc.Schedule() {
		if r.Kind == KindIngest {
			t.Fatal("ingest request scheduled with ingest_fraction 0")
		}
	}

	sc.IngestFraction = 0.4
	var ingests, ingestBatches, classifies int
	for _, r := range sc.Schedule() {
		switch r.Kind {
		case KindIngest:
			ingests++
			if r.Batch != 1 && r.Batch != 4 && r.Batch != 16 {
				t.Fatalf("ingest batch size %d not in the distribution", r.Batch)
			}
			if r.Batch > 1 {
				ingestBatches++
			}
		case KindSingle, KindBatch:
			classifies++
		}
	}
	total := ingests + classifies
	// Poisson(1000) arrivals at 0.4 ingest fraction: stay within ±5 σ.
	if lo, hi := int(0.3*float64(total)), int(0.5*float64(total)); ingests < lo || ingests > hi {
		t.Fatalf("ingests = %d of %d, want ≈ 40%%", ingests, total)
	}
	if ingestBatches == 0 {
		t.Fatal("no batch-sized ingest arrivals; the batch mix should carry over")
	}
}
