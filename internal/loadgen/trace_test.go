package loadgen

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
)

var traceparentRe = regexp.MustCompile(`^00-[0-9a-f]{32}-[0-9a-f]{16}-00$`)

func TestTraceparentForDeterministicAndValid(t *testing.T) {
	seen := map[string]bool{}
	for idx := 0; idx < 256; idx++ {
		tp := traceparentFor(7, idx)
		if !traceparentRe.MatchString(tp) {
			t.Fatalf("traceparentFor(7, %d) = %q, not a valid unsampled traceparent", idx, tp)
		}
		if tp != traceparentFor(7, idx) {
			t.Fatalf("traceparentFor(7, %d) differs between calls", idx)
		}
		if seen[tp] {
			t.Fatalf("traceparentFor(7, %d) = %q collides with an earlier index", idx, tp)
		}
		seen[tp] = true
	}
	if traceparentFor(7, 0) == traceparentFor(8, 0) {
		t.Error("different seeds produced the same traceparent")
	}
}

// traceStub wraps the regular stub with cluseqd's trace surface: it
// echoes the inbound traceparent's trace ID as X-Trace-ID on /v1/
// responses and records whether any traceparent arrived at all.
type traceStub struct {
	stubServer
	mu          sync.Mutex
	traceparent int // requests that carried the header
}

func (s *traceStub) handler() http.Handler {
	inner := s.stubServer.handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tp := r.Header.Get("traceparent"); tp != "" {
			s.mu.Lock()
			s.traceparent++
			s.mu.Unlock()
			if traceparentRe.MatchString(tp) {
				w.Header().Set("X-Trace-ID", tp[3:35])
			}
		}
		inner.ServeHTTP(w, r)
	})
}

func TestRunRecordsSlowestTraces(t *testing.T) {
	stub := &traceStub{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	sc := e2eScenario()
	const k = 3
	r := &Runner{BaseURL: ts.URL, TraceSlowest: k, Logf: t.Logf}
	res, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if stub.traceparent == 0 {
		t.Fatal("no request carried a traceparent header")
	}
	if len(res.SlowestTraces) != k {
		t.Fatalf("got %d slowest traces, want %d", len(res.SlowestTraces), k)
	}
	for i, ref := range res.SlowestTraces {
		if len(ref.TraceID) != 32 {
			t.Errorf("trace %d: ID %q is not 32 hex", i, ref.TraceID)
		}
		if ref.Route == "" || ref.Status != http.StatusOK || ref.LatencyMs <= 0 {
			t.Errorf("trace %d incomplete: %+v", i, ref)
		}
		if i > 0 && ref.LatencyMs > res.SlowestTraces[i-1].LatencyMs {
			t.Errorf("slowest traces out of order at %d: %v after %v",
				i, ref.LatencyMs, res.SlowestTraces[i-1].LatencyMs)
		}
	}
}

func TestRunTracingOffSendsNoTraceparent(t *testing.T) {
	stub := &traceStub{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	r := &Runner{BaseURL: ts.URL, Logf: t.Logf} // TraceSlowest zero: off
	res, err := r.Run(e2eScenario())
	if err != nil {
		t.Fatal(err)
	}
	if stub.traceparent != 0 {
		t.Errorf("%d requests carried traceparent with tracing off", stub.traceparent)
	}
	if len(res.SlowestTraces) != 0 {
		t.Errorf("unexpected slowest traces: %+v", res.SlowestTraces)
	}
}
