//go:build !unix

package mmapfile

import (
	"fmt"
	"os"
)

func mapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("mmapfile: memory mapping not supported on this platform")
}

func unmap(data []byte) error { return nil }
