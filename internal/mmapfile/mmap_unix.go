//go:build unix

package mmapfile

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

func mapFile(f *os.File, size int64) ([]byte, error) {
	if size > math.MaxInt {
		return nil, fmt.Errorf("mmapfile: %d bytes exceed the address space", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmap(data []byte) error { return syscall.Munmap(data) }
