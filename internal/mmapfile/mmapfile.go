// Package mmapfile provides read-only memory-mapped files with
// garbage-collection-driven lifetime, for serving model bundles
// zero-copy.
//
// A Mapping's bytes stay valid for as long as the Mapping value is
// reachable: consumers that alias the data (e.g. a pst.Snapshot whose
// tables view an mmap'd bundle) retain the Mapping, and when the last
// reference drops a finalizer unmaps the pages. That is exactly the
// unmap-after-last-reader discipline the model registry needs on hot
// reload — the swap drops the registry's reference, in-flight requests
// keep theirs, and the kernel mapping disappears only after the final
// request completes, with no reference counting in the request path.
//
// Because the pages alias the file, the file must only ever be
// replaced atomically (write a temp file, then rename): the old inode
// then survives until unmapped. Rewriting a mapped file in place
// mutates — or, if truncated, invalidates — the bytes under live
// readers.
//
// On platforms without mmap support (and for empty files) Open falls
// back to reading the file into memory; Data is then a private copy
// and everything else behaves identically.
package mmapfile

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
)

// mappedBytes tracks the total bytes currently mapped through this
// package, surfaced as the cluseq_registry_mapped_bytes gauge.
var mappedBytes atomic.Int64

// MappedBytes returns the total bytes currently memory-mapped through
// this package (heap-copy fallbacks excluded).
func MappedBytes() int64 { return mappedBytes.Load() }

// Mapping is one read-only mapped file. Safe for concurrent readers;
// Close (or garbage collection after the last reference drops) ends
// its lifetime.
type Mapping struct {
	data   []byte
	mapped bool // OS mapping, as opposed to the heap-copy fallback
	closed atomic.Bool
}

// Open maps path read-only. If the platform cannot map it, the file is
// read into memory instead — callers observe the same immutable bytes
// either way, only the zero-copy property differs (Mapped reports
// which). The returned Mapping carries a finalizer, so an unreferenced
// Mapping is eventually unmapped even without an explicit Close.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size > 1<<46 {
		return nil, fmt.Errorf("mmapfile: %s is %d bytes, refusing to map", path, size)
	}
	m := &Mapping{}
	if size > 0 {
		if data, err := mapFile(f, size); err == nil {
			m.data, m.mapped = data, true
			mappedBytes.Add(size)
		} else {
			buf := make([]byte, size)
			if _, err := io.ReadFull(f, buf); err != nil {
				return nil, fmt.Errorf("mmapfile: reading %s: %w", path, err)
			}
			m.data = buf
		}
	}
	runtime.SetFinalizer(m, (*Mapping).Close)
	return m, nil
}

// Data returns the file's bytes. The slice is valid while the Mapping
// is reachable and must not be mutated. Any consumer that keeps the
// slice past its own call frame must also keep the Mapping (or rely on
// a holder that does), otherwise the finalizer may unmap the pages
// under it.
func (m *Mapping) Data() []byte { return m.data }

// Mapped reports whether Data aliases an OS mapping (true) or a heap
// copy (false).
func (m *Mapping) Mapped() bool { return m.mapped }

// Close unmaps the file. Idempotent and safe to call concurrently with
// itself, but the caller must guarantee no reader still uses Data —
// the registry only closes mappings that were never published, and
// otherwise leaves the finalizer to close after the last reader drops.
func (m *Mapping) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	runtime.SetFinalizer(m, nil)
	var err error
	if m.mapped {
		err = unmap(m.data)
		mappedBytes.Add(-int64(len(m.data)))
	}
	m.data = nil
	return err
}
