package mmapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestOpenReadsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte("cluseq"), 4096)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !bytes.Equal(m.Data(), want) {
		t.Fatal("mapped bytes differ from file contents")
	}
	if m.Mapped() && MappedBytes() < int64(len(want)) {
		t.Fatalf("MappedBytes %d < mapping size %d", MappedBytes(), len(want))
	}
}

func TestCloseIdempotentAndAccounted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	before := MappedBytes()
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	wasMapped := m.Mapped()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if wasMapped && MappedBytes() != before {
		t.Fatalf("MappedBytes %d after close, want %d", MappedBytes(), before)
	}
}

func TestEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data()) != 0 {
		t.Fatal("empty file must map to empty data")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFinalizerUnmaps pins the unmap-after-last-reader contract: once
// the last reference to a Mapping drops, garbage collection alone must
// release the pages and the accounting.
func TestFinalizerUnmaps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, make([]byte, 1<<16), 0o644); err != nil {
		t.Fatal(err)
	}
	before := MappedBytes()
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mapped() {
		t.Skip("no OS mapping on this platform; finalizer path is untestable")
	}
	m = nil // drop the last reference
	deadline := time.Now().Add(5 * time.Second)
	for MappedBytes() != before {
		if time.Now().After(deadline) {
			t.Fatalf("mapping not finalized: MappedBytes %d, want %d", MappedBytes(), before)
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
}
