package obs

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flight is an always-on in-memory flight recorder for request traces:
// a fixed-size ring of completed traces plus a top-K slowest index,
// readable at any time (GET /debug/traces, SIGUSR1 dump) so a
// production incident can be triaged after the fact without verbose
// tracing having been enabled in advance.
//
// # Retention policy (tail-based sampling)
//
// Every finished trace is classified at Finish time: error traces
// (status >= 500 or transport failures) and slow traces (duration >=
// SlowThreshold) are always retained, traces whose inbound traceparent
// carried the sampled flag are retained (an upstream kept them; holes
// in a distributed trace are worse than ring churn), and the remainder
// is head-sampled at SampleRate by a seeded hash of the trace ID — so
// the keep/drop decision for a given (seed, trace ID) pair is
// deterministic across runs and replicas.
//
// # Concurrency and allocation
//
// Live traces come from a sync.Pool and return to it at Finish; a
// retained trace is copied into its ring slot by one struct assignment
// under that slot's own mutex (lock-light: writers contend only when
// they hash to the same slot, readers only with writers of the slots
// they are copying out). The write path allocates nothing beyond the
// pooled trace record itself — pinned by TestFlightWriteAllocs.
//
// The nil *Flight is a valid no-op: Begin returns a nil *RequestTrace
// (whose methods are no-ops) and every other method returns zero
// values, so servers thread the recorder unconditionally.
type Flight struct {
	ringSize int
	topK     int
	rate     float64
	slow     time.Duration
	seed     uint64
	tracer   *Tracer

	cursor atomic.Uint64
	slots  []flightSlot

	topMu sync.Mutex
	top   []TraceRecord // min-ordered prefix [0:topLen); top[0] is the fastest retained

	pool sync.Pool

	// Self-metrics (nil handles are no-ops).
	started      *Counter
	retained     *Counter
	sampledOut   *Counter
	droppedSpans *Counter
}

// flightSlot is one ring entry. The resident record is reused in place:
// admission copies the finished trace into it under the slot mutex, so
// steady-state ring churn allocates nothing.
type flightSlot struct {
	mu  sync.Mutex
	set bool
	rec TraceRecord
}

// FlightConfig parameterizes NewFlight. The zero value of every field
// picks a production-safe default.
type FlightConfig struct {
	// RingSize is the number of retained traces the ring holds before
	// overwriting the oldest. Default 256.
	RingSize int
	// TopK is the size of the slowest-request index, which survives ring
	// churn. Default 16.
	TopK int
	// SampleRate head-samples fast, successful traces: the fraction
	// retained, in [0, 1]. Default 0.01. Slow and error traces are
	// always retained regardless.
	SampleRate float64
	// SlowThreshold is the duration at or above which a trace is always
	// retained. Default 250ms.
	SlowThreshold time.Duration
	// Seed keys the head-sampling hash; identical seeds make identical
	// keep/drop decisions for identical trace IDs. Default 1.
	Seed uint64
	// Tracer, when non-nil, additionally receives every retained trace
	// as JSONL span records at Finish time (the -trace-out sink).
	Tracer *Tracer
	// Obs, when non-nil, receives the recorder's own counters
	// (cluseq_flight_*).
	Obs *Registry
}

// NewFlight constructs a flight recorder.
func NewFlight(cfg FlightConfig) *Flight {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 16
	}
	if cfg.TopK > cfg.RingSize {
		cfg.TopK = cfg.RingSize
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 0.01
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	f := &Flight{
		ringSize: cfg.RingSize,
		topK:     cfg.TopK,
		rate:     cfg.SampleRate,
		slow:     cfg.SlowThreshold,
		seed:     cfg.Seed,
		tracer:   cfg.Tracer,
		slots:    make([]flightSlot, cfg.RingSize),
		top:      make([]TraceRecord, 0, cfg.TopK),
	}
	f.pool.New = func() any { return new(RequestTrace) }
	if reg := cfg.Obs; reg != nil {
		f.started = reg.Counter("cluseq_flight_requests_total")
		f.retained = reg.Counter("cluseq_flight_retained_total")
		f.sampledOut = reg.Counter("cluseq_flight_sampled_out_total")
		f.droppedSpans = reg.Counter("cluseq_flight_dropped_spans_total")
		reg.Gauge("cluseq_flight_ring_size").Set(float64(cfg.RingSize))
	}
	return f
}

// SlowThreshold returns the always-retain duration bound.
func (f *Flight) SlowThreshold() time.Duration {
	if f == nil {
		return 0
	}
	return f.slow
}

// Begin checks a pooled trace record out for one request. inbound is
// the caller's parsed traceparent (the zero TraceContext when none):
// its trace ID is adopted so the distributed trace stays connected, its
// span ID becomes the parent link, and its sampled flag forces
// retention. Pair every Begin with exactly one Finish.
func (f *Flight) Begin(route string, inbound TraceContext) *RequestTrace {
	if f == nil {
		return nil
	}
	f.started.Inc()
	t := f.pool.Get().(*RequestTrace)
	t.rec = TraceRecord{
		Trace: TraceContext{
			TraceID: inbound.TraceID,
			SpanID:  NewSpanID(),
			Sampled: inbound.Sampled,
		},
		Route: route,
	}
	if t.rec.Trace.TraceID.IsZero() {
		t.rec.Trace.TraceID = NewTraceID()
	}
	t.parent = inbound.SpanID
	t.start = time.Now()
	t.rec.StartUS = t.start.UnixMicro()
	t.next.Store(0)
	return t
}

// Sampled is the pure head-sampling decision for a trace ID under the
// recorder's seed and rate — deterministic, with no dependence on
// timing or prior traffic. Exposed for the determinism contract test.
func (f *Flight) Sampled(id TraceID) bool {
	if f == nil {
		return false
	}
	h := splitmix64(f.seed ^ binary.BigEndian.Uint64(id[0:8]) ^ binary.BigEndian.Uint64(id[8:16]))
	// Compare the hash's top 53 bits against the rate as a fraction of
	// the same range, so rate 1.0 keeps everything and 0 keeps nothing.
	return float64(h>>11) < f.rate*float64(uint64(1)<<53)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Finish completes the trace: stamps status and duration, applies the
// retention policy, copies a retained trace into the ring (and the
// top-K index, and the JSONL sink when attached), and returns the
// record to the pool. The trace must not be used after Finish; it
// reports whether the trace was retained.
func (f *Flight) Finish(t *RequestTrace, status int) bool {
	if f == nil || t == nil {
		return false
	}
	dur := time.Since(t.start)
	claimed := t.next.Load()
	n := claimed
	if n > MaxTraceSpans {
		n = MaxTraceSpans
		t.rec.Dropped = claimed - MaxTraceSpans
		f.droppedSpans.Add(int64(t.rec.Dropped))
	}
	t.rec.NumSpans = n
	t.rec.Status = status
	t.rec.Error = status == 0 || status >= 500
	t.rec.DurUS = dur.Microseconds()
	t.rec.Parent = t.parent

	keep := t.rec.Trace.Sampled || t.rec.Error || dur >= f.slow || f.Sampled(t.rec.Trace.TraceID)
	if keep {
		t.rec.Trace.Sampled = true
		f.retained.Inc()
		f.admit(&t.rec)
		if f.tracer != nil {
			f.tracer.WriteTraceRecord(&t.rec)
		}
	} else {
		f.sampledOut.Inc()
	}
	f.pool.Put(t)
	return keep
}

// admit copies the finished record into its ring slot and, when slow
// enough, into the top-K index.
func (f *Flight) admit(rec *TraceRecord) {
	i := (f.cursor.Add(1) - 1) % uint64(f.ringSize)
	s := &f.slots[i]
	s.mu.Lock()
	s.rec = *rec // struct copy into the resident record; no allocation
	s.set = true
	s.mu.Unlock()

	f.topMu.Lock()
	switch {
	case len(f.top) < f.topK:
		f.top = append(f.top, *rec)
		for j := len(f.top) - 1; j > 0 && f.top[j].DurUS < f.top[j-1].DurUS; j-- {
			f.top[j], f.top[j-1] = f.top[j-1], f.top[j]
		}
	case rec.DurUS > f.top[0].DurUS:
		f.top[0] = *rec
		// Restore min-order with one insertion pass; K is small.
		for j := 1; j < len(f.top) && f.top[j].DurUS < f.top[j-1].DurUS; j++ {
			f.top[j], f.top[j-1] = f.top[j-1], f.top[j]
		}
	}
	f.topMu.Unlock()
}

// TraceFilter selects traces out of a flight dump.
type TraceFilter struct {
	// Route, when non-empty, keeps only traces of that route label.
	Route string
	// MinDur, when positive, keeps only traces at least this slow.
	MinDur time.Duration
}

func (fl TraceFilter) match(rec *TraceRecord) bool {
	if fl.Route != "" && rec.Route != fl.Route {
		return false
	}
	return fl.MinDur <= 0 || rec.DurUS >= fl.MinDur.Microseconds()
}

// FlightDump is the recorder's readable state: the retained ring
// newest-first plus the slowest-request index, slowest-first.
type FlightDump struct {
	// Recent is the ring's retained traces, newest first.
	Recent []TraceRecord `json:"recent"`
	// Slowest is the top-K index, slowest first; it survives ring churn,
	// so an incident's worst requests remain visible after the ring has
	// turned over.
	Slowest []TraceRecord `json:"slowest"`
}

// Snapshot copies the recorder's current state out under the per-slot
// locks. Safe to call concurrently with writers; the dump is a fully
// independent copy.
func (f *Flight) Snapshot(filter TraceFilter) FlightDump {
	if f == nil {
		return FlightDump{}
	}
	dump := FlightDump{Recent: make([]TraceRecord, 0, f.ringSize)}
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		if s.set && filter.match(&s.rec) {
			dump.Recent = append(dump.Recent, s.rec)
		}
		s.mu.Unlock()
	}
	for i := range dump.Recent {
		dump.Recent[i].seal()
	}
	sort.Slice(dump.Recent, func(a, b int) bool { return dump.Recent[a].StartUS > dump.Recent[b].StartUS })

	f.topMu.Lock()
	for i := range f.top {
		if filter.match(&f.top[i]) {
			dump.Slowest = append(dump.Slowest, f.top[i])
		}
	}
	f.topMu.Unlock()
	for i := range dump.Slowest {
		dump.Slowest[i].seal()
	}
	sort.Slice(dump.Slowest, func(a, b int) bool { return dump.Slowest[a].DurUS > dump.Slowest[b].DurUS })
	return dump
}

// WriteJSONL dumps the recorder's state to the tracer as JSONL: one
// "flight_dump" event, then every trace in the dump as span records.
// This is the SIGUSR1 path: an on-demand dump to the -trace-out sink.
func (f *Flight) WriteJSONL(tr *Tracer, filter TraceFilter) int {
	if f == nil || tr == nil {
		return 0
	}
	dump := f.Snapshot(filter)
	tr.Event("flight_dump", Int("recent", len(dump.Recent)), Int("slowest", len(dump.Slowest)))
	for i := range dump.Recent {
		tr.WriteTraceRecord(&dump.Recent[i])
	}
	return len(dump.Recent)
}

// WriteTraceRecord emits one finished request trace as JSONL: a root
// "request" span carrying the trace identity, then one record per
// child span, each tagged with the trace ID so the file can be
// filtered to one request with jq.
func (t *Tracer) WriteTraceRecord(rec *TraceRecord) {
	if t == nil || rec == nil {
		return
	}
	id := rec.Trace.TraceID.String()
	root := record{
		Type:    "span",
		Name:    "request",
		StartUS: rec.StartUS,
		DurUS:   rec.DurUS,
		Attrs: map[string]any{
			"trace_id": id,
			"span_id":  rec.Trace.SpanID.String(),
			"route":    rec.Route,
			"status":   rec.Status,
		},
	}
	if !rec.Parent.IsZero() {
		root.Attrs["parent_id"] = rec.Parent.String()
	}
	if rec.Dropped > 0 {
		root.Attrs["dropped_spans"] = rec.Dropped
	}
	t.write(root)
	n := int(rec.NumSpans)
	if n > MaxTraceSpans {
		n = MaxTraceSpans
	}
	for i := 0; i < n; i++ {
		sp := &rec.spansBuf[i]
		t.write(record{
			Type:    "span",
			Name:    sp.Name,
			StartUS: rec.StartUS + sp.StartUS,
			DurUS:   sp.DurUS,
			Attrs: map[string]any{
				"trace_id": id,
				"parent":   sp.Parent,
			},
		})
	}
}
