package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestTraceNilIsNoOp(t *testing.T) {
	var tr *RequestTrace
	if !tr.TraceID().IsZero() || !tr.Context().TraceID.IsZero() {
		t.Error("nil trace should have zero identity")
	}
	sp := tr.StartSpan("decode")
	sp.End() // must not panic
	child := tr.StartSpanUnder(sp, "inner")
	child.End()
	var f *Flight
	if f.Begin("classify", TraceContext{}) != nil {
		t.Error("nil Flight.Begin should return nil")
	}
	if f.Finish(nil, 200) {
		t.Error("nil Flight.Finish should report not retained")
	}
	if d := f.Snapshot(TraceFilter{}); len(d.Recent) != 0 || len(d.Slowest) != 0 {
		t.Error("nil Flight.Snapshot should be empty")
	}
	if f.Sampled(NewTraceID()) {
		t.Error("nil Flight.Sampled should be false")
	}
}

func TestFlightRetainsAndRecordsSpans(t *testing.T) {
	f := NewFlight(FlightConfig{SampleRate: 1}) // keep everything
	inbound, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	tr := f.Begin("classify", inbound)
	if got := tr.TraceID().String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("inbound trace ID not adopted: %s", got)
	}
	dec := tr.StartSpan("classify_decode")
	dec.End()
	scan := tr.StartSpan("classify_scan")
	leaf := tr.StartSpanUnder(scan, "classify_model")
	leaf.End()
	scan.End()
	if !f.Finish(tr, 200) {
		t.Fatal("trace not retained at SampleRate=1")
	}

	dump := f.Snapshot(TraceFilter{})
	if len(dump.Recent) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(dump.Recent))
	}
	rec := dump.Recent[0]
	if rec.Route != "classify" || rec.Status != 200 || rec.Error {
		t.Errorf("record = %+v", rec)
	}
	if rec.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %s", rec.TraceID)
	}
	if rec.ParentID != "00f067aa0ba902b7" {
		t.Errorf("parent ID = %q, want inbound span", rec.ParentID)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rec.Spans))
	}
	byName := map[string]SpanRec{}
	for _, sp := range rec.Spans {
		if sp.DurUS < 0 {
			t.Errorf("span %s left unfinished", sp.Name)
		}
		byName[sp.Name] = sp
	}
	if byName["classify_decode"].Parent != -1 || byName["classify_scan"].Parent != -1 {
		t.Error("top-level spans should hang off the root (-1)")
	}
	if got := rec.Spans[byName["classify_model"].Parent].Name; got != "classify_scan" {
		t.Errorf("classify_model's parent is %s, want classify_scan", got)
	}
}

func TestFlightTailRetention(t *testing.T) {
	f := NewFlight(FlightConfig{SampleRate: 0.000001, SlowThreshold: time.Nanosecond})
	// Slow trace: always kept (SlowThreshold is one nanosecond here).
	tr := f.Begin("classify", TraceContext{})
	time.Sleep(time.Millisecond)
	if !f.Finish(tr, 200) {
		t.Error("slow trace dropped")
	}

	fast := NewFlight(FlightConfig{SampleRate: 0.000001, SlowThreshold: time.Hour})
	// Error trace: always kept even when fast and sampled out.
	if !fast.Finish(fast.Begin("classify", TraceContext{}), 500) {
		t.Error("error trace dropped")
	}
	// Inbound sampled flag: always kept.
	inbound, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !fast.Finish(fast.Begin("classify", inbound), 200) {
		t.Error("upstream-sampled trace dropped")
	}
	// Fast, successful, unsampled: essentially always dropped at rate 1e-6.
	kept := 0
	for i := 0; i < 200; i++ {
		if fast.Finish(fast.Begin("classify", TraceContext{}), 200) {
			kept++
		}
	}
	if kept > 2 {
		t.Errorf("%d/200 fast traces kept at rate 1e-6", kept)
	}
}

// TestFlightSamplerDeterminism pins the tail-sampling contract: the
// keep/drop decision is a pure function of (seed, trace ID), identical
// across recorder instances and runs, and seed changes re-shuffle it.
func TestFlightSamplerDeterminism(t *testing.T) {
	a := NewFlight(FlightConfig{SampleRate: 0.25, Seed: 42})
	b := NewFlight(FlightConfig{SampleRate: 0.25, Seed: 42})
	c := NewFlight(FlightConfig{SampleRate: 0.25, Seed: 43})
	ids := make([]TraceID, 4096)
	for i := range ids {
		ids[i] = NewTraceID()
	}
	kept, diff := 0, 0
	for _, id := range ids {
		ka, kb, kc := a.Sampled(id), b.Sampled(id), c.Sampled(id)
		if ka != kb {
			t.Fatalf("same seed disagrees on %s", id)
		}
		// Re-asking the same instance must be stable too.
		if a.Sampled(id) != ka {
			t.Fatalf("sampler not idempotent for %s", id)
		}
		if ka {
			kept++
		}
		if ka != kc {
			diff++
		}
	}
	// The keep fraction should track the configured rate.
	if got := float64(kept) / float64(len(ids)); got < 0.20 || got > 0.30 {
		t.Errorf("keep fraction %.3f, want ~0.25", got)
	}
	if diff == 0 {
		t.Error("changing the seed changed no decisions")
	}
}

func TestFlightSpanOverflowCountsDropped(t *testing.T) {
	f := NewFlight(FlightConfig{SampleRate: 1})
	tr := f.Begin("classify", TraceContext{})
	for i := 0; i < MaxTraceSpans+7; i++ {
		tr.StartSpan("classify_model").End()
	}
	f.Finish(tr, 200)
	rec := f.Snapshot(TraceFilter{}).Recent[0]
	if len(rec.Spans) != MaxTraceSpans {
		t.Errorf("got %d spans, want cap %d", len(rec.Spans), MaxTraceSpans)
	}
	if rec.Dropped != 7 {
		t.Errorf("dropped = %d, want 7", rec.Dropped)
	}
}

func TestFlightSnapshotFilters(t *testing.T) {
	f := NewFlight(FlightConfig{SampleRate: 1, RingSize: 32})
	for i := 0; i < 8; i++ {
		route := "classify"
		if i%2 == 0 {
			route = "ingest"
		}
		f.Finish(f.Begin(route, TraceContext{}), 200)
	}
	if got := len(f.Snapshot(TraceFilter{Route: "ingest"}).Recent); got != 4 {
		t.Errorf("route filter kept %d, want 4", got)
	}
	if got := len(f.Snapshot(TraceFilter{MinDur: time.Hour}).Recent); got != 0 {
		t.Errorf("min-duration filter kept %d, want 0", got)
	}
}

func TestFlightRingOverwritesOldestAndTopKSurvives(t *testing.T) {
	f := NewFlight(FlightConfig{SampleRate: 1, RingSize: 4, TopK: 2, SlowThreshold: time.Hour})
	slow := f.Begin("classify", TraceContext{})
	time.Sleep(2 * time.Millisecond)
	f.Finish(slow, 200)
	dump := f.Snapshot(TraceFilter{})
	wantID := dump.Recent[0].TraceID
	// Churn the ring well past its size with fast traces.
	for i := 0; i < 16; i++ {
		f.Finish(f.Begin("classify", TraceContext{}), 200)
	}
	dump = f.Snapshot(TraceFilter{})
	if len(dump.Recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(dump.Recent))
	}
	for _, r := range dump.Recent {
		if r.TraceID == wantID {
			t.Error("slow trace should have been overwritten in the ring")
		}
	}
	if len(dump.Slowest) == 0 || dump.Slowest[0].TraceID != wantID {
		t.Error("slowest trace lost from the top-K index after ring churn")
	}
}

// TestFlightHammer is the -race gate for the ring: many writers doing
// Begin/span/Finish concurrently with readers snapshotting, all slots
// shared. Run with -race in CI; correctness assertions are minimal —
// the point is the race detector.
func TestFlightHammer(t *testing.T) {
	f := NewFlight(FlightConfig{SampleRate: 1, RingSize: 8, TopK: 4})
	const writers, readers, iters = 8, 4, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tr := f.Begin("classify", TraceContext{})
				sp := tr.StartSpan("classify_scan")
				// Concurrent span writers inside one trace, like the
				// batch fan-out pool.
				var inner sync.WaitGroup
				for g := 0; g < 3; g++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						tr.StartSpanUnder(sp, "classify_model").End()
					}()
				}
				inner.Wait()
				sp.End()
				status := 200
				if i%7 == 0 {
					status = 500
				}
				f.Finish(tr, status)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				dump := f.Snapshot(TraceFilter{})
				for _, rec := range dump.Recent {
					if rec.Route != "classify" {
						t.Errorf("torn record: route %q", rec.Route)
						return
					}
					if int32(len(rec.Spans)) != rec.NumSpans {
						t.Errorf("torn record: %d spans, NumSpans %d", len(rec.Spans), rec.NumSpans)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestFlightWriteAllocs pins the acceptance gate: the flight-recorder
// write path (Begin → spans → Finish with ring admission) allocates
// nothing per request beyond the pooled trace record, which the pool
// amortizes to zero in steady state.
func TestFlightWriteAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its cache under -race, inflating alloc counts")
	}
	f := NewFlight(FlightConfig{SampleRate: 1, RingSize: 8, TopK: 4})
	// Warm the pool and fill the top-K index.
	for i := 0; i < 32; i++ {
		f.Finish(f.Begin("classify", TraceContext{}), 200)
	}
	avg := testing.AllocsPerRun(200, func() {
		tr := f.Begin("classify", TraceContext{})
		sp := tr.StartSpan("classify_scan")
		tr.StartSpanUnder(sp, "classify_model").End()
		sp.End()
		f.Finish(tr, 200)
	})
	if avg > 0 {
		t.Errorf("flight write path allocates %.1f objects/request, want 0", avg)
	}
}

func TestFlightWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlight(FlightConfig{SampleRate: 1})
	tr := f.Begin("classify", TraceContext{})
	tr.StartSpan("classify_decode").End()
	f.Finish(tr, 200)
	n := f.WriteJSONL(NewTracer(&buf), TraceFilter{})
	if n != 1 {
		t.Fatalf("dumped %d traces, want 1", n)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// flight_dump event + request root + one child span.
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3:\n%s", len(lines), buf.String())
	}
	var traceID string
	for i, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if attrs, ok := rec["attrs"].(map[string]any); ok {
			if id, ok := attrs["trace_id"].(string); ok {
				if traceID == "" {
					traceID = id
				} else if id != traceID {
					t.Errorf("line %d carries trace %s, want %s", i, id, traceID)
				}
			}
		}
	}
	if traceID == "" {
		t.Fatal("no trace_id attr in JSONL output")
	}
}

func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("cluseq_test_seconds", 0, 5, 100, "route", "classify")
	id := NewTraceID()
	h.ObserveExemplar(0.25, id)
	h.ObserveExemplar(0.5, TraceID{}) // zero ID must not clobber
	var found *Metric
	for _, m := range reg.Snapshot() {
		if m.Name == "cluseq_test_seconds" {
			found = &m
			break
		}
	}
	if found == nil || found.Exemplar == nil {
		t.Fatal("snapshot missing exemplar")
	}
	if found.Exemplar.TraceID != id.String() || found.Exemplar.Value != 0.25 {
		t.Errorf("exemplar = %+v", found.Exemplar)
	}
	if found.Count != 2 {
		t.Errorf("count = %d, want 2 (ObserveExemplar must still observe)", found.Count)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# EXEMPLAR cluseq_test_seconds{route="classify"} trace_id="` + id.String() + `" value=0.25`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing exemplar comment %q in:\n%s", want, buf.String())
	}
	// Exemplar lines must not break the exposition format: every
	// non-comment line still parses as name{labels} value.
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if !strings.Contains(ln, " ") {
			t.Errorf("malformed sample line %q", ln)
		}
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, id) // no-op, must not panic
}

func BenchmarkFlightWrite(b *testing.B) {
	f := NewFlight(FlightConfig{}) // default 1% sampling
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr := f.Begin("classify", TraceContext{})
			sp := tr.StartSpan("classify_scan")
			tr.StartSpanUnder(sp, "classify_model").End()
			sp.End()
			f.Finish(tr, 200)
		}
	})
}
