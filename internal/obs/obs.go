// Package obs is the repository's unified observability layer: a
// dependency-free metrics registry (counters, gauges, and timing
// histograms reusing internal/histogram) plus a lightweight span tracer
// (see trace.go) that exports phase timings as JSONL.
//
// # Design
//
// Metrics are registered once — Registry.Counter, Registry.Gauge, and
// Registry.Histogram are idempotent lookups keyed by (name, labels) —
// and the returned handles are then updated lock-free on hot paths:
// Counter.Add and Gauge.Set are single atomic operations, and
// Histogram.Observe is one short mutex-protected bucket increment.
// Registration takes the registry lock; nothing on the update path
// touches a map, so holding a handle across a hot loop costs one
// predictable branch (the nil check) plus the atomic.
//
// Every handle method and every Registry method is nil-receiver-safe
// and becomes a no-op (or zero result) on nil, so instrumented code
// never needs an "is observability enabled?" conditional: code paths
// are instrumented unconditionally and a nil *Registry turns the whole
// layer off. BenchmarkObsOverhead (repository root) pins the resulting
// hot-path cost at noise level.
//
// Scrapers read a consistent point-in-time view with Registry.Snapshot
// (sorted, JSON-friendly) or render Prometheus text exposition with
// Registry.WritePrometheus (see prom.go). Both are safe to call while
// writers are updating the metrics.
//
// # Naming
//
// Metric and label names follow the Prometheus data model
// ([a-zA-Z_:][a-zA-Z0-9_:]* for metric names, no leading colon for
// label names); registration panics on an invalid name, since that is
// always a programming error. The metric catalogue lives in DESIGN.md
// §10.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cluseq/internal/histogram"
)

// Counter is a monotonically increasing metric. The nil Counter is a
// valid no-op, so handles can be carried unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotone by contract).
//
//cluseq:hotpath
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//cluseq:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The nil Gauge is a valid
// no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
//
//cluseq:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
//
//cluseq:hotpath
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a concurrency-safe timing/size distribution over a fixed
// linear bucket domain (internal/histogram underneath). Observations
// outside the domain clamp into the edge buckets, so no sample is lost;
// quantile resolution is one bucket width. The nil Histogram is a valid
// no-op.
type Histogram struct {
	mu    sync.Mutex
	h     *histogram.Histogram
	count int64
	sum   float64

	// Last trace-ID exemplar (ObserveExemplar), under the same mutex so
	// attaching one costs nothing beyond the observation itself.
	exID  TraceID
	exVal float64
}

// Observe records one sample.
//
//cluseq:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock() //cluseq:allow hotpath: one short critical section guards the shared buckets; see package doc
	h.h.Add(v)
	h.count++
	h.sum += v
	h.mu.Unlock() //cluseq:allow hotpath: pairs with the Lock above
}

// ObserveExemplar records one sample and attaches the trace ID as the
// series' exemplar (last-write-wins), linking the histogram's
// aggregate shape back to a concrete trace in the flight recorder. A
// zero trace ID records the sample without touching the exemplar.
//
//cluseq:hotpath
func (h *Histogram) ObserveExemplar(v float64, id TraceID) {
	if h == nil {
		return
	}
	h.mu.Lock() //cluseq:allow hotpath: one short critical section guards the shared buckets; see package doc
	h.h.Add(v)
	h.count++
	h.sum += v
	if !id.IsZero() {
		h.exID = id
		h.exVal = v
	}
	h.mu.Unlock() //cluseq:allow hotpath: pairs with the Lock above
}

// ObserveSince records the elapsed seconds since start.
//
//cluseq:hotpath
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds()) //cluseq:allow hotpath: reading the monotonic clock is the method's purpose
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Export returns an independent deep copy of the underlying bucket
// histogram, for offline analysis beyond the handle's own accessors:
// arbitrary quantile reads without holding the handle's lock, and
// combining series with histogram.Merge (the load harness merges its
// per-route latency histograms into an overall distribution this way).
// A nil Histogram exports nil.
func (h *Histogram) Export() *histogram.Histogram {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Clone()
}

// Quantile estimates the q-quantile of the recorded samples (see
// histogram.Quantile for the interpolation and clamping contract). The
// boolean result is false when no samples were recorded or h is nil.
func (h *Histogram) Quantile(q float64) (float64, bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Quantile(q)
}

// FractionBelow returns the fraction of recorded samples at or below x
// (see histogram.FractionBelow for the interpolation contract). The
// boolean result is false when no samples were recorded or h is nil.
// The SLO gauges read "fraction of requests within objective" this way.
func (h *Histogram) FractionBelow(x float64) (float64, bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.FractionBelow(x)
}

// Label is one name=value pair attached to a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Kind discriminates metric types in a Snapshot.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus type name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		// Histograms are exposed as Prometheus summaries: pre-computed
		// quantiles, not cumulative buckets (the linear bucket layout
		// would cost hundreds of series per metric).
		return "summary"
	}
}

// metric is one registered series.
type metric struct {
	name   string
	labels []Label // sorted by key
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Construct with NewRegistry; the nil
// *Registry is valid and turns every registration into a nil handle
// (whose methods are no-ops), so instrumentation can be unconditional.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// seriesID is the canonical identity of a series: the metric name plus
// its sorted label set, rendered in Prometheus form. It doubles as the
// flat key of Tracer.EmitMetrics records.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parseLabels converts variadic "key", "value" pairs into a sorted
// label set, panicking on malformed input (a programming error).
func parseLabels(name string, kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label key/value list %q", name, kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) || strings.Contains(kv[i], ":") {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, kv[i]))
		}
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels
}

// lookup returns the series for (name, labels), creating it with mk on
// first registration and panicking when the name is invalid or the
// series already exists with a different kind.
func (r *Registry) lookup(name string, kind Kind, kv []string, mk func(*metric)) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	labels := parseLabels(name, kv)
	id := seriesID(name, labels)
	r.mu.RLock()
	m := r.metrics[id]
	r.mu.RUnlock()
	if m == nil {
		r.mu.Lock()
		m = r.metrics[id]
		if m == nil {
			m = &metric{name: name, labels: labels, kind: kind}
			mk(m)
			r.metrics[id] = m
		}
		r.mu.Unlock()
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %s already registered as %s, requested %s", id, m.kind, kind))
	}
	return m
}

// Counter returns the counter named name with the given "key", "value"
// label pairs, registering it on first use. Subsequent calls with the
// same name and labels return the same handle; a nil *Registry returns
// a nil (no-op) handle.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, labelPairs, func(m *metric) {
		m.counter = &Counter{}
	}).counter
}

// Gauge returns the gauge named name, registering it on first use.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, labelPairs, func(m *metric) {
		m.gauge = &Gauge{}
	}).gauge
}

// Histogram returns the histogram named name over the linear bucket
// domain [lo, hi) with the given bucket count, registering it on first
// use. The domain of the first registration wins; later calls with the
// same identity reuse the existing series regardless of domain.
func (r *Registry) Histogram(name string, lo, hi float64, buckets int, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, labelPairs, func(m *metric) {
		h, err := histogram.New(lo, hi, buckets)
		if err != nil {
			panic(fmt.Sprintf("obs: metric %s: %v", name, err))
		}
		m.hist = &Histogram{h: h}
	}).hist
}

// Exemplar links one histogram series to a concrete trace: the most
// recent exemplar-bearing observation and its value.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// QuantileValue is one pre-computed quantile of a histogram snapshot.
type QuantileValue struct {
	Q     float64 `json:"q"`
	Value float64 `json:"value"`
}

// snapshotQuantiles are the quantiles exported for every histogram.
var snapshotQuantiles = []float64{0.5, 0.95, 0.99}

// Metric is one series in a Registry snapshot.
type Metric struct {
	// Name is the metric name; Labels its sorted label set.
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   Kind    `json:"kind"`
	// Value holds the counter or gauge reading.
	Value float64 `json:"value"`
	// Count, Sum, and Quantiles describe a histogram series.
	Count     int64           `json:"count,omitempty"`
	Sum       float64         `json:"sum,omitempty"`
	Quantiles []QuantileValue `json:"quantiles,omitempty"`
	// Exemplar is the series' most recent trace-ID exemplar, when one
	// was recorded via ObserveExemplar.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// ID returns the series identity (name plus rendered label set).
func (m Metric) ID() string { return seriesID(m.Name, m.Labels) }

// Label returns the value of the named label ("" when absent).
func (m Metric) Label(key string) string {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Snapshot returns a point-in-time copy of every registered series,
// sorted by name then label set. It is safe to call concurrently with
// metric updates and registrations; each series is read atomically,
// though the snapshot as a whole is not one global atomic cut.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	series := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		series = append(series, m)
	}
	r.mu.RUnlock()

	out := make([]Metric, 0, len(series))
	for _, m := range series {
		sm := Metric{Name: m.name, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			sm.Value = float64(m.counter.Value())
		case KindGauge:
			sm.Value = m.gauge.Value()
		case KindHistogram:
			m.hist.mu.Lock()
			sm.Count = m.hist.count
			sm.Sum = m.hist.sum
			for _, q := range snapshotQuantiles {
				if v, ok := m.hist.h.Quantile(q); ok {
					sm.Quantiles = append(sm.Quantiles, QuantileValue{Q: q, Value: v})
				}
			}
			if !m.hist.exID.IsZero() {
				sm.Exemplar = &Exemplar{TraceID: m.hist.exID.String(), Value: m.hist.exVal}
			}
			m.hist.mu.Unlock()
		}
		out = append(out, sm)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}
