package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters are monotone; negative adds are dropped
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", 0, 10, 100)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	if got := h.Sum(); got != 45 {
		t.Fatalf("sum = %v, want 45", got)
	}
	if q, ok := h.Quantile(0.5); !ok || q < 3 || q > 6 {
		t.Fatalf("p50 = %v (ok=%v), want ~4.5", q, ok)
	}
}

// TestHistogramExport pins Export's contract: a deep, independent copy
// of the bucket distribution that merges with other exports (the load
// harness folds per-route exports into an overall distribution).
func TestHistogramExport(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("test_a_ms", 0, 10, 10)
	b := r.Histogram("test_b_ms", 0, 10, 10)
	for i := 0; i < 6; i++ {
		a.Observe(float64(i))
	}
	b.Observe(8)

	ea := a.Export()
	if ea.Count() != 6 {
		t.Fatalf("export count = %d, want 6", ea.Count())
	}
	ea.Add(9)
	if a.Count() != 6 {
		t.Fatalf("mutating the export changed the live histogram: count %d", a.Count())
	}

	overall := a.Export()
	if err := overall.Merge(b.Export()); err != nil {
		t.Fatal(err)
	}
	if overall.Count() != 7 {
		t.Fatalf("merged export count = %d, want 7", overall.Count())
	}
	if q, ok := overall.Quantile(1); !ok || q < 8 {
		t.Fatalf("merged p100 = %v (ok=%v), want ≥ 8", q, ok)
	}
}

// TestNilSafety drives every handle and registry method through nil
// receivers — the contract that lets instrumented code run with
// observability off and no conditionals.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "k", "v")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", 0, 1, 10)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if _, ok := h.Quantile(0.5); ok {
		t.Fatal("nil histogram quantile must report no data")
	}
	if h.Export() != nil {
		t.Fatal("nil histogram must export nil")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}

	var tr *Tracer
	sp := tr.Span("phase")
	if sp != nil {
		t.Fatal("nil tracer must hand out a nil span")
	}
	sp.End()
	tr.Event("e")
	tr.EmitMetrics(NewRegistry())
	if tr.Err() != nil {
		t.Fatal("nil tracer must report no error")
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "route", "classify")
	b := r.Counter("dup_total", "route", "classify")
	if a != b {
		t.Fatal("same (name, labels) must return the same handle")
	}
	other := r.Counter("dup_total", "route", "models")
	if a == other {
		t.Fatal("distinct label values must be distinct series")
	}
	a.Inc()
	if b.Value() != 1 || other.Value() != 0 {
		t.Fatal("series aliasing is wrong")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict")
	defer func() {
		if recover() == nil {
			t.Fatal("registering an existing counter as a gauge must panic")
		}
	}()
	r.Gauge("conflict")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0leading", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q must panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	// Odd label list and invalid label names are programming errors too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("odd label list must panic")
			}
		}()
		r.Counter("ok_total", "dangling")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("colon in label name must panic")
			}
		}()
		r.Counter("ok_total", "a:b", "v")
	}()
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(7)
	h := r.Histogram("c_seconds", 0, 1, 10)
	h.Observe(0.25)
	r.Counter("b_labeled_total", "k", "v2").Inc()
	r.Counter("b_labeled_total", "k", "v1").Inc()

	snap := r.Snapshot()
	var ids []string
	for _, m := range snap {
		ids = append(ids, m.ID())
	}
	want := []string{
		"a_gauge",
		`b_labeled_total{k="v1"}`,
		`b_labeled_total{k="v2"}`,
		"b_total",
		"c_seconds",
	}
	if strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Fatalf("snapshot order = %v, want %v", ids, want)
	}
	for _, m := range snap {
		switch m.ID() {
		case "a_gauge":
			if m.Kind != KindGauge || m.Value != 7 {
				t.Errorf("a_gauge = %+v", m)
			}
		case "b_total":
			if m.Kind != KindCounter || m.Value != 2 {
				t.Errorf("b_total = %+v", m)
			}
		case "c_seconds":
			if m.Kind != KindHistogram || m.Count != 1 || m.Sum != 0.25 || len(m.Quantiles) != 3 {
				t.Errorf("c_seconds = %+v", m)
			}
			if m.Label("nope") != "" {
				t.Errorf("absent label lookup = %q", m.Label("nope"))
			}
		case `b_labeled_total{k="v1"}`:
			if m.Label("k") != "v1" {
				t.Errorf("label lookup = %q", m.Label("k"))
			}
		}
	}
}

// TestConcurrentHammer updates counters, gauges, and histograms from
// many goroutines while a scraper concurrently snapshots and renders
// the Prometheus exposition. Run under -race, this is the layer's
// concurrency contract test.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 8
		iters      = 2000
	)
	var wg, scraperWG sync.WaitGroup
	stop := make(chan struct{})

	// Scraper: snapshot + exposition in a loop until writers finish.
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Snapshot()
			if err := r.WritePrometheus(discard{}); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines hammer shared handles, half register
			// their own series concurrently with the scraper.
			c := r.Counter("hammer_total")
			gauge := r.Gauge("hammer_gauge")
			h := r.Histogram("hammer_seconds", 0, 1, 100)
			for i := 0; i < iters; i++ {
				c.Inc()
				gauge.Add(1)
				h.Observe(float64(i%100) / 100)
				if g%2 == 0 {
					r.Counter("hammer_labeled_total", "worker", string(rune('a'+g))).Inc()
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scraperWG.Wait()

	if got := r.Counter("hammer_total").Value(); got != goroutines*iters {
		t.Fatalf("hammer_total = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("hammer_gauge").Value(); got != goroutines*iters {
		t.Fatalf("hammer_gauge = %v, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("hammer_seconds", 0, 1, 100).Count(); got != goroutines*iters {
		t.Fatalf("hammer_seconds count = %d, want %d", got, goroutines*iters)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkObsOverhead compares a simulated engine phase — a batch of
// arithmetic "similarity" work followed by the per-batch metric updates
// the engine actually performs — with observability off (nil handles)
// and on. The acceptance contract is <5% overhead: obs updates happen
// once per batch, never per element, exactly as in the engine's hot
// loop.
func BenchmarkObsOverhead(b *testing.B) {
	const batch = 4096
	work := func(c *Counter, h *Histogram, g *Gauge) float64 {
		acc := 1.0
		for i := 1; i <= batch; i++ {
			acc += acc/float64(i) + float64(i%7)
		}
		// The engine's per-phase updates: one counter add, one histogram
		// observation, one gauge set.
		c.Add(batch)
		h.Observe(acc / batch)
		g.Set(acc)
		return acc
	}
	var sink float64
	b.Run("off", func(b *testing.B) {
		var (
			c *Counter
			h *Histogram
			g *Gauge
		)
		for i := 0; i < b.N; i++ {
			sink = work(c, h, g)
		}
	})
	b.Run("on", func(b *testing.B) {
		r := NewRegistry()
		c := r.Counter("bench_total")
		h := r.Histogram("bench_seconds", 0, 10, 100)
		g := r.Gauge("bench_gauge")
		for i := 0; i < b.N; i++ {
			sink = work(c, h, g)
		}
	})
	_ = sink
}
