package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one "# TYPE" comment per metric family, then
// one sample line per series. Counters and gauges export their value
// directly; histograms export as summaries — pre-computed quantiles
// plus <name>_sum and <name>_count — because the underlying linear
// bucket layout (hundreds of buckets) would be wasteful as cumulative
// _bucket series.
//
// It is safe to call concurrently with metric updates. A nil *Registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, m := range r.Snapshot() {
		if m.Name != lastFamily {
			bw.WriteString("# TYPE ")
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(m.Kind.String())
			bw.WriteByte('\n')
			lastFamily = m.Name
		}
		switch m.Kind {
		case KindCounter:
			writeSample(bw, m.Name, m.Labels, "", strconv.FormatInt(int64(m.Value), 10))
		case KindGauge:
			writeSample(bw, m.Name, m.Labels, "", formatFloat(m.Value))
		case KindHistogram:
			for _, qv := range m.Quantiles {
				writeSample(bw, m.Name, m.Labels, formatFloat(qv.Q), formatFloat(qv.Value))
			}
			writeSample(bw, m.Name+"_sum", m.Labels, "", formatFloat(m.Sum))
			writeSample(bw, m.Name+"_count", m.Labels, "", strconv.FormatInt(m.Count, 10))
			if m.Exemplar != nil {
				// The 0.0.4 text format has no exemplar syntax, so emit it
				// as a comment line: parsers skip it, humans and the CI
				// trace-identity check can still correlate series → trace.
				bw.WriteString("# EXEMPLAR ")
				bw.WriteString(m.ID())
				bw.WriteString(` trace_id="`)
				bw.WriteString(m.Exemplar.TraceID)
				bw.WriteString(`" value=`)
				bw.WriteString(formatFloat(m.Exemplar.Value))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one exposition line: name{labels[,quantile="q"]} value.
func writeSample(bw *bufio.Writer, name string, labels []Label, quantile, value string) {
	bw.WriteString(name)
	if len(labels) > 0 || quantile != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if quantile != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`quantile="`)
			bw.WriteString(quantile)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip decimal, with the special values spelled +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
