package obs

import (
	"regexp"
	"strings"
	"testing"
)

// promLine matches one valid exposition sample line:
// name{label="value",...} value
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$`)

var promType = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$`)

func TestWritePrometheusWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "route", "classify").Add(3)
	r.Counter("requests_total", "route", "models").Add(1)
	r.Gauge("uptime_seconds").Set(12.5)
	r.Gauge("weird_gauge").Set(1e21) // exercises exponent formatting
	h := r.Histogram("latency_ms", 0, 100, 100, "route", "classify")
	for i := 0; i < 50; i++ {
		h.Observe(float64(i))
	}
	r.Counter("escaped_total", "path", "a\\b\"c\nd").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	types := map[string]bool{}
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			if !promType.MatchString(line) {
				t.Errorf("malformed TYPE line: %q", line)
			}
			fam := strings.Fields(line)[2]
			if types[fam] {
				t.Errorf("duplicate TYPE line for family %s", fam)
			}
			types[fam] = true
		default:
			if !promLine.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
			}
			samples++
		}
	}
	for _, fam := range []string{"requests_total", "uptime_seconds", "latency_ms", "escaped_total"} {
		if !types[fam] {
			t.Errorf("missing TYPE line for %s", fam)
		}
	}
	// Histograms export as summaries: 3 quantiles + _sum + _count.
	for _, want := range []string{
		`requests_total{route="classify"} 3`,
		`requests_total{route="models"} 1`,
		"uptime_seconds 12.5",
		`latency_ms{route="classify",quantile="0.5"} `,
		"latency_ms_sum{route=\"classify\"} ",
		"latency_ms_count{route=\"classify\"} 50",
		`escaped_total{path="a\\b\"c\nd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if samples == 0 {
		t.Fatal("no sample lines rendered")
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	cases := map[float64]string{
		0.5: "0.5",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(1.0 / zero()); got != "+Inf" {
		t.Errorf("+Inf renders as %q", got)
	}
	if got := formatFloat(-1.0 / zero()); got != "-Inf" {
		t.Errorf("-Inf renders as %q", got)
	}
	if got := formatFloat(zero() / zero()); got != "NaN" {
		t.Errorf("NaN renders as %q", got)
	}
}

// zero defeats constant folding (1.0/0.0 is a compile error in Go).
func zero() float64 { return 0 }
