//go:build race

package obs

// raceEnabled reports whether the race detector is active; alloc-count
// gates skip under it because sync.Pool deliberately bypasses its cache
// in race mode.
const raceEnabled = true
