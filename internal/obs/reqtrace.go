package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// MaxTraceSpans bounds the spans one request trace can hold. The array
// is inline in the pooled record, so the bound is what makes a trace a
// fixed-size, zero-allocation object; spans past the cap are counted in
// Dropped rather than recorded (a batch request that would emit
// thousands of per-item spans degrades gracefully).
const MaxTraceSpans = 48

// SpanRec is one completed span inside a request trace. Offsets are
// relative to the trace's start, so a record is self-contained and
// meaningful after the fact without the original timestamps.
type SpanRec struct {
	// Name is the span's literal name (see DESIGN.md §15 for the
	// taxonomy). Must be a compile-time constant by convention — the
	// record only holds the string header, never a copy.
	Name string `json:"name"`
	// Parent is the index of the enclosing span in the trace's span
	// list, or -1 when the span hangs directly off the request root.
	Parent int32 `json:"parent"`
	// StartUS is the span's start offset from the request start, in
	// microseconds; DurUS its duration. DurUS is -1 while the span is
	// unfinished (a Start without End leaves this marker in the dump).
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
}

// TraceRecord is the plain, copyable snapshot of one finished request
// trace — the shape the flight recorder stores and /debug/traces and
// the JSONL sink emit. Unlike the live RequestTrace it contains no
// atomics, so ring slots copy it with a single struct assignment.
type TraceRecord struct {
	// Trace carries this request's trace ID and the server's root span
	// ID; Sampled reports whether the trace was retained.
	Trace TraceContext `json:"-"`
	// Parent is the inbound caller's span ID (zero when the trace
	// started in this process); ParentID its hex rendering, filled by
	// seal so the record stays allocation-free on the request path.
	Parent SpanID `json:"-"`
	// TraceID/SpanID/ParentID are the hex renderings for JSON output.
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Route is the server's stable route label; Status the HTTP status.
	Route  string `json:"route"`
	Status int    `json:"status"`
	// Error marks a trace the sampler classified as failed (5xx or
	// transport-level problems); such traces are always retained.
	Error bool `json:"error,omitempty"`
	// StartUS is the request's wall-clock start (Unix microseconds);
	// DurUS its end-to-end duration.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Dropped counts spans discarded past MaxTraceSpans.
	Dropped int32 `json:"dropped_spans,omitempty"`
	// NumSpans is the live prefix of Spans.
	NumSpans int32     `json:"-"`
	Spans    []SpanRec `json:"spans"`
	spansBuf [MaxTraceSpans]SpanRec
}

// seal fixes the Spans slice to the record's own inline buffer and
// fills the derived hex fields. Must be called after every copy into a
// new location (struct assignment aliases the source's buffer).
func (r *TraceRecord) seal() {
	n := r.NumSpans
	if n < 0 {
		n = 0
	}
	if n > MaxTraceSpans {
		n = MaxTraceSpans
	}
	r.Spans = r.spansBuf[:n]
	r.TraceID = r.Trace.TraceID.String()
	r.SpanID = r.Trace.SpanID.String()
	if !r.Parent.IsZero() {
		r.ParentID = r.Parent.String()
	}
}

// RequestTrace is the live, request-scoped trace being recorded: a
// pooled fixed-size record plus an atomic span cursor, so concurrent
// pool workers can open spans without a lock (each claims a distinct
// slot). The nil *RequestTrace is a valid no-op — every method returns
// immediately — so handlers thread tracing unconditionally and an
// untraced server pays one nil check per span.
type RequestTrace struct {
	rec    TraceRecord
	parent SpanID // inbound caller span (zero when the trace starts here)
	start  time.Time
	next   atomic.Int32 // span slots claimed (may exceed MaxTraceSpans)
}

// Context returns the trace's propagation context (zero for nil).
func (t *RequestTrace) Context() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	return t.rec.Trace
}

// TraceID returns the trace's ID (zero for nil).
func (t *RequestTrace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.rec.Trace.TraceID
}

// SpanHandle is one open span. The zero handle is a valid no-op, so
// span plumbing needs no nil checks. Handles are values: opening and
// closing a span allocates nothing.
type SpanHandle struct {
	t     *RequestTrace
	idx   int32
	start time.Time
}

// RootSpan is the handle representing the request root, for use as the
// parent argument of StartSpanUnder.
var RootSpan = SpanHandle{idx: -1}

// StartSpan opens a span hanging directly off the request root.
func (t *RequestTrace) StartSpan(name string) SpanHandle {
	return t.StartSpanUnder(RootSpan, name)
}

// StartSpanUnder opens a span as a child of parent. Safe to call from
// concurrent goroutines (the batch fan-out workers): each call claims
// its own slot with one atomic increment. Past MaxTraceSpans the span
// is counted as dropped and the returned handle is a no-op.
func (t *RequestTrace) StartSpanUnder(parent SpanHandle, name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	idx := t.next.Add(1) - 1
	if idx >= MaxTraceSpans {
		return SpanHandle{} // dropped; Finish reconciles the counter
	}
	now := time.Now()
	t.rec.spansBuf[idx] = SpanRec{
		Name:    name,
		Parent:  parent.idx,
		StartUS: now.Sub(t.start).Microseconds(),
		DurUS:   -1, // marks an unfinished span in dumps
	}
	return SpanHandle{t: t, idx: idx, start: now}
}

// End closes the span. Calling End on the zero handle (nil trace or a
// dropped span) is a no-op; calling it twice overwrites the duration
// with the later value.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.rec.spansBuf[h.idx].DurUS = time.Since(h.start).Microseconds()
}

// traceCtxKey is the context key for the request's live trace.
type traceCtxKey struct{}

// ContextWithTrace returns a context carrying the trace. A nil trace
// returns ctx unchanged.
func ContextWithTrace(ctx context.Context, t *RequestTrace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the context's live request trace, or nil
// outside a traced request. All RequestTrace methods accept the nil
// result, so callers never branch.
func TraceFromContext(ctx context.Context) *RequestTrace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*RequestTrace)
	return t
}
