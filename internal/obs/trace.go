package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records spans (named, timed phases with attributes) as JSON
// Lines on an io.Writer sink, for offline analysis of training runs
// (cluseq -trace-out, experiments -trace-out). One record is written
// per line, so the output can be streamed, tailed, and processed with
// jq without ever holding a whole trace in memory.
//
// Record shapes:
//
//	{"type":"span","name":"score","start_us":...,"dur_us":...,"attrs":{...}}
//	{"type":"event","name":"reload","ts_us":...,"attrs":{...}}
//	{"type":"metrics","ts_us":...,"metrics":{"series{label=\"v\"}":...}}
//
// start_us/ts_us are Unix microseconds; dur_us is the span's duration
// in microseconds measured with the monotonic clock.
//
// A Tracer is safe for concurrent use (records are serialized by a
// mutex), and the nil *Tracer is a valid no-op — Span returns a nil
// *Span whose End does nothing — so tracing, like the metrics
// registry, is wired unconditionally and enabled by supplying a sink.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTracer returns a tracer writing JSONL records to w. The caller
// owns w's lifecycle; check Err after the run for sink write failures.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Err returns the first write or encoding error the tracer hit, if any.
// Records after a failed write are dropped.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Attr is one span/event attribute. Values must be JSON-encodable;
// the helpers Int, Float, Str, and Bool cover the usual cases.
type Attr struct {
	Key   string
	Value any
}

// Int returns an integer attribute.
func Int(key string, v int) Attr { return Attr{key, v} }

// Int64 returns a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{key, v} }

// Float returns a float attribute.
func Float(key string, v float64) Attr { return Attr{key, v} }

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{key, v} }

// Bool returns a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{key, v} }

// Span is one in-progress span; close it with End. The zero/nil Span
// is a valid no-op.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
	attrs []Attr
}

// Span starts a span. Attributes given here and to End are merged into
// the record (End's win on key collision, since encoding happens last).
func (t *Tracer) Span(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, start: time.Now(), attrs: attrs}
}

// End closes the span and writes its record.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	rec := record{
		Type:    "span",
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   dur.Microseconds(),
		Attrs:   mergeAttrs(s.attrs, attrs),
	}
	s.tr.write(rec)
}

// Event writes a point-in-time record (no duration).
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.write(record{
		Type:  "event",
		Name:  name,
		TSUS:  time.Now().UnixMicro(),
		Attrs: mergeAttrs(attrs, nil),
	})
}

// EmitMetrics writes a point-in-time snapshot of the registry as one
// "metrics" record: a flat map from series identity (the Prometheus
// name{labels} form) to its value — a number for counters and gauges,
// a {count, sum, p50, p95, p99} object for histograms. Training runs
// emit one as their final record so a trace file carries both the
// phase timeline and the end-of-run totals.
func (t *Tracer) EmitMetrics(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	metrics := make(map[string]any)
	for _, m := range reg.Snapshot() {
		switch m.Kind {
		case KindCounter:
			metrics[m.ID()] = int64(m.Value)
		case KindGauge:
			metrics[m.ID()] = m.Value
		case KindHistogram:
			h := map[string]any{"count": m.Count, "sum": m.Sum}
			for _, qv := range m.Quantiles {
				switch qv.Q {
				case 0.5:
					h["p50"] = qv.Value
				case 0.95:
					h["p95"] = qv.Value
				case 0.99:
					h["p99"] = qv.Value
				}
			}
			metrics[m.ID()] = h
		}
	}
	t.write(record{Type: "metrics", TSUS: time.Now().UnixMicro(), Metrics: metrics})
}

// record is the JSONL wire shape shared by all record types.
type record struct {
	Type    string         `json:"type"`
	Name    string         `json:"name,omitempty"`
	StartUS int64          `json:"start_us,omitempty"`
	DurUS   int64          `json:"dur_us"`
	TSUS    int64          `json:"ts_us,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Metrics map[string]any `json:"metrics,omitempty"`
}

func mergeAttrs(a, b []Attr) map[string]any {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make(map[string]any, len(a)+len(b))
	for _, at := range a {
		out[at.Key] = at.Value
	}
	for _, at := range b {
		out[at.Key] = at.Value
	}
	return out
}

func (t *Tracer) write(rec record) {
	data, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(data, '\n')); err != nil {
		t.err = err
	}
}
