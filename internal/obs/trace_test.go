package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeJSONL parses every line of a trace buffer, failing the test on
// any malformed record.
func decodeJSONL(t *testing.T, out string) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestTracerSpansEventsMetrics(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)

	sp := tr.Span("score", Int("iter", 1), Str("mode", "snapshot"))
	time.Sleep(time.Millisecond)
	sp.End(Int("pairs", 42), Str("mode", "override"))
	tr.Event("reload", Bool("ok", true))

	reg := NewRegistry()
	reg.Counter("c_total").Add(7)
	reg.Gauge("g").Set(1.5)
	h := reg.Histogram("h_seconds", 0, 1, 10)
	h.Observe(0.3)
	tr.EmitMetrics(reg)

	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	recs := decodeJSONL(t, sb.String())
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}

	span := recs[0]
	if span["type"] != "span" || span["name"] != "score" {
		t.Fatalf("span record = %v", span)
	}
	if span["start_us"].(float64) <= 0 {
		t.Fatal("span missing start_us")
	}
	if span["dur_us"].(float64) < 1000 {
		t.Fatalf("dur_us = %v, want >= 1000 (slept 1ms)", span["dur_us"])
	}
	attrs := span["attrs"].(map[string]any)
	if attrs["iter"] != 1.0 || attrs["pairs"] != 42.0 {
		t.Fatalf("span attrs = %v", attrs)
	}
	if attrs["mode"] != "override" {
		t.Fatalf("End attrs must win on collision, got %v", attrs["mode"])
	}

	event := recs[1]
	if event["type"] != "event" || event["name"] != "reload" {
		t.Fatalf("event record = %v", event)
	}
	if event["attrs"].(map[string]any)["ok"] != true {
		t.Fatalf("event attrs = %v", event["attrs"])
	}

	met := recs[2]
	if met["type"] != "metrics" {
		t.Fatalf("metrics record = %v", met)
	}
	series := met["metrics"].(map[string]any)
	if series["c_total"] != 7.0 || series["g"] != 1.5 {
		t.Fatalf("metrics payload = %v", series)
	}
	hist := series["h_seconds"].(map[string]any)
	if hist["count"] != 1.0 || hist["sum"] != 0.3 {
		t.Fatalf("histogram payload = %v", hist)
	}
	for _, q := range []string{"p50", "p95", "p99"} {
		if _, ok := hist[q]; !ok {
			t.Fatalf("histogram payload missing %s: %v", q, hist)
		}
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("sink broken")
}

func TestTracerErrLatches(t *testing.T) {
	w := &failWriter{}
	tr := NewTracer(w)
	tr.Event("a")
	if tr.Err() == nil {
		t.Fatal("write failure must surface via Err")
	}
	tr.Event("b")
	tr.Span("s").End()
	if w.n != 1 {
		t.Fatalf("records after a failed write must be dropped, wrote %d times", w.n)
	}
}

func TestTracerConcurrent(t *testing.T) {
	var sb safeBuilder
	tr := NewTracer(&sb)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				tr.Span("phase", Int("g", g), Int("i", i)).End()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	recs := decodeJSONL(t, sb.String())
	if len(recs) != 800 {
		t.Fatalf("got %d records, want 800", len(recs))
	}
}

// safeBuilder is a mutex-guarded strings.Builder; the tracer serializes
// its own writes, but the test reads the buffer afterwards and the race
// detector wants the happens-before edge explicit.
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
