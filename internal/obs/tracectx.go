package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// fallbackIDCounter backs ID generation when crypto/rand is unavailable.
var fallbackIDCounter atomic.Uint64

// TraceID is a W3C Trace Context trace identifier: 16 bytes, rendered
// as 32 lowercase hex digits. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
//
//cluseq:hotpath
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string {
	var buf [32]byte
	hex.Encode(buf[:], t[:])
	return string(buf[:])
}

// SpanID is a W3C Trace Context span identifier: 8 bytes, rendered as
// 16 lowercase hex digits. The zero value means "no span".
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string {
	var buf [16]byte
	hex.Encode(buf[:], s[:])
	return string(buf[:])
}

// TraceContext is the propagated identity of one distributed trace, as
// carried by the W3C "traceparent" header (version 00).
type TraceContext struct {
	// TraceID identifies the whole trace across services.
	TraceID TraceID
	// SpanID identifies the caller's span (on ingress) or this process's
	// span (on egress).
	SpanID SpanID
	// Sampled mirrors the trace-flags sampled bit: an upstream that set
	// it has retained the trace, and this process keeps it too so the
	// distributed trace has no holes.
	Sampled bool
}

// traceparentLen is the exact length of a version-00 traceparent value:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// ParseTraceparent parses a W3C traceparent header value
// ("00-<trace-id>-<parent-id>-<flags>"). It accepts only version 00
// with lowercase hex (the spec's canonical form) and rejects the
// all-zero trace and span IDs, which the spec defines as invalid.
func ParseTraceparent(h string) (TraceContext, bool) {
	if len(h) != traceparentLen || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	var tc TraceContext
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return TraceContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceContext{}, false
	}
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return TraceContext{}, false
	}
	tc.Sampled = flags[0]&0x01 != 0
	return tc, true
}

// Traceparent renders the context as a version-00 traceparent value,
// suitable for an outbound header.
func (tc TraceContext) Traceparent() string {
	var buf [traceparentLen]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], tc.TraceID[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], tc.SpanID[:])
	buf[52] = '-'
	flags := byte(0)
	if tc.Sampled {
		flags = 0x01
	}
	hex.Encode(buf[53:55], []byte{flags})
	return string(buf[:])
}

// NewTraceID returns a random trace ID. crypto/rand failure degrades to
// a counter-based ID rather than an error: a trace ID only needs to be
// unique enough to correlate, and the serving path must never fail over
// telemetry.
func NewTraceID() TraceID {
	var t TraceID
	fillRandom(t[:])
	return t
}

// NewSpanID returns a random span ID.
func NewSpanID() SpanID {
	var s SpanID
	fillRandom(s[:])
	return s
}

func fillRandom(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// Fallback: a process-local counter still yields distinct IDs.
		binary.BigEndian.PutUint64(b[:8], fallbackIDCounter.Add(1))
	}
}
