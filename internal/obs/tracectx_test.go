package obs

import (
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", h)
	}
	if got := tc.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %s", got)
	}
	if got := tc.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span ID = %s", got)
	}
	if !tc.Sampled {
		t.Error("sampled flag not parsed")
	}
	if got := tc.Traceparent(); got != h {
		t.Errorf("round trip: got %q want %q", got, h)
	}
}

func TestParseTraceparentUnsampled(t *testing.T) {
	tc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if !ok || tc.Sampled {
		t.Fatalf("ok=%v sampled=%v, want ok and unsampled", ok, tc.Sampled)
	}
}

func TestParseTraceparentRejectsInvalid(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",  // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736x00f067aa0ba902b7-01",  // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // trailing junk
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted an invalid header", h)
		}
	}
}

func TestNewIDsAreDistinctAndNonZero(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("NewTraceID returned the zero ID")
		}
		s := id.String()
		if len(s) != 32 || strings.ToLower(s) != s {
			t.Fatalf("trace ID rendering %q not 32 lowercase hex digits", s)
		}
		if seen[s] {
			t.Fatalf("duplicate trace ID %s", s)
		}
		seen[s] = true
	}
	if NewSpanID().IsZero() {
		t.Fatal("NewSpanID returned the zero ID")
	}
}
