// Package pool provides the bounded fan-out helper shared by every
// parallel loop in this repository: the clustering engine's scoring
// phases, cmd/classify's batch classification, and the serving daemon's
// batch requests.
//
// A Pool is a semaphore over helper goroutines. Run(n, fn) invokes
// fn(i) for every i in [0, n) with dynamic (work-stealing) index
// assignment, which keeps workers busy when per-index cost is skewed
// (long sequences, large trees). The calling goroutine always
// participates as a worker, so a pool of size w−1 yields w-way
// parallelism with no idle coordinator — and, crucially, a Run call
// that finds the pool saturated still makes progress on the caller's
// own goroutine instead of blocking behind other batches.
//
// Unlike a fixed set of long-lived workers, Run may be called
// concurrently from many goroutines (the serving daemon fans every
// batch request through one shared pool): the semaphore bounds the
// total helper goroutines across all concurrent batches, so one large
// batch cannot starve small ones — it can only monopolize the helpers,
// never another caller's goroutine.
package pool

import (
	"sync"
	"sync/atomic"
)

// Pool bounds the number of helper goroutines available to Run calls.
// The zero value is not usable; construct with New.
type Pool struct {
	extra int
	slots chan struct{}
}

// New returns a pool with the given number of helper goroutine slots.
// extra ≤ 0 yields a pool whose Run executes serially on the caller.
func New(extra int) *Pool {
	if extra < 0 {
		extra = 0
	}
	return &Pool{extra: extra, slots: make(chan struct{}, extra)}
}

// Size returns the number of helper slots (parallelism is Size()+1 per
// concurrent caller, bounded overall by Size() + number of callers).
func (p *Pool) Size() int { return p.extra }

// Run executes fn(0) … fn(n−1) and returns when every index is done.
// Indices are handed out dynamically; fn must be safe for concurrent
// invocation on distinct indices. Helpers are acquired opportunistically:
// Run never blocks waiting for a slot.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	// At most n−1 helpers are useful: the caller covers the n-th lane.
	helpers := p.extra
	if helpers > n-1 {
		helpers = n - 1
	}
	var wg sync.WaitGroup
acquire:
	for j := 0; j < helpers; j++ {
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.slots }()
				work()
			}()
		default:
			break acquire // saturated; the caller works alone
		}
	}
	work()
	wg.Wait()
}
