// Package pool provides the bounded fan-out helper shared by every
// parallel loop in this repository: the clustering engine's scoring
// phases, cmd/classify's batch classification, and the serving daemon's
// batch requests.
//
// A Pool is a semaphore over helper goroutines. Run(n, fn) invokes
// fn(i) for every i in [0, n) with dynamic (work-stealing) index
// assignment, which keeps workers busy when per-index cost is skewed
// (long sequences, large trees). The calling goroutine always
// participates as a worker, so a pool of size w−1 yields w-way
// parallelism with no idle coordinator — and, crucially, a Run call
// that finds the pool saturated still makes progress on the caller's
// own goroutine instead of blocking behind other batches.
//
// Unlike a fixed set of long-lived workers, Run may be called
// concurrently from many goroutines (the serving daemon fans every
// batch request through one shared pool): the semaphore bounds the
// total helper goroutines across all concurrent batches, so one large
// batch cannot starve small ones — it can only monopolize the helpers,
// never another caller's goroutine.
package pool

import (
	"sync"
	"sync/atomic"
	"time"

	"cluseq/internal/obs"
)

// Pool bounds the number of helper goroutines available to Run calls.
// The zero value is not usable; construct with New.
type Pool struct {
	extra int
	slots chan struct{}

	// Observability handles (see Instrument). Nil handles are no-ops,
	// so the fan-out path never branches on "is obs enabled".
	tasks *obs.Counter   // indices dispatched across all Run calls
	runs  *obs.Counter   // Run/RunGrain invocations
	wall  *obs.Histogram // per-Run wall time, seconds
}

// New returns a pool with the given number of helper goroutine slots.
// extra ≤ 0 yields a pool whose Run executes serially on the caller.
func New(extra int) *Pool {
	if extra < 0 {
		extra = 0
	}
	return &Pool{extra: extra, slots: make(chan struct{}, extra)}
}

// Size returns the number of helper slots (parallelism is Size()+1 per
// concurrent caller, bounded overall by Size() + number of callers).
func (p *Pool) Size() int { return p.extra }

// Instrument registers the pool's metrics — <prefix>_tasks_total,
// <prefix>_runs_total, and the <prefix>_run_seconds wall-time
// histogram — on the registry and starts recording into them. A nil
// registry leaves the pool uninstrumented (the default). Call before
// the pool is shared across goroutines; the handles are plain fields.
func (p *Pool) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	p.tasks = reg.Counter(prefix + "_tasks_total")
	p.runs = reg.Counter(prefix + "_runs_total")
	// [0, 5s) at 10ms resolution: a Run is one batch fan-out, far
	// shorter than a whole phase.
	p.wall = reg.Histogram(prefix+"_run_seconds", 0, 5, 500)
}

// Run executes fn(0) … fn(n−1) and returns when every index is done.
// Indices are handed out dynamically; fn must be safe for concurrent
// invocation on distinct indices. Helpers are acquired opportunistically:
// Run never blocks waiting for a slot.
//
// Run dispatches one index per claim — maximal balance, one atomic RMW
// per item. For large n with cheap per-item work that RMW becomes
// cross-core traffic on the shared counter's cacheline; use RunGrain to
// amortize it over chunks.
//
//cluseq:hotpath
func (p *Pool) Run(n int, fn func(i int)) {
	p.RunGrain(n, 1, fn)
}

// RunGrain is Run with chunked dynamic dispatch: workers claim runs of
// grain consecutive indices per atomic operation instead of one. Larger
// grains cut contention on the shared dispatch counter; smaller grains
// balance skewed per-index cost. grain ≤ 0 selects an automatic grain of
// n/(8·workers) — 8 claims per worker on average, enough slack for
// work-stealing to even out moderate skew while keeping counter traffic
// negligible.
//
// Every index in [0, n) is visited exactly once regardless of grain;
// chunking only changes how indices are batched onto workers.
//
//cluseq:hotpath
func (p *Pool) RunGrain(n, grain int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.runs != nil { //cluseq:allow hotpath: dispatch-metrics epilogue; uninstrumented pools pay one branch
		start := time.Now()
		defer func() {
			p.runs.Inc()
			p.tasks.Add(int64(n))
			p.wall.ObserveSince(start)
		}()
	}
	workers := p.extra + 1
	if grain <= 0 {
		grain = n / (8 * workers)
	}
	if grain < 1 {
		grain = 1
	}
	var next atomic.Int64
	work := func() { //cluseq:allow hotpath: one closure per Run amortizes over the whole batch
		for {
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	// At most chunks−1 helpers are useful: the caller covers one chunk
	// lane itself.
	chunks := (n + grain - 1) / grain
	helpers := p.extra
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	var wg sync.WaitGroup
acquire:
	for j := 0; j < helpers; j++ { //cluseq:allow hotpath: opportunistic helper acquisition is the fan-out itself; never blocks
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.slots }()
				work()
			}()
		default:
			break acquire // saturated; the caller works alone
		}
	}
	work()    //cluseq:allow hotpath: the caller's own work lane; fn is the batch payload, dynamic by design
	wg.Wait() //cluseq:allow hotpath: join barrier; Run's contract is completion of every index
}
