package pool

import (
	"sync"
	"sync/atomic"
	"testing"

	"cluseq/internal/obs"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, extra := range []int{0, 1, 3, 7} {
		p := New(extra)
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			hits := make([]atomic.Int32, n)
			p.Run(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("extra=%d n=%d: index %d executed %d times", extra, n, i, got)
				}
			}
		}
	}
}

// TestRunGrainMatchesPerItemDispatch asserts the chunked dispatcher's
// core contract: for any grain (explicit or auto), RunGrain visits
// exactly the index set that per-item Run visits — each of [0, n)
// exactly once, nothing else.
func TestRunGrainMatchesPerItemDispatch(t *testing.T) {
	for _, extra := range []int{0, 1, 3, 7} {
		p := New(extra)
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			perItem := make([]atomic.Int32, n)
			p.Run(n, func(i int) { perItem[i].Add(1) })
			for _, grain := range []int{0, 1, 2, 7, 64, n, n + 13} {
				chunked := make([]atomic.Int32, n)
				p.RunGrain(n, grain, func(i int) {
					if i < 0 || i >= n {
						t.Errorf("extra=%d n=%d grain=%d: out-of-range index %d", extra, n, grain, i)
						return
					}
					chunked[i].Add(1)
				})
				for i := range chunked {
					if got, want := chunked[i].Load(), perItem[i].Load(); got != want {
						t.Fatalf("extra=%d n=%d grain=%d: index %d executed %d times, per-item dispatch %d",
							extra, n, grain, i, got, want)
					}
				}
			}
		}
	}
}

func TestRunGrainAutoSerialStaysInOrder(t *testing.T) {
	p := New(0)
	var order []int
	p.RunGrain(50, 0, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial chunked run out of order at %d: %v", i, v)
		}
	}
}

func TestRunSerialWhenNoHelpers(t *testing.T) {
	p := New(0)
	// With no helper slots every index must run on the caller's
	// goroutine, in order.
	var order []int
	p.Run(50, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial run out of order at %d: %v", i, v)
		}
	}
}

func TestConcurrentRunCalls(t *testing.T) {
	p := New(4)
	const callers = 8
	const n = 200
	var total atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(n, func(i int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if got := total.Load(); got != callers*n {
		t.Fatalf("concurrent runs executed %d calls, want %d", got, callers*n)
	}
}

func TestInstrumentCountsRuns(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(2)
	p.Instrument(reg, "pool")

	p.Run(100, func(int) {})
	p.RunGrain(50, 7, func(int) {})
	p.Run(0, func(int) {}) // empty runs are not dispatched or counted

	if got := reg.Counter("pool_runs_total").Value(); got != 2 {
		t.Fatalf("runs_total = %d, want 2", got)
	}
	if got := reg.Counter("pool_tasks_total").Value(); got != 150 {
		t.Fatalf("tasks_total = %d, want 150", got)
	}
	if got := reg.Histogram("pool_run_seconds", 0, 5, 500).Count(); got != 2 {
		t.Fatalf("run_seconds count = %d, want 2", got)
	}
}

func TestUninstrumentedPoolStillRuns(t *testing.T) {
	p := New(1)
	p.Instrument(nil, "pool") // nil registry: stays uninstrumented
	var total atomic.Int64
	p.Run(10, func(int) { total.Add(1) })
	if total.Load() != 10 {
		t.Fatalf("executed %d calls, want 10", total.Load())
	}
}

func TestNegativeExtraNormalizes(t *testing.T) {
	p := New(-3)
	if p.Size() != 0 {
		t.Fatalf("Size() = %d, want 0", p.Size())
	}
	done := false
	p.Run(1, func(int) { done = true })
	if !done {
		t.Fatal("Run skipped the only index")
	}
}
