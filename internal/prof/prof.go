// Package prof wires the standard runtime/pprof file outputs behind the
// conventional -cpuprofile/-memprofile flag pair, shared by the
// command-line binaries so every entry point exposes profiling the same
// way.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and, when memPath is
// non-empty, writes a garbage-collected heap profile there. Either path
// may be empty to skip that profile; Start with both empty returns a
// no-op stop.
//
// The stop function must run before the process exits — defer it inside
// a run() that returns an exit code rather than in a main that calls
// os.Exit directly, since os.Exit skips deferred calls.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: creating heap profile: %w", err)
			}
			// Material allocations only: collect garbage first so the
			// profile shows live memory, not transient churn.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("prof: writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: closing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
