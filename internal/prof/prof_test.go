package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s missing: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("Start must fail on an uncreatable CPU profile path")
	}
}
