package pst

// Arena layout of compiled scoring snapshots.
//
// A Snapshot's entire state — node transition structure, prediction row
// indices, folded log-ratio tables, background distribution — lives in
// one contiguous byte slab (the arena). The serialized form of a
// snapshot IS the arena: Save writes the slab verbatim, and on a
// little-endian host the loader reconstructs every typed slice as a
// zero-copy view into the same bytes. That identity is what lets the
// model registry mmap a bundle file and serve it without allocating,
// copying, or touching the garbage collector (bundle format v3,
// DESIGN.md §14).
//
// Layout (all integers little-endian):
//
//	offset 0: 64-byte fixed header
//	  [0:4)   magic "PSA3"
//	  [4:8)   flags (bit 0 descend, bit 1 delegate)
//	  [8:12)  alphabet size n
//	  [12:16) numNodes
//	  [16:20) rows (prediction rows)
//	  [20:24) denseRows
//	  [24:28) csrRows
//	  [28:32) csrEdges
//	  [32:36) childEdges
//	  [36:40) maxDepth
//	  [40:48) arenaLen (total slab length, header included)
//	  [48:52) CRC-32C of arena[64:arenaLen]
//	  [52:64) reserved, zero
//
// followed by the sections below in fixed order, each aligned to a
// 64-byte boundary (cache-line-sized, and generous for every element
// type). A section whose element count is zero occupies no bytes.
// Sections have no per-section length fields: every extent is derived
// from the header counts, so a corrupt header is caught by arithmetic
// against arenaLen before any allocation happens.
//
//	logRatio   rows·n float64   folded ln P̂(s|ctx) − ln p(s) tables
//	background n float64        the distribution the ratios were folded with
//	nodeTrans  numNodes uint32  per-node transition row: bit 31 set = dense
//	                            row id, clear = CSR row id
//	parent     numNodes int32   BFS parent, the CSR miss fallback chain
//	row        numNodes int32   prediction row of the node's deepest
//	                            significant ancestor-or-self
//	denseTrans denseRows·n i32  full transition rows (fallback resolved)
//	csrStart   csrRows+1 uint32 CSR row extents into csrSym/csrDst
//	csrDst     csrEdges int32   CSR transition targets
//	csrSym     csrEdges uint16  CSR symbols, sorted per row
//	childStart numNodes+1 int32 descend mode only: child-edge extents
//	childDst   childEdges int32 descend mode only: child targets
//	childSym   childEdges u16   descend mode only: child edge symbols
//
// nodeTrans/parent/denseTrans/csr* are present only in automaton mode
// (neither flag set); childStart/childDst/childSym only in descend
// mode; a delegate arena carries just the header and the background.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"

	"cluseq/internal/seq"
)

const (
	arenaMagic     = "PSA3"
	arenaHeaderLen = 64
	arenaAlign     = 64

	arenaFlagDescend  = 1 << 0
	arenaFlagDelegate = 1 << 1
	arenaKnownFlags   = arenaFlagDescend | arenaFlagDelegate
)

// denseFlag marks a nodeTrans entry as indexing a dense transition row;
// entries without it index a CSR row.
const denseFlag = uint32(1) << 31

// maxArenaLen bounds the slab length a header may declare (64 GiB —
// far beyond any legitimate model); larger values are rejected before
// any arithmetic can overflow or any allocation can run.
const maxArenaLen = int64(1) << 36

// castagnoli is the CRC-32C table shared by arena and bundle checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether typed loads read the arena's
// little-endian bytes natively — the zero-copy precondition.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// arenaZeroCopy gates the unsafe slice views. On big-endian hosts (and
// in the test that pins the fallback) every section is decoded into a
// freshly allocated native slice instead — slower, never wrong.
var arenaZeroCopy = hostLittleEndian

// arenaHeader is the decoded fixed header of one snapshot arena.
type arenaHeader struct {
	flags      uint32
	n          uint32
	numNodes   uint32
	rows       uint32
	denseRows  uint32
	csrRows    uint32
	csrEdges   uint32
	childEdges uint32
	maxDepth   uint32
	arenaLen   uint64
	crc        uint32
}

func (h *arenaHeader) descend() bool  { return h.flags&arenaFlagDescend != 0 }
func (h *arenaHeader) delegate() bool { return h.flags&arenaFlagDelegate != 0 }

// automaton reports whether the arena carries the per-node transition
// structure (as opposed to descend-mode child edges or a delegate stub).
func (h *arenaHeader) automaton() bool { return !h.descend() && !h.delegate() }

// Section indices, in arena order. Keep in sync with sections().
const (
	secLogRatio = iota
	secBackground
	secNodeTrans
	secParent
	secRow
	secDenseTrans
	secCsrStart
	secCsrDst
	secCsrSym
	secChildStart
	secChildDst
	secChildSym
	numArenaSections
)

// arenaSectionNames names sections in loader errors, so a corrupt
// bundle points at the byte range that broke.
var arenaSectionNames = [numArenaSections]string{
	"logRatio", "background", "nodeTrans", "parent", "row", "denseTrans",
	"csrStart", "csrDst", "csrSym", "childStart", "childDst", "childSym",
}

// sections returns each section's (element size, element count) for
// this header. Counts are int64 so corrupt headers cannot overflow.
func (h *arenaHeader) sections() [numArenaSections][2]int64 {
	var out [numArenaSections][2]int64
	n := int64(h.n)
	num := int64(h.numNodes)
	if !h.delegate() {
		out[secLogRatio] = [2]int64{8, int64(h.rows) * n}
		out[secRow] = [2]int64{4, num}
	}
	out[secBackground] = [2]int64{8, n}
	if h.automaton() {
		out[secNodeTrans] = [2]int64{4, num}
		out[secParent] = [2]int64{4, num}
		out[secDenseTrans] = [2]int64{4, int64(h.denseRows) * n}
		out[secCsrStart] = [2]int64{4, int64(h.csrRows) + 1}
		out[secCsrDst] = [2]int64{4, int64(h.csrEdges)}
		out[secCsrSym] = [2]int64{2, int64(h.csrEdges)}
	}
	if h.descend() {
		out[secChildStart] = [2]int64{4, num + 1}
		out[secChildDst] = [2]int64{4, int64(h.childEdges)}
		out[secChildSym] = [2]int64{2, int64(h.childEdges)}
	}
	return out
}

// offsets computes every section's byte offset and the total arena
// length. Pure arithmetic over the header — no allocation.
func (h *arenaHeader) offsets() ([numArenaSections]int64, int64) {
	var offs [numArenaSections]int64
	off := int64(arenaHeaderLen)
	for i, s := range h.sections() {
		off = alignUp64(off, arenaAlign)
		offs[i] = off
		off += s[0] * s[1]
	}
	return offs, alignUp64(off, arenaAlign)
}

func alignUp64(v, a int64) int64 { return (v + a - 1) &^ (a - 1) }

// validate rejects implausible headers with section-free arithmetic,
// before offsets() or any allocation runs.
func (h *arenaHeader) validate() error {
	if h.flags&^uint32(arenaKnownFlags) != 0 {
		return fmt.Errorf("pst: arena header: unknown flags %#x", h.flags)
	}
	if h.descend() && h.delegate() {
		return fmt.Errorf("pst: arena header: descend and delegate flags are mutually exclusive")
	}
	if h.n == 0 || int64(h.n) > int64(seq.MaxAlphabetSize) {
		return fmt.Errorf("pst: arena header: alphabet size %d outside [1, %d]", h.n, seq.MaxAlphabetSize)
	}
	if int64(h.arenaLen) > maxArenaLen {
		return fmt.Errorf("pst: arena header: length %d exceeds the %d cap", h.arenaLen, maxArenaLen)
	}
	if h.delegate() {
		if h.numNodes != 0 || h.rows != 0 || h.denseRows != 0 || h.csrRows != 0 || h.csrEdges != 0 || h.childEdges != 0 {
			return fmt.Errorf("pst: arena header: delegate arena declares node sections")
		}
		return nil
	}
	if h.numNodes < 1 || int64(h.numNodes) > maxLoadNodes {
		return fmt.Errorf("pst: arena header: node count %d outside [1, %d]", h.numNodes, maxLoadNodes)
	}
	if h.rows < 1 || h.rows > h.numNodes {
		return fmt.Errorf("pst: arena header: %d prediction rows for %d nodes", h.rows, h.numNodes)
	}
	if h.maxDepth > 1<<30 {
		return fmt.Errorf("pst: arena header: max depth %d", h.maxDepth)
	}
	if h.descend() {
		if h.childEdges != h.numNodes-1 {
			return fmt.Errorf("pst: arena section childSym: %d edges for %d nodes (want %d)", h.childEdges, h.numNodes, h.numNodes-1)
		}
		if h.denseRows != 0 || h.csrRows != 0 || h.csrEdges != 0 {
			return fmt.Errorf("pst: arena header: descend arena declares transition sections")
		}
		return nil
	}
	if h.denseRows+h.csrRows != h.numNodes {
		return fmt.Errorf("pst: arena header: %d dense + %d CSR rows != %d nodes", h.denseRows, h.csrRows, h.numNodes)
	}
	if h.denseRows < 1 {
		return fmt.Errorf("pst: arena section denseTrans: the root row must be dense")
	}
	if h.csrEdges > h.numNodes-1 {
		return fmt.Errorf("pst: arena section csrSym: %d edges exceed %d nodes", h.csrEdges, h.numNodes-1)
	}
	if h.childEdges != 0 {
		return fmt.Errorf("pst: arena header: automaton arena declares child sections")
	}
	return nil
}

func (h *arenaHeader) encode(dst []byte) {
	copy(dst[0:4], arenaMagic)
	le := binary.LittleEndian
	le.PutUint32(dst[4:8], h.flags)
	le.PutUint32(dst[8:12], h.n)
	le.PutUint32(dst[12:16], h.numNodes)
	le.PutUint32(dst[16:20], h.rows)
	le.PutUint32(dst[20:24], h.denseRows)
	le.PutUint32(dst[24:28], h.csrRows)
	le.PutUint32(dst[28:32], h.csrEdges)
	le.PutUint32(dst[32:36], h.childEdges)
	le.PutUint32(dst[36:40], h.maxDepth)
	le.PutUint64(dst[40:48], h.arenaLen)
	le.PutUint32(dst[48:52], h.crc)
	clear(dst[52:arenaHeaderLen])
}

func decodeArenaHeader(b []byte) (arenaHeader, error) {
	var h arenaHeader
	if len(b) < arenaHeaderLen {
		return h, fmt.Errorf("pst: arena header: %d bytes, need %d", len(b), arenaHeaderLen)
	}
	if string(b[0:4]) != arenaMagic {
		return h, fmt.Errorf("pst: arena header: bad magic %q", b[0:4])
	}
	le := binary.LittleEndian
	h.flags = le.Uint32(b[4:8])
	h.n = le.Uint32(b[8:12])
	h.numNodes = le.Uint32(b[12:16])
	h.rows = le.Uint32(b[16:20])
	h.denseRows = le.Uint32(b[20:24])
	h.csrRows = le.Uint32(b[24:28])
	h.csrEdges = le.Uint32(b[28:32])
	h.childEdges = le.Uint32(b[32:36])
	h.maxDepth = le.Uint32(b[36:40])
	h.arenaLen = le.Uint64(b[40:48])
	h.crc = le.Uint32(b[48:52])
	return h, nil
}

// alignedBytes allocates a zeroed slab whose first byte sits on a
// 64-byte boundary, so absolute section offsets inside it carry the
// same alignment the mmap path gets from page-aligned mappings.
func alignedBytes(n int64) []byte {
	buf := make([]byte, n+arenaAlign-1)
	off := int64((arenaAlign - uintptr(unsafe.Pointer(&buf[0]))%arenaAlign) % arenaAlign)
	return buf[off : off+n : off+n]
}

// rawBytes reinterprets a typed slice as its backing bytes (host
// endianness — callers gate on hostLittleEndian).
func rawBytes[T any](src []T) []byte {
	if len(src) == 0 {
		return nil
	}
	var zero T
	return unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), len(src)*int(unsafe.Sizeof(zero)))
}

// The put* helpers encode a native slice into arena bytes as
// little-endian; on little-endian hosts they are a single copy.

func putU16s[T ~uint16](dst []byte, src []T) {
	if hostLittleEndian {
		copy(dst, rawBytes(src))
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint16(dst[2*i:], uint16(v))
	}
}

func putU32s[T ~uint32 | ~int32](dst []byte, src []T) {
	if hostLittleEndian {
		copy(dst, rawBytes(src))
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], uint32(v))
	}
}

func putF64s(dst []byte, src []float64) {
	if hostLittleEndian {
		copy(dst, rawBytes(src))
		return
	}
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// The view* helpers expose an arena section as a typed slice: an
// aliasing zero-copy view when arenaZeroCopy holds (little-endian host,
// 64-byte-aligned base), a decoded copy otherwise. They run on the
// serving path — SnapshotFromArena executes under a registry hot swap —
// so they carry the hotpath contract; only the big-endian decode
// fallback, one copy per section per load, is waived.

//cluseq:hotpath
func viewU16s[T ~uint16](b []byte, count int64) []T {
	if count == 0 {
		return nil
	}
	if arenaZeroCopy {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]T, count) //cluseq:allow hotpath: big-endian fallback decodes one copy per section load; the zero-copy branch is the served one
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint16(b[2*i:])) //cluseq:allow hotpath: big-endian fallback only; little-endian hosts never reach this loop
	}
	return out
}

//cluseq:hotpath
func viewU32s[T ~uint32 | ~int32](b []byte, count int64) []T {
	if count == 0 {
		return nil
	}
	if arenaZeroCopy {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]T, count) //cluseq:allow hotpath: big-endian fallback decodes one copy per section load; the zero-copy branch is the served one
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(b[4*i:])) //cluseq:allow hotpath: big-endian fallback only; little-endian hosts never reach this loop
	}
	return out
}

//cluseq:hotpath
func viewF64s(b []byte, count int64) []float64 {
	if count == 0 {
		return nil
	}
	if arenaZeroCopy {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]float64, count) //cluseq:allow hotpath: big-endian fallback decodes one copy per section load; the zero-copy branch is the served one
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])) //cluseq:allow hotpath: big-endian fallback only; little-endian hosts never reach this loop
	}
	return out
}

// buildArena packs the compiled snapshot data into one checksummed
// slab and returns it together with its decoded header.
func buildArena(h arenaHeader, fill func(offs [numArenaSections]int64, arena []byte)) ([]byte, arenaHeader) {
	offs, total := h.offsets()
	h.arenaLen = uint64(total)
	arena := alignedBytes(total)
	fill(offs, arena)
	h.crc = crc32.Checksum(arena[arenaHeaderLen:], castagnoli)
	h.encode(arena[:arenaHeaderLen])
	return arena, h
}

// attach wires the snapshot's typed slices onto the arena according to
// the (already validated) header. Zero-copy on little-endian hosts.
func (s *Snapshot) attach(arena []byte, h *arenaHeader) {
	offs, _ := h.offsets()
	secs := h.sections()
	sec := func(i int) []byte { return arena[offs[i]:] }
	s.arena = arena
	s.n = int(h.n)
	s.maxDepth = int(h.maxDepth)
	s.descend = h.descend()
	s.delegate = h.delegate()
	s.logRatio = viewF64s(sec(secLogRatio), secs[secLogRatio][1])
	s.background = viewF64s(sec(secBackground), secs[secBackground][1])
	s.nodeTrans = viewU32s[uint32](sec(secNodeTrans), secs[secNodeTrans][1])
	s.parent = viewU32s[int32](sec(secParent), secs[secParent][1])
	s.row = viewU32s[int32](sec(secRow), secs[secRow][1])
	s.denseTrans = viewU32s[int32](sec(secDenseTrans), secs[secDenseTrans][1])
	s.csrStart = viewU32s[uint32](sec(secCsrStart), secs[secCsrStart][1])
	s.csrDst = viewU32s[int32](sec(secCsrDst), secs[secCsrDst][1])
	s.csrSym = viewU16s[seq.Symbol](sec(secCsrSym), secs[secCsrSym][1])
	s.childStart = viewU32s[int32](sec(secChildStart), secs[secChildStart][1])
	s.childDst = viewU32s[int32](sec(secChildDst), secs[secChildDst][1])
	s.childSym = viewU16s[seq.Symbol](sec(secChildSym), secs[secChildSym][1])
}

// SnapshotFromArena reconstructs a snapshot from a serialized arena —
// the bytes CompileSnapshot produced and Arena returned, typically a
// section of an mmap'd bundle file. On little-endian hosts the returned
// snapshot's tables are zero-copy views into data, which therefore must
// stay immutable (and mapped) for the snapshot's lifetime; the loader
// performs no allocation proportional to the declared sizes beyond the
// validation arithmetic. A delegate-mode arena (compiled from a
// shrinkage tree) yields ErrArenaDelegates: such models cannot scan
// from tables and the caller must recompile from the serialized tree.
//
// owner, if non-nil, is retained for the snapshot's lifetime — pass
// whatever keeps data's bytes valid (the mmap'd file region), so the
// mapping cannot be unmapped while any reader still holds the
// snapshot.
//
// Every validation failure names the header field or section at fault,
// and the CRC-32C over the payload rejects silent corruption.
func SnapshotFromArena(data []byte, owner any) (*Snapshot, error) {
	h, err := decodeArenaHeader(data)
	if err != nil {
		return nil, err
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	if h.arenaLen != uint64(len(data)) {
		return nil, fmt.Errorf("pst: arena header: declared length %d, have %d bytes", h.arenaLen, len(data))
	}
	_, total := h.offsets()
	if total != int64(len(data)) {
		return nil, fmt.Errorf("pst: arena sections total %d bytes, header declares %d", total, h.arenaLen)
	}
	if got := crc32.Checksum(data[arenaHeaderLen:], castagnoli); got != h.crc {
		return nil, fmt.Errorf("pst: arena payload checksum %#x does not match header %#x", got, h.crc)
	}
	if h.delegate() {
		return nil, ErrArenaDelegates
	}
	if arenaZeroCopy && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		// Zero-copy views need natural alignment for the float64 tables.
		// mmap hands back page-aligned bases and bundle sections are
		// 64-byte aligned, so this only fires for hand-built slices;
		// realign with one copy rather than failing.
		data = append(alignedBytes(0), data...)
	}
	s := &Snapshot{backing: owner}
	s.attach(data, &h)
	return s, nil
}

// ErrArenaDelegates reports an arena whose snapshot delegates to the
// tree scan (shrinkage estimation): it carries no tables, so callers
// must deserialize the accompanying tree and compile from it instead.
var ErrArenaDelegates = fmt.Errorf("pst: arena snapshot delegates to the tree scan; recompile from the serialized tree")

// Arena returns the snapshot's backing slab — the exact bytes a bundle
// stores and SnapshotFromArena accepts. Callers must not mutate it.
func (s *Snapshot) Arena() []byte { return s.arena }

// ArenaBytes returns the snapshot's resident table footprint in bytes.
func (s *Snapshot) ArenaBytes() int { return len(s.arena) }
