package pst

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand/v2"
	"testing"

	"cluseq/internal/seq"
)

// buildArenaTree grows a deterministic tree plus probes for arena
// round-trip tests.
func buildArenaTree(alpha, inserts, seqLen int, prune bool) (*Tree, [][]seq.Symbol, []float64) {
	rng := rand.New(rand.NewPCG(71, 72))
	tree := MustNew(Config{AlphabetSize: alpha, MaxDepth: 5, Significance: 3, PMin: 0.2 / float64(alpha)})
	for i := 0; i < inserts; i++ {
		tree.Insert(randomSymbols(rng, seqLen, alpha))
	}
	if prune {
		tree.Prune(tree.NumNodes() / 2)
	}
	probes := make([][]seq.Symbol, 24)
	for i := range probes {
		probes[i] = randomSymbols(rng, 1+rng.IntN(80), alpha)
	}
	return tree, probes, uniformBg(alpha)
}

// reattach serializes a snapshot through its arena bytes and loads it
// back the way the bundle loader does — through a fresh copy, so any
// accidental dependence on the original allocation would surface.
func reattach(t *testing.T, snap *Snapshot) *Snapshot {
	t.Helper()
	raw := append([]byte(nil), snap.Arena()...)
	got, err := SnapshotFromArena(raw, nil)
	if err != nil {
		t.Fatalf("SnapshotFromArena: %v", err)
	}
	return got
}

// TestArenaRoundTrip pins the central zero-copy property: the arena
// bytes alone reconstruct a snapshot that answers bit-identically, in
// every transition-row mix and in descend mode.
func TestArenaRoundTrip(t *testing.T) {
	run := func(t *testing.T, prune bool) {
		tree, probes, bg := buildArenaTree(6, 3, 120, prune)
		snap := tree.CompileSnapshot(bg)
		if prune != snap.descend && tree.NumNodes() > 4 {
			// Pruning usually breaks slink closure; if this seed kept it
			// closed the automaton assertions below still hold.
			t.Logf("prune=%v descend=%v", prune, snap.descend)
		}
		loaded := reattach(t, snap)
		if !loaded.Standalone() {
			t.Fatal("arena-loaded snapshot must be standalone")
		}
		if loaded.Tree() != nil {
			t.Fatal("arena-loaded snapshot must have no tree")
		}
		for _, probe := range probes {
			if got, want := loaded.Similarity(probe), snap.Similarity(probe); got != want {
				t.Fatalf("arena round trip diverged: %+v != %+v (probe %v)", got, want, probe)
			}
		}
	}
	for _, mode := range []struct {
		name      string
		occupancy int
		allLimit  int
	}{
		{"hybrid", 2, 1 << 8},
		{"dense", 1 << 30, denseAllLimit},
		{"csr", 0, 0},
	} {
		t.Run(mode.name, func(t *testing.T) {
			oldOcc, oldAll := denseOccupancy, denseAllLimit
			denseOccupancy, denseAllLimit = mode.occupancy, mode.allLimit
			defer func() { denseOccupancy, denseAllLimit = oldOcc, oldAll }()
			t.Run("automaton", func(t *testing.T) { run(t, false) })
			t.Run("descend", func(t *testing.T) { run(t, true) })
		})
	}
}

// TestArenaDecodeFallback forces the big-endian decode-copy path: the
// arena bytes are identical (always little-endian on disk), only the
// view construction differs, and results must not.
func TestArenaDecodeFallback(t *testing.T) {
	tree, probes, bg := buildArenaTree(5, 2, 150, false)
	snap := tree.CompileSnapshot(bg)
	old := arenaZeroCopy
	arenaZeroCopy = false
	defer func() { arenaZeroCopy = old }()
	loaded := reattach(t, snap)
	for _, probe := range probes {
		if got, want := loaded.Similarity(probe), snap.Similarity(probe); got != want {
			t.Fatalf("decode fallback diverged: %+v != %+v", got, want)
		}
	}
}

// TestArenaDelegateRejected: a shrinkage-mode arena carries no tables,
// so standalone loading must fail with the sentinel error.
func TestArenaDelegateRejected(t *testing.T) {
	tree := MustNew(Config{AlphabetSize: 4, MaxDepth: 3, Significance: 2, Shrinkage: 4, PMin: 0.01})
	tree.Insert([]seq.Symbol{0, 1, 2, 3, 0, 1})
	snap := tree.CompileSnapshot(uniformBg(4))
	if _, err := SnapshotFromArena(append([]byte(nil), snap.Arena()...), nil); !errors.Is(err, ErrArenaDelegates) {
		t.Fatalf("want ErrArenaDelegates, got %v", err)
	}
}

// TestArenaCorruptionRejected drives truncated, bit-flipped, and
// header-mangled arenas through the loader: every one must fail before
// any table is trusted, with an error naming the culprit.
func TestArenaCorruptionRejected(t *testing.T) {
	tree, _, bg := buildArenaTree(5, 2, 150, false)
	good := tree.CompileSnapshot(bg).Arena()

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	le := binary.LittleEndian
	reseal := func(b []byte) []byte {
		// Recompute the payload CRC so the mutation under test — not the
		// checksum — is what the loader has to catch.
		le.PutUint32(b[48:52], crc32.Checksum(b[arenaHeaderLen:], castagnoli))
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", good[:arenaHeaderLen-1]},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"truncated payload", good[:len(good)-arenaAlign]},
		{"payload bit flip", mutate(func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b })},
		{"header crc mismatch", mutate(func(b []byte) []byte { b[49] ^= 0xFF; return b })},
		{"unknown flags", mutate(func(b []byte) []byte { le.PutUint32(b[4:8], 0xF0); return reseal(b) })},
		{"zero alphabet", mutate(func(b []byte) []byte { le.PutUint32(b[8:12], 0); return reseal(b) })},
		{"zero nodes", mutate(func(b []byte) []byte { le.PutUint32(b[12:16], 0); return reseal(b) })},
		{"rows exceed nodes", mutate(func(b []byte) []byte { le.PutUint32(b[16:20], 1<<30); return reseal(b) })},
		{"row split mismatch", mutate(func(b []byte) []byte { le.PutUint32(b[24:28], le.Uint32(b[24:28])+1); return reseal(b) })},
		{"edges exceed nodes", mutate(func(b []byte) []byte { le.PutUint32(b[28:32], 1<<29); return reseal(b) })},
		{"declared length mismatch", mutate(func(b []byte) []byte { le.PutUint64(b[40:48], uint64(len(b))+64); return reseal(b) })},
		{"absurd length", mutate(func(b []byte) []byte { le.PutUint64(b[40:48], 1<<60); return reseal(b) })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := SnapshotFromArena(tc.data, nil); err == nil {
				t.Fatal("corrupt arena must be rejected")
			} else {
				t.Logf("rejected: %v", err)
			}
		})
	}
	// Control: the unmutated bytes still load.
	if _, err := SnapshotFromArena(append([]byte(nil), good...), nil); err != nil {
		t.Fatalf("pristine arena must load: %v", err)
	}
}

// TestArenaMisalignedBaseRealigns: zero-copy views require a naturally
// aligned base; a deliberately offset slice must still load correctly
// (via the internal realign copy), never fault or skew floats.
func TestArenaMisalignedBaseRealigns(t *testing.T) {
	tree, probes, bg := buildArenaTree(4, 2, 100, false)
	snap := tree.CompileSnapshot(bg)
	buf := make([]byte, len(snap.Arena())+1)
	copy(buf[1:], snap.Arena())
	loaded, err := SnapshotFromArena(buf[1:], nil)
	if err != nil {
		t.Fatalf("misaligned base: %v", err)
	}
	for _, probe := range probes {
		if got, want := loaded.Similarity(probe), snap.Similarity(probe); got != want {
			t.Fatalf("misaligned-base load diverged: %+v != %+v", got, want)
		}
	}
}

// TestSnapshotScanAllocs pins the serving-path contract: a compiled
// scan performs zero allocations, for both compiled and arena-loaded
// snapshots.
func TestSnapshotScanAllocs(t *testing.T) {
	tree, probes, bg := buildArenaTree(50, 4, 200, false)
	snap := tree.CompileSnapshot(bg)
	loaded := reattach(t, snap)
	for name, s := range map[string]*Snapshot{"compiled": snap, "arena": loaded} {
		if got := testing.AllocsPerRun(50, func() {
			for _, p := range probes {
				s.Similarity(p)
			}
		}); got != 0 {
			t.Fatalf("%s scan allocated %.1f times per run, want 0", name, got)
		}
	}
}
