package pst

import (
	"math"

	"cluseq/internal/seq"
)

// Auxiliary links (§4.3: "With the help of some additional structure
// (e.g., auxiliary links), the computational complexity could be reduced
// to O(l)"). Each node carries
//
//   - slink: the node whose context is this node's context minus its most
//     recent symbol (path minus first edge), and
//   - ext[s]: the inverse (Weiner link) — the node whose context is this
//     node's context with s appended as the new most recent symbol.
//
// During the similarity scan, the deepest tree node matching the current
// context is then maintained in amortized O(1) per symbol: extend through
// ext[s] where possible, otherwise climb parents (each climb shortens the
// tracked context, and the context grows by at most one per symbol, so
// total climbing is O(l)).
//
// Links are maintained on insertion. Pruning and deserialization
// invalidate them (linksValid=false), in which case SimilarityFast falls
// back to the plain O(l·L) scan.

// attachLinks wires the auxiliary links of a freshly created child c of n
// reached via edge symbol s.
func (t *Tree) attachLinks(c, n *Node, s seq.Symbol) {
	if n == t.root {
		c.first = s
		c.slink = t.root
	} else {
		c.first = n.first
		c.slink = t.lookupChild(n.slink, s)
		if c.slink == nil {
			// Cannot happen for left-to-right insertions, but hand-wired
			// trees may create nodes out of order; degrade gracefully.
			t.linksValid = false
			return
		}
	}
	if c.slink.ext == nil {
		c.slink.ext = make(map[seq.Symbol]*Node, 1)
	}
	c.slink.ext[c.first] = c
}

// dropLinks unregisters a node that is about to be pruned.
func (t *Tree) dropLinks(n *Node) {
	t.linksValid = false // conservatively disable the fast scan
	if n.slink != nil && n.slink.ext != nil {
		delete(n.slink.ext, n.first)
	}
	for _, y := range n.ext {
		y.slink = nil
	}
	n.ext = nil
	n.slink = nil
}

// SimilarityFast computes the same result as Similarity using the
// auxiliary links. When the links are unavailable (pruned or deserialized
// trees) or the estimator is not the plain longest-significant-suffix one,
// it transparently falls back to Similarity.
//
//cluseq:hotpath
func (t *Tree) SimilarityFast(symbols []seq.Symbol, background []float64) Similarity {
	if !t.linksValid || t.cfg.Shrinkage > 0 {
		return t.Similarity(symbols, background)
	}
	if len(background) != t.cfg.AlphabetSize {
		// Keep the contract identical to Similarity.
		return t.Similarity(symbols, background)
	}
	if len(symbols) == 0 {
		return Similarity{LogSim: math.Inf(-1)}
	}
	logBg := t.logBackground(background)

	best := Similarity{LogSim: math.Inf(-1)}
	logY := math.Inf(-1)
	yStart := 0

	cur := t.root // deepest node matching the current context suffix
	for i, sym := range symbols {
		// Prediction node: deepest significant ancestor-or-self of cur.
		pn := cur
		for pn != t.root && !t.Significant(pn) {
			pn = pn.parent
		}
		p := t.adjust(t.prob(pn, sym))
		var logX float64
		if p <= 0 {
			logX = math.Inf(-1)
		} else {
			logX = math.Log(p) - logBg[sym] //cluseq:allow hotpath: one Log per symbol is inherent to the tree-shaped scan; the compiled snapshot folds it into a table
		}
		if logY+logX >= logX {
			logY += logX
		} else {
			logY = logX
			yStart = i
		}
		if logY > best.LogSim {
			best.LogSim = logY
			best.Start = yStart
			best.End = i + 1
		}

		// Advance the tracked context: sym becomes the most recent symbol.
		u := cur
		for {
			if x := u.ext[sym]; x != nil { //cluseq:allow hotpath: the Weiner-link step reads the ext map; the compiled snapshot replaces it with a transition table
				cur = x
				break
			}
			if u.parent == nil { // root
				if c := t.lookupChild(t.root, sym); c != nil {
					cur = c
				} else {
					cur = t.root
				}
				break
			}
			u = u.parent
		}
	}
	return best
}
