package pst

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
)

// TestSimilarityFastMatchesSlow is the defining property: the auxiliary-
// link scan must return exactly the plain scan's result on arbitrary
// trees and probes.
func TestSimilarityFastMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 60; trial++ {
		alpha := 2 + rng.IntN(6)
		tree := MustNew(Config{
			AlphabetSize: alpha,
			MaxDepth:     1 + rng.IntN(6),
			Significance: 1 + rng.IntN(6),
			PMin:         0.01,
		})
		for k := 0; k < 1+rng.IntN(4); k++ {
			tree.Insert(randomSymbols(rng, 20+rng.IntN(150), alpha))
		}
		bg := make([]float64, alpha)
		for i := range bg {
			bg[i] = 1 / float64(alpha)
		}
		for probe := 0; probe < 5; probe++ {
			syms := randomSymbols(rng, 1+rng.IntN(80), alpha)
			slow := tree.Similarity(syms, bg)
			fast := tree.SimilarityFast(syms, bg)
			if math.Abs(slow.LogSim-fast.LogSim) > 1e-12 ||
				slow.Start != fast.Start || slow.End != fast.End {
				t.Fatalf("trial %d: fast %+v != slow %+v (probe %v)", trial, fast, slow, syms)
			}
		}
	}
}

func TestSimilarityFastNoSmoothing(t *testing.T) {
	// With PMin zero, -Inf contributions must behave identically.
	rng := rand.New(rand.NewPCG(33, 34))
	tree := MustNew(Config{AlphabetSize: 3, MaxDepth: 4, Significance: 1})
	tree.Insert(randomSymbols(rng, 50, 2)) // symbol 2 never seen
	bg := []float64{0.4, 0.4, 0.2}
	probe := randomSymbols(rng, 30, 3)
	slow := tree.Similarity(probe, bg)
	fast := tree.SimilarityFast(probe, bg)
	if slow.LogSim != fast.LogSim || slow.Start != fast.Start || slow.End != fast.End {
		t.Fatalf("fast %+v != slow %+v", fast, slow)
	}
}

func TestSimilarityFastFallsBackAfterPruning(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	tree := MustNew(Config{AlphabetSize: 4, MaxDepth: 5, Significance: 2})
	tree.Insert(randomSymbols(rng, 400, 4))
	tree.Prune(tree.NumNodes() / 2)
	if tree.linksValid {
		t.Fatal("pruning must invalidate the auxiliary links")
	}
	bg := []float64{0.25, 0.25, 0.25, 0.25}
	probe := randomSymbols(rng, 60, 4)
	slow := tree.Similarity(probe, bg)
	fast := tree.SimilarityFast(probe, bg) // must silently fall back
	if slow.LogSim != fast.LogSim {
		t.Fatalf("fallback mismatch: %v vs %v", fast.LogSim, slow.LogSim)
	}
}

func TestSimilarityFastAfterLoad(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	tree := MustNew(Config{AlphabetSize: 5, MaxDepth: 4, Significance: 2, PMin: 0.01})
	for i := 0; i < 3; i++ {
		tree.Insert(randomSymbols(rng, 120, 5))
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.linksValid {
		t.Fatal("links must be rebuilt after Load of an unpruned tree")
	}
	bg := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	probe := randomSymbols(rng, 80, 5)
	a := loaded.SimilarityFast(probe, bg)
	b := tree.Similarity(probe, bg)
	if a.LogSim != b.LogSim {
		t.Fatalf("loaded fast scan %v != original %v", a.LogSim, b.LogSim)
	}
}

func TestSuffixLinkInvariant(t *testing.T) {
	// slink(c) must always be the node whose label is c's label minus its
	// most recent symbol (label[1:] in original order is... the label
	// with the *first* symbol of the reversed path dropped — i.e. the
	// context without its newest symbol: label[:len-1]? No: the newest
	// context symbol is the LAST of Label() (closest to the predicted
	// position). Verify structurally instead: path(slink) == path[1:]
	// where path is the root-to-node edge sequence.
	rng := rand.New(rand.NewPCG(39, 40))
	tree := MustNew(Config{AlphabetSize: 4, MaxDepth: 5, Significance: 1})
	tree.Insert(randomSymbols(rng, 300, 4))
	tree.Walk(func(n *Node) bool {
		if n.depth == 0 {
			return true
		}
		// Root-to-node path.
		path := make([]Symbolish, 0, n.depth)
		for cur := n; cur.parent != nil; cur = cur.parent {
			path = append([]Symbolish{Symbolish(cur.symbol)}, path...)
		}
		if n.depth == 1 {
			if n.slink != tree.root {
				t.Fatalf("depth-1 node slink != root")
			}
			return true
		}
		if n.slink == nil {
			t.Fatalf("missing slink at depth %d", n.depth)
		}
		// slink path must equal path[1:].
		sPath := make([]Symbolish, 0, n.depth-1)
		for cur := n.slink; cur.parent != nil; cur = cur.parent {
			sPath = append([]Symbolish{Symbolish(cur.symbol)}, sPath...)
		}
		if len(sPath) != len(path)-1 {
			t.Fatalf("slink depth %d, want %d", len(sPath), len(path)-1)
		}
		for i := range sPath {
			if sPath[i] != path[i+1] {
				t.Fatalf("slink path %v != %v[1:]", sPath, path)
			}
		}
		// ext must be the exact inverse.
		if got := n.slink.ext[n.first]; got != n {
			t.Fatalf("ext inverse broken at depth %d", n.depth)
		}
		return true
	})
}

// Symbolish keeps the invariant test readable without importing seq.
type Symbolish uint16
