package pst

import (
	"math"
	"testing"

	"cluseq/internal/seq"
)

// FuzzPSTInsertPredict drives a tree with arbitrary insert streams and
// checks the statistical invariants every estimator relies on:
//
//   - per-node next-symbol probabilities form a sub-distribution:
//     0 ≤ Σ_s next[s]/Count ≤ 1, and exactly 1 at the root (deeper
//     nodes can fall short of 1 only by their end-of-segment
//     occurrences, which have no successor symbol);
//   - Predict returns values in (0, 1] for arbitrary contexts once
//     PMin smoothing is on, and its per-context sum never exceeds 1;
//   - the auxiliary-link fast scan agrees with the plain similarity
//     scan on arbitrary probes;
//
// and, implicitly, that no insert stream — including ones that trip the
// memory cap and its pruning — panics.
func FuzzPSTInsertPredict(f *testing.F) {
	f.Add([]byte("abcabcabc"), []byte("ab"), uint8(4), uint8(3))
	f.Add([]byte{0, 1, 2, 0xFF, 3, 4, 5}, []byte{1, 2}, uint8(8), uint8(5))
	f.Add([]byte{}, []byte{0}, uint8(1), uint8(1))
	f.Add([]byte{0xFF, 0xFF, 7, 7, 7, 7, 7, 7, 7, 7}, []byte{7, 7, 7}, uint8(3), uint8(6))

	f.Fuzz(func(t *testing.T, stream, probe []byte, alphaByte, depthByte uint8) {
		n := int(alphaByte)%16 + 1
		cfg := Config{
			AlphabetSize: n,
			MaxDepth:     int(depthByte)%6 + 1,
			Significance: int(depthByte)%4 + 1,
			PMin:         0.1 / float64(n),
			// Small enough for fuzz streams to trip cap pruning.
			MaxBytes: 64 * (88 + 8*n + 48),
		}
		tree := MustNew(cfg)

		// 0xFF delimits segments, so one input exercises multiple
		// incremental inserts (the §4.4 update pattern).
		seg := make([]seq.Symbol, 0, len(stream))
		for _, b := range stream {
			if b == 0xFF {
				tree.Insert(seg)
				seg = seg[:0]
				continue
			}
			seg = append(seg, seq.Symbol(int(b)%n))
		}
		tree.Insert(seg)

		const eps = 1e-9
		tree.Walk(func(node *Node) bool {
			if node.Count < 0 {
				t.Fatalf("node %v: negative count %d", node.Label(), node.Count)
			}
			var sum int64
			for s := 0; s < n; s++ {
				nc := node.NextCount(seq.Symbol(s))
				if nc < 0 || nc > node.Count {
					t.Fatalf("node %v: next[%d] = %d outside [0, count=%d]", node.Label(), s, nc, node.Count)
				}
				sum += nc
			}
			if sum > node.Count {
				t.Fatalf("node %v: Σnext = %d exceeds count %d", node.Label(), sum, node.Count)
			}
			if node == tree.Root() && node.Count > 0 && sum != node.Count {
				t.Fatalf("root: Σnext = %d, want exactly count %d (the root counts only predicted positions)", sum, node.Count)
			}
			return true
		})

		ctx := make([]seq.Symbol, 0, len(probe))
		for _, b := range probe {
			ctx = append(ctx, seq.Symbol(int(b)%n))
		}
		var predSum float64
		for s := 0; s < n; s++ {
			p := tree.Predict(ctx, seq.Symbol(s))
			if !(p > 0 && p <= 1) || math.IsNaN(p) {
				t.Fatalf("Predict(%v, %d) = %v, want in (0, 1]", ctx, s, p)
			}
			predSum += p
		}
		if predSum > 1+eps {
			t.Fatalf("Σ_s Predict(%v, s) = %v exceeds 1", ctx, predSum)
		}

		if len(ctx) > 0 {
			bg := make([]float64, n)
			for i := range bg {
				bg[i] = 1 / float64(n)
			}
			slow := tree.Similarity(ctx, bg)
			fast := tree.SimilarityFast(ctx, bg)
			if math.Abs(slow.LogSim-fast.LogSim) > eps || slow.Start != fast.Start || slow.End != fast.End {
				t.Fatalf("SimilarityFast %+v disagrees with Similarity %+v", fast, slow)
			}
		}
	})
}
