package pst

import (
	"fmt"

	"cluseq/internal/seq"
)

// Merge adds every count of other into t: node counts, next-symbol
// counters, and total symbol bookkeeping. The result is statistically
// identical to a tree built from the union of both trees' insertions
// (modulo each tree's own MaxDepth truncation — both trees must share
// alphabet size and MaxDepth). Used by the merge-consolidation extension,
// which unions heavily overlapping clusters instead of dismissing one.
func (t *Tree) Merge(other *Tree) error {
	if other == nil {
		return nil
	}
	if other.cfg.AlphabetSize != t.cfg.AlphabetSize {
		return fmt.Errorf("pst: merge alphabet mismatch: %d vs %d", other.cfg.AlphabetSize, t.cfg.AlphabetSize)
	}
	if other.cfg.MaxDepth != t.cfg.MaxDepth {
		return fmt.Errorf("pst: merge depth mismatch: %d vs %d", other.cfg.MaxDepth, t.cfg.MaxDepth)
	}
	var rec func(dst, src *Node)
	rec = func(dst, src *Node) {
		dst.Count += src.Count
		for s, c := range src.next {
			dst.next[s] += c
		}
		for sym, child := range src.children {
			rec(t.ensureChild(dst, sym), child)
		}
	}
	rec(t.root, other.root)
	t.insertions += other.insertions
	t.pruned += other.pruned
	t.version++
	if t.maxNodes > 0 && t.numNodes > t.maxNodes {
		t.pruneTo(t.maxNodes * 9 / 10)
	}
	return nil
}

// InsertCounts adds one explicit context observation: the context occurred
// once, followed by next (pass alphabet-size as next for an end-of-data
// occurrence with no successor). Exposed for tests and for callers
// maintaining trees from pre-aggregated statistics.
func (t *Tree) InsertCounts(context []seq.Symbol, next seq.Symbol, times int64) error {
	if times < 0 {
		return fmt.Errorf("pst: negative count %d", times)
	}
	if len(context) > t.cfg.MaxDepth {
		context = context[len(context)-t.cfg.MaxDepth:]
	}
	hasNext := int(next) < t.cfg.AlphabetSize
	n := t.root
	if hasNext {
		// The root counts predicted positions only (its count is the total
		// symbol count, §3); end-of-data occurrences touch deeper contexts
		// but not the root, matching Insert's tail pass.
		t.bump(n, next, times, true)
	}
	for d := 1; d <= len(context); d++ {
		n = t.ensureChild(n, context[len(context)-d])
		t.bump(n, next, times, hasNext)
	}
	if hasNext {
		t.insertions += times
	}
	t.version++
	if t.maxNodes > 0 && t.numNodes > t.maxNodes {
		t.pruneTo(t.maxNodes * 9 / 10)
	}
	return nil
}

func (t *Tree) bump(n *Node, next seq.Symbol, times int64, hasNext bool) {
	n.Count += times
	if hasNext {
		n.next[next] += times
	}
}
