package pst

import (
	"math/rand/v2"
	"testing"

	"cluseq/internal/seq"
)

// TestMergeEqualsUnionBuild is the defining property: merging two trees
// must give exactly the tree built from both insertion streams.
func TestMergeEqualsUnionBuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	cfg := Config{AlphabetSize: 4, MaxDepth: 5, Significance: 2, PMin: 0.01}
	for trial := 0; trial < 20; trial++ {
		a := randomSymbols(rng, 50+rng.IntN(100), 4)
		b := randomSymbols(rng, 50+rng.IntN(100), 4)

		t1 := MustNew(cfg)
		t1.Insert(a)
		t2 := MustNew(cfg)
		t2.Insert(b)
		if err := t1.Merge(t2); err != nil {
			t.Fatal(err)
		}

		union := MustNew(cfg)
		union.Insert(a)
		union.Insert(b)

		if t1.NumNodes() != union.NumNodes() {
			t.Fatalf("merged nodes %d, union %d", t1.NumNodes(), union.NumNodes())
		}
		if t1.TotalSymbols() != union.TotalSymbols() {
			t.Fatalf("merged symbols %d, union %d", t1.TotalSymbols(), union.TotalSymbols())
		}
		union.Walk(func(n *Node) bool {
			m := t1.Lookup(n.Label())
			if m == nil || m.Count != n.Count {
				t.Fatalf("context %v: merged count mismatch", n.Label())
			}
			for s := seq.Symbol(0); s < 4; s++ {
				if m.NextCount(s) != n.NextCount(s) {
					t.Fatalf("context %v next %d mismatch", n.Label(), s)
				}
			}
			return true
		})

		// Predictions identical on a probe.
		bg := []float64{0.25, 0.25, 0.25, 0.25}
		probe := randomSymbols(rng, 40, 4)
		if x, y := t1.Similarity(probe, bg), union.Similarity(probe, bg); x.LogSim != y.LogSim {
			t.Fatalf("merged similarity %v != union %v", x.LogSim, y.LogSim)
		}
	}
}

func TestMergeValidation(t *testing.T) {
	t1 := MustNew(Config{AlphabetSize: 3, MaxDepth: 4, Significance: 1})
	if err := t1.Merge(nil); err != nil {
		t.Fatalf("nil merge should be a no-op: %v", err)
	}
	t2 := MustNew(Config{AlphabetSize: 4, MaxDepth: 4, Significance: 1})
	if err := t1.Merge(t2); err == nil {
		t.Fatal("alphabet mismatch should fail")
	}
	t3 := MustNew(Config{AlphabetSize: 3, MaxDepth: 5, Significance: 1})
	if err := t1.Merge(t3); err == nil {
		t.Fatal("depth mismatch should fail")
	}
}

func TestMergeRespectsMemoryCap(t *testing.T) {
	cfg := Config{AlphabetSize: 4, MaxDepth: 6, Significance: 1, MaxBytes: 30_000}
	rng := rand.New(rand.NewPCG(53, 54))
	t1 := MustNew(cfg)
	t1.Insert(randomSymbols(rng, 300, 4))
	t2 := MustNew(cfg)
	t2.Insert(randomSymbols(rng, 300, 4))
	if err := t1.Merge(t2); err != nil {
		t.Fatal(err)
	}
	if t1.EstimatedBytes() > cfg.MaxBytes {
		t.Fatalf("merged tree %d bytes exceeds cap %d", t1.EstimatedBytes(), cfg.MaxBytes)
	}
}

func TestInsertCountsMatchesInsert(t *testing.T) {
	// Feeding every (context, next) observation of a sequence through
	// InsertCounts must reproduce Insert exactly.
	rng := rand.New(rand.NewPCG(55, 56))
	cfg := Config{AlphabetSize: 3, MaxDepth: 4, Significance: 1}
	syms := randomSymbols(rng, 80, 3)

	direct := MustNew(cfg)
	direct.Insert(syms)

	manual := MustNew(cfg)
	for i := 0; i < len(syms); i++ {
		lo := i - 4
		if lo < 0 {
			lo = 0
		}
		if err := manual.InsertCounts(syms[lo:i], syms[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	// Tail occurrences (no successor): one call with the longest tail
	// context covers every suffix depth along the walk. next = alphabet
	// size acts as the no-successor sentinel.
	if err := manual.InsertCounts(syms[len(syms)-4:], seq.Symbol(3), 1); err != nil {
		t.Fatal(err)
	}

	if direct.NumNodes() != manual.NumNodes() {
		t.Fatalf("nodes %d vs %d", direct.NumNodes(), manual.NumNodes())
	}
	direct.Walk(func(n *Node) bool {
		m := manual.Lookup(n.Label())
		if m == nil || m.Count != n.Count {
			t.Fatalf("context %v count mismatch", n.Label())
		}
		for s := seq.Symbol(0); s < 3; s++ {
			if m.NextCount(s) != n.NextCount(s) {
				t.Fatalf("context %v next mismatch", n.Label())
			}
		}
		return true
	})
	if direct.TotalSymbols() != manual.TotalSymbols() {
		t.Fatalf("symbols %d vs %d", direct.TotalSymbols(), manual.TotalSymbols())
	}
}

func TestInsertCountsValidation(t *testing.T) {
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 2, Significance: 1})
	if err := tr.InsertCounts(nil, 0, -1); err == nil {
		t.Fatal("negative count should fail")
	}
	// Long contexts are truncated to MaxDepth, not rejected.
	if err := tr.InsertCounts([]seq.Symbol{0, 1, 0, 1, 0}, 1, 2); err != nil {
		t.Fatal(err)
	}
	n := tr.Lookup([]seq.Symbol{1, 0})
	if n == nil || n.Count != 2 {
		t.Fatalf("truncated context not recorded: %+v", n)
	}
}
