package pst

import (
	"container/heap"
)

// Pruning (paper §5.1). Eviction proceeds bottom-up over current leaves —
// evicting a leaf may expose its parent as the next candidate — driven by a
// min-heap whose ordering encodes the chosen strategy:
//
//   - PruneMinCount: smallest count first. Because a context's occurrences
//     are a subset of its suffix's, counts never increase with depth, so
//     the globally smallest-count nodes are always reachable as leaves and
//     the bottom-up order realizes the strategy exactly.
//   - PruneLongestLabel: deepest node first; likewise exact bottom-up.
//   - PruneExpectedVector: smallest variational distance between the
//     node's probability vector and its parent's, so the parent (which
//     substitutes in later estimations) distorts similarity the least.
//   - PruneAuto: insignificant leaves first by (count, then depth), then
//     significant leaves by expected-vector distance — the order §5.1
//     presents the strategies in.

type pruneItem struct {
	n *Node
	// key0 orders across tiers (insignificant before significant under
	// PruneAuto); key1 and key2 order within a tier.
	key0, key1, key2 float64
}

type pruneHeap []pruneItem

func (h pruneHeap) Len() int { return len(h) }
func (h pruneHeap) Less(i, j int) bool {
	if h[i].key0 != h[j].key0 {
		return h[i].key0 < h[j].key0
	}
	if h[i].key1 != h[j].key1 {
		return h[i].key1 < h[j].key1
	}
	if h[i].key2 != h[j].key2 {
		return h[i].key2 < h[j].key2
	}
	// Total-order tie-break on the node's label path. Key ties are common
	// (symmetric counts, equal depths), and without a deterministic final
	// comparison the eviction choice among tied leaves depends on heap
	// insertion order — i.e. on map iteration history — so a capped tree's
	// surviving node set, and every similarity scored against it, would
	// vary run to run.
	return pathCompare(h[i].n, h[j].n) < 0
}

// pathCompare orders nodes by (depth, label path read root-to-leaf):
// shallower first, then lexicographic on edge symbols. It returns 0 only
// for the identical node, so it is a total order over any one tree.
// Recursion is bounded by the tree's depth cap.
func pathCompare(a, b *Node) int {
	if a == b {
		return 0
	}
	if a.depth != b.depth {
		return a.depth - b.depth
	}
	if c := pathCompare(a.parent, b.parent); c != 0 {
		return c
	}
	return int(a.symbol) - int(b.symbol)
}
func (h pruneHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pruneHeap) Push(x any)   { *h = append(*h, x.(pruneItem)) }
func (h *pruneHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func (t *Tree) pruneKey(n *Node) pruneItem {
	it := pruneItem{n: n}
	switch t.cfg.Prune {
	case PruneMinCount:
		it.key1 = float64(n.Count)
		it.key2 = -float64(n.depth)
	case PruneLongestLabel:
		it.key1 = -float64(n.depth)
		it.key2 = float64(n.Count)
	case PruneExpectedVector:
		it.key1 = variationalDistance(n, n.parent)
		it.key2 = -float64(n.depth)
	default: // PruneAuto
		if !t.Significant(n) {
			it.key0 = 0
			it.key1 = float64(n.Count)
			it.key2 = -float64(n.depth)
		} else {
			it.key0 = 1
			it.key1 = variationalDistance(n, n.parent)
			it.key2 = -float64(n.depth)
		}
	}
	return it
}

// pruneTo evicts leaves until at most target nodes remain. The root is
// never evicted.
func (t *Tree) pruneTo(target int) {
	if target < 1 {
		target = 1
	}
	t.version++
	t.pruneEvents++
	h := &pruneHeap{}
	t.Walk(func(n *Node) bool {
		if n != t.root && len(n.children) == 0 {
			*h = append(*h, t.pruneKey(n))
		}
		return true
	})
	heap.Init(h)
	for t.numNodes > target && h.Len() > 0 {
		it := heap.Pop(h).(pruneItem)
		n := it.n
		parent := n.parent
		t.dropLinks(n)
		delete(parent.children, n.symbol)
		n.parent = nil
		t.numNodes--
		t.pruned++
		if parent != t.root && len(parent.children) == 0 {
			heap.Push(h, t.pruneKey(parent))
		}
	}
}

// Prune manually shrinks the tree to at most target nodes using the
// configured strategy. It is exposed for the Figure 4 experiments, which
// sweep the PST memory budget explicitly.
func (t *Tree) Prune(target int) {
	if target < t.numNodes {
		t.pruneTo(target)
	}
}
