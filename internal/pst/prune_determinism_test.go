package pst

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"

	"cluseq/internal/seq"
)

// treeSignature serializes the tree's node set in Walk order. Because Walk
// promises sorted pre-order, two trees with the same content produce the
// same signature regardless of map iteration history.
func treeSignature(tr *Tree) string {
	var b strings.Builder
	tr.Walk(func(n *Node) bool {
		fmt.Fprintf(&b, "%v:%d;", n.Label(), n.Count)
		return true
	})
	return b.String()
}

// TestPruneDeterministic rebuilds the same tie-heavy tree from scratch many
// times and prunes it to half size. Each rebuild allocates fresh children
// maps, so their iteration order varies run to run; the surviving node set
// must not. Before Walk visited siblings in sorted order and pruneHeap.Less
// became a total order, eviction among key-tied leaves followed map
// iteration history and this test flaked across trials.
func TestPruneDeterministic(t *testing.T) {
	for _, strategy := range []PruneStrategy{PruneAuto, PruneMinCount, PruneLongestLabel, PruneExpectedVector} {
		t.Run(strategy.String(), func(t *testing.T) {
			build := func() *Tree {
				tr := MustNew(Config{AlphabetSize: 4, MaxDepth: 5, Significance: 3, Prune: strategy})
				// Identical inserts every trial: a fixed-seed random stream
				// over a small alphabet yields masses of count-1 leaves at
				// equal depth — exactly the key ties the heap must break
				// deterministically.
				rng := rand.New(rand.NewPCG(7, 9))
				for i := 0; i < 10; i++ {
					tr.Insert(randomSymbols(rng, 400, 4))
				}
				return tr
			}
			var want string
			for trial := 0; trial < 20; trial++ {
				tr := build()
				tr.Prune(tr.NumNodes() / 2)
				got := treeSignature(tr)
				if trial == 0 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("trial %d pruned to a different node set than trial 0", trial)
				}
			}
		})
	}
}

// TestWalkSortedOrder pins Walk's ordering contract: depth-first pre-order
// with siblings ascending by edge symbol.
func TestWalkSortedOrder(t *testing.T) {
	tr := MustNew(Config{AlphabetSize: 4, MaxDepth: 4, Significance: 1})
	rng := rand.New(rand.NewPCG(3, 5))
	tr.Insert(randomSymbols(rng, 300, 4))

	var prevPath []seq.Symbol // root-to-node symbol path of the previous visit
	first := true
	tr.Walk(func(n *Node) bool {
		// Reconstruct the root-to-node path (Label is oldest-first already
		// reversed; rebuild explicitly from parent links to be contract-free).
		path := make([]seq.Symbol, n.Depth())
		for cur := n; cur.parent != nil; cur = cur.parent {
			path[cur.depth-1] = cur.symbol
		}
		if !first && !preOrderLess(prevPath, path) {
			t.Fatalf("Walk visited %v after %v; want sorted pre-order", path, prevPath)
		}
		prevPath, first = path, false
		return true
	})
}

// preOrderLess reports whether path a precedes path b in sorted depth-first
// pre-order: a strict prefix precedes its extensions, and otherwise the
// first differing symbol decides.
func preOrderLess(a, b []seq.Symbol) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
