package pst

import (
	"math"
	"math/rand/v2"
	"testing"

	"cluseq/internal/seq"
)

func randomSymbols(rng *rand.Rand, n, alpha int) []seq.Symbol {
	out := make([]seq.Symbol, n)
	for i := range out {
		out[i] = seq.Symbol(rng.IntN(alpha))
	}
	return out
}

func TestMemoryCapEnforced(t *testing.T) {
	cfg := Config{AlphabetSize: 4, MaxDepth: 8, Significance: 2, MaxBytes: 40_000}
	tr := MustNew(cfg)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 30; i++ {
		tr.Insert(randomSymbols(rng, 500, 4))
	}
	if tr.EstimatedBytes() > cfg.MaxBytes {
		t.Fatalf("EstimatedBytes = %d exceeds cap %d", tr.EstimatedBytes(), cfg.MaxBytes)
	}
	if tr.PrunedNodes() == 0 {
		t.Fatal("expected pruning to have occurred")
	}
	// The tree must remain structurally sound: every child's parent link
	// is intact and counts stay monotone.
	tr.Walk(func(n *Node) bool {
		for sym, c := range n.children {
			if c.parent != n || c.symbol != sym {
				t.Fatal("broken parent/child linkage after pruning")
			}
			if c.Count > n.Count {
				t.Fatal("count monotonicity violated after pruning")
			}
		}
		return true
	})
}

func TestPruneNeverRemovesRoot(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 4, Significance: 1})
	syms, _ := a.Encode("abbaabba")
	tr.Insert(syms)
	tr.Prune(1)
	if tr.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", tr.NumNodes())
	}
	if tr.Root() == nil || tr.Root().Count != 8 {
		t.Fatal("root must survive pruning with its count intact")
	}
	// Prediction still works, falling back to the root distribution.
	p := tr.Predict(syms[:3], 0)
	if p != 0.5 {
		t.Fatalf("post-prune P(a|·) = %v, want root value 0.5", p)
	}
}

func TestPruneMinCountKeepsHighCountNodes(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 3, Significance: 1, Prune: PruneMinCount})
	// "a" dominates; contexts containing b are rare.
	syms, _ := a.Encode("aaaaaaaaaaaaaaaaaaaabaaaaaaaaaaaaaaaaaaaa")
	tr.Insert(syms)
	before := tr.NumNodes()
	tr.Prune(5)
	if tr.NumNodes() > 5 || tr.NumNodes() >= before {
		t.Fatalf("NumNodes = %d (before %d), want ≤ 5", tr.NumNodes(), before)
	}
	// The all-a spine has the highest counts and must survive.
	n := tr.Lookup([]seq.Symbol{0})
	if n == nil {
		t.Fatal("highest-count context \"a\" was pruned before rarer ones")
	}
}

func TestPruneLongestLabelKeepsShallowNodes(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 6, Significance: 1, Prune: PruneLongestLabel})
	syms, _ := a.Encode("abababababababab")
	tr.Insert(syms)
	tr.Prune(3) // root + the two depth-1 contexts
	maxDepth := 0
	tr.Walk(func(n *Node) bool {
		if n.Depth() > maxDepth {
			maxDepth = n.Depth()
		}
		return true
	})
	if maxDepth > 1 {
		t.Fatalf("after longest-label pruning to 3 nodes, max depth = %d, want 1", maxDepth)
	}
}

func TestPruneExpectedVectorKeepsSurprisingNodes(t *testing.T) {
	// Construct a tree where context "a" has a child "aa" whose
	// distribution matches it (expected) and a child "ba" that differs
	// sharply. Expected-vector pruning must evict "aa" first.
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 2, Significance: 1, Prune: PruneExpectedVector})
	root := tr.Root()
	root.Count = 100
	root.next[0], root.next[1] = 50, 50
	na := tr.ensureChild(root, 0)
	na.Count, na.next[0], na.next[1] = 60, 30, 30
	naa := tr.ensureChild(na, 0) // context "aa": same 50/50 split as "a"
	naa.Count, naa.next[0], naa.next[1] = 30, 15, 15
	nba := tr.ensureChild(na, 1) // context "ba": extreme split
	nba.Count, nba.next[0], nba.next[1] = 30, 29, 1

	tr.Prune(3)
	if tr.Lookup([]seq.Symbol{0, 0}) != nil {
		t.Fatal("expected-vector pruning should evict the redundant context aa")
	}
	if tr.Lookup([]seq.Symbol{1, 0}) == nil {
		t.Fatal("the surprising context ba must survive")
	}
}

func TestPruneAutoEvictsInsignificantFirst(t *testing.T) {
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 2, Significance: 20, Prune: PruneAuto})
	root := tr.Root()
	root.Count = 100
	root.next[0], root.next[1] = 50, 50
	big := tr.ensureChild(root, 0) // significant leaf
	big.Count, big.next[0] = 50, 25
	small := tr.ensureChild(root, 1) // insignificant leaf
	small.Count, small.next[0] = 5, 2

	tr.Prune(2)
	if tr.Lookup([]seq.Symbol{1}) != nil {
		t.Fatal("auto pruning must evict the insignificant node first")
	}
	if tr.Lookup([]seq.Symbol{0}) == nil {
		t.Fatal("the significant node must survive")
	}
}

func TestPruneIsNoOpWhenUnderTarget(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 2, Significance: 1})
	syms, _ := a.Encode("ab")
	tr.Insert(syms)
	n := tr.NumNodes()
	tr.Prune(1000)
	if tr.NumNodes() != n {
		t.Fatal("Prune above current size must not change the tree")
	}
}

func TestPruningPreservesSimilarityQuality(t *testing.T) {
	// §5.1 claims little accuracy degradation from pruning. Verify the
	// log-similarity of a matching probe changes only moderately when the
	// tree is pruned to a quarter of its size under the auto strategy.
	rng := rand.New(rand.NewPCG(11, 13))
	tr := MustNew(Config{AlphabetSize: 3, MaxDepth: 6, Significance: 3, PMin: 0.001, Prune: PruneAuto})
	// Structured source: strong short-memory pattern 0, 1, 2, 0, …
	train := make([]seq.Symbol, 3000)
	for i := range train {
		if rng.Float64() < 0.9 {
			train[i] = seq.Symbol(i % 3)
		} else {
			train[i] = seq.Symbol(rng.IntN(3))
		}
	}
	tr.Insert(train)
	probe := make([]seq.Symbol, 120)
	for i := range probe {
		probe[i] = seq.Symbol(i % 3)
	}
	bg := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	before := tr.Similarity(probe, bg).LogSim
	tr.Prune(tr.NumNodes() / 4)
	after := tr.Similarity(probe, bg).LogSim
	if math.IsInf(after, -1) {
		t.Fatal("similarity collapsed to zero after pruning")
	}
	if after < before*0.5 || after > before*1.5 {
		t.Fatalf("similarity moved too much after pruning: before %v, after %v", before, after)
	}
	if after <= 0 {
		t.Fatalf("matching probe should still score above background after pruning: %v", after)
	}
}
