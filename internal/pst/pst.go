// Package pst implements the probabilistic suffix tree (PST) of paper §3:
// a suffix tree built over reversed sequences in which every node carries
// an occurrence count and a next-symbol conditional probability vector.
//
// A node at depth d, reached from the root along symbols c1, c2, …, cd,
// represents the context (preceding segment) cd … c2 c1 in original
// sequence order; the path spells the context reversed, so locating the
// longest significant suffix of a context is a single root-down walk
// (paper §3). The node stores
//
//   - Count: the number of occurrences of its context in the inserted data,
//   - next[s]: the number of occurrences of the context followed by s,
//
// giving the empirical conditional probability P(s | context) =
// next[s]/Count exactly as §4.4 prescribes (the ratio of the occurrence
// frequencies of context·s and context).
//
// The tree enforces a memory budget with the three pruning strategies of
// §5.1 and supports the smoothed ("adjusted") probabilities of §5.2.
package pst

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"cluseq/internal/seq"
)

// DefaultMaxDepth bounds context length (the short-memory parameter L)
// when a Config leaves MaxDepth zero.
const DefaultMaxDepth = 10

// DefaultSignificance is the paper's rule-of-thumb significance threshold
// c: a context must occur at least this often for its probability vector
// to be trusted (§2).
const DefaultSignificance = 30

// PruneStrategy selects which nodes are evicted first when the tree
// exceeds its memory budget (§5.1).
type PruneStrategy int

const (
	// PruneAuto applies strategy 1 (smallest count) with strategy 2
	// (longest label) as tie-break while insignificant nodes remain, then
	// switches to strategy 3 (most expected probability vector), matching
	// the order the paper presents them in.
	PruneAuto PruneStrategy = iota
	// PruneMinCount evicts the node with the smallest count first.
	PruneMinCount
	// PruneLongestLabel evicts the node with the longest label first.
	PruneLongestLabel
	// PruneExpectedVector evicts the node whose probability vector is
	// closest (in variational distance) to its parent's, so the parent
	// substitutes for it with the least estimation error.
	PruneExpectedVector
)

// String names the strategy the way the observability layer labels
// prune metrics (DESIGN.md §10).
func (p PruneStrategy) String() string {
	switch p {
	case PruneMinCount:
		return "min_count"
	case PruneLongestLabel:
		return "longest_label"
	case PruneExpectedVector:
		return "expected_vector"
	default:
		return "auto"
	}
}

// Config parameterizes a Tree.
type Config struct {
	// AlphabetSize is the number of distinct symbols n. Required.
	AlphabetSize int
	// MaxDepth is the short-memory bound L on context length.
	// Defaults to DefaultMaxDepth.
	MaxDepth int
	// Significance is the significance threshold c. Defaults to
	// DefaultSignificance.
	Significance int
	// MaxBytes caps the tree's (estimated) memory footprint; zero means
	// unlimited. When the cap is exceeded after an insertion the tree
	// prunes itself back to 90% of the cap.
	MaxBytes int
	// Prune selects the eviction strategy used when MaxBytes is exceeded.
	Prune PruneStrategy
	// PMin, when positive, enables the adjusted probability estimation of
	// §5.2: every returned probability becomes
	// (1 − n·PMin)·P + PMin, so no symbol is ever impossible.
	// Must satisfy PMin < 1/n.
	PMin float64
	// AdaptiveSignificance scales the effective significance threshold
	// with the amount of data inserted: max(1, min(Significance,
	// totalSymbols/(8·n))). A tree holding a single seed sequence then
	// trusts (memorizes) every context it has — which is what lets a
	// freshly seeded cluster attract sequences sharing local segments
	// with its seed — while a grown tree converges to the configured c
	// and its statistical guarantees. The paper's fixed threshold is the
	// behaviour with this flag off.
	AdaptiveSignificance bool
	// Shrinkage, when positive, replaces the longest-significant-suffix
	// cutoff in probability estimation with Dirichlet-style shrinkage
	// toward the parent context: walking the context path from the root,
	// B_d(s) = (nextCount_d(s) + κ·B_{d−1}(s)) / (count_d + κ).
	// A context observed once nudges the estimate slightly toward its
	// continuation (so a freshly seeded cluster can recognize sequences
	// sharing local segments with its seed), while a context observed
	// hundreds of times dominates its parent (the statistical regime the
	// significance threshold c was designed to protect). κ ≈ 4–16 works
	// well; zero selects the paper's hard-cutoff estimation.
	Shrinkage float64
}

func (c Config) withDefaults() (Config, error) {
	if c.AlphabetSize <= 0 {
		return c, fmt.Errorf("pst: AlphabetSize must be positive, got %d", c.AlphabetSize)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.MaxDepth < 1 {
		return c, fmt.Errorf("pst: MaxDepth must be at least 1, got %d", c.MaxDepth)
	}
	if c.Significance == 0 {
		c.Significance = DefaultSignificance
	}
	if c.Significance < 1 {
		return c, fmt.Errorf("pst: Significance must be at least 1, got %d", c.Significance)
	}
	if c.PMin < 0 || c.PMin*float64(c.AlphabetSize) >= 1 {
		return c, fmt.Errorf("pst: PMin must lie in [0, 1/alphabetSize), got %g", c.PMin)
	}
	return c, nil
}

// Node is one PST node. Exported fields are read-only for callers.
type Node struct {
	parent   *Node
	children map[seq.Symbol]*Node
	symbol   seq.Symbol // edge symbol from parent (one more context symbol back in time)
	depth    int

	// Auxiliary links for the O(l) similarity scan (see fastscan.go).
	slink *Node                // context minus its most recent symbol
	ext   map[seq.Symbol]*Node // inverse of slink, per prepended symbol
	first seq.Symbol           // the context's most recent symbol (root edge)

	// Count is the number of occurrences of this node's context.
	Count int64
	// next[s] counts occurrences of the context immediately followed by s.
	next []int64
}

// Depth returns the node's context length.
func (n *Node) Depth() int { return n.depth }

// Label reconstructs the node's context in original (unreversed) symbol
// order. The root's label is empty.
func (n *Node) Label() []seq.Symbol {
	out := make([]seq.Symbol, n.depth)
	for cur, i := n, 0; cur.parent != nil; cur, i = cur.parent, i+1 {
		out[i] = cur.symbol
	}
	return out
}

// NextCount returns the occurrence count of context·s.
func (n *Node) NextCount(s seq.Symbol) int64 { return n.next[s] }

// Tree is a probabilistic suffix tree.
//
// # Concurrency
//
// A Tree is not safe for concurrent mutation. The read-only methods —
// Similarity, SimilarityFast, Predict, PredictionNode, Lookup, Walk,
// Stats, Version, and friends — may be called from any number of
// goroutines simultaneously, provided no mutating method (Insert,
// InsertCounts, Merge, Prune) runs concurrently with them. This
// read-only contract is what the clustering engine's parallel scoring
// phase relies on: cluster trees are frozen while workers score
// sequences against them, and all tree updates happen in a serial apply
// phase. (The background-log memoization inside the similarity scans is
// an atomic immutable publish — lock-free for readers — and does not
// break the contract.)
//
// Version exposes a monotonic mutation counter so callers can detect,
// cheaply and exactly, whether a tree changed between two observations —
// the key the engine's similarity cache is stamped with.
type Tree struct {
	cfg      Config
	root     *Node
	numNodes int

	// version counts mutations; see Version. It starts at 1 so that a
	// zero-valued cache stamp can never match a live tree.
	version uint64

	nodeBytes int // estimated bytes per node, for the memory budget
	maxNodes  int // 0 = unlimited

	insertions  int64 // total symbols inserted, for diagnostics
	pruned      int64 // nodes evicted so far
	pruneEvents int64 // pruneTo passes run so far (§5.1 cap firings)

	// linksValid reports whether the auxiliary links of fastscan.go are
	// complete; pruning and out-of-order construction clear it.
	linksValid bool

	// Cached ln(background) for the similarity scans, keyed by the
	// background slice identity and published atomically so concurrent
	// scoring workers never serialize on it (see logBackground).
	logBg atomic.Pointer[logBgMemo]
}

// New returns an empty tree for the given configuration.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:        cfg,
		root:       &Node{next: make([]int64, cfg.AlphabetSize)},
		version:    1,
		linksValid: true,
	}
	t.numNodes = 1
	// Estimated footprint of one node: struct header and bookkeeping
	// (~88 bytes), the next-count vector, and amortized child-map space.
	t.nodeBytes = 88 + 8*cfg.AlphabetSize + 48
	if cfg.MaxBytes > 0 {
		t.maxNodes = cfg.MaxBytes / t.nodeBytes
		if t.maxNodes < 4 {
			return nil, fmt.Errorf("pst: MaxBytes=%d holds fewer than 4 nodes (node ≈ %d bytes)", cfg.MaxBytes, t.nodeBytes)
		}
	}
	return t, nil
}

// MustNew is New that panics on error, for tests and fixed configurations.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the tree's effective configuration (defaults applied).
func (t *Tree) Config() Config { return t.cfg }

// Root returns the root node, whose Count is the total number of symbols
// inserted (the "overall size of the sequence cluster" of §3).
func (t *Tree) Root() *Node { return t.root }

// NumNodes returns the current number of nodes including the root.
func (t *Tree) NumNodes() int { return t.numNodes }

// EstimatedBytes returns the tree's estimated memory footprint.
func (t *Tree) EstimatedBytes() int { return t.numNodes * t.nodeBytes }

// PrunedNodes returns how many nodes have been evicted by the memory cap.
func (t *Tree) PrunedNodes() int64 { return t.pruned }

// PruneEvents returns how many pruning passes have run — each event is
// one §5.1 memory-cap firing (or explicit Prune call) that evicted
// nodes under the configured strategy. The observability layer reports
// it per strategy (DESIGN.md §10).
func (t *Tree) PruneEvents() int64 { return t.pruneEvents }

// Version returns the tree's mutation counter. It starts at 1 for a
// fresh tree and strictly increases on every mutating operation
// (Insert, InsertCounts, Merge, and pruning, whether triggered by the
// memory cap or by Prune). Two equal Version readings bracket a span in
// which the tree's statistics did not change, so any value derived from
// the tree in between — a Similarity, a Predict result — is still
// exact. The clustering engine keys its (cluster, sequence) similarity
// cache on this counter.
//
//cluseq:hotpath
func (t *Tree) Version() uint64 { return t.version }

// TotalSymbols returns the total number of symbols inserted.
func (t *Tree) TotalSymbols() int64 { return t.insertions }

// lookupChild returns n's child along edge symbol s, or nil. It is
// read-only and therefore safe on the frozen trees of the parallel
// scoring phase; every read-side walk (estimation, lookup, fast scan)
// goes through it.
//
//cluseq:hotpath
func (t *Tree) lookupChild(n *Node, s seq.Symbol) *Node {
	if n.children == nil {
		return nil
	}
	return n.children[s] //cluseq:allow hotpath: the tree-shaped fallback scan descends the child map; the compiled snapshot path replaces it with flat arrays
}

// ensureChild returns n's child along edge symbol s, creating it when
// absent. It mutates the tree, so only the serial construction paths
// (Insert, InsertCounts, Merge) may call it.
func (t *Tree) ensureChild(n *Node, s seq.Symbol) *Node {
	if c := t.lookupChild(n, s); c != nil {
		return c
	}
	if n.children == nil {
		n.children = make(map[seq.Symbol]*Node, 2)
	}
	c := &Node{
		parent: n,
		symbol: s,
		depth:  n.depth + 1,
		next:   make([]int64, t.cfg.AlphabetSize),
	}
	n.children[s] = c
	t.numNodes++
	if t.linksValid {
		t.attachLinks(c, n, s)
	}
	return c
}

// Insert adds one segment's statistics to the tree. This is the operation
// behind both initial construction from a seed sequence and the §4.4
// incremental update with a joining sequence's best-scoring segment:
// conceptually it inserts every suffix of the reversed segment, realized
// here as one pass that, for every position, walks the (reversed) context
// of up to MaxDepth symbols and updates each visited node's occurrence
// count and next-symbol counter.
func (t *Tree) Insert(segment []seq.Symbol) {
	l := len(segment)
	if l == 0 {
		return
	}
	L := t.cfg.MaxDepth
	for i := 0; i < l; i++ {
		sym := segment[i]
		// The empty context: the root's count is the total symbol count.
		t.root.Count++
		t.root.next[sym]++
		n := t.root
		for d := 1; d <= L && i-d >= 0; d++ {
			n = t.ensureChild(n, segment[i-d])
			n.Count++
			n.next[sym]++
		}
	}
	// Contexts ending at the final position occur without a successor;
	// count the occurrences so that Count is the exact occurrence count of
	// every label (§3: "a count C is associated with each node to record
	// the number of occurrences of its label").
	n := t.root
	for d := 1; d <= L && l-d >= 0; d++ {
		n = t.ensureChild(n, segment[l-d])
		n.Count++
	}
	t.insertions += int64(l)
	t.version++
	if t.maxNodes > 0 && t.numNodes > t.maxNodes {
		t.pruneTo(t.maxNodes * 9 / 10)
	}
}

// EffectiveSignificance returns the significance threshold currently in
// force: the configured c, or its data-scaled reduction when
// AdaptiveSignificance is set.
//
//cluseq:hotpath
func (t *Tree) EffectiveSignificance() int {
	if !t.cfg.AdaptiveSignificance {
		return t.cfg.Significance
	}
	s := int(t.insertions / int64(8*t.cfg.AlphabetSize))
	if s < 1 {
		return 1
	}
	if s > t.cfg.Significance {
		return t.cfg.Significance
	}
	return s
}

// Significant reports whether node n meets the significance threshold.
// The root is significant by definition once anything has been inserted.
//
//cluseq:hotpath
func (t *Tree) Significant(n *Node) bool {
	if n == t.root {
		return true
	}
	return n.Count >= int64(t.EffectiveSignificance())
}

// PredictionNode locates the node whose label is the longest significant
// suffix of the given context (paper §3): it walks from the root along the
// reversed context and stops where a further advance would reach a missing
// or insignificant node. It never returns nil; with an empty tree it
// returns the root.
//
//cluseq:hotpath
func (t *Tree) PredictionNode(context []seq.Symbol) *Node {
	n := t.root
	L := t.cfg.MaxDepth
	for d := 1; d <= len(context) && d <= L; d++ {
		c := t.lookupChild(n, context[len(context)-d])
		if c == nil || !t.Significant(c) {
			break
		}
		n = c
	}
	return n
}

// prob returns the raw empirical probability stored at node n for symbol s.
//
//cluseq:hotpath
func (t *Tree) prob(n *Node, s seq.Symbol) float64 {
	if n.Count == 0 {
		return 0
	}
	return float64(n.next[s]) / float64(n.Count)
}

// Predict estimates P(s | context), applying the §5.2 adjustment when
// PMin is configured. With Shrinkage zero it reads the prediction node of
// the longest significant suffix (the paper's estimator); with Shrinkage
// positive it blends estimates along the whole context path.
func (t *Tree) Predict(context []seq.Symbol, s seq.Symbol) float64 {
	return t.adjust(t.estimate(context, s))
}

// estimate returns the raw (pre-adjustment) probability estimate for
// P(s | context) under the configured estimation mode.
//
//cluseq:hotpath
func (t *Tree) estimate(context []seq.Symbol, s seq.Symbol) float64 {
	if t.cfg.Shrinkage > 0 {
		return t.predictShrunk(context, s)
	}
	return t.prob(t.PredictionNode(context), s)
}

// predictShrunk walks the reversed context from the root, blending each
// node's raw estimate with its parent's blended value using κ pseudo-
// observations of the parent distribution. The blend is linear in the
// probability vector, so tracking the single entry for s suffices.
//
//cluseq:hotpath
func (t *Tree) predictShrunk(context []seq.Symbol, s seq.Symbol) float64 {
	n := t.root
	b := t.prob(n, s)
	kappa := t.cfg.Shrinkage
	L := t.cfg.MaxDepth
	for d := 1; d <= len(context) && d <= L; d++ {
		c := t.lookupChild(n, context[len(context)-d])
		if c == nil {
			break
		}
		b = (float64(c.next[s]) + kappa*b) / (float64(c.Count) + kappa)
		n = c
	}
	return b
}

// adjust applies the §5.2 smoothing: P̂ = (1 − n·p_min)·P + p_min.
//
//cluseq:hotpath
func (t *Tree) adjust(p float64) float64 {
	if t.cfg.PMin <= 0 {
		return p
	}
	return (1-float64(t.cfg.AlphabetSize)*t.cfg.PMin)*p + t.cfg.PMin
}

// Lookup returns the node labeled exactly with the given context, or nil.
// Unlike PredictionNode it does not stop at insignificant nodes; it is the
// exact-retrieval primitive used by tests and diagnostics.
func (t *Tree) Lookup(context []seq.Symbol) *Node {
	n := t.root
	for d := 1; d <= len(context); d++ {
		n = t.lookupChild(n, context[len(context)-d])
		if n == nil {
			return nil
		}
	}
	return n
}

// Walk visits every node in depth-first pre-order, siblings in ascending
// edge-symbol order, so the traversal is deterministic for a given tree
// state. The visit function returns false to stop early.
//
// Determinism here matters beyond tidy output: pruneTo seeds its eviction
// heap through Walk, and a map-order traversal fed equally-keyed
// candidates to the heap in a different order on every run, making the
// evicted set — and every similarity computed against the pruned tree —
// run-dependent whenever the memory cap fired.
func (t *Tree) Walk(visit func(*Node) bool) {
	stack := []*Node{t.root}
	var syms []seq.Symbol
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !visit(n) {
			return
		}
		syms = syms[:0]
		for s := range n.children {
			syms = append(syms, s)
		}
		for j := 1; j < len(syms); j++ { // insertion sort: child lists are short
			for k := j; k > 0 && syms[k] < syms[k-1]; k-- {
				syms[k], syms[k-1] = syms[k-1], syms[k]
			}
		}
		// Push descending so the stack pops children in ascending order.
		for j := len(syms) - 1; j >= 0; j-- {
			stack = append(stack, n.children[syms[j]])
		}
	}
}

// Stats summarizes the tree for diagnostics and experiment reports.
type Stats struct {
	Nodes            int
	SignificantNodes int
	MaxDepth         int
	TotalSymbols     int64
	PrunedNodes      int64
	EstimatedBytes   int
}

// Stats computes a snapshot of tree statistics.
func (t *Tree) Stats() Stats {
	s := Stats{
		Nodes:          t.numNodes,
		TotalSymbols:   t.insertions,
		PrunedNodes:    t.pruned,
		EstimatedBytes: t.EstimatedBytes(),
	}
	t.Walk(func(n *Node) bool {
		if t.Significant(n) {
			s.SignificantNodes++
		}
		if n.depth > s.MaxDepth {
			s.MaxDepth = n.depth
		}
		return true
	})
	return s
}

// Dump renders the tree as indented text for debugging, decoding symbols
// through the given alphabet. Nodes appear in no particular sibling order.
func (t *Tree) Dump(a *seq.Alphabet) string {
	var b strings.Builder
	var rec func(n *Node)
	rec = func(n *Node) {
		label := "ε"
		if n.depth > 0 {
			label = a.Decode(n.Label())
		}
		fmt.Fprintf(&b, "%s%s count=%d next=%v\n", strings.Repeat("  ", n.depth), label, n.Count, n.next)
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	return b.String()
}

// variationalDistance is Σ|P1(s) − P2(s)| over the alphabet, the distance
// the §5.1 "expected probability vector" strategy compares with.
func variationalDistance(n, parent *Node) float64 {
	if n.Count == 0 || parent.Count == 0 {
		return 0 // indistinguishable from expected: prune first
	}
	d := 0.0
	for s := range n.next {
		p1 := float64(n.next[s]) / float64(n.Count)
		p2 := float64(parent.next[s]) / float64(parent.Count)
		d += math.Abs(p1 - p2)
	}
	return d
}
