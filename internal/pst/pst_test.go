package pst

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cluseq/internal/seq"
	"cluseq/internal/suffixtree"
)

func encode(t *testing.T, a *seq.Alphabet, s string) []seq.Symbol {
	t.Helper()
	syms, err := a.Encode(s)
	if err != nil {
		t.Fatalf("encode %q: %v", s, err)
	}
	return syms
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{AlphabetSize: 0},
		{AlphabetSize: -1},
		{AlphabetSize: 2, MaxDepth: -3},
		{AlphabetSize: 2, Significance: -1},
		{AlphabetSize: 4, PMin: 0.25}, // n·PMin = 1
		{AlphabetSize: 4, PMin: -0.1},
		{AlphabetSize: 1000, MaxBytes: 100}, // budget below 4 nodes
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d (%+v): New should fail", i, cfg)
		}
	}
	tr, err := New(Config{AlphabetSize: 2})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if got := tr.Config(); got.MaxDepth != DefaultMaxDepth || got.Significance != DefaultSignificance {
		t.Fatalf("defaults not applied: %+v", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestRootCountIsTotalSymbols(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, Significance: 1})
	tr.Insert(encode(t, a, "abba"))
	tr.Insert(encode(t, a, "ab"))
	// §3: the root count records the overall cluster size.
	if tr.Root().Count != 6 {
		t.Fatalf("root count = %d, want 6", tr.Root().Count)
	}
	if tr.TotalSymbols() != 6 {
		t.Fatalf("TotalSymbols = %d, want 6", tr.TotalSymbols())
	}
}

func TestNodeCountsMatchOccurrences(t *testing.T) {
	// §3: each node's count must equal the number of occurrences of its
	// label. Cross-check every context of "abracadabra"-style data against
	// the exact generalized suffix tree.
	a := seq.MustAlphabet("abrcd")
	text := "abracadabraabracadabra"
	tr := MustNew(Config{AlphabetSize: 5, MaxDepth: 6, Significance: 1})
	st := suffixtree.New()
	tr.Insert(encode(t, a, text))
	st.Add(encode(t, a, text))

	checked := 0
	tr.Walk(func(n *Node) bool {
		if n.Depth() == 0 {
			return true
		}
		label := n.Label()
		if want := int64(st.Count(label)); n.Count != want {
			t.Errorf("context %q: count = %d, suffix tree says %d", a.Decode(label), n.Count, want)
		}
		checked++
		return true
	})
	if checked < 20 {
		t.Fatalf("only %d nodes checked; tree too small", checked)
	}
}

func TestNextCountsMatchOccurrences(t *testing.T) {
	// next[s] must equal the occurrence count of label·s (§4.4:
	// P(s|σ') = C(σ's)/C(σ')).
	a := seq.MustAlphabet("abc")
	text := "abcabcaabbccabc"
	tr := MustNew(Config{AlphabetSize: 3, MaxDepth: 5, Significance: 1})
	st := suffixtree.New()
	tr.Insert(encode(t, a, text))
	st.Add(encode(t, a, text))

	tr.Walk(func(n *Node) bool {
		label := n.Label()
		for s := seq.Symbol(0); s < 3; s++ {
			extended := append(append([]seq.Symbol{}, label...), s)
			if got, want := n.NextCount(s), int64(st.Count(extended)); got != want {
				t.Errorf("context %q next %q: count = %d, suffix tree says %d", a.Decode(label), string(a.Rune(s)), got, want)
			}
		}
		return true
	})
}

func TestCountsMonotoneWithDepth(t *testing.T) {
	// An occurrence of a longer context contains one of every suffix
	// context, so counts must never increase from parent to child. The
	// pruning strategies rely on this invariant.
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 300 {
			raw = raw[:300]
		}
		tr := MustNew(Config{AlphabetSize: 3, MaxDepth: 6, Significance: 1})
		syms := make([]seq.Symbol, len(raw))
		for i, b := range raw {
			syms[i] = seq.Symbol(b % 3)
		}
		tr.Insert(syms)
		ok := true
		tr.Walk(func(n *Node) bool {
			for _, c := range n.children {
				if c.Count > n.Count {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilityVectorsSumCorrectly(t *testing.T) {
	// Σ_s next[s] ≤ Count, with the deficit exactly the number of
	// occurrences at segment ends.
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 4, Significance: 1})
	tr.Insert(encode(t, a, "ababab"))
	tr.Walk(func(n *Node) bool {
		var sum int64
		for s := seq.Symbol(0); s < 2; s++ {
			sum += n.NextCount(s)
		}
		if sum > n.Count {
			t.Errorf("context %q: next counts sum %d exceeds count %d", a.Decode(n.Label()), sum, n.Count)
		}
		return true
	})
	// The context "b" occurs 3 times, always followed by "a" except at the
	// end — wait, "ababab" ends in b, so b occurs 3 times, followed by a
	// twice.
	n := tr.Lookup(encode(t, a, "b"))
	if n == nil || n.Count != 3 || n.NextCount(0) != 2 || n.NextCount(1) != 0 {
		t.Fatalf("context b: %+v", n)
	}
}

func TestPredictionNodeLongestSignificantSuffix(t *testing.T) {
	// Build data where context "ba" is significant but "bba" is not, and
	// verify the §3 walk stops at "ba" when asked for "bba".
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 5, Significance: 3})
	// "ba" appears 4 times; "bba" only once.
	tr.Insert(encode(t, a, "babababbab"))
	nBA := tr.Lookup(encode(t, a, "ba"))
	if nBA == nil || !tr.Significant(nBA) {
		t.Fatalf("context ba should be significant: %+v", nBA)
	}
	nBBA := tr.Lookup(encode(t, a, "bba"))
	if nBBA == nil || tr.Significant(nBBA) {
		t.Fatalf("context bba should exist and be insignificant: %+v", nBBA)
	}
	got := tr.PredictionNode(encode(t, a, "bba"))
	if got != nBA {
		t.Fatalf("PredictionNode(bba) = %q, want ba", a.Decode(got.Label()))
	}
	// A fully significant context is its own prediction node (footnote 7).
	if got := tr.PredictionNode(encode(t, a, "ba")); got != nBA {
		t.Fatalf("PredictionNode(ba) = %q, want ba itself", a.Decode(got.Label()))
	}
	// Unknown first symbol: falls back to the root.
	if got := tr.PredictionNode(nil); got != tr.Root() {
		t.Fatal("empty context must predict from the root")
	}
}

func TestPredictMatchesHandComputation(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 4, Significance: 1})
	tr.Insert(encode(t, a, "aabab"))
	// Context "a" occurs 3 times: positions 0,1,3; followed by a,b,b.
	if got := tr.Predict(encode(t, a, "a"), 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("P(b|a) = %v, want 2/3", got)
	}
	if got := tr.Predict(encode(t, a, "a"), 0); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("P(a|a) = %v, want 1/3", got)
	}
	// Unconditional: P(a) = 3/5 from the root.
	if got := tr.Predict(nil, 0); math.Abs(got-3.0/5) > 1e-12 {
		t.Fatalf("P(a) = %v, want 3/5", got)
	}
}

func TestAdjustedProbabilities(t *testing.T) {
	// §5.2: with PMin set, no probability is zero, and each entry is
	// (1 − n·p_min)·P + p_min.
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 4, Significance: 1, PMin: 0.01})
	tr.Insert(encode(t, a, "aaaa"))
	got := tr.Predict(encode(t, a, "a"), 1) // b never follows a
	if math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("adjusted P(b|a) = %v, want 0.01", got)
	}
	// Context "a" occurs 4 times (the last occurrence at the sequence end
	// has no successor), so the paper's C(aa)/C(a) = 3/4, adjusted to
	// 0.98·0.75 + 0.01.
	gotA := tr.Predict(encode(t, a, "a"), 0)
	if math.Abs(gotA-(0.98*0.75+0.01)) > 1e-12 {
		t.Fatalf("adjusted P(a|a) = %v, want 0.745", gotA)
	}
}

// TestPaperTable1 replays the worked similarity example of paper §4.3
// (Table 1): sequence bbaa against the Figure 1 tree, background
// p(a)=0.6, p(b)=0.4; the best segment is bba with similarity 2.10.
//
// Figure 1's full tree is not printable from the paper, so we reconstruct
// an equivalent tree that yields exactly the four conditional probabilities
// Table 1 lists: P(b|ε)=0.55, P(b|b)=0.418, P(a|bb)=0.87, P(a|baa… context
// bba→ba)=0.406.
func TestPaperTable1(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 3, Significance: 1})

	// Hand-wire the counts rather than inserting data: the test pins the
	// arithmetic of the DP, not the counting (covered elsewhere).
	root := tr.Root()
	root.Count = 1000
	root.next[0] = 450 // P(a) = 0.45
	root.next[1] = 550 // P(b) = 0.55

	nb := tr.ensureChild(root, 1) // context "b"
	nb.Count = 550
	nb.next[0] = 320             // P(a|b)
	nb.next[1] = 230             // P(b|b) = 0.41818… ≈ 0.418
	nbb := tr.ensureChild(nb, 1) // context "bb"
	nbb.Count = 230
	nbb.next[0] = 200 // P(a|bb) = 0.8696 ≈ 0.87
	nbb.next[1] = 30

	// Context "ba" is reached root→a→b: child(child(root, 'a'), 'b').
	na := tr.ensureChild(root, 0) // context "a"
	na.Count = 450
	na.next[0] = 250
	na.next[1] = 200
	nBA := tr.ensureChild(na, 1) // context "ba"
	nBA.Count = 320
	nBA.next[0] = 130 // P(a|ba) = 0.40625 ≈ 0.406
	nBA.next[1] = 190 // P(b|ba) = 0.59375 ≈ 0.594

	background := []float64{0.6, 0.4}
	syms := encode(t, a, "bbaa")
	got := tr.Similarity(syms, background)

	// Reference values from Table 1 (X1..X4 = 1.38, 1.05, 1.45, 0.677;
	// running max 2.10 over segment bba).
	wantSim := (0.55 / 0.4) * (230.0 / 550 / 0.4) * (200.0 / 230 / 0.6)
	if math.Abs(got.Sim()-wantSim) > 1e-9 {
		t.Fatalf("SIM = %v, want %v", got.Sim(), wantSim)
	}
	if math.Abs(got.Sim()-2.10) > 0.02 {
		t.Fatalf("SIM = %v, want ≈ 2.10 (paper Table 1)", got.Sim())
	}
	if got.Start != 0 || got.End != 3 {
		t.Fatalf("best segment = [%d,%d), want [0,3) = bba", got.Start, got.End)
	}
}

func TestSimilarityMatchesBruteForce(t *testing.T) {
	// SIM must equal the max over all O(l²) segments of the plain
	// likelihood ratio, where each position's context extends to the
	// sequence start (the paper's X_i is segment-independent).
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 40; trial++ {
		tr := MustNew(Config{AlphabetSize: 3, MaxDepth: 4, Significance: 2, PMin: 0.005})
		train := make([]seq.Symbol, 60)
		for i := range train {
			train[i] = seq.Symbol(rng.IntN(3))
		}
		tr.Insert(train)

		probe := make([]seq.Symbol, 1+rng.IntN(20))
		for i := range probe {
			probe[i] = seq.Symbol(rng.IntN(3))
		}
		background := []float64{0.5, 0.3, 0.2}

		// Brute force: logX per position, then max over segments.
		logX := make([]float64, len(probe))
		for i, sym := range probe {
			lo := i - 4
			if lo < 0 {
				lo = 0
			}
			p := tr.Predict(probe[lo:i], sym)
			logX[i] = math.Log(p) - math.Log(background[sym])
		}
		want := math.Inf(-1)
		for i := 0; i < len(probe); i++ {
			sum := 0.0
			for j := i; j < len(probe); j++ {
				sum += logX[j]
				if sum > want {
					want = sum
				}
			}
		}
		got := tr.Similarity(probe, background)
		if math.Abs(got.LogSim-want) > 1e-9 {
			t.Fatalf("trial %d: LogSim = %v, brute force = %v (probe %v)", trial, got.LogSim, want, probe)
		}
		// The reported segment must reproduce the reported score.
		sum := 0.0
		for j := got.Start; j < got.End; j++ {
			sum += logX[j]
		}
		if math.Abs(sum-got.LogSim) > 1e-9 {
			t.Fatalf("trial %d: segment [%d,%d) scores %v, reported %v", trial, got.Start, got.End, sum, got.LogSim)
		}
	}
}

func TestSimilarityEmptyAndPanics(t *testing.T) {
	tr := MustNew(Config{AlphabetSize: 2})
	got := tr.Similarity(nil, []float64{0.5, 0.5})
	if !math.IsInf(got.LogSim, -1) {
		t.Fatalf("empty sequence LogSim = %v, want -Inf", got.LogSim)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched background length should panic")
		}
	}()
	tr.Similarity([]seq.Symbol{0}, []float64{1})
}

func TestSimilarityExceeds(t *testing.T) {
	s := Similarity{LogSim: math.Log(2)}
	if !s.Exceeds(1.5) || s.Exceeds(2.5) {
		t.Fatalf("Exceeds wrong around threshold: %+v", s)
	}
	if !s.Exceeds(0) {
		t.Fatal("non-positive thresholds are always exceeded")
	}
	// Overflow regime: LogSim representing sim ≈ e^1000.
	big := Similarity{LogSim: 1000}
	if !big.Exceeds(2) {
		t.Fatal("huge similarity must exceed small threshold")
	}
	if !math.IsInf(big.Sim(), 1) {
		t.Fatal("Sim should overflow to +Inf, which is why comparisons use logs")
	}
}

func TestLogLikelihoodRatioConsistentWithSimilarity(t *testing.T) {
	// SIM over the whole sequence is at least the full-sequence ratio.
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 4, Significance: 1, PMin: 0.01})
	tr.Insert(encode(t, a, "abababab"))
	probe := encode(t, a, "ababab")
	bg := []float64{0.5, 0.5}
	full := tr.LogLikelihoodRatio(probe, bg)
	sim := tr.Similarity(probe, bg)
	if sim.LogSim < full-1e-9 {
		t.Fatalf("SIM %v < full-sequence ratio %v", sim.LogSim, full)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 3, Significance: 1})
	tr.Insert(encode(t, a, "abababababab"))
	maxDepth := 0
	tr.Walk(func(n *Node) bool {
		if n.Depth() > maxDepth {
			maxDepth = n.Depth()
		}
		return true
	})
	if maxDepth != 3 {
		t.Fatalf("max node depth = %d, want 3", maxDepth)
	}
}

func TestInsertEmptySegment(t *testing.T) {
	tr := MustNew(Config{AlphabetSize: 2})
	tr.Insert(nil)
	if tr.Root().Count != 0 || tr.NumNodes() != 1 {
		t.Fatal("inserting an empty segment must be a no-op")
	}
}

func TestLabelRoundTrip(t *testing.T) {
	a := seq.MustAlphabet("abcd")
	tr := MustNew(Config{AlphabetSize: 4, MaxDepth: 6, Significance: 1})
	tr.Insert(encode(t, a, "abcdabcd"))
	want := encode(t, a, "bcd")
	n := tr.Lookup(want)
	if n == nil {
		t.Fatal("context bcd missing")
	}
	if got := a.Decode(n.Label()); got != "bcd" {
		t.Fatalf("Label = %q, want bcd", got)
	}
	if n.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", n.Depth())
	}
}

func TestStats(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 3, Significance: 2})
	tr.Insert(encode(t, a, "ababab"))
	s := tr.Stats()
	if s.Nodes != tr.NumNodes() {
		t.Fatalf("Stats.Nodes = %d, want %d", s.Nodes, tr.NumNodes())
	}
	if s.MaxDepth != 3 {
		t.Fatalf("Stats.MaxDepth = %d, want 3", s.MaxDepth)
	}
	if s.SignificantNodes < 1 {
		t.Fatal("at least the root must be significant")
	}
	if s.TotalSymbols != 6 {
		t.Fatalf("Stats.TotalSymbols = %d, want 6", s.TotalSymbols)
	}
	if s.EstimatedBytes <= 0 {
		t.Fatal("EstimatedBytes must be positive")
	}
}

func TestDumpDoesNotPanic(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 2, Significance: 1})
	tr.Insert(encode(t, a, "ab"))
	if out := tr.Dump(a); len(out) == 0 {
		t.Fatal("Dump returned empty output")
	}
}
