package pst

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"cluseq/internal/seq"
)

// Binary serialization of probabilistic suffix trees, so that cluster
// models can be stored and later used for classification without
// re-clustering. The format is a little-endian stream:
//
//	magic "PSTv1\n", config block, then the node tree in pre-order, each
//	node as (edge symbol, count, non-zero next entries, child count).
//
// Only non-zero next-counts are written; trees over large alphabets are
// sparse at depth.

var magic = []byte("PSTv1\n")

// Clone returns a deep copy of the tree: identical configuration,
// structure, and counts, sharing no mutable state with the original.
// Implemented as a Save/Load round trip, so the copy is exactly the tree
// a bundle reader would reconstruct — Similarity over the clone is
// bit-identical to the original at the moment of cloning. The clone's
// Version restarts (it is a fresh tree), so snapshots compiled from the
// original do not validate against it. The streaming engine clones each
// cluster tree at snapshot-publication time so the published classifier
// is immutable while the live tree keeps absorbing the stream.
func (t *Tree) Clone() *Tree {
	var buf bytes.Buffer
	if err := t.Save(&buf); err != nil {
		// Save into a bytes.Buffer cannot fail with a well-formed tree.
		panic(fmt.Sprintf("pst: cloning tree: %v", err))
	}
	nt, err := Load(&buf)
	if err != nil {
		panic(fmt.Sprintf("pst: reloading cloned tree: %v", err))
	}
	return nt
}

// Save writes the tree to w in the binary format.
func (t *Tree) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	cfg := t.cfg
	hdr := []any{
		int64(cfg.AlphabetSize), int64(cfg.MaxDepth), int64(cfg.Significance),
		int64(cfg.MaxBytes), int64(cfg.Prune), cfg.PMin,
		boolByte(cfg.AdaptiveSignificance), cfg.Shrinkage,
		t.insertions, t.pruned, int64(t.numNodes),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := t.saveNode(bw, t.root); err != nil {
		return err
	}
	return bw.Flush()
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func (t *Tree) saveNode(w io.Writer, n *Node) error {
	nonZero := uint32(0)
	for _, c := range n.next {
		if c != 0 {
			nonZero++
		}
	}
	for _, v := range []any{uint16(n.symbol), n.Count, nonZero, uint32(len(n.children))} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for s, c := range n.next {
		if c == 0 {
			continue
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(s)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, c); err != nil {
			return err
		}
	}
	// Children sorted by symbol for byte-reproducible output.
	syms := make([]seq.Symbol, 0, len(n.children))
	for s := range n.children {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	for _, s := range syms {
		if err := t.saveNode(w, n.children[s]); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a tree previously written by Save.
func Load(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("pst: reading magic: %w", err)
	}
	if string(got) != string(magic) {
		return nil, fmt.Errorf("pst: bad magic %q", got)
	}
	var (
		alpha, maxDepth, sig, maxBytes, prune int64
		pmin, shrink                          float64
		adaptive                              byte
		insertions, pruned, numNodes          int64
	)
	hdrFields := []struct {
		name string
		v    any
	}{
		{"alphabet size", &alpha}, {"max depth", &maxDepth},
		{"significance", &sig}, {"max bytes", &maxBytes},
		{"prune strategy", &prune}, {"p_min", &pmin},
		{"adaptive flag", &adaptive}, {"shrinkage", &shrink},
		{"insertions", &insertions}, {"pruned count", &pruned},
		{"node count", &numNodes},
	}
	for _, f := range hdrFields {
		if err := binary.Read(br, binary.LittleEndian, f.v); err != nil {
			return nil, fmt.Errorf("pst: reading header field %s: %w", f.name, err)
		}
	}
	// Reject implausible headers before any size-proportional allocation:
	// a flipped byte in the alphabet or node count must fail here, not in
	// a multi-gigabyte make().
	if alpha <= 0 || alpha > seq.MaxAlphabetSize {
		return nil, fmt.Errorf("pst: corrupt header: alphabet size %d outside [1, %d]", alpha, seq.MaxAlphabetSize)
	}
	if numNodes < 1 || numNodes > maxLoadNodes {
		return nil, fmt.Errorf("pst: corrupt header: node count %d outside [1, %d]", numNodes, int64(maxLoadNodes))
	}
	if maxDepth < 0 || maxDepth > math.MaxInt32 {
		return nil, fmt.Errorf("pst: corrupt header: max depth %d", maxDepth)
	}
	if insertions < 0 || pruned < 0 {
		return nil, fmt.Errorf("pst: corrupt header: negative counters (insertions %d, pruned %d)", insertions, pruned)
	}
	t, err := New(Config{
		AlphabetSize:         int(alpha),
		MaxDepth:             int(maxDepth),
		Significance:         int(sig),
		MaxBytes:             int(maxBytes),
		Prune:                PruneStrategy(prune),
		PMin:                 pmin,
		AdaptiveSignificance: adaptive != 0,
		Shrinkage:            shrink,
	})
	if err != nil {
		return nil, err
	}
	t.insertions = insertions
	t.pruned = pruned
	remaining := numNodes
	root, err := t.loadNode(br, nil, 0, numNodes, &remaining)
	if err != nil {
		return nil, err
	}
	if remaining != 0 {
		return nil, fmt.Errorf("pst: node count mismatch: %d unread", remaining)
	}
	t.root = root
	t.numNodes = int(numNodes)
	t.rebuildLinks()
	return t, nil
}

// rebuildLinks re-derives the auxiliary links of fastscan.go after
// deserialization. BFS order guarantees a node's suffix link is wired
// before its children need it.
func (t *Tree) rebuildLinks() {
	t.linksValid = true
	queue := []*Node{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for s, c := range n.children {
			t.attachLinks(c, n, s)
			if !t.linksValid {
				return // tree was pruned before saving; fast scan disabled
			}
			queue = append(queue, c)
		}
	}
}

// maxLoadNodes bounds the node count a header may declare; anything
// larger is rejected before allocation. (2^31 nodes would already be a
// >100 GB tree — far beyond any legitimate bundle.)
const maxLoadNodes = int64(1) << 31

func (t *Tree) loadNode(r io.Reader, parent *Node, depth int, total int64, remaining *int64) (*Node, error) {
	if *remaining <= 0 {
		return nil, fmt.Errorf("pst: more nodes in stream than the %d the header declared", total)
	}
	*remaining--
	idx := total - *remaining - 1 // pre-order index of this node, for errors
	if depth > t.cfg.MaxDepth {
		return nil, fmt.Errorf("pst: node %d: depth %d exceeds MaxDepth %d", idx, depth, t.cfg.MaxDepth)
	}
	var (
		sym      uint16
		count    int64
		nonZero  uint32
		children uint32
	)
	nodeFields := []struct {
		name string
		v    any
	}{{"edge symbol", &sym}, {"count", &count}, {"next-entry count", &nonZero}, {"child count", &children}}
	for _, f := range nodeFields {
		if err := binary.Read(r, binary.LittleEndian, f.v); err != nil {
			return nil, fmt.Errorf("pst: node %d: reading %s: %w", idx, f.name, err)
		}
	}
	if count < 0 || int64(nonZero) > int64(t.cfg.AlphabetSize) {
		return nil, fmt.Errorf("pst: node %d: corrupt (count %d, %d next entries, alphabet %d)", idx, count, nonZero, t.cfg.AlphabetSize)
	}
	// Every child consumes at least one of the declared remaining nodes,
	// so a child count beyond that is corrupt; checking here keeps the
	// pre-sized map allocation proportional to the actual stream.
	if int64(children) > *remaining {
		return nil, fmt.Errorf("pst: node %d: declares %d children but only %d nodes remain", idx, children, *remaining)
	}
	n := &Node{
		parent: parent,
		symbol: seq.Symbol(sym),
		depth:  depth,
		Count:  count,
		next:   make([]int64, t.cfg.AlphabetSize),
	}
	for i := uint32(0); i < nonZero; i++ {
		var s uint16
		var c int64
		if err := binary.Read(r, binary.LittleEndian, &s); err != nil {
			return nil, fmt.Errorf("pst: node %d: reading next entry %d symbol: %w", idx, i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &c); err != nil {
			return nil, fmt.Errorf("pst: node %d: reading next entry %d count: %w", idx, i, err)
		}
		if int(s) >= t.cfg.AlphabetSize || c < 0 {
			return nil, fmt.Errorf("pst: node %d: corrupt next entry (symbol %d, count %d)", idx, s, c)
		}
		n.next[s] = c
	}
	if children > 0 {
		n.children = make(map[seq.Symbol]*Node, children)
		for i := uint32(0); i < children; i++ {
			child, err := t.loadNode(r, n, depth+1, total, remaining)
			if err != nil {
				return nil, err
			}
			if _, dup := n.children[child.symbol]; dup {
				return nil, fmt.Errorf("pst: node %d: duplicate child symbol %d", idx, child.symbol)
			}
			n.children[child.symbol] = child
		}
	}
	return n, nil
}
