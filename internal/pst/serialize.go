package pst

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"cluseq/internal/seq"
)

// Binary serialization of probabilistic suffix trees, so that cluster
// models can be stored and later used for classification without
// re-clustering. The format is a little-endian stream:
//
//	magic "PSTv1\n", config block, then the node tree in pre-order, each
//	node as (edge symbol, count, non-zero next entries, child count).
//
// Only non-zero next-counts are written; trees over large alphabets are
// sparse at depth.

var magic = []byte("PSTv1\n")

// Save writes the tree to w in the binary format.
func (t *Tree) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	cfg := t.cfg
	hdr := []any{
		int64(cfg.AlphabetSize), int64(cfg.MaxDepth), int64(cfg.Significance),
		int64(cfg.MaxBytes), int64(cfg.Prune), cfg.PMin,
		boolByte(cfg.AdaptiveSignificance), cfg.Shrinkage,
		t.insertions, t.pruned, int64(t.numNodes),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := t.saveNode(bw, t.root); err != nil {
		return err
	}
	return bw.Flush()
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func (t *Tree) saveNode(w io.Writer, n *Node) error {
	nonZero := uint32(0)
	for _, c := range n.next {
		if c != 0 {
			nonZero++
		}
	}
	for _, v := range []any{uint16(n.symbol), n.Count, nonZero, uint32(len(n.children))} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for s, c := range n.next {
		if c == 0 {
			continue
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(s)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, c); err != nil {
			return err
		}
	}
	// Children sorted by symbol for byte-reproducible output.
	syms := make([]seq.Symbol, 0, len(n.children))
	for s := range n.children {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	for _, s := range syms {
		if err := t.saveNode(w, n.children[s]); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a tree previously written by Save.
func Load(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("pst: reading magic: %w", err)
	}
	if string(got) != string(magic) {
		return nil, fmt.Errorf("pst: bad magic %q", got)
	}
	var (
		alpha, maxDepth, sig, maxBytes, prune int64
		pmin, shrink                          float64
		adaptive                              byte
		insertions, pruned, numNodes          int64
	)
	for _, v := range []any{
		&alpha, &maxDepth, &sig, &maxBytes, &prune, &pmin,
		&adaptive, &shrink, &insertions, &pruned, &numNodes,
	} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("pst: reading header: %w", err)
		}
	}
	if alpha <= 0 || alpha > math.MaxInt32 || numNodes < 1 {
		return nil, fmt.Errorf("pst: corrupt header (alphabet %d, nodes %d)", alpha, numNodes)
	}
	t, err := New(Config{
		AlphabetSize:         int(alpha),
		MaxDepth:             int(maxDepth),
		Significance:         int(sig),
		MaxBytes:             int(maxBytes),
		Prune:                PruneStrategy(prune),
		PMin:                 pmin,
		AdaptiveSignificance: adaptive != 0,
		Shrinkage:            shrink,
	})
	if err != nil {
		return nil, err
	}
	t.insertions = insertions
	t.pruned = pruned
	remaining := numNodes
	root, err := t.loadNode(br, nil, 0, &remaining)
	if err != nil {
		return nil, err
	}
	if remaining != 0 {
		return nil, fmt.Errorf("pst: node count mismatch: %d unread", remaining)
	}
	t.root = root
	t.numNodes = int(numNodes)
	t.rebuildLinks()
	return t, nil
}

// rebuildLinks re-derives the auxiliary links of fastscan.go after
// deserialization. BFS order guarantees a node's suffix link is wired
// before its children need it.
func (t *Tree) rebuildLinks() {
	t.linksValid = true
	queue := []*Node{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for s, c := range n.children {
			t.attachLinks(c, n, s)
			if !t.linksValid {
				return // tree was pruned before saving; fast scan disabled
			}
			queue = append(queue, c)
		}
	}
}

func (t *Tree) loadNode(r io.Reader, parent *Node, depth int, remaining *int64) (*Node, error) {
	if *remaining <= 0 {
		return nil, fmt.Errorf("pst: more nodes in stream than header declared")
	}
	*remaining--
	if depth > t.cfg.MaxDepth {
		return nil, fmt.Errorf("pst: node depth %d exceeds MaxDepth %d", depth, t.cfg.MaxDepth)
	}
	var (
		sym      uint16
		count    int64
		nonZero  uint32
		children uint32
	)
	for _, v := range []any{&sym, &count, &nonZero, &children} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("pst: reading node: %w", err)
		}
	}
	if count < 0 || int(nonZero) > t.cfg.AlphabetSize {
		return nil, fmt.Errorf("pst: corrupt node (count %d, %d next entries)", count, nonZero)
	}
	n := &Node{
		parent: parent,
		symbol: seq.Symbol(sym),
		depth:  depth,
		Count:  count,
		next:   make([]int64, t.cfg.AlphabetSize),
	}
	for i := uint32(0); i < nonZero; i++ {
		var s uint16
		var c int64
		if err := binary.Read(r, binary.LittleEndian, &s); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, &c); err != nil {
			return nil, err
		}
		if int(s) >= t.cfg.AlphabetSize || c < 0 {
			return nil, fmt.Errorf("pst: corrupt next entry (symbol %d, count %d)", s, c)
		}
		n.next[s] = c
	}
	if children > 0 {
		n.children = make(map[seq.Symbol]*Node, children)
		for i := uint32(0); i < children; i++ {
			child, err := t.loadNode(r, n, depth+1, remaining)
			if err != nil {
				return nil, err
			}
			if _, dup := n.children[child.symbol]; dup {
				return nil, fmt.Errorf("pst: duplicate child symbol %d", child.symbol)
			}
			n.children[child.symbol] = child
		}
	}
	return n, nil
}
