package pst

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"cluseq/internal/seq"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	orig := MustNew(Config{
		AlphabetSize: 20, MaxDepth: 6, Significance: 7,
		PMin: 0.005, AdaptiveSignificance: true,
	})
	for i := 0; i < 10; i++ {
		orig.Insert(randomSymbols(rng, 200, 20))
	}

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	if loaded.NumNodes() != orig.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", loaded.NumNodes(), orig.NumNodes())
	}
	if loaded.TotalSymbols() != orig.TotalSymbols() {
		t.Fatalf("TotalSymbols = %d, want %d", loaded.TotalSymbols(), orig.TotalSymbols())
	}
	if loaded.Config() != orig.Config() {
		t.Fatalf("Config = %+v, want %+v", loaded.Config(), orig.Config())
	}
	// Every node must match: counts, next vectors, structure.
	orig.Walk(func(n *Node) bool {
		m := loaded.Lookup(n.Label())
		if m == nil {
			t.Fatalf("node %v missing after round trip", n.Label())
		}
		if m.Count != n.Count || m.Depth() != n.Depth() {
			t.Fatalf("node %v differs: %d/%d vs %d/%d", n.Label(), m.Count, m.Depth(), n.Count, n.Depth())
		}
		for s := seq.Symbol(0); int(s) < 20; s++ {
			if m.NextCount(s) != n.NextCount(s) {
				t.Fatalf("node %v next[%d] differs", n.Label(), s)
			}
		}
		return true
	})
	// Predictions must agree exactly.
	bg := make([]float64, 20)
	for i := range bg {
		bg[i] = 0.05
	}
	probe := randomSymbols(rng, 300, 20)
	a := orig.Similarity(probe, bg)
	b := loaded.Similarity(probe, bg)
	if a.LogSim != b.LogSim || a.Start != b.Start || a.End != b.End {
		t.Fatalf("similarity differs after round trip: %+v vs %+v", a, b)
	}
}

func TestCloneIndependentAndBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	orig := MustNew(Config{AlphabetSize: 8, MaxDepth: 5, Significance: 2})
	for i := 0; i < 20; i++ {
		orig.Insert(randomSymbols(rng, 150, 8))
	}
	clone := orig.Clone()
	bg := make([]float64, 8)
	for i := range bg {
		bg[i] = 1.0 / 8
	}
	probe := randomSymbols(rng, 200, 8)
	a, b := orig.Similarity(probe, bg), clone.Similarity(probe, bg)
	if a != b {
		t.Fatalf("clone similarity differs: %+v vs %+v", a, b)
	}
	if clone.NumNodes() != orig.NumNodes() {
		t.Fatalf("clone NumNodes = %d, want %d", clone.NumNodes(), orig.NumNodes())
	}
	// Mutating the original must not leak into the clone.
	before := clone.Similarity(probe, bg)
	nodesBefore := clone.NumNodes()
	orig.Insert(probe)
	if got := clone.Similarity(probe, bg); got != before {
		t.Fatalf("clone changed after original mutation: %+v vs %+v", got, before)
	}
	if clone.NumNodes() != nodesBefore {
		t.Fatal("clone node count changed after original mutation")
	}
}

func TestSaveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	tree := MustNew(Config{AlphabetSize: 5, MaxDepth: 4, Significance: 2})
	tree.Insert(randomSymbols(rng, 100, 5))
	var b1, b2 bytes.Buffer
	if err := tree.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tree.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("Save output is not byte-deterministic")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTPST\n plus junk that is long enough"),
		"truncated": []byte("PSTv1\n\x01\x02"),
	}
	for name, in := range cases {
		if _, err := Load(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: Load should fail", name)
		}
	}
}

func TestLoadRejectsTamperedNodeCount(t *testing.T) {
	tree := MustNew(Config{AlphabetSize: 3, MaxDepth: 3, Significance: 1})
	tree.Insert([]seq.Symbol{0, 1, 2, 0, 1})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The numNodes field sits at a fixed offset: magic(6) + 5×int64 +
	// float64 + byte + float64 + 2×int64 = 6 + 40 + 8 + 1 + 8 + 16 = 79.
	data[79] = 1 // clobber node count
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("Load should reject mismatched node count")
	}
}

func TestSaveLoadEmptyTree(t *testing.T) {
	tree := MustNew(Config{AlphabetSize: 4})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != 1 || loaded.Root().Count != 0 {
		t.Fatalf("empty tree round trip: %d nodes, root count %d", loaded.NumNodes(), loaded.Root().Count)
	}
}

func TestSaveLoadLargeAlphabetSparse(t *testing.T) {
	// Sparse next vectors over a large alphabet must stay compact.
	tree := MustNew(Config{AlphabetSize: 5000, MaxDepth: 3, Significance: 1})
	tree.Insert([]seq.Symbol{7, 4999, 7, 4999, 7})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 4096 {
		t.Fatalf("sparse tree serialized to %d bytes; next vectors not sparse?", buf.Len())
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := loaded.Lookup([]seq.Symbol{7})
	if n == nil || n.NextCount(4999) != 2 {
		t.Fatal("sparse counts lost in round trip")
	}
}

func TestLoadGarbageAfterValidHeader(t *testing.T) {
	tree := MustNew(Config{AlphabetSize: 3, MaxDepth: 3, Significance: 1})
	tree.Insert([]seq.Symbol{0, 1, 2})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-node.
	data := buf.Bytes()[:buf.Len()-3]
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("Load should fail on truncated node data")
	}
	if _, err := Load(strings.NewReader(string(buf.Bytes()) + "trailing")); err != nil {
		t.Fatal("trailing bytes after a complete tree should be ignored (stream use)")
	}
}

// savedTestTree returns the serialized bytes of a small valid tree.
func savedTestTree(t *testing.T) []byte {
	t.Helper()
	tree := MustNew(Config{AlphabetSize: 3, MaxDepth: 3, Significance: 1})
	tree.Insert([]seq.Symbol{0, 1, 2, 0, 1})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Header layout after the 6-byte magic: alphabet(int64), maxDepth(int64),
// significance(int64), maxBytes(int64), prune(int64), pmin(float64),
// adaptive(byte), shrinkage(float64), insertions(int64), pruned(int64),
// numNodes(int64). First node starts at byte 97.
const (
	offAlphabet  = 6
	offMaxDepth  = 14
	offNumNodes  = 79
	offFirstNode = 87
)

func TestLoadFailsFastOnOversizedHeader(t *testing.T) {
	patch := func(data []byte, off int, v uint64) []byte {
		out := append([]byte(nil), data...)
		for i := 0; i < 8; i++ {
			out[off+i] = byte(v >> (8 * i))
		}
		return out
	}
	base := savedTestTree(t)
	cases := map[string][]byte{
		// Each would previously attempt (or begin) a huge allocation or
		// an unbounded walk; all must be rejected on the header alone.
		"giant alphabet":     patch(base, offAlphabet, 1<<40),
		"alphabet over max":  patch(base, offAlphabet, uint64(seq.MaxAlphabetSize)+1),
		"zero alphabet":      patch(base, offAlphabet, 0),
		"giant node count":   patch(base, offNumNodes, 1<<40),
		"zero node count":    patch(base, offNumNodes, 0),
		"negative max depth": patch(base, offMaxDepth, ^uint64(0)),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Load should fail", name)
		}
	}
}

func TestLoadRejectsOversizedChildCount(t *testing.T) {
	data := savedTestTree(t)
	// Root node layout: symbol(uint16), count(int64), nonZero(uint32),
	// children(uint32). Clobber the child count with a value far beyond
	// the declared node total; the loader must refuse before pre-sizing
	// a map for it.
	off := offFirstNode + 2 + 8 + 4
	for i, b := range []byte{0xFF, 0xFF, 0xFF, 0x7F} {
		data[off+i] = b
	}
	_, err := Load(bytes.NewReader(data))
	if err == nil {
		t.Fatal("Load should reject a child count beyond the declared node total")
	}
	if !strings.Contains(err.Error(), "children") {
		t.Fatalf("error should name the child-count section, got: %v", err)
	}
}

func TestLoadErrorsNameSection(t *testing.T) {
	data := savedTestTree(t)
	// Truncate inside the header, then inside a node: the error must say
	// which section was being read, not surface a bare EOF.
	for _, cut := range []struct {
		name, want string
		at         int
	}{
		{"header", "header field", offAlphabet + 3},
		{"node", "node 0", offFirstNode + 1},
	} {
		_, err := Load(bytes.NewReader(data[:cut.at]))
		if err == nil {
			t.Fatalf("%s: Load should fail on truncation", cut.name)
		}
		if !strings.Contains(err.Error(), cut.want) {
			t.Fatalf("%s: error %q should mention %q", cut.name, err, cut.want)
		}
	}
}
