package pst

import (
	"math"
	"math/rand/v2"
	"testing"

	"cluseq/internal/seq"
)

func TestPredictShrunkBlendsTowardParent(t *testing.T) {
	// Hand-wired two-level tree: root says P(a)=0.5, context "a" observed
	// 4 times always followed by a. With κ=4, the blend must sit exactly
	// between the child's empirical 1.0 and the root's 0.5:
	// (4·1 + 4·0.5)/(4+4) = 0.75.
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 2, Significance: 1, Shrinkage: 4})
	root := tr.Root()
	root.Count = 100
	root.next[0], root.next[1] = 50, 50
	na := tr.ensureChild(root, 0)
	na.Count = 4
	na.next[0] = 4

	got := tr.Predict([]seq.Symbol{0}, 0)
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("shrunk P(a|a) = %v, want 0.75", got)
	}
	// Unseen context symbol: blend of child 0 and root 0.5.
	got = tr.Predict([]seq.Symbol{0}, 1)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("shrunk P(b|a) = %v, want 0.25", got)
	}
	// Missing context: falls back to the deepest existing node (root).
	got = tr.Predict([]seq.Symbol{1}, 0)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("shrunk P(a|b) = %v, want root 0.5", got)
	}
}

func TestPredictShrunkDeepCountsDominate(t *testing.T) {
	// A heavily observed deep context must override its parent.
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 2, Significance: 1, Shrinkage: 4})
	root := tr.Root()
	root.Count = 1000
	root.next[0], root.next[1] = 500, 500
	na := tr.ensureChild(root, 0)
	na.Count = 10000
	na.next[1] = 10000 // after "a", always b
	got := tr.Predict([]seq.Symbol{0}, 1)
	if got < 0.99 {
		t.Fatalf("shrunk P(b|a) = %v, want ≈ 1 for overwhelming counts", got)
	}
}

func TestShrinkageSimilarityConsistent(t *testing.T) {
	// The DP with shrinkage must equal position-by-position Predict-based
	// brute force, like the plain estimator does.
	rng := rand.New(rand.NewPCG(41, 42))
	tr := MustNew(Config{AlphabetSize: 3, MaxDepth: 4, Significance: 2, Shrinkage: 6, PMin: 0.01})
	tr.Insert(randomSymbols(rng, 150, 3))
	probe := randomSymbols(rng, 40, 3)
	bg := []float64{0.4, 0.35, 0.25}

	logX := make([]float64, len(probe))
	for i, sym := range probe {
		lo := i - 4
		if lo < 0 {
			lo = 0
		}
		p := tr.Predict(probe[lo:i], sym)
		logX[i] = math.Log(p) - math.Log(bg[sym])
	}
	want := math.Inf(-1)
	for i := range probe {
		sum := 0.0
		for j := i; j < len(probe); j++ {
			sum += logX[j]
			if sum > want {
				want = sum
			}
		}
	}
	got := tr.Similarity(probe, bg)
	if math.Abs(got.LogSim-want) > 1e-9 {
		t.Fatalf("shrinkage similarity %v, brute force %v", got.LogSim, want)
	}
	// SimilarityFast must fall back and agree too.
	fast := tr.SimilarityFast(probe, bg)
	if fast.LogSim != got.LogSim {
		t.Fatalf("fast scan with shrinkage %v != %v", fast.LogSim, got.LogSim)
	}
}

func TestSimilaritySeq(t *testing.T) {
	a := seq.MustAlphabet("ab")
	tr := MustNew(Config{AlphabetSize: 2, MaxDepth: 3, Significance: 1, PMin: 0.01})
	syms, _ := a.Encode("ababab")
	tr.Insert(syms)
	s := &seq.Sequence{ID: "x", Symbols: syms}
	bg := []float64{0.5, 0.5}
	if got, want := tr.SimilaritySeq(s, bg), tr.Similarity(syms, bg); got != want {
		t.Fatalf("SimilaritySeq = %+v, want %+v", got, want)
	}
}
