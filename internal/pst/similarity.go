package pst

import (
	"fmt"
	"math"

	"cluseq/internal/seq"
)

// Similarity is the result of evaluating SIM_S(σ) (paper Equation 1): the
// maximum, over all contiguous segments of σ, of the likelihood ratio
// between the segment under the cluster's CPD and under the memoryless
// background.
type Similarity struct {
	// LogSim is ln SIM_S(σ). The similarity itself can overflow float64
	// for long well-matching sequences (a product of l per-symbol ratios),
	// so all internal comparisons are carried out in the log domain.
	LogSim float64
	// Start and End delimit the best-scoring segment σ[Start:End) — the
	// segment §4.2 inserts into the cluster's tree when the sequence
	// joins.
	Start, End int
}

// Sim returns the similarity in the linear domain. It may be +Inf when the
// log similarity exceeds float64 range; compare thresholds via LogSim or
// Exceeds instead when that matters.
func (s Similarity) Sim() float64 { return math.Exp(s.LogSim) }

// Exceeds reports whether the similarity is at least the threshold t
// (compared in the log domain, immune to overflow).
func (s Similarity) Exceeds(t float64) bool {
	if t <= 0 {
		return true
	}
	return s.LogSim >= math.Log(t)
}

// Similarity computes SIM via the §4.3 dynamic program in a single scan.
// background holds the memoryless symbol probabilities p(s) of the whole
// database (seq.Database.SymbolFrequencies); its length must equal the
// alphabet size.
//
// Per-position ratios X_i = P_S(s_i | s_1…s_{i−1})/p(s_i) use the
// prediction-node lookup of §3, so the effective context is the longest
// significant suffix of the (up to MaxDepth) preceding symbols. The
// recurrences
//
//	Y_i = max(Y_{i−1}·X_i, X_i)   Z_i = max(Z_{i−1}, Y_i)
//
// run in the log domain; a zero probability (possible only when PMin is
// zero) contributes −Inf and naturally restarts the running segment.
//
//cluseq:hotpath
func (t *Tree) Similarity(symbols []seq.Symbol, background []float64) Similarity {
	if len(background) != t.cfg.AlphabetSize {
		panic(fmt.Sprintf("pst: background distribution has %d entries, alphabet has %d", len(background), t.cfg.AlphabetSize)) //cluseq:allow hotpath: contract violation; dying loudly beats scoring garbage
	}
	if len(symbols) == 0 {
		return Similarity{LogSim: math.Inf(-1)}
	}
	L := t.cfg.MaxDepth
	logBg := t.logBackground(background)

	best := Similarity{LogSim: math.Inf(-1)}
	logY := math.Inf(-1)
	yStart := 0

	// Contexts are bounded by the short-memory depth L, so each
	// prediction-node walk costs O(L) and the whole scan O(l·L) — the
	// linear-time variant §4.3 alludes to, rather than its O(l²) worst
	// case for unbounded contexts.
	for i, sym := range symbols {
		lo := i - L
		if lo < 0 {
			lo = 0
		}
		p := t.adjust(t.estimate(symbols[lo:i], sym))
		var logX float64
		if p <= 0 {
			logX = math.Inf(-1)
		} else {
			logX = math.Log(p) - logBg[sym] //cluseq:allow hotpath: one Log per symbol is inherent to the tree-shaped scan; the compiled snapshot folds it into a table
		}

		if logY+logX >= logX { // extending beats restarting (logY >= 0)
			logY += logX
		} else {
			logY = logX
			yStart = i
		}
		if logY > best.LogSim {
			best.LogSim = logY
			best.Start = yStart
			best.End = i + 1
		}
	}
	return best
}

// logBgMemo is one immutable (source, ln(source)) pair. It is published
// through an atomic pointer and never mutated after publication, so
// readers take no lock.
type logBgMemo struct {
	src   []float64
	logBg []float64
}

// logBackground caches ln(background) between calls: the similarity scan
// is the hot loop of the whole clustering algorithm and the background
// distribution is shared across every call of a run. The memo is an
// atomic immutable publish rather than a mutex-guarded cache — every
// scoring worker of a run hits this path for every Similarity* call
// against the same frozen tree, and a per-tree mutex here measurably
// serialized the engine's parallel scoring phase. Concurrent misses may
// each compute the table once; ln is deterministic, so whichever
// publication wins is identical.
//
//cluseq:hotpath
func (t *Tree) logBackground(background []float64) []float64 {
	if m := t.logBg.Load(); m != nil && len(m.src) == len(background) && &m.src[0] == &background[0] {
		return m.logBg
	}
	return t.buildLogBg(background) //cluseq:allow hotpath: cold miss; builds and publishes the memo once per (tree, background) pair
}

// buildLogBg computes and publishes the ln(background) memo — the cold
// side of logBackground, kept out of the annotated hot path because it
// allocates by design.
func (t *Tree) buildLogBg(background []float64) []float64 {
	logBg := make([]float64, len(background))
	for i, v := range background {
		logBg[i] = math.Log(v)
	}
	t.logBg.Store(&logBgMemo{src: background, logBg: logBg})
	return logBg
}

// SimilaritySeq is Similarity applied to a seq.Sequence.
//
//cluseq:hotpath
func (t *Tree) SimilaritySeq(s *seq.Sequence, background []float64) Similarity {
	return t.Similarity(s.Symbols, background)
}

// LogLikelihoodRatio returns ln(P_S(σ)/P^r(σ)) for the entire sequence —
// the un-maximized similarity sim_S(σ) of §2, exposed for diagnostics and
// for tests that cross-check the DP.
func (t *Tree) LogLikelihoodRatio(symbols []seq.Symbol, background []float64) float64 {
	total := 0.0
	L := t.cfg.MaxDepth
	for i, sym := range symbols {
		lo := i - L
		if lo < 0 {
			lo = 0
		}
		p := t.adjust(t.estimate(symbols[lo:i], sym))
		if p <= 0 {
			return math.Inf(-1)
		}
		total += math.Log(p) - math.Log(background[sym])
	}
	return total
}
