package pst

import (
	"fmt"
	"math"

	"cluseq/internal/seq"
)

// Snapshot is an immutable, flat compilation of the scoring-relevant
// structure of a Tree at one Version, specialized for one background
// distribution. It exists because the §4.3 similarity scan is the hot
// loop of everything built on this package — clustering iterations,
// batch classification, the serving daemon — and the pointer-shaped
// Tree pays per scored symbol for work that is invariant while the tree
// is frozen:
//
//   - the Weiner-link extension / parent-climb loop of SimilarityFast
//     becomes one transition step: a table load for nodes whose
//     extension row is dense, a binary search over a sorted CSR row
//     with parent fallback for the (typically long) sparse tail,
//   - the climb to the deepest significant ancestor becomes a
//     precomputed per-node row index, and
//   - the per-symbol probability adjustment (§5.2 PMin), the math.Log
//     call, and the background-log subtraction are all folded into a
//     precomputed ln P̂(s|ctx) − ln p(s) table — the scan performs zero
//     logarithms and acquires zero locks.
//
// Everything the scan reads lives in one contiguous arena (see
// arena.go): structure-of-arrays node storage with no per-node Go
// objects and no maps, so a snapshot is a single allocation whose
// serialized form is its in-memory form — bundle format v3 stores the
// arena verbatim and the registry can mmap it back without parsing.
//
// Dense-vs-CSR is chosen per node at compile time: a node whose full
// extensions cover at least 1/denseOccupancy of the alphabet gets a
// fully resolved dense transition row (fallback already applied), every
// other node stores only its own sorted extensions and the scan climbs
// the BFS parent chain on a miss. The root is always dense, so every
// climb terminates in O(depth) with the usual amortization argument.
// This is what keeps large alphabets fast: the handful of shallow,
// high-occupancy nodes that dominate transition traffic stay O(1)
// without paying numNodes·n table bytes for the sparse tail.
//
// The compilation is exact, not approximate: Similarity returns results
// bit-identical to Tree.SimilarityFast and Tree.Similarity (same
// LogSim, Start, End, in every estimation mode). Two facts make the
// node-level precomputation sound:
//
//   - a node's occurrence count never exceeds its parent's (a context's
//     occurrences are a subset of its suffix's), so significance is
//     monotone along every root path and "deepest significant
//     ancestor-or-self of the deepest matching node" is exactly the
//     prediction node §3's root-down walk finds;
//   - the effective significance threshold (including the adaptive
//     variant) depends only on tree state, which is frozen at compile
//     time.
//
// The O(1)-per-symbol transition automaton has one additional soundness
// requirement: the tree must be slink-closed — every node's context
// minus its most recent symbol must itself be a node. Insert maintains
// that closure (every context's suffixes are contexts of earlier
// positions), but pruning can evict a node w while a node w·s survives
// on another branch; the deepest-match state is then not a function of
// (previous state, symbol) and no per-node transition table is exact.
// For such trees the compiler falls back to a bounded-descent mode that
// replays §3's root-down prediction walk over flat sorted child arrays:
// O(L) per symbol like Tree.Similarity, but still allocation-, lock-
// and logarithm-free.
//
// Shrinkage-mode trees (Config.Shrinkage > 0) blend probabilities along
// the whole context path, which does not flatten into a per-node table;
// for those the Snapshot transparently delegates to Tree.Similarity, so
// callers can compile unconditionally and keep one code path.
//
// A Snapshot never observes later tree mutations: it copies everything
// it needs at compile time (the delegating shrinkage path relies on the
// caller's freeze discipline, exactly as SimilarityFast always has).
// Callers detect staleness with Valid, which compares the tree identity
// and Version stamp — the same invalidation rule the clustering
// engine's similarity cache uses. A snapshot reconstructed from a
// serialized arena (SnapshotFromArena) has no tree at all — see
// Standalone.
//
// Snapshots are safe for concurrent use by any number of goroutines.
type Snapshot struct {
	tree    *Tree
	version uint64
	n       int // alphabet size

	// delegate: shrinkage-mode estimation cannot be compiled per node;
	// Similarity falls through to tree.Similarity (bit-identical by
	// construction, since that is also SimilarityFast's fallback).
	delegate bool

	// descend: the tree is not slink-closed (pruning evicted interior
	// suffix contexts), so no exact transition automaton exists; scan by
	// bounded root-down descent over the compiled child arrays instead.
	descend  bool
	maxDepth int

	// arena is the one slab every slice below aliases (zero-copy on
	// little-endian hosts); backing pins whatever owns the slab's bytes
	// — an mmap'd file region — for the snapshot's lifetime.
	arena   []byte
	backing any

	// Transition function over compiled node indices (root = 0): the
	// index of the deepest node matching the context after one more
	// symbol. nodeTrans[x] selects x's representation — bit 31 set
	// means denseTrans row (full function, fallback resolved), clear
	// means CSR row (own extensions only; a miss climbs parent).
	nodeTrans  []uint32
	denseTrans []int32
	csrStart   []uint32
	csrSym     []seq.Symbol
	csrDst     []int32
	parent     []int32

	// Descent mode: the tree's own child edges (one more context symbol
	// back in time), sorted per node for binary search.
	childStart []int32
	childSym   []seq.Symbol
	childDst   []int32

	// row[node] indexes the precomputed score row of the node's deepest
	// significant ancestor-or-self; logRatio[row*n + sym] is the fully
	// adjusted ln P̂(sym | ctx) − ln p(sym) (−Inf for impossible symbols).
	row      []int32
	logRatio []float64

	background []float64 // the distribution the ratios were folded with
}

// denseOccupancy picks the dense threshold: a node's transition row is
// compiled dense when extensions·denseOccupancy ≥ alphabet size (the
// root is always dense so parent climbs terminate). 4 means ≥ 25%
// occupancy — below that a binary search over the CSR row is cheaper
// than the cache traffic of an n-wide row. Variable so tests can force
// the all-CSR path (0) or the all-dense path (a huge value) cheaply.
var denseOccupancy = 4

// denseAllLimit is the small-table escape: when numNodes·n fits this
// many entries (int32 each, so 4 MiB — comfortably cache-resident),
// every row is compiled dense and each transition is one load, exactly
// the old global dense table. The per-node occupancy rule only matters
// once the full table would blow the cache anyway.
var denseAllLimit = 1 << 20

// CompileSnapshot compiles the tree's current state against the given
// background distribution (the memoryless p(s) of the database, as for
// Similarity; its length must equal the alphabet size). The tree must
// not be mutated during compilation; afterwards the Snapshot is
// independent of further tree changes (and Valid reports them).
func (t *Tree) CompileSnapshot(background []float64) *Snapshot {
	n := t.cfg.AlphabetSize
	if len(background) != n {
		panic(fmt.Sprintf("pst: background distribution has %d entries, alphabet has %d", len(background), n))
	}
	s := &Snapshot{tree: t, version: t.version}
	if t.cfg.Shrinkage > 0 {
		h := arenaHeader{flags: arenaFlagDelegate, n: uint32(n)}
		arena, hh := buildArena(h, func(offs [numArenaSections]int64, arena []byte) {
			putF64s(arena[offs[secBackground]:], background)
		})
		s.attach(arena, &hh)
		s.background = background
		return s
	}

	// Flatten the tree in breadth-first order with per-node children
	// sorted by edge symbol: a node's parent always precedes it (so the
	// recurrences below read parent data that is already final), sibling
	// order is deterministic, and child lookup becomes a binary search
	// over one contiguous span. The compile path deliberately builds
	// arrays rather than maps — it runs once per (tree version, scoring
	// pass) and must stay cheap relative to the scans it accelerates.
	num := t.numNodes
	nodes := make([]*Node, 0, num)
	parent := make([]int32, num)
	edge := make([]seq.Symbol, num)
	first := make([]seq.Symbol, num) // most recent context symbol (root edge of the path)
	childStart := make([]int32, num+1)
	childSym := make([]seq.Symbol, 0, num-1)
	childDst := make([]int32, 0, num-1)
	nodes = append(nodes, t.root)
	var syms []seq.Symbol
	for head := 0; head < len(nodes); head++ {
		nd := nodes[head]
		childStart[head] = int32(len(childSym))
		syms = syms[:0]
		for sym := range nd.children {
			syms = append(syms, sym)
		}
		for j := 1; j < len(syms); j++ { // insertion sort: child lists are short
			for k := j; k > 0 && syms[k] < syms[k-1]; k-- {
				syms[k], syms[k-1] = syms[k-1], syms[k]
			}
		}
		for _, sym := range syms {
			ci := int32(len(nodes))
			nodes = append(nodes, nd.children[sym])
			parent[ci] = int32(head)
			edge[ci] = sym
			if head == 0 {
				first[ci] = sym
			} else {
				first[ci] = first[head]
			}
			childSym = append(childSym, sym)
			childDst = append(childDst, ci)
		}
	}
	childStart[num] = int32(len(childSym))
	childAt := func(cur int32, sym seq.Symbol) int32 {
		lo, hi := childStart[cur], childStart[cur+1]
		for lo < hi {
			mid := (lo + hi) / 2
			if childSym[mid] < sym {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < childStart[cur+1] && childSym[lo] == sym {
			return childDst[lo]
		}
		return -1
	}

	// Score rows: one per prediction-capable node (root + significant
	// nodes); every other node inherits the row of its deepest
	// significant ancestor — exact because significance is monotone
	// along root paths. The row entries replay the scan's arithmetic —
	// adjust(prob) then Log minus the background log — so the compiled
	// values are bit-identical to what Tree.Similarity computes per
	// symbol.
	logBg := t.logBackground(background)
	row := make([]int32, num)
	rows := 0
	for i, nd := range nodes {
		if i == 0 || t.Significant(nd) {
			row[i] = int32(rows)
			rows++
		} else {
			row[i] = row[parent[i]]
		}
	}
	logRatio := make([]float64, rows*n)
	for i, nd := range nodes {
		if i != 0 && !t.Significant(nd) {
			continue
		}
		base := int(row[i]) * n
		for sym := 0; sym < n; sym++ {
			p := t.adjust(t.prob(nd, seq.Symbol(sym)))
			if p <= 0 {
				logRatio[base+sym] = math.Inf(-1)
			} else {
				logRatio[base+sym] = math.Log(p) - logBg[sym]
			}
		}
	}

	// Suffix links, recomputed from structure alone (so pruned and
	// deserialized trees — whose in-tree fastscan links are invalid —
	// compile just as well): sl[x] is the node for x's context minus its
	// most recent symbol, via the same recurrence attachLinks uses,
	// sl[x] = child(sl[parent[x]], edge[x]).
	//
	// The links double as the slink-closure check. Every depth ≥ 1 node
	// y is the full extension (one more recent symbol) of exactly one
	// candidate node — sl[y] — so the transition automaton below is
	// exact iff every sl resolves. A miss means pruning evicted an
	// interior suffix context: the deepest match then depends on history
	// beyond the current automaton state and no per-node transition
	// table is exact, so the snapshot keeps the child arrays and scans
	// by bounded descent instead (mirroring how SimilarityFast abandons
	// its links after pruning).
	sl := make([]int32, num)
	closed := true
	for i := 1; i < num && closed; i++ {
		if nodes[i].depth == 1 {
			continue // sl = root
		}
		target := childAt(sl[parent[i]], edge[i])
		if target < 0 {
			closed = false
			break
		}
		sl[i] = target
	}
	if !closed {
		h := arenaHeader{
			flags:      arenaFlagDescend,
			n:          uint32(n),
			numNodes:   uint32(num),
			rows:       uint32(rows),
			childEdges: uint32(num - 1),
			maxDepth:   uint32(t.cfg.MaxDepth),
		}
		arena, hh := buildArena(h, func(offs [numArenaSections]int64, arena []byte) {
			putF64s(arena[offs[secLogRatio]:], logRatio)
			putF64s(arena[offs[secBackground]:], background)
			putU32s(arena[offs[secRow]:], row)
			putU32s(arena[offs[secChildStart]:], childStart)
			putU32s(arena[offs[secChildDst]:], childDst)
			putU16s(arena[offs[secChildSym]:], childSym)
		})
		s.attach(arena, &hh)
		s.background = background
		return s
	}

	// Full-extension lists, grouped by source: y extends sl[y] by
	// first[y] (the node whose context is sl[y]'s context with first[y]
	// appended as the new most recent symbol). Counting sort by source
	// keeps compilation linear; each source's extensions are then
	// symbol-sorted for the CSR binary search.
	extCount := make([]int32, num+1)
	for y := 1; y < num; y++ {
		extCount[sl[y]+1]++
	}
	extStart := make([]int32, num+1)
	for i := 0; i < num; i++ {
		extStart[i+1] = extStart[i] + extCount[i+1]
	}
	extSym := make([]seq.Symbol, num-1)
	extDst := make([]int32, num-1)
	fill := make([]int32, num)
	copy(fill, extStart[:num])
	for y := 1; y < num; y++ {
		src := sl[y]
		p := fill[src]
		fill[src]++
		extSym[p] = first[y]
		extDst[p] = int32(y)
	}
	for i := 0; i < num; i++ {
		lo, hi := int(extStart[i]), int(extStart[i+1])
		for j := lo + 1; j < hi; j++ {
			for k := j; k > lo && extSym[k] < extSym[k-1]; k-- {
				extSym[k], extSym[k-1] = extSym[k-1], extSym[k]
				extDst[k], extDst[k-1] = extDst[k-1], extDst[k]
			}
		}
	}

	// Per-node representation choice. The deepest match after consuming
	// sym is the full extension of the deepest ancestor-or-self that
	// has one — trans[x][sym] = ext(x, sym), else trans[parent(x)][sym]
	// — and each node stores that function either as a fully resolved
	// dense row or as its own extensions in CSR form with the fallback
	// left to the scan's parent climb.
	nodeTrans := make([]uint32, num)
	denseRows, csrRows, csrEdges := 0, 0, 0
	allDense := num <= denseAllLimit/n
	for i := 0; i < num; i++ {
		ext := int(extStart[i+1] - extStart[i])
		if i == 0 || allDense || ext*denseOccupancy >= n {
			nodeTrans[i] = denseFlag | uint32(denseRows)
			denseRows++
		} else {
			nodeTrans[i] = uint32(csrRows)
			csrRows++
			csrEdges += ext
		}
	}

	// Dense rows resolve the fallback at compile time: start from the
	// nearest dense ancestor's final row (the root's base row is all
	// zeroes — stay at the root), overlay the extension overrides of
	// each intervening CSR ancestor shallowest-first, then the node's
	// own. BFS order guarantees every ancestor row is final before its
	// descendants copy it.
	denseTrans := make([]int32, denseRows*n)
	var chain []int32
	for i := 0; i < num; i++ {
		tr := nodeTrans[i]
		if tr < denseFlag {
			continue
		}
		base := int(tr-denseFlag) * n
		if i != 0 {
			chain = chain[:0]
			a := parent[i]
			for nodeTrans[a] < denseFlag {
				chain = append(chain, a)
				a = parent[a]
			}
			src := int(nodeTrans[a]-denseFlag) * n
			copy(denseTrans[base:base+n], denseTrans[src:src+n])
			for k := len(chain) - 1; k >= 0; k-- {
				c := chain[k]
				for j := extStart[c]; j < extStart[c+1]; j++ {
					denseTrans[base+int(extSym[j])] = extDst[j]
				}
			}
		}
		for j := extStart[i]; j < extStart[i+1]; j++ {
			denseTrans[base+int(extSym[j])] = extDst[j]
		}
	}

	// CSR rows in BFS order (row ids were assigned in the same order,
	// so csrStart fills monotonically).
	csrStart := make([]uint32, csrRows+1)
	csrSym := make([]seq.Symbol, csrEdges)
	csrDst := make([]int32, csrEdges)
	pos := 0
	for i := 0; i < num; i++ {
		tr := nodeTrans[i]
		if tr >= denseFlag {
			continue
		}
		csrStart[tr] = uint32(pos)
		for j := extStart[i]; j < extStart[i+1]; j++ {
			csrSym[pos] = extSym[j]
			csrDst[pos] = extDst[j]
			pos++
		}
	}
	csrStart[csrRows] = uint32(pos)

	h := arenaHeader{
		n:         uint32(n),
		numNodes:  uint32(num),
		rows:      uint32(rows),
		denseRows: uint32(denseRows),
		csrRows:   uint32(csrRows),
		csrEdges:  uint32(csrEdges),
		maxDepth:  uint32(t.cfg.MaxDepth),
	}
	arena, hh := buildArena(h, func(offs [numArenaSections]int64, arena []byte) {
		putF64s(arena[offs[secLogRatio]:], logRatio)
		putF64s(arena[offs[secBackground]:], background)
		putU32s(arena[offs[secNodeTrans]:], nodeTrans)
		putU32s(arena[offs[secParent]:], parent)
		putU32s(arena[offs[secRow]:], row)
		putU32s(arena[offs[secDenseTrans]:], denseTrans)
		putU32s(arena[offs[secCsrStart]:], csrStart)
		putU32s(arena[offs[secCsrDst]:], csrDst)
		putU16s(arena[offs[secCsrSym]:], csrSym)
	})
	s.attach(arena, &hh)
	s.background = background
	return s
}

// Version returns the tree Version the snapshot was compiled at.
func (s *Snapshot) Version() uint64 { return s.version }

// Tree returns the tree the snapshot was compiled from, or nil for a
// snapshot reconstructed from a serialized arena.
func (s *Snapshot) Tree() *Tree { return s.tree }

// Standalone reports whether the snapshot was reconstructed from a
// serialized arena rather than compiled from a live tree: it can never
// go stale (there is no tree to mutate) and Valid is the wrong
// staleness test for it.
func (s *Snapshot) Standalone() bool { return s != nil && s.tree == nil }

// Background returns the background distribution the snapshot's log
// ratios were folded with. Callers must not mutate it.
func (s *Snapshot) Background() []float64 { return s.background }

// Delegates reports whether the snapshot delegates scanning to the
// tree (shrinkage estimation): its arena carries no tables, so
// serializing such a cluster requires the tree itself.
func (s *Snapshot) Delegates() bool { return s.delegate }

// Valid reports whether the snapshot still reflects t exactly: it was
// compiled from this very tree and the tree has not mutated since. This
// is the same version-stamp rule that makes the engine's similarity
// cache exact (see Tree.Version).
//
//cluseq:hotpath
func (s *Snapshot) Valid(t *Tree) bool {
	return s != nil && s.tree == t && s.version == t.Version()
}

// child returns the compiled index of cur's child along edge symbol sym,
// or −1 — the descent-mode equivalent of the tree's child-map lookup.
//
//cluseq:hotpath
func (s *Snapshot) child(cur int32, sym seq.Symbol) int32 {
	lo, hi := s.childStart[cur], s.childStart[cur+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if s.childSym[mid] < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.childStart[cur+1] && s.childSym[lo] == sym {
		return s.childDst[lo]
	}
	return -1
}

// similarityDescend is the exact compiled replay of Tree.Similarity for
// trees without slink closure: a bounded root-down descent locates each
// position's deepest matching node, and the precomputed rows supply the
// adjusted log ratio. O(l·L) like the tree scan it mirrors, but free of
// pointer chasing, locks, and logarithms.
//
//cluseq:hotpath
func (s *Snapshot) similarityDescend(symbols []seq.Symbol) Similarity {
	best := Similarity{LogSim: math.Inf(-1)}
	logY := math.Inf(-1)
	yStart := 0
	n := s.n
	for i, sym := range symbols {
		var cur int32
		for d := 1; d <= s.maxDepth && i-d >= 0; d++ {
			c := s.child(cur, symbols[i-d])
			if c < 0 {
				break
			}
			cur = c
		}
		logX := s.logRatio[int(s.row[cur])*n+int(sym)]
		if logY+logX >= logX {
			logY += logX
		} else {
			logY = logX
			yStart = i
		}
		if logY > best.LogSim {
			best.LogSim = logY
			best.Start = yStart
			best.End = i + 1
		}
	}
	return best
}

// stepCSR advances the transition function from a CSR node: binary
// search the node's own sorted extensions, and on a miss climb the BFS
// parent chain — the next shorter context suffix — until a CSR row
// hits or a dense ancestor resolves the step outright. The root row is
// always dense, so the climb terminates.
//
//cluseq:hotpath
func (s *Snapshot) stepCSR(tr uint32, cur int32, sym seq.Symbol) int32 {
	for {
		lo, hi := s.csrStart[tr], s.csrStart[tr+1]
		for lo < hi {
			mid := (lo + hi) / 2
			if s.csrSym[mid] < sym {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < s.csrStart[tr+1] && s.csrSym[lo] == sym {
			return s.csrDst[lo]
		}
		cur = s.parent[cur]
		tr = s.nodeTrans[cur]
		if tr >= denseFlag {
			return s.denseTrans[int(tr-denseFlag)*s.n+int(sym)]
		}
	}
}

// Similarity computes SIM_S(σ) exactly as Tree.Similarity and
// Tree.SimilarityFast do — same dynamic program, bit-identical result —
// against the background distribution the snapshot was compiled with.
// It performs no locking, no logarithms, and no allocation; each scored
// symbol costs one table load for the score and one transition step.
//
//cluseq:hotpath
func (s *Snapshot) Similarity(symbols []seq.Symbol) Similarity {
	if s.delegate {
		return s.tree.Similarity(symbols, s.background)
	}
	if len(symbols) == 0 {
		return Similarity{LogSim: math.Inf(-1)}
	}
	if s.descend {
		return s.similarityDescend(symbols)
	}
	best := Similarity{LogSim: math.Inf(-1)}
	logY := math.Inf(-1)
	yStart := 0

	n := s.n
	row, ratio := s.row, s.logRatio
	nodeTrans, dense := s.nodeTrans, s.denseTrans
	var cur int32 // deepest node matching the current context suffix
	for i, sym := range symbols {
		logX := ratio[int(row[cur])*n+int(sym)]
		if logY+logX >= logX { // extending beats restarting (logY >= 0)
			logY += logX
		} else {
			logY = logX
			yStart = i
		}
		if logY > best.LogSim {
			best.LogSim = logY
			best.Start = yStart
			best.End = i + 1
		}
		if tr := nodeTrans[cur]; tr >= denseFlag {
			cur = dense[int(tr-denseFlag)*n+int(sym)]
		} else {
			cur = s.stepCSR(tr, cur, sym)
		}
	}
	return best
}

// SimilaritySeq is Similarity applied to a seq.Sequence.
//
//cluseq:hotpath
func (s *Snapshot) SimilaritySeq(sq *seq.Sequence) Similarity {
	return s.Similarity(sq.Symbols)
}
