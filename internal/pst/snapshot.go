package pst

import (
	"fmt"
	"math"

	"cluseq/internal/seq"
)

// Snapshot is an immutable, flat compilation of the scoring-relevant
// structure of a Tree at one Version, specialized for one background
// distribution. It exists because the §4.3 similarity scan is the hot
// loop of everything built on this package — clustering iterations,
// batch classification, the serving daemon — and the pointer-shaped
// Tree pays per scored symbol for work that is invariant while the tree
// is frozen:
//
//   - the Weiner-link extension / parent-climb loop of SimilarityFast
//     becomes one transition-table lookup (trans[node·n+sym] when the
//     table fits a budget, a sorted-edge walk with parent fallback
//     otherwise),
//   - the climb to the deepest significant ancestor becomes a
//     precomputed per-node row index, and
//   - the per-symbol probability adjustment (§5.2 PMin), the math.Log
//     call, and the background-log subtraction are all folded into a
//     precomputed ln P̂(s|ctx) − ln p(s) table — the scan performs zero
//     logarithms and acquires zero locks.
//
// The compilation is exact, not approximate: Similarity returns results
// bit-identical to Tree.SimilarityFast and Tree.Similarity (same
// LogSim, Start, End, in every estimation mode). Two facts make the
// node-level precomputation sound:
//
//   - a node's occurrence count never exceeds its parent's (a context's
//     occurrences are a subset of its suffix's), so significance is
//     monotone along every root path and "deepest significant
//     ancestor-or-self of the deepest matching node" is exactly the
//     prediction node §3's root-down walk finds;
//   - the effective significance threshold (including the adaptive
//     variant) depends only on tree state, which is frozen at compile
//     time.
//
// The O(1)-per-symbol transition automaton has one additional soundness
// requirement: the tree must be slink-closed — every node's context
// minus its most recent symbol must itself be a node. Insert maintains
// that closure (every context's suffixes are contexts of earlier
// positions), but pruning can evict a node w while a node w·s survives
// on another branch; the deepest-match state is then not a function of
// (previous state, symbol) and no per-node transition table is exact.
// For such trees the compiler falls back to a bounded-descent mode that
// replays §3's root-down prediction walk over flat sorted child arrays:
// O(L) per symbol like Tree.Similarity, but still allocation-, lock-
// and logarithm-free.
//
// Shrinkage-mode trees (Config.Shrinkage > 0) blend probabilities along
// the whole context path, which does not flatten into a per-node table;
// for those the Snapshot transparently delegates to Tree.Similarity, so
// callers can compile unconditionally and keep one code path.
//
// A Snapshot never observes later tree mutations: it copies everything
// it needs at compile time (the delegating shrinkage path relies on the
// caller's freeze discipline, exactly as SimilarityFast always has).
// Callers detect staleness with Valid, which compares the tree identity
// and Version stamp — the same invalidation rule the clustering
// engine's similarity cache uses.
//
// Snapshots are safe for concurrent use by any number of goroutines.
type Snapshot struct {
	tree    *Tree
	version uint64
	n       int // alphabet size

	// delegate: shrinkage-mode estimation cannot be compiled per node;
	// Similarity falls through to tree.Similarity (bit-identical by
	// construction, since that is also SimilarityFast's fallback).
	delegate bool

	// descend: the tree is not slink-closed (pruning evicted interior
	// suffix contexts), so no exact transition automaton exists; scan by
	// bounded root-down descent over the compiled child arrays instead.
	descend  bool
	maxDepth int

	// Transition function over compiled node indices (root = 0): the
	// index of the deepest node matching the context after one more
	// symbol. Dense when numNodes·n fits denseTransLimit.
	dense bool
	trans []int32 // dense: trans[node*n + sym]

	// Sparse fallback: per node, the symbols whose full extension
	// (context·sym as the new most recent symbol) exists in the tree,
	// sorted for binary search; a miss retries on the parent, whose
	// context is the next shorter suffix.
	edgeStart []int32
	edgeSym   []seq.Symbol
	edgeDst   []int32
	parent    []int32

	// Descent mode: the tree's own child edges (one more context symbol
	// back in time), sorted per node for binary search.
	childStart []int32
	childSym   []seq.Symbol
	childDst   []int32

	// row[node] indexes the precomputed score row of the node's deepest
	// significant ancestor-or-self; logRatio[row*n + sym] is the fully
	// adjusted ln P̂(sym | ctx) − ln p(sym) (−Inf for impossible symbols).
	row      []int32
	logRatio []float64

	background []float64 // the distribution the ratios were folded with
}

// denseTransLimit caps the dense transition table at numNodes·alphabet
// entries (int32 each, so 16 MiB at the default). Beyond it compilation
// switches to the sorted-edge representation, trading the O(1) lookup
// for an amortized-O(1) climb — the same amortization argument as the
// fastscan links. Variable so tests can force the sparse path cheaply.
var denseTransLimit = 1 << 22

// CompileSnapshot compiles the tree's current state against the given
// background distribution (the memoryless p(s) of the database, as for
// Similarity; its length must equal the alphabet size). The tree must
// not be mutated during compilation; afterwards the Snapshot is
// independent of further tree changes (and Valid reports them).
func (t *Tree) CompileSnapshot(background []float64) *Snapshot {
	if len(background) != t.cfg.AlphabetSize {
		panic(fmt.Sprintf("pst: background distribution has %d entries, alphabet has %d", len(background), t.cfg.AlphabetSize))
	}
	s := &Snapshot{
		tree:       t,
		version:    t.version,
		n:          t.cfg.AlphabetSize,
		background: background,
	}
	if t.cfg.Shrinkage > 0 {
		s.delegate = true
		return s
	}

	// Flatten the tree in breadth-first order with per-node children
	// sorted by edge symbol: a node's parent always precedes it (so the
	// recurrences below read parent data that is already final), sibling
	// order is deterministic, and child lookup becomes a binary search
	// over one contiguous span. The compile path deliberately builds
	// arrays rather than maps — it runs once per (tree version, scoring
	// pass) and must stay cheap relative to the scans it accelerates.
	n := s.n
	num := t.numNodes
	nodes := make([]*Node, 0, num)
	parent := make([]int32, num)
	edge := make([]seq.Symbol, num)
	first := make([]seq.Symbol, num) // most recent context symbol (root edge of the path)
	s.childStart = make([]int32, num+1)
	s.childSym = make([]seq.Symbol, 0, num-1)
	s.childDst = make([]int32, 0, num-1)
	nodes = append(nodes, t.root)
	var syms []seq.Symbol
	for head := 0; head < len(nodes); head++ {
		nd := nodes[head]
		s.childStart[head] = int32(len(s.childSym))
		syms = syms[:0]
		for sym := range nd.children {
			syms = append(syms, sym)
		}
		for j := 1; j < len(syms); j++ { // insertion sort: child lists are short
			for k := j; k > 0 && syms[k] < syms[k-1]; k-- {
				syms[k], syms[k-1] = syms[k-1], syms[k]
			}
		}
		for _, sym := range syms {
			ci := int32(len(nodes))
			nodes = append(nodes, nd.children[sym])
			parent[ci] = int32(head)
			edge[ci] = sym
			if head == 0 {
				first[ci] = sym
			} else {
				first[ci] = first[head]
			}
			s.childSym = append(s.childSym, sym)
			s.childDst = append(s.childDst, ci)
		}
	}
	s.childStart[num] = int32(len(s.childSym))

	// Score rows: one per prediction-capable node (root + significant
	// nodes); every other node inherits the row of its deepest
	// significant ancestor — exact because significance is monotone
	// along root paths. The row entries replay the scan's arithmetic —
	// adjust(prob) then Log minus the background log — so the compiled
	// values are bit-identical to what Tree.Similarity computes per
	// symbol.
	logBg := t.logBackground(background)
	s.row = make([]int32, num)
	rows := 0
	for i, nd := range nodes {
		if i == 0 || t.Significant(nd) {
			s.row[i] = int32(rows)
			rows++
		} else {
			s.row[i] = s.row[parent[i]]
		}
	}
	s.logRatio = make([]float64, rows*n)
	for i, nd := range nodes {
		if i != 0 && !t.Significant(nd) {
			continue
		}
		base := int(s.row[i]) * n
		for sym := 0; sym < n; sym++ {
			p := t.adjust(t.prob(nd, seq.Symbol(sym)))
			if p <= 0 {
				s.logRatio[base+sym] = math.Inf(-1)
			} else {
				s.logRatio[base+sym] = math.Log(p) - logBg[sym]
			}
		}
	}

	// Suffix links, recomputed from structure alone (so pruned and
	// deserialized trees — whose in-tree fastscan links are invalid —
	// compile just as well): sl[x] is the node for x's context minus its
	// most recent symbol, via the same recurrence attachLinks uses,
	// sl[x] = child(sl[parent[x]], edge[x]).
	//
	// The links double as the slink-closure check. Every depth ≥ 1 node
	// y is the full extension (one more recent symbol) of exactly one
	// candidate node — sl[y] — so the transition automaton below is
	// exact iff every sl resolves. A miss means pruning evicted an
	// interior suffix context: the deepest match then depends on history
	// beyond the current automaton state and no per-node transition
	// table is exact, so the snapshot keeps the child arrays and scans
	// by bounded descent instead (mirroring how SimilarityFast abandons
	// its links after pruning).
	sl := make([]int32, num)
	closed := true
	for i := 1; i < num && closed; i++ {
		if nodes[i].depth == 1 {
			continue // sl = root
		}
		target := s.child(sl[parent[i]], edge[i])
		if target < 0 {
			closed = false
			break
		}
		sl[i] = target
	}
	if !closed {
		s.descend = true
		s.maxDepth = t.cfg.MaxDepth
		return s
	}

	// Full-extension lists, grouped by source: y extends sl[y] by
	// first[y] (the node whose context is sl[y]'s context with first[y]
	// appended as the new most recent symbol). Counting sort by source
	// keeps compilation linear.
	extCount := make([]int32, num+1)
	for y := 1; y < num; y++ {
		extCount[sl[y]+1]++
	}
	extStart := make([]int32, num+1)
	for i := 0; i < num; i++ {
		extStart[i+1] = extStart[i] + extCount[i+1]
	}
	extSym := make([]seq.Symbol, num-1)
	extDst := make([]int32, num-1)
	fill := make([]int32, num)
	copy(fill, extStart[:num])
	for y := 1; y < num; y++ {
		src := sl[y]
		p := fill[src]
		fill[src]++
		extSym[p] = first[y]
		extDst[p] = int32(y)
	}

	// Transition tables. The deepest match after consuming sym is the
	// full extension of the deepest ancestor-or-self that has one —
	// trans[x][sym] = ext(x, sym), else trans[parent(x)][sym], with the
	// root transitioning to its sym child or staying put.
	if num*n <= denseTransLimit {
		s.dense = true
		s.trans = make([]int32, num*n)
		// Root row first: its extensions are exactly its children (the
		// suffix link of a depth-1 node is the root) and its non-child
		// transitions stay at the root (index 0, the zero value). Each
		// later row starts as a copy of its parent's final row and then
		// applies its own extension overrides — exactly the
		// trans[x][sym] = ext(x, sym) else trans[parent(x)][sym]
		// recurrence, resolved by BFS order.
		for j := extStart[0]; j < extStart[1]; j++ {
			s.trans[int(extSym[j])] = extDst[j]
		}
		for i := 1; i < num; i++ {
			base := i * n
			copy(s.trans[base:base+n], s.trans[int(parent[i])*n:int(parent[i])*n+n])
			for j := extStart[i]; j < extStart[i+1]; j++ {
				s.trans[base+int(extSym[j])] = extDst[j]
			}
		}
	} else {
		s.parent = parent
		s.edgeStart = extStart
		s.edgeSym = extSym
		s.edgeDst = extDst
		// Sort each source's extensions by symbol for binary search
		// (counting sort grouped but ordered targets by BFS index).
		for i := 0; i < num; i++ {
			lo, hi := int(extStart[i]), int(extStart[i+1])
			for j := lo + 1; j < hi; j++ {
				for k := j; k > lo && extSym[k] < extSym[k-1]; k-- {
					extSym[k], extSym[k-1] = extSym[k-1], extSym[k]
					extDst[k], extDst[k-1] = extDst[k-1], extDst[k]
				}
			}
		}
	}
	// The child arrays only serve compilation and descent mode; free
	// them for automaton snapshots.
	s.childStart, s.childSym, s.childDst = nil, nil, nil
	return s
}

// Version returns the tree Version the snapshot was compiled at.
func (s *Snapshot) Version() uint64 { return s.version }

// Tree returns the tree the snapshot was compiled from.
func (s *Snapshot) Tree() *Tree { return s.tree }

// Valid reports whether the snapshot still reflects t exactly: it was
// compiled from this very tree and the tree has not mutated since. This
// is the same version-stamp rule that makes the engine's similarity
// cache exact (see Tree.Version).
//
//cluseq:hotpath
func (s *Snapshot) Valid(t *Tree) bool {
	return s != nil && s.tree == t && s.version == t.Version()
}

// child returns the compiled index of cur's child along edge symbol sym,
// or −1 — the descent-mode equivalent of the tree's child-map lookup.
//
//cluseq:hotpath
func (s *Snapshot) child(cur int32, sym seq.Symbol) int32 {
	lo, hi := s.childStart[cur], s.childStart[cur+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if s.childSym[mid] < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.childStart[cur+1] && s.childSym[lo] == sym {
		return s.childDst[lo]
	}
	return -1
}

// similarityDescend is the exact compiled replay of Tree.Similarity for
// trees without slink closure: a bounded root-down descent locates each
// position's deepest matching node, and the precomputed rows supply the
// adjusted log ratio. O(l·L) like the tree scan it mirrors, but free of
// pointer chasing, locks, and logarithms.
//
//cluseq:hotpath
func (s *Snapshot) similarityDescend(symbols []seq.Symbol) Similarity {
	best := Similarity{LogSim: math.Inf(-1)}
	logY := math.Inf(-1)
	yStart := 0
	n := s.n
	for i, sym := range symbols {
		var cur int32
		for d := 1; d <= s.maxDepth && i-d >= 0; d++ {
			c := s.child(cur, symbols[i-d])
			if c < 0 {
				break
			}
			cur = c
		}
		logX := s.logRatio[int(s.row[cur])*n+int(sym)]
		if logY+logX >= logX {
			logY += logX
		} else {
			logY = logX
			yStart = i
		}
		if logY > best.LogSim {
			best.LogSim = logY
			best.Start = yStart
			best.End = i + 1
		}
	}
	return best
}

// step advances the sparse transition function: find the sym edge on the
// deepest ancestor-or-self that has one, else land at the root (which
// either steps to its sym child via its own edge list or stays).
//
//cluseq:hotpath
func (s *Snapshot) step(cur int32, sym seq.Symbol) int32 {
	for {
		lo, hi := s.edgeStart[cur], s.edgeStart[cur+1]
		for lo < hi {
			mid := (lo + hi) / 2
			if s.edgeSym[mid] < sym {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < s.edgeStart[cur+1] && s.edgeSym[lo] == sym {
			return s.edgeDst[lo]
		}
		if cur == 0 {
			return 0
		}
		cur = s.parent[cur]
	}
}

// Similarity computes SIM_S(σ) exactly as Tree.Similarity and
// Tree.SimilarityFast do — same dynamic program, bit-identical result —
// against the background distribution the snapshot was compiled with.
// It performs no locking and no logarithms; each scored symbol costs
// one table load for the score and one transition step.
//
//cluseq:hotpath
func (s *Snapshot) Similarity(symbols []seq.Symbol) Similarity {
	if s.delegate {
		return s.tree.Similarity(symbols, s.background)
	}
	if len(symbols) == 0 {
		return Similarity{LogSim: math.Inf(-1)}
	}
	if s.descend {
		return s.similarityDescend(symbols)
	}
	best := Similarity{LogSim: math.Inf(-1)}
	logY := math.Inf(-1)
	yStart := 0

	n := s.n
	row, ratio := s.row, s.logRatio
	var cur int32 // deepest node matching the current context suffix
	for i, sym := range symbols {
		logX := ratio[int(row[cur])*n+int(sym)]
		if logY+logX >= logX { // extending beats restarting (logY >= 0)
			logY += logX
		} else {
			logY = logX
			yStart = i
		}
		if logY > best.LogSim {
			best.LogSim = logY
			best.Start = yStart
			best.End = i + 1
		}
		if s.dense {
			cur = s.trans[int(cur)*n+int(sym)]
		} else {
			cur = s.step(cur, sym)
		}
	}
	return best
}

// SimilaritySeq is Similarity applied to a seq.Sequence.
//
//cluseq:hotpath
func (s *Snapshot) SimilaritySeq(sq *seq.Sequence) Similarity {
	return s.Similarity(sq.Symbols)
}
