package pst

import (
	"math"
	"math/rand/v2"
	"testing"

	"cluseq/internal/seq"
)

// requireIdentical asserts the three scan implementations agree
// bit-for-bit — the defining property of the compiled snapshot.
func requireIdentical(t *testing.T, tree *Tree, snap *Snapshot, probe []seq.Symbol, bg []float64) {
	t.Helper()
	slow := tree.Similarity(probe, bg)
	fast := tree.SimilarityFast(probe, bg)
	comp := snap.Similarity(probe)
	if slow != fast {
		t.Fatalf("SimilarityFast %+v != Similarity %+v (probe %v)", fast, slow, probe)
	}
	if comp != slow {
		t.Fatalf("Snapshot %+v != Similarity %+v (probe %v)", comp, slow, probe)
	}
}

func uniformBg(n int) []float64 {
	bg := make([]float64, n)
	for i := range bg {
		bg[i] = 1 / float64(n)
	}
	return bg
}

// TestSnapshotMatchesTreeRandom sweeps random trees across the
// estimator's configuration space: PMin on/off, adaptive significance,
// and all three transition-row mixes (per-node hybrid, all-dense,
// all-CSR — the latter two forced through the occupancy knob so the
// climb/override code paths are exercised regardless of tree shape).
func TestSnapshotMatchesTreeRandom(t *testing.T) {
	for _, mode := range []struct {
		name      string
		occupancy int
		allLimit  int
	}{
		{"hybrid", 2, 1 << 8},             // tiny escape + low bar: real mixed rows on test-sized trees
		{"dense", 1 << 30, denseAllLimit}, // every extension-bearing row dense
		{"csr", 0, 0},                     // every row but the root CSR
	} {
		t.Run(mode.name, func(t *testing.T) {
			oldOcc, oldAll := denseOccupancy, denseAllLimit
			denseOccupancy, denseAllLimit = mode.occupancy, mode.allLimit
			defer func() { denseOccupancy, denseAllLimit = oldOcc, oldAll }()
			rng := rand.New(rand.NewPCG(41, 42))
			for trial := 0; trial < 80; trial++ {
				alpha := 2 + rng.IntN(7)
				cfg := Config{
					AlphabetSize: alpha,
					MaxDepth:     1 + rng.IntN(6),
					Significance: 1 + rng.IntN(8),
				}
				if rng.IntN(2) == 0 {
					cfg.PMin = 0.5 / float64(alpha) * rng.Float64()
				}
				cfg.AdaptiveSignificance = rng.IntN(2) == 0
				tree := MustNew(cfg)
				for k := 0; k < 1+rng.IntN(4); k++ {
					tree.Insert(randomSymbols(rng, 20+rng.IntN(150), alpha))
				}
				bg := make([]float64, alpha)
				total := 0.0
				for i := range bg {
					bg[i] = 0.1 + rng.Float64()
					total += bg[i]
				}
				for i := range bg {
					bg[i] /= total
				}
				snap := tree.CompileSnapshot(bg)
				if !snap.Valid(tree) {
					t.Fatal("fresh snapshot must be valid")
				}
				for probe := 0; probe < 6; probe++ {
					requireIdentical(t, tree, snap, randomSymbols(rng, 1+rng.IntN(90), alpha), bg)
				}
			}
		})
	}
}

// TestSnapshotPrunedTree compiles from a pruned tree, whose fastscan
// links are invalid: the snapshot rebuilds transitions from structure
// alone and must still match the (fallen-back) tree scans exactly.
func TestSnapshotPrunedTree(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 44))
	tree := MustNew(Config{AlphabetSize: 4, MaxDepth: 5, Significance: 2, PMin: 0.01})
	tree.Insert(randomSymbols(rng, 400, 4))
	tree.Prune(tree.NumNodes() / 2)
	if tree.linksValid {
		t.Fatal("pruning must invalidate the auxiliary links")
	}
	bg := uniformBg(4)
	snap := tree.CompileSnapshot(bg)
	for probe := 0; probe < 20; probe++ {
		requireIdentical(t, tree, snap, randomSymbols(rng, 1+rng.IntN(80), 4), bg)
	}
}

// TestSnapshotNoSmoothing pins the PMin=0 regime, where impossible
// symbols contribute −Inf and restart the running segment.
func TestSnapshotNoSmoothing(t *testing.T) {
	rng := rand.New(rand.NewPCG(45, 46))
	tree := MustNew(Config{AlphabetSize: 3, MaxDepth: 4, Significance: 1})
	tree.Insert(randomSymbols(rng, 50, 2)) // symbol 2 never seen
	bg := []float64{0.4, 0.4, 0.2}
	snap := tree.CompileSnapshot(bg)
	for probe := 0; probe < 20; probe++ {
		requireIdentical(t, tree, snap, randomSymbols(rng, 1+rng.IntN(40), 3), bg)
	}
}

// TestSnapshotShrinkageDelegates covers the shrinkage estimator, which
// cannot be compiled per node: the snapshot must delegate and still be
// exact.
func TestSnapshotShrinkageDelegates(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 48))
	tree := MustNew(Config{AlphabetSize: 5, MaxDepth: 4, Significance: 3, Shrinkage: 8, PMin: 0.01})
	tree.Insert(randomSymbols(rng, 300, 5))
	bg := uniformBg(5)
	snap := tree.CompileSnapshot(bg)
	if !snap.delegate {
		t.Fatal("shrinkage-mode snapshot must delegate to the tree scan")
	}
	for probe := 0; probe < 20; probe++ {
		requireIdentical(t, tree, snap, randomSymbols(rng, 1+rng.IntN(80), 5), bg)
	}
}

// TestSnapshotEmptyTreeAndEmptyProbe pins the degenerate inputs.
func TestSnapshotEmptyTreeAndEmptyProbe(t *testing.T) {
	bg := uniformBg(3)
	for _, pmin := range []float64{0, 0.05} {
		tree := MustNew(Config{AlphabetSize: 3, MaxDepth: 3, Significance: 2, PMin: pmin})
		snap := tree.CompileSnapshot(bg)
		if got := snap.Similarity(nil); !math.IsInf(got.LogSim, -1) || got.Start != 0 || got.End != 0 {
			t.Fatalf("empty probe: got %+v", got)
		}
		requireIdentical(t, tree, snap, []seq.Symbol{0, 1, 2, 2, 1}, bg)
	}
}

// TestSnapshotValidTracksVersion: any tree mutation must invalidate the
// snapshot, and snapshots must not be transferable across trees.
func TestSnapshotValidTracksVersion(t *testing.T) {
	rng := rand.New(rand.NewPCG(49, 50))
	tree := MustNew(Config{AlphabetSize: 4, MaxDepth: 3, Significance: 2})
	tree.Insert(randomSymbols(rng, 60, 4))
	bg := uniformBg(4)
	snap := tree.CompileSnapshot(bg)
	if !snap.Valid(tree) {
		t.Fatal("snapshot must be valid right after compilation")
	}
	other := MustNew(Config{AlphabetSize: 4, MaxDepth: 3, Significance: 2})
	if snap.Valid(other) {
		t.Fatal("snapshot must not validate against a different tree")
	}
	tree.Insert(randomSymbols(rng, 5, 4))
	if snap.Valid(tree) {
		t.Fatal("snapshot must be invalid after a mutation")
	}
	if snap.Version() == tree.Version() {
		t.Fatal("version stamp should lag the mutated tree")
	}
	// The stale snapshot still answers exactly for the state it froze —
	// recompiling at the new version must match the live tree again.
	fresh := tree.CompileSnapshot(bg)
	probe := randomSymbols(rng, 40, 4)
	if got, want := fresh.Similarity(probe), tree.Similarity(probe, bg); got != want {
		t.Fatalf("recompiled snapshot %+v != tree %+v", got, want)
	}
}

// TestSnapshotBackgroundMismatchPanics keeps the compile contract
// aligned with Similarity's.
func TestSnapshotBackgroundMismatchPanics(t *testing.T) {
	tree := MustNew(Config{AlphabetSize: 3, MaxDepth: 3, Significance: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("CompileSnapshot must panic on a mis-sized background")
		}
	}()
	tree.CompileSnapshot([]float64{0.5, 0.5})
}

// FuzzSnapshotSimilarity drives random construction and probes through
// all three scans, including pruning (which exercises the
// links-invalid compile path).
func FuzzSnapshotSimilarity(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 0, 1}, []byte{2, 1, 0}, false)
	f.Add(uint64(7), []byte{3, 3, 3, 1}, []byte{1, 3, 1, 3}, true)
	f.Fuzz(func(t *testing.T, seed uint64, data []byte, probeBytes []byte, prune bool) {
		alpha := 2 + int(seed%7)
		cfg := Config{
			AlphabetSize:         alpha,
			MaxDepth:             1 + int(seed%5),
			Significance:         1 + int(seed%6),
			AdaptiveSignificance: seed%2 == 0,
		}
		if seed%3 == 0 {
			cfg.PMin = 0.1 / float64(alpha)
		}
		tree := MustNew(cfg)
		segment := make([]seq.Symbol, 0, len(data))
		for _, b := range data {
			segment = append(segment, seq.Symbol(int(b)%alpha))
		}
		tree.Insert(segment)
		if prune && tree.NumNodes() > 4 {
			tree.Prune(tree.NumNodes() / 2)
		}
		probe := make([]seq.Symbol, 0, len(probeBytes))
		for _, b := range probeBytes {
			probe = append(probe, seq.Symbol(int(b)%alpha))
		}
		bg := uniformBg(alpha)
		snap := tree.CompileSnapshot(bg)
		slow := tree.Similarity(probe, bg)
		fast := tree.SimilarityFast(probe, bg)
		comp := snap.Similarity(probe)
		if slow != fast || comp != slow {
			t.Fatalf("scan mismatch: slow %+v fast %+v snapshot %+v", slow, fast, comp)
		}
	})
}

// benchTree builds a deterministic scoring workload: a tree grown from
// cluster-like segments plus probe sequences to score against it.
func benchTree(b *testing.B, alpha, seqLen int) (*Tree, [][]seq.Symbol, []float64) {
	b.Helper()
	rng := rand.New(rand.NewPCG(61, 62))
	tree := MustNew(Config{AlphabetSize: alpha, MaxDepth: 6, Significance: 10, PMin: 0.25 / float64(alpha)})
	for i := 0; i < 40; i++ {
		tree.Insert(randomSymbols(rng, seqLen, alpha))
	}
	probes := make([][]seq.Symbol, 16)
	for i := range probes {
		probes[i] = randomSymbols(rng, seqLen, alpha)
	}
	return tree, probes, uniformBg(alpha)
}

// BenchmarkSimilarity compares the pointer-walking tree scans with the
// compiled snapshot on the same workload — the acceptance benchmark for
// the snapshot optimization.
func BenchmarkSimilarity(b *testing.B) {
	for _, size := range []struct {
		name        string
		alpha, slen int
	}{
		{"alpha10_len200", 10, 200},
		{"alpha50_len500", 50, 500},
	} {
		tree, probes, bg := benchTree(b, size.alpha, size.slen)
		snap := tree.CompileSnapshot(bg)
		b.Run(size.name+"/tree", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tree.SimilarityFast(probes[i%len(probes)], bg)
			}
		})
		b.Run(size.name+"/snapshot", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snap.Similarity(probes[i%len(probes)])
			}
		})
	}
}

// BenchmarkCompileSnapshot prices the compilation itself, the cost the
// engine pays once per (cluster, scoring pass).
func BenchmarkCompileSnapshot(b *testing.B) {
	tree, _, bg := benchTree(b, 20, 300)
	b.ReportMetric(float64(tree.NumNodes()), "nodes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.CompileSnapshot(bg)
	}
}
