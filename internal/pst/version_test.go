package pst

import (
	"testing"

	"cluseq/internal/seq"
)

// The engine's similarity cache is stamped with Tree.Version, so its
// exactness reduces to one property: every mutation strictly increases
// the counter, and nothing else changes it.
func TestVersionStrictlyIncreases(t *testing.T) {
	tree := MustNew(Config{AlphabetSize: 4, MaxDepth: 3, Significance: 2})
	if got := tree.Version(); got != 1 {
		t.Fatalf("fresh tree Version() = %d, want 1 (zero stamps must never match)", got)
	}

	last := tree.Version()
	step := func(op string, mutate func()) {
		t.Helper()
		mutate()
		if v := tree.Version(); v <= last {
			t.Fatalf("after %s: Version() = %d, want > %d", op, v, last)
		} else {
			last = v
		}
	}

	step("Insert", func() { tree.Insert([]seq.Symbol{0, 1, 2, 3, 0, 1}) })
	step("Insert", func() { tree.Insert([]seq.Symbol{2, 2, 1}) })
	step("InsertCounts", func() {
		if err := tree.InsertCounts([]seq.Symbol{1, 2}, 3, 5); err != nil {
			t.Fatal(err)
		}
	})
	step("Merge", func() {
		other := MustNew(Config{AlphabetSize: 4, MaxDepth: 3, Significance: 2})
		other.Insert([]seq.Symbol{3, 3, 0})
		if err := tree.Merge(other); err != nil {
			t.Fatal(err)
		}
	})
	step("Prune", func() {
		if tree.NumNodes() < 3 {
			t.Fatalf("tree too small to prune: %d nodes", tree.NumNodes())
		}
		tree.Prune(tree.NumNodes() - 1)
	})

	// Reads and no-op inserts leave the counter alone: a version change
	// must imply a statistics change.
	before := tree.Version()
	tree.Insert(nil)
	tree.Stats()
	tree.Predict([]seq.Symbol{0, 1}, 2)
	if v := tree.Version(); v != before {
		t.Fatalf("non-mutating operations moved Version() from %d to %d", before, v)
	}
}

// The memory cap triggers pruning from inside Insert; the version must
// advance past both the insert and the prune so cached similarities
// against the pre-prune tree can never be mistaken for current.
func TestVersionAdvancesOnCapPrune(t *testing.T) {
	tree := MustNew(Config{AlphabetSize: 8, MaxDepth: 6, Significance: 2, MaxBytes: 4096})
	last := tree.Version()
	pruned := false
	for i := 0; i < 64 && !pruned; i++ {
		syms := make([]seq.Symbol, 32)
		for j := range syms {
			syms[j] = seq.Symbol((i*7 + j*13) % 8)
		}
		tree.Insert(syms)
		if v := tree.Version(); v <= last {
			t.Fatalf("insert %d: Version() = %d, want > %d", i, v, last)
		} else {
			last = v
		}
		pruned = tree.PrunedNodes() > 0
	}
	if !pruned {
		t.Fatal("memory cap never triggered pruning; test needs a smaller MaxBytes")
	}
}
