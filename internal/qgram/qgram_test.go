package qgram

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cluseq/internal/seq"
)

var alpha = seq.MustAlphabet("abcd")

func enc(t *testing.T, s string) []seq.Symbol {
	t.Helper()
	syms, err := alpha.Encode(s)
	if err != nil {
		t.Fatalf("encode %q: %v", s, err)
	}
	return syms
}

func TestNewProfileCounts(t *testing.T) {
	p := NewProfile(enc(t, "abab"), 2)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (ab, ba)", p.Len())
	}
	if got := p.Count(enc(t, "ab")); got != 2 {
		t.Fatalf("Count(ab) = %v, want 2", got)
	}
	if got := p.Count(enc(t, "ba")); got != 1 {
		t.Fatalf("Count(ba) = %v, want 1", got)
	}
	if got := p.Count(enc(t, "aa")); got != 0 {
		t.Fatalf("Count(aa) = %v, want 0", got)
	}
	if got := p.Count(enc(t, "a")); got != 0 {
		t.Fatalf("Count with wrong length = %v, want 0", got)
	}
}

func TestNewProfileShortSequence(t *testing.T) {
	p := NewProfile(enc(t, "ab"), 3)
	if p.Len() != 0 {
		t.Fatalf("profile of too-short sequence should be empty, got %d grams", p.Len())
	}
}

func TestNewProfilePanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on q=0")
		}
	}()
	NewProfile(nil, 0)
}

func TestCosineIdentical(t *testing.T) {
	p := NewProfile(enc(t, "abcabcabc"), 3)
	if got := Cosine(p, p); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self-cosine = %v, want 1", got)
	}
}

func TestCosineOrthogonal(t *testing.T) {
	a := NewProfile(enc(t, "aaaa"), 2)
	b := NewProfile(enc(t, "bbbb"), 2)
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("disjoint cosine = %v, want 0", got)
	}
}

func TestCosineKnownValue(t *testing.T) {
	// a: {ab:1, ba:1}; b: {ab:1}. cos = 1/√2.
	a := NewProfile(enc(t, "aba"), 2)
	b := NewProfile(enc(t, "ab"), 2)
	if got := Cosine(a, b); math.Abs(got-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("cosine = %v, want 1/√2", got)
	}
}

func TestCosineMismatchedQ(t *testing.T) {
	a := NewProfile(enc(t, "abab"), 2)
	b := NewProfile(enc(t, "abab"), 3)
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("mismatched-q cosine = %v, want 0", got)
	}
}

func TestCosineEmptyProfiles(t *testing.T) {
	a := NewProfile(nil, 2)
	b := NewProfile(enc(t, "abab"), 2)
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("empty cosine = %v, want 0", got)
	}
}

func TestCosineRangeAndSymmetry(t *testing.T) {
	f := func(ra, rb []byte) bool {
		a := make([]seq.Symbol, len(ra)%50)
		for i := range a {
			a[i] = seq.Symbol(ra[i] % 4)
		}
		b := make([]seq.Symbol, len(rb)%50)
		for i := range b {
			b[i] = seq.Symbol(rb[i] % 4)
		}
		pa, pb := NewProfile(a, 3), NewProfile(b, 3)
		c1, c2 := Cosine(pa, pb), Cosine(pb, pa)
		return c1 == c2 && c1 >= 0 && c1 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineDistance(t *testing.T) {
	a := NewProfile(enc(t, "abab"), 2)
	b := NewProfile(enc(t, "bbbb"), 2)
	if got := CosineDistance(a, a); math.Abs(got) > 1e-12 {
		t.Fatalf("self-distance = %v, want 0", got)
	}
	d := CosineDistance(a, b)
	if d <= 0 || d > 1 {
		t.Fatalf("distance = %v, want in (0, 1]", d)
	}
	if math.Abs(d-(1-Cosine(a, b))) > 1e-12 {
		t.Fatal("CosineDistance must be 1 − Cosine")
	}
}

func TestQGramsLoseOrder(t *testing.T) {
	// The defining weakness the paper exploits: two sequences with the
	// same q-gram multiset but different arrangement are indistinguishable.
	a := NewProfile(enc(t, "abcabc"), 1)
	b := NewProfile(enc(t, "cbacba"), 1)
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("1-gram cosine of permuted sequences = %v, want 1", got)
	}
}

func TestAddAndScale(t *testing.T) {
	centroid := Empty(2)
	centroid.Add(NewProfile(enc(t, "abab"), 2))
	centroid.Add(NewProfile(enc(t, "abab"), 2))
	if got := centroid.Count(enc(t, "ab")); got != 4 {
		t.Fatalf("accumulated Count(ab) = %v, want 4", got)
	}
	centroid.Scale(0.5)
	if got := centroid.Count(enc(t, "ab")); got != 2 {
		t.Fatalf("scaled Count(ab) = %v, want 2", got)
	}
	// Cosine must see the maintained norm.
	single := NewProfile(enc(t, "abab"), 2)
	if got := Cosine(centroid, single); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine after Add/Scale = %v, want 1 (same direction)", got)
	}
}

func TestAddPanicsOnMismatchedQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Empty(2).Add(NewProfile(enc(t, "abc"), 3))
}

func TestKeyIsCollisionFreeForWideSymbols(t *testing.T) {
	// Symbols above 255 must not collide with pairs of small symbols.
	rng := rand.New(rand.NewPCG(6, 6))
	a := []seq.Symbol{300, 1}
	b := []seq.Symbol{44, 257}
	pa := NewProfile(a, 2)
	if pa.Count(b) != 0 {
		t.Fatal("distinct wide-symbol q-grams collided")
	}
	// Random probes.
	for i := 0; i < 100; i++ {
		x := []seq.Symbol{seq.Symbol(rng.IntN(65535)), seq.Symbol(rng.IntN(65535))}
		y := []seq.Symbol{seq.Symbol(rng.IntN(65535)), seq.Symbol(rng.IntN(65535))}
		if x[0] == y[0] && x[1] == y[1] {
			continue
		}
		if key(x) == key(y) {
			t.Fatalf("key collision: %v vs %v", x, y)
		}
	}
}
