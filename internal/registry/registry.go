// Package registry holds named classifier models loaded from a bundle
// directory and hot-reloads them without disturbing in-flight readers.
//
// # Concurrency contract
//
// The registry keeps its entire state — the name→model map — in one
// immutable snapshot behind an atomic.Pointer. Readers (Get, Models,
// Len) load the pointer once and then work on a map that will never
// change; they take no locks and never block, however large the reload
// happening next to them. Reload builds a complete replacement snapshot
// off to the side and installs it with a single pointer swap, so a
// reader observes either the old set or the new set, never a mix.
//
// A request that resolved a *Model keeps using it even if a reload
// replaces or removes the name mid-request: models are immutable
// (core.Classifier is read-only after construction) and garbage
// collection retires the old snapshot only when the last in-flight
// reference drops. Hot reload therefore never fails or corrupts a
// request that is already running.
//
// Reload calls themselves are serialized by a mutex; only the swap is
// atomic, not the directory scan.
package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cluseq/internal/core"
	"cluseq/internal/mmapfile"
	"cluseq/internal/obs"
)

// Ext is the filename extension a bundle must carry to be picked up.
const Ext = ".cluseq"

// Model is one loaded classifier bundle. Immutable after load.
type Model struct {
	// Name is the bundle filename without the .cluseq extension, or the
	// name a published model was registered under.
	Name string
	// Path is the file the bundle was loaded from; empty for published
	// (in-memory) models.
	Path string
	// Classifier is the loaded model; safe for concurrent use.
	Classifier *core.Classifier
	// LoadedAt is when this version of the bundle was loaded or published.
	LoadedAt time.Time
	// Size and ModTime fingerprint the file version backing this model;
	// Reload skips files whose fingerprint is unchanged. Zero for
	// published models.
	Size    int64
	ModTime time.Time
	// Published marks a model installed through Publish rather than
	// loaded from a bundle file. Published models own their name: Reload
	// carries them over and a same-named bundle file does not replace
	// them.
	Published bool
	// Version is the publisher's monotonically increasing snapshot
	// version; zero for file-loaded models.
	Version uint64
	// MappedBytes is the size of the memory-mapped file region this
	// model serves from, or zero when the model was loaded by copying
	// (v1/v2 bundles, mmap disabled, or platforms without mmap).
	MappedBytes int64
}

// Registry is a hot-reloadable collection of named models. Construct
// with Open; the zero value is not usable.
type Registry struct {
	dir  string
	mmap bool
	mu   sync.Mutex // serializes Reload
	snap atomic.Pointer[map[string]*Model]
	// generation counts completed reloads (including the initial load),
	// for diagnostics and tests.
	generation atomic.Uint64

	// Observability handles (see Instrument); nil handles are no-ops.
	reloads      *obs.Counter // completed Reload passes
	reloadErrors *obs.Counter // Reload passes that failed outright
	loaded       *obs.Counter // bundles (re)loaded: new files or fingerprint mismatches
	kept         *obs.Counter // bundles carried over unchanged
	removed      *obs.Counter // bundles dropped because their file vanished
	loadFailures *obs.Counter // individual bundles that failed to load
	published    *obs.Counter // Publish calls (snapshot installs)
	models       *obs.Gauge   // models in the current snapshot
	mappedBytes  *obs.Gauge   // bytes served via mmap across the snapshot
}

// Instrument registers the registry's metrics — reload pass and outcome
// counters plus a live-model gauge, all under the cluseq_registry_
// prefix — and starts recording into them. A nil registry of metrics
// leaves it uninstrumented (the default). Call before the Registry is
// shared; the handles are plain fields.
func (r *Registry) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.reloads = reg.Counter("cluseq_registry_reloads_total")
	r.reloadErrors = reg.Counter("cluseq_registry_reload_errors_total")
	r.loaded = reg.Counter("cluseq_registry_models_loaded_total")
	r.kept = reg.Counter("cluseq_registry_models_kept_total")
	r.removed = reg.Counter("cluseq_registry_models_removed_total")
	r.loadFailures = reg.Counter("cluseq_registry_load_failures_total")
	r.published = reg.Counter("cluseq_registry_published_total")
	r.models = reg.Gauge("cluseq_registry_models")
	r.mappedBytes = reg.Gauge("cluseq_registry_mapped_bytes")
	r.models.Set(float64(r.Len()))
	r.mappedBytes.Set(float64(mappedTotal(*r.snap.Load())))
}

// mappedTotal sums the mmap-served bytes across a snapshot.
func mappedTotal(snap map[string]*Model) int64 {
	var total int64
	for _, m := range snap {
		total += m.MappedBytes
	}
	return total
}

// Report describes the outcome of one Reload pass. Name lists are
// sorted.
type Report struct {
	// Loaded names models (re)loaded from disk this pass.
	Loaded []string `json:"loaded,omitempty"`
	// Kept names models whose files were unchanged.
	Kept []string `json:"kept,omitempty"`
	// Removed names models whose files disappeared.
	Removed []string `json:"removed,omitempty"`
	// Failed maps a model name to the load error that kept its new file
	// out of the registry. A previously loaded version, when one exists,
	// stays in service (listed under Kept as well).
	Failed map[string]string `json:"failed,omitempty"`
}

// Options configures how a Registry loads bundles.
type Options struct {
	// Mmap serves v3 bundles zero-copy from a read-only memory map of
	// the file instead of decoding a heap copy. The mapping stays alive
	// as long as any request holds the model (see Model); v1/v2 bundles
	// and platforms without mmap support fall back to copying. Requires
	// bundle files to be replaced atomically (temp file + rename): an
	// in-place overwrite would mutate pages under live readers.
	Mmap bool
}

// Open scans dir and loads every *.cluseq bundle in it, serving v3
// bundles via mmap (see OpenWith to disable). It fails only when the
// directory itself is unreadable; individual corrupt bundles are
// reported in the Report and skipped, so one bad file cannot keep a
// daemon from serving the good ones.
func Open(dir string) (*Registry, Report, error) {
	return OpenWith(dir, Options{Mmap: true})
}

// OpenWith is Open with explicit Options.
func OpenWith(dir string, opts Options) (*Registry, Report, error) {
	r := &Registry{dir: dir, mmap: opts.Mmap}
	empty := map[string]*Model{}
	r.snap.Store(&empty)
	rep, err := r.Reload()
	if err != nil {
		return nil, rep, err
	}
	return r, rep, nil
}

// Dir returns the directory the registry watches.
func (r *Registry) Dir() string { return r.dir }

// Get returns the named model. The returned *Model remains valid (and
// immutable) even if a concurrent reload replaces or removes the name.
func (r *Registry) Get(name string) (*Model, bool) {
	m, ok := (*r.snap.Load())[name]
	return m, ok
}

// GetTraced is Get with the snapshot read recorded as a registry_get
// span on the request's trace (a no-op on a nil trace). The lookup is
// one atomic pointer load plus a map hit — the span exists to prove
// that in production dumps, not because the cost is expected to vary.
func (r *Registry) GetTraced(tr *obs.RequestTrace, name string) (*Model, bool) {
	sp := tr.StartSpan("registry_get")
	m, ok := r.Get(name)
	sp.End()
	return m, ok
}

// Models returns the current snapshot's models sorted by name.
func (r *Registry) Models() []*Model {
	snap := *r.snap.Load()
	out := make([]*Model, 0, len(snap))
	for _, m := range snap {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of models in the current snapshot.
func (r *Registry) Len() int { return len(*r.snap.Load()) }

// Generation returns the number of completed load passes.
func (r *Registry) Generation() uint64 { return r.generation.Load() }

// Publish installs (or replaces) an in-memory model under name with a
// single snapshot swap — the streaming engine's path into the serving
// surface. The classifier must be immutable (the stream engine
// publishes deep clones); readers holding the previous version keep it
// until their requests finish, exactly as with file reloads. version is
// the publisher's monotonically increasing snapshot version, surfaced
// in the model listing.
//
// Published models own their name: Reload carries them over, and a
// bundle file of the same name is reported as failed rather than
// replacing the live stream model.
func (r *Registry) Publish(name string, clf *core.Classifier, version uint64) error {
	if name == "" {
		return fmt.Errorf("registry: Publish needs a name")
	}
	if clf == nil {
		return fmt.Errorf("registry: Publish needs a classifier")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.snap.Load()
	if prev, ok := old[name]; ok && !prev.Published {
		return fmt.Errorf("registry: name %q is owned by bundle file %s", name, prev.Path)
	}
	next := make(map[string]*Model, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = &Model{
		Name:       name,
		Classifier: clf,
		LoadedAt:   time.Now(),
		Published:  true,
		Version:    version,
	}
	r.snap.Store(&next)
	r.published.Inc()
	r.models.Set(float64(len(next)))
	r.mappedBytes.Set(float64(mappedTotal(next)))
	return nil
}

// Reload rescans the directory: new and changed bundles are loaded,
// unchanged ones carried over, and models whose files vanished dropped —
// all installed as one atomic snapshot swap. A changed file that fails
// to load keeps its previous version in service.
//
// Bundle files must be written atomically (write to a temp file, then
// rename) for the fingerprint check to be sound; the Report of a pass
// that raced a non-atomic writer heals on the next Reload.
func (r *Registry) Reload() (Report, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	rep := Report{}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		r.reloadErrors.Inc()
		return rep, fmt.Errorf("registry: scanning %s: %w", r.dir, err)
	}
	old := *r.snap.Load()
	next := make(map[string]*Model, len(entries))
	// Published (in-memory) models are not backed by files; carry them
	// over first so the directory scan below cannot clobber or drop a
	// live stream model.
	for name, m := range old {
		if m.Published {
			next[name] = m
			rep.Kept = append(rep.Kept, name)
		}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), Ext) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), Ext)
		if name == "" {
			continue
		}
		if m, ok := next[name]; ok && m.Published {
			rep.fail(name, fmt.Errorf("name %q is owned by a published stream model; rename the bundle file", name))
			continue
		}
		path := filepath.Join(r.dir, e.Name())
		fi, err := e.Info()
		if err != nil {
			rep.fail(name, err)
			if prev, ok := old[name]; ok {
				next[name] = prev
				rep.Kept = append(rep.Kept, name)
			}
			continue
		}
		if prev, ok := old[name]; ok && prev.Size == fi.Size() && prev.ModTime.Equal(fi.ModTime()) {
			next[name] = prev
			rep.Kept = append(rep.Kept, name)
			continue
		}
		m, err := r.loadModel(name, path, fi)
		if err != nil {
			rep.fail(name, err)
			if prev, ok := old[name]; ok {
				// Keep serving the previous good version rather than
				// dropping a live model over a bad rewrite.
				next[name] = prev
				rep.Kept = append(rep.Kept, name)
			}
			continue
		}
		next[name] = m
		rep.Loaded = append(rep.Loaded, name)
	}
	for name := range old {
		if _, ok := next[name]; !ok {
			rep.Removed = append(rep.Removed, name)
		}
	}
	sort.Strings(rep.Loaded)
	sort.Strings(rep.Kept)
	sort.Strings(rep.Removed)
	r.snap.Store(&next)
	r.generation.Add(1)
	r.reloads.Inc()
	r.loaded.Add(int64(len(rep.Loaded)))
	r.kept.Add(int64(len(rep.Kept)))
	r.removed.Add(int64(len(rep.Removed)))
	r.loadFailures.Add(int64(len(rep.Failed)))
	r.models.Set(float64(len(next)))
	r.mappedBytes.Set(float64(mappedTotal(next)))
	return rep, nil
}

func (rep *Report) fail(name string, err error) {
	if rep.Failed == nil {
		rep.Failed = make(map[string]string)
	}
	rep.Failed[name] = err.Error()
}

// loadModel loads one bundle file. With mmap enabled and a v3 bundle,
// the classifier serves straight out of a read-only mapping of the
// file: the mapping is handed to the classifier as its backing owner,
// so it is unmapped by the garbage collector only after the last
// request holding the model finishes (unmap-after-last-reader). Any
// other bundle version, and any load error, falls back to — or stays
// on — the copying path, so v1/v2 bundles keep working unchanged.
func (r *Registry) loadModel(name, path string, fi os.FileInfo) (*Model, error) {
	m := &Model{
		Name:     name,
		Path:     path,
		LoadedAt: time.Now(),
		Size:     fi.Size(),
		ModTime:  fi.ModTime(),
	}
	if r.mmap {
		mapping, err := mmapfile.Open(path)
		if err != nil {
			return nil, fmt.Errorf("mapping %s: %w", path, err)
		}
		data := mapping.Data()
		if core.IsBundleV3(data) {
			clf, err := core.LoadClassifierBytes(data, mapping)
			if err != nil {
				mapping.Close()
				return nil, fmt.Errorf("loading %s: %w", path, err)
			}
			m.Classifier = clf
			if mapping.Mapped() {
				m.MappedBytes = int64(len(data))
			}
			return m, nil
		}
		// v1/v2: decode from the mapped bytes (one read either way),
		// then release the mapping — the classifier owns heap copies.
		clf, err := core.LoadClassifier(bytes.NewReader(data))
		mapping.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		m.Classifier = clf
		return m, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	clf, err := core.LoadClassifier(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	m.Classifier = clf
	return m, nil
}
