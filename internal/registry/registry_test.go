package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"cluseq/internal/core"
	"cluseq/internal/mmapfile"
	"cluseq/internal/obs"
	"cluseq/internal/pst"
	"cluseq/internal/seq"
)

// makeClassifier builds a tiny single-cluster classifier trained on the
// given strings over alphabet "abcd".
func makeClassifier(t *testing.T, trains ...string) *core.Classifier {
	t.Helper()
	db := seq.NewDatabase(seq.MustAlphabet("abcd"))
	tree := pst.MustNew(pst.Config{AlphabetSize: 4, MaxDepth: 4, Significance: 1})
	for i, s := range trains {
		if err := db.AddString(fmt.Sprintf("s%d", i), "", s); err != nil {
			t.Fatal(err)
		}
		syms, err := db.Alphabet.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		tree.Insert(syms)
	}
	res := &core.Result{
		Clusters:       []*core.ClusterInfo{{ID: 0, Tree: tree}},
		FinalThreshold: 1.01,
	}
	clf, err := core.NewClassifier(db, res, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// writeBundle saves the classifier atomically as dir/name.cluseq.
func writeBundle(t *testing.T, dir, name string, clf *core.Classifier) {
	t.Helper()
	tmp, err := os.CreateTemp(dir, name+".tmp")
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Save(tmp); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name+Ext)); err != nil {
		t.Fatal(err)
	}
}

// writeBundleV3 saves the classifier atomically as a format-v3 bundle.
func writeBundleV3(t *testing.T, dir, name string, clf *core.Classifier) {
	t.Helper()
	tmp, err := os.CreateTemp(dir, name+".tmp")
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.SaveBundle(tmp, core.BundleOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name+Ext)); err != nil {
		t.Fatal(err)
	}
}

// writeGarbage replaces dir/name.cluseq with junk, atomically. Bundle
// rewrites — even corrupt ones in tests — must go through rename, never
// an in-place overwrite: a truncating rewrite would yank pages out from
// under a mapping the registry may still be serving.
func writeGarbage(t *testing.T, dir, name string) {
	t.Helper()
	tmp, err := os.CreateTemp(dir, name+".tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.WriteString("garbage overwrite"); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name+Ext)); err != nil {
		t.Fatal(err)
	}
}

// bump pushes a bundle's modtime forward so a rewrite is always seen as
// changed even on coarse-granularity filesystems.
func bump(t *testing.T, dir, name string, d time.Duration) {
	t.Helper()
	path := filepath.Join(dir, name+Ext)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Now(), fi.ModTime().Add(d)); err != nil {
		t.Fatal(err)
	}
}

func TestOpenLoadsBundles(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "alpha", makeClassifier(t, "ababab", "ababab"))
	writeBundle(t, dir, "beta", makeClassifier(t, "cdcdcd"))
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644)

	r, rep, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || len(rep.Loaded) != 2 {
		t.Fatalf("loaded %d models (report %+v), want 2", r.Len(), rep)
	}
	ms := r.Models()
	if ms[0].Name != "alpha" || ms[1].Name != "beta" {
		t.Fatalf("Models() order: %v, %v", ms[0].Name, ms[1].Name)
	}
	m, ok := r.Get("alpha")
	if !ok || m.Classifier.NumClusters() != 1 {
		t.Fatalf("Get(alpha) = %v, %v", m, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("Get should miss on unknown name")
	}
	if _, err := m.Classifier.ClassifyString("abab"); err != nil {
		t.Fatalf("loaded model should classify strings: %v", err)
	}
}

func TestOpenSkipsCorruptBundle(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "good", makeClassifier(t, "abab"))
	os.WriteFile(filepath.Join(dir, "bad"+Ext), []byte("not a bundle at all"), 0o644)

	r, rep, err := Open(dir)
	if err != nil {
		t.Fatalf("Open should survive one corrupt bundle: %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if _, ok := rep.Failed["bad"]; !ok {
		t.Fatalf("report should name the corrupt bundle: %+v", rep)
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open should fail on a missing directory")
	}
}

func TestReloadKeepsChangesAndRemoves(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "stable", makeClassifier(t, "abab"))
	writeBundle(t, dir, "hot", makeClassifier(t, "cdcd"))
	r, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stable0, _ := r.Get("stable")
	hot0, _ := r.Get("hot")

	// Rewrite one bundle, add one, remove none.
	writeBundle(t, dir, "hot", makeClassifier(t, "aabb", "bbaa"))
	bump(t, dir, "hot", 2*time.Second)
	writeBundle(t, dir, "fresh", makeClassifier(t, "dddd"))
	rep, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	wantLoaded := map[string]bool{"hot": true, "fresh": true}
	for _, n := range rep.Loaded {
		delete(wantLoaded, n)
	}
	if len(wantLoaded) != 0 || len(rep.Kept) != 1 || rep.Kept[0] != "stable" {
		t.Fatalf("report %+v: want hot+fresh loaded, stable kept", rep)
	}
	if stable1, _ := r.Get("stable"); stable1 != stable0 {
		t.Fatal("unchanged bundle should keep its loaded *Model")
	}
	if hot1, _ := r.Get("hot"); hot1 == hot0 {
		t.Fatal("changed bundle should reload to a new *Model")
	}
	// The old model object must remain usable for in-flight holders.
	if _, err := hot0.Classifier.ClassifyString("cd"); err != nil {
		t.Fatalf("replaced model object broke: %v", err)
	}

	// Removal.
	os.Remove(filepath.Join(dir, "fresh"+Ext))
	rep, err = r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "fresh" {
		t.Fatalf("report %+v: want fresh removed", rep)
	}
	if _, ok := r.Get("fresh"); ok {
		t.Fatal("removed bundle still resolvable")
	}
}

func TestReloadKeepsPreviousOnCorruptRewrite(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "m", makeClassifier(t, "abab"))
	r, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := r.Get("m")

	writeGarbage(t, dir, "m")
	bump(t, dir, "m", 2*time.Second)
	rep, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Failed["m"]; !ok {
		t.Fatalf("report should record the failed load: %+v", rep)
	}
	after, ok := r.Get("m")
	if !ok || after != before {
		t.Fatal("corrupt rewrite must keep the previous good version in service")
	}
}

func TestInstrumentCountsReloads(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "stable", makeClassifier(t, "abab"))
	writeBundle(t, dir, "hot", makeClassifier(t, "cdcd"))
	r, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r.Instrument(reg)
	if got := reg.Gauge("cluseq_registry_models").Value(); got != 2 {
		t.Fatalf("models gauge at Instrument = %v, want 2", got)
	}

	// One pass covering every outcome: hot rewritten (loaded), stable
	// unchanged (kept), a corrupt newcomer (load failure), and then a
	// second pass after deleting hot (removed).
	writeBundle(t, dir, "hot", makeClassifier(t, "aabb"))
	bump(t, dir, "hot", 2*time.Second)
	os.WriteFile(filepath.Join(dir, "bad"+Ext), []byte("garbage"), 0o644)
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "hot"+Ext))
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]int64{
		"cluseq_registry_reloads_total":        2,
		"cluseq_registry_reload_errors_total":  0,
		"cluseq_registry_models_loaded_total":  1, // hot, pass 1
		"cluseq_registry_models_kept_total":    2, // stable, once per pass
		"cluseq_registry_load_failures_total":  2, // bad fails both passes
		"cluseq_registry_models_removed_total": 1, // hot, pass 2
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("cluseq_registry_models").Value(); got != 1 {
		t.Fatalf("models gauge after removal = %v, want 1 (stable)", got)
	}
}

func TestInstrumentCountsScanError(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "m", makeClassifier(t, "abab"))
	r, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r.Instrument(reg)
	os.RemoveAll(dir)
	if _, err := r.Reload(); err == nil {
		t.Fatal("Reload over a vanished directory should fail")
	}
	if got := reg.Counter("cluseq_registry_reload_errors_total").Value(); got != 1 {
		t.Fatalf("reload_errors_total = %d, want 1", got)
	}
	if got := reg.Counter("cluseq_registry_reloads_total").Value(); got != 0 {
		t.Fatalf("reloads_total = %d, want 0 (the pass failed)", got)
	}
}

func TestConcurrentGetAndReload(t *testing.T) {
	dir := t.TempDir()
	a := makeClassifier(t, "abababab", "abab")
	b := makeClassifier(t, "cdcdcdcd", "cdcd")
	writeBundle(t, dir, "m", a)
	r, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m, ok := r.Get("m")
				if !ok {
					t.Error("model vanished during reload")
					return
				}
				if _, err := m.Classifier.ClassifyString("abcd"); err != nil {
					t.Errorf("classify failed mid-reload: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		clf := a
		if i%2 == 0 {
			clf = b
		}
		writeBundle(t, dir, "m", clf)
		bump(t, dir, "m", time.Duration(i+1)*time.Second)
		if _, err := r.Reload(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if gen := r.Generation(); gen < 21 {
		t.Fatalf("generation %d, want ≥ 21", gen)
	}
}

func TestPublishInstallsAndSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "file", makeClassifier(t, "abab"))
	r, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	clf := makeClassifier(t, "cdcdcdcd")
	if err := r.Publish("live", clf, 3); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	m, ok := r.Get("live")
	if !ok || !m.Published || m.Version != 3 || m.Classifier != clf {
		t.Fatalf("published model = %+v, ok=%v", m, ok)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}

	// A reload must carry the published model over, untouched.
	rep, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := r.Get("live")
	if !ok || m2 != m {
		t.Fatalf("published model lost or replaced across Reload (report %+v)", rep)
	}

	// Republishing bumps the version atomically.
	clf2 := makeClassifier(t, "cdcd")
	if err := r.Publish("live", clf2, 4); err != nil {
		t.Fatal(err)
	}
	if m3, _ := r.Get("live"); m3.Version != 4 || m3.Classifier != clf2 {
		t.Fatalf("republish did not install: %+v", m3)
	}
}

func TestPublishNameConflicts(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "file", makeClassifier(t, "abab"))
	r, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A published model may not steal a file-backed name…
	if err := r.Publish("file", makeClassifier(t, "cdcd"), 1); err == nil {
		t.Fatal("Publish over a file-backed model succeeded")
	}
	// …and a bundle file may not steal a published name: the file is
	// reported failed, the live model stays.
	if err := r.Publish("live", makeClassifier(t, "cdcd"), 1); err != nil {
		t.Fatal(err)
	}
	writeBundle(t, dir, "live", makeClassifier(t, "abab"))
	rep, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if _, clash := rep.Failed["live"]; !clash {
		t.Fatalf("same-named bundle not reported failed: %+v", rep)
	}
	if m, ok := r.Get("live"); !ok || !m.Published {
		t.Fatal("published model displaced by bundle file")
	}
	if err := r.Publish("", makeClassifier(t, "abab"), 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Publish("x", nil, 1); err == nil {
		t.Fatal("nil classifier accepted")
	}
}

// TestMmapServesV3 pins zero-copy serving: a v3 bundle loaded with mmap
// enabled reports its mapped size, classifies correctly, and the
// mapped-bytes gauge tracks the snapshot total. v2 bundles in the same
// directory load through the copying fallback.
func TestMmapServesV3(t *testing.T) {
	dir := t.TempDir()
	writeBundleV3(t, dir, "v3", makeClassifier(t, "abababab", "abab"))
	writeBundle(t, dir, "v2", makeClassifier(t, "cdcdcdcd"))

	r, rep, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loaded) != 2 {
		t.Fatalf("loaded %v, want both bundles", rep)
	}
	m3, _ := r.Get("v3")
	m2, _ := r.Get("v2")
	if m2.MappedBytes != 0 {
		t.Fatalf("v2 bundle reports MappedBytes %d, want 0 (copying fallback)", m2.MappedBytes)
	}
	fi, err := os.Stat(filepath.Join(dir, "v3"+Ext))
	if err != nil {
		t.Fatal(err)
	}
	if m3.MappedBytes != 0 && m3.MappedBytes != fi.Size() {
		t.Fatalf("v3 MappedBytes %d, want file size %d", m3.MappedBytes, fi.Size())
	}
	for _, m := range []*Model{m2, m3} {
		if _, err := m.Classifier.ClassifyString("abcd"); err != nil {
			t.Fatalf("%s: classify: %v", m.Name, err)
		}
	}
	reg := obs.NewRegistry()
	r.Instrument(reg)
	if got := reg.Gauge("cluseq_registry_mapped_bytes").Value(); got != float64(m3.MappedBytes) {
		t.Fatalf("mapped_bytes gauge %v, want %d", got, m3.MappedBytes)
	}
}

// TestMmapDisabled: OpenWith(Options{}) must never map, even for v3.
func TestMmapDisabled(t *testing.T) {
	dir := t.TempDir()
	writeBundleV3(t, dir, "m", makeClassifier(t, "abab"))
	r, _, err := OpenWith(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := r.Get("m")
	if !ok || m.MappedBytes != 0 {
		t.Fatalf("model %+v, ok=%v: want loaded without a mapping", m, ok)
	}
	if _, err := m.Classifier.ClassifyString("abab"); err != nil {
		t.Fatal(err)
	}
}

// TestMmapUnmapAfterSwap pins the unmap-after-last-reader contract
// across a hot reload: after a v3 bundle is replaced and the last
// holder of the old model lets go, garbage collection alone releases
// the old mapping — and the old model stays fully usable until then.
func TestMmapUnmapAfterSwap(t *testing.T) {
	dir := t.TempDir()
	writeBundleV3(t, dir, "m", makeClassifier(t, "abababab", "abab"))
	base := mmapfile.MappedBytes()
	r, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old, _ := r.Get("m")
	if old.MappedBytes == 0 {
		t.Skip("no OS mapping on this platform; unmap path is untestable")
	}

	writeBundleV3(t, dir, "m", makeClassifier(t, "cdcdcdcd", "cdcd"))
	bump(t, dir, "m", 2*time.Second)
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	fresh, _ := r.Get("m")
	if fresh == old {
		t.Fatal("reload did not swap the model")
	}
	// The displaced model must keep serving its (still-mapped) bytes for
	// in-flight readers.
	if _, err := old.Classifier.ClassifyString("abab"); err != nil {
		t.Fatalf("old model broke while still referenced: %v", err)
	}

	old = nil // last reader gone
	target := base + fresh.MappedBytes
	deadline := time.Now().Add(5 * time.Second)
	for mmapfile.MappedBytes() > target {
		if time.Now().After(deadline) {
			t.Fatalf("old mapping never released: MappedBytes %d, want ≤ %d",
				mmapfile.MappedBytes(), target)
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if _, err := fresh.Classifier.ClassifyString("cdcd"); err != nil {
		t.Fatalf("live model broke after old mapping released: %v", err)
	}
}

// TestMmapCorruptV3Rejected: a corrupt v3 rewrite must keep the
// previous mapped version in service, same as the copying path.
func TestMmapCorruptV3Rejected(t *testing.T) {
	dir := t.TempDir()
	writeBundleV3(t, dir, "m", makeClassifier(t, "abab"))
	r, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := r.Get("m")
	writeGarbage(t, dir, "m")
	bump(t, dir, "m", 2*time.Second)
	rep, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Failed["m"]; !ok {
		t.Fatalf("report should record the failed load: %+v", rep)
	}
	if after, ok := r.Get("m"); !ok || after != before {
		t.Fatal("corrupt rewrite must keep the previous good version in service")
	}
}
