package seq

import (
	"bytes"
	"testing"
)

// FuzzSeqReadWrite checks the text format's round-trip contract on
// arbitrary input: whatever Read accepts, Write must serialize in a
// form Read parses back into the identical database — same alphabet
// (hence same symbol numbering), same IDs, labels, and symbols — and no
// input may panic either function. Inputs Read rejects are out of
// scope, as are databases Write itself refuses (alphabets containing
// '#', '>' or whitespace cannot be represented in the line-oriented
// format and are reported as errors, not corrupted silently).
func FuzzSeqReadWrite(f *testing.F) {
	f.Add([]byte("# alphabet: abc\n> s1 fam1\nabcabc\n> s2\ncba\n"))
	f.Add([]byte("> x\nhello\nworld\n"))
	f.Add([]byte(">\nabab\n# comment\n> y lbl extra fields\nbb\n"))
	f.Add([]byte("> empty\n\n> other\nzz\n"))
	f.Add([]byte("# alphabet: éü\n> uni\néüé\n"))
	// Regression: '\v' is Unicode whitespace to the parser's TrimSpace
	// but was absent from Write's alphabet blacklist, so this alphabet
	// used to serialize to a directive that re-read differently.
	f.Add([]byte(">\n0\v0"))

	f.Fuzz(func(t *testing.T, input []byte) {
		db, err := Read(bytes.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, db); err != nil {
			return
		}
		db2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading Write output failed: %v\noutput:\n%s", err, buf.Bytes())
		}
		if got, want := db2.Alphabet.String(), db.Alphabet.String(); got != want {
			t.Fatalf("alphabet changed across round trip: %q -> %q", want, got)
		}
		if got, want := db2.Len(), db.Len(); got != want {
			t.Fatalf("sequence count changed across round trip: %d -> %d", want, got)
		}
		for i, s := range db.Sequences {
			r := db2.Sequences[i]
			if r.ID != s.ID || r.Label != s.Label {
				t.Fatalf("sequence %d header changed: (%q, %q) -> (%q, %q)", i, s.ID, s.Label, r.ID, r.Label)
			}
			if len(r.Symbols) != len(s.Symbols) {
				t.Fatalf("sequence %d length changed: %d -> %d", i, len(s.Symbols), len(r.Symbols))
			}
			for j := range s.Symbols {
				if r.Symbols[j] != s.Symbols[j] {
					t.Fatalf("sequence %d symbol %d changed: %d -> %d", i, j, s.Symbols[j], r.Symbols[j])
				}
			}
		}
	})
}
