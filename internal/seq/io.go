package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// The on-disk format is a FASTA-like plain text format:
//
//	# alphabet: abcdefg
//	> id1 label1
//	abcabcgfe
//	> id2 label2
//	gfedcba
//
// Header lines start with '>' and carry an ID and an optional label
// separated by whitespace. Sequence data may span multiple lines until the
// next header. The optional "# alphabet:" directive pins the alphabet; when
// absent, the alphabet is inferred from the sequence data in appearance
// order.

// Write serializes the database to w, including the alphabet directive so
// that a round trip preserves symbol numbering. Alphabets containing the
// line-structural characters '#' or '>' (or whitespace) cannot round-trip
// through the text format and are rejected.
func Write(w io.Writer, db *Database) error {
	// The parser trims every Unicode space (TrimSpace), not just ASCII
	// blanks, so any IsSpace rune in the alphabet would silently change
	// meaning on re-read; refuse them all.
	if strings.ContainsAny(db.Alphabet.String(), "#>") ||
		strings.IndexFunc(db.Alphabet.String(), unicode.IsSpace) >= 0 {
		return fmt.Errorf("seq: alphabet %q contains '#', '>' or whitespace, which the text format cannot represent", db.Alphabet.String())
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# alphabet: %s\n", db.Alphabet.String()); err != nil {
		return err
	}
	for _, s := range db.Sequences {
		if strings.IndexFunc(s.ID, unicode.IsSpace) >= 0 || strings.IndexFunc(s.Label, unicode.IsSpace) >= 0 {
			return fmt.Errorf("seq: sequence %q: IDs and labels must not contain whitespace", s.ID)
		}
		if s.Label != "" {
			fmt.Fprintf(bw, "> %s %s\n", s.ID, s.Label)
		} else {
			fmt.Fprintf(bw, "> %s\n", s.ID)
		}
		raw := db.Alphabet.Decode(s.Symbols)
		// Wrap long sequences at 80 columns for readability.
		for len(raw) > 80 {
			fmt.Fprintln(bw, raw[:80])
			raw = raw[80:]
		}
		if _, err := fmt.Fprintln(bw, raw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a database from r. If the stream carries no alphabet
// directive, the alphabet is inferred from the sequence characters in
// appearance order.
func Read(r io.Reader) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	var alphabet *Alphabet
	type raw struct {
		id, label string
		data      strings.Builder
	}
	var entries []*raw
	var cur *raw
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "# alphabet:"):
			if alphabet != nil {
				return nil, fmt.Errorf("seq: line %d: duplicate alphabet directive", line)
			}
			a, err := NewAlphabet(strings.TrimSpace(strings.TrimPrefix(text, "# alphabet:")))
			if err != nil {
				return nil, fmt.Errorf("seq: line %d: %w", line, err)
			}
			alphabet = a
		case strings.HasPrefix(text, "#"):
			continue // comment
		case strings.HasPrefix(text, ">"):
			fields := strings.Fields(strings.TrimPrefix(text, ">"))
			cur = &raw{}
			switch len(fields) {
			case 0:
				cur.id = fmt.Sprintf("seq%d", len(entries)+1)
			case 1:
				cur.id = fields[0]
			default:
				cur.id, cur.label = fields[0], fields[1]
			}
			entries = append(entries, cur)
		default:
			if cur == nil {
				return nil, fmt.Errorf("seq: line %d: sequence data before any '>' header", line)
			}
			cur.data.WriteString(text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: %w", err)
	}
	if alphabet == nil {
		var all strings.Builder
		for _, e := range entries {
			all.WriteString(e.data.String())
		}
		a, err := NewAlphabet(all.String())
		if err != nil {
			return nil, fmt.Errorf("seq: cannot infer alphabet: %w", err)
		}
		alphabet = a
	}
	db := NewDatabase(alphabet)
	for _, e := range entries {
		if err := db.AddString(e.id, e.label, e.data.String()); err != nil {
			return nil, err
		}
	}
	return db, nil
}
