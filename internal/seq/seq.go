// Package seq provides the fundamental data types shared by every other
// package in this repository: symbols, alphabets, sequences, and sequence
// databases, together with a plain-text serialization format.
//
// A Symbol is a small integer index into an Alphabet. Working with dense
// integer symbols rather than runes keeps the probabilistic suffix tree and
// every baseline algorithm free of map lookups on their hot paths.
package seq

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is the dense integer encoding of one alphabet character.
// Symbols are indices in the range [0, Alphabet.Size()).
type Symbol uint16

// MaxAlphabetSize bounds the number of distinct symbols an Alphabet may
// hold. The paper's largest experiment uses a few hundred distinct symbols;
// 65535 leaves generous headroom while keeping Symbol at two bytes.
const MaxAlphabetSize = 1<<16 - 1

// Alphabet is an immutable bidirectional mapping between runes and Symbols.
type Alphabet struct {
	runes []rune
	index map[rune]Symbol
}

// NewAlphabet builds an alphabet from the distinct runes of s, in first
// appearance order. Duplicate runes are ignored.
func NewAlphabet(s string) (*Alphabet, error) {
	a := &Alphabet{index: make(map[rune]Symbol)}
	for _, r := range s {
		if _, ok := a.index[r]; ok {
			continue
		}
		if len(a.runes) >= MaxAlphabetSize {
			return nil, fmt.Errorf("seq: alphabet exceeds %d symbols", MaxAlphabetSize)
		}
		a.index[r] = Symbol(len(a.runes))
		a.runes = append(a.runes, r)
	}
	if len(a.runes) == 0 {
		return nil, fmt.Errorf("seq: empty alphabet")
	}
	return a, nil
}

// MustAlphabet is NewAlphabet that panics on error, for constant alphabets.
func MustAlphabet(s string) *Alphabet {
	a, err := NewAlphabet(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Size returns the number of distinct symbols in the alphabet.
func (a *Alphabet) Size() int { return len(a.runes) }

// Rune returns the rune for symbol s. It panics if s is out of range.
func (a *Alphabet) Rune(s Symbol) rune { return a.runes[s] }

// Symbol returns the Symbol for rune r and whether r is in the alphabet.
func (a *Alphabet) Symbol(r rune) (Symbol, bool) {
	s, ok := a.index[r]
	return s, ok
}

// String renders the alphabet's runes in symbol order.
func (a *Alphabet) String() string { return string(a.runes) }

// Encode converts a string to a symbol slice. It fails on the first rune
// that is not part of the alphabet.
func (a *Alphabet) Encode(s string) ([]Symbol, error) {
	out := make([]Symbol, 0, len(s))
	for i, r := range s {
		sym, ok := a.index[r]
		if !ok {
			return nil, fmt.Errorf("seq: rune %q at byte %d not in alphabet %q", r, i, a.String())
		}
		out = append(out, sym)
	}
	return out, nil
}

// Decode converts a symbol slice back to a string.
func (a *Alphabet) Decode(syms []Symbol) string {
	var b strings.Builder
	b.Grow(len(syms))
	for _, s := range syms {
		b.WriteRune(a.runes[s])
	}
	return b.String()
}

// Sequence is an ordered list of symbols with an identifier and an optional
// ground-truth label (the "family" in the paper's evaluation, empty when
// unknown).
type Sequence struct {
	ID      string
	Label   string
	Symbols []Symbol
}

// Len returns the number of symbols in the sequence.
func (s *Sequence) Len() int { return len(s.Symbols) }

// Reversed returns a new symbol slice holding s in reverse order, as used
// when inserting a sequence into a probabilistic suffix tree.
func (s *Sequence) Reversed() []Symbol {
	out := make([]Symbol, len(s.Symbols))
	for i, sym := range s.Symbols {
		out[len(s.Symbols)-1-i] = sym
	}
	return out
}

// Segment returns the half-open sub-slice [i, j) of the sequence's symbols.
// The returned slice aliases the sequence; callers must not mutate it.
func (s *Sequence) Segment(i, j int) []Symbol {
	return s.Symbols[i:j]
}

// Database is a set of sequences over one alphabet.
type Database struct {
	Alphabet  *Alphabet
	Sequences []*Sequence
}

// NewDatabase returns an empty database over alphabet a.
func NewDatabase(a *Alphabet) *Database {
	return &Database{Alphabet: a}
}

// Add appends a sequence to the database.
func (db *Database) Add(s *Sequence) { db.Sequences = append(db.Sequences, s) }

// AddString encodes raw under the database alphabet and appends it.
func (db *Database) AddString(id, label, raw string) error {
	syms, err := db.Alphabet.Encode(raw)
	if err != nil {
		return fmt.Errorf("seq: sequence %q: %w", id, err)
	}
	db.Add(&Sequence{ID: id, Label: label, Symbols: syms})
	return nil
}

// Len returns the number of sequences in the database.
func (db *Database) Len() int { return len(db.Sequences) }

// TotalSymbols returns the sum of the lengths of all sequences.
func (db *Database) TotalSymbols() int {
	total := 0
	for _, s := range db.Sequences {
		total += len(s.Symbols)
	}
	return total
}

// AverageLength returns the mean sequence length, or 0 for an empty database.
func (db *Database) AverageLength() float64 {
	if len(db.Sequences) == 0 {
		return 0
	}
	return float64(db.TotalSymbols()) / float64(len(db.Sequences))
}

// SymbolFrequencies returns the empirical probability p(s) of observing each
// symbol at any position of any sequence in the database — the memoryless
// background distribution of the paper's similarity measure. Symbols that
// never occur receive a pseudo-count of one occurrence so that the
// background probability is never exactly zero.
func (db *Database) SymbolFrequencies() []float64 {
	counts := make([]float64, db.Alphabet.Size())
	total := 0.0
	for _, s := range db.Sequences {
		for _, sym := range s.Symbols {
			counts[sym]++
			total++
		}
	}
	for i := range counts {
		if counts[i] == 0 {
			counts[i] = 1
			total++
		}
	}
	if total == 0 {
		uniform := 1 / float64(len(counts))
		for i := range counts {
			counts[i] = uniform
		}
		return counts
	}
	for i := range counts {
		counts[i] /= total
	}
	return counts
}

// Labels returns the distinct ground-truth labels present in the database,
// sorted lexicographically. Sequences with an empty label are skipped.
func (db *Database) Labels() []string {
	set := make(map[string]bool)
	for _, s := range db.Sequences {
		if s.Label != "" {
			set[s.Label] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// LabelCounts returns the number of sequences carrying each non-empty label.
func (db *Database) LabelCounts() map[string]int {
	out := make(map[string]int)
	for _, s := range db.Sequences {
		if s.Label != "" {
			out[s.Label]++
		}
	}
	return out
}

// Subset returns a new database sharing the alphabet and containing the
// sequences at the given indices, in the given order.
func (db *Database) Subset(indices []int) *Database {
	out := NewDatabase(db.Alphabet)
	out.Sequences = make([]*Sequence, 0, len(indices))
	for _, i := range indices {
		out.Sequences = append(out.Sequences, db.Sequences[i])
	}
	return out
}

// Validate checks every sequence for out-of-range symbols and duplicate IDs.
func (db *Database) Validate() error {
	n := Symbol(db.Alphabet.Size())
	ids := make(map[string]bool, len(db.Sequences))
	for _, s := range db.Sequences {
		if s.ID != "" {
			if ids[s.ID] {
				return fmt.Errorf("seq: duplicate sequence ID %q", s.ID)
			}
			ids[s.ID] = true
		}
		for i, sym := range s.Symbols {
			if sym >= n {
				return fmt.Errorf("seq: sequence %q: symbol %d at position %d out of range (alphabet size %d)", s.ID, sym, i, n)
			}
		}
	}
	return nil
}
