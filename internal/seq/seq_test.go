package seq

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAlphabet(t *testing.T) {
	a, err := NewAlphabet("abcabc")
	if err != nil {
		t.Fatalf("NewAlphabet: %v", err)
	}
	if a.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (duplicates must collapse)", a.Size())
	}
	if a.String() != "abc" {
		t.Fatalf("String = %q, want %q", a.String(), "abc")
	}
	for i, r := range "abc" {
		sym, ok := a.Symbol(r)
		if !ok || sym != Symbol(i) {
			t.Errorf("Symbol(%q) = %d,%v; want %d,true", r, sym, ok, i)
		}
		if a.Rune(Symbol(i)) != r {
			t.Errorf("Rune(%d) = %q, want %q", i, a.Rune(Symbol(i)), r)
		}
	}
	if _, ok := a.Symbol('z'); ok {
		t.Error("Symbol('z') should not be present")
	}
}

func TestNewAlphabetEmpty(t *testing.T) {
	if _, err := NewAlphabet(""); err == nil {
		t.Fatal("NewAlphabet(\"\") should fail")
	}
}

func TestMustAlphabetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlphabet(\"\") should panic")
		}
	}()
	MustAlphabet("")
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := MustAlphabet("abcdefgh")
	in := "hagfedcbabc"
	syms, err := a.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := a.Decode(syms); got != in {
		t.Fatalf("round trip = %q, want %q", got, in)
	}
}

func TestEncodeRejectsForeignRune(t *testing.T) {
	a := MustAlphabet("abc")
	if _, err := a.Encode("abz"); err == nil {
		t.Fatal("Encode should reject rune outside alphabet")
	}
}

func TestEncodeDecodeUnicode(t *testing.T) {
	a := MustAlphabet("αβγ∂")
	in := "∂γβααβ"
	syms, err := a.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := a.Decode(syms); got != in {
		t.Fatalf("round trip = %q, want %q", got, in)
	}
}

func TestSequenceReversed(t *testing.T) {
	a := MustAlphabet("abc")
	syms, _ := a.Encode("aabc")
	s := &Sequence{ID: "x", Symbols: syms}
	if got := a.Decode(s.Reversed()); got != "cbaa" {
		t.Fatalf("Reversed = %q, want %q", got, "cbaa")
	}
	// Reversed must not mutate the original.
	if got := a.Decode(s.Symbols); got != "aabc" {
		t.Fatalf("original mutated to %q", got)
	}
}

func TestReversedInvolution(t *testing.T) {
	// reverse(reverse(x)) == x for arbitrary symbol content.
	f := func(raw []byte) bool {
		syms := make([]Symbol, len(raw))
		for i, b := range raw {
			syms[i] = Symbol(b)
		}
		s := &Sequence{Symbols: syms}
		rr := (&Sequence{Symbols: s.Reversed()}).Reversed()
		if len(rr) != len(syms) {
			return false
		}
		for i := range rr {
			if rr[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDatabaseBasics(t *testing.T) {
	a := MustAlphabet("ab")
	db := NewDatabase(a)
	if err := db.AddString("s1", "L1", "aab"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddString("s2", "L2", "bb"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddString("s3", "", "a"); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d, want 3", db.Len())
	}
	if db.TotalSymbols() != 6 {
		t.Fatalf("TotalSymbols = %d, want 6", db.TotalSymbols())
	}
	if got := db.AverageLength(); got != 2 {
		t.Fatalf("AverageLength = %v, want 2", got)
	}
	labels := db.Labels()
	if len(labels) != 2 || labels[0] != "L1" || labels[1] != "L2" {
		t.Fatalf("Labels = %v, want [L1 L2]", labels)
	}
	counts := db.LabelCounts()
	if counts["L1"] != 1 || counts["L2"] != 1 {
		t.Fatalf("LabelCounts = %v", counts)
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSymbolFrequencies(t *testing.T) {
	a := MustAlphabet("abc")
	db := NewDatabase(a)
	// 4 a's, 2 b's, 0 c's -> c gets one pseudo-count, total 7.
	db.AddString("s1", "", "aaba")
	db.AddString("s2", "", "ab")
	p := db.SymbolFrequencies()
	sum := 0.0
	for _, v := range p {
		if v <= 0 {
			t.Fatalf("frequency must be positive, got %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("frequencies sum to %v, want 1", sum)
	}
	if p[0] != 4.0/7 || p[1] != 2.0/7 || p[2] != 1.0/7 {
		t.Fatalf("frequencies = %v, want [4/7 2/7 1/7]", p)
	}
}

func TestSymbolFrequenciesEmptyDatabase(t *testing.T) {
	db := NewDatabase(MustAlphabet("abcd"))
	p := db.SymbolFrequencies()
	for _, v := range p {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("empty db frequencies = %v, want uniform", p)
		}
	}
}

func TestSymbolFrequenciesSumToOne(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		a := MustAlphabet("abcdefgh")
		db := NewDatabase(a)
		syms := make([]Symbol, len(raw))
		for i, b := range raw {
			syms[i] = Symbol(b % 8)
		}
		db.Add(&Sequence{ID: "s", Symbols: syms})
		sum := 0.0
		for _, v := range db.SymbolFrequencies() {
			if v <= 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubset(t *testing.T) {
	a := MustAlphabet("ab")
	db := NewDatabase(a)
	for i := 0; i < 5; i++ {
		db.Add(&Sequence{ID: string(rune('a' + i)), Symbols: []Symbol{Symbol(i % 2)}})
	}
	sub := db.Subset([]int{4, 0, 2})
	if sub.Len() != 3 || sub.Sequences[0].ID != "e" || sub.Sequences[1].ID != "a" || sub.Sequences[2].ID != "c" {
		t.Fatalf("Subset wrong: %+v", sub.Sequences)
	}
	if sub.Alphabet != db.Alphabet {
		t.Fatal("Subset must share the alphabet")
	}
}

func TestValidateCatchesBadSymbol(t *testing.T) {
	db := NewDatabase(MustAlphabet("ab"))
	db.Add(&Sequence{ID: "bad", Symbols: []Symbol{0, 7}})
	if err := db.Validate(); err == nil {
		t.Fatal("Validate should reject out-of-range symbol")
	}
}

func TestValidateCatchesDuplicateID(t *testing.T) {
	db := NewDatabase(MustAlphabet("ab"))
	db.Add(&Sequence{ID: "x", Symbols: []Symbol{0}})
	db.Add(&Sequence{ID: "x", Symbols: []Symbol{1}})
	if err := db.Validate(); err == nil {
		t.Fatal("Validate should reject duplicate IDs")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	a := MustAlphabet("abcd")
	db := NewDatabase(a)
	db.AddString("s1", "fam1", strings.Repeat("abcd", 50)) // exercises line wrapping
	db.AddString("s2", "", "dcba")
	db.AddString("s3", "fam2", "a")

	var buf strings.Builder
	if err := Write(&buf, db); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Alphabet.String() != "abcd" {
		t.Fatalf("alphabet = %q, want abcd", got.Alphabet.String())
	}
	if got.Len() != db.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), db.Len())
	}
	for i := range db.Sequences {
		want, have := db.Sequences[i], got.Sequences[i]
		if want.ID != have.ID || want.Label != have.Label {
			t.Fatalf("sequence %d header mismatch: %q/%q vs %q/%q", i, have.ID, have.Label, want.ID, want.Label)
		}
		if a.Decode(want.Symbols) != got.Alphabet.Decode(have.Symbols) {
			t.Fatalf("sequence %d data mismatch", i)
		}
	}
}

func TestReadInfersAlphabet(t *testing.T) {
	in := "> s1 lab\nhello\n> s2\nworld\n"
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	if got := db.Alphabet.Decode(db.Sequences[1].Symbols); got != "world" {
		t.Fatalf("decoded = %q, want world", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"data before header":  "abc\n> s1\nabc\n",
		"duplicate directive": "# alphabet: ab\n# alphabet: ab\n> s\na\n",
		"empty stream":        "",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read should fail", name)
		}
	}
}

func TestReadSkipsCommentsAndBlankLines(t *testing.T) {
	in := "# a comment\n\n> s1\n# mid comment\nab\n\nba\n"
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := db.Alphabet.Decode(db.Sequences[0].Symbols); got != "abba" {
		t.Fatalf("decoded = %q, want abba (multi-line concatenation)", got)
	}
}

func TestWriteRejectsStructuralAlphabet(t *testing.T) {
	// '#' and '>' at the start of a wrapped data line would be parsed as
	// comment/header; Write must refuse such alphabets outright.
	for _, alpha := range []string{"a#b", "a>b", "a b"} {
		db := NewDatabase(MustAlphabet(alpha))
		db.Add(&Sequence{ID: "s", Symbols: []Symbol{0}})
		var buf strings.Builder
		if err := Write(&buf, db); err == nil {
			t.Errorf("alphabet %q: Write should fail", alpha)
		}
	}
}

func TestWriteRejectsWhitespaceID(t *testing.T) {
	db := NewDatabase(MustAlphabet("a"))
	db.Add(&Sequence{ID: "bad id", Symbols: []Symbol{0}})
	var buf strings.Builder
	if err := Write(&buf, db); err == nil {
		t.Fatal("Write should reject IDs containing whitespace")
	}
}

func TestSegmentAliases(t *testing.T) {
	a := MustAlphabet("abc")
	syms, _ := a.Encode("abcabc")
	s := &Sequence{Symbols: syms}
	if got := a.Decode(s.Segment(1, 4)); got != "bca" {
		t.Fatalf("Segment(1,4) = %q, want bca", got)
	}
	if got := a.Decode(s.Segment(0, 0)); got != "" {
		t.Fatalf("empty segment = %q", got)
	}
}
