package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"cluseq/internal/obs"
	"cluseq/internal/stream"
)

// IngestRequest is the body of POST /v1/ingest. Exactly one of Sequence
// and Sequences must be set; the engine absorbs the sequences in order.
type IngestRequest struct {
	// Sequence is the single-ingest form.
	Sequence string `json:"sequence,omitempty"`
	// Sequences is the batch form.
	Sequences []string `json:"sequences,omitempty"`
}

// IngestResponse answers POST /v1/ingest. Results are index-aligned
// with the request's sequences (the single form yields one entry); a
// bad sequence is rejected alone, never the whole batch.
type IngestResponse struct {
	Results []stream.Verdict `json:"results"`
	// Accepted/NewClusters/Rejected tally this request's verdicts.
	Accepted    int `json:"accepted"`
	NewClusters int `json:"new_clusters"`
	Rejected    int `json:"rejected"`
	// Clusters is the live cluster count after the batch.
	Clusters int `json:"clusters"`
	// ElapsedMs is the server-side ingest time.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// handleIngest feeds sequences into the streaming engine. Unlike
// classify there is no per-request parallel fan-out: ingest order is
// the clustering input, so the engine serializes arrivals internally
// and the handler simply hands the batch over in one call.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.stream == nil {
		s.fail(w, r, http.StatusServiceUnavailable, "unavailable", "streaming ingest is disabled; start cluseqd with -stream")
		return
	}
	start := time.Now()
	tr := obs.TraceFromContext(r.Context())
	var req IngestRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	dec := tr.StartSpan("ingest_decode")
	err := json.NewDecoder(body).Decode(&req)
	dec.End()
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, r, http.StatusRequestEntityTooLarge, "too_large", "request body exceeds %d bytes", s.maxBodyBytes)
			return
		}
		s.fail(w, r, http.StatusBadRequest, "bad_request", "malformed JSON: %v", err)
		return
	}
	single := req.Sequence != ""
	if single && len(req.Sequences) > 0 {
		s.fail(w, r, http.StatusBadRequest, "bad_request", `set either "sequence" or "sequences", not both`)
		return
	}
	seqs := req.Sequences
	if single {
		seqs = []string{req.Sequence}
	}
	if len(seqs) == 0 {
		s.fail(w, r, http.StatusBadRequest, "bad_request", `missing "sequence" or "sequences"`)
		return
	}
	if len(seqs) > s.maxBatch {
		s.fail(w, r, http.StatusRequestEntityTooLarge, "too_large", "batch of %d exceeds the %d-sequence limit", len(seqs), s.maxBatch)
		return
	}
	s.metrics.ingestBatch.Observe(float64(len(seqs)))

	// The ctx-aware ingest records the time queued behind the engine
	// mutex and the ingest work as separate spans on this request's
	// trace (plus a consolidation span when this batch triggers one).
	resp := IngestResponse{Results: s.stream.IngestStringsCtx(r.Context(), seqs)}
	for _, v := range resp.Results {
		switch v.Status {
		case stream.StatusAccepted:
			resp.Accepted++
		case stream.StatusNewCluster:
			resp.NewClusters++
		default:
			resp.Rejected++
		}
	}
	resp.Clusters = s.stream.Stats().Clusters
	elapsed := time.Since(start)
	s.metrics.ingestLatency.Observe(float64(elapsed) / float64(time.Millisecond))
	resp.ElapsedMs = float64(elapsed) / float64(time.Millisecond)
	enc := tr.StartSpan("ingest_encode")
	writeJSON(w, resp)
	enc.End()
}

// handleIngestStats reports the streaming engine's counters and sizes
// (stream.Stats).
func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	if s.stream == nil {
		s.fail(w, r, http.StatusServiceUnavailable, "unavailable", "streaming ingest is disabled; start cluseqd with -stream")
		return
	}
	writeJSON(w, s.stream.Stats())
}
