package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cluseq/internal/core"
	"cluseq/internal/obs"
	"cluseq/internal/registry"
	"cluseq/internal/seq"
	"cluseq/internal/stream"
)

// newStreamServer builds a Server over an empty model directory plus a
// live streaming engine publishing into the registry under "stream" —
// the same wiring cluseqd -stream sets up.
func newStreamServer(t *testing.T, consolidateEvery int) (*Server, *stream.Engine) {
	t.Helper()
	reg, _, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// One metrics registry spans the engine and the server, mirroring
	// cluseqd's wiring, so /metrics projects the stream series.
	met := obs.NewRegistry()
	eng, err := stream.New(stream.Config{
		Alphabet:            seq.MustAlphabet("abcd"),
		SimilarityThreshold: 1.05,
		MaxDepth:            4,
		Significance:        2,
		FixedSignificance:   true,
		ConsolidateEvery:    consolidateEvery,
		Workers:             2,
		Publish: func(clf *core.Classifier, version uint64) {
			if err := reg.Publish("stream", clf, version); err != nil {
				t.Errorf("Publish v%d: %v", version, err)
			}
		},
		Obs: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	s, err := New(Config{Registry: reg, Stream: eng, Obs: met})
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func postIngest(t *testing.T, url, body string) (*http.Response, IngestResponse, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out IngestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return resp, out, data
}

func TestIngestDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{}) // no Stream configured
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _, body := postIngest(t, ts.URL, `{"sequence":"abab"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest without -stream = %d: %s", resp.StatusCode, body)
	}
	r2, err := http.Get(ts.URL + "/v1/ingest/stats")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest stats without -stream = %d", r2.StatusCode)
	}
}

func TestIngestSingleAndValidation(t *testing.T) {
	s, _ := newStreamServer(t, 1024)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out, body := postIngest(t, ts.URL, `{"sequence":"abababab"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, body)
	}
	if len(out.Results) != 1 || out.Results[0].Status != stream.StatusNewCluster {
		t.Fatalf("first ingest verdicts = %+v, want one new_cluster", out.Results)
	}
	if out.NewClusters != 1 || out.Clusters != 1 {
		t.Fatalf("tallies = %+v, want NewClusters=1 Clusters=1", out)
	}

	for payload, want := range map[string]int{
		`{"sequence":"ab","sequences":["ab"]}`: http.StatusBadRequest,
		`{}`:                                   http.StatusBadRequest,
		`{"sequences":[]}`:                     http.StatusBadRequest,
		`not json`:                             http.StatusBadRequest,
	} {
		resp, _, data := postIngest(t, ts.URL, payload)
		if resp.StatusCode != want {
			t.Errorf("ingest %s = %d, want %d: %s", payload, resp.StatusCode, want, data)
		}
	}
}

func TestIngestBatchAlignmentAndStats(t *testing.T) {
	s, _ := newStreamServer(t, 1024)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Invalid sequences ('z' outside alphabet) planted at fixed indices
	// must be exactly the rejected entries, index-aligned.
	markers := map[int]bool{0: true, 5: true}
	batch := make([]string, 8)
	for i := range batch {
		if markers[i] {
			batch[i] = "zzzz"
		} else {
			batch[i] = "abababab"
		}
	}
	raw, _ := json.Marshal(IngestRequest{Sequences: batch})
	resp, out, body := postIngest(t, ts.URL, string(raw))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch ingest = %d: %s", resp.StatusCode, body)
	}
	if len(out.Results) != len(batch) {
		t.Fatalf("%d results, want %d", len(out.Results), len(batch))
	}
	for i, v := range out.Results {
		if got, want := v.Status == stream.StatusRejected, markers[i]; got != want {
			t.Errorf("index %d: status %s (reason %q), marker=%v", i, v.Status, v.Reason, want)
		}
	}
	if out.Rejected != len(markers) {
		t.Errorf("Rejected = %d, want %d", out.Rejected, len(markers))
	}
	if out.Accepted+out.NewClusters != len(batch)-len(markers) {
		t.Errorf("Accepted+NewClusters = %d, want %d", out.Accepted+out.NewClusters, len(batch)-len(markers))
	}

	r2, err := http.Get(ts.URL + "/v1/ingest/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st stream.Stats
	decErr := json.NewDecoder(r2.Body).Decode(&st)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || decErr != nil {
		t.Fatalf("ingest stats = %d, decode %v", r2.StatusCode, decErr)
	}
	if st.Ingested != int64(len(batch)) || st.Rejected != int64(len(markers)) {
		t.Fatalf("stats = %+v, want ingested=%d rejected=%d", st, len(batch), len(markers))
	}
}

// TestSoakIngestClassifyUnderConsolidation sustains concurrent ingest
// and classify traffic while the engine consolidates and republishes
// every few ingests (run with -race in CI). Invariants, checked on every
// response:
//
//   - zero non-200s on both endpoints — consolidation and snapshot
//     publication must be invisible to classification;
//   - every classify sees a complete model: one result, no per-sequence
//     error, valid cluster/similarity fields;
//   - ingest batch results stay index-aligned, with the planted invalid
//     markers the exact rejected entries.
func TestSoakIngestClassifyUnderConsolidation(t *testing.T) {
	s, eng := newStreamServer(t, 16) // consolidate (and republish) every 16 ingests
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Seed the stream and force a first publication so "stream" is
	// classifiable before the classify workers start.
	seed := make([]string, 24)
	for i := range seed {
		if i%2 == 0 {
			seed[i] = "abababababab"
		} else {
			seed[i] = "cdcdcdcdcdcd"
		}
	}
	raw, _ := json.Marshal(IngestRequest{Sequences: seed})
	resp, _, body := postIngest(t, ts.URL, string(raw))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed ingest = %d: %s", resp.StatusCode, body)
	}
	eng.ConsolidateNow()
	if v := eng.Stats().PublishedVersion; v == 0 {
		t.Fatal("no snapshot published after seed + consolidate")
	}

	duration := 2 * time.Second
	if testing.Short() {
		duration = 250 * time.Millisecond
	}
	deadline := time.Now().Add(duration)

	const batchLen = 12
	markers := map[int]bool{2: true, 9: true}
	batch := make([]string, batchLen)
	for i := range batch {
		switch {
		case markers[i]:
			batch[i] = "zzzz"
		case i%2 == 0:
			batch[i] = "abababababab"
		default:
			batch[i] = "cdcdcdcdcdcd"
		}
	}
	ingestBody, _ := json.Marshal(IngestRequest{Sequences: batch})

	var (
		wg         sync.WaitGroup
		ingests    atomic.Int64
		classifies atomic.Int64
	)
	// Ingest workers keep the engine consolidating under the classifiers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := client.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(string(ingestBody)))
				if err != nil {
					t.Errorf("ingest worker %d: %v", w, err)
					return
				}
				var out IngestResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					t.Errorf("ingest worker %d: status %d, decode %v", w, resp.StatusCode, decErr)
					return
				}
				if len(out.Results) != batchLen {
					t.Errorf("ingest worker %d: %d results, want %d", w, len(out.Results), batchLen)
					return
				}
				for i, v := range out.Results {
					if got, want := v.Status == stream.StatusRejected, markers[i]; got != want {
						t.Errorf("ingest worker %d: index %d status %s, marker=%v", w, i, v.Status, want)
						return
					}
				}
				ingests.Add(1)
			}
		}(w)
	}
	// Classify workers hit the continuously republished stream model.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := client.Post(ts.URL+"/v1/classify", "application/json",
					strings.NewReader(`{"model":"stream","sequence":"abababababab"}`))
				if err != nil {
					t.Errorf("classify worker %d: %v", w, err)
					return
				}
				var out ClassifyResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					t.Errorf("classify worker %d: status %d, decode %v", w, resp.StatusCode, decErr)
					return
				}
				if len(out.Results) != 1 || out.Results[0].Error != "" {
					t.Errorf("classify worker %d: incomplete snapshot result %+v", w, out.Results)
					return
				}
				classifies.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if ingests.Load() == 0 || classifies.Load() == 0 {
		t.Fatalf("soak made no progress: %d ingests, %d classifies", ingests.Load(), classifies.Load())
	}
	st := eng.Stats()
	if st.Consolidations == 0 || st.PublishedVersion < 2 {
		t.Fatalf("soak never consolidated under fire: %+v", st)
	}
	t.Logf("soak: %d ingest batches, %d classifies, %d consolidations, version %d",
		ingests.Load(), classifies.Load(), st.Consolidations, st.PublishedVersion)
}
