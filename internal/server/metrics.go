package server

import (
	"fmt"
	"strings"
	"time"

	"cluseq/internal/obs"
)

// metrics is the daemon's view into its obs registry. All counters live
// in the registry itself (shared with the engine/pool/registry metrics
// when the caller supplies one, see Config.Obs); this struct only holds
// the start time and pre-registered handles for the request path, so
// handlers never look a series up by name per request.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	sequences *obs.Counter   // sequences classified
	outliers  *obs.Counter   // of which below every threshold
	uptime    *obs.Gauge     // refreshed at each Prometheus scrape
	latency   *obs.Histogram // classify latency, milliseconds (legacy JSON shape)
	inflight  *obs.Gauge     // requests currently inside a handler
	batchSize *obs.Histogram // sequences per classify request

	ingestLatency *obs.Histogram // ingest request latency, milliseconds
	ingestBatch   *obs.Histogram // sequences per ingest request
}

// latencyDomainMs bounds the latency histogram; slower requests clamp
// into the last bucket, so tail quantiles saturate at the domain edge.
const latencyDomainMs = 2000

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		start:     time.Now(),
		reg:       reg,
		sequences: reg.Counter("cluseqd_sequences_total"),
		outliers:  reg.Counter("cluseqd_outliers_total"),
		uptime:    reg.Gauge("cluseqd_uptime_seconds"),
		// 400 buckets of 5 ms over [0, 2s).
		latency: reg.Histogram("cluseqd_classify_latency_ms", 0, latencyDomainMs, 400),
		// Load-harness-facing series: the inflight gauge exposes queueing
		// under open-loop load, and the batch-size distribution lets a
		// replayed scenario be checked against what the server saw.
		inflight: reg.Gauge("cluseqd_inflight_requests"),
		// 256 buckets of width 4 over [0, 1024), the default MaxBatch.
		batchSize: reg.Histogram("cluseqd_classify_batch_size", 0, 1024, 256),
		// Ingest mirrors the classify shapes so dashboards can overlay
		// the two request kinds.
		ingestLatency: reg.Histogram("cluseqd_ingest_latency_ms", 0, latencyDomainMs, 400),
		ingestBatch:   reg.Histogram("cluseqd_ingest_batch_size", 0, 1024, 256),
	}
}

//cluseq:hotpath
func (m *metrics) observeLatency(d time.Duration) {
	m.latency.Observe(float64(d) / float64(time.Millisecond))
}

// observeRoute records one finished request: a per-route count, a
// per-route/status count, and a per-route latency observation carrying
// the request's trace ID as the series exemplar (zero for untraced
// routes — health and metrics probes). Called from the outermost
// middleware, so it sees every endpoint. The registry lookup here is a
// read-locked map hit — registration happened on the first request per
// series.
func (m *metrics) observeRoute(route, status string, d time.Duration, exemplar obs.TraceID) {
	m.reg.Counter("cluseqd_requests_total", "route", route).Inc()
	m.reg.Counter("cluseqd_responses_total", "route", route, "status", status).Inc()
	m.routeLatency(route).ObserveExemplar(d.Seconds(), exemplar)
}

// routeLatency is the single registration site for the per-route
// request-seconds family; the SLO gauges read the same handles back at
// scrape time, so the two must never drift apart in domain or labels.
func (m *metrics) routeLatency(route string) *obs.Histogram {
	return m.reg.Histogram("cluseqd_request_seconds", 0, 5, 500, "route", route)
}

func (m *metrics) countError(class string) {
	m.reg.Counter("cluseqd_errors_total", "class", class).Inc()
}

func (m *metrics) countClassifications(model string, n int64) {
	m.reg.Counter("cluseqd_classifications_total", "model", model).Add(n)
}

// snapshot renders the registry into the daemon's legacy JSON metrics
// shape (the GET /metrics default). The keys and nesting predate the
// obs registry and are kept stable for existing scrapers; the maps are
// now projections of the labeled obs series.
func (m *metrics) snapshot() map[string]any {
	requests := map[string]int64{}
	errors := map[string]int64{}
	perModel := map[string]int64{}
	streamSeries := map[string]any{}
	for _, mt := range m.reg.Snapshot() {
		// Project every cluseq_stream_* family (engine and its pool) by
		// full family name, so a series added to the engine later shows
		// up here without another projection fix. All stream series are
		// unlabeled; TestSnapshotProjectsStreamSeries diffs this map
		// against the Prometheus exposition.
		if strings.HasPrefix(mt.Name, "cluseq_stream_") {
			if mt.Kind == obs.KindHistogram {
				h := map[string]any{"count": mt.Count, "sum": mt.Sum}
				for _, qv := range mt.Quantiles {
					h[fmt.Sprintf("p%g", qv.Q*100)] = qv.Value
				}
				streamSeries[mt.Name] = h
			} else {
				streamSeries[mt.Name] = mt.Value
			}
		}
		switch mt.Name {
		case "cluseqd_requests_total":
			if r := mt.Label("route"); r != "" {
				requests[r] = int64(mt.Value)
			}
		case "cluseqd_errors_total":
			if c := mt.Label("class"); c != "" {
				errors[c] = int64(mt.Value)
			}
		case "cluseqd_classifications_total":
			if name := mt.Label("model"); name != "" {
				perModel[name] = int64(mt.Value)
			}
		}
	}
	p50, _ := m.latency.Quantile(0.50)
	p95, _ := m.latency.Quantile(0.95)
	p99, _ := m.latency.Quantile(0.99)

	seqs := m.sequences.Value()
	outliers := m.outliers.Value()
	rate := 0.0
	if seqs > 0 {
		rate = float64(outliers) / float64(seqs)
	}
	out := map[string]any{
		"uptime_seconds":  time.Since(m.start).Seconds(),
		"requests":        requests,
		"errors":          errors,
		"sequences_total": seqs,
		"classifications": perModel,
		"outliers_total":  outliers,
		"outlier_rate":    rate,
		"latency_ms": map[string]any{
			"count": m.latency.Count(),
			"p50":   p50,
			"p95":   p95,
			"p99":   p99,
		},
	}
	// Key absent entirely when streaming is disabled, preserving the
	// pre-stream JSON shape for existing scrapers.
	if len(streamSeries) > 0 {
		out["stream"] = streamSeries
	}
	return out
}
