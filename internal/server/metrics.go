package server

import (
	"expvar"
	"sync"
	"time"

	"cluseq/internal/histogram"
)

// metrics holds the daemon's counters. Counters are expvar types —
// lock-free atomic increments on the request path — but deliberately
// not published to the global expvar namespace, so multiple servers
// (and tests) can coexist in one process; /metrics renders them from a
// snapshot instead of expvar.Handler.
type metrics struct {
	start time.Time

	requests  expvar.Map // per endpoint: classify, models, reload, …
	errors    expvar.Map // per class: bad_request, not_found, too_large, unavailable, internal
	sequences expvar.Int // sequences classified
	outliers  expvar.Int // of which below every threshold
	perModel  expvar.Map // classifications per model name

	// latency collects per-request classify latency in milliseconds.
	// internal/histogram is not concurrency-safe, so observations take
	// this mutex — one short critical section per request, after the
	// response is computed.
	latencyMu sync.Mutex
	latency   *histogram.Histogram
}

// latencyDomainMs bounds the latency histogram; slower requests clamp
// into the last bucket, so tail quantiles saturate at the domain edge.
const latencyDomainMs = 2000

func newMetrics() *metrics {
	m := &metrics{start: time.Now()}
	m.requests.Init()
	m.errors.Init()
	m.perModel.Init()
	// 400 buckets of 5 ms over [0, 2s).
	m.latency = mustHistogram(0, latencyDomainMs, 400)
	return m
}

func mustHistogram(lo, hi float64, buckets int) *histogram.Histogram {
	h, err := histogram.New(lo, hi, buckets)
	if err != nil {
		panic(err)
	}
	return h
}

func (m *metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.latencyMu.Lock()
	m.latency.Add(ms)
	m.latencyMu.Unlock()
}

// expvarMapToJSON flattens an expvar.Map of expvar.Int values.
func expvarMapToJSON(m *expvar.Map) map[string]int64 {
	out := map[string]int64{}
	m.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			out[kv.Key] = v.Value()
		}
	})
	return out
}

// snapshot renders every counter into a JSON-encodable tree for the
// /metrics endpoint.
func (m *metrics) snapshot() map[string]any {
	m.latencyMu.Lock()
	count := m.latency.Count()
	p50, _ := m.latency.Quantile(0.50)
	p95, _ := m.latency.Quantile(0.95)
	p99, _ := m.latency.Quantile(0.99)
	m.latencyMu.Unlock()

	seqs := m.sequences.Value()
	outliers := m.outliers.Value()
	rate := 0.0
	if seqs > 0 {
		rate = float64(outliers) / float64(seqs)
	}
	return map[string]any{
		"uptime_seconds":  time.Since(m.start).Seconds(),
		"requests":        expvarMapToJSON(&m.requests),
		"errors":          expvarMapToJSON(&m.errors),
		"sequences_total": seqs,
		"classifications": expvarMapToJSON(&m.perModel),
		"outliers_total":  outliers,
		"outlier_rate":    rate,
		"latency_ms": map[string]any{
			"count": count,
			"p50":   p50,
			"p95":   p95,
			"p99":   p99,
		},
	}
}
