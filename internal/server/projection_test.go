package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSnapshotProjectsStreamSeries is the projection-completeness gate:
// every cluseq_stream_* family in the Prometheus exposition must also
// appear under the legacy JSON endpoint's "stream" key. The JSON
// projection previously whitelisted series by name and silently dropped
// families added to the engine later; projecting by prefix and diffing
// against the exposition here keeps the two views from drifting again.
func TestSnapshotProjectsStreamSeries(t *testing.T) {
	s, _ := newStreamServer(t, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Enough ingests to trip a consolidation, so the consolidation and
	// pool series are all live, then one classify against the published
	// stream model to touch the serving side too.
	for i := 0; i < 6; i++ {
		resp, _, data := postIngest(t, ts.URL, `{"sequences":["abababab","babababa"]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d: %s", resp.StatusCode, data)
		}
	}

	promFamilies := map[string]bool{}
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(prom), "\n") {
		// "# TYPE <family> <kind>" names every exported family exactly.
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, _, _ := strings.Cut(rest, " ")
			if strings.HasPrefix(name, "cluseq_stream_") {
				promFamilies[name] = true
			}
		}
	}
	if len(promFamilies) == 0 {
		t.Fatal("no cluseq_stream_* families in the Prometheus exposition; did the engine metrics move?")
	}

	var legacy struct {
		Stream map[string]json.RawMessage `json:"stream"`
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(data, &legacy); err != nil {
		t.Fatalf("bad /metrics JSON: %v", err)
	}

	for name := range promFamilies {
		if _, ok := legacy.Stream[name]; !ok {
			t.Errorf("family %s exported to Prometheus but missing from the JSON stream projection", name)
		}
	}
	for name := range legacy.Stream {
		if !promFamilies[name] {
			t.Errorf("JSON stream projection has %s with no matching Prometheus family", name)
		}
	}
}

// TestSnapshotOmitsStreamKeyWhenDisabled pins the legacy JSON shape:
// with streaming off, the "stream" key is absent entirely, exactly as it
// was before the engine existed.
func TestSnapshotOmitsStreamKeyWhenDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad /metrics JSON: %v", err)
	}
	if _, ok := out["stream"]; ok {
		t.Error(`"stream" key present with streaming disabled; legacy scrapers expect it absent`)
	}
}
