package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"time"

	"cluseq/internal/obs"
)

// ctxKey is the private context-key type for request-scoped values.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDHeader is the header a caller sets to propagate its own
// request ID; the daemon echoes it on every response (generating one
// when absent) so a classification can be correlated across client
// logs, daemon logs, and error bodies.
const RequestIDHeader = "X-Request-ID"

// RequestID returns the request's correlation ID, or "" outside a
// request handled by the server.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// sanitizeRequestID accepts a caller-supplied ID only when it is short
// printable ASCII — anything else (header injection attempts, binary
// junk, oversized blobs) is discarded and replaced by a generated ID.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return ""
		}
	}
	return id
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; for a log
		// correlation ID a constant fallback merely degrades uniqueness.
		return "00000000OOOOOOOO"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the status code a handler (or the timeout
// wrapper) sends, for the access log and per-status counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// routeOf maps a request path to the stable route label used by the
// request metrics and the legacy JSON "requests" map. The names for the
// API routes predate the obs registry (classify/models/reload) and are
// kept for scraper compatibility.
func routeOf(path string) string {
	switch path {
	case "/v1/classify":
		return "classify"
	case "/v1/models":
		return "models"
	case "/v1/models/reload":
		return "reload"
	case "/v1/ingest":
		return "ingest"
	case "/v1/ingest/stats":
		return "ingest_stats"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/metrics":
		return "metrics"
	case "/debug/traces":
		return "debug_traces"
	default:
		return "other"
	}
}

// withRequestID is the outermost middleware: it assigns (or adopts) the
// request's correlation ID, echoes it on the response, begins the
// request trace on API routes (adopting an inbound W3C traceparent and
// echoing the trace ID as X-Trace-ID), and emits one access-log line
// and one set of per-route observations per request.
//
// Note the asymmetry with finishTrace: the trace BEGINS here — so the
// X-Trace-ID header is set before any body bytes go out and the context
// carries the trace into the handler — but it FINISHES inside the
// timeout wrapper, on the handler's own goroutine (see finishTrace).
// This middleware therefore never touches the trace after ServeHTTP
// returns; it works from the identity captured at Begin time.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := context.WithValue(r.Context(), requestIDKey, id)
		route := routeOf(r.URL.Path)
		var exemplar obs.TraceID
		traceSuffix := ""
		if traced(r.URL.Path) {
			inbound, _ := obs.ParseTraceparent(r.Header.Get(TraceparentHeader))
			if tr := s.flight.Begin(route, inbound); tr != nil {
				exemplar = tr.TraceID()
				hexID := exemplar.String()
				w.Header().Set(TraceIDHeader, hexID)
				ctx = obs.ContextWithTrace(ctx, tr)
				traceSuffix = " trace=" + hexID
			}
		}
		sw := &statusWriter{ResponseWriter: w}
		s.metrics.inflight.Add(1)
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		s.metrics.inflight.Add(-1)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing; net/http sends 200
		}
		s.metrics.observeRoute(route, strconv.Itoa(status), elapsed, exemplar)
		s.logf("server: %s %s %d %.1fms id=%s%s", r.Method, r.URL.Path, status,
			float64(elapsed)/float64(time.Millisecond), id, traceSuffix)
	})
}
