package server

import (
	"math"
	rtm "runtime/metrics"

	"cluseq/internal/obs"
)

// goStats exports a curated slice of runtime/metrics as cluseqd_go_*
// gauges, refreshed at each Prometheus scrape: the runtime signals that
// explain a latency regression from outside the request path — GC
// pauses, scheduler queuing, goroutine count, and heap size. Quantile
// gauges are read from the runtime's own histograms, so they cover the
// whole process lifetime (like the SLO gauges, rate-window analysis is
// the scraper's job).
type goStats struct {
	samples []rtm.Sample

	goroutines *obs.Gauge
	heapBytes  *obs.Gauge
	gcCycles   *obs.Gauge
	gcPause50  *obs.Gauge
	gcPause99  *obs.Gauge
	schedLat50 *obs.Gauge
	schedLat99 *obs.Gauge
}

// Sample names, in the order goStats.samples is laid out.
const (
	rtGoroutines = "/sched/goroutines:goroutines"
	rtHeapBytes  = "/memory/classes/heap/objects:bytes"
	rtGCCycles   = "/gc/cycles/total:gc-cycles"
	rtGCPauses   = "/gc/pauses:seconds"
	rtSchedLat   = "/sched/latencies:seconds"
)

func newGoStats(reg *obs.Registry) *goStats {
	return &goStats{
		samples: []rtm.Sample{
			{Name: rtGoroutines},
			{Name: rtHeapBytes},
			{Name: rtGCCycles},
			{Name: rtGCPauses},
			{Name: rtSchedLat},
		},
		goroutines: reg.Gauge("cluseqd_go_goroutines"),
		heapBytes:  reg.Gauge("cluseqd_go_heap_bytes"),
		gcCycles:   reg.Gauge("cluseqd_go_gc_cycles"),
		gcPause50:  reg.Gauge("cluseqd_go_gc_pause_p50_seconds"),
		gcPause99:  reg.Gauge("cluseqd_go_gc_pause_p99_seconds"),
		schedLat50: reg.Gauge("cluseqd_go_sched_latency_p50_seconds"),
		schedLat99: reg.Gauge("cluseqd_go_sched_latency_p99_seconds"),
	}
}

// refresh re-reads the runtime samples into the gauges.
func (g *goStats) refresh() {
	rtm.Read(g.samples)
	for i := range g.samples {
		s := &g.samples[i]
		switch s.Name {
		case rtGoroutines:
			g.goroutines.Set(float64(s.Value.Uint64()))
		case rtHeapBytes:
			g.heapBytes.Set(float64(s.Value.Uint64()))
		case rtGCCycles:
			g.gcCycles.Set(float64(s.Value.Uint64()))
		case rtGCPauses:
			g.gcPause50.Set(rtHistQuantile(s.Value.Float64Histogram(), 0.5))
			g.gcPause99.Set(rtHistQuantile(s.Value.Float64Histogram(), 0.99))
		case rtSchedLat:
			g.schedLat50.Set(rtHistQuantile(s.Value.Float64Histogram(), 0.5))
			g.schedLat99.Set(rtHistQuantile(s.Value.Float64Histogram(), 0.99))
		}
	}
}

// rtHistQuantile reads the q-quantile out of a runtime histogram,
// reporting the upper edge of the bucket the quantile falls in (the
// conservative read for pause/latency data). Open-ended edge buckets
// report their finite edge.
func rtHistQuantile(h *rtm.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
