// Package server implements the HTTP API of the cluseqd serving daemon:
// online classification of sequences against the models of a
// hot-reloadable registry.
//
// # Endpoints
//
//	POST /v1/classify       classify one sequence or a batch against a model
//	GET  /v1/models         list loaded models with parameters and tree sizes
//	POST /v1/models/reload  rescan the model directory (atomic hot reload)
//	POST /v1/ingest         feed one sequence or a batch into the streaming
//	                        clustering engine (requires -stream; per-item
//	                        accept / new-cluster / reject verdicts)
//	GET  /v1/ingest/stats   streaming engine counters, threshold, drift
//	GET  /healthz           liveness (always 200 while the process serves)
//	GET  /readyz            readiness (200 once ≥ 1 model is loaded, else 503)
//	GET  /metrics           JSON counters: requests, errors, per-model
//	                        classifications, outlier rate, latency quantiles;
//	                        ?format=prom yields the same registry as
//	                        Prometheus text exposition (format 0.0.4)
//
// Every response carries an X-Request-ID header (echoing the caller's,
// or generated), the same ID appears in the access log and in JSON
// error bodies, and one access-log line is emitted per request.
//
// Batch classification fans the request's sequences across a bounded
// worker pool shared by all in-flight requests; the request's own
// goroutine always participates, so a large batch can saturate every
// core without ever blocking a concurrent small request (see
// internal/pool).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"cluseq/internal/obs"
	"cluseq/internal/pool"
	"cluseq/internal/registry"
	"cluseq/internal/stream"
)

// Config parameterizes New.
type Config struct {
	// Registry supplies the models; required.
	Registry *registry.Registry
	// MaxBatch caps the number of sequences in one classify request;
	// larger batches are refused with 413. Default 1024.
	MaxBatch int
	// MaxBodyBytes caps a request body. Default 32 MiB.
	MaxBodyBytes int64
	// Workers bounds the classification parallelism shared across all
	// in-flight requests: Workers−1 helper goroutines plus each
	// request's own. 0 uses GOMAXPROCS; 1 classifies serially on the
	// request goroutine.
	Workers int
	// Timeout, when positive, bounds each API request end to end
	// (503 with a JSON error on expiry). Health and metrics endpoints
	// are exempt.
	Timeout time.Duration
	// Logf, when non-nil, receives one access-log line per request plus
	// one line per reload and per refused request.
	Logf func(format string, args ...any)
	// Obs, when non-nil, is the metrics registry the server records into
	// and exposes at GET /metrics — share one registry across server,
	// model registry, and pool to get a single exposition. Nil creates a
	// private registry, so metrics always work.
	Obs *obs.Registry
	// ClassifyDelay, when positive, injects an artificial sleep at the
	// start of every classify request. It exists solely for the load
	// harness: the CI loadperf gate starts a deliberately slowed daemon
	// and asserts the latency-regression comparator fires (see
	// benchmarks/README.md). Never set it in production.
	ClassifyDelay time.Duration
	// Flight, when non-nil, is the request-trace flight recorder the
	// server begins and finishes traces against (see obs.Flight). Nil
	// builds a default always-on recorder (256-trace ring, top-16
	// slowest, 1% head sampling, 250ms slow threshold) wired to Obs —
	// pass a configured one to change sampling or attach a JSONL sink.
	Flight *obs.Flight
	// SLOs declares the service-level objectives exported as
	// cluseqd_slo_* burn-rate gauges (see SLO and ParseSLO). Empty means
	// no SLO series.
	SLOs []SLO
	// Stream, when non-nil, enables POST /v1/ingest and
	// GET /v1/ingest/stats against the given incremental clustering
	// engine. The engine publishes its snapshots into Registry itself
	// (wire its Publish callback to Registry.Publish); the server only
	// routes ingest traffic to it. Without it the ingest endpoints answer
	// 503.
	Stream *stream.Engine
}

// Server routes the API. Construct with New; safe for concurrent use.
type Server struct {
	reg           *registry.Registry
	maxBatch      int
	maxBodyBytes  int64
	timeout       time.Duration
	classifyDelay time.Duration
	pool          *pool.Pool
	metrics       *metrics
	stream        *stream.Engine
	flight        *obs.Flight
	slos          []SLO
	goStats       *goStats
	logf          func(format string, args ...any)

	// classifyHook, when non-nil, runs at the start of every classify
	// request — test instrumentation for shutdown/race tests.
	classifyHook func()
}

// New validates the configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("server: Config.Registry is required")
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("server: MaxBatch must be positive, got %d", cfg.MaxBatch)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		reg:           cfg.Registry,
		maxBatch:      cfg.MaxBatch,
		maxBodyBytes:  cfg.MaxBodyBytes,
		timeout:       cfg.Timeout,
		classifyDelay: cfg.ClassifyDelay,
		pool:          pool.New(cfg.Workers - 1),
		metrics:       newMetrics(cfg.Obs),
		stream:        cfg.Stream,
		flight:        cfg.Flight,
		slos:          cfg.SLOs,
		logf:          logf,
	}
	if s.flight == nil {
		s.flight = obs.NewFlight(obs.FlightConfig{Obs: s.metrics.reg})
	}
	s.goStats = newGoStats(s.metrics.reg)
	s.pool.Instrument(s.metrics.reg, "cluseqd_pool")
	s.reg.Instrument(s.metrics.reg)
	s.updateModelGauges()
	return s, nil
}

// updateModelGauges refreshes the per-model size gauges from each
// loaded classifier. Called at construction and after every successful
// reload — Info walks every tree, far too costly per request. A model
// that is removed keeps its last gauge values (obs series are never
// unregistered); the cluseq_registry_models gauge is authoritative for
// what is live.
func (s *Server) updateModelGauges() {
	for _, m := range s.reg.Models() {
		info := m.Classifier.Info()
		reg := s.metrics.reg
		reg.Gauge("cluseqd_model_clusters", "model", m.Name).Set(float64(info.Clusters))
		reg.Gauge("cluseqd_model_pst_nodes", "model", m.Name).Set(float64(info.TotalNodes))
		reg.Gauge("cluseqd_model_threshold", "model", m.Name).Set(info.Threshold)
		reg.Gauge("cluseqd_model_mapped_bytes", "model", m.Name).Set(float64(m.MappedBytes))
	}
}

// Handler returns the daemon's root handler.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/classify", s.handleClassify)
	api.HandleFunc("GET /v1/models", s.handleModels)
	api.HandleFunc("POST /v1/models/reload", s.handleReload)
	api.HandleFunc("POST /v1/ingest", s.handleIngest)
	api.HandleFunc("GET /v1/ingest/stats", s.handleIngestStats)
	// finishTrace sits inside the timeout wrapper so a timed-out
	// handler's trace still finishes on its own goroutine (see
	// finishTrace for the pooling-safety argument).
	var apiHandler http.Handler = s.finishTrace(api)
	if s.timeout > 0 {
		// TimeoutHandler replies 503 and discards the handler's late
		// writes; the JSON body keeps the error shape uniform.
		msg, _ := json.Marshal(errorBody{Error: "request timed out"})
		apiHandler = http.TimeoutHandler(apiHandler, s.timeout, string(msg))
	}
	root := http.NewServeMux()
	root.Handle("/v1/", apiHandler)
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	return s.withRequestID(root)
}

// Obs returns the metrics registry the server records into (the one
// from Config.Obs, or the private one created in its absence).
func (s *Server) Obs() *obs.Registry { return s.metrics.reg }

// Registry returns the server's model registry.
func (s *Server) Registry() *registry.Registry { return s.reg }

type errorBody struct {
	Error string `json:"error"`
	// RequestID echoes the request's correlation ID so a client log line
	// can be matched to the daemon's without comparing timestamps.
	RequestID string `json:"request_id,omitempty"`
}

// fail writes a JSON error (carrying the request's correlation ID) and
// bumps the error counter for its class.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, code int, class, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.metrics.countError(class)
	id := RequestID(r.Context())
	s.logf("server: %d %s: %s id=%s", code, class, msg, id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg, RequestID: id})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// ClassifyRequest is the body of POST /v1/classify. Exactly one of
// Sequence and Sequences must be set.
type ClassifyRequest struct {
	// Model names the bundle to classify against.
	Model string `json:"model"`
	// Sequence is the single-classification form.
	Sequence string `json:"sequence,omitempty"`
	// Sequences is the batch form.
	Sequences []string `json:"sequences,omitempty"`
}

// ClassifyResult is one sequence's outcome.
type ClassifyResult struct {
	// Cluster is the best cluster index, or −1 for an outlier.
	Cluster int `json:"cluster"`
	// Outlier mirrors Cluster == −1 for readability.
	Outlier bool `json:"outlier,omitempty"`
	// Similarity is the per-symbol normalized similarity to the best
	// cluster.
	Similarity float64 `json:"similarity"`
	// Memberships lists every cluster whose threshold the sequence
	// clears.
	Memberships []int `json:"memberships,omitempty"`
	// Error is set (and the other fields zero) when this sequence could
	// not be classified, e.g. a rune outside the model's alphabet. A
	// bad sequence fails alone, not the whole batch.
	Error string `json:"error,omitempty"`
}

// ClassifyResponse is the body answering POST /v1/classify.
type ClassifyResponse struct {
	Model string `json:"model"`
	// Results is index-aligned with the request's sequences (the single
	// form yields one entry).
	Results  []ClassifyResult `json:"results"`
	Outliers int              `json:"outliers"`
	// ElapsedMs is the server-side classification time.
	ElapsedMs float64 `json:"elapsed_ms"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if s.classifyHook != nil {
		s.classifyHook()
	}
	if s.classifyDelay > 0 {
		// Load-harness slowdown injection; see Config.ClassifyDelay.
		time.Sleep(s.classifyDelay)
	}
	start := time.Now()
	tr := obs.TraceFromContext(r.Context())

	var req ClassifyRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	dec := tr.StartSpan("classify_decode")
	err := json.NewDecoder(body).Decode(&req)
	dec.End()
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, r, http.StatusRequestEntityTooLarge, "too_large", "request body exceeds %d bytes", s.maxBodyBytes)
			return
		}
		s.fail(w, r, http.StatusBadRequest, "bad_request", "malformed JSON: %v", err)
		return
	}
	if req.Model == "" {
		s.fail(w, r, http.StatusBadRequest, "bad_request", `missing "model"`)
		return
	}
	single := req.Sequence != ""
	if single && len(req.Sequences) > 0 {
		s.fail(w, r, http.StatusBadRequest, "bad_request", `set either "sequence" or "sequences", not both`)
		return
	}
	seqs := req.Sequences
	if single {
		seqs = []string{req.Sequence}
	}
	if len(seqs) == 0 {
		s.fail(w, r, http.StatusBadRequest, "bad_request", `missing "sequence" or "sequences"`)
		return
	}
	if len(seqs) > s.maxBatch {
		s.fail(w, r, http.StatusRequestEntityTooLarge, "too_large", "batch of %d exceeds the %d-sequence limit", len(seqs), s.maxBatch)
		return
	}
	s.metrics.batchSize.Observe(float64(len(seqs)))
	m, ok := s.reg.GetTraced(tr, req.Model)
	if !ok {
		s.fail(w, r, http.StatusNotFound, "not_found", "unknown model %q", req.Model)
		return
	}

	// Fan the batch across the shared pool. The model snapshot (m) is
	// pinned for the whole request: a concurrent hot reload swaps the
	// registry map but cannot mutate or retire this classifier.
	ctx := r.Context()
	results := make([]ClassifyResult, len(seqs))
	scan := tr.StartSpan("classify_scan")
	s.pool.Run(len(seqs), func(i int) {
		// Each item's arena scan is a child span; concurrent workers
		// claim distinct slots lock-free, and a batch larger than the
		// span cap degrades to a dropped-spans count, never blocking.
		msp := tr.StartSpanUnder(scan, "classify_model")
		defer msp.End()
		if ctx.Err() != nil {
			results[i] = ClassifyResult{Cluster: -1, Error: "request canceled"}
			return
		}
		a, err := m.Classifier.ClassifyString(seqs[i])
		if err != nil {
			results[i] = ClassifyResult{Cluster: -1, Error: err.Error()}
			return
		}
		results[i] = ClassifyResult{
			Cluster:     a.Cluster,
			Outlier:     a.Cluster == -1,
			Similarity:  a.Similarity,
			Memberships: a.Memberships,
		}
	})
	scan.End()

	resp := ClassifyResponse{Model: req.Model, Results: results}
	classified := 0
	for _, res := range results {
		if res.Error != "" {
			continue
		}
		classified++
		if res.Outlier {
			resp.Outliers++
		}
	}
	s.metrics.sequences.Add(int64(classified))
	s.metrics.outliers.Add(int64(resp.Outliers))
	s.metrics.countClassifications(req.Model, int64(classified))
	elapsed := time.Since(start)
	s.metrics.observeLatency(elapsed)
	resp.ElapsedMs = float64(elapsed) / float64(time.Millisecond)
	enc := tr.StartSpan("classify_encode")
	writeJSON(w, resp)
	enc.End()
}

// ModelEntry is one model in the GET /v1/models listing.
type ModelEntry struct {
	Name     string    `json:"name"`
	File     string    `json:"file"`
	LoadedAt time.Time `json:"loaded_at"`
	// Info carries the model's parameters and per-cluster tree sizes
	// (core.ModelInfo).
	Info any `json:"info"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	models := s.reg.Models()
	out := struct {
		Models []ModelEntry `json:"models"`
	}{Models: make([]ModelEntry, 0, len(models))}
	for _, m := range models {
		out.Models = append(out.Models, ModelEntry{
			Name:     m.Name,
			File:     m.Path,
			LoadedAt: m.LoadedAt,
			Info:     m.Classifier.Info(),
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	rep, err := s.reg.Reload()
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, "internal", "reload: %v", err)
		return
	}
	s.updateModelGauges()
	s.logf("server: reload #%d: %d loaded, %d kept, %d removed, %d failed",
		s.reg.Generation(), len(rep.Loaded), len(rep.Kept), len(rep.Removed), len(rep.Failed))
	writeJSON(w, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.reg.Len() == 0 {
		s.metrics.countError("unavailable")
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no models loaded")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		s.metrics.uptime.Set(time.Since(s.metrics.start).Seconds())
		// Scrape-time refreshes: SLO burn rates from the route
		// histograms, Go runtime telemetry from runtime/metrics.
		s.updateSLOGauges()
		s.goStats.refresh()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.metrics.reg.WritePrometheus(w); err != nil {
			s.logf("server: writing prometheus exposition: %v", err)
		}
		return
	}
	writeJSON(w, s.metrics.snapshot())
}
