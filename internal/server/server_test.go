package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cluseq/internal/core"
	"cluseq/internal/pst"
	"cluseq/internal/registry"
	"cluseq/internal/seq"
)

// makeClassifier builds a tiny single-cluster classifier trained on the
// given strings over alphabet "abcd".
func makeClassifier(t testing.TB, trains ...string) *core.Classifier {
	t.Helper()
	db := seq.NewDatabase(seq.MustAlphabet("abcd"))
	tree := pst.MustNew(pst.Config{AlphabetSize: 4, MaxDepth: 4, Significance: 1})
	for i, s := range trains {
		if err := db.AddString(fmt.Sprintf("s%d", i), "", s); err != nil {
			t.Fatal(err)
		}
		syms, err := db.Alphabet.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		tree.Insert(syms)
	}
	res := &core.Result{
		Clusters:       []*core.ClusterInfo{{ID: 0, Tree: tree}},
		FinalThreshold: 1.01,
	}
	clf, err := core.NewClassifier(db, res, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

func writeBundle(t testing.TB, dir, name string, clf *core.Classifier) {
	t.Helper()
	tmp, err := os.CreateTemp(dir, name+".tmp")
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Save(tmp); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name+registry.Ext)); err != nil {
		t.Fatal(err)
	}
}

// newTestServer builds a registry over a fresh dir holding one model
// named "m" trained on alternating ab, and a Server over it.
func newTestServer(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	writeBundle(t, dir, "m", makeClassifier(t, "abababababab", "babababa"))
	reg, _, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func postClassify(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestClassifySingle(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postClassify(t, ts.URL, `{"model":"m","sequence":"abababab"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad JSON %s: %v", data, err)
	}
	if len(out.Results) != 1 || out.Results[0].Error != "" {
		t.Fatalf("unexpected results: %s", data)
	}
	if out.Results[0].Cluster != 0 || out.Results[0].Outlier {
		t.Fatalf("in-family sequence should land in cluster 0: %s", data)
	}
	if out.Results[0].Similarity <= 0 {
		t.Fatalf("similarity %v", out.Results[0].Similarity)
	}
}

func TestClassifyBatch(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postClassify(t, ts.URL,
		`{"model":"m","sequences":["abababab","dddddddd","abab","zzz"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4 (index-aligned): %s", len(out.Results), data)
	}
	if out.Results[0].Cluster != 0 {
		t.Fatalf("result 0 should be in-cluster: %s", data)
	}
	if !out.Results[1].Outlier {
		t.Fatalf("all-d sequence should be an outlier: %s", data)
	}
	if out.Results[3].Error == "" {
		t.Fatalf("out-of-alphabet sequence must carry a per-item error: %s", data)
	}
	if out.Outliers < 1 {
		t.Fatalf("outlier count %d: %s", out.Outliers, data)
	}
}

func TestClassifyRejections(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{"model":`, http.StatusBadRequest},
		{"missing model", `{"sequence":"ab"}`, http.StatusBadRequest},
		{"missing sequences", `{"model":"m"}`, http.StatusBadRequest},
		{"both forms", `{"model":"m","sequence":"a","sequences":["b"]}`, http.StatusBadRequest},
		{"unknown model", `{"model":"ghost","sequence":"ab"}`, http.StatusNotFound},
		{"oversized batch", `{"model":"m","sequences":["a","b","a","b"]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, data := postClassify(t, ts.URL, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, data)
		}
		var e errorBody
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not JSON with an error field", tc.name, data)
		}
	}
	// Wrong method on the API paths.
	resp, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/classify: status %d, want 405", resp.StatusCode)
	}
}

func TestModelsListing(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Models []struct {
			Name string         `json:"name"`
			Info core.ModelInfo `json:"info"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Models) != 1 || out.Models[0].Name != "m" {
		t.Fatalf("models listing: %+v", out)
	}
	info := out.Models[0].Info
	if info.Clusters != 1 || info.Alphabet != "abcd" || info.TotalNodes < 1 || info.Threshold <= 1 {
		t.Fatalf("model info: %+v", info)
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	// Empty registry: healthy but not ready.
	emptyReg, _, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s0, err := New(Config{Registry: emptyReg})
	if err != nil {
		t.Fatal(err)
	}
	ts0 := httptest.NewServer(s0.Handler())
	defer ts0.Close()
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 503} {
		resp, err := http.Get(ts0.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s on empty registry: %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Loaded registry: ready, and metrics move after classifications.
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/readyz with a model: %d", resp.StatusCode)
	}
	postClassify(t, ts.URL, `{"model":"m","sequences":["abababab","dddddddd"]}`)
	postClassify(t, ts.URL, `{"model":"ghost","sequence":"ab"}`)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Requests        map[string]int64 `json:"requests"`
		Errors          map[string]int64 `json:"errors"`
		SequencesTotal  int64            `json:"sequences_total"`
		Classifications map[string]int64 `json:"classifications"`
		OutliersTotal   int64            `json:"outliers_total"`
		OutlierRate     float64          `json:"outlier_rate"`
		Latency         struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
		} `json:"latency_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Requests["classify"] != 2 {
		t.Fatalf("classify requests = %d, want 2", metrics.Requests["classify"])
	}
	if metrics.Errors["not_found"] != 1 {
		t.Fatalf("not_found errors = %d, want 1", metrics.Errors["not_found"])
	}
	if metrics.SequencesTotal != 2 || metrics.Classifications["m"] != 2 {
		t.Fatalf("sequence counters: %+v", metrics)
	}
	if metrics.OutliersTotal != 1 || metrics.OutlierRate != 0.5 {
		t.Fatalf("outlier counters: total %d rate %v", metrics.OutliersTotal, metrics.OutlierRate)
	}
	if metrics.Latency.Count != 1 || metrics.Latency.P99 < 0 {
		t.Fatalf("latency histogram: %+v", metrics.Latency)
	}
}

// TestRequestIDPropagation pins the correlation-ID contract: a caller's
// X-Request-ID flows through a batch classify to the response header and
// into error bodies; absent or unprintable IDs are replaced by a
// generated one.
func TestRequestIDPropagation(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Caller-supplied ID echoes through a successful batch classify.
	req, err := http.NewRequest("POST", ts.URL+"/v1/classify",
		strings.NewReader(`{"model":"m","sequences":["abababab","dddddddd"]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch classify: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "trace-42" {
		t.Fatalf("response %s = %q, want caller's trace-42", RequestIDHeader, got)
	}

	// The same ID lands in the error body of a failing request.
	req, err = http.NewRequest("POST", ts.URL+"/v1/classify",
		strings.NewReader(`{"model":"ghost","sequence":"ab"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "trace-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var e errorBody
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body %q: %v", data, err)
	}
	if e.RequestID != "trace-42" {
		t.Fatalf("error body request_id = %q, want trace-42 (%s)", e.RequestID, data)
	}

	// No header: the server generates a 16-hex-char ID.
	resp, _ = postClassify(t, ts.URL, `{"model":"m","sequence":"abab"}`)
	gen := resp.Header.Get(RequestIDHeader)
	if len(gen) != 16 {
		t.Fatalf("generated ID %q, want 16 hex chars", gen)
	}

	// Non-printable-ASCII or oversized IDs are discarded, not echoed.
	// (Truly binary values never reach the server: Go's client rejects
	// them; a space is the representative in-band invalid byte.)
	for name, bad := range map[string]string{
		"embedded space": "evil id",
		"oversized":      strings.Repeat("x", 200),
	} {
		req, err = http.NewRequest("GET", ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(RequestIDHeader, bad)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(RequestIDHeader); got == bad || len(got) != 16 {
			t.Fatalf("%s ID: echoed %q, want a fresh generated ID", name, got)
		}
	}
}

// TestMetricsPrometheus checks the ?format=prom surface: correct content
// type and well-formed exposition lines covering the server, pool, and
// registry metric families.
func TestMetricsPrometheus(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postClassify(t, ts.URL, `{"model":"m","sequences":["abababab","dddddddd"]}`)
	postClassify(t, ts.URL, `{"model":"ghost","sequence":"ab"}`)
	rr, err := http.Post(ts.URL+"/v1/models/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		"# TYPE cluseqd_requests_total counter",
		`cluseqd_requests_total{route="classify"} 2`,
		`cluseqd_responses_total{route="classify",status="404"} 1`,
		`cluseqd_errors_total{class="not_found"} 1`,
		"cluseqd_sequences_total 2",
		"cluseqd_outliers_total 1",
		`cluseqd_classifications_total{model="m"} 2`,
		"# TYPE cluseqd_classify_latency_ms summary",
		"cluseqd_classify_latency_ms_count 1",
		"# TYPE cluseqd_uptime_seconds gauge",
		"# TYPE cluseqd_inflight_requests gauge",
		// The scrape itself is the one request in flight at read time.
		"cluseqd_inflight_requests 1",
		"# TYPE cluseqd_classify_batch_size summary",
		"cluseqd_classify_batch_size_count 2",
		`cluseqd_model_clusters{model="m"} 1`,
		"cluseq_registry_reloads_total 1",
		"cluseqd_pool_runs_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every non-comment line must be "name_or_labels value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Split(line, " "); len(fields) != 2 {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestHotReloadUnderFire rewrites and reloads the model while classify
// requests stream in; every classify must succeed (-race covers the
// snapshot discipline).
func TestHotReloadUnderFire(t *testing.T) {
	s, dir := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := makeClassifier(t, "abababababab", "babababa")
	b := makeClassifier(t, "cdcdcdcdcdcd", "dcdcdcdc", "cdcd")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/classify", "application/json",
					strings.NewReader(`{"model":"m","sequences":["abababab","cdcdcdcd","abcd"]}`))
				if err != nil {
					t.Errorf("classify during reload: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("classify during reload: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for i := 0; i < 15; i++ {
		clf := a
		if i%2 == 0 {
			clf = b
		}
		writeBundle(t, dir, "m", clf)
		// Push the modtime forward so every rewrite fingerprints as new.
		path := filepath.Join(dir, "m"+registry.Ext)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		os.Chtimes(path, time.Now(), fi.ModTime().Add(time.Duration(i+1)*time.Second))

		resp, err := http.Post(ts.URL+"/v1/models/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var rep registry.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(rep.Failed) != 0 {
			t.Fatalf("reload %d: status %d, report %+v", i, resp.StatusCode, rep)
		}
	}
	close(stop)
	wg.Wait()
}

// TestGracefulShutdownCompletesInFlight drives a real http.Server: a
// classify request is held mid-handler while Shutdown begins, and must
// still complete with 200.
func TestGracefulShutdownCompletesInFlight(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.classifyHook = func() {
		once.Do(func() {
			close(started)
			<-release
		})
	}

	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String()

	type result struct {
		status int
		body   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/classify", "application/json",
			strings.NewReader(`{"model":"m","sequence":"abababab"}`))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		io.Copy(&buf, resp.Body)
		done <- result{status: resp.StatusCode, body: buf.String()}
	}()

	<-started // the request is now inside the handler
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Let Shutdown settle into draining, then release the handler.
	time.Sleep(50 * time.Millisecond)
	close(release)

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request: status %d, body %s", res.status, res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestRequestTimeout(t *testing.T) {
	s, _ := newTestServer(t, Config{Timeout: 30 * time.Millisecond})
	s.classifyHook = func() { time.Sleep(200 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postClassify(t, ts.URL, `{"model":"m","sequence":"ab"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, data)
	}
	var e errorBody
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("timeout body %q should be the JSON error shape", data)
	}
	// Health endpoints stay exempt from the API timeout.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("/healthz: %d", hr.StatusCode)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New should require a registry")
	}
	reg, _, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Registry: reg, MaxBatch: -1}); err == nil {
		t.Fatal("New should reject a negative MaxBatch")
	}
}
