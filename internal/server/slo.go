package server

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"cluseq/internal/obs"
)

// SLO declares one route's service-level objective: a latency target
// ("Target fraction of requests complete within Latency") and/or an
// error-rate ceiling. The daemon turns each declared SLO into
// cluseqd_slo_* burn-rate gauges computed at scrape time from the route
// histograms and status counters it already maintains — no extra
// request-path cost.
//
// Burn rate semantics: 1.0 means the route is consuming its error
// budget exactly as fast as the objective allows; above 1.0 the budget
// is burning down (sustained, the SLO will be missed), below it there
// is headroom. The windows are cumulative over the process lifetime —
// alerting-style multi-window burn rates are the scraper's job
// (rate() over these same histograms); the daemon's gauges exist so a
// single scrape or incident dump answers "are we inside objective"
// without PromQL.
type SLO struct {
	// Route is the route label the objective applies to (see routeOf).
	Route string
	// Latency and Target declare the latency objective: Target fraction
	// of requests within Latency. Zero Latency disables the latency
	// objective.
	Latency time.Duration
	Target  float64
	// MaxErrorRate, when positive, declares the error objective: the
	// ceiling on the 5xx fraction of responses.
	MaxErrorRate float64
}

// ParseSLO parses one -slo flag value: comma-separated key=value pairs
// with keys route (required), latency (Go duration), target (fraction,
// default 0.99), and max_error_rate (fraction). At least one of latency
// and max_error_rate must be given, e.g.
//
//	route=classify,latency=250ms,target=0.99,max_error_rate=0.01
func ParseSLO(spec string) (SLO, error) {
	s := SLO{Target: 0.99}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || v == "" {
			return SLO{}, fmt.Errorf("slo: %q is not key=value", part)
		}
		switch k {
		case "route":
			s.Route = v
		case "latency":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return SLO{}, fmt.Errorf("slo: bad latency %q (want a positive Go duration like 250ms)", v)
			}
			s.Latency = d
		case "target":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f >= 1 {
				return SLO{}, fmt.Errorf("slo: bad target %q (want a fraction in (0, 1))", v)
			}
			s.Target = f
		case "max_error_rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f >= 1 {
				return SLO{}, fmt.Errorf("slo: bad max_error_rate %q (want a fraction in (0, 1))", v)
			}
			s.MaxErrorRate = f
		default:
			return SLO{}, fmt.Errorf("slo: unknown key %q (want route, latency, target, max_error_rate)", k)
		}
	}
	if s.Route == "" {
		return SLO{}, fmt.Errorf("slo: missing route=")
	}
	if s.Latency <= 0 && s.MaxErrorRate <= 0 {
		return SLO{}, fmt.Errorf("slo: route %s declares no objective (set latency= and/or max_error_rate=)", s.Route)
	}
	return s, nil
}

// updateSLOGauges recomputes every declared SLO's gauges from the live
// route histograms and status counters. Called at each Prometheus
// scrape, mirroring the uptime gauge.
func (s *Server) updateSLOGauges() {
	if len(s.slos) == 0 {
		return
	}
	var snap []obs.Metric // status counters, fetched once, only if needed
	for _, slo := range s.slos {
		reg := s.metrics.reg
		if slo.Latency > 0 {
			reg.Gauge("cluseqd_slo_latency_target", "route", slo.Route).Set(slo.Target)
			reg.Gauge("cluseqd_slo_latency_threshold_seconds", "route", slo.Route).Set(slo.Latency.Seconds())
			h := s.metrics.routeLatency(slo.Route)
			if within, ok := h.FractionBelow(slo.Latency.Seconds()); ok {
				reg.Gauge("cluseqd_slo_latency_within", "route", slo.Route).Set(within)
				reg.Gauge("cluseqd_slo_latency_burn_rate", "route", slo.Route).Set((1 - within) / (1 - slo.Target))
			}
		}
		if slo.MaxErrorRate > 0 {
			reg.Gauge("cluseqd_slo_max_error_rate", "route", slo.Route).Set(slo.MaxErrorRate)
			if snap == nil {
				snap = reg.Snapshot()
			}
			total, errs := responseCounts(snap, slo.Route)
			if total > 0 {
				ratio := float64(errs) / float64(total)
				reg.Gauge("cluseqd_slo_error_ratio", "route", slo.Route).Set(ratio)
				reg.Gauge("cluseqd_slo_error_burn_rate", "route", slo.Route).Set(ratio / slo.MaxErrorRate)
			}
		}
	}
}

// responseCounts sums the route's cluseqd_responses_total series into
// (all responses, 5xx responses).
func responseCounts(snap []obs.Metric, route string) (total, errs int64) {
	for _, m := range snap {
		if m.Name != "cluseqd_responses_total" || m.Label("route") != route {
			continue
		}
		n := int64(m.Value)
		total += n
		if st := m.Label("status"); len(st) == 3 && st[0] == '5' {
			errs += n
		}
	}
	return total, errs
}
