package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cluseq/internal/obs"
)

func TestParseSLO(t *testing.T) {
	cases := []struct {
		spec    string
		want    SLO
		wantErr bool
	}{
		{
			spec: "route=classify,latency=250ms,target=0.99,max_error_rate=0.01",
			want: SLO{Route: "classify", Latency: 250 * time.Millisecond, Target: 0.99, MaxErrorRate: 0.01},
		},
		{
			// Target defaults to 0.99 when only latency is declared.
			spec: "route=ingest,latency=1s",
			want: SLO{Route: "ingest", Latency: time.Second, Target: 0.99},
		},
		{
			// Error-rate-only objective, no latency target.
			spec: "route=classify,max_error_rate=0.001",
			want: SLO{Route: "classify", Target: 0.99, MaxErrorRate: 0.001},
		},
		{
			// Whitespace around pairs is tolerated (shell-quoted flags).
			spec: "route=classify, latency=250ms",
			want: SLO{Route: "classify", Latency: 250 * time.Millisecond, Target: 0.99},
		},
		{spec: "", wantErr: true},
		{spec: "latency=250ms", wantErr: true},                         // missing route
		{spec: "route=classify", wantErr: true},                        // no objective
		{spec: "route=classify,latency=fast", wantErr: true},           // bad duration
		{spec: "route=classify,latency=-1s", wantErr: true},            // negative duration
		{spec: "route=classify,latency=1s,target=1.5", wantErr: true},  // target out of (0,1)
		{spec: "route=classify,latency=1s,target=0", wantErr: true},    // target out of (0,1)
		{spec: "route=classify,max_error_rate=1", wantErr: true},       // rate out of (0,1)
		{spec: "route=classify,latency=1s,deadline=2s", wantErr: true}, // unknown key
		{spec: "route=classify,latency", wantErr: true},                // not key=value
	}
	for _, tc := range cases {
		got, err := ParseSLO(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSLO(%q) = %+v, want error", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSLO(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

// gaugeValue pulls one labeled gauge out of a registry snapshot.
func gaugeValue(t *testing.T, snap []obs.Metric, name, route string) float64 {
	t.Helper()
	for _, m := range snap {
		if m.Name == name && m.Label("route") == route {
			return m.Value
		}
	}
	t.Fatalf("gauge %s{route=%q} not in snapshot", name, route)
	return 0
}

// TestSLOGaugesWithinObjective drives successful classify traffic well
// under a generous latency objective and checks the scrape-time gauge
// math: within == 1, latency burn == 0, error ratio == 0.
func TestSLOGaugesWithinObjective(t *testing.T) {
	s, _ := newTestServer(t, Config{SLOs: []SLO{{
		Route:        "classify",
		Latency:      time.Hour, // nothing is slower than this
		Target:       0.99,
		MaxErrorRate: 0.01,
	}}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		resp, data := postClassify(t, ts.URL, `{"model":"m","sequence":"abababab"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
	}
	s.updateSLOGauges()
	snap := s.metrics.reg.Snapshot()

	if v := gaugeValue(t, snap, "cluseqd_slo_latency_target", "classify"); v != 0.99 {
		t.Errorf("latency_target = %v, want 0.99", v)
	}
	if v := gaugeValue(t, snap, "cluseqd_slo_latency_threshold_seconds", "classify"); v != 3600 {
		t.Errorf("latency_threshold_seconds = %v, want 3600", v)
	}
	if v := gaugeValue(t, snap, "cluseqd_slo_latency_within", "classify"); v != 1 {
		t.Errorf("latency_within = %v, want 1", v)
	}
	if v := gaugeValue(t, snap, "cluseqd_slo_latency_burn_rate", "classify"); v != 0 {
		t.Errorf("latency_burn_rate = %v, want 0", v)
	}
	if v := gaugeValue(t, snap, "cluseqd_slo_error_ratio", "classify"); v != 0 {
		t.Errorf("error_ratio = %v, want 0", v)
	}
	if v := gaugeValue(t, snap, "cluseqd_slo_error_burn_rate", "classify"); v != 0 {
		t.Errorf("error_burn_rate = %v, want 0", v)
	}
}

// TestSLOGaugesBurning violates a latency objective on purpose — an
// impossible "every request within 0" bound puts every observation over
// threshold — and checks burn exceeds 1. It also checks the error burn
// math against a route that only ever 5xxes (ingest without -stream).
func TestSLOGaugesBurning(t *testing.T) {
	s, _ := newTestServer(t, Config{SLOs: []SLO{
		{Route: "classify", Latency: time.Nanosecond, Target: 0.99},
		{Route: "ingest", MaxErrorRate: 0.5},
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		resp, data := postClassify(t, ts.URL, `{"model":"m","sequence":"abababab"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
	}
	// Streaming is disabled, so every ingest is a 503 — a 100% error
	// ratio against a 50% budget is a burn rate of 2.
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(`{"sequence":"abab"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	s.updateSLOGauges()
	snap := s.metrics.reg.Snapshot()

	// No classify request completes within a nanosecond, so the within
	// fraction sits near 0 and the burn rate near 1/(1-0.99) = 100.
	if v := gaugeValue(t, snap, "cluseqd_slo_latency_within", "classify"); v > 0.5 {
		t.Errorf("latency_within = %v, want ~0 under an impossible objective", v)
	}
	if v := gaugeValue(t, snap, "cluseqd_slo_latency_burn_rate", "classify"); v <= 1 {
		t.Errorf("latency_burn_rate = %v, want > 1 (budget burning)", v)
	}
	if v := gaugeValue(t, snap, "cluseqd_slo_error_ratio", "ingest"); v != 1 {
		t.Errorf("error_ratio = %v, want 1", v)
	}
	if v := gaugeValue(t, snap, "cluseqd_slo_error_burn_rate", "ingest"); v != 2 {
		t.Errorf("error_burn_rate = %v, want 2", v)
	}
}

// TestSLOGaugesInPromExposition checks the gauges refresh at scrape time
// and come out as cluseqd_slo_* series, and that the cluseqd_go_*
// runtime series ride along in the same exposition.
func TestSLOGaugesInPromExposition(t *testing.T) {
	s, _ := newTestServer(t, Config{SLOs: []SLO{{Route: "classify", Latency: time.Second}}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postClassify(t, ts.URL, `{"model":"m","sequence":"abababab"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	mresp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(prom)
	for _, want := range []string{
		`cluseqd_slo_latency_burn_rate{route="classify"} `,
		`cluseqd_slo_latency_within{route="classify"} `,
		"\ncluseqd_go_goroutines ",
		"\ncluseqd_go_heap_bytes ",
		"\ncluseqd_go_sched_latency_p99_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
}
