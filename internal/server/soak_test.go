package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoakClassifyUnderReload sustains mixed single and batch classify
// traffic while the model bundle is rewritten and reloaded under fire.
// The invariants, checked on every response (run with -race in CI):
//
//   - no request ever sees a non-200 status — hot reload must be
//     invisible to in-flight and subsequent classifications;
//   - batch results stay index-aligned: sequences with a rune outside
//     the model's alphabet are planted at fixed positions and must be
//     the exact entries carrying an error marker, no matter which model
//     generation serves the batch.
func TestSoakClassifyUnderReload(t *testing.T) {
	s, dir := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	duration := 2 * time.Second
	if testing.Short() {
		duration = 250 * time.Millisecond
	}
	deadline := time.Now().Add(duration)
	client := ts.Client()

	// Batch payload: valid alternating-ab sequences with invalid markers
	// ('z' is outside alphabet "abcd") planted at indices 3 and 11.
	const batchLen = 16
	markers := map[int]bool{3: true, 11: true}
	batch := make([]string, batchLen)
	for i := range batch {
		if markers[i] {
			batch[i] = "zzzz"
		} else {
			batch[i] = "abababab"
		}
	}
	batchBody, err := json.Marshal(ClassifyRequest{Model: "m", Sequences: batch})
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		requests atomic.Int64
		reloads  atomic.Int64
	)
	post := func(path string, body string) (*http.Response, error) {
		return client.Post(ts.URL+path, "application/json", strings.NewReader(body))
	}

	// Classify workers: half single, half batch.
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				var (
					resp *http.Response
					err  error
				)
				isBatch := w%2 == 1
				if isBatch {
					resp, err = post("/v1/classify", string(batchBody))
				} else {
					resp, err = post("/v1/classify", `{"model":"m","sequence":"abababab"}`)
				}
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				var out ClassifyResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
				if decErr != nil {
					t.Errorf("worker %d: decoding response: %v", w, decErr)
					return
				}
				want := 1
				if isBatch {
					want = batchLen
				}
				if len(out.Results) != want {
					t.Errorf("worker %d: %d results, want %d", w, len(out.Results), want)
					return
				}
				for i, res := range out.Results {
					if isBatch && markers[i] {
						if res.Error == "" {
							t.Errorf("worker %d: marker index %d lost its error: %+v", w, i, res)
							return
						}
						continue
					}
					if res.Error != "" {
						t.Errorf("worker %d: valid index %d errored: %s", w, i, res.Error)
						return
					}
				}
				requests.Add(1)
			}
		}(w)
	}

	// Reloader: rewrite the bundle (atomic temp+rename, alternating
	// training data so generations genuinely differ) and reload it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := 0; time.Now().Before(deadline); gen++ {
			if gen%2 == 0 {
				writeBundle(t, dir, "m", makeClassifier(t, "abababababab", "babababa"))
			} else {
				writeBundle(t, dir, "m", makeClassifier(t, "abababab", "bababababab", "abab"))
			}
			resp, err := post("/v1/models/reload", "")
			if err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload: status %d", resp.StatusCode)
				return
			}
			reloads.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	wg.Wait()
	if requests.Load() == 0 || reloads.Load() == 0 {
		t.Fatalf("soak made no progress: %d classifies, %d reloads", requests.Load(), reloads.Load())
	}
	t.Logf("soak: %d classifies across %d reloads in %v", requests.Load(), reloads.Load(), duration)

	// The dust has settled: the daemon must still be fully serviceable.
	resp, data := postClassify(t, ts.URL, `{"model":"m","sequence":"abababab"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-soak classify: status %d: %s", resp.StatusCode, data)
	}
}

// TestSoakBatchOrderAcrossSizes drives varied batch sizes concurrently
// and checks each response's results line up with its own request — a
// cross-talk probe for the shared worker pool.
func TestSoakBatchOrderAcrossSizes(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	iters := 40
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			size := 1 << (w % 5) // 1, 2, 4, 8, 16
			marker := w % size
			batch := make([]string, size)
			for i := range batch {
				batch[i] = "abababab"
			}
			batch[marker] = "zzzz"
			body, _ := json.Marshal(ClassifyRequest{Model: "m", Sequences: batch})
			for it := 0; it < iters; it++ {
				resp, err := ts.Client().Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				var out ClassifyResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					t.Errorf("worker %d: status %d, decode %v", w, resp.StatusCode, decErr)
					return
				}
				if len(out.Results) != size {
					t.Errorf("worker %d: %d results, want %d", w, len(out.Results), size)
					return
				}
				for i, res := range out.Results {
					if got, want := res.Error != "", i == marker; got != want {
						t.Errorf("worker %d iter %d: index %d error=%v, want %v (%s)",
							w, it, i, got, want, fmt.Sprintf("%+v", res))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
