package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"cluseq/internal/obs"
)

// TraceIDHeader carries the request's trace ID on every traced
// response, so a client (the load harness in particular) can name the
// exact trace to pull from /debug/traces afterwards.
const TraceIDHeader = "X-Trace-ID"

// TraceparentHeader is the W3C Trace Context ingress/egress header.
const TraceparentHeader = "traceparent"

// traced reports whether requests to path get a request trace: the API
// routes only — health, metrics, and debug probes would churn the
// flight-recorder ring without ever being the request anyone triages.
func traced(path string) bool {
	return strings.HasPrefix(path, "/v1/")
}

// finishTrace closes the request's trace after the API handler returns.
// It sits INSIDE the timeout wrapper on purpose: http.TimeoutHandler
// runs its inner handler in a separate goroutine and abandons it on
// expiry, so finishing in the outer middleware would return the pooled
// trace record while the abandoned handler may still be writing spans
// into it. Here, Finish runs on the handler's own goroutine strictly
// after all span writers (the batch fan-out joins before the handler
// returns), and a timed-out request's trace simply finishes late — with
// its true duration, which is exactly what the flight recorder should
// show. The recorded status is the handler's own; the client-facing 503
// of a timeout lives in the route metrics.
func (s *Server) finishTrace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.TraceFromContext(r.Context())
		if tr == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.flight.Finish(tr, status)
	})
}

// handleDebugTraces serves GET /debug/traces: the flight recorder's
// current state as JSON, filterable with ?route=<label> and
// ?min_ms=<duration>. The dump is an independent copy — safe under
// concurrent traffic, and reading it never perturbs the ring.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	var filter obs.TraceFilter
	q := r.URL.Query()
	filter.Route = q.Get("route")
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			s.fail(w, r, http.StatusBadRequest, "bad_request", "min_ms must be a non-negative number, got %q", v)
			return
		}
		filter.MinDur = time.Duration(ms * float64(time.Millisecond))
	}
	writeJSON(w, s.flight.Snapshot(filter))
}

// Flight returns the server's flight recorder (for the SIGUSR1 dump
// path in cmd/cluseqd and for tests).
func (s *Server) Flight() *obs.Flight { return s.flight }
