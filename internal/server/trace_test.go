package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cluseq/internal/obs"
)

// inboundTraceparent is the W3C example context with the sampled flag
// set, so the request is always retained regardless of head sampling.
const (
	inboundTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	inboundTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
	inboundSpanID      = "00f067aa0ba902b7"
)

// getDump fetches and decodes GET /debug/traces.
func getDump(t *testing.T, url, query string) obs.FlightDump {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces%s: status %d: %s", query, resp.StatusCode, data)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("bad dump JSON %s: %v", data, err)
	}
	return dump
}

// TestTraceEndToEnd walks one trace ID through the whole contract: the
// inbound traceparent is adopted, echoed as X-Trace-ID, retained in the
// flight recorder with the handler's spans, and attached to the route
// latency histogram as its exemplar.
func TestTraceEndToEnd(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest("POST", ts.URL+"/v1/classify",
		strings.NewReader(`{"model":"m","sequence":"abababab"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceparentHeader, inboundTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(TraceIDHeader); got != inboundTraceID {
		t.Fatalf("X-Trace-ID = %q, want the inbound trace ID %q", got, inboundTraceID)
	}

	// The retained trace must carry the same ID, the inbound span as its
	// parent, and the classify span hierarchy.
	dump := getDump(t, ts.URL, "")
	var rec *obs.TraceRecord
	for i := range dump.Recent {
		if dump.Recent[i].TraceID == inboundTraceID {
			rec = &dump.Recent[i]
			break
		}
	}
	if rec == nil {
		t.Fatalf("trace %s not in /debug/traces recent set: %+v", inboundTraceID, dump.Recent)
	}
	if rec.ParentID != inboundSpanID {
		t.Errorf("parent_id = %q, want inbound span %q", rec.ParentID, inboundSpanID)
	}
	if rec.Route != "classify" || rec.Status != http.StatusOK {
		t.Errorf("route/status = %s/%d, want classify/200", rec.Route, rec.Status)
	}
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
		if sp.DurUS < 0 {
			t.Errorf("span %s unfinished (dur_us = %d)", sp.Name, sp.DurUS)
		}
	}
	for _, want := range []string{"classify_decode", "registry_get", "classify_scan", "classify_model", "classify_encode"} {
		if !names[want] {
			t.Errorf("span %q missing from retained trace: %v", want, rec.Spans)
		}
	}

	// The classify route's latency histogram carries the trace ID as its
	// exemplar in the Prometheus exposition.
	mresp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	wantLine := `# EXEMPLAR cluseqd_request_seconds{route="classify"} trace_id="` + inboundTraceID + `"`
	if !strings.Contains(string(prom), wantLine) {
		t.Errorf("prom exposition missing exemplar line %q", wantLine)
	}
}

// TestTraceHeadSamplingDrops checks the other half of the tail policy:
// a fast, successful, unsampled request at a negligible sample rate gets
// a trace ID on the wire but is not retained in the flight recorder.
func TestTraceHeadSamplingDrops(t *testing.T) {
	flight := obs.NewFlight(obs.FlightConfig{SampleRate: 1e-12, SlowThreshold: time.Hour})
	s, _ := newTestServer(t, Config{Flight: flight})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postClassify(t, ts.URL, `{"model":"m","sequence":"abababab"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	id := resp.Header.Get(TraceIDHeader)
	if len(id) != 32 {
		t.Fatalf("X-Trace-ID = %q, want a 32-hex generated trace ID", id)
	}
	dump := getDump(t, ts.URL, "")
	for _, rec := range dump.Recent {
		if rec.TraceID == id {
			t.Fatalf("sampled-out trace %s retained anyway", id)
		}
	}
}

// TestTraceErrorAlwaysRetained: a 4xx is not an error for tail sampling
// (client's fault), but the handler status is recorded; a forced 5xx is
// always kept. The cheapest server-side 5xx here is ingest with
// streaming disabled... which is a 503 on an untraced-by-sampling path,
// so drive it at the same negligible sample rate as above.
func TestTraceErrorAlwaysRetained(t *testing.T) {
	flight := obs.NewFlight(obs.FlightConfig{SampleRate: 1e-12, SlowThreshold: time.Hour})
	s, _ := newTestServer(t, Config{Flight: flight}) // no Stream: ingest → 503
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(`{"sequence":"abab"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest without -stream: status %d, want 503", resp.StatusCode)
	}
	id := resp.Header.Get(TraceIDHeader)
	dump := getDump(t, ts.URL, "")
	found := false
	for _, rec := range dump.Recent {
		if rec.TraceID == id {
			found = true
			if !rec.Error || rec.Status != http.StatusServiceUnavailable {
				t.Errorf("retained error trace: error=%v status=%d, want true/503", rec.Error, rec.Status)
			}
		}
	}
	if !found {
		t.Fatalf("error trace %s not retained", id)
	}
}

// TestDebugTracesFilters exercises the query contract: route filtering,
// min_ms filtering, and rejection of a malformed min_ms.
func TestDebugTracesFilters(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/v1/classify",
		strings.NewReader(`{"model":"m","sequence":"abababab"}`))
	req.Header.Set(TraceparentHeader, inboundTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if dump := getDump(t, ts.URL, "?route=classify"); len(dump.Recent) == 0 {
		t.Error("?route=classify filtered out the classify trace")
	}
	if dump := getDump(t, ts.URL, "?route=ingest"); len(dump.Recent) != 0 {
		t.Errorf("?route=ingest returned %d classify traces", len(dump.Recent))
	}
	if dump := getDump(t, ts.URL, "?min_ms=3600000"); len(dump.Recent) != 0 {
		t.Errorf("?min_ms=1h returned %d traces", len(dump.Recent))
	}

	bad, err := http.Get(ts.URL + "/debug/traces?min_ms=soon")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("min_ms=soon: status %d, want 400", bad.StatusCode)
	}
}

// TestUntracedRoutesGetNoTraceID: probes outside /v1/ never enter the
// flight recorder and never advertise a trace ID.
func TestUntracedRoutesGetNoTraceID(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/debug/traces"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get(TraceIDHeader); got != "" {
			t.Errorf("%s: unexpected X-Trace-ID %q", path, got)
		}
	}
	if dump := getDump(t, ts.URL, ""); len(dump.Recent) != 0 {
		t.Errorf("probe traffic leaked %d traces into the recorder", len(dump.Recent))
	}
}

// BenchmarkObsOverhead gates the PR 5 contract at the server level: the
// classify hot path with tracing at the default sampling rate must stay
// within 5% of the same path with tracing off entirely. Compare:
//
//	go test ./internal/server/ -run xx -bench ObsOverhead -count 10 | benchstat
func BenchmarkObsOverhead(b *testing.B) {
	body := `{"model":"m","sequences":["abababab","babababa","abababab","babababa"]}`
	bench := func(b *testing.B, s *Server) {
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/classify", strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}
	b.Run("traced", func(b *testing.B) {
		s, _ := newTestServer(b, Config{}) // default always-on flight recorder
		bench(b, s)
	})
	b.Run("untraced", func(b *testing.B) {
		s, _ := newTestServer(b, Config{})
		s.flight = nil // nil-receiver no-ops: the tracing-off baseline
		bench(b, s)
	})
}
