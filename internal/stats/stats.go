// Package stats provides the small numerical routines shared across the
// repository: simple-linear-regression slopes (used by the similarity
// threshold valley detector of paper §4.6), summary statistics, and
// log-domain helpers for multiplying long chains of probability ratios
// without underflow.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// RegressionSlope returns the least-squares slope b of y = a + b·x over the
// paired samples. It returns 0 when fewer than two points are given or when
// all x values coincide (a vertical "line" carries no usable slope for the
// valley heuristic).
func RegressionSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: mismatched regression inputs: %d vs %d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxy, sxx float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	denom := sxx - sx*sx/n
	if denom == 0 {
		return 0
	}
	return (sxy - sx*sy/n) / denom
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice. The input is
// not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// MinMax returns the smallest and largest element of xs. It panics on an
// empty slice because there is no sensible zero value.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// LogSumExp returns log(Σ exp(x_i)) computed stably. It returns -Inf for an
// empty slice (the log of an empty sum).
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	_, max := MinMax(xs)
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// Normalize scales xs in place so it sums to 1. If the sum is zero or not
// finite the slice is set to the uniform distribution.
func Normalize(xs []float64) {
	if len(xs) == 0 {
		return
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		u := 1 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return
	}
	for i := range xs {
		xs[i] /= sum
	}
}

// VariationalDistance is Σ|p1(i) − p2(i)| — the first of the two
// distribution-difference measures the paper's §2 discusses (and rejects
// for similarity computation on cost grounds; the PST pruning strategy 3
// uses it between parent and child probability vectors).
func VariationalDistance(p1, p2 []float64) float64 {
	if len(p1) != len(p2) {
		panic(fmt.Sprintf("stats: mismatched distributions: %d vs %d", len(p1), len(p2)))
	}
	d := 0.0
	for i := range p1 {
		d += math.Abs(p1[i] - p2[i])
	}
	return d
}

// SymmetricKL is the paper §2's J(P1,P2) = Σ (p1−p2)·log(p1/p2), the
// symmetrized Kullback-Leibler divergence. Entries where either
// distribution is zero contribute +Inf unless both are zero.
func SymmetricKL(p1, p2 []float64) float64 {
	if len(p1) != len(p2) {
		panic(fmt.Sprintf("stats: mismatched distributions: %d vs %d", len(p1), len(p2)))
	}
	d := 0.0
	for i := range p1 {
		switch {
		case p1[i] == p2[i]: // includes both zero
		case p1[i] == 0 || p2[i] == 0:
			return math.Inf(1)
		default:
			d += (p1[i] - p2[i]) * math.Log(p1[i]/p2[i])
		}
	}
	return d
}

// ArgMax returns the index of the largest element, breaking ties toward the
// smallest index. It panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
